// recordd — the compile service as a JSON-lines daemon.
//
// Two front ends over one protocol:
//  - stdio (default): one request object per stdin line, one response per
//    stdout line, in request order (responses stream while requests are
//    still being read);
//  - socket (--listen / --unix): the same protocol over TCP or a Unix
//    socket via the src/net/ epoll event loop — many concurrent clients,
//    request pipelining per connection, responses byte-identical to stdio.
//
// Request:
//   {"model": "tms320c25",             -- built-in model, or:
//    "hdl": "PROCESSOR p; ...",        -- raw HDL source
//    "source": "kernel k; ...",        -- kernel-language program (optional:
//                                         without it the job only retargets,
//                                         pre-warming the registry)
//    "tag": "r42",                     -- echoed back (optional)
//    "options": {"engine": "auto"|"tables"|"interpreter",
//                "compact": true, "spills": true,
//                "listing": false}}        -- default: the --listing flag
//
// Response:
//   {"tag": "r42", "ok": true, "processor": "tms320c25", "code_size": 12,
//    "rts": 17, "times": {"queue_ms": ..., "target_ms": ...,
//    "frontend_ms": ..., "compile_ms": ...}, "listing": [...]?}
//   {"tag": "r43", "ok": false, "error": "..."}
//
// Control-plane commands (one response object each, in request order):
//   {"cmd": "stats"}             -- full observability snapshot: service
//                                   latency percentiles, registry occupancy,
//                                   every process-wide counter/histogram
//                                   (with raw bucket distributions), and a
//                                   per-model selection-coverage section
//   {"cmd": "trace", "last": N}  -- the N most recent completed trace spans
//                                   (flight recorder; needs --trace)
//   {"cmd": "explain", "model"|"hdl": ..., "kernel": ...}
//                                -- per-statement chosen derivation: rules
//                                   with costs, rejected alternatives,
//                                   immediate-fit decisions
//   {"cmd": "shard"[, "model"|"hdl": ...]}
//                                -- consistent-hash ring shape and, for a
//                                   named target, which instance owns it
//
// Flags: --workers N (default: hardware), --queue N (default 256),
//        --registry N (LRU capacity, default 16), --cache (persistent
//        target cache on), --listing, --stats (registry/service stats to
//        stderr on exit), --trace FILE (Perfetto trace on exit; the "trace"
//        command serves the live flight recorder),
//        --listen [HOST:]PORT (TCP server; port 0 = ephemeral, printed),
//        --unix PATH (Unix-socket server),
//        --shards N --shard-index I (registry sharding across N instances),
//        --deadline MS (default per-job deadline; jobs past it return
//        ok:false with deadline_exceeded:true and a retry_after_ms hint),
//        --idle-timeout MS (socket mode: close connections idle that long;
//        default 300000, 0 = never),
//        --request-timeout MS (socket mode: shed requests parked on a full
//        queue longer than this; 0 = never),
//        --max-parked N (socket mode: server-wide cap on parked requests;
//        past it the globally oldest is shed with retry_after_ms; 0 = off).
//
// Failpoints (util/failpoint.h) arm from RECORD_FAILPOINTS
// ("name=spec;name2=spec2") at startup, or at runtime via
// {"cmd": "failpoint", "name": ..., "spec": "once"|"every:N"|"sleep:MS"|"off"}.
//
// Try:  printf '%s\n' '{"model": "demo", "source": "kernel k;\nbind a: R0;\ncell x: mem[1];\na = a + x;"}' | ./build/example_recordd
#include <algorithm>
#include <csignal>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <iostream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "net/server.h"
#include "net/shard.h"
#include "obs/coverage.h"
#include "obs/trace.h"
#include "service/introspect.h"
#include "service/json.h"
#include "service/service.h"
#include "service/wire.h"
#include "util/failpoint.h"
#include "util/strings.h"

using namespace record;
using service::Json;

namespace {

/// Runs the stdio front end: stdin lines against the printer thread that
/// drains responses in request order. Returns the exit code. A stdout write
/// failure (consumer closed the pipe) stops the printer: with nobody
/// reading, finishing the queued work has no observer.
int run_stdio(service::CompileService& svc, const net::ShardConfig& shard,
              bool want_listing, std::size_t queue_capacity,
              std::uint64_t default_deadline_ms) {
  // An entry is a compile job's future, a deferred control-plane command, or
  // an already-rendered line (parse errors, shard ownership rejections).
  // Control commands are evaluated when the printer reaches them, so a
  // stats response counts every job answered above it. The deque is bounded
  // so a slow head-of-line job cannot pile up an unbounded backlog.
  struct Out {
    std::optional<std::future<service::JobResult>> job;
    std::optional<Json> control;  // the "cmd" request, evaluated in order
    std::string line;             // used when neither job nor control
  };
  const std::size_t max_pending = 2 * std::max<std::size_t>(queue_capacity, 1);
  std::deque<Out> pending;
  std::mutex mu;
  std::condition_variable cv;
  bool input_done = false;
  bool output_dead = false;  // stdout write failed; set by the printer

  std::optional<net::ShardRing> ring;
  if (shard.enabled()) ring.emplace(shard.count);

  std::thread printer([&] {
    for (;;) {
      Out next;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return input_done || !pending.empty(); });
        if (pending.empty()) return;
        next = std::move(pending.front());
        pending.pop_front();
      }
      cv.notify_all();  // reader may be waiting on the pending bound
      std::string line;
      if (next.job) {
        line = service::response_from_result(next.job->get()).dump();
      } else if (next.control) {
        const Json& request = *next.control;
        if (request["cmd"].as_string() == "shard") {
          line = net::shard_response(request, shard,
                                     svc.registry().options().retarget)
                     .dump();
        } else {
          line = service::handle_introspection(request, svc)
                     .value_or(Json::object())
                     .dump();
        }
      } else {
        line = std::move(next.line);
      }
      // A failed write means the consumer is gone (SIGPIPE is ignored, so
      // the failure surfaces as EPIPE here). Drop the remaining backlog:
      // draining futures nobody will read only burns the pool.
      if (std::fprintf(stdout, "%s\n", line.c_str()) < 0 ||
          std::fflush(stdout) != 0) {
        std::lock_guard<std::mutex> lock(mu);
        output_dead = true;
        pending.clear();
        cv.notify_all();
        return;
      }
    }
  });

  auto enqueue = [&](Out out) -> bool {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return output_dead || pending.size() < max_pending; });
    if (output_dead) return false;
    pending.push_back(std::move(out));
    lock.unlock();
    cv.notify_one();
    return true;
  };

  std::string line;
  std::size_t lineno = 0;
  bool input_ok = true;
  while (input_ok && std::getline(std::cin, line)) {
    ++lineno;
    if (util::trim(line).empty()) continue;
    std::string error;
    std::optional<Json> request = Json::parse(line, &error);
    if (!request || !request->is_object()) {
      input_ok = enqueue(
          Out{std::nullopt, std::nullopt,
              service::bad_request_line(lineno, error.empty() ? "not an object"
                                                              : error)});
      continue;
    }
    // Control-plane commands defer to the printer so they observe every job
    // answered before them.
    if (request->contains("cmd")) {
      input_ok = enqueue(Out{std::nullopt, std::move(*request), {}});
      continue;
    }
    if (ring) {
      std::size_t owner = ring->owner_of(net::target_key_of(
          *request, svc.registry().options().retarget));
      if (owner != shard.index) {
        input_ok = enqueue(
            Out{std::nullopt, std::nullopt,
                net::not_owned_response(*request, owner, shard.count).dump()});
        continue;
      }
    }
    service::CompileJob job =
        service::job_from_request(*request, want_listing);
    if (job.deadline_ms == 0) job.deadline_ms = default_deadline_ms;
    input_ok = enqueue(Out{svc.submit(std::move(job)), std::nullopt, {}});
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    input_done = true;
  }
  cv.notify_all();
  printer.join();
  return input_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  service::CompileService::Options opts;
  opts.registry.capacity = 16;
  bool want_listing = false;
  bool want_stats = false;
  std::string trace_path;
  std::string listen_spec;
  std::string unix_path;
  net::ShardConfig shard;
  std::uint64_t default_deadline_ms = 0;
  long idle_timeout_ms = -1;  // -1 = flag absent (socket default applies)
  std::uint64_t request_timeout_ms = 0;
  std::size_t max_parked = 0;
  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> long {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "recordd: %s needs a value\n", flag);
        std::exit(2);
      }
      return std::strtol(argv[++i], nullptr, 10);
    };
    auto text = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "recordd: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--workers")) {
      opts.workers = static_cast<std::size_t>(value("--workers"));
    } else if (!std::strcmp(argv[i], "--queue")) {
      opts.queue_capacity = static_cast<std::size_t>(value("--queue"));
    } else if (!std::strcmp(argv[i], "--registry")) {
      opts.registry.capacity = static_cast<std::size_t>(value("--registry"));
    } else if (!std::strcmp(argv[i], "--cache")) {
      opts.registry.retarget.use_target_cache = true;
    } else if (!std::strcmp(argv[i], "--listing")) {
      want_listing = true;
    } else if (!std::strcmp(argv[i], "--stats")) {
      want_stats = true;
    } else if (!std::strcmp(argv[i], "--trace")) {
      trace_path = text("--trace");
    } else if (!std::strcmp(argv[i], "--listen")) {
      listen_spec = text("--listen");
    } else if (!std::strcmp(argv[i], "--unix")) {
      unix_path = text("--unix");
    } else if (!std::strcmp(argv[i], "--shards")) {
      shard.count = static_cast<std::size_t>(value("--shards"));
    } else if (!std::strcmp(argv[i], "--shard-index")) {
      shard.index = static_cast<std::size_t>(value("--shard-index"));
    } else if (!std::strcmp(argv[i], "--deadline")) {
      default_deadline_ms = static_cast<std::uint64_t>(value("--deadline"));
    } else if (!std::strcmp(argv[i], "--idle-timeout")) {
      idle_timeout_ms = value("--idle-timeout");
    } else if (!std::strcmp(argv[i], "--request-timeout")) {
      request_timeout_ms =
          static_cast<std::uint64_t>(value("--request-timeout"));
    } else if (!std::strcmp(argv[i], "--max-parked")) {
      max_parked = static_cast<std::size_t>(value("--max-parked"));
    } else {
      std::fprintf(
          stderr,
          "usage: recordd [--workers N] [--queue N] [--registry N] [--cache] "
          "[--listing] [--stats] [--trace FILE] [--listen [HOST:]PORT] "
          "[--unix PATH] [--shards N --shard-index I] [--deadline MS] "
          "[--idle-timeout MS] [--request-timeout MS] [--max-parked N]"
          "  < requests.jsonl\n");
      return 2;
    }
  }
  if (shard.count > 0 && shard.index >= shard.count) {
    std::fprintf(stderr, "recordd: --shard-index %zu out of range for %zu "
                         "shards\n",
                 shard.index, shard.count);
    return 2;
  }
  // A client (or the stdout consumer) closing mid-stream must fail the
  // write, not kill the daemon with SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  // Chaos testing: RECORD_FAILPOINTS="name=spec;..." arms injection sites
  // before the service spins up, so even startup paths can fault.
  if (int armed = util::failpoints_init_from_env())
    std::fprintf(stderr, "recordd: %d failpoint(s) armed from env\n", armed);
  if (!trace_path.empty()) obs::Tracer::instance().enable();
  // Selection-coverage maps are cheap (relaxed counters) and feed the
  // "coverage" section of the stats command, so the daemon records always.
  obs::coverage().enable();

  service::CompileService svc(opts);

  int exit_code = 0;
  if (!listen_spec.empty() || !unix_path.empty()) {
    net::LineServer::Options sopts;
    sopts.unix_path = unix_path;
    sopts.default_listing = want_listing;
    sopts.shard = shard;
    sopts.default_deadline_ms = default_deadline_ms;
    // Socket mode defaults to a 5-minute idle timeout; --idle-timeout 0
    // turns it off, any other value overrides it.
    sopts.idle_timeout_ms =
        idle_timeout_ms < 0 ? 300000 : std::uint64_t(idle_timeout_ms);
    sopts.request_timeout_ms = request_timeout_ms;
    sopts.max_parked = max_parked;
    if (!listen_spec.empty()) {
      std::size_t colon = listen_spec.rfind(':');
      if (colon != std::string::npos) {
        sopts.host = listen_spec.substr(0, colon);
        sopts.port = static_cast<std::uint16_t>(
            std::strtol(listen_spec.c_str() + colon + 1, nullptr, 10));
      } else {
        sopts.port = static_cast<std::uint16_t>(
            std::strtol(listen_spec.c_str(), nullptr, 10));
      }
    }
    net::LineServer server(svc, sopts);
    std::string error;
    if (!server.start(&error)) {
      std::fprintf(stderr, "recordd: %s\n", error.c_str());
      return 1;
    }
    if (!unix_path.empty())
      std::fprintf(stderr, "recordd: listening on %s\n", unix_path.c_str());
    else
      std::fprintf(stderr, "recordd: listening on %s:%u\n",
                   server.options().host.c_str(), unsigned(server.port()));
    // Serve until stdin closes — the conventional daemon lifetime under a
    // supervisor, and what lets tests drive a clean shutdown.
    std::string line;
    while (std::getline(std::cin, line)) {
    }
    server.stop();
  } else {
    exit_code = run_stdio(svc, shard, want_listing, opts.queue_capacity,
                          default_deadline_ms);
  }

  if (!trace_path.empty() &&
      !obs::Tracer::instance().write_chrome_trace(trace_path))
    std::fprintf(stderr, "recordd: cannot write trace to %s\n",
                 trace_path.c_str());

  if (want_stats) {
    service::RegistryStats r = svc.registry().stats();
    service::ServiceStats s = svc.stats();
    std::fprintf(stderr,
                 "recordd: %zu jobs (%zu failed), peak queue %zu | registry: "
                 "%zu hits, %zu coalesced, %zu misses (%zu from disk), "
                 "%zu evictions, %zu resident\n",
                 s.completed, s.failed, s.peak_queue, r.hits, r.coalesced,
                 r.misses, r.disk_hits, r.evictions, r.entries);
  }
  return exit_code;
}
