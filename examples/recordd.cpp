// recordd — the compile service as a JSON-lines daemon.
//
// Reads one request object per stdin line, compiles it on the shared worker
// pool, and streams one response object per line to stdout in request order
// (responses begin flowing while requests are still being read).
//
// Request:
//   {"model": "tms320c25",             -- built-in model, or:
//    "hdl": "PROCESSOR p; ...",        -- raw HDL source
//    "source": "kernel k; ...",        -- kernel-language program (optional:
//                                         without it the job only retargets,
//                                         pre-warming the registry)
//    "tag": "r42",                     -- echoed back (optional)
//    "options": {"engine": "auto"|"tables"|"interpreter",
//                "compact": true, "spills": true,
//                "listing": false}}        -- default: the --listing flag
//
// Response:
//   {"tag": "r42", "ok": true, "processor": "tms320c25", "code_size": 12,
//    "rts": 17, "times": {"queue_ms": ..., "target_ms": ...,
//    "frontend_ms": ..., "compile_ms": ...}, "listing": [...]?}
//   {"tag": "r43", "ok": false, "error": "..."}
//
// Control-plane commands (one response object each, in request order):
//   {"cmd": "stats"}             -- full observability snapshot: service
//                                   latency percentiles, registry occupancy,
//                                   every process-wide counter/histogram
//                                   (with raw bucket distributions), and a
//                                   per-model selection-coverage section
//   {"cmd": "trace", "last": N}  -- the N most recent completed trace spans
//                                   (flight recorder; needs --trace)
//   {"cmd": "explain", "model"|"hdl": ..., "kernel": ...}
//                                -- per-statement chosen derivation: rules
//                                   with costs, rejected alternatives,
//                                   immediate-fit decisions
//
// Flags: --workers N (default: hardware), --queue N (default 256),
//        --registry N (LRU capacity, default 16), --cache (persistent
//        target cache on), --stats (registry/service stats to stderr),
//        --trace FILE (record spans; Perfetto trace written to FILE on
//        exit, and the "trace" command serves the live flight recorder).
//
// Try:  printf '%s\n' '{"model": "demo", "source": "kernel k;\nbind a: R0;\ncell x: mem[1];\na = a + x;"}' | ./build/example_recordd
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <iostream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "obs/coverage.h"
#include "obs/trace.h"
#include "service/introspect.h"
#include "service/json.h"
#include "service/service.h"
#include "util/strings.h"

using namespace record;
using service::Json;

namespace {

service::CompileJob job_from_request(const Json& request,
                                     bool default_listing) {
  service::CompileJob job;
  job.tag = request["tag"].as_string();
  job.model = request["model"].as_string();
  job.hdl = request["hdl"].as_string();
  job.kernel = request["source"].as_string();
  const Json& options = request["options"];
  const std::string& engine = options["engine"].as_string();
  if (engine == "tables") job.options.engine = select::Engine::kTables;
  else if (engine == "interpreter")
    job.options.engine = select::Engine::kInterpreter;
  job.options.compact.enabled = options["compact"].as_bool(true);
  job.options.insert_spills = options["spills"].as_bool(true);
  job.want_listing = options["listing"].as_bool(default_listing);
  return job;
}

Json response_from_result(const service::JobResult& result) {
  Json out = Json::object();
  if (!result.tag.empty()) out.set("tag", Json(result.tag));
  out.set("ok", Json(result.ok));
  if (!result.ok) {
    out.set("error", Json(result.error));
    return out;
  }
  out.set("processor", Json(result.processor));
  out.set("code_size", Json(double(result.code_size)));
  out.set("rts", Json(double(result.rts)));
  Json times = Json::object();
  times.set("queue_ms", Json(result.times.queue_ms));
  times.set("target_ms", Json(result.times.target_ms));
  times.set("frontend_ms", Json(result.times.frontend_ms));
  times.set("compile_ms", Json(result.times.compile_ms));
  out.set("times", std::move(times));
  if (!result.listing.empty()) {
    Json lines = Json::array();
    for (const std::string& line : util::split(result.listing, '\n'))
      if (!line.empty()) lines.push(Json(line));
    out.set("listing", std::move(lines));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  service::CompileService::Options opts;
  opts.registry.capacity = 16;
  bool want_listing = false;
  bool want_stats = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> long {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "recordd: %s needs a value\n", flag);
        std::exit(2);
      }
      return std::strtol(argv[++i], nullptr, 10);
    };
    if (!std::strcmp(argv[i], "--workers")) {
      opts.workers = static_cast<std::size_t>(value("--workers"));
    } else if (!std::strcmp(argv[i], "--queue")) {
      opts.queue_capacity = static_cast<std::size_t>(value("--queue"));
    } else if (!std::strcmp(argv[i], "--registry")) {
      opts.registry.capacity = static_cast<std::size_t>(value("--registry"));
    } else if (!std::strcmp(argv[i], "--cache")) {
      opts.registry.retarget.use_target_cache = true;
    } else if (!std::strcmp(argv[i], "--listing")) {
      want_listing = true;
    } else if (!std::strcmp(argv[i], "--stats")) {
      want_stats = true;
    } else if (!std::strcmp(argv[i], "--trace")) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "recordd: --trace needs a file path\n");
        return 2;
      }
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: recordd [--workers N] [--queue N] [--registry N] "
                   "[--cache] [--listing] [--stats] [--trace FILE]"
                   "  < requests.jsonl\n");
      return 2;
    }
  }
  if (!trace_path.empty()) obs::Tracer::instance().enable();
  // Selection-coverage maps are cheap (relaxed counters) and feed the
  // "coverage" section of the stats command, so the daemon records always.
  obs::coverage().enable();

  service::CompileService svc(opts);

  // Submission pipelines against a printer thread that drains responses in
  // request order, so responses stream while stdin is still feeding. An
  // entry is a compile job's future, a deferred control-plane command, or an
  // already-rendered line (parse errors). Control commands are evaluated
  // when the printer reaches them, so a stats response counts every job
  // answered above it. The deque is bounded so a slow head-of-line job
  // cannot pile up an unbounded backlog behind it.
  struct Out {
    std::optional<std::future<service::JobResult>> job;
    std::optional<Json> control;  // the "cmd" request, evaluated in order
    std::string line;             // used when neither job nor control
  };
  const std::size_t max_pending = 2 * opts.queue_capacity;
  std::deque<Out> pending;
  std::mutex mu;
  std::condition_variable cv;
  bool input_done = false;

  std::thread printer([&] {
    for (;;) {
      Out next;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return input_done || !pending.empty(); });
        if (pending.empty()) return;
        next = std::move(pending.front());
        pending.pop_front();
      }
      cv.notify_all();  // reader may be waiting on the pending bound
      std::string line;
      if (next.job) {
        line = response_from_result(next.job->get()).dump();
      } else if (next.control) {
        line = service::handle_introspection(*next.control, svc)
                   .value_or(Json::object())
                   .dump();
      } else {
        line = std::move(next.line);
      }
      std::fprintf(stdout, "%s\n", line.c_str());
      std::fflush(stdout);
    }
  });

  auto enqueue = [&](Out out) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return pending.size() < max_pending; });
    pending.push_back(std::move(out));
    lock.unlock();
    cv.notify_one();
  };

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(std::cin, line)) {
    ++lineno;
    if (util::trim(line).empty()) continue;
    std::string error;
    std::optional<Json> request = Json::parse(line, &error);
    if (!request || !request->is_object()) {
      Json bad = Json::object();
      bad.set("ok", Json(false));
      bad.set("error", Json(util::fmt("line {}: bad request: {}", lineno,
                                      error.empty() ? "not an object"
                                                    : error)));
      enqueue(Out{std::nullopt, std::nullopt, bad.dump()});
      continue;
    }
    // Control-plane commands ("cmd": stats / trace) defer to the printer so
    // they observe every job answered before them.
    if (request->contains("cmd")) {
      enqueue(Out{std::nullopt, std::move(*request), {}});
      continue;
    }
    enqueue(Out{svc.submit(job_from_request(*request, want_listing)),
                std::nullopt,
                {}});
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    input_done = true;
  }
  cv.notify_all();
  printer.join();

  if (!trace_path.empty() &&
      !obs::Tracer::instance().write_chrome_trace(trace_path))
    std::fprintf(stderr, "recordd: cannot write trace to %s\n",
                 trace_path.c_str());

  if (want_stats) {
    service::RegistryStats r = svc.registry().stats();
    service::ServiceStats s = svc.stats();
    std::fprintf(stderr,
                 "recordd: %zu jobs (%zu failed), peak queue %zu | registry: "
                 "%zu hits, %zu coalesced, %zu misses (%zu from disk), "
                 "%zu evictions, %zu resident\n",
                 s.completed, s.failed, s.peak_queue, r.hits, r.coalesced,
                 r.misses, r.disk_hits, r.evictions, r.entries);
  }
  return 0;
}
