// DSP code generation on the TMS320C25-class model: compiles the DSPStone
// FIR kernel and shows the artefacts of every phase — extracted templates,
// grammar fragment (iburg-style BNF), selected RT cover, compacted words
// with MPYA fusions, and the binary encoding.
#include <cstdio>
#include <sstream>

#include "core/compiler.h"
#include "core/record.h"
#include "dspstone/handcode.h"
#include "dspstone/kernels.h"
#include "grammar/bnf.h"

using namespace record;

int main() {
  util::DiagnosticSink diags;
  auto target = core::Record::retarget_model("tms320c25",
                                             core::RetargetOptions{}, diags);
  if (!target) {
    std::printf("retargeting failed:\n%s\n", diags.str().c_str());
    return 1;
  }

  std::printf("== tms320c25: %zu extended RT templates ==\n",
              target->template_count());
  int shown = 0;
  for (const rtl::RTTemplate& t : target->base->templates) {
    if (t.dest != "ACC" && t.dest != "P") continue;
    std::printf("  %s\n", t.pretty(*target->base->mgr).c_str());
    if (++shown == 8) break;
  }

  std::printf("\n== grammar fragment (iburg-style) ==\n");
  std::istringstream bnf(grammar::to_bnf(target->tree_grammar));
  std::string line;
  int lines = 0;
  while (std::getline(bnf, line) && lines < 14) {
    if (line.find("nt:ACC:") == 0 || lines < 4) {
      std::printf("  %s\n", line.c_str());
      ++lines;
    }
  }

  ir::Program fir = dspstone::kernel("fir");
  std::printf("\n== IR ==\n%s", fir.str().c_str());

  core::Compiler compiler(*target);
  util::DiagnosticSink cd;
  auto result = compiler.compile(fir, core::CompileOptions{}, cd);
  if (!result) {
    std::printf("compile failed:\n%s\n", cd.str().c_str());
    return 1;
  }

  std::printf("\n== selected cover (%zu RTs) ==\n%s",
              result->selection.total_rts,
              result->selection.listing().c_str());
  std::printf("\n== compacted + encoded (%zu words; hand-written: %d) ==\n%s",
              result->code_size(), dspstone::hand_code_size("fir"),
              result->listing().c_str());
  return 0;
}
