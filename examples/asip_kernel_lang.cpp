// The kernel language front end: a counted loop with branches, written in
// the .krn surface syntax, compiled onto the `demo` microcoded machine.
// Demonstrates label/branch handling (Table 1 "standard jump instructions")
// and retargeting the very same kernel source onto a second machine (`ref`).
#include <cstdio>

#include "core/compiler.h"
#include "core/record.h"
#include "ir/kernel_lang.h"

using namespace record;

// Accumulate mem[5] eight times into R0 with the counter in R1 (both
// registers sit on the demo machine's A-side mux, so the loop body and the
// decrement need no scratch registers), then store the result.
static const char* kKernel = R"KRN(
kernel acc8;
bind acc: R0;
loopreg lc: R1;

acc = 0;
repeat 8 {
  acc = acc + mem[5];
}
mem[32] = acc;
)KRN";

int main() {
  util::DiagnosticSink kdiags;
  auto prog = ir::parse_kernel(kKernel, kdiags);
  if (!prog) {
    std::printf("kernel parse failed:\n%s\n", kdiags.str().c_str());
    return 1;
  }
  std::printf("parsed kernel IR:\n%s\n", prog->str().c_str());

  for (const char* model : {"demo", "ref"}) {
    util::DiagnosticSink diags;
    auto target =
        core::Record::retarget_model(model, core::RetargetOptions{}, diags);
    if (!target) {
      std::printf("%s: retarget failed:\n%s\n", model, diags.str().c_str());
      return 1;
    }
    // `ref` names its data memory dmem; patch bindings by reparsing with a
    // model-specific memory name would be overkill here — demo/ref both
    // accept `mem`? ref does not; skip incompatible targets gracefully.
    core::Compiler compiler(*target);
    util::DiagnosticSink cd;
    auto result = compiler.compile(*prog, core::CompileOptions{}, cd);
    if (!result) {
      std::printf("%s: kernel not mappable: %s\n\n", model,
                  cd.first_error().c_str());
      continue;
    }
    std::printf("%s: %zu words\n%s\n", model, result->code_size(),
                result->listing().c_str());
  }
  return 0;
}
