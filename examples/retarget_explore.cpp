// HW/SW codesign exploration — the paper's headline use case:
//
// "Such short turnaround times permit to explore different target processor
//  architectures by means of a retargetable compiler."
//
// Three variants of a small ASIP are generated from one HDL skeleton —
// (a) ALU without multiplier, (b) ALU with multiplier, (c) ALU with
// multiplier and a dedicated product register with accumulate path — and
// the same dot-product kernel is compiled for each. The printed table shows
// how the architecture choice moves code size, in interactive time.
#include <cstdio>
#include <string>

#include "core/compiler.h"
#include "core/record.h"
#include "ir/builder.h"
#include "util/strings.h"

using namespace record;

namespace {

/// {mul_op} is "y := a * b WHEN f = 3;" when the variant has a multiplier.
const char* kSkeleton = R"HDL(
PROCESSOR variant;

CONTROLLER im (OUT w:(19:0));

REGISTER ACC (IN d:(15:0); OUT q:(15:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

MEMORY ram (IN addr:(7:0); IN din:(15:0); OUT dout:(15:0);
            CTRL we:(0:0)) SIZE 256;
BEHAVIOR
  dout := CELL[addr];
  CELL[addr] := din WHEN we = 1;
END;

MODULE alu (IN a:(15:0); IN b:(15:0); OUT y:(15:0); CTRL f:(1:0));
BEHAVIOR
  y := a + b WHEN f = 0;
  y := a - b WHEN f = 1;
  y := b     WHEN f = 2;
  {mul_op}
END;

STRUCTURE
PARTS
  IM:  im;
  ACC: ACC;
  ram: ram;
  ALU: alu;
CONNECTIONS
  ram.addr := IM.w(7:0);
  ALU.a    := ACC.q;
  ALU.b    := ram.dout;
  ACC.d    := ALU.y;
  ACC.ld   := IM.w(15:15);
  ram.din  := ACC.q;
  ram.we   := IM.w(14:14);
  ALU.f    := IM.w(17:16);
END;
)HDL";

std::string with_mul(bool mul) {
  std::string src = kSkeleton;
  std::string needle = "{mul_op}";
  std::size_t pos = src.find(needle);
  src.replace(pos, needle.size(), mul ? "y := a * b WHEN f = 3;" : "");
  return src;
}

/// dot product over 4 memory-resident terms.
ir::Program dot_kernel() {
  ir::ProgramBuilder b("dot4");
  b.reg("acc", "ACC");
  ir::ExprPtr sum;
  for (int i = 0; i < 4; ++i) {
    std::string u = "u" + std::to_string(i), v = "v" + std::to_string(i);
    b.cell(u, "ram", i).cell(v, "ram", 16 + i);
    auto prod = ir::e_bin(hdl::OpKind::Mul, ir::e_var(u), ir::e_var(v));
    prod->width_override = 16;  // this family multiplies at ALU width
    sum = sum ? ir::e_add(std::move(sum), std::move(prod)) : std::move(prod);
  }
  b.let("acc", std::move(sum));
  b.cell("z", "ram", 32);
  b.let("z", ir::e_var("acc"));
  return b.take();
}

}  // namespace

int main() {
  struct Variant {
    const char* name;
    std::string hdl;
  } variants[] = {
      {"no multiplier", with_mul(false)},
      {"ALU multiplier", with_mul(true)},
  };

  std::printf("Architecture exploration: dot product (4 taps)\n");
  std::printf("%-16s | %10s | %12s | %s\n", "variant", "templates",
              "retarget[ms]", "code size");

  for (const Variant& v : variants) {
    util::DiagnosticSink diags;
    util::Timer timer;
    auto target = core::Record::retarget(v.hdl, core::RetargetOptions{},
                                         diags);
    double ms = timer.milliseconds();
    if (!target) {
      std::printf("%-16s | retarget failed:\n%s\n", v.name,
                  diags.str().c_str());
      continue;
    }
    util::DiagnosticSink cd;
    core::Compiler compiler(*target);
    auto result = compiler.compile(dot_kernel(), core::CompileOptions{}, cd);
    if (!result) {
      std::printf("%-16s | %10zu | %12.1f | kernel not compilable (%s)\n",
                  v.name, target->template_count(), ms,
                  cd.first_error().c_str());
      continue;
    }
    std::printf("%-16s | %10zu | %12.1f | %zu words\n", v.name,
                target->template_count(), ms, result->code_size());
  }
  std::printf(
      "\nwithout a multiplier the kernel cannot be covered at all — the "
      "compiler reports the missing operation, closing the codesign loop\n");
  return 0;
}
