// Quickstart: model a tiny accumulator processor in the HDL, retarget the
// code selector, compile a three-statement program and print the assembly.
//
// Build & run:  cmake --build build && ./build/examples/example_quickstart
#include <cstdio>

#include "core/compiler.h"
#include "core/record.h"
#include "grammar/bnf.h"
#include "ir/builder.h"

// A minimal load/store accumulator machine: one ALU (add/sub/pass), one
// accumulator, one 256-word memory addressed by an immediate field.
//
// Instruction word: f 17:16 | ld 15 | we 14 | addr 7:0.
static const char* kTinyHdl = R"HDL(
PROCESSOR tiny;

CONTROLLER im (OUT w:(17:0));

REGISTER ACC (IN d:(15:0); OUT q:(15:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;

MEMORY ram (IN addr:(7:0); IN din:(15:0); OUT dout:(15:0);
            CTRL we:(0:0)) SIZE 256;
BEHAVIOR
  dout := CELL[addr];
  CELL[addr] := din WHEN we = 1;
END;

MODULE alu (IN a:(15:0); IN b:(15:0); OUT y:(15:0); CTRL f:(1:0));
BEHAVIOR
  y := a + b WHEN f = 0;
  y := a - b WHEN f = 1;
  y := b     WHEN f = 2;
END;

STRUCTURE
PARTS
  IM:  im;
  ACC: ACC;
  ram: ram;
  ALU: alu;
CONNECTIONS
  ram.addr := IM.w(7:0);
  ALU.a    := ACC.q;
  ALU.b    := ram.dout;
  ACC.d    := ALU.y;
  ACC.ld   := IM.w(15:15);
  ram.din  := ACC.q;
  ram.we   := IM.w(14:14);
  ALU.f    := IM.w(17:16);
END;
)HDL";

int main() {
  using namespace record;

  // 1. Retarget: HDL -> netlist -> ISE -> extended templates -> grammar.
  util::DiagnosticSink diags;
  auto target = core::Record::retarget(kTinyHdl, core::RetargetOptions{},
                                       diags);
  if (!target) {
    std::printf("retargeting failed:\n%s\n", diags.str().c_str());
    return 1;
  }
  std::printf("retargeted '%s': %zu RT templates, %zu grammar rules\n\n",
              target->processor.c_str(), target->template_count(),
              target->tree_grammar.rules().size());

  // 2. Show a few extracted templates.
  std::printf("sample RT templates:\n");
  for (std::size_t i = 0; i < 5 && i < target->base->templates.size(); ++i)
    std::printf("  %s\n",
                target->base->templates[i].pretty(*target->base->mgr).c_str());

  // 3. Compile  z = x + y - five  (all operands in memory: this machine's
  // ALU path has no immediate operand, so constants live in cells).
  ir::ProgramBuilder b("demo_prog");
  b.cell("x", "ram", 10).cell("y", "ram", 11).cell("z", "ram", 12);
  b.cell("five", "ram", 13);
  b.let("z", ir::e_sub(ir::e_add(ir::e_var("x"), ir::e_var("y")),
                       ir::e_var("five")));

  core::Compiler compiler(*target);
  util::DiagnosticSink cd;
  auto result = compiler.compile(b.take(), core::CompileOptions{}, cd);
  if (!result) {
    std::printf("compilation failed:\n%s\n", cd.str().c_str());
    return 1;
  }
  std::printf("\ncompiled z = x + y - five (%zu words):\n%s\n",
              result->code_size(), result->listing().c_str());
  return 0;
}
