#include <gtest/gtest.h>

#include <cstdlib>

#include "util/diagnostics.h"
#include "util/failpoint.h"
#include "util/strings.h"
#include "util/timer.h"

namespace record::util {
namespace {

TEST(Strings, IsIdentifierAcceptsTypicalNames) {
  EXPECT_TRUE(is_identifier("acc"));
  EXPECT_TRUE(is_identifier("_tmp0"));
  EXPECT_TRUE(is_identifier("R2"));
}

TEST(Strings, IsIdentifierRejectsMalformed) {
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("2x"));
  EXPECT_FALSE(is_identifier("a-b"));
  EXPECT_FALSE(is_identifier("a.b"));
}

TEST(Strings, ToLowerIsAsciiOnly) {
  EXPECT_EQ(to_lower("PROCessor"), "processor");
  EXPECT_EQ(to_lower("R2_D"), "r2_d");
}

TEST(Strings, SplitPreservesEmptyFields) {
  auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitSingleField) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, TrimStripsBothEnds) {
  EXPECT_EQ(trim("  x "), "x");
  EXPECT_EQ(trim("\t\n a b \r"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, ParseIntDecimal) {
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_EQ(parse_int("0").value(), 0);
}

TEST(Strings, ParseIntHexAndBinary) {
  EXPECT_EQ(parse_int("0x1f").value(), 31);
  EXPECT_EQ(parse_int("0b101").value(), 5);
}

TEST(Strings, ParseIntRejectsGarbage) {
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("12x").has_value());
  EXPECT_FALSE(parse_int("0x").has_value());
}

TEST(Strings, JoinWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, FmtSubstitutesInOrder) {
  EXPECT_EQ(fmt("{} + {} = {}", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(fmt("port '{}'", "dout"), "port 'dout'");
}

TEST(Strings, FmtHandlesBoolAndChar) {
  EXPECT_EQ(fmt("{} {}", true, 'x'), "true x");
}

TEST(Strings, FmtExtraPlaceholdersStayLiteral) {
  EXPECT_EQ(fmt("a {} b {}", 1), "a 1 b {}");
}

TEST(Diagnostics, SinkCountsBySeverity) {
  DiagnosticSink sink;
  sink.note({1, 1}, "n");
  sink.warning({2, 1}, "w");
  sink.error({3, 1}, "e");
  EXPECT_EQ(sink.error_count(), 1u);
  EXPECT_EQ(sink.warning_count(), 1u);
  EXPECT_FALSE(sink.ok());
  EXPECT_EQ(sink.all().size(), 3u);
}

TEST(Diagnostics, OkWithOnlyWarnings) {
  DiagnosticSink sink;
  sink.warning({}, "w");
  EXPECT_TRUE(sink.ok());
}

TEST(Diagnostics, FirstErrorSkipsNotes) {
  DiagnosticSink sink;
  sink.note({}, "first note");
  sink.error({7, 3}, "boom");
  EXPECT_NE(sink.first_error().find("boom"), std::string::npos);
  EXPECT_NE(sink.first_error().find("7:3"), std::string::npos);
}

TEST(Diagnostics, StrRendersAllLines) {
  DiagnosticSink sink;
  sink.error({1, 2}, "one");
  sink.error({3, 4}, "two");
  std::string s = sink.str();
  EXPECT_NE(s.find("one"), std::string::npos);
  EXPECT_NE(s.find("two"), std::string::npos);
}

TEST(Diagnostics, ClearResets) {
  DiagnosticSink sink;
  sink.error({}, "x");
  sink.clear();
  EXPECT_TRUE(sink.ok());
  EXPECT_TRUE(sink.empty());
}

TEST(Diagnostics, UnknownLocRendering) {
  SourceLoc loc;
  EXPECT_FALSE(loc.known());
  EXPECT_EQ(loc.str(), "<unknown>");
  EXPECT_EQ((SourceLoc{4, 7}).str(), "4:7");
}

TEST(Timer, MeasuresNonNegativeDurations) {
  Timer t;
  volatile int sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.milliseconds(), t.seconds());
}

TEST(PhaseTimes, RecordsAndTotals) {
  PhaseTimes pt;
  pt.record("ise", 1.5);
  pt.record("grammar", 0.5);
  EXPECT_DOUBLE_EQ(pt.total(), 2.0);
  EXPECT_DOUBLE_EQ(pt.get("ise"), 1.5);
  EXPECT_DOUBLE_EQ(pt.get("missing"), 0.0);
}

TEST(Failpoint, DisarmedSitesNeverFire) {
  failpoint_disarm_all();
  EXPECT_FALSE(failpoint("util_test.nowhere"));
  EXPECT_TRUE(failpoint_list().empty());
}

TEST(Failpoint, RejectsMalformedSpecs) {
  std::string error;
  EXPECT_FALSE(failpoint_arm("util_test.bad", "every:0", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(failpoint_arm("util_test.bad", "sleep:999999", &error));
  EXPECT_FALSE(failpoint_arm("util_test.bad", "bogus", &error));
  EXPECT_FALSE(failpoint_arm("util_test.bad", "every:x", &error));
  EXPECT_TRUE(failpoint_list().empty());  // nothing was armed by the rejects
}

TEST(Failpoint, OnceFiresExactlyOnce) {
  failpoint_disarm_all();
  ASSERT_TRUE(failpoint_arm("util_test.once", "once"));
  EXPECT_TRUE(failpoint("util_test.once"));
  EXPECT_FALSE(failpoint("util_test.once"));
  EXPECT_FALSE(failpoint("util_test.once"));
  std::vector<FailpointInfo> list = failpoint_list();
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].name, "util_test.once");
  EXPECT_EQ(list[0].hits, 3u);
  EXPECT_EQ(list[0].fires, 1u);
  failpoint_disarm_all();
}

TEST(Failpoint, EveryNFiresOnEachNthHit) {
  failpoint_disarm_all();
  ASSERT_TRUE(failpoint_arm("util_test.every", "every:3"));
  int fired = 0;
  for (int i = 0; i < 9; ++i)
    if (failpoint("util_test.every")) ++fired;
  EXPECT_EQ(fired, 3);  // hits 3, 6, 9
  // Re-arming resets the counts.
  ASSERT_TRUE(failpoint_arm("util_test.every", "every:1"));
  EXPECT_TRUE(failpoint("util_test.every"));
  failpoint_disarm_all();
}

TEST(Failpoint, SleepPassesButCountsAsFire) {
  failpoint_disarm_all();
  ASSERT_TRUE(failpoint_arm("util_test.sleep", "sleep:1"));
  const std::uint64_t before = failpoint_fire_total();
  EXPECT_FALSE(failpoint("util_test.sleep"));  // sleeps, then passes
  EXPECT_EQ(failpoint_fire_total(), before + 1);
  failpoint_disarm_all();
}

TEST(Failpoint, DisarmAndOffRemoveSites) {
  failpoint_disarm_all();
  ASSERT_TRUE(failpoint_arm("util_test.a", "once"));
  ASSERT_TRUE(failpoint_arm("util_test.b", "every:2"));
  EXPECT_EQ(failpoint_list().size(), 2u);
  EXPECT_TRUE(failpoint_disarm("util_test.a"));
  EXPECT_FALSE(failpoint_disarm("util_test.a"));  // already gone
  ASSERT_TRUE(failpoint_arm("util_test.b", "off"));  // "off" disarms too
  EXPECT_TRUE(failpoint_list().empty());
  EXPECT_FALSE(failpoint("util_test.a"));
}

TEST(Failpoint, InitFromEnvParsesList) {
  failpoint_disarm_all();
  ::setenv("UTIL_TEST_FAILPOINTS", "util_test.x=once;util_test.y=every:2", 1);
  EXPECT_EQ(failpoints_init_from_env("UTIL_TEST_FAILPOINTS"), 2);
  std::vector<FailpointInfo> list = failpoint_list();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].name, "util_test.x");
  EXPECT_EQ(list[0].spec, "once");
  EXPECT_EQ(list[1].name, "util_test.y");
  EXPECT_EQ(list[1].spec, "every:2");
  // Malformed entries are skipped, valid ones still arm.
  ::setenv("UTIL_TEST_FAILPOINTS", "bad spec=nope,util_test.z=sleep:1", 1);
  EXPECT_EQ(failpoints_init_from_env("UTIL_TEST_FAILPOINTS"), 1);
  ::unsetenv("UTIL_TEST_FAILPOINTS");
  failpoint_disarm_all();
}

}  // namespace
}  // namespace record::util
