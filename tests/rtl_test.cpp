#include <gtest/gtest.h>

#include "rtl/extend.h"
#include "rtl/rewrite.h"
#include "rtl/template.h"

namespace record::rtl {
namespace {

RTNodePtr reg(const char* name, int w = 16) { return make_reg_read(name, w); }

RTNodePtr add(RTNodePtr a, RTNodePtr b, int w = 16) {
  std::vector<RTNodePtr> kids;
  kids.push_back(std::move(a));
  kids.push_back(std::move(b));
  return make_op(OpSig{hdl::OpKind::Add, "", w}, std::move(kids));
}

RTNodePtr sub(RTNodePtr a, RTNodePtr b, int w = 16) {
  std::vector<RTNodePtr> kids;
  kids.push_back(std::move(a));
  kids.push_back(std::move(b));
  return make_op(OpSig{hdl::OpKind::Sub, "", w}, std::move(kids));
}

RTNodePtr shl(RTNodePtr a, RTNodePtr b, int w = 16) {
  std::vector<RTNodePtr> kids;
  kids.push_back(std::move(a));
  kids.push_back(std::move(b));
  return make_op(OpSig{hdl::OpKind::Shl, "", w}, std::move(kids));
}

RTTemplate make_template(RTNodePtr value, const char* dest = "A") {
  RTTemplate t;
  t.dest_kind = DestKind::Register;
  t.dest = dest;
  t.dest_width = 16;
  t.value = std::move(value);
  t.provenance = "test";
  return t;
}

TEST(OpSig, NamesIncludeWidth) {
  EXPECT_EQ((OpSig{hdl::OpKind::Add, "", 16}).name(), "+.16");
  EXPECT_EQ((OpSig{hdl::OpKind::Mul, "", 32}).name(), "*.32");
  EXPECT_EQ((OpSig{hdl::OpKind::Custom, "RND", 16}).name(), "RND.16");
}

TEST(OpSig, SliceOpNaming) {
  OpSig lo = slice_op_sig(15, 0);
  EXPECT_EQ(lo.name(), "bits15_0.16");
  OpSig hi = slice_op_sig(31, 16);
  EXPECT_EQ(hi.name(), "bits31_16.16");
  EXPECT_EQ(hi.width, 16);
}

TEST(RTNode, ToStringCanonical) {
  RTNodePtr t = add(reg("A"), make_hard_const(1, 16));
  EXPECT_EQ(to_string(*t), "+.16(A,#1.16)");
  RTNodePtr m = make_mem_load("ram", 16, make_imm({0, 1, 2, 3}));
  EXPECT_EQ(to_string(*m), "ram[#imm.4@0]");
  RTNodePtr m2 = make_mem_load("ram", 16, make_imm({8, 9}));
  EXPECT_EQ(to_string(*m2), "ram[#imm.2@8]");
}

TEST(RTNode, EqualIsStructural) {
  RTNodePtr a = add(reg("A"), reg("B"));
  RTNodePtr b = add(reg("A"), reg("B"));
  RTNodePtr c = add(reg("B"), reg("A"));
  EXPECT_TRUE(equal(*a, *b));
  EXPECT_FALSE(equal(*a, *c));
}

TEST(RTNode, CloneIsDeep) {
  RTNodePtr a = add(reg("A"), reg("B"));
  RTNodePtr b = a->clone();
  EXPECT_TRUE(equal(*a, *b));
  EXPECT_NE(a->children[0].get(), b->children[0].get());
}

TEST(RTNode, TreeSize) {
  EXPECT_EQ(tree_size(*reg("A")), 1u);
  EXPECT_EQ(tree_size(*add(reg("A"), add(reg("B"), reg("C")))), 5u);
}

TEST(TemplateBase, AddUniqueDeduplicates) {
  TemplateBase base;
  base.mgr = std::make_shared<bdd::BddManager>();
  EXPECT_TRUE(base.add_unique(make_template(add(reg("A"), reg("B")))));
  EXPECT_FALSE(base.add_unique(make_template(add(reg("A"), reg("B")))));
  EXPECT_TRUE(base.add_unique(make_template(add(reg("B"), reg("A")))));
  EXPECT_EQ(base.size(), 2u);
  EXPECT_EQ(base.templates[0].id, 0);
  EXPECT_EQ(base.templates[1].id, 1);
}

TEST(Extend, CommutativityAddsSwappedVariant) {
  TemplateBase base;
  base.mgr = std::make_shared<bdd::BddManager>();
  base.add_unique(make_template(add(reg("A"), reg("B"))));
  ExtendOptions options;
  ExtendStats stats = extend_template_base(base, options);
  EXPECT_EQ(stats.commutative_added, 1u);
  EXPECT_EQ(base.templates[1].signature(), "A := +.16(B,A)");
  EXPECT_EQ(base.templates[1].provenance, "commute(0)");
}

TEST(Extend, NonCommutativeOpsUntouched) {
  TemplateBase base;
  base.mgr = std::make_shared<bdd::BddManager>();
  base.add_unique(make_template(sub(reg("A"), reg("B"))));
  ExtendStats stats = extend_template_base(base, ExtendOptions{});
  EXPECT_EQ(stats.commutative_added, 0u);
}

TEST(Extend, IdenticalChildrenNotSwapped) {
  TemplateBase base;
  base.mgr = std::make_shared<bdd::BddManager>();
  base.add_unique(make_template(add(reg("A"), reg("A"))));
  ExtendStats stats = extend_template_base(base, ExtendOptions{});
  EXPECT_EQ(stats.commutative_added, 0u);
}

TEST(Extend, NestedCommutativeNodesGenerateCombinations) {
  TemplateBase base;
  base.mgr = std::make_shared<bdd::BddManager>();
  // (A + B) + C: three commutable nodes -> 3 variants (2^2 - 1).
  base.add_unique(make_template(add(add(reg("A"), reg("B")), reg("C"))));
  ExtendStats stats = extend_template_base(base, ExtendOptions{});
  EXPECT_EQ(stats.commutative_added, 3u);
  EXPECT_EQ(base.size(), 4u);
}

TEST(Extend, VariantCapRespected) {
  TemplateBase base;
  base.mgr = std::make_shared<bdd::BddManager>();
  // Deep sum: many commutative nodes.
  RTNodePtr t = reg("R0");
  for (int i = 1; i < 12; ++i)
    t = add(std::move(t), reg(("R" + std::to_string(i)).c_str()));
  base.add_unique(make_template(std::move(t)));
  ExtendOptions options;
  options.max_variants_per_template = 16;
  ExtendStats stats = extend_template_base(base, options);
  EXPECT_LE(stats.commutative_added, 16u);
  EXPECT_EQ(stats.variant_capped, 1u);
}

TEST(Rewrite, Shl1BecomesAddSelf) {
  RewriteLibrary lib = RewriteLibrary::standard();
  RTNodePtr t = shl(reg("A"), make_hard_const(1, 16));
  const RewriteRule* rule = nullptr;
  for (const RewriteRule& r : lib.rules())
    if (r.name == "shl1-to-add") rule = &r;
  ASSERT_NE(rule, nullptr);
  auto variants = apply_rule(*t, *rule);
  ASSERT_EQ(variants.size(), 1u);
  EXPECT_EQ(to_string(*variants[0]), "+.16(A,A)");
}

TEST(Rewrite, VariableBindingIsConsistent) {
  // add(x, neg(y)) -> sub(x, y): x and y bind distinct subtrees.
  RewriteLibrary lib = RewriteLibrary::standard();
  const RewriteRule* rule = nullptr;
  for (const RewriteRule& r : lib.rules())
    if (r.name == "addneg-to-sub") rule = &r;
  ASSERT_NE(rule, nullptr);
  std::vector<RTNodePtr> neg_kids;
  neg_kids.push_back(reg("B"));
  RTNodePtr t = add(reg("A"), make_op(OpSig{hdl::OpKind::Neg, "", 16},
                                      std::move(neg_kids)));
  auto variants = apply_rule(*t, *rule);
  ASSERT_EQ(variants.size(), 1u);
  EXPECT_EQ(to_string(*variants[0]), "-.16(A,B)");
}

TEST(Rewrite, AppliesAtInnerPositions) {
  RewriteLibrary lib = RewriteLibrary::standard();
  const RewriteRule* rule = nullptr;
  for (const RewriteRule& r : lib.rules())
    if (r.name == "add0-elim") rule = &r;
  ASSERT_NE(rule, nullptr);
  // sub(add(A, 0), B) -> sub(A, B) via the inner position.
  RTNodePtr t = sub(add(reg("A"), make_hard_const(0, 16)), reg("B"));
  auto variants = apply_rule(*t, *rule);
  ASSERT_EQ(variants.size(), 1u);
  EXPECT_EQ(to_string(*variants[0]), "-.16(A,B)");
}

TEST(Rewrite, NoMatchYieldsNoVariants) {
  RewriteLibrary lib = RewriteLibrary::standard();
  RTNodePtr t = reg("A");
  for (const RewriteRule& r : lib.rules())
    EXPECT_TRUE(apply_rule(*t, r).empty()) << r.name;
}

TEST(Rewrite, ExtendAppliesLibrary) {
  TemplateBase base;
  base.mgr = std::make_shared<bdd::BddManager>();
  base.add_unique(make_template(shl(reg("A"), make_hard_const(1, 16))));
  RewriteLibrary lib = RewriteLibrary::standard();
  ExtendOptions options;
  options.commutativity = false;
  options.rewrites = &lib;
  ExtendStats stats = extend_template_base(base, options);
  EXPECT_GE(stats.rewrite_added, 1u);
  bool found = false;
  for (const auto& t : base.templates)
    if (t.signature() == "A := +.16(A,A)") found = true;
  EXPECT_TRUE(found);
}

TEST(Rewrite, CustomLibrary) {
  // mul(x, 2) => shl(x, 1)
  RewriteLibrary lib;
  {
    std::vector<RWPatPtr> l;
    l.push_back(pat_var("x"));
    l.push_back(pat_const(2));
    std::vector<RWPatPtr> r;
    r.push_back(pat_var("x"));
    r.push_back(pat_const(1));
    lib.add("mul2-to-shl", pat_op(hdl::OpKind::Mul, std::move(l)),
            pat_op(hdl::OpKind::Shl, std::move(r)));
  }
  std::vector<RTNodePtr> kids;
  kids.push_back(reg("A"));
  kids.push_back(make_hard_const(2, 16));
  RTNodePtr t = make_op(OpSig{hdl::OpKind::Mul, "", 16}, std::move(kids));
  auto variants = apply_rule(*t, lib.rules()[0]);
  ASSERT_EQ(variants.size(), 1u);
  EXPECT_EQ(to_string(*variants[0]), "<<.16(A,#1.16)");
}

TEST(Template, SignatureIncludesMemoryAddress) {
  RTTemplate t;
  t.dest_kind = DestKind::Memory;
  t.dest = "ram";
  t.dest_width = 16;
  t.addr = make_imm({0, 1, 2});
  t.value = reg("A");
  EXPECT_EQ(t.signature(), "ram[#imm.3@0] := A");
}

TEST(Template, PrettyIncludesCondition) {
  TemplateBase base;
  base.mgr = std::make_shared<bdd::BddManager>();
  int v = base.mgr->new_var("I[0]");
  RTTemplate t = make_template(reg("B"));
  t.cond = base.mgr->var(v);
  EXPECT_NE(t.pretty(*base.mgr).find("I[0]"), std::string::npos);
}

}  // namespace
}  // namespace record::rtl
