// End-to-end integration tests: HDL text -> retarget -> compile -> binary,
// including the generated-C-parser path (the full Table 3 pipeline) and
// cross-model retargeting of one IR program.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/compiler.h"
#include "core/record.h"
#include "grammar/bnf.h"
#include "ir/builder.h"
#include "ir/kernel_lang.h"

namespace record {
namespace {

constexpr const char* kTiny = R"(
PROCESSOR tiny;
CONTROLLER im (OUT w:(17:0));
REGISTER ACC (IN d:(15:0); OUT q:(15:0); CTRL ld:(0:0));
BEHAVIOR q := d WHEN ld = 1; END;
MEMORY ram (IN addr:(7:0); IN din:(15:0); OUT dout:(15:0);
            CTRL we:(0:0)) SIZE 256;
BEHAVIOR
  dout := CELL[addr];
  CELL[addr] := din WHEN we = 1;
END;
MODULE alu (IN a:(15:0); IN b:(15:0); OUT y:(15:0); CTRL f:(1:0));
BEHAVIOR
  y := a + b WHEN f = 0;
  y := a - b WHEN f = 1;
  y := b     WHEN f = 2;
END;
STRUCTURE
PARTS
  IM: im;  ACC: ACC;  ram: ram;  ALU: alu;
CONNECTIONS
  ram.addr := IM.w(7:0);
  ALU.a := ACC.q;
  ALU.b := ram.dout;
  ACC.d := ALU.y;
  ACC.ld := IM.w(15:15);
  ram.din := ACC.q;
  ram.we := IM.w(14:14);
  ALU.f := IM.w(17:16);
END;
)";

TEST(Integration, TinyMachineFullPipeline) {
  util::DiagnosticSink diags;
  auto target = core::Record::retarget(kTiny, core::RetargetOptions{},
                                       diags);
  ASSERT_TRUE(target) << diags.str();
  EXPECT_EQ(target->processor, "tiny");
  EXPECT_GT(target->template_count(), 4u);

  ir::ProgramBuilder b("p");
  b.cell("x", "ram", 1).cell("y", "ram", 2).cell("z", "ram", 3);
  b.let("z", ir::e_add(ir::e_var("x"), ir::e_var("y")));
  core::Compiler compiler(*target);
  util::DiagnosticSink cd;
  auto result = compiler.compile(b.take(), core::CompileOptions{}, cd);
  ASSERT_TRUE(result) << cd.str();
  // LAC x; ADD y; SACL z.
  EXPECT_EQ(result->code_size(), 3u);
  for (const emit::EncodedWord& w : result->encoded.assembly.words)
    EXPECT_EQ(w.bits.size(), 18u);
}

TEST(Integration, RetargetTimesAreRecorded) {
  util::DiagnosticSink diags;
  auto target = core::Record::retarget(kTiny, core::RetargetOptions{},
                                       diags);
  ASSERT_TRUE(target);
  EXPECT_GT(target->times.total(), 0.0);
  EXPECT_GE(target->times.get("ise"), 0.0);
}

TEST(Integration, BnfExportNonEmptyForRealModel) {
  util::DiagnosticSink diags;
  auto target = core::Record::retarget(kTiny, core::RetargetOptions{},
                                       diags);
  ASSERT_TRUE(target);
  std::string bnf = grammar::to_bnf(target->tree_grammar);
  EXPECT_NE(bnf.find("%start"), std::string::npos);
  EXPECT_NE(bnf.find("nt:ACC"), std::string::npos);
}

TEST(Integration, EmittedCParserCompilesAndRuns) {
  util::DiagnosticSink diags;
  core::RetargetOptions options;
  options.emit_c_parser = true;
  options.compile_c_parser = true;
  options.work_dir = ::testing::TempDir();
  auto target = core::Record::retarget(kTiny, options, diags);
  ASSERT_TRUE(target) << diags.str();
  EXPECT_FALSE(target->c_parser_source.empty());
  EXPECT_GT(target->times.get("parsergen"), 0.0);
  if (!target->c_compile_ok)
    GTEST_SKIP() << "no host C compiler available";
  EXPECT_GT(target->c_compile_seconds, 0.0);
  // The produced executable must run and print the rule count.
  std::string bin =
      options.work_dir + "/record_parser_" + target->processor;
  std::string cmd = bin + " > " + bin + ".out";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  std::ifstream in(bin + ".out");
  std::string line;
  std::getline(in, line);
  EXPECT_NE(line.find("burs parser"), std::string::npos);
}

TEST(Integration, KernelLanguageCompilesOnDemoMachine) {
  util::DiagnosticSink kdiags;
  auto prog = ir::parse_kernel(R"(
kernel sum4;
bind acc: R0;
cell a: mem[1];
cell b: mem[2];
acc = a + b;
mem[9] = acc;
)",
                               kdiags);
  ASSERT_TRUE(prog) << kdiags.str();

  util::DiagnosticSink diags;
  auto target = core::Record::retarget_model("demo", core::RetargetOptions{},
                                             diags);
  ASSERT_TRUE(target) << diags.str();
  core::Compiler compiler(*target);
  util::DiagnosticSink cd;
  auto result = compiler.compile(*prog, core::CompileOptions{}, cd);
  ASSERT_TRUE(result) << cd.str();
  EXPECT_GT(result->code_size(), 0u);
}

TEST(Integration, SameProgramRetargetsAcrossMachines) {
  // One IR program (accumulator + memory cells with model-specific names
  // resolved through a tiny indirection) compiles on three machines.
  struct Target {
    const char* model;
    const char* acc;
    const char* mem;
  } targets[] = {
      {"demo", "R0", "mem"},
      {"ref", "R0", "dmem"},
      {"tms320c25", "ACC", "ram"},
  };
  for (const Target& t : targets) {
    util::DiagnosticSink diags;
    auto target = core::Record::retarget_model(t.model,
                                               core::RetargetOptions{},
                                               diags);
    ASSERT_TRUE(target) << t.model << ": " << diags.str();
    ir::ProgramBuilder b("portable");
    b.reg("acc", t.acc);
    b.cell("x", t.mem, 1).cell("y", t.mem, 2);
    b.let("acc", ir::e_add(ir::e_var("x"), ir::e_var("y")));
    core::Compiler compiler(*target);
    util::DiagnosticSink cd;
    auto result = compiler.compile(b.take(), core::CompileOptions{}, cd);
    ASSERT_TRUE(result) << t.model << ": " << cd.str();
    EXPECT_GT(result->code_size(), 0u) << t.model;
  }
}

TEST(Integration, DiagnosticsForUnknownModel) {
  util::DiagnosticSink diags;
  EXPECT_FALSE(core::Record::retarget_model("vax", core::RetargetOptions{},
                                            diags));
  EXPECT_FALSE(diags.ok());
}

TEST(Integration, CompilerRejectsUnmappableProgram) {
  util::DiagnosticSink diags;
  auto target = core::Record::retarget(kTiny, core::RetargetOptions{},
                                       diags);
  ASSERT_TRUE(target);
  ir::ProgramBuilder b("bad");
  b.cell("x", "ram", 1).cell("z", "ram", 3);
  b.let("z", ir::e_mul(ir::e_var("x"), ir::e_var("x")));  // no multiplier
  core::Compiler compiler(*target);
  util::DiagnosticSink cd;
  EXPECT_FALSE(compiler.compile(b.take(), core::CompileOptions{}, cd));
  EXPECT_FALSE(cd.ok());
}

}  // namespace
}  // namespace record
