// Tests for the concurrent compile service (src/service): single-flight and
// LRU semantics of TargetRegistry, CompileService pool behaviour, the
// JSON-lines value type, and the 8-worker mixed-model stress test asserting
// concurrent results are bit-identical to sequential runs. Built-in model
// retargets here run with the persistent cache off, so every test is
// hermetic with respect to on-disk state.
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "models/workload.h"
#include "obs/coverage.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/introspect.h"
#include "service/json.h"
#include "service/registry.h"
#include "service/service.h"
#include "service/wire.h"
#include "util/failpoint.h"

using namespace record;
using service::CompileJob;
using service::CompileService;
using service::JobResult;
using service::Json;
using service::TargetRegistry;

namespace {

// The shared mixed-model workload (all six built-in models).
using models::chain_program;
using models::kChainShapes;
constexpr std::size_t kModelCount = std::size(kChainShapes);

core::RetargetOptions no_disk_cache() {
  core::RetargetOptions o;
  o.use_target_cache = false;
  return o;
}

}  // namespace

// --- TargetRegistry ----------------------------------------------------------

TEST(TargetRegistry, SingleFlightRetargetsOnce) {
  TargetRegistry::Options opts;
  opts.retarget = no_disk_cache();
  TargetRegistry registry(opts);

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const core::RetargetResult>> results(kThreads);
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      // Rough rendezvous so requests overlap the leader's pipeline run.
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      util::DiagnosticSink diags;
      results[static_cast<std::size_t>(i)] =
          registry.get_model("demo", diags);
    });
  }
  for (std::thread& t : threads) t.join();

  for (const auto& r : results) {
    ASSERT_TRUE(r);
    // Exactly one pipeline run: everyone shares the leader's object.
    EXPECT_EQ(r.get(), results[0].get());
  }
  service::RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.coalesced, kThreads - 1u);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(TargetRegistry, LruEvictsLeastRecentlyUsed) {
  TargetRegistry::Options opts;
  opts.capacity = 2;
  opts.retarget = no_disk_cache();
  TargetRegistry registry(opts);

  util::DiagnosticSink diags;
  auto demo1 = registry.get_model("demo", diags);
  auto mano = registry.get_model("manocpu", diags);
  ASSERT_TRUE(demo1);
  ASSERT_TRUE(mano);
  EXPECT_EQ(registry.stats().entries, 2u);
  EXPECT_EQ(registry.stats().evictions, 0u);

  // Touch demo so manocpu becomes the LRU victim.
  auto demo2 = registry.get_model("demo", diags);
  EXPECT_EQ(demo2.get(), demo1.get());

  auto tanen = registry.get_model("tanenbaum", diags);
  ASSERT_TRUE(tanen);
  EXPECT_EQ(registry.stats().evictions, 1u);
  EXPECT_EQ(registry.stats().entries, 2u);

  // demo survived (it was touched); manocpu was evicted and re-retargets.
  auto demo3 = registry.get_model("demo", diags);
  EXPECT_EQ(demo3.get(), demo1.get());
  std::size_t misses_before = registry.stats().misses;
  auto mano2 = registry.get_model("manocpu", diags);
  ASSERT_TRUE(mano2);
  EXPECT_EQ(registry.stats().misses, misses_before + 1);
  EXPECT_NE(mano2.get(), mano.get());  // fresh pipeline run
  // The evicted result stays alive for holders of the old shared_ptr.
  EXPECT_EQ(mano->processor, mano2->processor);
}

TEST(TargetRegistry, UnknownModelFailsWithDiagnostic) {
  TargetRegistry registry;
  util::DiagnosticSink diags;
  EXPECT_FALSE(registry.get_model("no_such_cpu", diags));
  EXPECT_NE(diags.str().find("no_such_cpu"), std::string::npos);
  EXPECT_EQ(registry.stats().misses, 0u);
}

TEST(TargetRegistry, RejectsExtraRewrites) {
  TargetRegistry registry;
  rtl::RewriteLibrary lib;
  core::RetargetOptions opts = no_disk_cache();
  opts.extra_rewrites = &lib;
  util::DiagnosticSink diags;
  EXPECT_FALSE(registry.get_model("demo", opts, diags));
  EXPECT_NE(diags.str().find("extra_rewrites"), std::string::npos);
}

// --- CompileService ----------------------------------------------------------

TEST(CompileService, BatchPreservesOrderAndTags) {
  CompileService::Options opts;
  opts.workers = 2;
  opts.registry.retarget = no_disk_cache();
  CompileService svc(opts);

  std::vector<CompileJob> jobs;
  for (int i = 0; i < 8; ++i) {
    const models::ChainShape& s =
        kChainShapes[static_cast<std::size_t>(i) % kModelCount];
    CompileJob job;
    job.tag = "job-" + std::to_string(i);
    job.model = s.model;
    job.program =
        std::make_shared<const ir::Program>(chain_program(s, 2 + i % 3));
    jobs.push_back(std::move(job));
  }
  std::vector<JobResult> results = svc.compile_batch(std::move(jobs));
  ASSERT_EQ(results.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    const JobResult& r = results[static_cast<std::size_t>(i)];
    EXPECT_EQ(r.tag, "job-" + std::to_string(i));
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.code_size, 0u);
    EXPECT_FALSE(r.listing.empty());
  }
  service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.submitted, 8u);
  EXPECT_EQ(stats.completed, 8u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(CompileService, CompilesKernelLanguageSource) {
  CompileService::Options opts;
  opts.workers = 1;
  opts.registry.retarget = no_disk_cache();
  CompileService svc(opts);

  CompileJob job;
  job.model = "demo";
  job.kernel = R"(
kernel sum4;
bind acc: R0;
cell a: mem[1];
cell b: mem[2];
acc = a + b;
mem[9] = acc;
)";
  std::future<JobResult> f = svc.submit(std::move(job));
  JobResult r = f.get();
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.processor, "demo");
  EXPECT_GT(r.code_size, 0u);
  ASSERT_TRUE(r.compiled.has_value());
  EXPECT_EQ(r.compiled->code_size(), r.code_size);
}

TEST(CompileService, RetargetOnlyJobWarmsRegistry) {
  CompileService::Options opts;
  opts.workers = 1;
  opts.registry.retarget = no_disk_cache();
  CompileService svc(opts);

  CompileJob warm;
  warm.model = "demo";
  JobResult r = svc.submit(std::move(warm)).get();
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.processor, "demo");
  EXPECT_EQ(r.code_size, 0u);
  EXPECT_EQ(svc.registry().stats().entries, 1u);
}

TEST(CompileService, ReportsJobErrors) {
  CompileService::Options opts;
  opts.workers = 1;
  opts.registry.retarget = no_disk_cache();
  CompileService svc(opts);

  CompileJob bad_model;
  bad_model.model = "no_such_cpu";
  JobResult r1 = svc.submit(std::move(bad_model)).get();
  EXPECT_FALSE(r1.ok);
  EXPECT_NE(r1.error.find("no_such_cpu"), std::string::npos);

  CompileJob bad_kernel;
  bad_kernel.model = "demo";
  bad_kernel.kernel = "kernel k; a = ;";
  JobResult r2 = svc.submit(std::move(bad_kernel)).get();
  EXPECT_FALSE(r2.ok);
  EXPECT_FALSE(r2.error.empty());
  EXPECT_EQ(svc.stats().failed, 2u);
}

TEST(CompileService, SubmitAfterShutdownIsRejected) {
  CompileService::Options opts;
  opts.workers = 1;
  opts.registry.retarget = no_disk_cache();
  CompileService svc(opts);
  svc.shutdown();
  CompileJob job;
  job.tag = "late";
  job.model = "demo";
  JobResult r = svc.submit(std::move(job)).get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.tag, "late");
  EXPECT_NE(r.error.find("shut down"), std::string::npos);
}

TEST(CompileService, QueueFullRejectionCarriesBackoffHint) {
  CompileService::Options opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  opts.registry.retarget = no_disk_cache();
  CompileService svc(opts);
  // Slow every worker job down so the queue actually fills: the sleep spec
  // injects latency and then PASSES, so all jobs still succeed.
  ASSERT_TRUE(util::failpoint_arm("service.worker.job", "sleep:20"));

  constexpr int kJobs = 8;
  std::atomic<int> done_ok{0}, done_total{0};
  std::size_t rejected = 0;
  std::uint64_t max_hint = 0;
  for (int i = 0; i < kJobs; ++i) {
    const models::ChainShape& s = kChainShapes[0];
    CompileJob job;
    job.tag = "j" + std::to_string(i);
    job.model = s.model;
    job.program = std::make_shared<const ir::Program>(chain_program(s, 3));
    CompileService::Callback done = [&](JobResult r) {
      if (r.ok) ++done_ok;
      ++done_total;
    };
    // A well-behaved client: honor the server's retry_after_ms on every
    // rejection. Every job must eventually land — zero losses.
    std::uint64_t hint = 0;
    while (!svc.try_submit_async(job, done, &hint)) {
      ++rejected;
      EXPECT_GE(hint, 1u);
      max_hint = std::max(max_hint, hint);
      std::this_thread::sleep_for(std::chrono::milliseconds(hint));
    }
  }
  svc.shutdown();
  util::failpoint_disarm_all();
  EXPECT_EQ(done_total.load(), kJobs);
  EXPECT_EQ(done_ok.load(), kJobs);
  EXPECT_GT(rejected, 0u);  // one worker + 20ms/job must overrun a queue of 1
  EXPECT_GE(max_hint, 1u);
  EXPECT_LE(max_hint, 1000u);  // hint stays within the documented clamp
}

TEST(CompileService, DeadlineExpiredInQueueReturnsStructuredError) {
  CompileService::Options opts;
  opts.workers = 1;
  opts.queue_capacity = 8;
  opts.registry.retarget = no_disk_cache();
  CompileService svc(opts);
  // 30ms of injected latency per job: the head job stalls the single worker
  // long enough for the 1ms-deadline job behind it to expire in the queue.
  ASSERT_TRUE(util::failpoint_arm("service.worker.job", "sleep:30"));

  const models::ChainShape& s = kChainShapes[0];
  CompileJob head;
  head.model = s.model;
  head.program = std::make_shared<const ir::Program>(chain_program(s, 3));
  std::future<JobResult> head_f = svc.submit(std::move(head));

  CompileJob doomed;
  doomed.tag = "doomed";
  doomed.model = s.model;
  doomed.program = std::make_shared<const ir::Program>(chain_program(s, 3));
  doomed.deadline_ms = 1;
  JobResult r = svc.submit(std::move(doomed)).get();

  EXPECT_TRUE(head_f.get().ok);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.deadline_exceeded);
  EXPECT_EQ(r.tag, "doomed");
  EXPECT_NE(r.error.find("deadline_exceeded"), std::string::npos) << r.error;
  EXPECT_GE(r.retry_after_ms, 1u);
  EXPECT_GE(svc.stats().deadline_exceeded, 1u);
  util::failpoint_disarm_all();
}

TEST(Wire, DeadlineAndRetryAfterRideTheWire) {
  // Request side: options.deadline_ms lands on the job.
  auto req = Json::parse(
      R"({"model": "demo", "options": {"deadline_ms": 250}})");
  ASSERT_TRUE(req);
  CompileJob job = service::job_from_request(*req, false);
  EXPECT_EQ(job.deadline_ms, 250u);
  auto plain = Json::parse(R"({"model": "demo"})");
  ASSERT_TRUE(plain);
  EXPECT_EQ(service::job_from_request(*plain, false).deadline_ms, 0u);

  // Response side: the structured-fault fields serialize on failures.
  JobResult r;
  r.ok = false;
  r.tag = "t1";
  r.deadline_exceeded = true;
  r.retry_after_ms = 7;
  r.error = "deadline_exceeded: job expired before a worker ran it";
  auto wire = Json::parse(service::response_from_result(r).dump());
  ASSERT_TRUE(wire);
  EXPECT_FALSE((*wire)["ok"].as_bool(true));
  EXPECT_TRUE((*wire)["deadline_exceeded"].as_bool());
  EXPECT_EQ((*wire)["retry_after_ms"].as_int(), 7);

  // Success responses stay free of the fault fields.
  JobResult good;
  good.ok = true;
  auto gw = Json::parse(service::response_from_result(good).dump());
  ASSERT_TRUE(gw);
  EXPECT_FALSE((*gw).contains("deadline_exceeded"));
  EXPECT_FALSE((*gw).contains("retry_after_ms"));
}

TEST(Introspection, FailpointCommandArmsListsAndDisarms) {
  util::failpoint_disarm_all();
  CompileService::Options opts;
  opts.workers = 1;
  opts.registry.retarget = no_disk_cache();
  CompileService svc(opts);

  auto arm = Json::parse(
      R"({"cmd": "failpoint", "name": "svc_test.fp", "spec": "every:2"})");
  ASSERT_TRUE(arm);
  std::optional<Json> resp = service::handle_introspection(*arm, svc);
  ASSERT_TRUE(resp);
  EXPECT_TRUE((*resp)["ok"].as_bool());
  ASSERT_EQ((*resp)["failpoints"].size(), 1u);
  EXPECT_EQ((*resp)["failpoints"].at(0)["name"].as_string(), "svc_test.fp");
  EXPECT_EQ((*resp)["failpoints"].at(0)["spec"].as_string(), "every:2");

  // Nameless request = pure listing; hit counts are live.
  EXPECT_FALSE(util::failpoint("svc_test.fp"));  // hit 1 of every:2
  auto list = Json::parse(R"({"cmd": "failpoint"})");
  ASSERT_TRUE(list);
  resp = service::handle_introspection(*list, svc);
  ASSERT_TRUE(resp);
  EXPECT_EQ((*resp)["failpoints"].at(0)["hits"].as_int(), 1);

  // Malformed specs are refused without arming anything.
  auto bad = Json::parse(
      R"({"cmd": "failpoint", "name": "svc_test.bad", "spec": "every:0"})");
  ASSERT_TRUE(bad);
  resp = service::handle_introspection(*bad, svc);
  ASSERT_TRUE(resp);
  EXPECT_FALSE((*resp)["ok"].as_bool(true));
  EXPECT_NE((*resp)["error"].as_string().find("svc_test.bad"),
            std::string::npos);

  // Omitting "spec" means "off": the site disarms.
  auto off = Json::parse(R"({"cmd": "failpoint", "name": "svc_test.fp"})");
  ASSERT_TRUE(off);
  resp = service::handle_introspection(*off, svc);
  ASSERT_TRUE(resp);
  EXPECT_TRUE((*resp)["ok"].as_bool());
  EXPECT_EQ((*resp)["failpoints"].size(), 0u);
}

TEST(CompileService, BoundedQueueBlocksAndDrains) {
  CompileService::Options opts;
  opts.workers = 1;
  opts.queue_capacity = 1;  // submit() must block and hand off one by one
  opts.registry.retarget = no_disk_cache();
  CompileService svc(opts);

  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 6; ++i) {
    const models::ChainShape& s = kChainShapes[0];
    CompileJob job;
    job.model = s.model;
    job.program = std::make_shared<const ir::Program>(chain_program(s, 3));
    futures.push_back(svc.submit(std::move(job)));
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().ok);
  EXPECT_LE(svc.stats().peak_queue, 1u);
}

// --- introspection commands (recordd's control plane) ------------------------

TEST(Introspection, StatsAndTraceCommandsRoundTrip) {
  obs::Tracer::instance().clear();
  obs::Tracer::instance().enable();

  CompileService::Options opts;
  opts.workers = 2;
  opts.registry.retarget = no_disk_cache();
  CompileService svc(opts);

  std::vector<CompileJob> jobs;
  for (int i = 0; i < 4; ++i) {
    const models::ChainShape& s = kChainShapes[0];
    CompileJob job;
    job.model = s.model;
    job.program = std::make_shared<const ir::Program>(chain_program(s, 3));
    jobs.push_back(std::move(job));
  }
  for (const JobResult& r : svc.compile_batch(std::move(jobs)))
    ASSERT_TRUE(r.ok) << r.error;

  // An ordinary compile request carries no "cmd": not introspection.
  auto req = Json::parse(R"({"model": "demo"})");
  ASSERT_TRUE(req);
  EXPECT_FALSE(service::handle_introspection(*req, svc).has_value());

  // stats: round-trip through the wire format and check the snapshot shape.
  auto stats_req = Json::parse(R"({"cmd": "stats"})");
  ASSERT_TRUE(stats_req);
  std::optional<Json> stats = service::handle_introspection(*stats_req, svc);
  ASSERT_TRUE(stats);
  auto wire = Json::parse(stats->dump());
  ASSERT_TRUE(wire);
  EXPECT_TRUE((*wire)["ok"].as_bool());
  EXPECT_EQ((*wire)["service"]["completed"].as_int(), 4);
  EXPECT_EQ((*wire)["service"]["failed"].as_int(), 0);
  // Latency percentiles are present and ordered (p50 <= p99).
  const Json& compile = (*wire)["service"]["compile"];
  EXPECT_LE(compile["p50_ms"].as_number(), compile["p99_ms"].as_number());
  EXPECT_GT(compile["p99_ms"].as_number(), 0.0);
  EXPECT_EQ((*wire)["registry"]["entries"].as_int(), 1);
  // The process-wide metrics snapshot rode along (worker jobs counted).
  EXPECT_GE((*wire)["metrics"]["counters"]["service.jobs"].as_int(), 4);

  // trace: the flight recorder serves the spans those jobs recorded.
  auto trace_req = Json::parse(R"({"cmd": "trace", "last": 8})");
  ASSERT_TRUE(trace_req);
  std::optional<Json> trace = service::handle_introspection(*trace_req, svc);
  ASSERT_TRUE(trace);
  auto twire = Json::parse(trace->dump());
  ASSERT_TRUE(twire);
  EXPECT_TRUE((*twire)["ok"].as_bool());
  EXPECT_TRUE((*twire)["enabled"].as_bool());
  const Json& events = (*twire)["events"];
  ASSERT_TRUE(events.is_array());
  ASSERT_GT(events.size(), 0u);
  ASSERT_LE(events.size(), 8u);
  bool saw_job = false;
  for (std::size_t i = 0; i < events.size(); ++i)
    if (events.at(i)["name"].as_string() == "service.job") saw_job = true;
  EXPECT_TRUE(saw_job);

  // Unknown commands answer ok:false instead of turning into compile jobs.
  auto bogus = Json::parse(R"({"cmd": "selfdestruct"})");
  ASSERT_TRUE(bogus);
  std::optional<Json> err = service::handle_introspection(*bogus, svc);
  ASSERT_TRUE(err);
  EXPECT_FALSE((*err)["ok"].as_bool());
  EXPECT_NE((*err)["error"].as_string().find("selfdestruct"),
            std::string::npos);

  obs::Tracer::instance().disable();
  obs::Tracer::instance().clear();
}

TEST(Introspection, StatsHistogramBucketsRebuildTheDistribution) {
  CompileService::Options opts;
  opts.workers = 1;
  opts.registry.retarget = no_disk_cache();
  CompileService svc(opts);

  // A histogram with occupancy in both the exact and the log region.
  obs::Histogram& h = obs::metrics().histogram("test.introspect.buckets");
  h.reset();
  for (int i = 0; i < 10; ++i) h.record(3);
  for (int i = 0; i < 5; ++i) h.record(1000);

  auto stats_req = Json::parse(R"({"cmd": "stats"})");
  ASSERT_TRUE(stats_req);
  std::optional<Json> stats = service::handle_introspection(*stats_req, svc);
  ASSERT_TRUE(stats);
  auto wire = Json::parse(stats->dump());
  ASSERT_TRUE(wire);
  const Json& jh =
      (*wire)["metrics"]["histograms"]["test.introspect.buckets"];
  const Json& buckets = jh["buckets"];
  ASSERT_TRUE(buckets.is_array());
  ASSERT_EQ(buckets.size(), 2u);  // only occupied buckets ship
  // Bucket counts sum back to the total, and each [lo, hi] matches the
  // histogram's own geometry for the recorded value.
  double total = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const Json& b = buckets.at(i);
    total += b["count"].as_number();
    const auto [lo, hi] = obs::Histogram::bucket_range(
        obs::Histogram::bucket_of(static_cast<std::int64_t>(
            b["lo"].as_number())));
    EXPECT_EQ(b["lo"].as_number(), static_cast<double>(lo));
    EXPECT_EQ(b["hi"].as_number(), static_cast<double>(hi));
  }
  EXPECT_EQ(total, jh["count"].as_number());
  EXPECT_EQ(buckets.at(0)["lo"].as_number(), 3.0);
  EXPECT_EQ(buckets.at(0)["count"].as_number(), 10.0);
  h.reset();
}

TEST(Introspection, ExplainCommandAndStatsCoverageSection) {
  obs::coverage().clear();
  obs::coverage().enable();

  CompileService::Options opts;
  opts.workers = 1;
  opts.registry.retarget = no_disk_cache();
  CompileService svc(opts);

  const char* kernel =
      "kernel k;\nbind a: R0;\ncell x: mem[1];\na = a + x;";
  // explain wants kernel plus model/hdl.
  auto bad = Json::parse(R"({"cmd": "explain", "model": "demo"})");
  ASSERT_TRUE(bad);
  std::optional<Json> bad_resp = service::handle_introspection(*bad, svc);
  ASSERT_TRUE(bad_resp);
  EXPECT_FALSE((*bad_resp)["ok"].as_bool());

  Json req = Json::object();
  req.set("cmd", Json("explain"));
  req.set("model", Json("demo"));
  req.set("kernel", Json(kernel));
  std::optional<Json> resp = service::handle_introspection(req, svc);
  ASSERT_TRUE(resp);
  auto wire = Json::parse(resp->dump());
  ASSERT_TRUE(wire);
  ASSERT_TRUE((*wire)["ok"].as_bool()) << (*wire)["error"].as_string();
  EXPECT_EQ((*wire)["processor"].as_string(), "demo");
  const Json& stmts = (*wire)["statements"];
  ASSERT_TRUE(stmts.is_array());
  ASSERT_EQ(stmts.size(), 1u);
  const Json& stmt = stmts.at(0);
  EXPECT_GT(stmt["cost"].as_number(), 0.0);
  const Json& steps = stmt["steps"];
  ASSERT_TRUE(steps.is_array());
  ASSERT_GT(steps.size(), 0u);
  // Every step names its rule; the load-from-mem step carries the imm-fit
  // decision for the cell address.
  bool saw_imm = false;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const Json& st = steps.at(i);
    EXPECT_FALSE(st["rule_text"].as_string().empty());
    EXPECT_FALSE(st["nonterminal"].as_string().empty());
    const Json& imms = st["imms"];
    if (imms.is_array() && imms.size() > 0) {
      saw_imm = true;
      EXPECT_TRUE(imms.at(0)["fits"].as_bool());
    }
  }
  EXPECT_TRUE(saw_imm);

  // The explain compile recorded into the coverage registry, so the stats
  // command now carries a per-model coverage section.
  auto stats_req = Json::parse(R"({"cmd": "stats"})");
  ASSERT_TRUE(stats_req);
  std::optional<Json> stats = service::handle_introspection(*stats_req, svc);
  ASSERT_TRUE(stats);
  auto swire = Json::parse(stats->dump());
  ASSERT_TRUE(swire);
  const Json& cov = (*swire)["coverage"];
  ASSERT_TRUE(cov.is_array());
  bool saw_demo = false;
  for (std::size_t i = 0; i < cov.size(); ++i) {
    const Json& c = cov.at(i);
    if (c["target"].as_string() != "demo") continue;
    saw_demo = true;
    EXPECT_GT(c["rules_chosen"]["covered"].as_number(), 0.0);
    EXPECT_GT(c["rules_chosen"]["total"].as_number(),
              c["rules_chosen"]["covered"].as_number());
    EXPECT_GT(c["states"]["covered"].as_number(), 0.0);
    EXPECT_GT(c["transitions"]["covered"].as_number(), 0.0);
    EXPECT_TRUE(c["uncovered_rules"].is_array());
  }
  EXPECT_TRUE(saw_demo);

  obs::coverage().disable();
  obs::coverage().clear();
}

// --- the 8-worker stress test ------------------------------------------------

TEST(CompileService, StressMixedModelsBitIdenticalToSequential) {
  CompileService::Options opts;
  opts.workers = 8;
  opts.queue_capacity = 8;  // force submit-side blocking under load
  opts.registry.retarget = no_disk_cache();
  CompileService svc(opts);

  // 6 models x 8 program variants = 48 jobs, submitted against a COLD
  // registry: the first wave races retargeting (single-flight), the rest
  // race compilation over shared targets.
  std::vector<CompileJob> jobs;
  constexpr int kVariants[] = {2, 3, 4, 6, 8, 12, 16, 24};
  for (const models::ChainShape& s : kChainShapes) {
    for (int k : kVariants) {
      CompileJob job;
      job.tag = std::string(s.model) + "/" + std::to_string(k);
      job.model = s.model;
      job.program = std::make_shared<const ir::Program>(chain_program(s, k));
      jobs.push_back(std::move(job));
    }
  }
  // Keep program pointers for the sequential reference pass.
  std::vector<CompileJob> reference;
  for (const CompileJob& job : jobs) {
    CompileJob copy;
    copy.tag = job.tag;
    copy.model = job.model;
    copy.program = job.program;
    reference.push_back(std::move(copy));
  }

  std::vector<JobResult> concurrent = svc.compile_batch(std::move(jobs));
  ASSERT_EQ(concurrent.size(), reference.size());

  // Sequential reference: the same job core, one at a time, over the same
  // (now warm) registry.
  for (std::size_t i = 0; i < reference.size(); ++i) {
    JobResult seq = CompileService::run_job(reference[i], svc.registry());
    const JobResult& par = concurrent[i];
    ASSERT_TRUE(par.ok) << par.tag << ": " << par.error;
    ASSERT_TRUE(seq.ok) << seq.tag << ": " << seq.error;
    EXPECT_EQ(par.processor, seq.processor) << par.tag;
    EXPECT_EQ(par.code_size, seq.code_size) << par.tag;
    EXPECT_EQ(par.rts, seq.rts) << par.tag;
    EXPECT_EQ(par.listing, seq.listing) << par.tag;  // bit-identical
  }

  service::RegistryStats rstats = svc.registry().stats();
  EXPECT_EQ(rstats.misses, kModelCount);  // one pipeline run per model, ever
  EXPECT_EQ(rstats.failures, 0u);
  service::ServiceStats sstats = svc.stats();
  EXPECT_EQ(sstats.completed, kModelCount * 8);
  EXPECT_EQ(sstats.failed, 0u);
}

// --- Json --------------------------------------------------------------------

TEST(Json, ParsesRequestLine) {
  auto j = Json::parse(R"({"model": "tms320c25", "tag": "r1",
                           "source": "kernel k;\nbind a: ACC;\na = a + 1;",
                           "options": {"engine": "tables", "listing": true,
                                       "sizes": [1, 2.5, -3]}})");
  ASSERT_TRUE(j);
  EXPECT_EQ((*j)["model"].as_string(), "tms320c25");
  EXPECT_EQ((*j)["tag"].as_string(), "r1");
  EXPECT_NE((*j)["source"].as_string().find('\n'), std::string::npos);
  EXPECT_EQ((*j)["options"]["engine"].as_string(), "tables");
  EXPECT_TRUE((*j)["options"]["listing"].as_bool());
  EXPECT_EQ((*j)["options"]["sizes"].size(), 3u);
  EXPECT_EQ((*j)["options"]["sizes"].at(0).as_int(), 1);
  EXPECT_EQ((*j)["options"]["sizes"].at(1).as_number(), 2.5);
  EXPECT_EQ((*j)["options"]["sizes"].at(2).as_int(), -3);
  EXPECT_TRUE((*j)["missing"].is_null());
  EXPECT_TRUE((*j)["missing"]["deep"].is_null());  // chained lookup is safe
}

TEST(Json, EscapesRoundTrip) {
  Json out = Json::object();
  out.set("text", Json(std::string("line1\nline2\t\"quoted\" \\ end")));
  out.set("ok", Json(true));
  out.set("n", Json(42));
  std::string wire = out.dump();
  EXPECT_EQ(wire.find('\n'), std::string::npos);  // JSON-lines safe
  auto back = Json::parse(wire);
  ASSERT_TRUE(back);
  EXPECT_EQ((*back)["text"].as_string(), "line1\nline2\t\"quoted\" \\ end");
  EXPECT_TRUE((*back)["ok"].as_bool());
  EXPECT_EQ((*back)["n"].as_int(), 42);
}

TEST(Json, UnicodeEscapeDecodesToUtf8) {
  auto j = Json::parse(R"({"s": "a\u00e9A"})");
  ASSERT_TRUE(j);
  EXPECT_EQ((*j)["s"].as_string(), "a\xc3\xa9"
                                   "A");
}

TEST(Json, SurrogatePairsCombineToOneCodePoint) {
  // The D83D/DE00 escape pair is U+1F600 (the grinning-face emoji): it must
  // decode to one 4-byte UTF-8 sequence, not two 3-byte CESU-8 surrogate
  // encodings.
  auto j = Json::parse("{\"s\": \"\\ud83d\\ude00\"}");
  ASSERT_TRUE(j);
  EXPECT_EQ((*j)["s"].as_string(), "\xF0\x9F\x98\x80");

  // Pair at the BMP boundary (U+10000, the D800/DC00 pair) embedded
  // mid-string.
  auto lo = Json::parse("{\"s\": \"x\\ud800\\udc00y\"}");
  ASSERT_TRUE(lo);
  EXPECT_EQ((*lo)["s"].as_string(), "x\xF0\x90\x80\x80y");

  // Round trip through the emitter: the decoded astral character is valid
  // UTF-8, passes through append_json_quoted verbatim, and re-parses to the
  // same bytes (this used to produce escaped mojibake on echo).
  Json out = Json::object();
  out.set("s", (*j)["s"]);
  std::string wire = out.dump();
  EXPECT_NE(wire.find("\xF0\x9F\x98\x80"), std::string::npos)
      << "astral char was re-escaped: " << wire;
  auto back = Json::parse(wire);
  ASSERT_TRUE(back);
  EXPECT_EQ((*back)["s"].as_string(), (*j)["s"].as_string());
}

TEST(Json, RejectsUnpairedSurrogates) {
  std::string error;
  // Lone high surrogate: end of string, non-escape follower, wrong low half.
  EXPECT_FALSE(Json::parse(R"({"s": "\ud83d"})", &error));
  EXPECT_NE(error.find("surrogate"), std::string::npos);
  EXPECT_FALSE(Json::parse(R"({"s": "\ud83dx"})"));
  EXPECT_FALSE(Json::parse(R"({"s": "\ud83d\n"})"));
  EXPECT_FALSE(Json::parse(R"({"s": "\ud83dA"})"));
  // High surrogate followed by another high surrogate.
  EXPECT_FALSE(Json::parse(R"({"s": "\ud83d\ud83d"})"));
  // Lone low surrogate.
  EXPECT_FALSE(Json::parse(R"({"s": "\ude00"})"));
  // Truncated low half.
  EXPECT_FALSE(Json::parse(R"({"s": "\ud83d\ude0)"));
}

TEST(Json, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(Json::parse("{", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(Json::parse(R"({"a": })"));
  EXPECT_FALSE(Json::parse(R"({"a": 1} trailing)"));
  EXPECT_FALSE(Json::parse(R"("unterminated)"));
  EXPECT_FALSE(Json::parse("12e"));
}

TEST(Json, RejectsTruncatedInput) {
  // Every strict prefix of a valid request line must fail cleanly — the
  // recordd wire can be cut anywhere.
  std::string full =
      R"({"model": "demo", "options": {"engine": "tables"}, "n": [1, 2.5]})";
  ASSERT_TRUE(Json::parse(full));
  for (std::size_t len = 0; len < full.size(); ++len) {
    std::string error;
    EXPECT_FALSE(Json::parse(full.substr(0, len), &error))
        << "prefix of length " << len << " parsed";
  }
  // Truncated escape sequences inside strings.
  EXPECT_FALSE(Json::parse(R"({"s": "\)"));
  EXPECT_FALSE(Json::parse(R"({"s": "\u00)"));
  EXPECT_FALSE(Json::parse(R"({"s": "\u12)"));
}

TEST(Json, DeeplyNestedInputFailsInsteadOfOverflowing) {
  // The recursive-descent parser bounds nesting; a hostile request made of
  // thousands of '[' must produce a parse error, not a stack overflow.
  for (std::size_t depth : {std::size_t{100}, std::size_t{100000}}) {
    std::string hostile(depth, '[');
    std::string error;
    EXPECT_FALSE(Json::parse(hostile, &error));
    EXPECT_NE(error.find("deep"), std::string::npos) << error;
    std::string objects;
    for (std::size_t i = 0; i < depth; ++i) objects += R"({"a":)";
    EXPECT_FALSE(Json::parse(objects, &error));
  }
  // Nesting just inside the bound parses fine.
  std::string ok(63, '[');
  ok += std::string(63, ']');
  EXPECT_TRUE(Json::parse(ok));
}

TEST(Json, LookupsOnWrongKindsAreSafe) {
  auto j = Json::parse(R"({"a": 1, "b": [1, 2]})");
  ASSERT_TRUE(j);
  // Chained lookups through absent keys / wrong kinds give defaults.
  EXPECT_TRUE((*j)["missing"]["deeper"].is_null());
  EXPECT_EQ((*j)["a"]["not_an_object"].as_int(7), 7);
  EXPECT_EQ((*j)["b"].at(99).as_number(1.5), 1.5);
  EXPECT_EQ((*j)["a"].as_string(), "");
  EXPECT_EQ((*j)["b"].size(), 2u);
  EXPECT_EQ((*j)["a"].size(), 0u);
}
