#include <gtest/gtest.h>

#include "burstab/tables.h"
#include "core/record.h"
#include "ir/builder.h"
#include "models/workload.h"
#include "obs/coverage.h"
#include "select/selector.h"
#include "select/subject_map.h"

namespace record::select {
namespace {

/// Shared retarget of the tms320c25 model (expensive; done once).
const core::RetargetResult& c25() {
  static const core::RetargetResult target = [] {
    util::DiagnosticSink diags;
    auto r = core::Record::retarget_model("tms320c25",
                                          core::RetargetOptions{}, diags);
    EXPECT_TRUE(r) << diags.str();
    return std::move(*r);
  }();
  return target;
}

SelectionResult select_program(const ir::Program& prog) {
  util::DiagnosticSink diags;
  CodeSelector selector(*c25().base, c25().tree_grammar, diags);
  auto result = selector.select(prog);
  EXPECT_TRUE(result) << diags.str();
  return result ? std::move(*result) : SelectionResult{};
}

TEST(SubjectMap, RegisterDestination) {
  ir::ProgramBuilder b("t");
  b.reg("acc", "ACC").cell("x", "ram", 7);
  b.let("acc", ir::e_var("x"));
  ir::Program prog = b.take();
  util::DiagnosticSink diags;
  SubjectMapper mapper(*c25().base, c25().tree_grammar, prog, diags);
  auto subject = mapper.map_stmt(prog.stmts()[0]);
  ASSERT_TRUE(subject) << diags.str();
  EXPECT_EQ(subject->to_string(c25().tree_grammar),
            "ASSIGN($dest:ACC, load:ram.16(7))");
}

TEST(SubjectMap, MemoryDestinationBecomesStore) {
  ir::ProgramBuilder b("t");
  b.cell("x", "ram", 1).cell("y", "ram", 2);
  b.let("y", ir::e_var("x"));
  ir::Program prog = b.take();
  util::DiagnosticSink diags;
  SubjectMapper mapper(*c25().base, c25().tree_grammar, prog, diags);
  auto subject = mapper.map_stmt(prog.stmts()[0]);
  ASSERT_TRUE(subject);
  EXPECT_EQ(subject->to_string(c25().tree_grammar),
            "ASSIGN($dest:ram, store:ram(2, load:ram.16(1)))");
}

TEST(SubjectMap, WidthResolution) {
  ir::ProgramBuilder b("t");
  b.reg("acc", "ACC").cell("x", "ram", 1).cell("y", "ram", 2);
  b.let("acc", ir::e_add(ir::e_var("acc"),
                         ir::e_mul(ir::e_var("x"), ir::e_var("y"))));
  ir::Program prog = b.take();
  util::DiagnosticSink diags;
  SubjectMapper mapper(*c25().base, c25().tree_grammar, prog, diags);
  const ir::Expr& rhs = *prog.stmts()[0].rhs;
  EXPECT_EQ(mapper.resolve_width(rhs), 32);            // add at ACC width
  EXPECT_EQ(mapper.resolve_width(*rhs.args[1]), 32);   // 16x16 -> 32 mul
  EXPECT_EQ(mapper.resolve_width(*rhs.args[1]->args[0]), 16);
}

TEST(SubjectMap, LoIntrinsicUsesSliceNames) {
  ir::ProgramBuilder b("t");
  b.reg("acc", "ACC").cell("y", "ram", 2);
  b.let("y", ir::e_lo(ir::e_var("acc")));
  ir::Program prog = b.take();
  util::DiagnosticSink diags;
  SubjectMapper mapper(*c25().base, c25().tree_grammar, prog, diags);
  auto subject = mapper.map_stmt(prog.stmts()[0]);
  ASSERT_TRUE(subject);
  EXPECT_NE(subject->to_string(c25().tree_grammar).find("bits15_0.16"),
            std::string::npos);
}

TEST(SubjectMap, UnknownOperationDiagnosed) {
  ir::ProgramBuilder b("t");
  b.reg("acc", "ACC");
  b.let("acc", ir::e_bin(hdl::OpKind::Div, ir::e_var("acc"),
                         ir::e_var("acc")));
  ir::Program prog = b.take();
  util::DiagnosticSink diags;
  SubjectMapper mapper(*c25().base, c25().tree_grammar, prog, diags);
  EXPECT_FALSE(mapper.map_stmt(prog.stmts()[0]).has_value());
  EXPECT_NE(diags.str().find("not available"), std::string::npos);
}

TEST(Selector, LoadAddStore) {
  ir::ProgramBuilder b("t");
  b.cell("a", "ram", 1).cell("bb", "ram", 2).cell("c", "ram", 3);
  b.let("c", ir::e_add(ir::e_var("a"), ir::e_var("bb")));
  SelectionResult sel = select_program(b.take());
  // LAC a; ADD bb; SACL c.
  ASSERT_EQ(sel.stmts.size(), 1u);
  EXPECT_EQ(sel.stmts[0].rts.size(), 3u);
  EXPECT_EQ(sel.stmts[0].parse_cost, 3);
}

TEST(Selector, MacChainUsesSpecialRegisters) {
  ir::ProgramBuilder b("t");
  b.reg("acc", "ACC");
  b.cell("x", "ram", 1).cell("h", "ram", 2);
  b.let("acc", ir::e_add(ir::e_var("acc"),
                         ir::e_mul(ir::e_var("x"), ir::e_var("h"))));
  SelectionResult sel = select_program(b.take());
  // LT x; MPY h; APAC — T and P allocated implicitly by the derivation.
  ASSERT_EQ(sel.stmts[0].rts.size(), 3u);
  EXPECT_EQ(sel.stmts[0].rts[0].dest, "T");
  EXPECT_EQ(sel.stmts[0].rts[1].dest, "P");
  EXPECT_EQ(sel.stmts[0].rts[2].dest, "ACC");
}

TEST(Selector, ReadsTrackOperandStorages) {
  ir::ProgramBuilder b("t");
  b.reg("acc", "ACC");
  b.cell("x", "ram", 1).cell("h", "ram", 2);
  b.let("acc", ir::e_add(ir::e_var("acc"),
                         ir::e_mul(ir::e_var("x"), ir::e_var("h"))));
  SelectionResult sel = select_program(b.take());
  const SelectedRT& mpy = sel.stmts[0].rts[1];
  EXPECT_NE(std::find(mpy.reads.begin(), mpy.reads.end(), "T"),
            mpy.reads.end());
  EXPECT_NE(std::find(mpy.reads.begin(), mpy.reads.end(), "ram"),
            mpy.reads.end());
  const SelectedRT& apac = sel.stmts[0].rts[2];
  EXPECT_NE(std::find(apac.reads.begin(), apac.reads.end(), "P"),
            apac.reads.end());
}

TEST(Selector, ImmediateEncodedIntoCondition) {
  ir::ProgramBuilder b("t");
  b.reg("acc", "ACC");
  b.cell("x", "ram", 5);
  b.let("acc", ir::e_var("x"));
  SelectionResult sel = select_program(b.take());
  ASSERT_EQ(sel.stmts[0].rts.size(), 1u);  // LAC x
  const SelectedRT& lac = sel.stmts[0].rts[0];
  ASSERT_EQ(lac.imms.size(), 1u);
  EXPECT_EQ(lac.imms[0].value, 5);
  // Condition must force instruction bit 0 (= address bit 0) to 1 and
  // bit 1 to 0 (address 5 = 0b101).
  bdd::BddManager& mgr = *c25().base->mgr;
  EXPECT_EQ(mgr.land(lac.cond, mgr.nvar(0)), bdd::kFalse);
  EXPECT_EQ(mgr.land(lac.cond, mgr.var(1)), bdd::kFalse);
}

TEST(Selector, ZeroConstantUsesZac) {
  ir::ProgramBuilder b("t");
  b.reg("acc", "ACC");
  b.let("acc", ir::e_const(0));
  SelectionResult sel = select_program(b.take());
  EXPECT_EQ(sel.stmts[0].rts.size(), 1u);
  EXPECT_EQ(sel.stmts[0].parse_cost, 1);
}

TEST(Selector, ImmediateLoadUsesLack) {
  ir::ProgramBuilder b("t");
  b.reg("acc", "ACC");
  b.let("acc", ir::e_const(1234));
  SelectionResult sel = select_program(b.take());
  EXPECT_EQ(sel.stmts[0].rts.size(), 1u);
}

TEST(Selector, BranchesUsePcTemplates) {
  ir::ProgramBuilder b("t");
  b.reg("acc", "ACC");
  b.label("top");
  b.let("acc", ir::e_const(0));
  b.program().branch_if_not_zero("acc", "top");
  SelectionResult sel = select_program(b.take());
  ASSERT_EQ(sel.stmts.size(), 3u);
  EXPECT_TRUE(sel.stmts[0].is_label);
  ASSERT_EQ(sel.stmts[2].rts.size(), 1u);
  const SelectedRT& br = sel.stmts[2].rts[0];
  EXPECT_TRUE(br.is_branch);
  EXPECT_EQ(br.dest, "PC");
  EXPECT_EQ(br.branch_target, "top");
}

TEST(Selector, StatementsShareNothing) {
  // Two independent statements produce independent RT lists in order.
  ir::ProgramBuilder b("t");
  b.cell("a", "ram", 1).cell("c", "ram", 3).cell("d", "ram", 4);
  b.let("c", ir::e_var("a"));
  b.let("d", ir::e_var("a"));
  SelectionResult sel = select_program(b.take());
  ASSERT_EQ(sel.stmts.size(), 2u);
  EXPECT_EQ(sel.stmts[0].rts.size(), 2u);  // LAC; SACL
  EXPECT_EQ(sel.stmts[1].rts.size(), 2u);
  EXPECT_EQ(sel.total_rts, 4u);
}

TEST(Selector, ListingMentionsStatements) {
  ir::ProgramBuilder b("t");
  b.cell("a", "ram", 1).cell("c", "ram", 3);
  b.let("c", ir::e_var("a"));
  SelectionResult sel = select_program(b.take());
  std::string listing = sel.listing();
  EXPECT_NE(listing.find("c = a"), std::string::npos);
  EXPECT_NE(listing.find("ACC"), std::string::npos);
}

TEST(Selector, MissingBindingFailsCleanly) {
  ir::Program prog("t");
  prog.assign("ghost", ir::e_const(1));
  util::DiagnosticSink diags;
  CodeSelector selector(*c25().base, c25().tree_grammar, diags);
  EXPECT_FALSE(selector.select(prog).has_value());
  EXPECT_FALSE(diags.ok());
}

// --- coverage-map agreement across labelling engines -------------------------

// Grammar-rule coverage is an engine-independent fact: whichever engine
// labels the subject trees (interpreter, dynamic hash tables, frozen
// compressed tables), the set of rules matched per node and the rules chosen
// in the optimal derivation must be identical. This pins the coverage
// instrumentation itself — a divergence here means one engine's record path
// (not its selection) went wrong.
TEST(Selector, CoverageMapsAgreeAcrossEnginesOnAllModels) {
  for (const models::ChainShape& s : models::kChainShapes) {
    util::DiagnosticSink diags;
    auto target =
        core::Record::retarget_model(s.model, core::RetargetOptions{}, diags);
    ASSERT_TRUE(target) << s.model << ": " << diags.str();
    ASSERT_TRUE(target->tables) << s.model << ": no frozen tables";

    burstab::TableBuildOptions hash_mode;
    hash_mode.freeze = false;
    burstab::TargetTables hash_tables(target->tree_grammar, hash_mode);

    struct EngineRun {
      const char* name;
      const burstab::TargetTables* tables;
    };
    const EngineRun engines[] = {
        {"interpreter", nullptr},
        {"tables-hash", &hash_tables},
        {"tables-frozen", target->tables.get()},
    };

    const ir::Program prog = models::chain_program(s, 6);
    std::vector<obs::CoverageSnapshot> snaps;
    for (const EngineRun& e : engines) {
      obs::CoverageMap::Config cc;
      cc.rules = target->tree_grammar.rules().size();
      cc.states = 4096;
      cc.transitions = 1 << 16;
      obs::CoverageMap map(e.name, std::move(cc));
      util::DiagnosticSink d;
      CodeSelector sel(*target->base, target->tree_grammar, d, e.tables);
      sel.set_coverage(&map);
      ASSERT_TRUE(sel.select(prog)) << s.model << "/" << e.name << ": "
                                    << d.str();
      snaps.push_back(map.snapshot());
    }

    const obs::CoverageSnapshot& interp = snaps[0];
    const obs::CoverageSnapshot& hash = snaps[1];
    const obs::CoverageSnapshot& frozen = snaps[2];
    // Rule coverage agrees hit-for-hit across all three engines.
    EXPECT_EQ(interp.counts.rules_matched, hash.counts.rules_matched)
        << s.model << ": interpreter vs hash matched-rule counts";
    EXPECT_EQ(hash.counts.rules_matched, frozen.counts.rules_matched)
        << s.model << ": hash vs frozen matched-rule counts";
    EXPECT_EQ(interp.counts.rules_chosen, hash.counts.rules_chosen)
        << s.model << ": interpreter vs hash chosen-rule counts";
    EXPECT_EQ(hash.counts.rules_chosen, frozen.counts.rules_chosen)
        << s.model << ": hash vs frozen chosen-rule counts";
    EXPECT_GT(frozen.rules_chosen_covered(), 0u) << s.model;

    // Engine-specific dimensions land where they should: the interpreter
    // has no interned states or table lookups at all; the hash engine's
    // lookups are all cold (no frozen snapshot attached); only the frozen
    // engine hits transition slots.
    EXPECT_EQ(interp.states_covered(), 0u) << s.model;
    EXPECT_EQ(interp.counts.cold_transitions, 0u) << s.model;
    EXPECT_GT(hash.states_covered(), 0u) << s.model;
    EXPECT_GT(hash.counts.cold_transitions, 0u) << s.model;
    EXPECT_EQ(hash.transitions_covered(), 0u) << s.model;
    EXPECT_GT(frozen.states_covered(), 0u) << s.model;
    EXPECT_GT(frozen.transitions_covered(), 0u) << s.model;
    EXPECT_EQ(frozen.counts.transition_overflow, 0u) << s.model;
  }
}

}  // namespace
}  // namespace record::select
