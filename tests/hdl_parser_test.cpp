#include <gtest/gtest.h>

#include "hdl/parser.h"

namespace record::hdl {
namespace {

ProcessorModel parse_ok(std::string_view src) {
  util::DiagnosticSink diags;
  auto model = parse(src, diags);
  EXPECT_TRUE(model.has_value()) << diags.str();
  return model ? std::move(*model) : ProcessorModel{};
}

void expect_parse_error(std::string_view src) {
  util::DiagnosticSink diags;
  auto model = parse(src, diags);
  EXPECT_FALSE(model.has_value() && diags.ok());
}

constexpr const char* kMinimal = R"(
PROCESSOR p;
CONTROLLER im (OUT w:(7:0));
STRUCTURE
PARTS
  IM: im;
CONNECTIONS
END;
)";

TEST(HdlParser, MinimalModel) {
  ProcessorModel m = parse_ok(kMinimal);
  EXPECT_EQ(m.name, "p");
  ASSERT_EQ(m.modules.size(), 1u);
  EXPECT_EQ(m.modules[0].kind, ModuleKind::Controller);
  ASSERT_EQ(m.parts.size(), 1u);
  EXPECT_EQ(m.parts[0].inst_name, "IM");
}

TEST(HdlParser, ModuleKinds) {
  ProcessorModel m = parse_ok(R"(
PROCESSOR p;
MODULE a (IN x:(3:0); OUT y:(3:0));
REGISTER r (IN d:(3:0); OUT q:(3:0); CTRL ld:(0:0));
BEHAVIOR q := d WHEN ld = 1; END;
MEMORY mm (IN addr:(3:0); OUT dout:(3:0)) SIZE 16;
BEHAVIOR dout := CELL[addr]; END;
MODEREG mr (IN d:(0:0); OUT q:(0:0); CTRL ld:(0:0));
BEHAVIOR q := d WHEN ld = 1; END;
CONTROLLER c (OUT w:(7:0));
)");
  ASSERT_EQ(m.modules.size(), 5u);
  EXPECT_EQ(m.modules[0].kind, ModuleKind::Combinational);
  EXPECT_EQ(m.modules[1].kind, ModuleKind::Register);
  EXPECT_EQ(m.modules[2].kind, ModuleKind::Memory);
  EXPECT_EQ(m.modules[2].mem_size, 16);
  EXPECT_EQ(m.modules[3].kind, ModuleKind::ModeReg);
  EXPECT_EQ(m.modules[4].kind, ModuleKind::Controller);
}

TEST(HdlParser, PortClassesAndRanges) {
  ProcessorModel m = parse_ok(R"(
PROCESSOR p;
MODULE alu (IN a:(15:0); IN b:(15:0); OUT y:(15:0); CTRL f:(2:0));
)");
  const ModuleDecl& alu = m.modules[0];
  ASSERT_EQ(alu.ports.size(), 4u);
  EXPECT_EQ(alu.ports[0].cls, PortClass::In);
  EXPECT_EQ(alu.ports[2].cls, PortClass::Out);
  EXPECT_EQ(alu.ports[3].cls, PortClass::Ctrl);
  EXPECT_EQ(alu.ports[3].range.width(), 3);
}

TEST(HdlParser, BehaviourExpressionPrecedence) {
  ProcessorModel m = parse_ok(R"(
PROCESSOR p;
MODULE f (IN a:(7:0); IN b:(7:0); IN c:(7:0); OUT y:(7:0));
BEHAVIOR
  y := a + b * c;
END;
)");
  const Transfer& t = m.modules[0].transfers[0];
  // + must be the root, * nested: a + (b * c).
  EXPECT_EQ(to_string(*t.rhs), "(a + (b * c))");
}

TEST(HdlParser, UnaryAndParens) {
  ProcessorModel m = parse_ok(R"(
PROCESSOR p;
MODULE f (IN a:(7:0); IN b:(7:0); OUT y:(7:0));
BEHAVIOR
  y := -(a + b) & ~a;
END;
)");
  EXPECT_EQ(to_string(*m.modules[0].transfers[0].rhs),
            "(-((a + b)) & ~(a))");
}

TEST(HdlParser, SliceVersusCall) {
  ProcessorModel m = parse_ok(R"(
PROCESSOR p;
MODULE f (IN a:(15:0); OUT y:(7:0); OUT z:(15:0));
BEHAVIOR
  y := a(7:0);
  z := RND(a);
END;
)");
  const auto& ts = m.modules[0].transfers;
  EXPECT_EQ(ts[0].rhs->kind, Expr::Kind::Slice);
  EXPECT_EQ(ts[1].rhs->kind, Expr::Kind::Call);
  EXPECT_EQ(ts[1].rhs->name, "RND");
}

TEST(HdlParser, SxtZxtIntrinsics) {
  ProcessorModel m = parse_ok(R"(
PROCESSOR p;
MODULE f (IN a:(7:0); OUT y:(15:0));
BEHAVIOR
  y := SXT(a);
END;
)");
  const Expr& e = *m.modules[0].transfers[0].rhs;
  EXPECT_EQ(e.kind, Expr::Kind::Unary);
  EXPECT_EQ(e.op, OpKind::Sxt);
}

TEST(HdlParser, CellReadAndWrite) {
  ProcessorModel m = parse_ok(R"(
PROCESSOR p;
MEMORY mm (IN addr:(3:0); IN din:(7:0); OUT dout:(7:0); CTRL we:(0:0)) SIZE 16;
BEHAVIOR
  dout := CELL[addr];
  CELL[addr] := din WHEN we = 1;
END;
)");
  const auto& ts = m.modules[0].transfers;
  EXPECT_EQ(ts[0].rhs->kind, Expr::Kind::CellRead);
  EXPECT_TRUE(ts[1].is_cell_write());
}

TEST(HdlParser, GuardConnectives) {
  ProcessorModel m = parse_ok(R"(
PROCESSOR p;
MODULE f (IN a:(7:0); OUT y:(7:0); CTRL c:(2:0); CTRL d:(0:0));
BEHAVIOR
  y := a WHEN c = 1 AND d /= 0 OR NOT (c = 2);
END;
)");
  const Cond& g = *m.modules[0].transfers[0].guard;
  EXPECT_EQ(g.kind, Cond::Kind::Or);
  EXPECT_EQ(to_string(g), "((c = 1 AND d /= 0) OR NOT (c = 2))");
}

TEST(HdlParser, StructureWithBusDrivers) {
  ProcessorModel m = parse_ok(R"(
PROCESSOR p;
CONTROLLER im (OUT w:(7:0));
REGISTER r (IN d:(7:0); OUT q:(7:0); CTRL ld:(0:0));
BEHAVIOR q := d WHEN ld = 1; END;
STRUCTURE
PARTS
  IM: im;
  R: r;
BUS db: (7:0);
CONNECTIONS
  db := R.q WHEN IM.w(7:7) = 1;
  db := IM.w(7:0) WHEN IM.w(7:7) = 0;
  R.d := db;
  R.ld := IM.w(6:6);
END;
)");
  ASSERT_EQ(m.buses.size(), 1u);
  EXPECT_EQ(m.buses[0].range.width(), 8);
  ASSERT_EQ(m.connections.size(), 4u);
  EXPECT_NE(m.connections[0].guard, nullptr);
  EXPECT_EQ(m.connections[2].guard, nullptr);
}

TEST(HdlParser, ConnectionSourceForms) {
  ProcessorModel m = parse_ok(R"(
PROCESSOR p;
CONTROLLER im (OUT w:(7:0));
REGISTER r (IN d:(3:0); OUT q:(3:0); CTRL ld:(0:0));
BEHAVIOR q := d WHEN ld = 1; END;
PORT pin: IN (3:0);
STRUCTURE
PARTS
  IM: im;  R: r;
CONNECTIONS
  R.d := IM.w(3:0);
  R.ld := 1;
END;
)");
  EXPECT_EQ(m.connections[0].source.kind, SourceRef::Kind::PortRef);
  EXPECT_TRUE(m.connections[0].source.has_slice);
  EXPECT_EQ(m.connections[1].source.kind, SourceRef::Kind::Const);
}

TEST(HdlParser, ProcessorPorts) {
  ProcessorModel m = parse_ok(R"(
PROCESSOR p;
PORT a: IN (15:0);
PORT b: OUT (7:0);
CONTROLLER im (OUT w:(7:0));
)");
  ASSERT_EQ(m.proc_ports.size(), 2u);
  EXPECT_TRUE(m.proc_ports[0].is_input);
  EXPECT_FALSE(m.proc_ports[1].is_input);
  EXPECT_EQ(m.proc_ports[1].range.width(), 8);
}

TEST(HdlParser, ErrorMissingProcessorHeader) {
  expect_parse_error("MODULE a (IN x:(1:0); OUT y:(1:0));");
}

TEST(HdlParser, ErrorBadRange) {
  expect_parse_error("PROCESSOR p; MODULE a (IN x:(0:5); OUT y:(1:0));");
}

TEST(HdlParser, ErrorMissingSemicolon) {
  expect_parse_error("PROCESSOR p");
}

TEST(HdlParser, ErrorDanglingBehaviour) {
  expect_parse_error(R"(
PROCESSOR p;
MODULE a (IN x:(1:0); OUT y:(1:0));
BEHAVIOR
  y := x;
)");
}

TEST(HdlParser, ErrorBadGuard) {
  expect_parse_error(R"(
PROCESSOR p;
MODULE a (IN x:(1:0); OUT y:(1:0); CTRL c:(0:0));
BEHAVIOR
  y := x WHEN c == 1;
END;
)");
}

TEST(HdlParser, FindHelpers) {
  ProcessorModel m = parse_ok(kMinimal);
  EXPECT_NE(m.find_module("im"), nullptr);
  EXPECT_EQ(m.find_module("nope"), nullptr);
  EXPECT_NE(m.find_part("IM"), nullptr);
  EXPECT_EQ(m.find_bus("db"), nullptr);
}

TEST(HdlParser, ExprCloneIsDeep) {
  ProcessorModel m = parse_ok(R"(
PROCESSOR p;
MODULE f (IN a:(7:0); IN b:(7:0); OUT y:(7:0));
BEHAVIOR y := a + b; END;
)");
  const Expr& orig = *m.modules[0].transfers[0].rhs;
  ExprPtr copy = orig.clone();
  EXPECT_EQ(to_string(orig), to_string(*copy));
  EXPECT_NE(&orig, copy.get());
  EXPECT_NE(orig.args[0].get(), copy->args[0].get());
}

}  // namespace
}  // namespace record::hdl
