// Behavioral closure tests: the RT-level instruction-set simulator
// (sim/machine.h) against the IR reference evaluator (sim/eval.h).
//
// Covers: shared operator semantics, the semantic oracle on all six
// built-in models' chain workloads, testgen-generated machines, simulator-
// verified equivalence of compacted vs. uncompacted schedules, mode-register
// tracking (bass_boost's scaling mode), negative decode (corrupted words
// must be rejected with a diagnostic, not silently executed), the warm
// TargetCache path carrying memory cell counts, and the CompileService
// semantic-check job option.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/compiler.h"
#include "core/record.h"
#include "ir/builder.h"
#include "ir/kernel_lang.h"
#include "models/workload.h"
#include "service/service.h"
#include "sim/check.h"
#include "sim/eval.h"
#include "sim/machine.h"
#include "sim/value.h"
#include "testgen/modelgen.h"
#include "testgen/oracle.h"
#include "testgen/programgen.h"

namespace record::sim {
namespace {

std::optional<core::RetargetResult> retarget_model(std::string_view name) {
  util::DiagnosticSink diags;
  auto r = core::Record::retarget_model(name, core::RetargetOptions{}, diags);
  EXPECT_TRUE(r) << name << ": " << diags.str();
  return r;
}

std::optional<core::CompileResult> compile(
    const core::RetargetResult& target, const ir::Program& prog,
    const core::CompileOptions& options = {}) {
  core::Compiler compiler(target);
  util::DiagnosticSink diags;
  auto r = compiler.compile(prog, options, diags);
  EXPECT_TRUE(r) << prog.name() << ": " << diags.str();
  return r;
}

// --- shared operator semantics ---------------------------------------------

TEST(Value, CanonSignExtends) {
  EXPECT_EQ(canon(0x7fff, 16), 0x7fff);
  EXPECT_EQ(canon(0x8000, 16), -32768);
  EXPECT_EQ(canon(0x1ffff, 16), -1);
  EXPECT_EQ(canon(-1, 16), -1);
  EXPECT_EQ(canon(5, 0), 5);  // width 0 = exact
  EXPECT_EQ(bits_of(-1, 16), 0xffffu);
  EXPECT_EQ(bits_of(-1, 0), ~0ull);
}

TEST(Value, ApplyOpMatchesTwoComplementSemantics) {
  std::string why;
  auto bin = [&](hdl::OpKind k, int w, std::int64_t a, int wa,
                 std::int64_t b, int wb) {
    rtl::OpSig sig;
    sig.kind = k;
    sig.width = w;
    auto r = apply_op(sig, {Val{a, wa}, Val{b, wb}}, why);
    EXPECT_TRUE(r) << why;
    return r ? r->v : 0;
  };
  EXPECT_EQ(bin(hdl::OpKind::Add, 16, 0x7fff, 16, 1, 16), -32768);  // wrap
  EXPECT_EQ(bin(hdl::OpKind::Sub, 16, 0, 16, 1, 16), -1);
  // Widening multiply: signed 16x16 -> exact 32-bit product.
  EXPECT_EQ(bin(hdl::OpKind::Mul, 32, -3, 16, 1000, 16), -3000);
  // Truncating multiply at 16 bits.
  EXPECT_EQ(bin(hdl::OpKind::Mul, 16, 0x100, 16, 0x100, 16), 0);
  // Shr is logical over the operator width.
  EXPECT_EQ(bin(hdl::OpKind::Shr, 16, -2, 16, 1, 16), 0x7fff);
  EXPECT_EQ(bin(hdl::OpKind::Div, 16, 7, 16, 0, 16), 0);  // x/0 = 0

  rtl::OpSig slice = rtl::slice_op_sig(31, 16);
  auto hi = apply_op(slice, {Val{0x12348765, 32}}, why);
  ASSERT_TRUE(hi);
  EXPECT_EQ(hi->v, 0x1234);

  rtl::OpSig rnd;
  rnd.kind = hdl::OpKind::Custom;
  rnd.custom = "RND";
  rnd.width = 16;
  EXPECT_FALSE(apply_op(rnd, {Val{1, 16}}, why));  // opaque: unsupported
}

TEST(Value, InitialValueIsDeterministicAndWidthBounded) {
  EXPECT_EQ(initial_value("ACC", 0, 32), initial_value("ACC", 0, 32));
  EXPECT_NE(initial_value("ACC", 0, 32), initial_value("T", 0, 32));
  EXPECT_NE(initial_value("ram", 3, 16), initial_value("ram", 4, 16));
  std::int64_t v = initial_value("ram", 3, 16);
  EXPECT_EQ(v, canon(v, 16));
}

// --- reference evaluator ----------------------------------------------------

TEST(Evaluator, PinnedArithmeticOnDemo) {
  auto target = retarget_model("demo");
  ASSERT_TRUE(target);
  util::DiagnosticSink d;
  auto prog = ir::parse_kernel(
      "kernel ev;\n"
      "bind a: R0;\nbind b: R1;\nbind c: R2;\n"
      "a = 100;\n"
      "b = (a - 101);\n"       // -1 (wraps in 16 bits)
      "c = w16((b * 3));\n"    // -3, truncating multiply
      "a = (b ^ 21);\n",       // -1 ^ 21 = ~21 = -22
      d);
  ASSERT_TRUE(prog) << d.str();
  EvalResult r = evaluate(*prog, *target);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.stop, StopReason::kHalt);
  EXPECT_EQ(r.state.read_reg("R1"), -1);
  EXPECT_EQ(r.state.read_reg("R2"), -3);
  EXPECT_EQ(r.state.read_reg("R0"), -22);
}

TEST(Evaluator, BranchBudgetStopsBackwardLoop) {
  auto target = retarget_model("demo");
  ASSERT_TRUE(target);
  util::DiagnosticSink d;
  auto prog = ir::parse_kernel(
      "kernel lp;\nbind a: R0;\na = 0;\ntop:\na = (a + 1);\ngoto top;\n", d);
  ASSERT_TRUE(prog) << d.str();
  EvalOptions opts;
  opts.max_taken_branches = 4;
  EvalResult r = evaluate(*prog, *target, opts);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.stop, StopReason::kBranchBudget);
  EXPECT_EQ(r.taken_branches, 4);
  // Body ran exactly 4 times before the 4th taken branch stopped the run.
  EXPECT_EQ(r.state.read_reg("R0"), 4);
}

// --- semantic oracle: the six built-in models ------------------------------

class ChainSemantics : public ::testing::TestWithParam<int> {};

TEST_P(ChainSemantics, SimulatorMatchesReference) {
  const models::ChainShape& shape = models::kChainShapes[GetParam()];
  auto target = retarget_model(shape.model);
  ASSERT_TRUE(target);
  ir::Program prog = models::chain_program(shape, 6);
  auto compiled = compile(*target, prog);
  ASSERT_TRUE(compiled);
  CheckReport rep = check_semantics(prog, *compiled, *target);
  EXPECT_EQ(rep.status, CheckStatus::kAgree)
      << shape.model << ": " << rep.detail;
}

INSTANTIATE_TEST_SUITE_P(SixModels, ChainSemantics,
                         ::testing::Range(0, 6));

TEST_P(ChainSemantics, CompactedAndUncompactedSchedulesAreEquivalent) {
  const models::ChainShape& shape = models::kChainShapes[GetParam()];
  auto target = retarget_model(shape.model);
  ASSERT_TRUE(target);
  ir::Program prog = models::chain_program(shape, 5);

  core::CompileOptions flat;
  flat.compact.enabled = false;
  auto packed = compile(*target, prog);
  auto serial = compile(*target, prog, flat);
  ASSERT_TRUE(packed && serial);
  EXPECT_GE(serial->code_size(), packed->code_size());

  // Both schedules must agree with the reference — and hence with each
  // other — on every bound storage.
  CheckReport rp = check_semantics(prog, *packed, *target);
  CheckReport rs = check_semantics(prog, *serial, *target);
  EXPECT_EQ(rp.status, CheckStatus::kAgree) << shape.model << ": "
                                            << rp.detail;
  EXPECT_EQ(rs.status, CheckStatus::kAgree) << shape.model << ": "
                                            << rs.detail;
  for (const auto& [var, b] : prog.bindings()) {
    if (b.kind != ir::Binding::Kind::Register) continue;
    EXPECT_EQ(rp.sim.state.read_reg(b.storage),
              rs.sim.state.read_reg(b.storage))
        << shape.model << ": packed and serial schedules disagree on "
        << b.storage;
  }
}

// --- mode-register tracking (bass_boost scaling mode) ----------------------

TEST(ModeRegisters, ScaledStoreRunsCorrectlyFromUnknownModeState) {
  auto target = retarget_model("bass_boost");
  ASSERT_TRUE(target);
  ir::ProgramBuilder b("bass_mac_out");
  b.reg("acc", "A").cell("u", "sram", 0).cell("v", "crom", 1);
  b.cell("out", "sram", 40);
  b.let("acc", ir::e_mul(ir::e_var("u"), ir::e_var("v")));
  b.let("out", ir::e_lo(ir::e_var("acc")));
  ir::Program prog = b.take();
  auto compiled = compile(*target, prog);
  ASSERT_TRUE(compiled);
  // The scl unit's condition depends on mode register SM: compaction must
  // have inserted a mode set, and the simulator — which starts SM from an
  // arbitrary (hash) value — must still compute the right store.
  EXPECT_GE(compiled->compacted.stats.mode_sets_inserted, 1u);
  CheckReport rep = check_semantics(prog, *compiled, *target);
  EXPECT_EQ(rep.status, CheckStatus::kAgree) << rep.detail;
}

// --- negative decode --------------------------------------------------------

// A tiny accumulator machine for corruption tests: 8-bit R0, a 5-cell
// memory (non-power-of-2, so decoded addresses 5..7 are out of range), and
// a PC fed from the 3-bit immediate field.
//
// Word (8 bits): imm/addr 2:0, bsel 4:3, dst 6:5 (1 = R0, 2 = PC), we 7.
constexpr std::string_view kNegDecHdl = R"HDL(
PROCESSOR negdec;
CONTROLLER iw (OUT w:(7:0));
REGISTER R0 (IN d:(7:0); OUT q:(7:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;
REGISTER PC (IN d:(2:0); OUT q:(2:0); CTRL ld:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
END;
MEMORY mem (IN addr:(2:0); IN din:(7:0); OUT dout:(7:0);
            CTRL we:(0:0)) SIZE 5;
BEHAVIOR
  dout := CELL[addr];
  CELL[addr] := din WHEN we = 1;
END;
MODULE izx (IN a:(2:0); OUT y:(7:0));
BEHAVIOR
  y := ZXT(a);
END;
MODULE bmux (IN r:(7:0); IN i:(7:0); IN m:(7:0); OUT y:(7:0); CTRL s:(1:0));
BEHAVIOR
  y := r WHEN s = 0;
  y := i WHEN s = 1;
  y := m WHEN s = 2;
END;
MODULE ddec (IN d:(1:0); OUT r0:(0:0); OUT pc:(0:0));
BEHAVIOR
  r0 := 1 WHEN d = 1;
  pc := 1 WHEN d = 2;
END;
STRUCTURE
PARTS
  IW:  iw;
  R0:  R0;
  PC:  PC;
  mem: mem;
  IZX: izx;
  BM:  bmux;
  DD:  ddec;
CONNECTIONS
  IZX.a := IW.w(2:0);
  BM.r  := R0.q;
  BM.i  := IZX.y;
  BM.m  := mem.dout;
  BM.s  := IW.w(4:3);
  R0.d  := BM.y;
  R0.ld := DD.r0;
  DD.d  := IW.w(6:5);
  PC.d  := IW.w(2:0);
  PC.ld := DD.pc;
  mem.addr := IW.w(2:0);
  mem.din  := R0.q;
  mem.we   := IW.w(7:7);
END;
)HDL";

struct NegDec {
  core::RetargetResult target;
  core::CompileResult compiled;
};

std::optional<NegDec> compile_negdec(std::string_view kernel) {
  util::DiagnosticSink d1, d2, d3;
  auto target = core::Record::retarget(kNegDecHdl, core::RetargetOptions{},
                                       d1);
  EXPECT_TRUE(target) << d1.str();
  if (!target) return std::nullopt;
  auto prog = ir::parse_kernel(kernel, d2);
  EXPECT_TRUE(prog) << d2.str();
  if (!prog) return std::nullopt;
  core::Compiler compiler(*target);
  core::CompileOptions copts;
  copts.spill.scratch_base = 4;  // cell 4 is the only non-program cell
  copts.spill.scratch_slots = 1;
  auto compiled = compiler.compile(*prog, copts, d3);
  EXPECT_TRUE(compiled) << d3.str();
  if (!compiled) return std::nullopt;
  return NegDec{std::move(*target), std::move(*compiled)};
}

MachineResult run_words(const NegDec& n) {
  Machine machine(*n.target.base);
  return machine.run(n.compiled.encoded.assembly, {});
}

TEST(NegativeDecode, UncorruptedProgramsExecute) {
  auto n = compile_negdec("kernel ok;\nbind a: R0;\na = 3;\n");
  ASSERT_TRUE(n);
  MachineResult r = run_words(*n);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.state.read_reg("R0"), 3);
}

TEST(NegativeDecode, WordFiringNoTemplateIsRejected) {
  auto n = compile_negdec("kernel ok;\nbind a: R0;\na = 3;\n");
  ASSERT_TRUE(n);
  // Clear the dst field (bits 5:6) and we (bit 7): nothing fires.
  emit::EncodedWord& w = n->compiled.encoded.assembly.words.front();
  w.bits[5] = w.bits[6] = w.bits[7] = false;
  MachineResult r = run_words(*n);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.unsupported);
  EXPECT_NE(r.error.find("no RT template fires"), std::string::npos)
      << r.error;
}

TEST(NegativeDecode, OutOfRangeStoreAddressIsRejected) {
  auto n = compile_negdec(
      "kernel st;\nbind a: R0;\ncell m1: mem[1];\nm1 = a;\n");
  ASSERT_TRUE(n);
  // Find the store word and corrupt its address field (bits 2:0) to 7 —
  // beyond the 5-cell memory.
  bool corrupted = false;
  for (emit::EncodedWord& w : n->compiled.encoded.assembly.words) {
    if (!w.bits[7]) continue;  // we = 1 marks the store
    w.bits[0] = w.bits[1] = w.bits[2] = true;
    corrupted = true;
  }
  ASSERT_TRUE(corrupted) << "no store word found";
  MachineResult r = run_words(*n);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("out of range"), std::string::npos) << r.error;
}

TEST(NegativeDecode, OutOfRangeBranchTargetIsRejected) {
  auto n = compile_negdec(
      "kernel br;\nbind a: R0;\ntop:\na = 1;\ngoto top;\n");
  ASSERT_TRUE(n);
  // Find the branch word (dst field = 2) and corrupt the target to 7 —
  // far beyond the 2-word program.
  bool corrupted = false;
  for (emit::EncodedWord& w : n->compiled.encoded.assembly.words) {
    if (!(w.bits[6] && !w.bits[5])) continue;  // dst == 2
    w.bits[0] = w.bits[1] = w.bits[2] = true;
    corrupted = true;
  }
  ASSERT_TRUE(corrupted) << "no branch word found";
  MachineResult r = run_words(*n);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("branch target"), std::string::npos) << r.error;
}

TEST(NegativeDecode, BitFlipChangingTheImmediateStillExecutesButDiverges) {
  // Not every corruption is structurally invalid: flipping an immediate bit
  // yields a perfectly decodable word computing a different value. The
  // decoder executes it — and the semantic oracle reports the divergence.
  auto n = compile_negdec("kernel ok;\nbind a: R0;\na = 3;\n");
  ASSERT_TRUE(n);
  util::DiagnosticSink d;
  auto prog = ir::parse_kernel("kernel ok;\nbind a: R0;\na = 3;\n", d);
  ASSERT_TRUE(prog);
  n->compiled.encoded.assembly.words.front().bits[2] = true;  // 3 -> 7
  CheckReport rep = check_semantics(*prog, n->compiled, n->target);
  EXPECT_EQ(rep.status, CheckStatus::kDiverged);
  EXPECT_NE(rep.detail.find("R0"), std::string::npos) << rep.detail;
}

// --- multi-slot decode: the duo machine (tests/data/duo.hdl) ----------------
//
// duo packs two issue slots into a 23-bit word: the main ALU path
// (imm w(3:0) shared with PC.d, AM.s w(5:4), BM.s w(7:6), ALU.f w(9:8),
// DD.d w(11:10) with 1=R0 2=R1 3=PC) and a mode-switched slot
// (A1.s w(12), B1.s w(13), D1.d w(15:14), X1 imm w(19:16), U1.f = SM).
// The PC has DELAY 1: one architectural branch delay slot. Words are built
// bit-by-bit here — these tests exercise the decoder on words no compiler
// produced.

const core::RetargetResult& duo() {
  static const core::RetargetResult target = [] {
    std::ifstream in(std::string(RECORD_TESTS_DIR) + "/data/duo.hdl");
    EXPECT_TRUE(in) << "missing fixture tests/data/duo.hdl";
    std::ostringstream buf;
    buf << in.rdbuf();
    util::DiagnosticSink diags;
    auto r = core::Record::retarget(buf.str(), core::RetargetOptions{}, diags);
    EXPECT_TRUE(r) << diags.str();
    return std::move(*r);
  }();
  return target;
}

emit::EncodedWord duo_word(std::uint32_t v, int address) {
  emit::EncodedWord w;
  w.address = address;
  w.bits.assign(23, false);
  for (int k = 0; k < 23; ++k) w.bits[k] = ((v >> k) & 1u) != 0;
  return w;
}

// Field placements (see the layout comment above).
constexpr std::uint32_t duo_imm(std::uint32_t v) { return v & 0xfu; }
constexpr std::uint32_t duo_am_imm = 2u << 4;   // A operand mux selects imm
constexpr std::uint32_t duo_dd(std::uint32_t v) { return v << 10; }
constexpr std::uint32_t duo_b1_x1 = 1u << 13;   // slot-1 B operand = X1 imm
constexpr std::uint32_t duo_d1(std::uint32_t v) { return v << 14; }

TEST(MultiSlotDecode, DoubleBusDriveDecodesAsNeitherWrite) {
  // A word asserting BOTH destination decoders for R0 (main DD.d = 1 and
  // slot-1 D1.d = 1) would put two drivers on the wb0 bus — structurally
  // undefined hardware. Template extraction bakes driver exclusivity into
  // every writer's condition, so NEITHER write fires: the decoder must not
  // pick a winner, and R0 keeps its prior value.
  emit::Assembly a;
  a.words.push_back(
      duo_word(duo_imm(5) | duo_am_imm | duo_dd(1) | duo_d1(1) | duo_b1_x1,
               0));
  State init(*duo().base);
  init.write_reg("R0", 7);
  init.write_reg("R1", 0);
  Machine machine(*duo().base);
  MachineResult r = machine.run(a, {}, &init);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.state.read_reg("R0"), 7) << "a bus double-drive word wrote R0";
}

// A register file entry with TWO write ports, each fed by its own immediate
// field and load enable — the one structure where two RT templates can fire
// on the same word writing the same location. VLIW register files have
// exactly this shape; conflicting values are a structural hazard the
// decoder must reject, while agreeing values (commutative-twin encodings)
// are legitimate.
constexpr std::string_view kDualPortHdl = R"HDL(
PROCESSOR dup;
CONTROLLER iw (OUT w:(9:0));
REGISTER R0 (IN d:(3:0); IN e:(3:0); OUT q:(3:0); CTRL ld:(0:0);
             CTRL le:(0:0));
BEHAVIOR
  q := d WHEN ld = 1;
  q := e WHEN le = 1;
END;
PORT pout: OUT (3:0);
STRUCTURE
PARTS
  IW: iw;
  R0: R0;
CONNECTIONS
  R0.d  := IW.w(3:0);
  R0.e  := IW.w(7:4);
  R0.ld := IW.w(8:8);
  R0.le := IW.w(9:9);
  pout := R0.q;
END;
)HDL";

const core::RetargetResult& dual_port() {
  static const core::RetargetResult target = [] {
    util::DiagnosticSink diags;
    auto r =
        core::Record::retarget(kDualPortHdl, core::RetargetOptions{}, diags);
    EXPECT_TRUE(r) << diags.str();
    return std::move(*r);
  }();
  return target;
}

MachineResult run_dual_port(std::uint32_t imm_d, std::uint32_t imm_e) {
  emit::Assembly a;
  emit::EncodedWord w;
  w.address = 0;
  w.bits.assign(10, false);
  std::uint32_t v = (imm_d & 0xfu) | ((imm_e & 0xfu) << 4) | (1u << 8) |
                    (1u << 9);  // both load enables asserted
  for (int k = 0; k < 10; ++k) w.bits[k] = ((v >> k) & 1u) != 0;
  a.words.push_back(std::move(w));
  Machine machine(*dual_port().base);
  return machine.run(a, {});
}

TEST(MultiSlotDecode, ConflictingSameLocationWritesAreRejected) {
  MachineResult r = run_dual_port(5, 3);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.unsupported);
  EXPECT_NE(r.error.find("write contention"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("R0"), std::string::npos) << r.error;
}

TEST(MultiSlotDecode, AgreeingSameLocationWritesCommitOnce) {
  MachineResult r = run_dual_port(7, 7);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.state.read_reg("R0"), 7);
}

TEST(MultiSlotDecode, DelaySlotRetiresBeforeTheBranchLands) {
  // word 0 branches to word 3; word 1 sits in the delay slot and must
  // still retire (R0 := 5) before the PC write lands; word 2 is jumped
  // over and must NOT execute (it would set R0 := 9).
  emit::Assembly a;
  a.words.push_back(duo_word(duo_imm(3) | duo_dd(3), 0));             // goto 3
  a.words.push_back(duo_word(duo_imm(5) | duo_am_imm | duo_dd(1), 1));  // R0:=5
  a.words.push_back(duo_word(duo_imm(9) | duo_am_imm | duo_dd(1), 2));  // R0:=9
  a.words.push_back(duo_word(duo_imm(1) | duo_am_imm | duo_dd(2), 3));  // R1:=1
  Machine machine(*duo().base);
  MachineResult r = machine.run(a, {});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.stop, StopReason::kHalt);
  EXPECT_EQ(r.taken_branches, 1);
  EXPECT_EQ(r.state.read_reg("R0"), 5) << "delay-slot word did not retire";
  EXPECT_EQ(r.state.read_reg("R1"), 1) << "branch did not land on word 3";
}

// --- generated machines ------------------------------------------------------

TEST(GeneratedMachines, SemanticOracleOverSeedRange) {
  int checked = 0;
  for (std::uint64_t seed = 0; seed <= 25; ++seed) {
    testgen::GeneratedModel m = testgen::generate_model(seed);
    for (std::uint64_t p = 0; p < 2; ++p) {
      testgen::GeneratedProgram gp = testgen::generate_program(m, p);
      testgen::OracleOptions o;
      o.service = false;  // keep the unit test fast; fuzz covers the rest
      o.cache = false;
      if (m.spill_slots > 0) {
        o.compile.spill.scratch_base = m.spill_base;
        o.compile.spill.scratch_slots = m.spill_slots;
      }
      testgen::OracleReport rep = testgen::check_pair(m.hdl, gp.program, o);
      EXPECT_TRUE(rep.agree) << "seed " << seed << " p" << p << ": "
                             << rep.failure << "\n"
                             << gp.kernel;
      if (rep.semantics_checked) ++checked;
    }
  }
  EXPECT_GT(checked, 10) << "semantic oracle barely exercised";
}

// --- warm TargetCache carries the storage model ----------------------------

TEST(WarmCache, ReloadedTargetKeepsMemorySizesAndSimulates) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "record-sim-cache-test")
          .string();
  std::filesystem::remove_all(dir);
  core::RetargetOptions opts;
  opts.use_target_cache = true;
  opts.cache_dir = dir;
  util::DiagnosticSink d1, d2;
  auto cold = core::Record::retarget_model("demo", opts, d1);
  auto warm = core::Record::retarget_model("demo", opts, d2);
  ASSERT_TRUE(cold && warm) << d1.str() << d2.str();
  EXPECT_TRUE(warm->cache_hit);
  const rtl::StorageInfo* mem = warm->base->find_storage("mem");
  ASSERT_NE(mem, nullptr);
  EXPECT_EQ(mem->cells, 2048);

  ir::Program prog = models::chain_program(models::kChainShapes[0], 4);
  auto compiled = compile(*warm, prog);
  ASSERT_TRUE(compiled);
  CheckReport rep = check_semantics(prog, *compiled, *warm);
  EXPECT_EQ(rep.status, CheckStatus::kAgree) << rep.detail;
  std::filesystem::remove_all(dir);
}

// --- CompileService semantic-check jobs ------------------------------------

TEST(Service, CheckSemanticsJobReportsAndCounts) {
  service::CompileService::Options sopts;
  sopts.workers = 2;
  service::CompileService svc(sopts);
  std::vector<service::CompileJob> jobs;
  for (int i = 0; i < 4; ++i) {
    service::CompileJob job;
    job.tag = "sem" + std::to_string(i);
    job.model = "demo";
    job.kernel = "kernel svc;\nbind a: R0;\nbind b: R1;\n"
                 "a = (b + 7);\n";
    job.check_semantics = true;
    jobs.push_back(std::move(job));
  }
  std::vector<service::JobResult> results = svc.compile_batch(std::move(jobs));
  for (const service::JobResult& r : results) {
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.semantics_checked) << r.semantics_skipped;
  }
  service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.semantics_checked, 4u);
  EXPECT_EQ(stats.semantics_failed, 0u);
}

}  // namespace
}  // namespace record::sim
