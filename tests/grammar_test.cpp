#include <gtest/gtest.h>

#include "grammar/bnf.h"
#include "grammar/build.h"
#include "grammar/grammar.h"
#include "rtl/template.h"

namespace record::grammar {
namespace {

/// A hand-built template base:
///   ACC := ACC + ram[#imm]      (cost 1)
///   ACC := ram[#imm]
///   ACC := #0
///   TR  := ram[#imm]
///   ACC := TR                   (chain)
///   ram[#imm] := bits15_0(ACC)  (memory store with low slice)
rtl::TemplateBase mini_base() {
  rtl::TemplateBase base;
  base.mgr = std::make_shared<bdd::BddManager>();
  base.instruction_width = 8;
  base.storage.push_back(
      rtl::StorageInfo{"ACC", rtl::DestKind::Register, 32, true});
  base.storage.push_back(
      rtl::StorageInfo{"TR", rtl::DestKind::Register, 16, true});
  base.storage.push_back(
      rtl::StorageInfo{"ram", rtl::DestKind::Memory, 16, true});
  base.in_ports.push_back(rtl::PortInInfo{"pin", 16});

  auto imm = [] { return rtl::make_imm({0, 1, 2, 3}); };
  auto load = [&] { return rtl::make_mem_load("ram", 16, imm()); };

  rtl::RTTemplate t1;
  t1.dest = "ACC";
  t1.dest_kind = rtl::DestKind::Register;
  t1.dest_width = 32;
  {
    std::vector<rtl::RTNodePtr> kids;
    kids.push_back(rtl::make_reg_read("ACC", 32));
    kids.push_back(load());
    t1.value = rtl::make_op(rtl::OpSig{hdl::OpKind::Add, "", 32},
                            std::move(kids));
  }
  base.add_unique(std::move(t1));

  rtl::RTTemplate t2;
  t2.dest = "ACC";
  t2.dest_kind = rtl::DestKind::Register;
  t2.dest_width = 32;
  t2.value = load();
  base.add_unique(std::move(t2));

  rtl::RTTemplate t3;
  t3.dest = "ACC";
  t3.dest_kind = rtl::DestKind::Register;
  t3.dest_width = 32;
  t3.value = rtl::make_hard_const(0, 32);
  base.add_unique(std::move(t3));

  rtl::RTTemplate t4;
  t4.dest = "TR";
  t4.dest_kind = rtl::DestKind::Register;
  t4.dest_width = 16;
  t4.value = load();
  base.add_unique(std::move(t4));

  rtl::RTTemplate t5;
  t5.dest = "ACC";
  t5.dest_kind = rtl::DestKind::Register;
  t5.dest_width = 32;
  t5.value = rtl::make_reg_read("TR", 16);
  base.add_unique(std::move(t5));

  rtl::RTTemplate t6;
  t6.dest = "ram";
  t6.dest_kind = rtl::DestKind::Memory;
  t6.dest_width = 16;
  t6.addr = imm();
  {
    std::vector<rtl::RTNodePtr> kids;
    kids.push_back(rtl::make_reg_read("ACC", 32));
    t6.value = rtl::make_op(rtl::slice_op_sig(15, 0), std::move(kids));
  }
  base.add_unique(std::move(t6));

  return base;
}

BuiltGrammar build_mini(BuildOptions options = {}) {
  rtl::TemplateBase base = mini_base();
  util::DiagnosticSink diags;
  BuiltGrammar g = build_grammar(base, options, diags);
  EXPECT_TRUE(diags.ok()) << diags.str();
  return g;
}

TEST(GrammarBuild, StartSymbolIsIndexZero) {
  BuiltGrammar g = build_mini();
  EXPECT_EQ(g.grammar.nonterminal_name(kStart), "START");
}

TEST(GrammarBuild, OneStartRulePerStorage) {
  BuiltGrammar g = build_mini();
  EXPECT_EQ(g.stats.start_rules, 3u);  // ACC, TR, ram
  int count = 0;
  for (const Rule& r : g.grammar.rules())
    if (r.kind == RuleKind::Start) {
      ++count;
      EXPECT_EQ(r.lhs, kStart);
      EXPECT_EQ(r.cost, 0);
      EXPECT_EQ(r.pattern->term, g.grammar.assign_terminal());
      ASSERT_EQ(r.pattern->children.size(), 2u);
      EXPECT_EQ(r.pattern->children[1]->kind, PatNode::Kind::NonTerm);
    }
  EXPECT_EQ(count, 3);
}

TEST(GrammarBuild, StopRulesForReadableRegisters) {
  BuiltGrammar g = build_mini();
  EXPECT_EQ(g.stats.stop_rules, 2u);  // ACC, TR (not the memory)
  for (const Rule& r : g.grammar.rules())
    if (r.kind == RuleKind::Stop) EXPECT_EQ(r.cost, 0);
}

TEST(GrammarBuild, RtRulesCostOne) {
  BuiltGrammar g = build_mini();
  for (const Rule& r : g.grammar.rules())
    if (r.kind == RuleKind::RT) {
      EXPECT_EQ(r.cost, 1);
      EXPECT_GE(r.template_id, 0);
    }
}

TEST(GrammarBuild, ChainRuleFromRegisterMove) {
  BuiltGrammar g = build_mini();
  EXPECT_EQ(g.stats.chain_rules, 1u);  // ACC := TR
  NtId acc = g.grammar.find_nonterminal("nt:ACC");
  NtId tr = g.grammar.find_nonterminal("nt:TR");
  const auto& chains = g.grammar.chain_rules_from(tr);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(g.grammar.rule(chains[0]).lhs, acc);
}

TEST(GrammarBuild, MemoryStoreRuleShape) {
  BuiltGrammar g = build_mini();
  NtId ram = g.grammar.find_nonterminal("nt:ram");
  ASSERT_GE(ram, 0);
  bool found_store = false;
  for (const Rule& r : g.grammar.rules()) {
    if (r.lhs != ram || r.kind != RuleKind::RT) continue;
    found_store = true;
    EXPECT_EQ(g.grammar.terminal_name(r.pattern->term), "store:ram");
    ASSERT_EQ(r.pattern->children.size(), 2u);
    EXPECT_EQ(r.pattern->children[0]->kind, PatNode::Kind::Imm);
  }
  EXPECT_TRUE(found_store);
}

TEST(GrammarBuild, LowSliceVariantEmitted) {
  BuiltGrammar g = build_mini();
  EXPECT_EQ(g.stats.low_slice_variants, 1u);
  // The variant stores nt:ACC directly (slice elided).
  NtId ram = g.grammar.find_nonterminal("nt:ram");
  int direct = 0;
  for (const Rule& r : g.grammar.rules()) {
    if (r.lhs != ram || r.kind != RuleKind::RT) continue;
    if (r.pattern->children[1]->kind == PatNode::Kind::NonTerm) ++direct;
  }
  EXPECT_EQ(direct, 1);
}

TEST(GrammarBuild, LowSliceVariantCanBeDisabled) {
  BuildOptions options;
  options.elide_low_slices = false;
  BuiltGrammar g = build_mini(options);
  EXPECT_EQ(g.stats.low_slice_variants, 0u);
}

TEST(GrammarBuild, ImmediateLeavesCarryFieldBits) {
  BuiltGrammar g = build_mini();
  bool found = false;
  for (const Rule& r : g.grammar.rules()) {
    if (r.kind != RuleKind::RT) continue;
    if (r.pattern->kind == PatNode::Kind::Term &&
        g.grammar.terminal_name(r.pattern->term) == "load:ram.16") {
      found = true;
      ASSERT_EQ(r.pattern->children[0]->kind, PatNode::Kind::Imm);
      EXPECT_EQ(r.pattern->children[0]->imm_bits,
                (std::vector<int>{0, 1, 2, 3}));
    }
  }
  EXPECT_TRUE(found);
}

TEST(GrammarBuild, RulesIndexedByRootTerminal) {
  BuiltGrammar g = build_mini();
  TermId load = g.grammar.find_terminal("load:ram.16");
  ASSERT_GE(load, 0);
  EXPECT_EQ(g.grammar.rules_for_terminal(load).size(), 2u);  // ACC, TR
}

TEST(GrammarBuild, ConstRuleAttachedToConstTerminal) {
  BuiltGrammar g = build_mini();
  const auto& rules =
      g.grammar.rules_for_terminal(g.grammar.const_terminal());
  // ACC := #0 roots at the constant terminal.
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(g.grammar.rule(rules[0]).pattern->kind, PatNode::Kind::Const);
}

TEST(Bnf, RendersHeaderAndRules) {
  BuiltGrammar g = build_mini();
  std::string bnf = to_bnf(g.grammar);
  EXPECT_NE(bnf.find("%start START"), std::string::npos);
  EXPECT_NE(bnf.find("%term"), std::string::npos);
  EXPECT_NE(bnf.find("nt:ACC: +.32(nt:ACC, load:ram.16(#imm4)) = 1 ;"),
            std::string::npos)
      << bnf;
  EXPECT_NE(bnf.find("/* start */"), std::string::npos);
  EXPECT_NE(bnf.find("/* stop */"), std::string::npos);
}

TEST(Grammar, InternIsIdempotent) {
  TreeGrammar g;
  TermId a = g.intern_terminal("+.16");
  TermId b = g.intern_terminal("+.16");
  EXPECT_EQ(a, b);
  NtId x = g.intern_nonterminal("nt:X");
  EXPECT_EQ(g.find_nonterminal("nt:X"), x);
  EXPECT_EQ(g.find_nonterminal("nt:Y"), -1);
}

TEST(Grammar, PatternToString) {
  TreeGrammar g;
  TermId plus = g.intern_terminal("+.16");
  NtId x = g.intern_nonterminal("nt:X");
  std::vector<PatNodePtr> kids;
  kids.push_back(pat_nonterm(x));
  kids.push_back(pat_imm({0, 1}));
  PatNodePtr p = pat_term(plus, std::move(kids));
  EXPECT_EQ(pattern_to_string(g, *p), "+.16(nt:X, #imm2)");
}

}  // namespace
}  // namespace record::grammar
