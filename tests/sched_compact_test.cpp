#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "compact/compact.h"
#include "compact/depdag.h"
#include "core/compiler.h"
#include "core/record.h"
#include "ir/builder.h"
#include "sched/order.h"
#include "sched/spill.h"
#include "select/selector.h"
#include "sim/check.h"

namespace record {
namespace {

const core::RetargetResult& c25() {
  static const core::RetargetResult target = [] {
    util::DiagnosticSink diags;
    auto r = core::Record::retarget_model("tms320c25",
                                          core::RetargetOptions{}, diags);
    EXPECT_TRUE(r) << diags.str();
    return std::move(*r);
  }();
  return target;
}

select::SelectionResult select_program(const ir::Program& prog) {
  util::DiagnosticSink diags;
  select::CodeSelector selector(*c25().base, c25().tree_grammar, diags);
  auto result = selector.select(prog);
  EXPECT_TRUE(result) << diags.str();
  return result ? std::move(*result) : select::SelectionResult{};
}

ir::Program mac_program() {
  ir::ProgramBuilder b("mac");
  b.reg("acc", "ACC");
  b.cell("x", "ram", 1).cell("h", "ram", 2);
  b.let("acc", ir::e_add(ir::e_var("acc"),
                         ir::e_mul(ir::e_var("x"), ir::e_var("h"))));
  return b.take();
}

TEST(Dataflow, ProducersIdentified) {
  select::SelectionResult sel = select_program(mac_program());
  sched::DataflowInfo info = sched::analyze_dataflow(sel.stmts[0]);
  // RT order: LT x (writes T), MPY (reads T, ram; writes P),
  // APAC (reads ACC, P; writes ACC).
  ASSERT_EQ(info.operands.size(), 3u);
  bool mpy_reads_t_from_lt = false;
  for (const sched::OperandDef& def : info.operands[1])
    if (def.storage == "T" && def.producer == 0u) mpy_reads_t_from_lt = true;
  EXPECT_TRUE(mpy_reads_t_from_lt);
}

TEST(Dataflow, CleanTreeHasNoClobbers) {
  select::SelectionResult sel = select_program(mac_program());
  sched::DataflowInfo info = sched::analyze_dataflow(sel.stmts[0]);
  EXPECT_TRUE(info.clobbers.empty());
}

TEST(Dataflow, DetectsSyntheticClobber) {
  // Hand-craft a clobber: write T, write T again, read the first value.
  select::StmtCode sc;
  auto rt = [](const char* dest, std::vector<std::string> reads) {
    select::SelectedRT r;
    r.dest = dest;
    r.reads = std::move(reads);
    return r;
  };
  sc.rts.push_back(rt("T", {"ram"}));
  sc.rts.push_back(rt("T", {"ram"}));
  sc.rts.push_back(rt("P", {"T"}));
  sched::DataflowInfo info = sched::analyze_dataflow(sc);
  // The read at index 2 gets its value from index 1 (no clobber of THAT),
  // but no RT consumes index 0's value, so there is no clobber either.
  EXPECT_TRUE(info.clobbers.empty());

  // Now: producer(0) -> destroyer(1) -> consumer(2) with consumer wired to
  // producer 0 is impossible through last-write tracking; instead check the
  // real pattern: write T(0), read T(1), write T(2), read T(3) — the
  // second read correctly uses the second write, still no clobber...
  sc.rts.clear();
  sc.rts.push_back(rt("T", {}));
  sc.rts.push_back(rt("ACC", {"T"}));
  sc.rts.push_back(rt("T", {}));
  sc.rts.push_back(rt("P", {"T"}));
  info = sched::analyze_dataflow(sc);
  EXPECT_TRUE(info.clobbers.empty());

  // A genuine clobber: value written at 0, overwritten at 1, consumed at 2.
  sc.rts.clear();
  sc.rts.push_back(rt("ACC", {}));          // produce
  sc.rts.push_back(rt("ACC", {"ram"}));     // destroy
  select::SelectedRT consumer = rt("ram", {"ACC"});
  sc.rts.push_back(consumer);
  info = sched::analyze_dataflow(sc);
  // last_write tracking: the consumer reads the destroyer's value, which is
  // the semantics of a sequential RT list — so again no clobber. Clobbers
  // only exist relative to recorded producers, which requires the consumer
  // to have a producer earlier than an intervening writer. Verify via the
  // public contract instead: spill insertion leaves correct lists alone.
  EXPECT_TRUE(info.clobbers.empty());
}

TEST(Spill, NoSpillsOnCleanKernels) {
  ir::Program prog = mac_program();
  select::SelectionResult sel = select_program(prog);
  util::DiagnosticSink diags;
  sched::SpillStats stats =
      sched::insert_spills(sel, prog, *c25().base, c25().tree_grammar,
                           sched::SpillOptions{}, diags);
  EXPECT_EQ(stats.clobbers_found, 0u);
  EXPECT_EQ(stats.spills_inserted, 0u);
  EXPECT_EQ(stats.live_saves, 0u);
}

TEST(Spill, CallerSavesLiveRegisterUsedAsScratch) {
  // On Mano's machine every ALU operation routes its first operand through
  // DR. If DR holds a bound variable, a statement that uses DR as routing
  // scratch must save and restore it (DR is directly storable via the bus).
  util::DiagnosticSink rd;
  auto mano = core::Record::retarget_model("manocpu",
                                           core::RetargetOptions{}, rd);
  ASSERT_TRUE(mano) << rd.str();
  ir::ProgramBuilder b("t");
  b.reg("a", "AC").reg("dv", "DR");
  b.cell("x", "mem", 1).cell("y", "mem", 2);
  b.let("a", ir::e_add(ir::e_var("x"), ir::e_var("y")));
  ir::Program prog = b.take();
  util::DiagnosticSink sd;
  select::CodeSelector selector(*mano->base, mano->tree_grammar, sd);
  auto sel = selector.select(prog);
  ASSERT_TRUE(sel) << sd.str();
  bool scratches_dr = false;
  for (const select::SelectedRT& rt : sel->stmts[0].rts)
    if (rt.dest == "DR") scratches_dr = true;
  ASSERT_TRUE(scratches_dr) << "cover no longer routes through DR";
  util::DiagnosticSink diags;
  sched::SpillStats stats =
      sched::insert_spills(*sel, prog, *mano->base, mano->tree_grammar,
                           sched::SpillOptions{}, diags);
  EXPECT_EQ(stats.live_saves, 1u) << diags.str();
  // Save at the front (ends in a memory write), reload at the back.
  EXPECT_EQ(sel->stmts[0].rts.back().dest, "DR");
}

TEST(Spill, CallerSaveRejectedWhenUnsafe) {
  // On the C25, T cannot be stored to memory at all: a statement that
  // scratches a bound T must be reported, not silently mis-compiled.
  ir::ProgramBuilder b("t");
  b.reg("acc", "ACC").reg("tv", "T");
  b.cell("x", "ram", 1).cell("h", "ram", 2);
  b.let("acc", ir::e_mul(ir::e_var("x"), ir::e_var("h")));
  ir::Program prog = b.take();
  select::SelectionResult sel = select_program(prog);
  util::DiagnosticSink diags;
  sched::SpillStats stats =
      sched::insert_spills(sel, prog, *c25().base, c25().tree_grammar,
                           sched::SpillOptions{}, diags);
  EXPECT_EQ(stats.live_saves, 0u);
  EXPECT_EQ(stats.unresolved, 1u);
  EXPECT_NE(diags.str().find("clobbers live register 'T'"),
            std::string::npos);
}

TEST(DepDag, RegionsSplitAtLabelsAndBranches) {
  ir::ProgramBuilder b("t");
  b.reg("acc", "ACC");
  b.let("acc", ir::e_const(0));
  b.label("top");
  b.let("acc", ir::e_const(1));
  b.program().branch_if_not_zero("acc", "top");
  b.let("acc", ir::e_const(2));
  select::SelectionResult sel = select_program(b.take());
  std::vector<compact::Region> regions = compact::build_regions(sel);
  ASSERT_EQ(regions.size(), 3u);
  EXPECT_EQ(regions[0].label, "");
  EXPECT_EQ(regions[1].label, "top");
  EXPECT_TRUE(regions[1].ends_with_branch);
  EXPECT_FALSE(regions[2].ends_with_branch);
}

TEST(DepDag, RawEdgesHaveLatencyOne) {
  select::SelectionResult sel = select_program(mac_program());
  std::vector<compact::Region> regions = compact::build_regions(sel);
  ASSERT_EQ(regions.size(), 1u);
  const compact::Region& r = regions[0];
  bool lt_to_mpy = false;
  for (const compact::DepEdge& e : r.edges)
    if (e.from == 0 && e.to == 1 && e.latency == 1) lt_to_mpy = true;
  EXPECT_TRUE(lt_to_mpy);
}

TEST(Compact, MacPairsFuseIntoMpya) {
  // Three chained products: the pending accumulate of product i packs with
  // the multiply of product i+1 (both encodable under the MPYA opcode).
  // With only two products no fusion exists (the final APAC depends on the
  // last MPY), so three is the smallest demonstration.
  ir::ProgramBuilder b("t");
  b.reg("acc", "ACC");
  for (int i = 0; i < 3; ++i)
    b.cell("x" + std::to_string(i), "ram", 1 + i)
        .cell("h" + std::to_string(i), "ram", 8 + i);
  b.let("acc",
        ir::e_add(ir::e_add(ir::e_mul(ir::e_var("x0"), ir::e_var("h0")),
                            ir::e_mul(ir::e_var("x1"), ir::e_var("h1"))),
                  ir::e_mul(ir::e_var("x2"), ir::e_var("h2"))));
  select::SelectionResult sel = select_program(b.take());
  util::DiagnosticSink diags;
  compact::CompactResult result =
      compact::compact(sel, *c25().base, compact::CompactOptions{}, diags);
  EXPECT_LT(result.program.word_count(), result.stats.input_rts);
  bool fused = false;
  for (const auto& region : result.program.regions)
    for (const auto& word : region.words)
      if (word.rts.size() == 2) fused = true;
  EXPECT_TRUE(fused);
}

TEST(Compact, DisabledKeepsOneRtPerWord) {
  select::SelectionResult sel = select_program(mac_program());
  util::DiagnosticSink diags;
  compact::CompactOptions options;
  options.enabled = false;
  compact::CompactResult result =
      compact::compact(sel, *c25().base, options, diags);
  EXPECT_EQ(result.program.word_count(), result.stats.input_rts);
  for (const auto& region : result.program.regions)
    for (const auto& word : region.words) EXPECT_EQ(word.rts.size(), 1u);
}

TEST(Compact, RawDependenceForcesSequentialCycles) {
  select::SelectionResult sel = select_program(mac_program());
  util::DiagnosticSink diags;
  compact::CompactResult result =
      compact::compact(sel, *c25().base, compact::CompactOptions{}, diags);
  // LT -> MPY -> APAC is a pure RAW chain: 3 words, no packing possible.
  EXPECT_EQ(result.program.word_count(), 3u);
}

TEST(Compact, EncodingConflictPreventsPacking) {
  // Two post-modify updates of different address registers are fully
  // independent in the dataflow, but the single 2-bit amod field encodes
  // only one of them per word: the pair must be rejected on encoding
  // grounds and serialised into two words.
  ir::ProgramBuilder b("t");
  b.reg("p", "AR1").reg("q", "AR2");
  b.let("p", ir::e_add(ir::e_var("p"), ir::e_const(1)));
  b.let("q", ir::e_add(ir::e_var("q"), ir::e_const(1)));
  select::SelectionResult sel = select_program(b.take());
  ASSERT_EQ(sel.total_rts, 2u);
  util::DiagnosticSink diags;
  compact::CompactResult result =
      compact::compact(sel, *c25().base, compact::CompactOptions{}, diags);
  EXPECT_EQ(result.program.word_count(), 2u);
  EXPECT_GT(result.stats.pairs_rejected_encoding, 0u);
}

TEST(Compact, IndependentCompatibleRtsDoPack) {
  // An AR1 post-increment is field-disjoint from a T load (the MACD
  // idiom): the pair shares one instruction word.
  ir::ProgramBuilder b("t");
  b.reg("p", "AR1").reg("t", "T");
  b.cell("x", "ram", 3);
  b.let("t", ir::e_var("x"));
  b.let("p", ir::e_add(ir::e_var("p"), ir::e_const(1)));
  select::SelectionResult sel = select_program(b.take());
  ASSERT_EQ(sel.total_rts, 2u);
  util::DiagnosticSink diags;
  compact::CompactResult result =
      compact::compact(sel, *c25().base, compact::CompactOptions{}, diags);
  EXPECT_EQ(result.program.word_count(), 1u);
}

TEST(Compact, BranchIsLastWordOfRegion) {
  ir::ProgramBuilder b("t");
  b.reg("acc", "ACC");
  b.label("top");
  b.let("acc", ir::e_const(0));
  b.program().branch_if_not_zero("acc", "top");
  select::SelectionResult sel = select_program(b.take());
  util::DiagnosticSink diags;
  compact::CompactResult result =
      compact::compact(sel, *c25().base, compact::CompactOptions{}, diags);
  const compact::CompactedRegion* region = nullptr;
  for (const auto& r : result.program.regions)
    if (r.label == "top") region = &r;
  ASSERT_NE(region, nullptr);
  ASSERT_FALSE(region->words.empty());
  EXPECT_TRUE(region->words.back().has_branch);
  EXPECT_EQ(region->words.back().branch_target, "top");
}

TEST(Compiler, EndToEndProducesListing) {
  core::Compiler compiler(c25());
  util::DiagnosticSink diags;
  auto result =
      compiler.compile(mac_program(), core::CompileOptions{}, diags);
  ASSERT_TRUE(result) << diags.str();
  EXPECT_EQ(result->code_size(), 3u);
  std::string listing = result->listing();
  EXPECT_NE(listing.find("T :="), std::string::npos);
  EXPECT_NE(listing.find("P :="), std::string::npos);
}

// --- hand-crafted 2-slot machine: delay slots, contention, mode sets --------

// A minimal dual-issue datapath (tests/data/duo.hdl) in the generated-model
// style: the classic
// immediate-capable main path (ALU: pass-a / pass-b / add) plus one extra
// slot whose ALU function (pass-a / pass-b / and / or) is switched by the
// 2-bit mode register SM rather than an instruction field, per-register
// write buses with a write-enable OR, and a PC with ONE architectural branch
// delay slot (`DELAY 1`). AND and OR exist only on the mode-switched slot,
// so programs using them force mode-set insertion; add exists only on the
// main path, so add-vs-and pairs exercise genuine cross-slot packing.

const core::RetargetResult& duo() {
  static const core::RetargetResult target = [] {
    std::ifstream in(std::string(RECORD_TESTS_DIR) + "/data/duo.hdl");
    EXPECT_TRUE(in) << "missing fixture tests/data/duo.hdl";
    std::ostringstream buf;
    buf << in.rdbuf();
    util::DiagnosticSink diags;
    auto r = core::Record::retarget(buf.str(), core::RetargetOptions{}, diags);
    EXPECT_TRUE(r) << diags.str();
    return std::move(*r);
  }();
  return target;
}

/// Compiles on duo and asserts success.
core::CompileResult duo_compile(const ir::Program& prog) {
  core::Compiler compiler(duo());
  util::DiagnosticSink diags;
  auto result = compiler.compile(prog, core::CompileOptions{}, diags);
  EXPECT_TRUE(result) << diags.str();
  return result ? std::move(*result) : core::CompileResult{};
}

/// The semantic oracle over a duo compile: emitted words executed on the
/// RT simulator vs. the IR reference evaluator.
void expect_duo_semantics(const ir::Program& prog,
                          const core::CompileResult& result) {
  sim::CheckReport chk = sim::check_semantics(prog, result, duo());
  EXPECT_EQ(chk.status, sim::CheckStatus::kAgree) << chk.detail;
}

TEST(DuoMachine, ExtractsOneBranchDelaySlot) {
  EXPECT_EQ(duo().base->branch_delay_slots, 1);
}

TEST(DuoDelay, IndependentWordMovesIntoTheDelaySlot) {
  // Body: two main-ALU adds (serial: one add unit) and a backward branch.
  // The second add neither feeds the branch nor writes PC, so the delay
  // filler moves it past the branch instead of padding a NOP.
  ir::ProgramBuilder b("t");
  b.reg("r0", "R0").reg("r1", "R1");
  b.label("top");
  b.let("r0", ir::e_add(ir::e_var("r0"), ir::e_const(1)));
  b.let("r1", ir::e_add(ir::e_var("r1"), ir::e_const(2)));
  b.jump("top");
  ir::Program prog = b.take();
  core::CompileResult res = duo_compile(prog);

  const compact::CompactedRegion* region = nullptr;
  for (const auto& r : res.compacted.program.regions)
    if (r.label == "top") region = &r;
  ASSERT_NE(region, nullptr);
  ASSERT_EQ(region->words.size(), 3u);
  EXPECT_FALSE(region->words.back().has_branch)
      << "branch still in the last word: delay slot not filled";
  EXPECT_TRUE(region->words[1].has_branch);
  ASSERT_EQ(region->words.back().rts.size(), 1u);
  EXPECT_EQ(region->words.back().rts[0]->dest, "R1");
  EXPECT_EQ(res.compacted.stats.delay_slots_filled, 1u);
  EXPECT_EQ(res.compacted.stats.delay_nops_inserted, 0u);

  expect_duo_semantics(prog, res);
}

TEST(DuoDelay, UnfillableDelaySlotPadsANop) {
  // A region that is ONLY a branch has nothing to move: the filler must pad
  // the delay slot with an empty (NOP) word, and that word must still
  // decode on the machine (the unguarded pout transfer keeps it valid).
  ir::ProgramBuilder b("t");
  b.reg("r0", "R0");
  b.label("top");
  b.jump("top");
  ir::Program prog = b.take();
  core::CompileResult res = duo_compile(prog);

  const compact::CompactedRegion* region = nullptr;
  for (const auto& r : res.compacted.program.regions)
    if (r.label == "top") region = &r;
  ASSERT_NE(region, nullptr);
  ASSERT_EQ(region->words.size(), 2u);
  EXPECT_TRUE(region->words[0].has_branch);
  EXPECT_TRUE(region->words.back().rts.empty()) << "expected a NOP pad";
  EXPECT_EQ(res.compacted.stats.delay_nops_inserted, 1u);

  expect_duo_semantics(prog, res);
}

TEST(DuoContention, SameDestinationNeverSharesAWord) {
  // Both statements write R0. The slots could encode the two writes into
  // one word bit-wise, but that word would drive two values into one
  // register — the WAW dependence must keep them sequential, and the
  // emitted words must replay to the second value.
  ir::ProgramBuilder b("t");
  b.reg("r0", "R0").reg("r1", "R1");
  b.let("r0", ir::e_const(1));
  b.let("r0", ir::e_const(2));
  ir::Program prog = b.take();
  core::CompileResult res = duo_compile(prog);
  EXPECT_EQ(res.compacted.program.word_count(), 2u);
  EXPECT_EQ(res.compacted.stats.multi_rt_words, 0u);
  for (const auto& region : res.compacted.program.regions)
    for (const auto& word : region.words) EXPECT_LE(word.rts.size(), 1u);
  expect_duo_semantics(prog, res);
}

TEST(DuoPacking, MainAndModeSlotPackWithAModeSet) {
  // `r0 + r1` exists only on the main ALU; `r1 & 3` only on the mode slot
  // (requiring SM = 2). The statements are WAR-independent, so the pair
  // packs into one word and the compactor synthesises the mode set.
  ir::ProgramBuilder b("t");
  b.reg("r0", "R0").reg("r1", "R1");
  b.let("r0", ir::e_add(ir::e_var("r0"), ir::e_var("r1")));
  b.let("r1", ir::e_bin(hdl::OpKind::And, ir::e_var("r1"), ir::e_const(3)));
  ir::Program prog = b.take();
  core::CompileResult res = duo_compile(prog);
  EXPECT_EQ(res.compacted.stats.multi_rt_words, 1u);
  EXPECT_EQ(res.compacted.stats.mode_sets_inserted, 1u);
  EXPECT_EQ(res.compacted.program.word_count(), 2u);  // mode set + packed
  expect_duo_semantics(prog, res);
}

TEST(DuoModes, ConflictingModeBitsResynthesizeTheFullRegister) {
  // AND needs SM = 2 (bits 10), OR needs SM = 3 (bits 11). After the first
  // set only bit 0 differs — but a mode-set word writes the WHOLE register,
  // so the second synthesized value must carry the established bit 1 too
  // (write 3, not 1). Regression for the mode-state clobber where the set
  // value was built from the changed bits alone.
  ir::ProgramBuilder b("t");
  b.reg("r0", "R0").reg("r1", "R1");
  b.let("r1", ir::e_bin(hdl::OpKind::And, ir::e_var("r0"), ir::e_var("r1")));
  b.let("r0", ir::e_bin(hdl::OpKind::Or, ir::e_var("r0"), ir::e_var("r1")));
  ir::Program prog = b.take();
  core::CompileResult res = duo_compile(prog);
  EXPECT_EQ(res.compacted.stats.mode_sets_inserted, 2u);
  std::string listing = res.listing();
  EXPECT_NE(listing.find("SM := #2"), std::string::npos) << listing;
  EXPECT_NE(listing.find("SM := #3"), std::string::npos) << listing;
  EXPECT_EQ(listing.find("SM := #1"), std::string::npos)
      << "mode set dropped the established high bit:\n" << listing;
  expect_duo_semantics(prog, res);
}

}  // namespace
}  // namespace record
