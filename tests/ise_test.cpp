#include <gtest/gtest.h>

#include <algorithm>

#include "hdl/parser.h"
#include "hdl/sema.h"
#include "ise/control.h"
#include "ise/extract.h"
#include "netlist/netlist.h"

namespace record::ise {
namespace {

netlist::Netlist make_netlist(std::string_view src) {
  util::DiagnosticSink diags;
  auto model = hdl::parse(src, diags);
  EXPECT_TRUE(model) << diags.str();
  EXPECT_TRUE(hdl::check_model(*model, diags)) << diags.str();
  auto nl = netlist::elaborate(std::move(*model), diags);
  EXPECT_TRUE(nl) << diags.str();
  return std::move(*nl);
}

ExtractResult extract_from(std::string_view src,
                           ExtractOptions options = {}) {
  netlist::Netlist nl = make_netlist(src);
  util::DiagnosticSink diags;
  return extract(nl, options, diags);
}

bool has_template(const rtl::TemplateBase& base, std::string_view sig) {
  return std::any_of(base.templates.begin(), base.templates.end(),
                     [&](const rtl::RTTemplate& t) {
                       return t.signature() == sig;
                     });
}

std::vector<std::string> signatures(const rtl::TemplateBase& base) {
  std::vector<std::string> out;
  for (const auto& t : base.templates) out.push_back(t.signature());
  return out;
}

// A small accumulator machine exercising ALU forks, immediates and
// a self-incrementing pointer register.
constexpr const char* kAccMachine = R"(
PROCESSOR acc;
CONTROLLER im (OUT w:(15:0));
REGISTER A (IN d:(7:0); OUT q:(7:0); CTRL ld:(0:0));
BEHAVIOR q := d WHEN ld = 1; END;
REGISTER PTR (IN d:(3:0); OUT q:(3:0); CTRL c:(1:0));
BEHAVIOR
  q := d WHEN c = 1;
  q := q + 1 WHEN c = 2;
END;
MEMORY mm (IN addr:(3:0); IN din:(7:0); OUT dout:(7:0); CTRL we:(0:0)) SIZE 16;
BEHAVIOR
  dout := CELL[addr];
  CELL[addr] := din WHEN we = 1;
END;
MODULE alu (IN a:(7:0); IN b:(7:0); OUT y:(7:0); CTRL f:(1:0));
BEHAVIOR
  y := a + b WHEN f = 0;
  y := a - b WHEN f = 1;
  y := b     WHEN f = 2;
END;
MODULE amux (IN i:(3:0); IN p:(3:0); OUT y:(3:0); CTRL s:(0:0));
BEHAVIOR
  y := i WHEN s = 0;
  y := p WHEN s = 1;
END;
STRUCTURE
PARTS
  IM: im;  A: A;  PTR: PTR;  M: mm;  ALU: alu;  AM: amux;
CONNECTIONS
  AM.i := IM.w(3:0);
  AM.p := PTR.q;
  AM.s := IM.w(4:4);
  M.addr := AM.y;
  M.din := A.q;
  M.we := IM.w(5:5);
  ALU.a := A.q;
  ALU.b := M.dout;
  ALU.f := IM.w(7:6);
  A.d := ALU.y;
  A.ld := IM.w(8:8);
  PTR.d := IM.w(3:0);
  PTR.c := IM.w(10:9);
END;
)";

TEST(ControlAnalysis, InstructionBitsAreVariables) {
  netlist::Netlist nl = make_netlist(kAccMachine);
  bdd::BddManager mgr;
  util::DiagnosticSink diags;
  ControlAnalyzer ctrl(nl, mgr, diags);
  bdd::BitVec w = ctrl.out_port_bits(nl.controller(), "w");
  EXPECT_EQ(w.width(), 16);
  EXPECT_EQ(w.bit(3), mgr.var(ctrl.instruction_var(3)));
  EXPECT_TRUE(ctrl.is_instruction_var(ctrl.instruction_var(0)));
}

TEST(ControlAnalysis, GuardBecomesInstructionBitCondition) {
  netlist::Netlist nl = make_netlist(kAccMachine);
  bdd::BddManager mgr;
  util::DiagnosticSink diags;
  ControlAnalyzer ctrl(nl, mgr, diags);
  netlist::InstanceId alu = nl.find_instance("ALU");
  // f = 1  <=>  w6=1 & w7=0 (f wired to w(7:6)).
  auto cmp = hdl::make_cmp("", "f", 1);
  bdd::Ref g = ctrl.guard_bdd(alu, *cmp);
  EXPECT_TRUE(mgr.eval(g, {{ctrl.instruction_var(6), true},
                           {ctrl.instruction_var(7), false}}));
  EXPECT_FALSE(mgr.eval(g, {{ctrl.instruction_var(6), true},
                            {ctrl.instruction_var(7), true}}));
}

TEST(ControlAnalysis, RegisterOutputIsDynamic) {
  netlist::Netlist nl = make_netlist(kAccMachine);
  bdd::BddManager mgr;
  util::DiagnosticSink diags;
  ControlAnalyzer ctrl(nl, mgr, diags);
  bdd::BitVec q = ctrl.out_port_bits(nl.find_instance("A"), "q");
  ASSERT_EQ(q.width(), 8);
  int v = mgr.top_var(q.bit(0));
  EXPECT_TRUE(ctrl.is_dynamic_var(v));
}

TEST(Extraction, FindsAluTemplatesForAllFunctions) {
  ExtractResult r = extract_from(kAccMachine);
  EXPECT_TRUE(has_template(r.base, "A := +.8(A,M[#imm.4@0])"));
  EXPECT_TRUE(has_template(r.base, "A := -.8(A,M[#imm.4@0])"));
  EXPECT_TRUE(has_template(r.base, "A := M[#imm.4@0]"));
}

TEST(Extraction, ForksOverAddressingModes) {
  ExtractResult r = extract_from(kAccMachine);
  EXPECT_TRUE(has_template(r.base, "A := +.8(A,M[PTR])"));
  EXPECT_TRUE(has_template(r.base, "A := M[PTR]"));
}

TEST(Extraction, PostModifyPointerTemplates) {
  ExtractResult r = extract_from(kAccMachine);
  EXPECT_TRUE(has_template(r.base, "PTR := +.4(PTR,#1.4)"));
  EXPECT_TRUE(has_template(r.base, "PTR := #imm.4@0"));
}

TEST(Extraction, MemoryWriteTemplates) {
  ExtractResult r = extract_from(kAccMachine);
  EXPECT_TRUE(has_template(r.base, "M[#imm.4@0] := A"));
  EXPECT_TRUE(has_template(r.base, "M[PTR] := A"));
}

TEST(Extraction, StorageInventoryComplete) {
  ExtractResult r = extract_from(kAccMachine);
  EXPECT_NE(r.base.find_storage("A"), nullptr);
  EXPECT_NE(r.base.find_storage("PTR"), nullptr);
  EXPECT_NE(r.base.find_storage("M"), nullptr);
  EXPECT_EQ(r.base.find_storage("ALU"), nullptr);  // combinational
  EXPECT_EQ(r.base.instruction_width, 16);
}

TEST(Extraction, ConditionsEncodeControlSignals) {
  ExtractResult r = extract_from(kAccMachine);
  const bdd::BddManager& mgr = *r.base.mgr;
  for (const rtl::RTTemplate& t : r.base.templates) {
    if (t.signature() == "A := +.8(A,M[#imm.4@0])") {
      // Requires A.ld=1 (w8), f=0 (w6=0,w7=0), amux s=0 (w4=0).
      std::string sop = mgr.to_sop(t.cond);
      EXPECT_NE(sop.find("I[8]"), std::string::npos) << sop;
      return;
    }
  }
  FAIL() << "template not found";
}

// --- encoding-conflict pruning -------------------------------------------

// Machine where the same field both selects the ALU function and gates a
// mux, so some (f, mux) combinations are unencodable.
constexpr const char* kConflict = R"(
PROCESSOR conflict;
CONTROLLER im (OUT w:(7:0));
REGISTER A (IN d:(3:0); OUT q:(3:0); CTRL ld:(0:0));
BEHAVIOR q := d WHEN ld = 1; END;
REGISTER B (IN d:(3:0); OUT q:(3:0); CTRL ld:(0:0));
BEHAVIOR q := d WHEN ld = 1; END;
MODULE mux (IN a:(3:0); IN b:(3:0); OUT y:(3:0); CTRL s:(0:0));
BEHAVIOR
  y := a WHEN s = 0;
  y := b WHEN s = 1;
END;
MODULE alu (IN a:(3:0); OUT y:(3:0); CTRL f:(0:0));
BEHAVIOR
  y := a     WHEN f = 0;
  y := a + 1 WHEN f = 1;
END;
STRUCTURE
PARTS
  IM: im;  A: A;  B: B;  MX: mux;  ALU: alu;
CONNECTIONS
  MX.a := IM.w(3:0);
  MX.b := B.q;
  MX.s := IM.w(4:4);
  ALU.a := MX.y;
  ALU.f := IM.w(4:4);   -- shared bit: f=1 forces s=1
  A.d := ALU.y;
  A.ld := IM.w(5:5);
  B.d := IM.w(3:0);
  B.ld := IM.w(6:6);
END;
)";

TEST(Extraction, SharedFieldPrunesImpossibleCombos) {
  ExtractResult r = extract_from(kConflict);
  // f=1 (increment) forces s=1 (operand B): "A := B+1" exists,
  // "A := imm+1" (f=1 with s=0) is unencodable and must be pruned.
  EXPECT_TRUE(has_template(r.base, "A := +.4(B,#1.4)"));
  EXPECT_FALSE(has_template(r.base, "A := +.4(#imm.4@0,#1.4)"));
  EXPECT_TRUE(has_template(r.base, "A := #imm.4@0"));
  EXPECT_GT(r.stats.route_stats.unsat_pruned, 0u);
}

TEST(Extraction, DisablingPruningKeepsInvalidTemplates) {
  ExtractOptions options;
  options.prune_unsat = false;
  ExtractResult r = extract_from(kConflict, options);
  EXPECT_TRUE(has_template(r.base, "A := +.4(#imm.4@0,#1.4)"));
}

// --- buses and contention ---------------------------------------------------

constexpr const char* kBusMachine = R"(
PROCESSOR busm;
CONTROLLER im (OUT w:(7:0));
REGISTER A (IN d:(3:0); OUT q:(3:0); CTRL ld:(0:0));
BEHAVIOR q := d WHEN ld = 1; END;
REGISTER B (IN d:(3:0); OUT q:(3:0); CTRL ld:(0:0));
BEHAVIOR q := d WHEN ld = 1; END;
STRUCTURE
PARTS
  IM: im;  A: A;  B: B;
BUS db: (3:0);
CONNECTIONS
  db := A.q WHEN IM.w(1:0) = 1;
  db := B.q WHEN IM.w(1:0) = 2;
  db := IM.w(7:4) WHEN IM.w(1:0) = 3;
  A.d := db;
  A.ld := IM.w(2:2);
  B.d := db;
  B.ld := IM.w(3:3);
END;
)";

TEST(Extraction, BusForksOverAllDrivers) {
  ExtractResult r = extract_from(kBusMachine);
  EXPECT_TRUE(has_template(r.base, "A := B"));
  EXPECT_TRUE(has_template(r.base, "B := A"));
  EXPECT_TRUE(has_template(r.base, "A := #imm.4@4"));
  EXPECT_TRUE(has_template(r.base, "A := A"));  // self-move via the bus
}

TEST(Extraction, BusDriverConditionsAreExclusive) {
  ExtractResult r = extract_from(kBusMachine);
  const bdd::BddManager& mgr = *r.base.mgr;
  for (const rtl::RTTemplate& t : r.base.templates) {
    if (t.signature() == "A := B") {
      // Condition must force the select field to exactly 2.
      auto vars = mgr.support(t.cond);
      EXPECT_FALSE(vars.empty());
      // select=1 (A drives) must contradict the chosen driver.
      bdd::Ref sel1 = r.base.mgr->land(
          r.base.mgr->literal(0, true),
          r.base.mgr->literal(1, false));  // w(1:0) = 1
      EXPECT_EQ(r.base.mgr->land(t.cond, sel1), bdd::kFalse);
      return;
    }
  }
  FAIL() << "template not found";
}

TEST(Extraction, DuplicateTransfersMerged) {
  ExtractResult r = extract_from(kBusMachine);
  auto sigs = signatures(r.base);
  std::sort(sigs.begin(), sigs.end());
  // Identical (signature, condition) pairs must not appear twice.
  EXPECT_EQ(std::adjacent_find(sigs.begin(), sigs.end()), sigs.end())
      << "bases may contain equal signatures only under different "
         "conditions";
}

TEST(Extraction, StatsAreConsistent) {
  ExtractResult r = extract_from(kAccMachine);
  EXPECT_GT(r.stats.destinations, 0u);
  EXPECT_GE(r.stats.raw_routes, r.base.templates.size());
}

// --- regression: nonzero-lsb immediate-field slices (PR-2 fix) --------------

// A stripped bass_boost shape: the coefficient-ROM address comes straight off
// a mid-word instruction slice IW.w(10:6). Route enumeration used to apply
// driver slices twice here, reading past the field's bits and emitting
// templates whose immediates referenced garbage instruction-word positions.
constexpr const char* kMidSliceMachine = R"(
PROCESSOR midslice;
CONTROLLER iw (OUT w:(11:0));
REGISTER A (IN d:(7:0); OUT q:(7:0); CTRL ld:(0:0));
BEHAVIOR q := d WHEN ld = 1; END;
MEMORY rom (IN addr:(4:0); OUT dout:(7:0)) SIZE 32;
BEHAVIOR dout := CELL[addr]; END;
MODULE alu (IN a:(7:0); IN b:(7:0); OUT y:(7:0); CTRL f:(0:0));
BEHAVIOR
  y := a + b WHEN f = 0;
  y := b     WHEN f = 1;
END;
STRUCTURE
PARTS
  IW: iw;  A: A;  rom: rom;  ALU: alu;
CONNECTIONS
  rom.addr := IW.w(10:6);
  ALU.a := A.q;
  ALU.b := rom.dout;
  ALU.f := IW.w(11:11);
  A.d  := ALU.y;
  A.ld := IW.w(0:0);
END;
)";

void expect_imm_bits_in_range(const rtl::RTNode& n, int lo, int hi,
                              const std::string& sig) {
  if (n.kind == rtl::RTNode::Kind::Imm) {
    EXPECT_EQ(n.imm_bits.size(), static_cast<std::size_t>(hi - lo + 1))
        << sig;
    for (std::size_t j = 0; j < n.imm_bits.size(); ++j) {
      EXPECT_GE(n.imm_bits[j], lo) << sig;
      EXPECT_LE(n.imm_bits[j], hi) << sig;
      if (j > 0) {  // lsb-first field order
        EXPECT_EQ(n.imm_bits[j], n.imm_bits[j - 1] + 1) << sig;
      }
    }
  }
  for (const rtl::RTNodePtr& c : n.children)
    expect_imm_bits_in_range(*c, lo, hi, sig);
}

TEST(Extraction, NonzeroLsbImmediateFieldStaysInBounds) {
  ExtractResult r = extract_from(kMidSliceMachine);
  ASSERT_GT(r.base.templates.size(), 0u);
  EXPECT_EQ(r.base.instruction_width, 12);
  bool saw_imm = false;
  for (const rtl::RTTemplate& t : r.base.templates) {
    // Every immediate field in this machine is the rom address IW.w(10:6):
    // exactly 5 consecutive bits inside the word, never positions >= 12.
    std::string sig = t.signature();
    expect_imm_bits_in_range(*t.value, 6, 10, sig);
    if (t.addr) expect_imm_bits_in_range(*t.addr, 6, 10, sig);
    if (sig.find("#imm") != std::string::npos) saw_imm = true;
  }
  EXPECT_TRUE(saw_imm) << "no immediate templates extracted — the mid-word "
                          "address slice path was not exercised";
  // The direct-addressed ROM routes must exist with the field anchored at
  // bit 6 ("@6" in the canonical form): the accumulate and the plain load.
  EXPECT_TRUE(has_template(r.base, "A := +.8(A,rom[#imm.5@6])"))
      << "missing the accumulate route";
  EXPECT_TRUE(has_template(r.base, "A := rom[#imm.5@6]"))
      << "missing the load route";
}

}  // namespace
}  // namespace record::ise
