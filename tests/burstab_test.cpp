// Differential validation of the table-driven BURS engine: on every grammar
// and subject tree, burstab::TableParser must produce the exact LabelResult
// (costs AND winning rules) of the dynamic-programming treeparse::TreeParser,
// hence identical optimal derivations and RT sequences.
#include <gtest/gtest.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "burstab/cache.h"
#include "burstab/serialize.h"
#include "burstab/tableparse.h"
#include "burstab/tables.h"
#include "core/compiler.h"
#include "core/record.h"
#include "ir/builder.h"
#include "models/models.h"
#include "obs/metrics.h"
#include "select/selector.h"
#include "treeparse/burs.h"
#include "util/failpoint.h"

namespace record::burstab {
namespace {

using grammar::kStart;
using grammar::NtId;
using grammar::pat_const_leaf;
using grammar::pat_imm;
using grammar::pat_nonterm;
using grammar::pat_term;
using grammar::PatNode;
using grammar::PatNodePtr;
using grammar::RuleKind;
using grammar::TermId;
using grammar::TreeGrammar;
using treeparse::Derivation;
using treeparse::LabelResult;
using treeparse::SubjectNode;
using treeparse::SubjectTree;
using treeparse::TreeParser;

// --- differential harness ---------------------------------------------------

std::string derivation_string(const Derivation& d) {
  std::string s = "r" + std::to_string(d.rule);
  for (const treeparse::ImmBinding& b : d.imms)
    s += "#" + std::to_string(b.value);
  s += "(";
  for (const Derivation* c : d.children) s += derivation_string(*c) + ",";
  s += ")";
  return s;
}

/// Full equivalence check of both engines on one tree. Returns whether the
/// tree parses (for corpus-coverage assertions).
bool expect_engines_agree(const TreeGrammar& g, const TargetTables& tables,
                          const SubjectTree& tree, const char* what) {
  TreeParser interp(g);
  TableParser tabular(g, tables);
  LabelResult a = interp.label(tree);
  LabelResult b = tabular.label(tree);
  EXPECT_EQ(a.ok, b.ok) << what << ": " << tree.to_string(g);
  EXPECT_EQ(a.root_cost, b.root_cost) << what << ": " << tree.to_string(g);
  EXPECT_EQ(a.flat.size(), b.flat.size());
  if (a.flat.size() != b.flat.size()) return false;
  for (std::size_t id = 0; id < a.node_count(); ++id) {
    for (std::size_t nt = 0; nt < static_cast<std::size_t>(a.nt_count);
         ++nt) {
      EXPECT_EQ(a.at(id, nt).cost, b.at(id, nt).cost)
          << what << ": node " << id << " nt " << nt << " of "
          << tree.to_string(g);
      EXPECT_EQ(a.at(id, nt).rule, b.at(id, nt).rule)
          << what << ": node " << id << " nt " << nt << " of "
          << tree.to_string(g);
    }
  }
  if (a.ok && b.ok) {
    treeparse::DerivationArena arena;
    Derivation* da = interp.reduce(tree, a, arena);
    Derivation* db = tabular.reduce(tree, b, arena);
    EXPECT_NE(da, nullptr);
    EXPECT_NE(db, nullptr);
    if (da && db)
      EXPECT_EQ(derivation_string(*da), derivation_string(*db))
          << what << ": " << tree.to_string(g);
  }
  return a.ok;
}

/// Random subject trees over the grammar's terminal alphabet: adversarial
/// input, mostly unparseable — both engines must still agree everywhere.
class RandomTreeGen {
 public:
  RandomTreeGen(const TreeGrammar& g, std::uint32_t seed)
      : g_(g), rng_(seed) {
    for (const grammar::Rule& r : g.rules()) collect(*r.pattern);
    for (auto& [t, arities] : arity_of_) {
      (void)t;
      (void)arities;
    }
    if (const_values_.empty()) const_values_ = {0, 1};
    const_values_.push_back(3);
    const_values_.push_back(-5);
    const_values_.push_back(1 << 20);  // fits few immediate fields
  }

  SubjectTree make_tree(int max_depth) {
    SubjectTree t;
    t.set_root(subtree(t, max_depth));
    return t;
  }

  /// ASSIGN($dest, value) shaped like real selection subjects.
  SubjectTree make_assign(int max_depth) {
    SubjectTree t;
    SubjectNode* value = subtree(t, max_depth);
    SubjectNode* dest =
        dest_terms_.empty()
            ? t.make(random_term())
            : t.make(dest_terms_[rng_() % dest_terms_.size()]);
    t.set_root(t.make(g_.assign_terminal(), {dest, value}));
    return t;
  }

 private:
  void collect(const PatNode& p) {
    switch (p.kind) {
      case PatNode::Kind::Term: {
        auto& arities = arity_of_[p.term];
        int k = static_cast<int>(p.children.size());
        if (std::find(arities.begin(), arities.end(), k) == arities.end())
          arities.push_back(k);
        if (g_.terminal_name(p.term).rfind("$dest:", 0) == 0)
          if (std::find(dest_terms_.begin(), dest_terms_.end(), p.term) ==
              dest_terms_.end())
            dest_terms_.push_back(p.term);
        for (const PatNodePtr& c : p.children) collect(*c);
        terms_.push_back(p.term);
        return;
      }
      case PatNode::Kind::Imm:
        const_values_.push_back((std::int64_t{1} << (p.width - 1)) - 1);
        const_values_.push_back(std::int64_t{1} << p.width);  // just too big
        return;
      case PatNode::Kind::Const:
        const_values_.push_back(p.value);
        return;
      case PatNode::Kind::NonTerm:
        return;
    }
  }

  TermId random_term() { return terms_[rng_() % terms_.size()]; }

  SubjectNode* subtree(SubjectTree& t, int depth) {
    if (depth <= 0 || rng_() % 4 == 0)
      return t.make_const(g_.const_terminal(),
                          const_values_[rng_() % const_values_.size()]);
    TermId term = random_term();
    const std::vector<int>& arities = arity_of_[term];
    int k = arities[rng_() % arities.size()];
    if (k == 0) return t.make(term);
    std::vector<SubjectNode*> kids;
    kids.reserve(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) kids.push_back(subtree(t, depth - 1));
    return t.make(term, kids);
  }

  const TreeGrammar& g_;
  std::mt19937 rng_;
  std::unordered_map<TermId, std::vector<int>> arity_of_;
  std::vector<TermId> terms_;
  std::vector<TermId> dest_terms_;
  std::vector<std::int64_t> const_values_;
};

// --- fixture grammars -------------------------------------------------------

/// The treeparse_test fixture grammar (constraint-free).
struct PlainFixture {
  TreeGrammar g;
  TermId t_dest_a, t_reg_a, t_reg_b, t_plus, t_load;
  NtId nt_a, nt_b;

  PlainFixture() {
    nt_a = g.intern_nonterminal("nt:A");
    nt_b = g.intern_nonterminal("nt:B");
    t_dest_a = g.intern_terminal("$dest:A");
    t_reg_a = g.intern_terminal("$reg:A");
    t_reg_b = g.intern_terminal("$reg:B");
    t_plus = g.intern_terminal("plus");
    t_load = g.intern_terminal("load");
    {
      std::vector<PatNodePtr> kids;
      kids.push_back(pat_term(t_dest_a, {}));
      kids.push_back(pat_nonterm(nt_a));
      g.add_rule(kStart, pat_term(g.assign_terminal(), std::move(kids)), 0,
                 RuleKind::Start);
    }
    {
      std::vector<PatNodePtr> kids;
      kids.push_back(pat_nonterm(nt_a));
      kids.push_back(pat_nonterm(nt_b));
      g.add_rule(nt_a, pat_term(t_plus, std::move(kids)), 1, RuleKind::RT, 0);
    }
    {
      // Multi-level pattern: plus(nt:A, load(#imm4)) — exercises interior
      // subpattern states.
      std::vector<PatNodePtr> inner;
      inner.push_back(pat_imm({0, 1, 2, 3}));
      std::vector<PatNodePtr> kids;
      kids.push_back(pat_nonterm(nt_a));
      kids.push_back(pat_term(t_load, std::move(inner)));
      g.add_rule(nt_a, pat_term(t_plus, std::move(kids)), 1, RuleKind::RT, 4);
    }
    {
      std::vector<PatNodePtr> kids;
      kids.push_back(pat_nonterm(nt_b));
      g.add_rule(nt_a, pat_term(t_load, std::move(kids)), 1, RuleKind::RT, 1);
    }
    g.add_rule(nt_a, pat_term(t_reg_a, {}), 0, RuleKind::Stop);
    g.add_rule(nt_b, pat_imm({0, 1, 2, 3}), 1, RuleKind::RT, 2);
    g.add_rule(nt_b, pat_nonterm(nt_a), 1, RuleKind::RT, 3);
    g.add_rule(nt_b, pat_const_leaf(0), 0, RuleKind::RT, 5);  // clear
    g.add_rule(nt_b, pat_term(t_reg_b, {}), 0, RuleKind::Stop);
  }
};

/// Adds side-constrained rules: an x+x shifter pattern (structural equality
/// of both operands) and a paired-immediate operator (both draw field 0-3).
struct ConstrainedFixture : PlainFixture {
  TermId t_shl, t_addi;

  ConstrainedFixture() {
    t_shl = g.intern_terminal("shl");
    t_addi = g.intern_terminal("addi");
    {
      // nt:A -> shl(nt:A, nt:A): both leaves must bind the same subtree.
      std::vector<PatNodePtr> kids;
      kids.push_back(pat_nonterm(nt_a));
      kids.push_back(pat_nonterm(nt_a));
      g.add_rule(nt_a, pat_term(t_shl, std::move(kids)), 1, RuleKind::RT, 6);
    }
    {
      // nt:A -> addi(#imm4, #imm4) with one shared field: matches only when
      // both constants are equal.
      std::vector<PatNodePtr> kids;
      kids.push_back(pat_imm({0, 1, 2, 3}));
      kids.push_back(pat_imm({0, 1, 2, 3}));
      g.add_rule(nt_a, pat_term(t_addi, std::move(kids)), 1, RuleKind::RT, 7);
    }
    {
      // Unconstrained sibling on the same (constrained) operator: fallback
      // nodes must still consider table rules in original order.
      std::vector<PatNodePtr> kids;
      kids.push_back(pat_nonterm(nt_a));
      kids.push_back(pat_nonterm(nt_b));
      g.add_rule(nt_a, pat_term(t_shl, std::move(kids)), 2, RuleKind::RT, 8);
    }
  }
};

TEST(BurstabDifferential, PlainFixtureRandomTrees) {
  PlainFixture f;
  TargetTables tables(f.g);
  RandomTreeGen gen(f.g, 1234);
  int parsed = 0;
  for (int i = 0; i < 300; ++i) {
    SubjectTree t = gen.make_assign(1 + i % 5);
    if (expect_engines_agree(f.g, tables, t, "plain/assign")) ++parsed;
  }
  for (int i = 0; i < 200; ++i) {
    SubjectTree t = gen.make_tree(1 + i % 4);
    expect_engines_agree(f.g, tables, t, "plain/random");
  }
  EXPECT_GT(parsed, 20) << "corpus too weak to exercise the tables";
}

TEST(BurstabDifferential, ConstrainedFixtureRandomTrees) {
  ConstrainedFixture f;
  TargetTables tables(f.g);
  EXPECT_TRUE(tables.terminal_has_constrained(f.t_shl));
  EXPECT_TRUE(tables.terminal_has_constrained(f.t_addi));
  EXPECT_FALSE(tables.terminal_has_constrained(f.t_plus));
  RandomTreeGen gen(f.g, 99);
  int parsed = 0;
  for (int i = 0; i < 400; ++i) {
    SubjectTree t = gen.make_assign(1 + i % 5);
    if (expect_engines_agree(f.g, tables, t, "constrained/assign")) ++parsed;
  }
  EXPECT_GT(parsed, 20);
}

TEST(BurstabDifferential, SharedImmediateFieldSemantics) {
  ConstrainedFixture f;
  TargetTables tables(f.g);
  // addi(5, 5) parses (same constant in the shared field), addi(5, 6) must
  // not match the paired-immediate rule.
  for (auto [v1, v2] : {std::pair<int, int>{5, 5}, {5, 6}}) {
    SubjectTree t;
    SubjectNode* dest = t.make(f.t_dest_a);
    SubjectNode* a = t.make_const(f.g.const_terminal(), v1);
    SubjectNode* b = t.make_const(f.g.const_terminal(), v2);
    SubjectNode* addi = t.make(f.t_addi, {a, b});
    t.set_root(t.make(f.g.assign_terminal(), {dest, addi}));
    expect_engines_agree(f.g, tables, t, "addi");
  }
}

TEST(BurstabDifferential, StructuralEqualityBinding) {
  ConstrainedFixture f;
  TargetTables tables(f.g);
  // shl(reg_a, reg_a) binds; shl over differing subtrees must use the
  // more expensive unconstrained sibling rule. Both engines agree either
  // way; check the parse is exercised.
  SubjectTree t;
  SubjectNode* dest = t.make(f.t_dest_a);
  SubjectNode* l = t.make(f.t_reg_a);
  SubjectNode* r = t.make(f.t_reg_a);
  SubjectNode* shl = t.make(f.t_shl, {l, r});
  t.set_root(t.make(f.g.assign_terminal(), {dest, shl}));
  EXPECT_TRUE(expect_engines_agree(f.g, tables, t, "shl-xx"));
  TreeParser interp(f.g);
  LabelResult lr = interp.label(t);
  ASSERT_TRUE(lr.ok);
  EXPECT_EQ(lr.root_cost, 1);  // x+x rule, not the cost-2 sibling
}

TEST(BurstabDifferential, DynamicOnlyTablesMatchPrecomputed) {
  PlainFixture f;
  TableBuildOptions lazy;
  lazy.precompute = false;
  TargetTables eager(f.g);
  TargetTables dynamic(f.g, lazy);
  RandomTreeGen gen(f.g, 7);
  for (int i = 0; i < 100; ++i) {
    SubjectTree t = gen.make_assign(1 + i % 4);
    TableParser pe(f.g, eager);
    TableParser pd(f.g, dynamic);
    LabelResult a = pe.label(t);
    LabelResult b = pd.label(t);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.root_cost, b.root_cost);
  }
  EXPECT_GT(eager.stats().states, 0u);
  EXPECT_GT(dynamic.stats().states, 0u);
}

// --- built-in models --------------------------------------------------------

class BurstabModel : public ::testing::TestWithParam<const char*> {};

TEST_P(BurstabModel, DifferentialCorpus) {
  util::DiagnosticSink diags;
  core::RetargetOptions options;
  auto target = core::Record::retarget_model(GetParam(), options, diags);
  ASSERT_TRUE(target) << diags.str();
  ASSERT_NE(target->tables, nullptr);

  RandomTreeGen gen(target->tree_grammar, 4242);
  int parsed = 0;
  for (int i = 0; i < 120; ++i) {
    SubjectTree t = gen.make_assign(1 + i % 4);
    if (expect_engines_agree(target->tree_grammar, *target->tables, t,
                             GetParam()))
      ++parsed;
  }
  for (int i = 0; i < 60; ++i) {
    SubjectTree t = gen.make_tree(1 + i % 3);
    expect_engines_agree(target->tree_grammar, *target->tables, t,
                         GetParam());
  }
  EXPECT_GT(parsed, 0) << "no tree of the corpus parses on " << GetParam();
}

TEST_P(BurstabModel, SelectionListingsIdentical) {
  util::DiagnosticSink diags;
  auto target =
      core::Record::retarget_model(GetParam(), core::RetargetOptions{}, diags);
  ASSERT_TRUE(target) << diags.str();

  // The bench_selection_throughput accumulator shapes, per model
  // (mem2 non-empty: multiply-accumulate terms, the DSP-style covers).
  struct Shape {
    const char* model;
    const char* acc;
    const char* mem1;
    const char* mem2;
  };
  constexpr Shape kShapes[] = {
      {"demo", "R0", "mem", ""},       {"ref", "R0", "dmem", ""},
      {"manocpu", "AC", "mem", ""},    {"tanenbaum", "AC", "mem", ""},
      {"bass_boost", "A", "sram", "crom"},
      {"tms320c25", "ACC", "ram", "ram"},
  };
  const Shape* shape = nullptr;
  for (const Shape& s : kShapes)
    if (std::string_view(s.model) == GetParam()) shape = &s;
  ASSERT_NE(shape, nullptr);

  ir::ProgramBuilder b(std::string(GetParam()) + "_diff");
  b.reg("acc", shape->acc);
  ir::ExprPtr sum;
  for (int i = 0; i < 6; ++i) {
    ir::ExprPtr term;
    if (shape->mem2[0] == '\0') {
      std::string v = "m" + std::to_string(i);
      b.cell(v, shape->mem1, i % 8);
      term = ir::e_var(v);
    } else {
      std::string u = "u" + std::to_string(i), v = "v" + std::to_string(i);
      b.cell(u, shape->mem1, i % 8);
      b.cell(v, shape->mem2, (i + 1) % 8);
      term = ir::e_mul(ir::e_var(u), ir::e_var(v));
    }
    sum = sum ? ir::e_add(std::move(sum), std::move(term))
              : std::move(term);
  }
  b.let("acc", std::move(sum));
  ir::Program prog = b.take();

  // Three engines side by side: the interpreter, the frozen (compressed,
  // lock-free) tables the retarget ships by default, and a hash-mode build
  // of the same tables (freeze disabled) — all listings bit-identical.
  ASSERT_GE(target->tables->stats().freezes, 1u);
  TableBuildOptions hash_mode;
  hash_mode.freeze = false;
  TargetTables hash_tables(target->tree_grammar, hash_mode);
  EXPECT_EQ(hash_tables.stats().freezes, 0u);

  util::DiagnosticSink d1, d2, d3;
  select::CodeSelector interp(*target->base, target->tree_grammar, d1);
  select::CodeSelector tabular(*target->base, target->tree_grammar, d2,
                               target->tables.get());
  select::CodeSelector hashed(*target->base, target->tree_grammar, d3,
                              &hash_tables);
  EXPECT_EQ(interp.engine(), select::Engine::kInterpreter);
  EXPECT_EQ(tabular.engine(), select::Engine::kTables);
  auto ra = interp.select(prog);
  auto rb = tabular.select(prog);
  auto rc = hashed.select(prog);
  ASSERT_TRUE(ra) << d1.str();
  ASSERT_TRUE(rb) << d2.str();
  ASSERT_TRUE(rc) << d3.str();
  EXPECT_EQ(ra->total_rts, rb->total_rts);
  EXPECT_EQ(ra->listing(), rb->listing());
  EXPECT_EQ(ra->listing(), rc->listing());
}

TEST_P(BurstabModel, FrozenAndHashModesAgreeOnRandomTrees) {
  util::DiagnosticSink diags;
  auto target =
      core::Record::retarget_model(GetParam(), core::RetargetOptions{}, diags);
  ASSERT_TRUE(target) << diags.str();
  ASSERT_NE(target->tables, nullptr);
  ASSERT_GE(target->tables->stats().freezes, 1u);
  TableBuildOptions hash_mode;
  hash_mode.freeze = false;
  TargetTables hash_tables(target->tree_grammar, hash_mode);

  RandomTreeGen gen(target->tree_grammar, 20260726);
  for (int i = 0; i < 60; ++i) {
    SubjectTree t = gen.make_assign(1 + i % 4);
    // Both table modes against the interpreter on the same tree.
    expect_engines_agree(target->tree_grammar, *target->tables, t, "frozen");
    expect_engines_agree(target->tree_grammar, hash_tables, t, "hash");
  }
}

INSTANTIATE_TEST_SUITE_P(Models, BurstabModel,
                         ::testing::Values("demo", "ref", "manocpu",
                                           "tanenbaum", "bass_boost",
                                           "tms320c25"));

// --- serialization and cache ------------------------------------------------

TEST(BurstabSerialize, GrammarRoundTrip) {
  ConstrainedFixture f;
  ByteWriter w;
  write_grammar(w, f.g);
  ByteReader r(w.bytes());
  TreeGrammar g2;
  ASSERT_TRUE(read_grammar(r, g2));
  EXPECT_EQ(grammar_fingerprint(f.g), grammar_fingerprint(g2));
  EXPECT_EQ(g2.rules().size(), f.g.rules().size());
  EXPECT_EQ(g2.terminal_count(), f.g.terminal_count());
  for (std::size_t i = 0; i < f.g.rules().size(); ++i)
    EXPECT_EQ(grammar::pattern_to_string(g2, *g2.rules()[i].pattern),
              grammar::pattern_to_string(f.g, *f.g.rules()[i].pattern));
}

TEST(BurstabSerialize, TemplateBaseRoundTrip) {
  util::DiagnosticSink diags;
  core::RetargetOptions options;
  options.build_tables = false;
  auto target = core::Record::retarget_model("manocpu", options, diags);
  ASSERT_TRUE(target) << diags.str();

  ByteWriter w;
  write_template_base(w, *target->base);
  ByteReader r(w.bytes());
  rtl::TemplateBase base2;
  ASSERT_TRUE(read_template_base(r, base2));
  ASSERT_EQ(base2.templates.size(), target->base->templates.size());
  for (std::size_t i = 0; i < base2.templates.size(); ++i) {
    const rtl::RTTemplate& a = target->base->templates[i];
    const rtl::RTTemplate& b = base2.templates[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.signature(), b.signature());
    EXPECT_EQ(a.pretty(*target->base->mgr), b.pretty(*base2.mgr)) << i;
  }
  EXPECT_EQ(base2.instruction_width, target->base->instruction_width);
  EXPECT_EQ(base2.storage.size(), target->base->storage.size());
}

TEST(BurstabSerialize, TablesRoundTrip) {
  PlainFixture f;
  TargetTables tables(f.g);
  // Warm the tables on a corpus, then serialise.
  RandomTreeGen gen(f.g, 5);
  for (int i = 0; i < 50; ++i) {
    SubjectTree t = gen.make_assign(3);
    TableParser p(f.g, tables);
    (void)p.label(t);
  }
  std::string blob;
  tables.serialize(blob);
  std::size_t offset = 0;
  std::unique_ptr<TargetTables> loaded =
      TargetTables::deserialize(f.g, blob, offset);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(offset, blob.size());
  EXPECT_EQ(loaded->stats().states, tables.stats().states);
  // The blob carries a position-independent pool that is adopted as the live
  // snapshot: every transition the writer held lands on the frozen side and
  // the dynamic maps stay empty until a genuine cold miss.
  EXPECT_EQ(loaded->stats().frozen_transitions, tables.stats().transitions);
  EXPECT_EQ(loaded->stats().transitions, 0u);
  // Loaded tables parse identically.
  RandomTreeGen gen2(f.g, 5);
  for (int i = 0; i < 50; ++i) {
    SubjectTree t = gen2.make_assign(3);
    TableParser a(f.g, tables), b(f.g, *loaded);
    LabelResult ra = a.label(t), rb = b.label(t);
    EXPECT_EQ(ra.ok, rb.ok);
    EXPECT_EQ(ra.root_cost, rb.root_cost);
  }
}

TEST(FrozenLookup, TransitionEntryPointServesFrozenAndColdPaths) {
  // The public transition() wrapper (frozen probe, then the memoised cold
  // path) must answer identically in frozen, hash and dynamic modes.
  PlainFixture f;
  TargetTables frozen(f.g);  // eager closure + freeze
  TableBuildOptions dyn;
  dyn.precompute = false;
  dyn.freeze = false;
  TargetTables dynamic(f.g, dyn);
  ASSERT_GE(frozen.stats().freezes, 1u);
  ASSERT_EQ(dynamic.stats().freezes, 0u);

  const std::vector<int> no_children;
  TargetTables::Transition fa = frozen.transition(f.t_reg_a, no_children);
  TargetTables::Transition da = dynamic.transition(f.t_reg_a, no_children);
  EXPECT_EQ(frozen.state(fa.state), dynamic.state(da.state));
  EXPECT_EQ(fa.delta, da.delta);

  int fc = frozen.const_leaf_state(3);
  int dc = dynamic.const_leaf_state(3);
  std::vector<int> fkids{fa.state, fc};
  std::vector<int> dkids{da.state, dc};
  TargetTables::Transition fp = frozen.transition(f.t_plus, fkids);
  TargetTables::Transition dp = dynamic.transition(f.t_plus, dkids);
  EXPECT_EQ(frozen.state(fp.state), dynamic.state(dp.state));
  EXPECT_EQ(fp.delta, dp.delta);
  // Repeat lookups are stable (frozen hit / memoised hit).
  TargetTables::Transition fp2 = frozen.transition(f.t_plus, fkids);
  EXPECT_EQ(fp.state, fp2.state);
  EXPECT_EQ(fp.delta, fp2.delta);
}

TEST(FrozenColdMiss, DynamicFillsDuringFrozenModeStayIdentical) {
  // Freeze with an empty/tiny closure: almost every parse-time combination
  // is a cold miss, must fall back to the memoised path, stay bit-identical
  // to the interpreter, and (past the miss budget) fold into a re-frozen
  // snapshot that subsequent lookups hit.
  PlainFixture f;
  TableBuildOptions tiny;
  tiny.precompute = false;  // snapshot 0 is empty: everything misses
  tiny.freeze = true;
  tiny.refreeze_misses = 8;
  TargetTables tables(f.g, tiny);
  ASSERT_GE(tables.stats().freezes, 1u);
  EXPECT_EQ(tables.stats().frozen_transitions, 0u);

  RandomTreeGen gen(f.g, 77);
  int parsed = 0;
  for (int i = 0; i < 200; ++i) {
    SubjectTree t = gen.make_assign(1 + i % 5);
    if (expect_engines_agree(f.g, tables, t, "cold-miss")) ++parsed;
  }
  EXPECT_GT(parsed, 20);
  TableStats st = tables.stats();
  EXPECT_GT(st.freezes, 1u) << "miss budget never triggered a re-freeze";
  EXPECT_GT(st.frozen_transitions, 0u);
  // The re-frozen snapshot serves the same corpus without growing further:
  // replay the identical trees and expect no new states or transitions.
  std::size_t states_before = st.states, trans_before = st.transitions;
  RandomTreeGen replay(f.g, 77);
  for (int i = 0; i < 200; ++i) {
    SubjectTree t = replay.make_assign(1 + i % 5);
    expect_engines_agree(f.g, tables, t, "cold-miss-replay");
  }
  EXPECT_EQ(tables.stats().states, states_before);
  EXPECT_EQ(tables.stats().transitions, trans_before);
}

TEST(BurstabSerialize, FrozenBlobLandsDirectlyInFrozenMode) {
  PlainFixture f;
  TargetTables tables(f.g);  // eager closure + freeze (defaults)
  RandomTreeGen gen(f.g, 5);
  for (int i = 0; i < 50; ++i) {
    SubjectTree t = gen.make_assign(3);
    TableParser p(f.g, tables);
    (void)p.label(t);
  }
  ASSERT_GE(tables.stats().freezes, 1u);
  std::string blob;
  tables.serialize(blob);
  std::size_t offset = 0;
  std::unique_ptr<TargetTables> loaded =
      TargetTables::deserialize(f.g, blob, offset);
  ASSERT_NE(loaded, nullptr);
  // The deserialized tables adopt the mmap-ready pool as the live snapshot:
  // already frozen (pure-array mode), no compaction ran (freezes counts
  // snapshots *built*, and adoption builds nothing), and the dynamic maps
  // stay empty — nothing was deserialized into hash tables.
  TableStats st = loaded->stats();
  EXPECT_EQ(st.freezes, 0u);
  EXPECT_EQ(st.frozen_states, st.states);
  EXPECT_EQ(st.frozen_transitions, tables.stats().transitions);
  EXPECT_EQ(st.transitions, 0u);

  // A hash-mode blob stays hash-mode after a round trip.
  TableBuildOptions hash_mode;
  hash_mode.freeze = false;
  TargetTables unfrozen(f.g, hash_mode);
  std::string blob2;
  unfrozen.serialize(blob2);
  std::size_t offset2 = 0;
  std::unique_ptr<TargetTables> loaded2 =
      TargetTables::deserialize(f.g, blob2, offset2);
  ASSERT_NE(loaded2, nullptr);
  EXPECT_EQ(loaded2->stats().freezes, 0u);
}

TEST(BurstabSerialize, TablesRejectForeignGrammar) {
  PlainFixture f;
  ConstrainedFixture f2;
  TargetTables tables(f.g);
  std::string blob;
  tables.serialize(blob);
  std::size_t offset = 0;
  EXPECT_EQ(TargetTables::deserialize(f2.g, blob, offset), nullptr);
}

TEST(BurstabCache, WarmLoadServesIdenticalTarget) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "record-cache-test").string();
  std::filesystem::remove_all(dir);

  util::DiagnosticSink diags;
  core::RetargetOptions options;
  options.use_target_cache = true;
  options.cache_dir = dir;
  auto cold = core::Record::retarget_model("manocpu", options, diags);
  ASSERT_TRUE(cold) << diags.str();
  EXPECT_FALSE(cold->cache_hit);

  std::uint64_t zero_copy_before =
      obs::metrics().counter("burstab.tables.map_zero_copy").value();
  std::uint64_t freeze_before = obs::metrics().counter("burstab.freeze").value();
  auto warm = core::Record::retarget_model("manocpu", options, diags);
  ASSERT_TRUE(warm) << diags.str();
  EXPECT_TRUE(warm->cache_hit);
  ASSERT_NE(warm->tables, nullptr);
  // Acceptance signal for the mmap tier: the warm load adopted the pool
  // straight off the mapping (one zero-copy map event, no freeze ran).
  EXPECT_EQ(obs::metrics().counter("burstab.tables.map_zero_copy").value(),
            zero_copy_before + 1);
  EXPECT_EQ(obs::metrics().counter("burstab.freeze").value(), freeze_before);
  // A warm reload lands directly in pure-array (frozen) mode with zero
  // rebuild work: the mmap'ed pool is adopted as-is (freezes == 0 means no
  // re-freeze ran) and the dynamic maps stay empty.
  EXPECT_EQ(warm->tables->stats().freezes, 0u);
  EXPECT_GT(warm->tables->stats().frozen_transitions, 0u);
  EXPECT_EQ(warm->tables->stats().transitions, 0u);
  EXPECT_EQ(warm->processor, cold->processor);
  EXPECT_EQ(warm->base->templates.size(), cold->base->templates.size());
  EXPECT_EQ(grammar_fingerprint(warm->tree_grammar),
            grammar_fingerprint(cold->tree_grammar));
  EXPECT_EQ(warm->grammar_stats.rt_rules, cold->grammar_stats.rt_rules);
  EXPECT_EQ(warm->extract_stats.destinations,
            cold->extract_stats.destinations);

  // Selection through the warm target matches the cold one, both engines.
  ir::ProgramBuilder b("cache_diff");
  b.reg("acc", "AC");
  b.cell("m0", "mem", 0);
  b.cell("m1", "mem", 1);
  b.let("acc", ir::e_add(ir::e_var("m0"), ir::e_var("m1")));
  ir::Program prog = b.take();
  for (const core::RetargetResult* t : {&*cold, &*warm}) {
    util::DiagnosticSink d;
    select::CodeSelector sel(*t->base, t->tree_grammar, d,
                             t->tables.get());
    auto res = sel.select(prog);
    ASSERT_TRUE(res) << d.str();
  }
  util::DiagnosticSink dc, dw;
  select::CodeSelector sc(*cold->base, cold->tree_grammar, dc,
                          cold->tables.get());
  select::CodeSelector sw(*warm->base, warm->tree_grammar, dw,
                          warm->tables.get());
  EXPECT_EQ(sc.select(prog)->listing(), sw.select(prog)->listing());

  // Options that shape the artifacts key separately.
  core::RetargetOptions other = options;
  other.commutativity = false;
  auto different = core::Record::retarget_model("manocpu", other, diags);
  ASSERT_TRUE(different);
  EXPECT_FALSE(different->cache_hit);

  std::filesystem::remove_all(dir);
}

TEST(BurstabCache, CorruptBlobFallsBackToCleanRebuild) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "record-cache-corrupt")
          .string();
  std::filesystem::remove_all(dir);

  util::DiagnosticSink diags;
  core::RetargetOptions options;
  options.use_target_cache = true;
  options.cache_dir = dir;
  auto cold = core::Record::retarget_model("manocpu", options, diags);
  ASSERT_TRUE(cold) << diags.str();
  std::uint64_t key = TargetCache::key_of(
      models::model_source("manocpu"), core::options_digest(options));
  std::string path = TargetCache(dir).entry_path(key);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string blob = std::move(buf).str();
  in.close();

  auto write_blob = [&](const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  auto expect_rebuilds = [&](const char* what) {
    // The corrupt entry must be treated as a miss: load() fails, the
    // pipeline rebuilds, and the result matches the original — no crash,
    // no garbage artifacts.
    EXPECT_FALSE(TargetCache(dir).load(key)) << what;
    util::DiagnosticSink d;
    auto rebuilt = core::Record::retarget_model("manocpu", options, d);
    ASSERT_TRUE(rebuilt) << what << ": " << d.str();
    EXPECT_FALSE(rebuilt->cache_hit) << what;
    EXPECT_EQ(rebuilt->base->templates.size(),
              cold->base->templates.size()) << what;
    EXPECT_EQ(grammar_fingerprint(rebuilt->tree_grammar),
              grammar_fingerprint(cold->tree_grammar)) << what;
  };

  // Truncations at several depths, including inside the tables section.
  for (std::size_t keep : {std::size_t{0}, std::size_t{10}, blob.size() / 4,
                           blob.size() / 2, blob.size() - 1}) {
    write_blob(blob.substr(0, keep));
    expect_rebuilds("truncated blob");
  }
  // Single bit flips sprinkled through header and payload.
  for (std::size_t pos : {std::size_t{1}, std::size_t{17}, blob.size() / 3,
                          blob.size() / 2, blob.size() - 2}) {
    std::string flipped = blob;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x20);
    write_blob(flipped);
    expect_rebuilds("bit-flipped blob");
  }

  // And after the rebuild re-stored a clean entry, the warm path works.
  write_blob(blob);
  auto warm = core::Record::retarget_model("manocpu", options, diags);
  ASSERT_TRUE(warm);
  EXPECT_TRUE(warm->cache_hit);

  std::filesystem::remove_all(dir);
}

// Shared by the degradation-tier tests: a tiny program whose listing must
// stay bit-identical across every fallback path.
ir::Program degradation_probe() {
  ir::ProgramBuilder b("degrade");
  b.reg("acc", "AC");
  b.cell("m0", "mem", 0);
  b.cell("m1", "mem", 1);
  b.let("acc", ir::e_add(ir::e_var("m0"), ir::e_var("m1")));
  return b.take();
}

std::string listing_of(const core::RetargetResult& t, const ir::Program& p,
                       const TargetTables* tables) {
  util::DiagnosticSink d;
  select::CodeSelector sel(*t.base, t.tree_grammar, d, tables);
  auto res = sel.select(p);
  EXPECT_TRUE(res) << d.str();
  return res ? res->listing() : std::string();
}

TEST(BurstabCache, MmapTierFailureFallsBackToBufferedRead) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "record-cache-mmapfail")
          .string();
  std::filesystem::remove_all(dir);
  util::failpoint_disarm_all();

  util::DiagnosticSink diags;
  core::RetargetOptions options;
  options.use_target_cache = true;
  options.cache_dir = dir;
  auto cold = core::Record::retarget_model("manocpu", options, diags);
  ASSERT_TRUE(cold) << diags.str();

  // Tier 1 (mmap) fails once; tier 2 buffers the whole file and the entry
  // still serves as a warm hit, bit-identical to the cold result.
  const std::uint64_t buffered_before =
      obs::metrics().counter("burstab.cache.fallback.buffered_read").value();
  ASSERT_TRUE(util::failpoint_arm("burstab.cache.mmap", "once"));
  auto warm = core::Record::retarget_model("manocpu", options, diags);
  util::failpoint_disarm_all();
  ASSERT_TRUE(warm) << diags.str();
  EXPECT_TRUE(warm->cache_hit);
  EXPECT_EQ(
      obs::metrics().counter("burstab.cache.fallback.buffered_read").value(),
      buffered_before + 1);
  ASSERT_TRUE(warm->tables);
  const ir::Program prog = degradation_probe();
  EXPECT_EQ(listing_of(*warm, prog, warm->tables.get()),
            listing_of(*cold, prog, cold->tables.get()));

  std::filesystem::remove_all(dir);
}

TEST(BurstabCache, LostTablesSectionRebuildsTablesBitIdentically) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "record-cache-losttab")
          .string();
  std::filesystem::remove_all(dir);
  util::failpoint_disarm_all();

  util::DiagnosticSink diags;
  core::RetargetOptions options;
  options.use_target_cache = true;
  options.cache_dir = dir;
  auto cold = core::Record::retarget_model("manocpu", options, diags);
  ASSERT_TRUE(cold) << diags.str();
  const ir::Program prog = degradation_probe();
  const std::string reference = listing_of(*cold, prog, cold->tables.get());

  // Tier: the tables section fails to adopt, but base + grammar survived the
  // checksum, so the hit is salvaged and tables are rebuilt from the grammar.
  const std::uint64_t lost_before =
      obs::metrics().counter("burstab.cache.tables_lost").value();
  const std::uint64_t rebuilt_before =
      obs::metrics().counter("burstab.fallback.tables_rebuilt").value();
  ASSERT_TRUE(util::failpoint_arm("burstab.pool.adopt", "once"));
  auto rebuilt = core::Record::retarget_model("manocpu", options, diags);
  util::failpoint_disarm_all();
  ASSERT_TRUE(rebuilt) << diags.str();
  EXPECT_TRUE(rebuilt->cache_hit);
  ASSERT_TRUE(rebuilt->tables);  // rebuilt from the cached grammar
  EXPECT_EQ(obs::metrics().counter("burstab.cache.tables_lost").value(),
            lost_before + 1);
  EXPECT_EQ(obs::metrics().counter("burstab.fallback.tables_rebuilt").value(),
            rebuilt_before + 1);
  EXPECT_EQ(listing_of(*rebuilt, prog, rebuilt->tables.get()), reference);

  // Final tier: the rebuild is suppressed too; the hit still serves with
  // null tables and selection falls back to the interpreter engine.
  const std::uint64_t interp_before =
      obs::metrics().counter("burstab.fallback.interpreter").value();
  ASSERT_TRUE(util::failpoint_arm("burstab.pool.adopt", "once"));
  ASSERT_TRUE(util::failpoint_arm("burstab.tables.rebuild", "once"));
  auto interp = core::Record::retarget_model("manocpu", options, diags);
  util::failpoint_disarm_all();
  ASSERT_TRUE(interp) << diags.str();
  EXPECT_TRUE(interp->cache_hit);
  EXPECT_FALSE(interp->tables);
  EXPECT_EQ(obs::metrics().counter("burstab.fallback.interpreter").value(),
            interp_before + 1);
  EXPECT_EQ(listing_of(*interp, prog, nullptr), reference);

  std::filesystem::remove_all(dir);
}

TEST(BurstabCache, TransientOpenErrorsRetryWithBackoff) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "record-cache-eintr")
          .string();
  std::filesystem::remove_all(dir);
  util::failpoint_disarm_all();

  util::DiagnosticSink diags;
  core::RetargetOptions options;
  options.use_target_cache = true;
  options.cache_dir = dir;
  auto cold = core::Record::retarget_model("manocpu", options, diags);
  ASSERT_TRUE(cold) << diags.str();
  std::uint64_t key = TargetCache::key_of(
      models::model_source("manocpu"), core::options_digest(options));

  // One transient open failure: the retry loop absorbs it and the load
  // still succeeds.
  const std::uint64_t retry_before =
      obs::metrics().counter("burstab.cache.transient_retry").value();
  ASSERT_TRUE(util::failpoint_arm("burstab.cache.open", "once"));
  EXPECT_TRUE(TargetCache(dir).load(key).has_value());
  util::failpoint_disarm_all();
  EXPECT_GE(obs::metrics().counter("burstab.cache.transient_retry").value(),
            retry_before + 1);

  // A persistently failing open exhausts the retries: the load reads as a
  // miss and the pipeline rebuilds cleanly.
  ASSERT_TRUE(util::failpoint_arm("burstab.cache.open", "every:1"));
  EXPECT_FALSE(TargetCache(dir).load(key).has_value());
  util::DiagnosticSink d2;
  auto rebuilt = core::Record::retarget_model("manocpu", options, d2);
  util::failpoint_disarm_all();
  ASSERT_TRUE(rebuilt) << d2.str();
  EXPECT_FALSE(rebuilt->cache_hit);
  EXPECT_EQ(grammar_fingerprint(rebuilt->tree_grammar),
            grammar_fingerprint(cold->tree_grammar));

  std::filesystem::remove_all(dir);
}

TEST(BurstabCache, CorruptedPoolBlobCompilesBitIdenticallyViaFallback) {
  // The frozen-pool blob is damaged mid-file — a truncation landing inside
  // the tables section, then a bit flip deep in the pool bytes — and the
  // target must still compile bit-identically to the pristine run, with the
  // rejection observable on the cache counters.
  std::string dir =
      (std::filesystem::temp_directory_path() / "record-cache-poolcorrupt")
          .string();
  std::filesystem::remove_all(dir);
  util::failpoint_disarm_all();

  util::DiagnosticSink diags;
  core::RetargetOptions options;
  options.use_target_cache = true;
  options.cache_dir = dir;
  auto cold = core::Record::retarget_model("manocpu", options, diags);
  ASSERT_TRUE(cold) << diags.str();
  const ir::Program prog = degradation_probe();
  const std::string reference = listing_of(*cold, prog, cold->tables.get());

  std::uint64_t key = TargetCache::key_of(
      models::model_source("manocpu"), core::options_digest(options));
  std::string path = TargetCache(dir).entry_path(key);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string blob = std::move(buf).str();
  in.close();
  auto write_blob = [&](const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };

  for (int variant = 0; variant < 2; ++variant) {
    if (variant == 0) {
      write_blob(blob.substr(0, blob.size() * 7 / 10));  // truncate at ~70%
    } else {
      std::string flipped = blob;
      flipped[blob.size() * 8 / 10] ^= 0x08;  // single bit flip at ~80%
      write_blob(flipped);
    }
    const std::uint64_t rejected_before =
        obs::metrics().counter("burstab.cache.rejected").value();
    util::DiagnosticSink d;
    auto recovered = core::Record::retarget_model("manocpu", options, d);
    ASSERT_TRUE(recovered) << d.str();
    EXPECT_FALSE(recovered->cache_hit);
    EXPECT_EQ(obs::metrics().counter("burstab.cache.rejected").value(),
              rejected_before + 1);
    ASSERT_TRUE(recovered->tables);
    EXPECT_EQ(listing_of(*recovered, prog, recovered->tables.get()),
              reference);
  }

  std::filesystem::remove_all(dir);
}

TEST(BurstabCache, OldVersionBlobRebuildsCleanly) {
  // A v2-era entry (pre-frozen-tables format) must read as a miss — the
  // version word gates the whole payload — and the pipeline must rebuild
  // and re-store a current-version entry.
  std::string dir =
      (std::filesystem::temp_directory_path() / "record-cache-oldver")
          .string();
  std::filesystem::remove_all(dir);

  util::DiagnosticSink diags;
  core::RetargetOptions options;
  options.use_target_cache = true;
  options.cache_dir = dir;
  auto cold = core::Record::retarget_model("manocpu", options, diags);
  ASSERT_TRUE(cold) << diags.str();
  std::uint64_t key = TargetCache::key_of(
      models::model_source("manocpu"), core::options_digest(options));
  std::string path = TargetCache(dir).entry_path(key);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string blob = std::move(buf).str();
  in.close();

  // Patch the version word (bytes 4..8, little endian) down to 2. The
  // checksum that follows only covers the payload, so the blob is
  // otherwise pristine — exactly what a stale on-disk entry looks like.
  ASSERT_GE(blob.size(), 8u);
  blob[4] = 2;
  blob[5] = blob[6] = blob[7] = 0;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }
  EXPECT_FALSE(TargetCache(dir).load(key)) << "old version served as hit";

  util::DiagnosticSink d;
  auto rebuilt = core::Record::retarget_model("manocpu", options, d);
  ASSERT_TRUE(rebuilt) << d.str();
  EXPECT_FALSE(rebuilt->cache_hit);
  EXPECT_EQ(rebuilt->base->templates.size(), cold->base->templates.size());

  // The rebuild re-stored a current entry: next retarget is warm again.
  auto warm = core::Record::retarget_model("manocpu", options, d);
  ASSERT_TRUE(warm);
  EXPECT_TRUE(warm->cache_hit);

  std::filesystem::remove_all(dir);
}

TEST(BurstabCache, DiskFullAtCloseNeverPublishesTruncatedBlob) {
  // Regression: store() used to check the stream only after write() and let
  // the scope-exit destructor flush — an ENOSPC surfacing at close went
  // unnoticed and rename() published a truncated blob. The blob here is
  // smaller than the ofstream's 8 KiB buffer, so with RLIMIT_FSIZE shrunk
  // below the blob size the failure lands exactly at close().
  std::string dir =
      (std::filesystem::temp_directory_path() / "record-cache-diskfull")
          .string();
  std::filesystem::remove_all(dir);

  PlainFixture f;
  rtl::TemplateBase base;  // empty: tiny, fully-buffered blob
  std::string processor = "tinyproc";
  TargetArtifactsView view;
  view.processor = &processor;
  view.base = &base;
  view.grammar = &f.g;

  TargetCache cache(dir);
  const std::uint64_t key = 0x746e7970726f63ull;

  struct rlimit old_limit{};
  ASSERT_EQ(getrlimit(RLIMIT_FSIZE, &old_limit), 0);
  // Exceeding RLIMIT_FSIZE raises SIGXFSZ (default: kill) before write()
  // fails with EFBIG — ignore it so the error comes back through the stream.
  struct sigaction ignore_xfsz{}, old_xfsz{};
  ignore_xfsz.sa_handler = SIG_IGN;
  ASSERT_EQ(sigaction(SIGXFSZ, &ignore_xfsz, &old_xfsz), 0);
  struct rlimit tiny = old_limit;
  tiny.rlim_cur = 64;
  ASSERT_EQ(setrlimit(RLIMIT_FSIZE, &tiny), 0);

  bool stored = cache.store(key, view);

  ASSERT_EQ(setrlimit(RLIMIT_FSIZE, &old_limit), 0);
  ASSERT_EQ(sigaction(SIGXFSZ, &old_xfsz, nullptr), 0);

  EXPECT_FALSE(stored) << "store claimed success past the file-size limit";
  EXPECT_FALSE(std::filesystem::exists(cache.entry_path(key)))
      << "a truncated blob was published via rename()";
  // No stray temp file left behind either.
  std::size_t leftovers = 0;
  std::error_code ec;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator(dir, ec))
    ++leftovers;
  EXPECT_EQ(leftovers, 0u);

  // With the limit restored the identical store succeeds, produces a blob
  // that really was larger than the limit, and loads back.
  EXPECT_TRUE(cache.store(key, view));
  EXPECT_GT(std::filesystem::file_size(cache.entry_path(key)), 64u);
  EXPECT_TRUE(cache.load(key).has_value());

  std::filesystem::remove_all(dir);
}

TEST(BurstabCache, MappedTablesAgreeAcrossProcesses) {
  // The cache entry is mmap'ed MAP_SHARED: concurrent child processes warm-
  // loading the same key share the page-cache pages of one blob. Every child
  // must hit the cache and select the exact listing the cold parent built.
  std::string dir =
      (std::filesystem::temp_directory_path() / "record-cache-multiproc")
          .string();
  std::filesystem::remove_all(dir);

  util::DiagnosticSink diags;
  core::RetargetOptions options;
  options.use_target_cache = true;
  options.cache_dir = dir;
  auto cold = core::Record::retarget_model("manocpu", options, diags);
  ASSERT_TRUE(cold) << diags.str();
  ASSERT_FALSE(cold->cache_hit);

  ir::ProgramBuilder b("mmap_agree");
  b.reg("acc", "AC");
  b.cell("m0", "mem", 0);
  b.cell("m1", "mem", 1);
  b.let("acc", ir::e_add(ir::e_var("m0"), ir::e_var("m1")));
  ir::Program prog = b.take();
  auto listing_of = [&prog](const core::RetargetResult& t) {
    util::DiagnosticSink d;
    select::CodeSelector sel(*t.base, t.tree_grammar, d, t.tables.get());
    auto res = sel.select(prog);
    return res ? res->listing() : std::string("<select failed>");
  };
  const std::uint64_t expect_hash = fnv1a(listing_of(*cold));

  constexpr int kChildren = 3;
  pid_t pids[kChildren];
  int read_fds[kChildren];
  for (int c = 0; c < kChildren; ++c) {
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::close(fds[0]);
      util::DiagnosticSink d;
      auto warm = core::Record::retarget_model("manocpu", options, d);
      std::uint8_t hit = 0;
      std::uint64_t h = 0;
      if (warm && warm->tables) {
        hit = warm->cache_hit ? 1 : 0;
        h = fnv1a(listing_of(*warm));
      }
      (void)!::write(fds[1], &hit, sizeof hit);
      (void)!::write(fds[1], &h, sizeof h);
      ::close(fds[1]);
      std::_Exit(0);  // skip gtest/atexit teardown in the child
    }
    ::close(fds[1]);
    pids[c] = pid;
    read_fds[c] = fds[0];
  }
  for (int c = 0; c < kChildren; ++c) {
    std::uint8_t hit = 0;
    std::uint64_t h = 0;
    EXPECT_EQ(::read(read_fds[c], &hit, sizeof hit),
              static_cast<ssize_t>(sizeof hit));
    EXPECT_EQ(::read(read_fds[c], &h, sizeof h),
              static_cast<ssize_t>(sizeof h));
    ::close(read_fds[c]);
    int status = 0;
    ASSERT_EQ(::waitpid(pids[c], &status, 0), pids[c]);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "child " << c << " died";
    EXPECT_EQ(hit, 1) << "child " << c << " missed the cache";
    EXPECT_EQ(h, expect_hash) << "child " << c << " listing diverged";
  }

  std::filesystem::remove_all(dir);
}

TEST(BurstabCache, CompilerEngineOption) {
  util::DiagnosticSink diags;
  auto target =
      core::Record::retarget_model("manocpu", core::RetargetOptions{}, diags);
  ASSERT_TRUE(target) << diags.str();
  ir::ProgramBuilder b("engine_opt");
  b.reg("acc", "AC");
  b.cell("m0", "mem", 0);
  b.let("acc", ir::e_add(ir::e_var("acc"), ir::e_var("m0")));
  ir::Program prog = b.take();

  core::Compiler compiler(*target);
  core::CompileOptions interp_opts;
  interp_opts.engine = select::Engine::kInterpreter;
  core::CompileOptions table_opts;
  table_opts.engine = select::Engine::kTables;
  util::DiagnosticSink d1, d2;
  auto a = compiler.compile(prog, interp_opts, d1);
  auto c = compiler.compile(prog, table_opts, d2);
  ASSERT_TRUE(a) << d1.str();
  ASSERT_TRUE(c) << d2.str();
  EXPECT_EQ(a->listing(), c->listing());
  EXPECT_EQ(a->code_size(), c->code_size());
}

TEST(Satellites, WorkDirDefaultIsPidUniqueUnderSystemTemp) {
  core::RetargetOptions options;
  EXPECT_EQ(options.work_dir, core::default_work_dir());
  EXPECT_FALSE(options.work_dir.empty());
  // A pid-unique subdirectory of the system temp dir, so concurrent
  // processes cannot clobber each other's generated parser files. It is
  // created on first parser emission, not here (constructing options must
  // leave no droppings) — integration_test covers the write path.
  std::filesystem::path dir(options.work_dir);
  EXPECT_EQ(dir.parent_path(), std::filesystem::temp_directory_path());
  EXPECT_NE(dir.filename().string().find("record-work-"), std::string::npos);
}

}  // namespace
}  // namespace record::burstab
