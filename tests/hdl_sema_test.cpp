#include <gtest/gtest.h>

#include "hdl/parser.h"
#include "hdl/sema.h"

namespace record::hdl {
namespace {

/// Parses + checks; returns the sink so tests can inspect messages.
util::DiagnosticSink check(std::string_view src, bool* parse_ok = nullptr) {
  util::DiagnosticSink diags;
  auto model = parse(src, diags);
  if (parse_ok) *parse_ok = model.has_value();
  EXPECT_TRUE(model.has_value()) << "parse failed: " << diags.str();
  if (model) check_model(*model, diags);
  return diags;
}

void expect_sema_error(std::string_view src, std::string_view fragment) {
  util::DiagnosticSink diags = check(src);
  EXPECT_FALSE(diags.ok()) << "expected error containing '" << fragment
                           << "'";
  EXPECT_NE(diags.str().find(fragment), std::string::npos)
      << "diagnostics were:\n"
      << diags.str();
}

constexpr const char* kGood = R"(
PROCESSOR p;
CONTROLLER im (OUT w:(15:0));
REGISTER r (IN d:(7:0); OUT q:(7:0); CTRL ld:(0:0));
BEHAVIOR q := d WHEN ld = 1; END;
MODULE alu (IN a:(7:0); IN b:(7:0); OUT y:(7:0); CTRL f:(0:0));
BEHAVIOR
  y := a + b WHEN f = 0;
  y := a - b WHEN f = 1;
END;
MEMORY mm (IN addr:(3:0); IN din:(7:0); OUT dout:(7:0); CTRL we:(0:0)) SIZE 16;
BEHAVIOR
  dout := CELL[addr];
  CELL[addr] := din WHEN we = 1;
END;
STRUCTURE
PARTS
  IM: im;  R: r;  ALU: alu;  M: mm;
CONNECTIONS
  ALU.a := R.q;
  ALU.b := M.dout;
  ALU.f := IM.w(0:0);
  R.d := ALU.y;
  R.ld := IM.w(1:1);
  M.addr := IM.w(5:2);
  M.din := R.q;
  M.we := IM.w(6:6);
END;
)";

TEST(HdlSema, AcceptsWellFormedModel) {
  util::DiagnosticSink diags = check(kGood);
  EXPECT_TRUE(diags.ok()) << diags.str();
}

TEST(HdlSema, DuplicateModuleName) {
  expect_sema_error(R"(
PROCESSOR p;
CONTROLLER im (OUT w:(7:0));
MODULE a (IN x:(1:0); OUT y:(1:0));
MODULE a (IN x:(1:0); OUT y:(1:0));
STRUCTURE
PARTS
  IM: im;
CONNECTIONS
END;
)",
                    "duplicate module name");
}

TEST(HdlSema, RegisterNeedsExactlyOneOutput) {
  expect_sema_error(R"(
PROCESSOR p;
CONTROLLER im (OUT w:(7:0));
REGISTER r (IN d:(1:0); OUT q:(1:0); OUT q2:(1:0); CTRL ld:(0:0));
BEHAVIOR q := d WHEN ld = 1; END;
STRUCTURE
PARTS
  IM: im; R: r;
CONNECTIONS
  R.d := IM.w(1:0);
  R.ld := IM.w(2:2);
END;
)",
                    "exactly one OUT");
}

TEST(HdlSema, RegisterNeedsTransfer) {
  expect_sema_error(R"(
PROCESSOR p;
CONTROLLER im (OUT w:(7:0));
REGISTER r (IN d:(1:0); OUT q:(1:0); CTRL ld:(0:0));
STRUCTURE
PARTS
  IM: im; R: r;
CONNECTIONS
  R.d := IM.w(1:0);
  R.ld := IM.w(2:2);
END;
)",
                    "at least one transfer");
}

TEST(HdlSema, MemoryNeedsSize) {
  expect_sema_error(R"(
PROCESSOR p;
CONTROLLER im (OUT w:(7:0));
MEMORY mm (IN addr:(1:0); OUT dout:(3:0));
BEHAVIOR dout := CELL[addr]; END;
STRUCTURE
PARTS
  IM: im; M: mm;
CONNECTIONS
  M.addr := IM.w(1:0);
END;
)",
                    "positive SIZE");
}

TEST(HdlSema, CellAccessOnlyInMemory) {
  expect_sema_error(R"(
PROCESSOR p;
CONTROLLER im (OUT w:(7:0));
MODULE a (IN x:(1:0); OUT y:(1:0));
BEHAVIOR y := CELL[x]; END;
STRUCTURE
PARTS
  IM: im; A: a;
CONNECTIONS
  A.x := IM.w(1:0);
END;
)",
                    "CELL read outside MEMORY");
}

TEST(HdlSema, TransferTargetMustBeOutPort) {
  expect_sema_error(R"(
PROCESSOR p;
CONTROLLER im (OUT w:(7:0));
MODULE a (IN x:(1:0); OUT y:(1:0));
BEHAVIOR x := y; END;
STRUCTURE
PARTS
  IM: im; A: a;
CONNECTIONS
  A.x := IM.w(1:0);
END;
)",
                    "must be an OUT port");
}

TEST(HdlSema, CombinationalCannotReadOwnOutput) {
  expect_sema_error(R"(
PROCESSOR p;
CONTROLLER im (OUT w:(7:0));
MODULE a (IN x:(1:0); OUT y:(1:0));
BEHAVIOR y := y + x; END;
STRUCTURE
PARTS
  IM: im; A: a;
CONNECTIONS
  A.x := IM.w(1:0);
END;
)",
                    "reads its own output");
}

TEST(HdlSema, GuardConstantMustFit) {
  expect_sema_error(R"(
PROCESSOR p;
CONTROLLER im (OUT w:(7:0));
MODULE a (IN x:(1:0); OUT y:(1:0); CTRL c:(0:0));
BEHAVIOR y := x WHEN c = 5; END;
STRUCTURE
PARTS
  IM: im; A: a;
CONNECTIONS
  A.x := IM.w(1:0);
  A.c := IM.w(2:2);
END;
)",
                    "does not fit");
}

TEST(HdlSema, ExactlyOneController) {
  expect_sema_error(R"(
PROCESSOR p;
MODULE a (IN x:(1:0); OUT y:(1:0));
STRUCTURE
PARTS
  A: a;
CONNECTIONS
END;
)",
                    "exactly one CONTROLLER");
}

TEST(HdlSema, UnknownPartModule) {
  expect_sema_error(R"(
PROCESSOR p;
CONTROLLER im (OUT w:(7:0));
STRUCTURE
PARTS
  IM: im;
  X: ghost;
CONNECTIONS
END;
)",
                    "unknown module");
}

TEST(HdlSema, ConnectionWidthMismatch) {
  expect_sema_error(R"(
PROCESSOR p;
CONTROLLER im (OUT w:(7:0));
REGISTER r (IN d:(3:0); OUT q:(3:0); CTRL ld:(0:0));
BEHAVIOR q := d WHEN ld = 1; END;
STRUCTURE
PARTS
  IM: im; R: r;
CONNECTIONS
  R.d := IM.w(7:0);
  R.ld := IM.w(1:1);
END;
)",
                    "width mismatch");
}

TEST(HdlSema, CannotDriveOutPort) {
  expect_sema_error(R"(
PROCESSOR p;
CONTROLLER im (OUT w:(7:0));
REGISTER r (IN d:(3:0); OUT q:(3:0); CTRL ld:(0:0));
BEHAVIOR q := d WHEN ld = 1; END;
STRUCTURE
PARTS
  IM: im; R: r;
CONNECTIONS
  R.q := IM.w(3:0);
  R.d := IM.w(3:0);
  R.ld := IM.w(4:4);
END;
)",
                    "cannot drive OUT port");
}

TEST(HdlSema, DoubleDriverOnWire) {
  expect_sema_error(R"(
PROCESSOR p;
CONTROLLER im (OUT w:(7:0));
REGISTER r (IN d:(3:0); OUT q:(3:0); CTRL ld:(0:0));
BEHAVIOR q := d WHEN ld = 1; END;
STRUCTURE
PARTS
  IM: im; R: r;
CONNECTIONS
  R.d := IM.w(3:0);
  R.d := IM.w(7:4);
  R.ld := IM.w(4:4);
END;
)",
                    "drivers");
}

TEST(HdlSema, MultiDriverBusNeedsGuards) {
  expect_sema_error(R"(
PROCESSOR p;
CONTROLLER im (OUT w:(7:0));
REGISTER r (IN d:(3:0); OUT q:(3:0); CTRL ld:(0:0));
BEHAVIOR q := d WHEN ld = 1; END;
STRUCTURE
PARTS
  IM: im; R: r;
BUS db: (3:0);
CONNECTIONS
  db := IM.w(3:0);
  db := R.q WHEN IM.w(7:7) = 1;
  R.d := db;
  R.ld := IM.w(4:4);
END;
)",
                    "need WHEN guards");
}

TEST(HdlSema, GuardOnPlainWireRejected) {
  expect_sema_error(R"(
PROCESSOR p;
CONTROLLER im (OUT w:(7:0));
REGISTER r (IN d:(3:0); OUT q:(3:0); CTRL ld:(0:0));
BEHAVIOR q := d WHEN ld = 1; END;
STRUCTURE
PARTS
  IM: im; R: r;
CONNECTIONS
  R.d := IM.w(3:0) WHEN IM.w(7:7) = 1;
  R.ld := IM.w(4:4);
END;
)",
                    "only allowed on bus drivers");
}

TEST(HdlSema, UndrivenPortIsWarningNotError) {
  util::DiagnosticSink diags = check(R"(
PROCESSOR p;
CONTROLLER im (OUT w:(7:0));
REGISTER r (IN d:(3:0); OUT q:(3:0); CTRL ld:(0:0));
BEHAVIOR q := d WHEN ld = 1; END;
STRUCTURE
PARTS
  IM: im; R: r;
CONNECTIONS
  R.d := IM.w(3:0);
END;
)");
  EXPECT_TRUE(diags.ok());
  EXPECT_GT(diags.warning_count(), 0u);
}

TEST(HdlSema, SliceBeyondSourceWidth) {
  expect_sema_error(R"(
PROCESSOR p;
CONTROLLER im (OUT w:(7:0));
REGISTER r (IN d:(3:0); OUT q:(3:0); CTRL ld:(0:0));
BEHAVIOR q := d WHEN ld = 1; END;
STRUCTURE
PARTS
  IM: im; R: r;
CONNECTIONS
  R.d := IM.w(11:8);
  R.ld := IM.w(4:4);
END;
)",
                    "exceeds source width");
}

TEST(HdlSema, PortRangesMustBeZeroBased) {
  expect_sema_error(R"(
PROCESSOR p;
CONTROLLER im (OUT w:(7:0));
MODULE a (IN x:(4:1); OUT y:(3:0));
STRUCTURE
PARTS
  IM: im; A: a;
CONNECTIONS
  A.x := IM.w(4:1);
END;
)",
                    "(w-1:0)");
}

}  // namespace
}  // namespace record::hdl
