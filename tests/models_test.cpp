#include <gtest/gtest.h>

#include <set>

#include "core/record.h"
#include "hdl/parser.h"
#include "hdl/sema.h"
#include "models/models.h"

namespace record::models {
namespace {

TEST(Models, SixBuiltinsRegistered) {
  const auto& all = builtin_models();
  ASSERT_EQ(all.size(), 6u);
  std::set<std::string_view> names;
  for (const ModelInfo& m : all) names.insert(m.name);
  EXPECT_TRUE(names.count("demo"));
  EXPECT_TRUE(names.count("ref"));
  EXPECT_TRUE(names.count("manocpu"));
  EXPECT_TRUE(names.count("tanenbaum"));
  EXPECT_TRUE(names.count("bass_boost"));
  EXPECT_TRUE(names.count("tms320c25"));
}

TEST(Models, PaperNumbersRecorded) {
  const auto& all = builtin_models();
  for (const ModelInfo& m : all) {
    EXPECT_GT(m.paper_template_count, 0) << m.name;
    EXPECT_GT(m.paper_retarget_seconds, 0.0) << m.name;
  }
}

TEST(Models, UnknownModelHasNoSource) {
  EXPECT_TRUE(model_source("pdp11").empty());
}

/// Parameterised over all six models: parse, check, retarget.
class AllModels : public ::testing::TestWithParam<const char*> {};

TEST_P(AllModels, ParsesAndChecks) {
  std::string_view src = model_source(GetParam());
  ASSERT_FALSE(src.empty());
  util::DiagnosticSink diags;
  auto model = hdl::parse(src, diags);
  ASSERT_TRUE(model) << diags.str();
  EXPECT_TRUE(hdl::check_model(*model, diags)) << diags.str();
}

TEST_P(AllModels, RetargetsWithNonTrivialTemplateBase) {
  util::DiagnosticSink diags;
  auto result = core::Record::retarget_model(GetParam(),
                                             core::RetargetOptions{}, diags);
  ASSERT_TRUE(result) << diags.str();
  EXPECT_GT(result->template_count(), 10u) << GetParam();
  EXPECT_GT(result->tree_grammar.rules().size(), 10u);
  // Every model must provide the grammar skeleton: start + stop rules.
  EXPECT_GT(result->grammar_stats.start_rules, 0u);
  EXPECT_GT(result->grammar_stats.stop_rules, 0u);
}

TEST_P(AllModels, TemplatesHaveSatisfiableConditions) {
  util::DiagnosticSink diags;
  auto result = core::Record::retarget_model(GetParam(),
                                             core::RetargetOptions{}, diags);
  ASSERT_TRUE(result) << diags.str();
  for (const rtl::RTTemplate& t : result->base->templates)
    EXPECT_NE(t.cond, bdd::kFalse)
        << GetParam() << ": template " << t.signature();
}

TEST_P(AllModels, HasProgramControl) {
  util::DiagnosticSink diags;
  auto result = core::Record::retarget_model(GetParam(),
                                             core::RetargetOptions{}, diags);
  ASSERT_TRUE(result) << diags.str();
  // bass_boost is a pure filter engine without jumps; all others must
  // extract PC templates.
  if (std::string_view(GetParam()) == "bass_boost") return;
  bool has_pc = false;
  for (const rtl::RTTemplate& t : result->base->templates)
    if (t.dest == "PC") has_pc = true;
  EXPECT_TRUE(has_pc) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Builtin, AllModels,
                         ::testing::Values("demo", "ref", "manocpu",
                                           "tanenbaum", "bass_boost",
                                           "tms320c25"));

TEST(ModelOrdering, TemplateCountsFollowPaperOrdering) {
  // Paper (Table 3): ref > demo > tms320c25 > tanenbaum > manocpu >
  // bass_boost. Absolute values depend on modelling granularity; the
  // ordering is the reproducible claim.
  std::map<std::string, std::size_t> counts;
  for (const ModelInfo& info : builtin_models()) {
    util::DiagnosticSink diags;
    auto result = core::Record::retarget_model(info.name,
                                               core::RetargetOptions{}, diags);
    ASSERT_TRUE(result) << info.name << ": " << diags.str();
    counts[std::string(info.name)] = result->template_count();
  }
  EXPECT_GT(counts["ref"], counts["demo"]);
  EXPECT_GT(counts["demo"], counts["tms320c25"]);
  EXPECT_GT(counts["tms320c25"], counts["bass_boost"]);
  EXPECT_GT(counts["tanenbaum"], counts["bass_boost"]);
  EXPECT_GT(counts["manocpu"], counts["bass_boost"]);
}

TEST(C25Model, HasMacFusionOpcode) {
  util::DiagnosticSink diags;
  auto result = core::Record::retarget_model("tms320c25",
                                             core::RetargetOptions{}, diags);
  ASSERT_TRUE(result);
  // ACC += P and P := T * mem must be jointly encodable (MPYA).
  bdd::Ref acc_cond = bdd::kFalse, p_cond = bdd::kFalse;
  for (const rtl::RTTemplate& t : result->base->templates) {
    if (t.signature() == "ACC := +.32(ACC,P)") acc_cond = t.cond;
    if (t.signature() == "P := *.32(T,ram[#imm.16@0])") p_cond = t.cond;
  }
  ASSERT_NE(acc_cond, bdd::kFalse);
  ASSERT_NE(p_cond, bdd::kFalse);
  EXPECT_NE(result->base->mgr->land(acc_cond, p_cond), bdd::kFalse);
}

TEST(ManoModel, BusTransfersExtracted) {
  util::DiagnosticSink diags;
  auto result = core::Record::retarget_model("manocpu",
                                             core::RetargetOptions{}, diags);
  ASSERT_TRUE(result);
  bool dr_from_mem = false, ac_ops = false;
  for (const rtl::RTTemplate& t : result->base->templates) {
    if (t.dest == "DR" && t.signature().find("mem[") != std::string::npos)
      dr_from_mem = true;
    if (t.signature() == "AC := +.16(DR,AC)" ||
        t.signature() == "AC := +.16(AC,DR)")
      ac_ops = true;
  }
  EXPECT_TRUE(dr_from_mem);
  EXPECT_TRUE(ac_ops);
}

TEST(BassBoostModel, ModeRegisterInConditions) {
  util::DiagnosticSink diags;
  auto result = core::Record::retarget_model("bass_boost",
                                             core::RetargetOptions{}, diags);
  ASSERT_TRUE(result);
  bool mode_dependent = false;
  const bdd::BddManager& mgr = *result->base->mgr;
  for (const rtl::RTTemplate& t : result->base->templates)
    for (int v : mgr.support(t.cond))
      if (mgr.var_name(v).rfind("M:", 0) == 0) mode_dependent = true;
  EXPECT_TRUE(mode_dependent);
}

}  // namespace
}  // namespace record::models
