// Unit tests for the observability layer (src/obs/): trace-span nesting and
// cross-thread ordering, histogram bucket geometry and percentile math,
// counter overflow semantics, and well-formedness of the exported
// Chrome/Perfetto trace JSON (parsed back with the repo's own JSON parser).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/coverage.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/json.h"

namespace record::obs {
namespace {

// Every trace test owns the process-wide tracer for its duration: start from
// an empty buffer, and leave tracing off for whoever runs next.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().clear();
    Tracer::instance().enable();
  }
  void TearDown() override {
    Tracer::instance().disable();
    Tracer::instance().clear();
  }
};

const TraceEvent* find_event(const std::vector<TraceEvent>& events,
                             std::string_view name) {
  for (const TraceEvent& e : events)
    if (e.name == name) return &e;
  return nullptr;
}

// --- spans -----------------------------------------------------------------

TEST_F(TraceTest, NestedSpansRecordDepthAndContainment) {
  {
    Span outer("outer");
    outer.note("k", "v");
    {
      Span inner("inner");
      { OBS_SPAN("leaf"); }
    }
  }
  std::vector<TraceEvent> events = Tracer::instance().snapshot();
  ASSERT_EQ(events.size(), 3u);

  const TraceEvent* outer = find_event(events, "outer");
  const TraceEvent* inner = find_event(events, "inner");
  const TraceEvent* leaf = find_event(events, "leaf");
  ASSERT_TRUE(outer && inner && leaf);

  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(inner->depth, 1u);
  EXPECT_EQ(leaf->depth, 2u);
  EXPECT_EQ(outer->tid, inner->tid);

  // Timestamp containment: child starts and ends within the parent.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns,
            outer->start_ns + outer->dur_ns);
  EXPECT_GE(leaf->start_ns, inner->start_ns);

  // snapshot() is start-ordered: the outer span opened first.
  EXPECT_EQ(events.front().name, "outer");
  ASSERT_EQ(outer->args.size(), 1u);
  EXPECT_EQ(outer->args[0].first, "k");
  EXPECT_EQ(outer->args[0].second, "v");
}

TEST_F(TraceTest, EndClosesEarlyAndIsIdempotent) {
  Span a("first");
  a.end();
  Span b("second");
  a.end();  // no second event
  b.end();
  std::vector<TraceEvent> events = Tracer::instance().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // "first" ended before "second" opened, so they do not nest.
  const TraceEvent* first = find_event(events, "first");
  const TraceEvent* second = find_event(events, "second");
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->depth, second->depth);
  EXPECT_GE(second->start_ns, first->start_ns + first->dur_ns);
}

TEST_F(TraceTest, ThreadsGetDistinctTracksWithLocalNesting) {
  constexpr int kThreads = 3;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([t] {
      Span outer(("thread" + std::to_string(t)).c_str());
      OBS_SPAN("work");
    });
  for (std::thread& th : threads) th.join();

  std::vector<TraceEvent> events = Tracer::instance().snapshot();
  ASSERT_EQ(events.size(), 2u * kThreads);
  for (int t = 0; t < kThreads; ++t) {
    const TraceEvent* outer =
        find_event(events, "thread" + std::to_string(t));
    ASSERT_TRUE(outer);
    // Depth counters are thread-local: every thread's root span is depth 0,
    // and its nested span (same tid) is depth 1.
    EXPECT_EQ(outer->depth, 0u);
    for (const TraceEvent& e : events) {
      if (e.name == "work" && e.tid == outer->tid) {
        EXPECT_EQ(e.depth, 1u);
      }
    }
  }
  // Threads were registered as distinct tracks.
  std::vector<std::uint32_t> tids;
  for (const TraceEvent& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  Tracer::instance().disable();
  {
    Span s("ghost");
    s.note("k", std::int64_t{1});
  }
  EXPECT_TRUE(Tracer::instance().snapshot().empty());
}

TEST_F(TraceTest, RecentReturnsLastCompletedSpans) {
  for (int i = 0; i < 5; ++i) {
    Span s(("s" + std::to_string(i)).c_str());
  }
  std::vector<TraceEvent> last = Tracer::instance().recent(2);
  ASSERT_EQ(last.size(), 2u);
  EXPECT_EQ(last[0].name, "s3");  // oldest-first within the window
  EXPECT_EQ(last[1].name, "s4");
  // A parent completes after its children: recent(1) sees the parent.
  {
    Span outer("outer");
    OBS_SPAN("inner");
  }
  std::vector<TraceEvent> one = Tracer::instance().recent(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].name, "outer");
}

// --- Chrome/Perfetto export -------------------------------------------------

TEST_F(TraceTest, ChromeTraceJsonParsesBackWithEscapes) {
  {
    Span s("select \"label\"");                  // quotes in the name
    s.note("path", "a\\b\nc");                   // backslash + newline value
    s.note("nodes", std::int64_t{42});
    OBS_SPAN("child");
  }
  std::string json = Tracer::instance().chrome_trace_json();

  std::string error;
  std::optional<service::Json> parsed = service::Json::parse(json, &error);
  ASSERT_TRUE(parsed) << "trace JSON does not parse: " << error;
  ASSERT_TRUE(parsed->is_object());
  const service::Json& events = (*parsed)["traceEvents"];
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.size(), 2u);

  bool saw_named = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const service::Json& e = events.at(i);
    EXPECT_EQ(e["ph"].as_string(), "X");  // complete events only
    EXPECT_EQ(e["ts"].kind(), service::Json::Kind::Number);
    EXPECT_EQ(e["dur"].kind(), service::Json::Kind::Number);
    EXPECT_EQ(e["pid"].kind(), service::Json::Kind::Number);
    EXPECT_EQ(e["tid"].kind(), service::Json::Kind::Number);
    if (e["name"].as_string() == "select \"label\"") {
      saw_named = true;
      EXPECT_EQ(e["args"]["path"].as_string(), "a\\b\nc");
      EXPECT_EQ(e["args"]["nodes"].as_string(), "42");
    }
  }
  EXPECT_TRUE(saw_named);
}

// --- counters / gauges ------------------------------------------------------

TEST(MetricsTest, CounterWrapsModulo64Bits) {
  Counter c;
  c.add(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(c.value(), std::numeric_limits<std::uint64_t>::max());
  c.add(2);  // documented: wraps modulo 2^64 (consumers diff snapshots)
  EXPECT_EQ(c.value(), 1u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, RegistryHandsOutStableNamedMetrics) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  a.add(3);
  EXPECT_EQ(&reg.counter("x"), &a);  // same storage on re-lookup
  reg.gauge("g").set(-7);
  reg.histogram("h").record(5);

  MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "x");
  EXPECT_EQ(snap.counters[0].second, 3u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, -7);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);
}

// --- histogram geometry -----------------------------------------------------

TEST(HistogramTest, BucketBoundariesTileThePositiveRange) {
  // Exact region: one bucket per value below kLinearLimit.
  for (std::int64_t v = 0; v < Histogram::kLinearLimit; ++v)
    EXPECT_EQ(Histogram::bucket_of(v), static_cast<std::size_t>(v));
  EXPECT_EQ(Histogram::bucket_of(-5), 0u);  // negatives clamp

  // Every bucket's [lo, hi] range maps back to that bucket, and hi+1 lands
  // in the next one — no gaps, no overlaps, over the whole int64 span.
  for (std::size_t i = 0; i + 1 < Histogram::kBucketCount; ++i) {
    auto [lo, hi] = Histogram::bucket_range(i);
    ASSERT_LE(lo, hi);
    EXPECT_EQ(Histogram::bucket_of(lo), i) << "lo of bucket " << i;
    EXPECT_EQ(Histogram::bucket_of(hi), i) << "hi of bucket " << i;
    EXPECT_EQ(Histogram::bucket_of(hi + 1), i + 1) << "succ of bucket " << i;
    auto [next_lo, next_hi] = Histogram::bucket_range(i + 1);
    EXPECT_EQ(next_lo, hi + 1);
    (void)next_hi;
  }
  auto [top_lo, top_hi] = Histogram::bucket_range(Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::bucket_of(top_lo), Histogram::kBucketCount - 1);
  EXPECT_EQ(top_hi, std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(Histogram::bucket_of(top_hi), Histogram::kBucketCount - 1);

  // Log region keeps ~12.5% relative resolution: 8 sub-buckets per octave.
  auto [lo64, hi64] = Histogram::bucket_range(Histogram::bucket_of(64));
  EXPECT_EQ(lo64, 64);
  EXPECT_EQ(hi64, 71);
}

TEST(HistogramTest, ExactStatsInTheLinearRegion) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0);  // empty
  for (int i = 0; i < 90; ++i) h.record(1);
  for (int i = 0; i < 10; ++i) h.record(10);
  HistogramStats s = h.stats();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 190);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 10);
  EXPECT_DOUBLE_EQ(s.mean, 1.9);
  // Below kLinearLimit every value has its own bucket: exact percentiles.
  EXPECT_EQ(s.p50, 1);
  EXPECT_EQ(s.p90, 1);
  EXPECT_EQ(s.p99, 10);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.stats().min, 0);
}

TEST(HistogramTest, QuantilesWithinBucketResolutionAbove) {
  // Uniform 0..9999: p50 ~ 5000, p90 ~ 9000, p99 ~ 9900, all within one
  // log sub-bucket (12.5% relative error bound).
  Histogram h;
  for (std::int64_t v = 0; v < 10000; ++v) h.record(v);
  HistogramStats s = h.stats();
  EXPECT_NEAR(static_cast<double>(s.p50), 5000.0, 5000.0 * 0.125);
  EXPECT_NEAR(static_cast<double>(s.p90), 9000.0, 9000.0 * 0.125);
  EXPECT_NEAR(static_cast<double>(s.p99), 9900.0, 9900.0 * 0.125);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 9999);
  // Quantiles are monotone in q.
  EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(1.0));
  // q=1 lands in the bucket holding the maximum recorded value.
  EXPECT_GE(h.quantile(1.0), Histogram::bucket_range(
                                 Histogram::bucket_of(9999)).first);
}

TEST_F(TraceTest, HostileNamesSurviveAsValidJsonAndUtf8) {
  // Control characters, a raw DEL byte, and an INVALID UTF-8 sequence
  // (lone continuation byte + truncated lead byte). Strict JSON consumers
  // reject unescaped control bytes and invalid UTF-8, so the export must
  // neutralise all of them.
  const std::string hostile = std::string("sel\x01\x7f\"quoted\"\\") +
                              '\x80' + '\xC3';  // invalid UTF-8 tail
  {
    Span s(hostile.c_str());
    s.note(hostile, hostile);
  }
  std::string json = Tracer::instance().chrome_trace_json();

  std::string error;
  std::optional<service::Json> parsed = service::Json::parse(json, &error);
  ASSERT_TRUE(parsed) << "trace JSON does not parse: " << error;
  // Invalid UTF-8 input bytes were \u00XX-escaped, and the hostile string
  // contained no VALID multi-byte sequences — so the whole export is ASCII.
  for (unsigned char c : json)
    EXPECT_LT(c, 0x80u) << "raw non-ASCII byte leaked into the export";
  // Round-trip: the name survives with its control/quote/backslash portion
  // intact (the invalid bytes come back as U+0080/U+00C3 code points, which
  // is the documented lossy-but-valid mapping).
  const service::Json& e = (*parsed)["traceEvents"].at(0);
  EXPECT_EQ(e["name"].as_string().substr(0, hostile.size() - 2),
            hostile.substr(0, hostile.size() - 2));
}

TEST(HistogramTest, ConcurrentRecordingLosesNothing) {
  Histogram h;
  constexpr int kThreads = 4, kPer = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h] {
      for (int i = 0; i < kPer; ++i) h.record(i % 100);
    });
  for (std::thread& th : threads) th.join();
  HistogramStats s = h.stats();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPer);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 99);
}

// --- selection coverage -----------------------------------------------------

CoverageMap::Config small_config() {
  CoverageMap::Config c;
  c.rules = 4;
  c.states = 3;
  c.transitions = 3;
  c.rule_names = {"r0", "r1", "r2", "r3"};
  return c;
}

TEST(CoverageTest, RecordsHitsDistinctAndOverflow) {
  CoverageMap map("t", small_config());
  map.record_rule_matched(0);
  map.record_rule_matched(0);
  map.record_rule_matched(2);
  map.record_rule_chosen(2);
  map.record_state(1);
  map.record_transition(0);
  map.record_transition(7);   // beyond capacity -> overflow, not UB
  map.record_rule_chosen(-1); // negative ids overflow too
  map.record_cold_transition();
  map.record_variant(CoverageVariant::kCompactMerge, 5);
  map.record_variant(CoverageVariant::kSpillPark, 0);  // no-op
  map.set_totals(4, 3, 3);

  CoverageDistinct d = map.distinct();
  EXPECT_EQ(d.rules_matched, 2u);
  EXPECT_EQ(d.rules_chosen, 1u);
  EXPECT_EQ(d.states, 1u);
  EXPECT_EQ(d.transitions, 1u);
  EXPECT_EQ(d.total(), 5u);

  CoverageSnapshot s = map.snapshot();
  EXPECT_EQ(s.target, "t");
  EXPECT_EQ(s.counts.rules_matched[0], 2u);
  EXPECT_EQ(s.counts.rules_matched[2], 1u);
  EXPECT_EQ(s.rules_matched_covered(), 2u);
  EXPECT_EQ(s.rules_chosen_covered(), 1u);
  EXPECT_EQ(s.states_covered(), 1u);
  EXPECT_EQ(s.transitions_covered(), 1u);
  EXPECT_EQ(s.counts.transition_overflow, 1u);
  EXPECT_EQ(s.counts.cold_transitions, 1u);
  EXPECT_EQ(s.counts.variants[static_cast<std::size_t>(
                CoverageVariant::kCompactMerge)],
            5u);
  EXPECT_EQ(s.counts.variants[static_cast<std::size_t>(
                CoverageVariant::kSpillPark)],
            0u);
  // Uncovered = never CHOSEN: rules 0, 1, 3 (2 was chosen).
  EXPECT_EQ(s.uncovered_rules(), (std::vector<int>{0, 1, 3}));
}

TEST(CoverageTest, DiffSubtractsAndMergeAccumulates) {
  CoverageMap map("t", small_config());
  map.record_rule_chosen(0);
  map.set_totals(4, 3, 3);
  CoverageSnapshot before = map.snapshot();
  map.record_rule_chosen(0);
  map.record_rule_chosen(1);
  map.record_state(2);
  CoverageSnapshot after = map.snapshot();

  CoverageSnapshot delta = coverage_diff(before, after);
  EXPECT_EQ(delta.counts.rules_chosen[0], 1u);
  EXPECT_EQ(delta.counts.rules_chosen[1], 1u);
  EXPECT_EQ(delta.counts.states[2], 1u);
  EXPECT_EQ(delta.rules_chosen_covered(), 2u);

  // Merging the delta back onto `before` reproduces `after`'s counts.
  CoverageSnapshot total = before;
  coverage_merge(total, delta);
  EXPECT_EQ(total.counts.rules_chosen, after.counts.rules_chosen);
  EXPECT_EQ(total.counts.states, after.counts.states);
  EXPECT_EQ(total.rules_total, 4u);
}

TEST(CoverageTest, RegistryCreatesOncePerTargetAndSnapshotsSorted) {
  CoverageRegistry reg;
  int factory_calls = 0;
  auto factory = [&factory_calls] {
    ++factory_calls;
    return small_config();
  };
  CoverageMap& b = reg.map_for("bravo", factory);
  CoverageMap& a = reg.map_for("alpha", factory);
  EXPECT_EQ(&reg.map_for("bravo", factory), &b);  // no second factory run
  EXPECT_EQ(factory_calls, 2);
  EXPECT_EQ(reg.find("alpha"), &a);
  EXPECT_EQ(reg.find("missing"), nullptr);

  a.record_rule_chosen(1);
  std::vector<CoverageSnapshot> all = reg.snapshot_all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].target, "alpha");  // name-sorted
  EXPECT_EQ(all[1].target, "bravo");

  reg.clear();
  EXPECT_EQ(reg.find("alpha"), nullptr);
  EXPECT_TRUE(reg.snapshot_all().empty());
}

TEST(CoverageTest, ConcurrentHitsLoseNothing) {
  CoverageMap::Config c;
  c.rules = 64;
  c.states = 64;
  c.transitions = 64;
  CoverageMap map("t", std::move(c));
  constexpr int kThreads = 4, kPer = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&map] {
      for (int i = 0; i < kPer; ++i) {
        map.record_rule_chosen(i % 64);
        map.record_transition(i % 7);
      }
    });
  for (std::thread& th : threads) th.join();
  CoverageSnapshot s = map.snapshot();
  std::uint64_t rule_hits = 0;
  for (std::uint64_t h : s.counts.rules_chosen) rule_hits += h;
  EXPECT_EQ(rule_hits, static_cast<std::uint64_t>(kThreads) * kPer);
  EXPECT_EQ(map.distinct().rules_chosen, 64u);
  EXPECT_EQ(map.distinct().transitions, 7u);
}

TEST(CoverageTest, ReportJsonParsesWithHostileTargetName) {
  CoverageMap map("gen\"x\"\x01\\", small_config());
  map.record_rule_chosen(0);
  map.set_totals(4, 3, 3);
  std::string json = coverage_report_json({map.snapshot()});
  std::string error;
  std::optional<service::Json> parsed = service::Json::parse(json, &error);
  ASSERT_TRUE(parsed) << "coverage JSON does not parse: " << error;
  const service::Json& t = (*parsed)["coverage"].at(0);
  EXPECT_EQ(t["target"].as_string(), "gen\"x\"\x01\\");
  EXPECT_EQ(t["rules_chosen"]["covered"].as_number(), 1.0);
  EXPECT_EQ(t["rules_chosen"]["total"].as_number(), 4.0);

  std::string text = coverage_report_text(map.snapshot());
  EXPECT_NE(text.find("rules chosen"), std::string::npos);
  EXPECT_NE(text.find("#1  r1"), std::string::npos);  // uncovered, by name
}

}  // namespace
}  // namespace record::obs
