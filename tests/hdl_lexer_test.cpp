#include <gtest/gtest.h>

#include "hdl/lexer.h"

namespace record::hdl {
namespace {

std::vector<Token> lex_ok(std::string_view src) {
  util::DiagnosticSink diags;
  auto toks = lex(src, diags);
  EXPECT_TRUE(diags.ok()) << diags.str();
  return toks;
}

TEST(HdlLexer, EmptyInputYieldsEof) {
  auto toks = lex_ok("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokKind::Eof);
}

TEST(HdlLexer, KeywordsAreCaseInsensitive) {
  auto toks = lex_ok("PROCESSOR processor Processor");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].kind, TokKind::KwProcessor);
  EXPECT_EQ(toks[1].kind, TokKind::KwProcessor);
  EXPECT_EQ(toks[2].kind, TokKind::KwProcessor);
}

TEST(HdlLexer, BehaviourSpellingVariants) {
  auto toks = lex_ok("BEHAVIOR BEHAVIOUR");
  EXPECT_EQ(toks[0].kind, TokKind::KwBehavior);
  EXPECT_EQ(toks[1].kind, TokKind::KwBehavior);
}

TEST(HdlLexer, IdentifiersKeepOriginalCase) {
  auto toks = lex_ok("AccReg");
  EXPECT_EQ(toks[0].kind, TokKind::Ident);
  EXPECT_EQ(toks[0].text, "AccReg");
}

TEST(HdlLexer, IntegersDecimalHexBinary) {
  auto toks = lex_ok("42 0x2a 0b101010");
  EXPECT_EQ(toks[0].value, 42);
  EXPECT_EQ(toks[1].value, 42);
  EXPECT_EQ(toks[2].value, 42);
}

TEST(HdlLexer, CompoundOperators) {
  auto toks = lex_ok(":= /= << >>");
  EXPECT_EQ(toks[0].kind, TokKind::Assign);
  EXPECT_EQ(toks[1].kind, TokKind::Neq);
  EXPECT_EQ(toks[2].kind, TokKind::Shl);
  EXPECT_EQ(toks[3].kind, TokKind::Shr);
}

TEST(HdlLexer, SingleCharOperators) {
  auto toks = lex_ok("( ) [ ] : ; , . & | ^ ~ + - * =");
  TokKind expected[] = {
      TokKind::LParen, TokKind::RParen, TokKind::LBracket,
      TokKind::RBracket, TokKind::Colon, TokKind::Semi,
      TokKind::Comma, TokKind::Dot, TokKind::Amp, TokKind::Pipe,
      TokKind::Caret, TokKind::Tilde, TokKind::Plus, TokKind::Minus,
      TokKind::Star, TokKind::Eq};
  for (std::size_t i = 0; i < std::size(expected); ++i)
    EXPECT_EQ(toks[i].kind, expected[i]) << "token " << i;
}

TEST(HdlLexer, CommentsRunToEndOfLine) {
  auto toks = lex_ok("a -- the rest is ignored ;:=\nb");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(HdlLexer, MinusVersusComment) {
  auto toks = lex_ok("a - b");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[1].kind, TokKind::Minus);
}

TEST(HdlLexer, TracksLineAndColumn) {
  auto toks = lex_ok("a\n  b");
  EXPECT_EQ(toks[0].loc.line, 1u);
  EXPECT_EQ(toks[0].loc.column, 1u);
  EXPECT_EQ(toks[1].loc.line, 2u);
  EXPECT_EQ(toks[1].loc.column, 3u);
}

TEST(HdlLexer, ReportsUnexpectedCharacter) {
  util::DiagnosticSink diags;
  auto toks = lex("a ? b", diags);
  EXPECT_FALSE(diags.ok());
  bool has_error_token = false;
  for (const Token& t : toks)
    if (t.kind == TokKind::Error) has_error_token = true;
  EXPECT_TRUE(has_error_token);
}

TEST(HdlLexer, SliceSyntaxTokens) {
  auto toks = lex_ok("w(15:0)");
  EXPECT_EQ(toks[0].kind, TokKind::Ident);
  EXPECT_EQ(toks[1].kind, TokKind::LParen);
  EXPECT_EQ(toks[2].value, 15);
  EXPECT_EQ(toks[3].kind, TokKind::Colon);
  EXPECT_EQ(toks[4].value, 0);
  EXPECT_EQ(toks[5].kind, TokKind::RParen);
}

TEST(HdlLexer, AllDeclarationKeywords) {
  auto toks = lex_ok(
      "MODULE REGISTER MEMORY MODEREG CONTROLLER STRUCTURE PARTS "
      "CONNECTIONS BUS PORT IN OUT CTRL WHEN END CELL SIZE AND OR NOT "
      "SXT ZXT");
  TokKind expected[] = {
      TokKind::KwModule, TokKind::KwRegister, TokKind::KwMemory,
      TokKind::KwModeReg, TokKind::KwController, TokKind::KwStructure,
      TokKind::KwParts, TokKind::KwConnections, TokKind::KwBus,
      TokKind::KwPort, TokKind::KwIn, TokKind::KwOut, TokKind::KwCtrl,
      TokKind::KwWhen, TokKind::KwEnd, TokKind::KwCell, TokKind::KwSize,
      TokKind::KwAnd, TokKind::KwOr, TokKind::KwNot, TokKind::KwSxt,
      TokKind::KwZxt};
  for (std::size_t i = 0; i < std::size(expected); ++i)
    EXPECT_EQ(toks[i].kind, expected[i]) << "keyword " << i;
}

TEST(HdlLexer, TokenKindNamesAreStable) {
  EXPECT_EQ(to_string(TokKind::Assign), "':='");
  EXPECT_EQ(to_string(TokKind::KwWhen), "WHEN");
  EXPECT_EQ(to_string(TokKind::Eof), "end of input");
}

}  // namespace
}  // namespace record::hdl
