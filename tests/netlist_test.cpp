#include <gtest/gtest.h>

#include "hdl/parser.h"
#include "hdl/sema.h"
#include "netlist/netlist.h"

namespace record::netlist {
namespace {

constexpr const char* kModel = R"(
PROCESSOR nl;
CONTROLLER im (OUT w:(15:0));
REGISTER r (IN d:(7:0); OUT q:(7:0); CTRL ld:(0:0));
BEHAVIOR q := d WHEN ld = 1; END;
MEMORY mm (IN addr:(3:0); IN din:(7:0); OUT dout:(7:0); CTRL we:(0:0)) SIZE 16;
BEHAVIOR
  dout := CELL[addr];
  CELL[addr] := din WHEN we = 1;
END;
PORT pin: IN (7:0);
PORT pout: OUT (7:0);
STRUCTURE
PARTS
  IM: im;  R: r;  M: mm;
BUS db: (7:0);
CONNECTIONS
  db := M.dout WHEN IM.w(15:15) = 1;
  db := pin    WHEN IM.w(15:15) = 0;
  R.d := db;
  R.ld := IM.w(14:14);
  M.addr := IM.w(3:0);
  M.din := R.q;
  M.we := IM.w(13:13);
  pout := R.q;
END;
)";

Netlist make() {
  util::DiagnosticSink diags;
  auto model = hdl::parse(kModel, diags);
  EXPECT_TRUE(model) << diags.str();
  EXPECT_TRUE(hdl::check_model(*model, diags)) << diags.str();
  auto nl = elaborate(std::move(*model), diags);
  EXPECT_TRUE(nl) << diags.str();
  return std::move(*nl);
}

TEST(Netlist, InstancesResolved) {
  Netlist nl = make();
  EXPECT_EQ(nl.instances().size(), 3u);
  EXPECT_GE(nl.find_instance("R"), 0);
  EXPECT_GE(nl.find_instance("M"), 0);
  EXPECT_EQ(nl.find_instance("ghost"), -1);
}

TEST(Netlist, ControllerIdentified) {
  Netlist nl = make();
  ASSERT_GE(nl.controller(), 0);
  EXPECT_EQ(nl.instance(nl.controller()).name, "IM");
  EXPECT_EQ(nl.instruction_port(), "w");
  EXPECT_EQ(nl.instruction_width(), 16);
}

TEST(Netlist, SequentialInstances) {
  Netlist nl = make();
  auto seq = nl.sequential_instances();
  ASSERT_EQ(seq.size(), 2u);  // R and M; the controller is not SEQ
  EXPECT_TRUE(nl.instance(seq[0]).is_sequential());
}

TEST(Netlist, WireDriversResolved) {
  Netlist nl = make();
  InstanceId r = nl.find_instance("R");
  const Driver* d = nl.port_driver(r, "ld");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->source.kind, NetSource::Kind::InstancePort);
  EXPECT_TRUE(d->source.has_slice);
  EXPECT_EQ(d->source.slice.msb, 14);
}

TEST(Netlist, BusDriversKeepGuards) {
  Netlist nl = make();
  const auto& drivers = nl.bus_drivers("db");
  ASSERT_EQ(drivers.size(), 2u);
  EXPECT_NE(drivers[0].guard, nullptr);
  EXPECT_EQ(drivers[0].source.kind, NetSource::Kind::InstancePort);
  EXPECT_EQ(drivers[1].source.kind, NetSource::Kind::ProcPort);
}

TEST(Netlist, BusConsumersSeeBusSource) {
  Netlist nl = make();
  InstanceId r = nl.find_instance("R");
  const Driver* d = nl.port_driver(r, "d");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->source.kind, NetSource::Kind::Bus);
  EXPECT_EQ(d->source.port, "db");
}

TEST(Netlist, ProcOutDriver) {
  Netlist nl = make();
  const Driver* d = nl.proc_out_driver("pout");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->source.kind, NetSource::Kind::InstancePort);
  EXPECT_EQ(nl.proc_out_driver("nope"), nullptr);
}

TEST(Netlist, WidthQueries) {
  Netlist nl = make();
  InstanceId m = nl.find_instance("M");
  EXPECT_EQ(nl.port_width(m, "dout"), 8);
  EXPECT_EQ(nl.port_width(m, "addr"), 4);
  EXPECT_EQ(nl.bus_width("db"), 8);
  EXPECT_EQ(nl.bus_width("nope"), -1);
}

TEST(Netlist, UndrivenPortReturnsNull) {
  Netlist nl = make();
  InstanceId r = nl.find_instance("R");
  EXPECT_EQ(nl.port_driver(r, "nonexistent"), nullptr);
}

TEST(Netlist, MissingControllerFailsElaboration) {
  const char* src = R"(
PROCESSOR bad;
REGISTER r (IN d:(1:0); OUT q:(1:0); CTRL ld:(0:0));
BEHAVIOR q := d WHEN ld = 1; END;
STRUCTURE
PARTS
  R: r;
CONNECTIONS
  R.d := R.q;
  R.ld := R.q(0:0);
END;
)";
  util::DiagnosticSink diags;
  auto model = hdl::parse(src, diags);
  ASSERT_TRUE(model);
  auto nl = elaborate(std::move(*model), diags);
  EXPECT_FALSE(nl.has_value());
}

}  // namespace
}  // namespace record::netlist
