// The generative differential-testing layer: seeded model/program
// generation, the four-path oracle, minimization, repro files — plus the
// grammar/table edge cases the generator surfaces (zero-rule nonterminals,
// unreachable operations, duplicate-signature states) and deterministic
// replay of the generated models checked into tests/data/.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "burstab/tableparse.h"
#include "burstab/tables.h"
#include "core/compiler.h"
#include "core/record.h"
#include "grammar/grammar.h"
#include "ir/kernel_lang.h"
#include "testgen/modelgen.h"
#include "testgen/oracle.h"
#include "testgen/programgen.h"
#include "treeparse/burs.h"

namespace record::testgen {
namespace {

/// Oracle options for tests: shared per-process cache dir (removed by the
/// environment teardown below), model-fitted spill placement.
OracleOptions oracle_options(const GeneratedModel& m, bool service = false) {
  OracleOptions o;
  o.cache_dir = default_cache_dir();
  o.service = service;
  if (m.spill_slots > 0) {
    o.compile.spill.scratch_base = m.spill_base;
    o.compile.spill.scratch_slots = m.spill_slots;
  }
  return o;
}

class TestgenEnvironment : public ::testing::Environment {
 public:
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(default_cache_dir(), ec);
  }
};
const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new TestgenEnvironment);

// --- model generator --------------------------------------------------------

TEST(ModelGen, DeterministicPerSeed) {
  GeneratedModel a = generate_model(7);
  GeneratedModel b = generate_model(7);
  EXPECT_EQ(a.hdl, b.hdl);
  EXPECT_EQ(a.knobs.str(), b.knobs.str());
  GeneratedModel c = generate_model(8);
  EXPECT_NE(a.hdl, c.hdl);
}

TEST(ModelGen, CorpusRetargetsAndIsDiverse) {
  int nonzero_imm_lsb = 0, buses = 0, shared = 0, addr_fields = 0, pcs = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    GeneratedModel m = generate_model(seed);
    util::DiagnosticSink diags;
    core::RetargetOptions opts;
    opts.build_tables = true;
    auto target = core::Record::retarget(m.hdl, opts, diags);
    ASSERT_TRUE(target) << "seed " << seed << " [" << m.knobs.str()
                        << "]:\n" << diags.str() << "\n" << m.hdl;
    EXPECT_GT(target->template_count(), 0u) << "seed " << seed;
    EXPECT_EQ(target->processor, m.name);
    EXPECT_EQ(target->base->instruction_width, m.instruction_width);
    if (m.knobs.imm_lsb > 0) ++nonzero_imm_lsb;
    if (m.knobs.use_bus) ++buses;
    if (m.knobs.shared_imm) ++shared;
    if (m.knobs.direct_addr_field) ++addr_fields;
    if (m.knobs.has_pc) ++pcs;
  }
  // The corpus must exercise the interesting knobs, not just defaults.
  EXPECT_GT(nonzero_imm_lsb, 5);
  EXPECT_GT(buses, 1);
  EXPECT_GT(shared, 1);
  EXPECT_GT(addr_fields, 1);
  EXPECT_GT(pcs, 1);
}

/// Every immediate-field reference in the extended base and the grammar must
/// stay inside the instruction word — the generative form of the PR-2
/// nonzero-lsb slice regression.
void expect_imm_bits_in_bounds(const rtl::RTNode& n, int iw,
                               const char* what) {
  if (n.kind == rtl::RTNode::Kind::Imm)
    for (int b : n.imm_bits) {
      EXPECT_GE(b, 0) << what;
      EXPECT_LT(b, iw) << what;
    }
  for (const rtl::RTNodePtr& c : n.children)
    expect_imm_bits_in_bounds(*c, iw, what);
}

void expect_pattern_imm_bits_in_bounds(const grammar::PatNode& p, int iw,
                                       const char* what) {
  if (p.kind == grammar::PatNode::Kind::Imm)
    for (int b : p.imm_bits) {
      EXPECT_GE(b, 0) << what;
      EXPECT_LT(b, iw) << what;
    }
  for (const grammar::PatNodePtr& c : p.children)
    expect_pattern_imm_bits_in_bounds(*c, iw, what);
}

TEST(ModelGen, ImmediateFieldBitsStayInsideInstructionWord) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    GeneratedModel m = generate_model(seed);
    util::DiagnosticSink diags;
    auto target = core::Record::retarget(m.hdl, core::RetargetOptions{},
                                         diags);
    ASSERT_TRUE(target) << diags.str();
    const int iw = target->base->instruction_width;
    for (const rtl::RTTemplate& t : target->base->templates) {
      expect_imm_bits_in_bounds(*t.value, iw, m.name.c_str());
      if (t.addr) expect_imm_bits_in_bounds(*t.addr, iw, m.name.c_str());
    }
    for (const grammar::Rule& r : target->tree_grammar.rules())
      expect_pattern_imm_bits_in_bounds(*r.pattern, iw, m.name.c_str());
  }
}

// --- program generator ------------------------------------------------------

TEST(ProgramGen, DeterministicValidatedAndKernelRoundTrips) {
  for (std::uint64_t seed : {0ull, 3ull, 11ull}) {
    GeneratedModel m = generate_model(seed);
    for (std::uint64_t p = 0; p < 3; ++p) {
      GeneratedProgram a = generate_program(m, p);
      GeneratedProgram b = generate_program(m, p);
      EXPECT_EQ(a.kernel, b.kernel);

      util::DiagnosticSink dv;
      EXPECT_TRUE(a.program.validate(dv)) << dv.str() << "\n" << a.kernel;

      util::DiagnosticSink dp;
      auto parsed = ir::parse_kernel(a.kernel, dp);
      ASSERT_TRUE(parsed) << dp.str() << "\n" << a.kernel;
      EXPECT_EQ(parsed->str(), a.program.str()) << a.kernel;
    }
  }
}

TEST(ProgramGen, ClonePreservesStructure) {
  GeneratedModel m = generate_model(5);
  GeneratedProgram gp = generate_program(m, 1);
  ir::Program copy = clone_program(gp.program);
  EXPECT_EQ(copy.str(), gp.program.str());
  EXPECT_EQ(copy.bindings().size(), gp.program.bindings().size());
  if (gp.program.stmts().size() > 1) {
    ir::Program shorter = clone_program(gp.program, 0);
    EXPECT_EQ(shorter.stmts().size(), gp.program.stmts().size() - 1);
  }
}

// --- the oracle -------------------------------------------------------------

TEST(Oracle, SmokeCorpusAllPathsAgree) {
  int compiled = 0, pairs = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    GeneratedModel m = generate_model(seed);
    for (std::uint64_t p = 0; p < 2; ++p) {
      GeneratedProgram gp = generate_program(m, p);
      // The service path spins a worker pool; exercise it on a subset.
      OracleOptions o = oracle_options(m, /*service=*/pairs % 4 == 0);
      OracleReport rep = check_pair(m.hdl, gp.program, o);
      EXPECT_TRUE(rep.agree)
          << "seed " << seed << " p" << p << " [" << m.knobs.str()
          << "]: " << rep.failure << "\n" << gp.kernel;
      if (rep.compiled) ++compiled;
      ++pairs;
    }
  }
  EXPECT_GT(compiled, pairs / 2) << "corpus too weak: almost nothing compiles";
}

TEST(Oracle, FrozenTableModeReplaysSeeds0To50) {
  // Regression net for the frozen (compressed, lock-free) table mode: the
  // default tables every oracle path uses are frozen, so replaying the
  // generative corpus pins TreeParser vs frozen TableParser vs the warm
  // TargetCache reload (a frozen blob landing in pure-array mode) as
  // bit-identical across 51 machines.
  int compiled = 0;
  for (std::uint64_t seed = 0; seed <= 50; ++seed) {
    GeneratedModel m = generate_model(seed);
    GeneratedProgram gp = generate_program(m, 0);
    OracleOptions o = oracle_options(m, /*service=*/false);
    OracleReport rep = check_pair(m.hdl, gp.program, o);
    EXPECT_TRUE(rep.agree) << "seed " << seed << " [" << m.knobs.str()
                           << "]: " << rep.failure << "\n"
                           << gp.kernel;
    if (rep.compiled) ++compiled;
  }
  EXPECT_GT(compiled, 25) << "corpus too weak: almost nothing compiles";
}

TEST(Oracle, UncoveredProgramCountsAsAgreement) {
  // gen4's ALU (seed 4 draws + - ^ *) has no AND; a kernel using & must fail
  // identically on every path.
  GeneratedModel m = generate_model(4);
  bool has_and = false;
  for (hdl::OpKind op : m.program_ops)
    if (op == hdl::OpKind::And) has_and = true;
  ASSERT_FALSE(has_and) << "seed 4 drew AND; pick another seed";
  util::DiagnosticSink d;
  auto prog = ir::parse_kernel("kernel unc;\nbind a: R0;\nbind b: R1;\n"
                               "a = (a & b);\n",
                               d);
  ASSERT_TRUE(prog) << d.str();
  OracleReport rep = check_pair(m.hdl, *prog, oracle_options(m, true));
  EXPECT_TRUE(rep.agree) << rep.failure;
  EXPECT_FALSE(rep.compiled);
}

TEST(Oracle, RoundTripCleanOnBuiltinModel) {
  util::DiagnosticSink diags;
  auto target = core::Record::retarget_model("bass_boost",
                                             core::RetargetOptions{}, diags);
  ASSERT_TRUE(target) << diags.str();
  // crom addressing uses the nonzero-lsb ca field IW.w(10:6) — the encode
  // side of the PR-2 regression.
  util::DiagnosticSink dk;
  auto prog = ir::parse_kernel(
      "kernel rt;\nbind a: A;\ncell s0: sram[3];\ncell c0: crom[5];\n"
      "a = (a + w32(s0 * c0));\n",
      dk);
  ASSERT_TRUE(prog) << dk.str();
  util::DiagnosticSink dc;
  core::Compiler compiler(*target);
  auto res = compiler.compile(*prog, core::CompileOptions{}, dc);
  ASSERT_TRUE(res) << dc.str();
  EXPECT_EQ(roundtrip_issues(*res, *target->base), "");
}

// --- minimizer and repro files ----------------------------------------------

TEST(Minimizer, ShrinksToPredicateCore) {
  // Five statements, one of which contains the "failing" leaf m3 buried in a
  // deep expression; the minimizer must isolate that statement and shrink the
  // expression around the leaf.
  util::DiagnosticSink d;
  auto prog = ir::parse_kernel(
      "kernel shrink;\n"
      "bind r0: R0;\nbind r1: R1;\n"
      "cell m0: mem[0];\ncell m3: mem[3];\n"
      "r0 = (r1 + m0);\n"
      "r1 = ((r0 | 3) + (r1 & r0));\n"
      "r0 = ((r1 + ((m3 & r0) | r1)) + (m0 + 9));\n"
      "r1 = (m0 + 1);\n"
      "r0 = (r0 + r1);\n",
      d);
  ASSERT_TRUE(prog) << d.str();
  std::function<bool(const ir::Expr&)> uses_m3 = [&](const ir::Expr& e) {
    if (e.kind == ir::Expr::Kind::Var && e.var == "m3") return true;
    for (const ir::ExprPtr& a : e.args)
      if (uses_m3(*a)) return true;
    return false;
  };
  auto mentions_m3 = [&](const ir::Program& p) {
    for (const ir::Stmt& s : p.stmts())
      if (s.rhs && uses_m3(*s.rhs)) return true;
    return false;
  };
  ir::Program min = minimize_program(*prog, mentions_m3);
  EXPECT_TRUE(mentions_m3(min));
  ASSERT_EQ(min.stmts().size(), 1u);
  // Everything around the failing leaf must be gone: the statement shrinks
  // to a bare move of m3.
  const ir::Stmt& survivor = min.stmts().front();
  ASSERT_NE(survivor.rhs, nullptr);
  EXPECT_EQ(ir::to_string(*survivor.rhs), "m3") << kernel_text(min);
}

TEST(Minimizer, KeepsBranchTargetsValid) {
  util::DiagnosticSink d;
  auto prog = ir::parse_kernel(
      "kernel loopy;\nbind r0: R0;\n"
      "Ltop:\nr0 = (r0 + 1);\ngoto Ltop;\n",
      d);
  ASSERT_TRUE(prog) << d.str();
  // A predicate that always fails: minimization may only produce validating
  // programs, so the goto never dangles.
  ir::Program min = minimize_program(
      *prog, [](const ir::Program& p) {
        util::DiagnosticSink s;
        return p.validate(s);
      });
  util::DiagnosticSink v;
  EXPECT_TRUE(min.validate(v)) << v.str();
}

TEST(Minimizer, PreservesFailureClassWhileShrinking) {
  // Regression for the class-preserving shrink discipline: a program whose
  // FIRST statement triggers a cheap "structural" failure while a LATER
  // statement carries the rare "semantic" one. A naive any-failure predicate
  // collapses onto the structural statement and loses the semantic repro;
  // the class-preserving predicate (what fuzz_retarget builds from
  // OracleReport::clazz) must keep the semantic statement alive.
  util::DiagnosticSink d;
  auto prog = ir::parse_kernel(
      "kernel cls;\n"
      "bind r0: R0;\nbind r1: R1;\ncell m3: mem[3];\n"
      "r0 = (r0 + 1);\n"
      "r1 = (r1 + 2);\n"
      "r0 = (m3 | r1);\n",
      d);
  ASSERT_TRUE(prog) << d.str();
  std::function<bool(const ir::Expr&)> uses_m3 = [&](const ir::Expr& e) {
    if (e.kind == ir::Expr::Kind::Var && e.var == "m3") return true;
    for (const ir::ExprPtr& a : e.args)
      if (uses_m3(*a)) return true;
    return false;
  };
  // Synthetic oracle: any surviving statement "fails structurally"; the m3
  // statement additionally "fails semantically" (the rarer, more valuable
  // class). Mirrors real runs where shrunk candidates often fail for
  // unrelated structural reasons.
  auto classify = [&](const ir::Program& p) {
    for (const ir::Stmt& s : p.stmts())
      if (s.rhs && uses_m3(*s.rhs)) return FailureClass::kSemantic;
    return p.stmts().empty() ? FailureClass::kNone
                             : FailureClass::kStructural;
  };
  ASSERT_EQ(classify(*prog), FailureClass::kSemantic);

  // Naive predicate: collapses to one statement of either class — with the
  // back-to-front statement pass, the LAST shrinkable statement wins, but
  // nothing ties it to the semantic class.
  ir::Program naive = minimize_program(
      *prog, [&](const ir::Program& p) {
        return classify(p) != FailureClass::kNone;
      });
  ASSERT_EQ(naive.stmts().size(), 1u);

  // Class-preserving predicate: the repro must still fail SEMANTICALLY.
  ir::Program kept = minimize_program(
      *prog, [&](const ir::Program& p) {
        return classify(p) == FailureClass::kSemantic;
      });
  EXPECT_EQ(classify(kept), FailureClass::kSemantic) << kernel_text(kept);
  ASSERT_EQ(kept.stmts().size(), 1u);
  EXPECT_TRUE(uses_m3(*kept.stmts().front().rhs)) << kernel_text(kept);
}

TEST(FailureClasses, ClassifyByStablePrefix) {
  EXPECT_EQ(classify_failure(""), FailureClass::kNone);
  EXPECT_EQ(classify_failure("table engine: listing differs from reference"),
            FailureClass::kStructural);
  EXPECT_EQ(classify_failure("retarget failed: boom"),
            FailureClass::kStructural);
  EXPECT_EQ(classify_failure("round trip: word 3: bits do not satisfy..."),
            FailureClass::kDecode);
  EXPECT_EQ(classify_failure("semantic decode: simulator: word 1 ..."),
            FailureClass::kDecode);
  EXPECT_EQ(classify_failure("semantic: register 'R0' ..."),
            FailureClass::kSemantic);
  EXPECT_EQ(to_string(FailureClass::kSemantic), "semantic");
}

TEST(Repro, FileRoundTrip) {
  Repro r;
  r.model_seed = 18446744073709551615ull;  // > 2^53: must survive JSON
  r.program_seed = 2;
  r.model = "gen42";
  r.knobs = "regs=2x16";
  r.hdl = "PROCESSOR gen42;\n";
  r.kernel = "kernel k;\nbind a: R0;\na = (a + 1);\n";
  r.failure = "listing differs \"quoted\"";
  r.failure_class = "structural";
  r.spill_base = 16;
  r.spill_slots = 8;
  std::string path =
      (std::filesystem::temp_directory_path() / "record-testgen-repro.json")
          .string();
  ASSERT_TRUE(write_repro(path, r));
  auto back = load_repro(path);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->model_seed, r.model_seed);
  EXPECT_EQ(back->program_seed, r.program_seed);
  EXPECT_EQ(back->model, r.model);
  EXPECT_EQ(back->hdl, r.hdl);
  EXPECT_EQ(back->kernel, r.kernel);
  EXPECT_EQ(back->failure, r.failure);
  EXPECT_EQ(back->failure_class, "structural");
  EXPECT_EQ(back->spill_base, 16);
  EXPECT_EQ(back->spill_slots, 8);
  std::remove(path.c_str());
  EXPECT_FALSE(load_repro(path));
}

// --- grammar/table edge cases the generator surfaces ------------------------

using grammar::kStart;
using grammar::NtId;
using grammar::pat_nonterm;
using grammar::pat_term;
using grammar::PatNodePtr;
using grammar::RuleKind;
using grammar::TermId;
using grammar::TreeGrammar;

/// Both engines must agree on `tree` (parse flag, root cost).
void expect_agreement(const TreeGrammar& g, const burstab::TargetTables& tb,
                      const treeparse::SubjectTree& tree) {
  treeparse::TreeParser interp(g);
  burstab::TableParser tabular(g, tb);
  treeparse::LabelResult a = interp.label(tree);
  treeparse::LabelResult b = tabular.label(tree);
  EXPECT_EQ(a.ok, b.ok) << tree.to_string(g);
  EXPECT_EQ(a.root_cost, b.root_cost) << tree.to_string(g);
}

TEST(GrammarEdge, ZeroRuleNonterminalIsInertInBothEngines) {
  // nt:DEAD has no rules at all, yet appears on an RHS — the exact shape a
  // generated model yields when a storage is reachable as an operand but
  // never writable. Table construction must not loop or crash, and trees
  // needing the dead nonterminal are unparseable in both engines.
  TreeGrammar g;
  NtId nt_a = g.intern_nonterminal("nt:A");
  NtId nt_dead = g.intern_nonterminal("nt:DEAD");
  TermId t_dest = g.intern_terminal("$dest:A");
  TermId t_reg = g.intern_terminal("$reg:A");
  TermId t_plus = g.intern_terminal("plus");
  {
    std::vector<PatNodePtr> kids;
    kids.push_back(pat_term(t_dest, {}));
    kids.push_back(pat_nonterm(nt_a));
    g.add_rule(kStart, pat_term(g.assign_terminal(), std::move(kids)), 0,
               RuleKind::Start);
  }
  {
    std::vector<PatNodePtr> kids;
    kids.push_back(pat_nonterm(nt_a));
    kids.push_back(pat_nonterm(nt_dead));  // never derivable
    g.add_rule(nt_a, pat_term(t_plus, std::move(kids)), 1, RuleKind::RT, 0);
  }
  g.add_rule(nt_a, pat_term(t_reg, {}), 0, RuleKind::Stop);

  burstab::TargetTables tables(g);
  // reg alone parses; plus(reg, reg) needs nt:DEAD on the right and must not.
  {
    treeparse::SubjectTree t;
    auto* dest = t.make(t_dest);
    auto* value = t.make(t_reg);
    t.set_root(t.make(g.assign_terminal(), {dest, value}));
    expect_agreement(g, tables, t);
    treeparse::TreeParser interp(g);
    EXPECT_TRUE(interp.label(t).ok);
  }
  {
    treeparse::SubjectTree t;
    auto* dest = t.make(t_dest);
    auto* l = t.make(t_reg);
    auto* r = t.make(t_reg);
    auto* plus = t.make(t_plus, {l, r});
    t.set_root(t.make(g.assign_terminal(), {dest, plus}));
    expect_agreement(g, tables, t);
    treeparse::TreeParser interp(g);
    EXPECT_FALSE(interp.label(t).ok);
  }
}

TEST(GrammarEdge, DuplicateSignatureStatesAreShared) {
  // Two nonterminals with byte-identical rule sets (symmetric registers, the
  // generated models' default) must collapse onto shared table states: the
  // state count may not grow with the duplication factor.
  auto build = [](int copies) {
    auto g = std::make_unique<TreeGrammar>();
    TermId t_dest = g->intern_terminal("$dest:A");
    TermId t_plus = g->intern_terminal("plus");
    NtId first = -1;
    for (int i = 0; i < copies; ++i) {
      NtId nt = g->intern_nonterminal("nt:R" + std::to_string(i));
      if (first < 0) first = nt;
      TermId t_reg = g->intern_terminal("$reg:R" + std::to_string(i));
      std::vector<PatNodePtr> kids;
      kids.push_back(pat_term(t_dest, {}));
      kids.push_back(pat_nonterm(nt));
      g->add_rule(kStart, pat_term(g->assign_terminal(), std::move(kids)), 0,
                  RuleKind::Start);
      std::vector<PatNodePtr> okids;
      okids.push_back(pat_nonterm(nt));
      okids.push_back(pat_nonterm(nt));
      g->add_rule(nt, pat_term(t_plus, std::move(okids)), 1, RuleKind::RT, i);
      g->add_rule(nt, pat_term(t_reg, {}), 0, RuleKind::Stop);
    }
    return g;
  };
  auto g1 = build(1);
  auto g4 = build(4);
  burstab::TargetTables t1(*g1);
  burstab::TargetTables t4(*g4);
  EXPECT_GT(t1.stats().states, 0u);
  // Duplicated structure must not blow the state space combinatorially.
  EXPECT_LE(t4.stats().states, t1.stats().states * 4 + 4);
  // And parsing agrees on a symmetric subject.
  treeparse::SubjectTree t;
  auto* dest = t.make(g4->find_terminal("$dest:A"));
  auto* l = t.make(g4->find_terminal("$reg:R2"));
  auto* r = t.make(g4->find_terminal("$reg:R2"));
  auto* plus = t.make(g4->find_terminal("plus"), {l, r});
  t.set_root(t.make(g4->assign_terminal(), {dest, plus}));
  expect_agreement(*g4, t4, t);
}

TEST(GrammarEdge, UnreachableOpFailsIdenticallyOnGeneratedModel) {
  // gen2's ALU draws + - | : the grammar contains no '*' terminal at the
  // datapath width, so a multiply kernel is rejected by BOTH engines with a
  // diagnostic, not a crash or a divergence.
  GeneratedModel m = generate_model(2);
  bool has_mul = false;
  for (hdl::OpKind op : m.program_ops)
    if (op == hdl::OpKind::Mul) has_mul = true;
  ASSERT_FALSE(has_mul);
  util::DiagnosticSink d;
  auto prog = ir::parse_kernel(
      "kernel mulk;\nbind a: R0;\nbind b: R1;\na = w8((a * b));\n", d);
  ASSERT_TRUE(prog) << d.str();
  OracleReport rep = check_pair(m.hdl, *prog, oracle_options(m));
  EXPECT_TRUE(rep.agree) << rep.failure;
  EXPECT_FALSE(rep.compiled);
}

// --- deterministic replay of checked-in generated models --------------------

class CheckedInModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckedInModel, MatchesGeneratorAndPassesOracle) {
  std::uint64_t seed = GetParam();
  std::string path =
      std::string(RECORD_TESTS_DIR) + "/data/gen" + std::to_string(seed) +
      ".hdl";
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();

  // The checked-in dump pins the generator: regeneration must be
  // byte-identical (seed-replay workflow; see tests/README.md).
  GeneratedModel m = generate_model(seed);
  EXPECT_EQ(buf.str(), m.hdl)
      << "generator drifted from tests/data fixture for seed " << seed
      << " — intentional? regenerate the dump and note it in the PR";

  GeneratedProgram gp = generate_program(m, 0);
  OracleReport rep = check_pair(m.hdl, gp.program, oracle_options(m));
  EXPECT_TRUE(rep.agree) << rep.failure << "\n" << gp.kernel;
}

// Seeds 9, 12 and 53 pin the multi-issue generator across its shape space:
// 2 slots + mode-switched ALU + a branch delay slot, 3 slots + mode, and a
// plain 4-slot machine with a PC. Seeds 0, 2 and 4 predate multi-issue
// (0 and 4 now draw extra slots; 2 stays single-issue, witnessing that the
// second knob stream leaves classic models byte-identical).
INSTANTIATE_TEST_SUITE_P(Fixtures, CheckedInModel,
                         ::testing::Values(0ull, 2ull, 4ull, 9ull, 12ull,
                                           53ull));

TEST(MultiIssuePins, PinnedSeedsCoverTheKnobSpace) {
  GeneratedModel m9 = generate_model(9);
  EXPECT_EQ(m9.knobs.issue_slots, 2);
  EXPECT_TRUE(m9.knobs.mode_alu);
  EXPECT_EQ(m9.knobs.branch_delay, 1);
  EXPECT_EQ(m9.branch_delay, 1);
  GeneratedModel m12 = generate_model(12);
  EXPECT_EQ(m12.knobs.issue_slots, 3);
  EXPECT_TRUE(m12.knobs.mode_alu);
  EXPECT_EQ(m12.knobs.branch_delay, 0);
  GeneratedModel m53 = generate_model(53);
  EXPECT_EQ(m53.knobs.issue_slots, 4);
  EXPECT_FALSE(m53.knobs.mode_alu);
  EXPECT_TRUE(m53.knobs.has_pc);
  // And the classic witness: seed 2 drew no extra slots, so its HDL must
  // not even mention the slot machinery.
  GeneratedModel m2 = generate_model(2);
  EXPECT_EQ(m2.knobs.issue_slots, 1);
  EXPECT_EQ(m2.hdl.find("salu"), std::string::npos);
}

}  // namespace
}  // namespace record::testgen
