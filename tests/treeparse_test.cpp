#include <gtest/gtest.h>

#include "grammar/grammar.h"
#include "treeparse/burs.h"
#include "treeparse/emitc.h"
#include "treeparse/subject.h"

namespace record::treeparse {
namespace {

using grammar::kStart;
using grammar::NtId;
using grammar::pat_const_leaf;
using grammar::pat_imm;
using grammar::pat_nonterm;
using grammar::pat_term;
using grammar::PatNodePtr;
using grammar::RuleKind;
using grammar::TermId;
using grammar::TreeGrammar;

/// Classic BURS example grammar, accumulator style:
///   START -> ASSIGN($dest:A, nt:A)                cost 0
///   nt:A -> plus(nt:A, nt:B)                      cost 1   (ADD)
///   nt:A -> load(nt:B)                            cost 1   (LOAD via B)
///   nt:A -> $reg:A                                cost 0   (stop)
///   nt:B -> #imm4                                 cost 1   (LDI)
///   nt:B -> nt:A                                  cost 1   (MOVE, chain)
///   nt:B -> $reg:B                                cost 0   (stop)
struct Fixture {
  TreeGrammar g;
  TermId t_dest_a, t_reg_a, t_reg_b, t_plus, t_load;
  NtId nt_a, nt_b;

  Fixture() {
    nt_a = g.intern_nonterminal("nt:A");
    nt_b = g.intern_nonterminal("nt:B");
    t_dest_a = g.intern_terminal("$dest:A");
    t_reg_a = g.intern_terminal("$reg:A");
    t_reg_b = g.intern_terminal("$reg:B");
    t_plus = g.intern_terminal("plus");
    t_load = g.intern_terminal("load");

    {
      std::vector<PatNodePtr> kids;
      kids.push_back(pat_term(t_dest_a, {}));
      kids.push_back(pat_nonterm(nt_a));
      g.add_rule(kStart, pat_term(g.assign_terminal(), std::move(kids)), 0,
                 RuleKind::Start);
    }
    {
      std::vector<PatNodePtr> kids;
      kids.push_back(pat_nonterm(nt_a));
      kids.push_back(pat_nonterm(nt_b));
      g.add_rule(nt_a, pat_term(t_plus, std::move(kids)), 1, RuleKind::RT,
                 /*template_id=*/0);
    }
    {
      std::vector<PatNodePtr> kids;
      kids.push_back(pat_nonterm(nt_b));
      g.add_rule(nt_a, pat_term(t_load, std::move(kids)), 1, RuleKind::RT,
                 1);
    }
    g.add_rule(nt_a, pat_term(t_reg_a, {}), 0, RuleKind::Stop);
    g.add_rule(nt_b, pat_imm({0, 1, 2, 3}), 1, RuleKind::RT, 2);
    g.add_rule(nt_b, pat_nonterm(nt_a), 1, RuleKind::RT, 3);  // chain
    g.add_rule(nt_b, pat_term(t_reg_b, {}), 0, RuleKind::Stop);
  }
};

TEST(Burs, LeafLabelling) {
  Fixture f;
  SubjectTree t;
  t.set_root(t.make(f.t_reg_a));
  TreeParser parser(f.g);
  LabelResult r = parser.label(t);
  EXPECT_EQ(r.at(0, static_cast<std::size_t>(f.nt_a)).cost, 0);  // stop rule
  // Chain closure: nt:B reachable via MOVE.
  EXPECT_EQ(r.at(0, static_cast<std::size_t>(f.nt_b)).cost, 1);
}

TEST(Burs, OptimalCostForAssign) {
  Fixture f;
  SubjectTree t;
  // A := plus(A, imm 5): ADD + LDI = 2.
  SubjectNode* dest = t.make(f.t_dest_a);
  SubjectNode* rega = t.make(f.t_reg_a);
  SubjectNode* imm = t.make_const(f.g.const_terminal(), 5);
  SubjectNode* plus = t.make(f.t_plus, {rega, imm});
  t.set_root(t.make(f.g.assign_terminal(), {dest, plus}));
  TreeParser parser(f.g);
  LabelResult r = parser.label(t);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.root_cost, 2);
}

TEST(Burs, ImmediateWidthLimitsMatching) {
  Fixture f;
  TreeParser parser(f.g);
  for (std::int64_t v : {0, 7, 15, -8}) {
    SubjectTree t;
    SubjectNode* dest = t.make(f.t_dest_a);
    SubjectNode* load =
        t.make(f.t_load, {t.make_const(f.g.const_terminal(), v)});
    t.set_root(t.make(f.g.assign_terminal(), {dest, load}));
    EXPECT_TRUE(parser.label(t).ok) << v;
  }
  // 77 does not fit 4 bits (even signed): no derivation.
  SubjectTree t;
  SubjectNode* dest = t.make(f.t_dest_a);
  SubjectNode* load =
      t.make(f.t_load, {t.make_const(f.g.const_terminal(), 77)});
  t.set_root(t.make(f.g.assign_terminal(), {dest, load}));
  EXPECT_FALSE(parser.label(t).ok);
}

TEST(Burs, ImmediateFitsRule) {
  EXPECT_TRUE(TreeParser::immediate_fits(15, 4));
  EXPECT_TRUE(TreeParser::immediate_fits(-8, 4));
  EXPECT_FALSE(TreeParser::immediate_fits(16, 4));
  EXPECT_FALSE(TreeParser::immediate_fits(-9, 4));
  EXPECT_TRUE(TreeParser::immediate_fits(1, 1));
}

TEST(Burs, ChainRulesCompose) {
  Fixture f;
  SubjectTree t;
  // A := plus(A, B-as-A-value): plus's right child is $reg:A, which must
  // reach nt:B through the chain nt:B -> nt:A.
  SubjectNode* dest = t.make(f.t_dest_a);
  SubjectNode* lhs = t.make(f.t_reg_a);
  SubjectNode* rhs = t.make(f.t_reg_a);
  SubjectNode* plus = t.make(f.t_plus, {lhs, rhs});
  t.set_root(t.make(f.g.assign_terminal(), {dest, plus}));
  TreeParser parser(f.g);
  LabelResult r = parser.label(t);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.root_cost, 2);  // ADD + MOVE
}

TEST(Burs, ReduceProducesDerivationTree) {
  Fixture f;
  SubjectTree t;
  SubjectNode* dest = t.make(f.t_dest_a);
  SubjectNode* rega = t.make(f.t_reg_a);
  SubjectNode* imm = t.make_const(f.g.const_terminal(), 3);
  SubjectNode* plus = t.make(f.t_plus, {rega, imm});
  t.set_root(t.make(f.g.assign_terminal(), {dest, plus}));
  TreeParser parser(f.g);
  DerivationArena arena;
  Derivation* derivation = parser.parse(t, arena);
  ASSERT_NE(derivation, nullptr);
  // START rule at the root; its child is the ADD rule.
  EXPECT_EQ(f.g.rule(derivation->rule).kind, RuleKind::Start);
  ASSERT_EQ(derivation->children.size(), 1u);
  const Derivation& add = *derivation->children[0];
  EXPECT_EQ(f.g.rule(add.rule).template_id, 0);
  ASSERT_EQ(add.children.size(), 2u);
  // Second operand: LDI with the immediate recorded.
  const Derivation& ldi = *add.children[1];
  EXPECT_EQ(f.g.rule(ldi.rule).template_id, 2);
  ASSERT_EQ(ldi.imms.size(), 1u);
  EXPECT_EQ(ldi.imms[0].value, 3);
  EXPECT_EQ(*ldi.imms[0].field_bits, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Burs, UnparseableTreeReturnsNull) {
  Fixture f;
  SubjectTree t;
  TermId alien = f.g.intern_terminal("alien");
  t.set_root(t.make(alien));
  TreeParser parser(f.g);
  DerivationArena arena;
  EXPECT_EQ(parser.parse(t, arena), nullptr);
}

TEST(Burs, DerivationApplicationCount) {
  Fixture f;
  SubjectTree t;
  SubjectNode* dest = t.make(f.t_dest_a);
  SubjectNode* load =
      t.make(f.t_load, {t.make_const(f.g.const_terminal(), 1)});
  t.set_root(t.make(f.g.assign_terminal(), {dest, load}));
  TreeParser parser(f.g);
  DerivationArena arena;
  Derivation* d = parser.parse(t, arena);
  ASSERT_NE(d, nullptr);
  // START + LOAD + LDI = 3 applications.
  EXPECT_EQ(d->application_count(), 3u);
}

// Property sweep: left-leaning plus-chains of depth n must cost exactly
// n (ADDs) + 1 (LDI for the single immediate leaf) + chain moves, and
// labelling must stay linear (every node visited once).
class BursChainProperty : public ::testing::TestWithParam<int> {};

TEST_P(BursChainProperty, ChainCostGrowsLinearly) {
  int depth = GetParam();
  Fixture f;
  SubjectTree t;
  SubjectNode* acc = t.make(f.t_reg_a);
  for (int i = 0; i < depth; ++i) {
    SubjectNode* imm = t.make_const(f.g.const_terminal(), i % 14);
    acc = t.make(f.t_plus, {acc, imm});
  }
  SubjectNode* dest = t.make(f.t_dest_a);
  t.set_root(t.make(f.g.assign_terminal(), {dest, acc}));
  TreeParser parser(f.g);
  LabelResult r = parser.label(t);
  ASSERT_TRUE(r.ok);
  // Each level: 1 ADD + 1 LDI.
  EXPECT_EQ(r.root_cost, 2 * depth);
  DerivationArena arena;
  Derivation* d = parser.reduce(t, r, arena);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->application_count(), 1u + 2u * static_cast<std::size_t>(depth) + 1u);
}

INSTANTIATE_TEST_SUITE_P(Depths, BursChainProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Subject, ToStringRendersTerminals) {
  Fixture f;
  SubjectTree t;
  SubjectNode* dest = t.make(f.t_dest_a);
  SubjectNode* imm = t.make_const(f.g.const_terminal(), 9);
  SubjectNode* load = t.make(f.t_load, {imm});
  t.set_root(t.make(f.g.assign_terminal(), {dest, load}));
  EXPECT_EQ(t.to_string(f.g), "ASSIGN($dest:A, load(9))");
}

TEST(Subject, IdsAreTopological) {
  Fixture f;
  SubjectTree t;
  SubjectNode* a = t.make(f.t_reg_a);
  SubjectNode* b = t.make_const(f.g.const_terminal(), 1);
  SubjectNode* p = t.make(f.t_plus, {a, b});
  EXPECT_LT(a->id, p->id);
  EXPECT_LT(b->id, p->id);
  EXPECT_EQ(t.size(), 3u);
}

TEST(EmitC, GeneratedSourceIsSelfContained) {
  Fixture f;
  EmitCOptions options;
  options.grammar_name = "fixture";
  std::string src = emit_c_parser(f.g, options);
  EXPECT_NE(src.find("#define RULE_COUNT 7"), std::string::npos) << src;
  EXPECT_NE(src.find("burm_label"), std::string::npos);
  EXPECT_NE(src.find("int main(void)"), std::string::npos);
  // Size scales with the rule set (tables emitted per rule).
  EXPECT_GT(src.size(), 2000u);
}

TEST(EmitC, WithoutMainOmitsDriver) {
  Fixture f;
  EmitCOptions options;
  options.with_main = false;
  std::string src = emit_c_parser(f.g, options);
  EXPECT_EQ(src.find("int main"), std::string::npos);
}

}  // namespace
}  // namespace record::treeparse
