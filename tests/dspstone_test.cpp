#include <gtest/gtest.h>

#include "baseline/baseline.h"
#include "core/compiler.h"
#include "core/record.h"
#include "dspstone/handcode.h"
#include "dspstone/kernels.h"
#include "sim/check.h"

namespace record::dspstone {
namespace {

const core::RetargetResult& c25() {
  static const core::RetargetResult target = [] {
    util::DiagnosticSink diags;
    auto r = core::Record::retarget_model("tms320c25",
                                          core::RetargetOptions{}, diags);
    EXPECT_TRUE(r) << diags.str();
    return std::move(*r);
  }();
  return target;
}

const core::RetargetResult& c25_plain() {
  static const core::RetargetResult target = [] {
    util::DiagnosticSink diags;
    core::RetargetOptions options;
    options.commutativity = false;
    options.standard_rewrites = false;
    auto r = core::Record::retarget_model("tms320c25", options, diags);
    EXPECT_TRUE(r) << diags.str();
    return std::move(*r);
  }();
  return target;
}

TEST(Kernels, TenKernelsRegistered) {
  EXPECT_EQ(kernel_names().size(), 10u);
}

TEST(Kernels, UnknownNameThrows) {
  EXPECT_THROW((void)kernel("fft"), std::invalid_argument);
}

TEST(Kernels, AllValidateAgainstBindings) {
  for (const std::string& name : kernel_names()) {
    ir::Program prog = kernel(name);
    util::DiagnosticSink diags;
    EXPECT_TRUE(prog.validate(diags)) << name << ": " << diags.str();
  }
}

TEST(HandCode, EveryKernelHasReference) {
  for (const std::string& name : kernel_names()) {
    EXPECT_GT(hand_code_size(name), 0) << name;
  }
  EXPECT_EQ(hand_code_size("fft"), -1);
}

TEST(HandCode, DocumentedSequencesMatchCounts) {
  // The semicolon-separated instruction list must contain exactly `words`
  // instructions for the straight-line kernels (the N-fold entries document
  // the multiplier instead).
  for (const HandCode& h : hand_code()) {
    if (h.assembly.find(" x ") != std::string_view::npos) continue;
    int count = 1;
    for (char c : h.assembly)
      if (c == ';') ++count;
    EXPECT_EQ(count, h.words) << h.kernel;
  }
}

/// Compiles a kernel with the full RECORD pipeline.
std::size_t record_size(const std::string& name) {
  core::Compiler compiler(c25());
  util::DiagnosticSink diags;
  auto result =
      compiler.compile(kernel(name), core::CompileOptions{}, diags);
  EXPECT_TRUE(result) << name << ": " << diags.str();
  return result ? result->code_size() : 0;
}

std::size_t baseline_size(const std::string& name) {
  util::DiagnosticSink diags;
  auto result = baseline::compile_baseline(c25_plain(), kernel(name),
                                           baseline::BaselineOptions{},
                                           diags);
  EXPECT_TRUE(result) << name << ": " << diags.str();
  return result ? result->code_size() : 0;
}

class KernelCompile : public ::testing::TestWithParam<const char*> {};

TEST_P(KernelCompile, RecordStaysNearHandCode) {
  std::string name = GetParam();
  std::size_t rec = record_size(name);
  int hand = hand_code_size(name);
  ASSERT_GT(rec, 0u);
  ASSERT_GT(hand, 0);
  double ratio = static_cast<double>(rec) / hand;
  // Paper figure 2: RECORD shows low overhead vs hand code.
  EXPECT_LE(ratio, 1.25) << name << ": record=" << rec << " hand=" << hand;
  EXPECT_GE(ratio, 0.75) << name << ": suspiciously small";
}

TEST_P(KernelCompile, BaselineIsWorseThanRecord) {
  std::string name = GetParam();
  std::size_t rec = record_size(name);
  std::size_t base = baseline_size(name);
  ASSERT_GT(base, 0u);
  // The vendor-style baseline must lose on every kernel (figure 2 shape).
  EXPECT_GT(base, rec) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Figure2, KernelCompile,
    ::testing::Values("real_update", "complex_mult", "complex_update",
                      "n_real_updates", "n_complex_updates", "fir",
                      "biquad_one", "biquad_N", "dot_product",
                      "convolution"));

TEST(Figure2Shape, SumOfProductsKernelsMatchHandExactly) {
  // fir / dot_product / convolution hit the hand-written MAC idiom exactly
  // (ZAC/PAC + LT/MPYA chains).
  EXPECT_EQ(record_size("fir"), 11u);
  EXPECT_EQ(record_size("dot_product"), 11u);
  EXPECT_EQ(record_size("convolution"), 11u);
}

TEST(Figure2Shape, BaselineOverheadIsSubstantial) {
  // Aggregate overhead of the vendor-style baseline across all kernels:
  // paper bars range from ~150% to ~700%; our baseline must exceed 130%
  // on aggregate to preserve the figure's message.
  std::size_t rec_total = 0, base_total = 0;
  for (const std::string& name : kernel_names()) {
    rec_total += record_size(name);
    base_total += baseline_size(name);
  }
  EXPECT_GT(base_total, rec_total * 13 / 10);
}

// --- executable semantics: the kernels under the RT-level simulator ---------

/// Compiles `name` and runs the semantic oracle with the given initial ram
/// cells (everything else reads sim::initial_value). A kernel that fails to
/// compile yields a kSkipped report carrying the diagnostics.
sim::CheckReport run_kernel(
    const std::string& name,
    const std::vector<std::pair<std::int64_t, std::int64_t>>& ram = {}) {
  core::Compiler compiler(c25());
  util::DiagnosticSink diags;
  ir::Program prog = kernel(name);
  auto result = compiler.compile(prog, core::CompileOptions{}, diags);
  EXPECT_TRUE(result) << name << ": " << diags.str();
  if (!result) {
    sim::CheckReport failed;
    failed.detail = "compile failed: " + diags.str();
    return failed;
  }
  sim::CheckOptions opts;
  for (const auto& [cell, value] : ram)
    opts.init_mem.emplace_back("ram", cell, value);
  return sim::check_semantics(prog, *result, c25(), opts);
}

class KernelSemantics : public ::testing::TestWithParam<const char*> {};

TEST_P(KernelSemantics, SimulatorMatchesReferenceEvaluator) {
  // Every emitted instruction stream, executed bit-by-bit on the modeled
  // TMS320C25 datapath, must leave exactly the state the IR kernel means —
  // from pseudo-random initial memory, so nothing hides in zeros.
  sim::CheckReport rep = run_kernel(GetParam());
  EXPECT_EQ(rep.status, sim::CheckStatus::kAgree)
      << GetParam() << ": " << rep.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Figure2, KernelSemantics,
    ::testing::Values("real_update", "complex_mult", "complex_update",
                      "n_real_updates", "n_complex_updates", "fir",
                      "biquad_one", "biquad_N", "dot_product",
                      "convolution"));

TEST(KernelSemanticsPinned, RealUpdateComputesDEqualsCPlusAB) {
  // The hand-code reference sequence "LT a; MPY b; PAC; ADD c; SACL d"
  // computes d = c + a*b; pin the simulated machine to those values.
  using namespace layout;
  sim::CheckReport rep =
      run_kernel("real_update", {{kA, 3}, {kB, -2}, {kC, 7}});
  ASSERT_EQ(rep.status, sim::CheckStatus::kAgree) << rep.detail;
  EXPECT_EQ(rep.sim.state.read_mem("ram", kD), 7 + 3 * -2);
  EXPECT_EQ(rep.eval.state.read_mem("ram", kD), 1);
}

TEST(KernelSemanticsPinned, ComplexMultComputesBothComponents) {
  // (2 + 3i) * (4 + 5i) = -7 + 22i, per the LT/MPY/PAC/SPAC/APAC hand
  // sequence; the -7 must land as a sign-extended 16-bit cell.
  using namespace layout;
  sim::CheckReport rep = run_kernel(
      "complex_mult",
      {{kAr, 2}, {kAi, 3}, {kBr, 4}, {kBi, 5}});
  ASSERT_EQ(rep.status, sim::CheckStatus::kAgree) << rep.detail;
  EXPECT_EQ(rep.sim.state.read_mem("ram", kCr), -7);
  EXPECT_EQ(rep.sim.state.read_mem("ram", kCi), 22);
}

TEST(KernelSemanticsPinned, FirAccumulatesTheDotProduct) {
  // y = sum x[i]*h[i] = 1*5 + 2*6 + 3*7 + 4*8 = 70, the ZAC/LT/MPYA chain
  // of the hand code; the 32-bit ACC carries the full sum, the store its
  // low half.
  using namespace layout;
  sim::CheckReport rep = run_kernel(
      "fir", {{kX + 0, 1}, {kX + 1, 2}, {kX + 2, 3}, {kX + 3, 4},
              {kH + 0, 5}, {kH + 1, 6}, {kH + 2, 7}, {kH + 3, 8}});
  ASSERT_EQ(rep.status, sim::CheckStatus::kAgree) << rep.detail;
  EXPECT_EQ(rep.sim.state.read_reg("ACC"), 70);
  EXPECT_EQ(rep.sim.state.read_mem("ram", kY), 70);
}

TEST(Baseline, ThreeAddressLoweringInsertsTemps) {
  ir::Program fir = kernel("fir");
  ir::Program lowered = baseline::lower_three_address(
      fir, *c25_plain().base, baseline::BaselineOptions{});
  EXPECT_GT(lowered.stmts().size(), fir.stmts().size());
  bool has_temp = false;
  for (const auto& [var, bind] : lowered.bindings())
    if (var.rfind("__bt", 0) == 0) {
      has_temp = true;
      EXPECT_EQ(bind.kind, ir::Binding::Kind::MemCell);
    }
  EXPECT_TRUE(has_temp);
}

TEST(Baseline, PreservesBranchesAndLabels) {
  ir::Program p("loop");
  p.bind_register("i", "AR1");
  p.label("top");
  p.assign("i", ir::e_sub(ir::e_var("i"), ir::e_const(1)));
  p.branch_if_not_zero("i", "top");
  ir::Program lowered = baseline::lower_three_address(
      p, *c25_plain().base, baseline::BaselineOptions{});
  bool has_label = false, has_branch = false;
  for (const ir::Stmt& s : lowered.stmts()) {
    if (s.kind == ir::Stmt::Kind::LabelDef) has_label = true;
    if (s.kind == ir::Stmt::Kind::Branch) has_branch = true;
  }
  EXPECT_TRUE(has_label);
  EXPECT_TRUE(has_branch);
}

}  // namespace
}  // namespace record::dspstone
