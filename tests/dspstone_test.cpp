#include <gtest/gtest.h>

#include "baseline/baseline.h"
#include "core/compiler.h"
#include "core/record.h"
#include "dspstone/handcode.h"
#include "dspstone/kernels.h"

namespace record::dspstone {
namespace {

const core::RetargetResult& c25() {
  static const core::RetargetResult target = [] {
    util::DiagnosticSink diags;
    auto r = core::Record::retarget_model("tms320c25",
                                          core::RetargetOptions{}, diags);
    EXPECT_TRUE(r) << diags.str();
    return std::move(*r);
  }();
  return target;
}

const core::RetargetResult& c25_plain() {
  static const core::RetargetResult target = [] {
    util::DiagnosticSink diags;
    core::RetargetOptions options;
    options.commutativity = false;
    options.standard_rewrites = false;
    auto r = core::Record::retarget_model("tms320c25", options, diags);
    EXPECT_TRUE(r) << diags.str();
    return std::move(*r);
  }();
  return target;
}

TEST(Kernels, TenKernelsRegistered) {
  EXPECT_EQ(kernel_names().size(), 10u);
}

TEST(Kernels, UnknownNameThrows) {
  EXPECT_THROW((void)kernel("fft"), std::invalid_argument);
}

TEST(Kernels, AllValidateAgainstBindings) {
  for (const std::string& name : kernel_names()) {
    ir::Program prog = kernel(name);
    util::DiagnosticSink diags;
    EXPECT_TRUE(prog.validate(diags)) << name << ": " << diags.str();
  }
}

TEST(HandCode, EveryKernelHasReference) {
  for (const std::string& name : kernel_names()) {
    EXPECT_GT(hand_code_size(name), 0) << name;
  }
  EXPECT_EQ(hand_code_size("fft"), -1);
}

TEST(HandCode, DocumentedSequencesMatchCounts) {
  // The semicolon-separated instruction list must contain exactly `words`
  // instructions for the straight-line kernels (the N-fold entries document
  // the multiplier instead).
  for (const HandCode& h : hand_code()) {
    if (h.assembly.find(" x ") != std::string_view::npos) continue;
    int count = 1;
    for (char c : h.assembly)
      if (c == ';') ++count;
    EXPECT_EQ(count, h.words) << h.kernel;
  }
}

/// Compiles a kernel with the full RECORD pipeline.
std::size_t record_size(const std::string& name) {
  core::Compiler compiler(c25());
  util::DiagnosticSink diags;
  auto result =
      compiler.compile(kernel(name), core::CompileOptions{}, diags);
  EXPECT_TRUE(result) << name << ": " << diags.str();
  return result ? result->code_size() : 0;
}

std::size_t baseline_size(const std::string& name) {
  util::DiagnosticSink diags;
  auto result = baseline::compile_baseline(c25_plain(), kernel(name),
                                           baseline::BaselineOptions{},
                                           diags);
  EXPECT_TRUE(result) << name << ": " << diags.str();
  return result ? result->code_size() : 0;
}

class KernelCompile : public ::testing::TestWithParam<const char*> {};

TEST_P(KernelCompile, RecordStaysNearHandCode) {
  std::string name = GetParam();
  std::size_t rec = record_size(name);
  int hand = hand_code_size(name);
  ASSERT_GT(rec, 0u);
  ASSERT_GT(hand, 0);
  double ratio = static_cast<double>(rec) / hand;
  // Paper figure 2: RECORD shows low overhead vs hand code.
  EXPECT_LE(ratio, 1.25) << name << ": record=" << rec << " hand=" << hand;
  EXPECT_GE(ratio, 0.75) << name << ": suspiciously small";
}

TEST_P(KernelCompile, BaselineIsWorseThanRecord) {
  std::string name = GetParam();
  std::size_t rec = record_size(name);
  std::size_t base = baseline_size(name);
  ASSERT_GT(base, 0u);
  // The vendor-style baseline must lose on every kernel (figure 2 shape).
  EXPECT_GT(base, rec) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Figure2, KernelCompile,
    ::testing::Values("real_update", "complex_mult", "complex_update",
                      "n_real_updates", "n_complex_updates", "fir",
                      "biquad_one", "biquad_N", "dot_product",
                      "convolution"));

TEST(Figure2Shape, SumOfProductsKernelsMatchHandExactly) {
  // fir / dot_product / convolution hit the hand-written MAC idiom exactly
  // (ZAC/PAC + LT/MPYA chains).
  EXPECT_EQ(record_size("fir"), 11u);
  EXPECT_EQ(record_size("dot_product"), 11u);
  EXPECT_EQ(record_size("convolution"), 11u);
}

TEST(Figure2Shape, BaselineOverheadIsSubstantial) {
  // Aggregate overhead of the vendor-style baseline across all kernels:
  // paper bars range from ~150% to ~700%; our baseline must exceed 130%
  // on aggregate to preserve the figure's message.
  std::size_t rec_total = 0, base_total = 0;
  for (const std::string& name : kernel_names()) {
    rec_total += record_size(name);
    base_total += baseline_size(name);
  }
  EXPECT_GT(base_total, rec_total * 13 / 10);
}

TEST(Baseline, ThreeAddressLoweringInsertsTemps) {
  ir::Program fir = kernel("fir");
  ir::Program lowered = baseline::lower_three_address(
      fir, *c25_plain().base, baseline::BaselineOptions{});
  EXPECT_GT(lowered.stmts().size(), fir.stmts().size());
  bool has_temp = false;
  for (const auto& [var, bind] : lowered.bindings())
    if (var.rfind("__bt", 0) == 0) {
      has_temp = true;
      EXPECT_EQ(bind.kind, ir::Binding::Kind::MemCell);
    }
  EXPECT_TRUE(has_temp);
}

TEST(Baseline, PreservesBranchesAndLabels) {
  ir::Program p("loop");
  p.bind_register("i", "AR1");
  p.label("top");
  p.assign("i", ir::e_sub(ir::e_var("i"), ir::e_const(1)));
  p.branch_if_not_zero("i", "top");
  ir::Program lowered = baseline::lower_three_address(
      p, *c25_plain().base, baseline::BaselineOptions{});
  bool has_label = false, has_branch = false;
  for (const ir::Stmt& s : lowered.stmts()) {
    if (s.kind == ir::Stmt::Kind::LabelDef) has_label = true;
    if (s.kind == ir::Stmt::Kind::Branch) has_branch = true;
  }
  EXPECT_TRUE(has_label);
  EXPECT_TRUE(has_branch);
}

}  // namespace
}  // namespace record::dspstone
