#include <gtest/gtest.h>

#include <cstdint>

#include "bdd/bdd.h"

namespace record::bdd {
namespace {

class BddTest : public ::testing::Test {
 protected:
  BddManager mgr;
  int a = mgr.new_var("a");
  int b = mgr.new_var("b");
  int c = mgr.new_var("c");
};

TEST_F(BddTest, ConstantsAreFixedPoints) {
  EXPECT_EQ(mgr.land(kTrue, kTrue), kTrue);
  EXPECT_EQ(mgr.land(kTrue, kFalse), kFalse);
  EXPECT_EQ(mgr.lor(kFalse, kFalse), kFalse);
  EXPECT_EQ(mgr.lnot(kTrue), kFalse);
  EXPECT_EQ(mgr.lnot(kFalse), kTrue);
}

TEST_F(BddTest, VariablesAreCanonical) {
  EXPECT_EQ(mgr.var(a), mgr.var(a));
  EXPECT_NE(mgr.var(a), mgr.var(b));
  EXPECT_EQ(mgr.lnot(mgr.lnot(mgr.var(a))), mgr.var(a));
}

TEST_F(BddTest, AndOrDuality) {
  Ref f = mgr.land(mgr.var(a), mgr.var(b));
  Ref g = mgr.lnot(mgr.lor(mgr.lnot(mgr.var(a)), mgr.lnot(mgr.var(b))));
  EXPECT_EQ(f, g);  // De Morgan, by canonicity
}

TEST_F(BddTest, XorTruthTable) {
  Ref x = mgr.lxor(mgr.var(a), mgr.var(b));
  EXPECT_FALSE(mgr.eval(x, {{a, false}, {b, false}}));
  EXPECT_TRUE(mgr.eval(x, {{a, true}, {b, false}}));
  EXPECT_TRUE(mgr.eval(x, {{a, false}, {b, true}}));
  EXPECT_FALSE(mgr.eval(x, {{a, true}, {b, true}}));
}

TEST_F(BddTest, IteIsShannonExpansion) {
  Ref f = mgr.ite(mgr.var(a), mgr.var(b), mgr.var(c));
  EXPECT_TRUE(mgr.eval(f, {{a, true}, {b, true}}));
  EXPECT_FALSE(mgr.eval(f, {{a, true}, {b, false}, {c, true}}));
  EXPECT_TRUE(mgr.eval(f, {{a, false}, {c, true}}));
}

TEST_F(BddTest, ContradictionCollapsesToFalse) {
  Ref f = mgr.land(mgr.var(a), mgr.lnot(mgr.var(a)));
  EXPECT_EQ(f, kFalse);
  EXPECT_FALSE(mgr.is_sat(f));
}

TEST_F(BddTest, TautologyCollapsesToTrue) {
  Ref f = mgr.lor(mgr.var(a), mgr.lnot(mgr.var(a)));
  EXPECT_EQ(f, kTrue);
  EXPECT_TRUE(mgr.is_tautology(f));
}

TEST_F(BddTest, RestrictFixesVariable) {
  Ref f = mgr.land(mgr.var(a), mgr.var(b));
  EXPECT_EQ(mgr.restrict(f, a, true), mgr.var(b));
  EXPECT_EQ(mgr.restrict(f, a, false), kFalse);
}

TEST_F(BddTest, RestrictOnAbsentVariableIsIdentity) {
  Ref f = mgr.land(mgr.var(a), mgr.var(b));
  EXPECT_EQ(mgr.restrict(f, c, true), f);
}

TEST_F(BddTest, ComposeSubstitutesFunction) {
  // f = a & c, compose a <- (b | c): f' = (b | c) & c = c.
  Ref f = mgr.land(mgr.var(a), mgr.var(c));
  Ref g = mgr.lor(mgr.var(b), mgr.var(c));
  EXPECT_EQ(mgr.compose(f, a, g), mgr.var(c));
}

TEST_F(BddTest, ExistsQuantifiesOut) {
  Ref f = mgr.land(mgr.var(a), mgr.var(b));
  EXPECT_EQ(mgr.exists(f, a), mgr.var(b));
  Ref g = mgr.lxor(mgr.var(a), mgr.var(b));
  EXPECT_EQ(mgr.exists(g, a), kTrue);
}

TEST_F(BddTest, ImpliesAndDisjoint) {
  Ref ab = mgr.land(mgr.var(a), mgr.var(b));
  EXPECT_TRUE(mgr.implies(ab, mgr.var(a)));
  EXPECT_FALSE(mgr.implies(mgr.var(a), ab));
  EXPECT_TRUE(mgr.disjoint(mgr.var(a), mgr.lnot(mgr.var(a))));
  EXPECT_FALSE(mgr.disjoint(mgr.var(a), mgr.var(b)));
}

TEST_F(BddTest, AnySatReturnsModel) {
  Ref f = mgr.land(mgr.var(a), mgr.lnot(mgr.var(b)));
  auto model = mgr.any_sat(f);
  ASSERT_TRUE(model.has_value());
  EXPECT_TRUE(mgr.eval(f, *model));
  EXPECT_FALSE(mgr.any_sat(kFalse).has_value());
}

TEST_F(BddTest, SatCountMatchesTruthTable) {
  // a & b over 3 vars: 2 satisfying assignments.
  EXPECT_EQ(mgr.sat_count(mgr.land(mgr.var(a), mgr.var(b)), 3), 2u);
  // a | b over 3 vars: 6.
  EXPECT_EQ(mgr.sat_count(mgr.lor(mgr.var(a), mgr.var(b)), 3), 6u);
  EXPECT_EQ(mgr.sat_count(kTrue, 3), 8u);
  EXPECT_EQ(mgr.sat_count(kFalse, 3), 0u);
}

TEST_F(BddTest, SupportListsDependencies) {
  Ref f = mgr.land(mgr.var(a), mgr.var(c));
  auto support = mgr.support(f);
  ASSERT_EQ(support.size(), 2u);
  EXPECT_EQ(support[0], a);
  EXPECT_EQ(support[1], c);
  EXPECT_TRUE(mgr.support(kTrue).empty());
}

TEST_F(BddTest, RedundantTestsAreReduced) {
  // ite(a, b, b) must not create a node on a.
  Ref f = mgr.ite(mgr.var(a), mgr.var(b), mgr.var(b));
  EXPECT_EQ(f, mgr.var(b));
}

TEST_F(BddTest, ToStringAndSopStable) {
  Ref f = mgr.land(mgr.var(a), mgr.var(b));
  EXPECT_EQ(mgr.to_string(kFalse), "0");
  EXPECT_EQ(mgr.to_string(kTrue), "1");
  EXPECT_EQ(mgr.to_sop(f), "a&b");
  EXPECT_EQ(mgr.to_sop(kTrue), "1");
  EXPECT_EQ(mgr.to_sop(kFalse), "0");
}

TEST_F(BddTest, FindVarByName) {
  EXPECT_EQ(mgr.find_var("b"), b);
  EXPECT_EQ(mgr.find_var("nope"), -1);
}

// Property sweep: for every 3-variable function built from a random-ish
// formula template, BDD evaluation equals direct formula evaluation on all
// 8 assignments.
class BddSemanticsProperty : public ::testing::TestWithParam<int> {};

TEST_P(BddSemanticsProperty, MatchesTruthTableOnAllAssignments) {
  int seed = GetParam();
  BddManager mgr;
  int v0 = mgr.new_var("x0");
  int v1 = mgr.new_var("x1");
  int v2 = mgr.new_var("x2");

  // Deterministic formula family keyed by seed: each 2-bit field picks a
  // connective, each term a variable.
  auto term = [&](int k) { return mgr.var(k % 3 == 0 ? v0 : k % 3 == 1 ? v1 : v2); };
  Ref f = term(seed);
  for (int i = 0; i < 4; ++i) {
    int op = (seed >> (2 * i)) & 3;
    Ref t = term(seed + i + 1);
    if (((seed >> (8 + i)) & 1) != 0) t = mgr.lnot(t);
    switch (op) {
      case 0: f = mgr.land(f, t); break;
      case 1: f = mgr.lor(f, t); break;
      case 2: f = mgr.lxor(f, t); break;
      case 3: f = mgr.ite(f, t, mgr.lnot(t)); break;
    }
  }

  // Reference evaluation: recompute the same formula on booleans.
  auto ref_term = [&](int k, bool x0, bool x1, bool x2) {
    return k % 3 == 0 ? x0 : k % 3 == 1 ? x1 : x2;
  };
  for (int assignment = 0; assignment < 8; ++assignment) {
    bool x0 = assignment & 1, x1 = assignment & 2, x2 = assignment & 4;
    bool expect = ref_term(seed, x0, x1, x2);
    for (int i = 0; i < 4; ++i) {
      int op = (seed >> (2 * i)) & 3;
      bool t = ref_term(seed + i + 1, x0, x1, x2);
      if (((seed >> (8 + i)) & 1) != 0) t = !t;
      switch (op) {
        case 0: expect = expect && t; break;
        case 1: expect = expect || t; break;
        case 2: expect = expect != t; break;
        case 3: expect = expect ? t : !t; break;
      }
    }
    EXPECT_EQ(mgr.eval(f, {{v0, x0}, {v1, x1}, {v2, x2}}), expect)
        << "seed=" << seed << " assignment=" << assignment;
  }
}

INSTANTIATE_TEST_SUITE_P(FormulaFamily, BddSemanticsProperty,
                         ::testing::Range(0, 64));

TEST(BitVec, ConstantRoundTrip) {
  BitVec v = BitVec::constant(0b1011, 4);
  EXPECT_TRUE(v.is_constant());
  EXPECT_EQ(v.constant_value(), 0b1011u);
  EXPECT_EQ(v.width(), 4);
}

TEST(BitVec, SliceAndConcat) {
  BitVec v = BitVec::constant(0xA5, 8);
  BitVec hi = v.slice(7, 4);
  BitVec lo = v.slice(3, 0);
  EXPECT_EQ(hi.constant_value(), 0xAu);
  EXPECT_EQ(lo.constant_value(), 0x5u);
  BitVec back = BitVec::concat(hi, lo);
  EXPECT_EQ(back.constant_value(), 0xA5u);
}

TEST(BitVec, EqualsConstBuildsCondition) {
  BddManager mgr;
  int b0 = mgr.new_var("b0");
  int b1 = mgr.new_var("b1");
  BitVec v(std::vector<Ref>{mgr.var(b0), mgr.var(b1)});
  Ref eq2 = v.equals_const(mgr, 2);  // b1=1, b0=0
  EXPECT_TRUE(mgr.eval(eq2, {{b0, false}, {b1, true}}));
  EXPECT_FALSE(mgr.eval(eq2, {{b0, true}, {b1, true}}));
}

TEST(BitVec, EqualsConstTruncatesValue) {
  BddManager mgr;
  BitVec v = BitVec::constant(1, 1);
  // value 3 truncated to width 1 -> bit0 must be 1.
  EXPECT_EQ(v.equals_const(mgr, 3), kTrue);
}

TEST(BitVec, EqualsSymbolic) {
  BddManager mgr;
  int x = mgr.new_var("x");
  BitVec v1(std::vector<Ref>{mgr.var(x)});
  BitVec v2(std::vector<Ref>{mgr.var(x)});
  EXPECT_EQ(v1.equals(mgr, v2), kTrue);
  BitVec v3(std::vector<Ref>{mgr.lnot(mgr.var(x))});
  EXPECT_EQ(v1.equals(mgr, v3), kFalse);
}

}  // namespace
}  // namespace record::bdd
