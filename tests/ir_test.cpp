#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/expr.h"
#include "ir/kernel_lang.h"
#include "ir/program.h"

namespace record::ir {
namespace {

TEST(IrExpr, FactoriesAndToString) {
  ExprPtr e = e_add(e_var("x"), e_mul(e_var("y"), e_const(3)));
  EXPECT_EQ(to_string(*e), "(x + (y * 3))");
  EXPECT_EQ(tree_size(*e), 5u);
}

TEST(IrExpr, LoadRendering) {
  ExprPtr e = e_load("ram", e_var("p"));
  EXPECT_EQ(to_string(*e), "ram[p]");
}

TEST(IrExpr, IntrinsicsLoHi) {
  ExprPtr lo = e_lo(e_var("acc"));
  EXPECT_EQ(lo->kind, Expr::Kind::OpNode);
  EXPECT_EQ(lo->op, hdl::OpKind::Custom);
  EXPECT_EQ(lo->custom, "lo");
  EXPECT_EQ(to_string(*e_hi(e_var("acc"))), "hi(acc)");
}

TEST(IrExpr, CloneIsDeep) {
  ExprPtr e = e_sub(e_var("a"), e_const(1));
  ExprPtr c = e->clone();
  EXPECT_EQ(to_string(*e), to_string(*c));
  EXPECT_NE(e->args[0].get(), c->args[0].get());
}

TEST(IrProgram, BindingsResolve) {
  Program p("t");
  p.bind_register("acc", "ACC");
  p.bind_mem_cell("x", "ram", 42);
  ASSERT_NE(p.binding_of("acc"), nullptr);
  EXPECT_EQ(p.binding_of("acc")->kind, Binding::Kind::Register);
  EXPECT_EQ(p.binding_of("x")->cell, 42);
  EXPECT_EQ(p.binding_of("ghost"), nullptr);
}

TEST(IrProgram, ValidateCatchesUnboundVariable) {
  Program p("t");
  p.assign("y", e_var("x"));
  util::DiagnosticSink diags;
  EXPECT_FALSE(p.validate(diags));
  EXPECT_NE(diags.str().find("no storage binding"), std::string::npos);
}

TEST(IrProgram, ValidateCatchesUnknownLabel) {
  Program p("t");
  p.branch("nowhere");
  util::DiagnosticSink diags;
  EXPECT_FALSE(p.validate(diags));
  EXPECT_NE(diags.str().find("unknown label"), std::string::npos);
}

TEST(IrProgram, ValidateCatchesDuplicateLabel) {
  Program p("t");
  p.label("L");
  p.label("L");
  util::DiagnosticSink diags;
  EXPECT_FALSE(p.validate(diags));
}

TEST(IrProgram, ValidatesCleanProgram) {
  Program p("t");
  p.bind_register("i", "R1");
  p.label("top");
  p.assign("i", e_sub(e_var("i"), e_const(1)));
  p.branch_if_not_zero("i", "top");
  util::DiagnosticSink diags;
  EXPECT_TRUE(p.validate(diags)) << diags.str();
}

TEST(IrProgram, StmtRendering) {
  Program p("t");
  p.bind_register("a", "ACC");
  p.assign("a", e_const(0));
  p.store("ram", e_const(5), e_var("a"));
  p.label("L");
  p.branch_if_zero("a", "L");
  EXPECT_EQ(p.stmts()[0].str(), "a = 0");
  EXPECT_EQ(p.stmts()[1].str(), "ram[5] = a");
  EXPECT_EQ(p.stmts()[2].str(), "L:");
  EXPECT_EQ(p.stmts()[3].str(), "ifz a goto L");
}

TEST(Builder, LoopLowersToCountedBranch) {
  ProgramBuilder b("k");
  b.reg("acc", "A").reg("lc", "C");
  b.loop("lc", 4, [](ProgramBuilder& body) {
    body.let("acc", ir::e_add(ir::e_var("acc"), ir::e_const(1)));
  });
  Program p = b.take();
  // lc = 4; label; body; lc = lc - 1; ifnz lc goto label.
  ASSERT_EQ(p.stmts().size(), 5u);
  EXPECT_EQ(p.stmts()[0].str(), "lc = 4");
  EXPECT_EQ(p.stmts()[1].kind, Stmt::Kind::LabelDef);
  EXPECT_EQ(p.stmts()[4].kind, Stmt::Kind::Branch);
  util::DiagnosticSink diags;
  EXPECT_TRUE(p.validate(diags)) << diags.str();
}

TEST(Builder, UnrollRepeatsBody) {
  ProgramBuilder b("k");
  b.reg("acc", "A");
  b.unroll(3, [](ProgramBuilder& body, std::int64_t i) {
    body.let("acc", ir::e_const(i));
  });
  EXPECT_EQ(b.program().stmts().size(), 3u);
}

// --- kernel language ---------------------------------------------------------

std::optional<Program> parse_krn(std::string_view src) {
  util::DiagnosticSink diags;
  auto p = parse_kernel(src, diags);
  EXPECT_TRUE(p.has_value()) << diags.str();
  return p;
}

TEST(KernelLang, ParsesDeclarationsAndStatements) {
  auto p = parse_krn(R"(
kernel demo;
bind acc: ACC;
cell x: ram[4];
const N = 3;
acc = x + N;
ram[7] = lo(acc);
)");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->name(), "demo");
  EXPECT_EQ(p->binding_of("acc")->storage, "ACC");
  EXPECT_EQ(p->binding_of("x")->cell, 4);
  ASSERT_EQ(p->stmts().size(), 2u);
  EXPECT_EQ(p->stmts()[0].str(), "acc = (x + 3)");
  EXPECT_EQ(p->stmts()[1].str(), "ram[7] = lo(acc)");
}

TEST(KernelLang, RepeatNeedsLoopreg) {
  util::DiagnosticSink diags;
  auto p = parse_kernel(R"(
kernel k;
bind a: A;
repeat 4 { a = a + 1; }
)",
                        diags);
  EXPECT_FALSE(p.has_value());
  EXPECT_NE(diags.str().find("loopreg"), std::string::npos);
}

TEST(KernelLang, RepeatLowersToLoop) {
  auto p = parse_krn(R"(
kernel k;
bind a: A;
loopreg lc: C;
repeat 4 { a = a + 1; }
)");
  ASSERT_TRUE(p);
  // lc = 4; label; a = a+1; lc = lc-1; ifnz.
  ASSERT_EQ(p->stmts().size(), 5u);
  EXPECT_EQ(p->stmts()[4].kind, Stmt::Kind::Branch);
  EXPECT_EQ(p->stmts()[4].branch, BranchKind::IfNotZero);
}

TEST(KernelLang, UnrollExpandsBody) {
  auto p = parse_krn(R"(
kernel k;
bind a: A;
unroll 3 { a = a + 1; }
)");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->stmts().size(), 3u);
}

TEST(KernelLang, UnrollZeroSkipsBody) {
  auto p = parse_krn(R"(
kernel k;
bind a: A;
unroll 0 { a = a + 1; }
a = 7;
)");
  ASSERT_TRUE(p);
  ASSERT_EQ(p->stmts().size(), 1u);
  EXPECT_EQ(p->stmts()[0].str(), "a = 7");
}

TEST(KernelLang, GotoAndLabels) {
  auto p = parse_krn(R"(
kernel k;
bind a: A;
start:
a = a - 1;
ifnz a goto start;
ifz a goto done;
goto start;
done:
)");
  ASSERT_TRUE(p);
  util::DiagnosticSink diags;
  EXPECT_TRUE(p->validate(diags)) << diags.str();
}

TEST(KernelLang, ConstSubstitution) {
  auto p = parse_krn(R"(
kernel k;
bind a: A;
const BASE = 16;
a = mem[BASE];
)");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->stmts()[0].str(), "a = mem[16]");
}

TEST(KernelLang, OperatorPrecedence) {
  auto p = parse_krn(R"(
kernel k;
bind a: A;
a = 1 + 2 * 3 & 4;
)");
  ASSERT_TRUE(p);
  // & binds loosest here: (1 + (2*3)) & 4.
  EXPECT_EQ(p->stmts()[0].str(), "a = ((1 + (2 * 3)) & 4)");
}

TEST(KernelLang, CustomCalls) {
  auto p = parse_krn(R"(
kernel k;
bind a: A;
a = sat(a + 1);
)");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->stmts()[0].str(), "a = sat((a + 1))");
}

TEST(KernelLang, ErrorsAreReported) {
  util::DiagnosticSink diags;
  EXPECT_FALSE(parse_kernel("kernel;", diags).has_value());
  diags.clear();
  EXPECT_FALSE(parse_kernel("kernel k; a = ;", diags).has_value());
  diags.clear();
  EXPECT_FALSE(
      parse_kernel("kernel k; repeat { }", diags).has_value());
}

TEST(KernelLang, WidthCastPinsResultWidth) {
  util::DiagnosticSink diags;
  auto p = parse_kernel(R"(
kernel w;
bind a: A;
a = w16(a * a);
)",
                        diags);
  ASSERT_TRUE(p) << diags.str();
  ASSERT_EQ(p->stmts().size(), 1u);
  EXPECT_EQ(p->stmts()[0].rhs->width_override, 16);
  // A multi-argument or zero-width 'w<N>' name is an ordinary custom call /
  // an error, never a silent no-op cast.
  auto call = parse_kernel("kernel k;\nbind a: A;\na = w8(a, a);\n", diags);
  ASSERT_TRUE(call) << diags.str();
  EXPECT_EQ(call->stmts()[0].rhs->op, hdl::OpKind::Custom);
  diags.clear();
  EXPECT_FALSE(parse_kernel("kernel k;\nbind a: A;\na = w0(a);\n", diags));
  diags.clear();
  EXPECT_FALSE(
      parse_kernel("kernel k;\nbind a: A;\na = w4294967296(a);\n", diags));
}

}  // namespace
}  // namespace record::ir
