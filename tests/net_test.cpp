// Socket front end (src/net/): protocol equivalence against the sequential
// baseline, framing robustness, backpressure, and registry sharding.
#include <gtest/gtest.h>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/server.h"
#include "net/shard.h"
#include "service/json.h"
#include "service/service.h"
#include "service/wire.h"

using namespace record;
using service::Json;

namespace {

constexpr const char* kKernel =
    "kernel k;\\nbind a: R0;\\ncell x: mem[1];\\na = a + x;";

std::string compile_request(const std::string& tag, const std::string& model,
                            bool listing = false) {
  return "{\"model\": \"" + model + "\", \"tag\": \"" + tag +
         "\", \"source\": \"" + kKernel +
         "\", \"options\": {\"listing\": " + (listing ? "true" : "false") +
         "}}";
}

/// Blocking test client over one connection; reads are line-buffered with a
/// receive timeout so a server bug fails the test instead of hanging it.
struct Client {
  int fd = -1;
  std::string buffered;

  static Client connect_tcp(std::uint16_t port) {
    Client c;
    c.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(c.fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(c.fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0)
        << std::strerror(errno);
    c.set_timeout();
    return c;
  }

  static Client connect_unix(const std::string& path) {
    Client c;
    c.fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(c.fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
    EXPECT_EQ(::connect(c.fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0)
        << std::strerror(errno);
    c.set_timeout();
    return c;
  }

  void set_timeout(int seconds = 60) {
    timeval tv{};
    tv.tv_sec = seconds;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }

  void send_line(const std::string& line) {
    std::string framed = line + "\n";
    ASSERT_EQ(::send(fd, framed.data(), framed.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(framed.size()));
  }

  /// One response line (without the newline); empty on EOF/timeout.
  std::string read_line() {
    for (;;) {
      std::size_t nl = buffered.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffered.substr(0, nl);
        buffered.erase(0, nl + 1);
        return line;
      }
      char buf[65536];
      ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n <= 0) return {};
      buffered.append(buf, static_cast<std::size_t>(n));
    }
  }

  void close() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  ~Client() { close(); }
  Client() = default;
  Client(Client&& o) noexcept : fd(o.fd), buffered(std::move(o.buffered)) {
    o.fd = -1;
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
};

/// Responses carry wall-clock timings that legitimately differ between runs;
/// equality is over everything else. Both sides get "times" nulled the same
/// way, then the comparison is on exact bytes.
std::string normalize(const std::string& response_line) {
  std::optional<Json> parsed = Json::parse(response_line);
  if (!parsed) return "<unparseable: " + response_line + ">";
  if (parsed->contains("times")) parsed->set("times", Json());
  return parsed->dump();
}

}  // namespace

TEST(ShardRing, DeterministicAndCovering) {
  net::ShardRing a(4), b(4);
  std::set<std::size_t> owners;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    std::size_t owner = a.owner_of(key * 0x9E3779B97F4A7C15ull);
    EXPECT_EQ(owner, b.owner_of(key * 0x9E3779B97F4A7C15ull));
    EXPECT_LT(owner, 4u);
    owners.insert(owner);
  }
  EXPECT_EQ(owners.size(), 4u) << "some shard owns nothing";

  // Consistent hashing: growing the ring by one shard remaps only part of
  // the key space (modulo hashing would remap ~all of it).
  net::ShardRing grown(5);
  std::size_t moved = 0;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    std::uint64_t k = key * 0x9E3779B97F4A7C15ull;
    if (a.owner_of(k) != grown.owner_of(k)) ++moved;
  }
  EXPECT_LT(moved, 600u) << "ring growth remapped almost everything";
  EXPECT_GT(moved, 0u);
}

TEST(LineServer, PipelinedClientsMatchSequentialBaseline) {
  service::CompileService::Options opts;
  opts.workers = 4;
  opts.queue_capacity = 8;
  service::CompileService svc(opts);
  net::LineServer server(svc, net::LineServer::Options{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ASSERT_GT(server.port(), 0);

  // 4 clients, each pipelining its whole request batch up front (listings
  // on, a control command mid-stream, a parse error, and compile errors).
  constexpr int kClients = 4;
  constexpr int kPerClient = 6;
  std::vector<std::vector<std::string>> requests(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int r = 0; r < kPerClient; ++r) {
      std::string tag = "c" + std::to_string(c) + "r" + std::to_string(r);
      if (r == 2) {
        requests[c].push_back(compile_request(tag, "nosuchmodel"));
      } else if (r == 4) {
        requests[c].push_back(compile_request(tag, "demo", true));
      } else {
        requests[c].push_back(compile_request(tag, "demo"));
      }
    }
  }

  // The sequential baseline shares the exact job core (run_job) and codec
  // (wire.h) with the server, so the equality below proves the socket path
  // changes nothing about the answers.
  std::vector<std::vector<std::string>> expected(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (const std::string& line : requests[c]) {
      std::optional<Json> request = Json::parse(line);
      ASSERT_TRUE(request) << line;
      service::JobResult result = service::CompileService::run_job(
          service::job_from_request(*request, false), svc.registry());
      expected[c].push_back(
          normalize(service::response_from_result(result).dump()));
    }
  }

  std::vector<std::vector<std::string>> got(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client = Client::connect_tcp(server.port());
      for (const std::string& line : requests[c]) client.send_line(line);
      for (int r = 0; r < kPerClient; ++r)
        got[c].push_back(normalize(client.read_line()));
    });
  }
  for (std::thread& t : threads) t.join();

  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(got[c].size(), expected[c].size());
    for (int r = 0; r < kPerClient; ++r)
      EXPECT_EQ(got[c][r], expected[c][r]) << "client " << c << " response "
                                           << r;
  }
  server.stop();
}

TEST(LineServer, MalformedLineAnswersErrorAndConnectionSurvives) {
  service::CompileService::Options opts;
  opts.workers = 2;
  service::CompileService svc(opts);
  net::LineServer server(svc, net::LineServer::Options{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client = Client::connect_tcp(server.port());
  client.send_line("this is not json");
  client.send_line("[1,2,3]");  // valid JSON, not an object
  client.send_line(compile_request("after", "demo"));

  std::optional<Json> first = Json::parse(client.read_line());
  ASSERT_TRUE(first);
  EXPECT_FALSE((*first)["ok"].as_bool(true));
  EXPECT_NE((*first)["error"].as_string().find("bad request"),
            std::string::npos);
  std::optional<Json> second = Json::parse(client.read_line());
  ASSERT_TRUE(second);
  EXPECT_FALSE((*second)["ok"].as_bool(true));
  std::optional<Json> third = Json::parse(client.read_line());
  ASSERT_TRUE(third);
  EXPECT_TRUE((*third)["ok"].as_bool(false))
      << "connection did not survive the bad lines";
  EXPECT_EQ((*third)["tag"].as_string(), "after");
  server.stop();
}

TEST(LineServer, OversizedLineFailsTheConnectionOnly) {
  service::CompileService::Options opts;
  opts.workers = 2;
  service::CompileService svc(opts);
  net::LineServer::Options sopts;
  sopts.max_line = 1024;
  net::LineServer server(svc, sopts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client victim = Client::connect_tcp(server.port());
  std::string huge(4096, 'x');
  victim.send_line(huge);
  std::optional<Json> reply = Json::parse(victim.read_line());
  ASSERT_TRUE(reply);
  EXPECT_FALSE((*reply)["ok"].as_bool(true));
  EXPECT_NE((*reply)["error"].as_string().find("too long"),
            std::string::npos);
  EXPECT_TRUE(victim.read_line().empty()) << "connection stayed open";

  // The server itself is unharmed: a fresh connection compiles fine.
  Client fresh = Client::connect_tcp(server.port());
  fresh.send_line(compile_request("fresh", "demo"));
  std::optional<Json> ok = Json::parse(fresh.read_line());
  ASSERT_TRUE(ok);
  EXPECT_TRUE((*ok)["ok"].as_bool(false));
  server.stop();
}

TEST(LineServer, SlowReaderBackpressureLosesNothing) {
  // A tiny compile queue and a 1-byte write watermark force both
  // backpressure paths: try_submit_async rejections park jobs, and the
  // unread responses pause the connection's reads. The client then drains
  // everything and must see every response, in order.
  service::CompileService::Options opts;
  opts.workers = 2;
  opts.queue_capacity = 1;
  service::CompileService svc(opts);
  net::LineServer::Options sopts;
  sopts.max_write_buffer = 1;
  net::LineServer server(svc, sopts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  constexpr int kRequests = 24;
  Client client = Client::connect_tcp(server.port());
  for (int r = 0; r < kRequests; ++r)
    client.send_line(
        compile_request("slow" + std::to_string(r), "demo", true));
  // Do not read yet: let responses pile up against the watermark.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  for (int r = 0; r < kRequests; ++r) {
    std::optional<Json> reply = Json::parse(client.read_line());
    ASSERT_TRUE(reply) << "response " << r << " lost";
    EXPECT_EQ((*reply)["tag"].as_string(), "slow" + std::to_string(r))
        << "responses out of order";
    EXPECT_TRUE((*reply)["ok"].as_bool(false));
  }
  server.stop();
}

TEST(LineServer, ClientDisconnectMidStreamLeavesServerServing) {
  service::CompileService::Options opts;
  opts.workers = 2;
  service::CompileService svc(opts);
  net::LineServer server(svc, net::LineServer::Options{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  {
    Client doomed = Client::connect_tcp(server.port());
    for (int r = 0; r < 8; ++r)
      doomed.send_line(compile_request("doomed" + std::to_string(r), "demo",
                                       true));
    doomed.close();  // vanish with every response still in flight
  }
  // The dropped connection must not take the daemon down (SIGPIPE/EPIPE on
  // the write path) nor wedge the loop.
  Client survivor = Client::connect_tcp(server.port());
  survivor.send_line(compile_request("live", "demo"));
  std::optional<Json> reply = Json::parse(survivor.read_line());
  ASSERT_TRUE(reply);
  EXPECT_TRUE((*reply)["ok"].as_bool(false));
  EXPECT_EQ((*reply)["tag"].as_string(), "live");
  server.stop();
}

TEST(LineServer, UnixSocketServes) {
  std::string path =
      (std::filesystem::temp_directory_path() / "recordd-test.sock").string();
  service::CompileService::Options opts;
  opts.workers = 2;
  service::CompileService svc(opts);
  net::LineServer::Options sopts;
  sopts.unix_path = path;
  net::LineServer server(svc, sopts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client = Client::connect_unix(path);
  client.send_line(compile_request("ux", "demo"));
  std::optional<Json> reply = Json::parse(client.read_line());
  ASSERT_TRUE(reply);
  EXPECT_TRUE((*reply)["ok"].as_bool(false));
  server.stop();
  EXPECT_FALSE(std::filesystem::exists(path)) << "socket file not unlinked";
}

TEST(LineServer, ShardingRejectsForeignTargetsAndReportsOwnership) {
  service::CompileService::Options opts;
  opts.workers = 2;
  service::CompileService svc(opts);

  // Compute each model's owner the way every instance would.
  core::RetargetOptions ropts = svc.registry().options().retarget;
  net::ShardRing ring(2);
  auto owner_of_model = [&](const std::string& model) {
    std::optional<Json> req =
        Json::parse("{\"model\": \"" + model + "\"}");
    return ring.owner_of(net::target_key_of(*req, ropts));
  };
  std::size_t demo_owner = owner_of_model("demo");

  // Run the instance that does NOT own "demo".
  net::LineServer::Options sopts;
  sopts.shard.count = 2;
  sopts.shard.index = 1 - demo_owner;
  net::LineServer server(svc, sopts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client = Client::connect_tcp(server.port());
  client.send_line(compile_request("foreign", "demo"));
  std::optional<Json> rejected = Json::parse(client.read_line());
  ASSERT_TRUE(rejected);
  EXPECT_FALSE((*rejected)["ok"].as_bool(true));
  EXPECT_EQ((*rejected)["owner"].as_int(-1),
            static_cast<std::int64_t>(demo_owner));
  EXPECT_EQ((*rejected)["shards"].as_int(0), 2);

  // The shard introspection command agrees.
  client.send_line("{\"cmd\": \"shard\", \"model\": \"demo\"}");
  std::optional<Json> info = Json::parse(client.read_line());
  ASSERT_TRUE(info);
  EXPECT_TRUE((*info)["ok"].as_bool(false));
  EXPECT_EQ((*info)["shards"].as_int(0), 2);
  EXPECT_EQ((*info)["owner"].as_int(-1),
            static_cast<std::int64_t>(demo_owner));
  EXPECT_FALSE((*info)["owned"].as_bool(true));
  server.stop();
}
