// Socket front end (src/net/): protocol equivalence against the sequential
// baseline, framing robustness, backpressure, and registry sharding.
#include <gtest/gtest.h>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/server.h"
#include "net/shard.h"
#include "net/timerwheel.h"
#include "obs/metrics.h"
#include "service/json.h"
#include "service/service.h"
#include "service/wire.h"
#include "util/failpoint.h"

using namespace record;
using service::Json;

namespace {

constexpr const char* kKernel =
    "kernel k;\\nbind a: R0;\\ncell x: mem[1];\\na = a + x;";

std::string compile_request(const std::string& tag, const std::string& model,
                            bool listing = false) {
  return "{\"model\": \"" + model + "\", \"tag\": \"" + tag +
         "\", \"source\": \"" + kKernel +
         "\", \"options\": {\"listing\": " + (listing ? "true" : "false") +
         "}}";
}

/// Blocking test client over one connection; reads are line-buffered with a
/// receive timeout so a server bug fails the test instead of hanging it.
struct Client {
  int fd = -1;
  std::string buffered;

  static Client connect_tcp(std::uint16_t port) {
    Client c;
    c.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(c.fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(c.fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0)
        << std::strerror(errno);
    c.set_timeout();
    return c;
  }

  static Client connect_unix(const std::string& path) {
    Client c;
    c.fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(c.fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
    EXPECT_EQ(::connect(c.fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0)
        << std::strerror(errno);
    c.set_timeout();
    return c;
  }

  void set_timeout(int seconds = 60) {
    timeval tv{};
    tv.tv_sec = seconds;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }

  void send_line(const std::string& line) {
    std::string framed = line + "\n";
    ASSERT_EQ(::send(fd, framed.data(), framed.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(framed.size()));
  }

  /// One response line (without the newline); empty on EOF/timeout.
  std::string read_line() {
    for (;;) {
      std::size_t nl = buffered.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffered.substr(0, nl);
        buffered.erase(0, nl + 1);
        return line;
      }
      char buf[65536];
      ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n <= 0) return {};
      buffered.append(buf, static_cast<std::size_t>(n));
    }
  }

  void close() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  ~Client() { close(); }
  Client() = default;
  Client(Client&& o) noexcept : fd(o.fd), buffered(std::move(o.buffered)) {
    o.fd = -1;
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
};

/// Responses carry wall-clock timings that legitimately differ between runs;
/// equality is over everything else. Both sides get "times" nulled the same
/// way, then the comparison is on exact bytes.
std::string normalize(const std::string& response_line) {
  std::optional<Json> parsed = Json::parse(response_line);
  if (!parsed) return "<unparseable: " + response_line + ">";
  if (parsed->contains("times")) parsed->set("times", Json());
  return parsed->dump();
}

}  // namespace

TEST(ShardRing, DeterministicAndCovering) {
  net::ShardRing a(4), b(4);
  std::set<std::size_t> owners;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    std::size_t owner = a.owner_of(key * 0x9E3779B97F4A7C15ull);
    EXPECT_EQ(owner, b.owner_of(key * 0x9E3779B97F4A7C15ull));
    EXPECT_LT(owner, 4u);
    owners.insert(owner);
  }
  EXPECT_EQ(owners.size(), 4u) << "some shard owns nothing";

  // Consistent hashing: growing the ring by one shard remaps only part of
  // the key space (modulo hashing would remap ~all of it).
  net::ShardRing grown(5);
  std::size_t moved = 0;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    std::uint64_t k = key * 0x9E3779B97F4A7C15ull;
    if (a.owner_of(k) != grown.owner_of(k)) ++moved;
  }
  EXPECT_LT(moved, 600u) << "ring growth remapped almost everything";
  EXPECT_GT(moved, 0u);
}

TEST(LineServer, PipelinedClientsMatchSequentialBaseline) {
  service::CompileService::Options opts;
  opts.workers = 4;
  opts.queue_capacity = 8;
  service::CompileService svc(opts);
  net::LineServer server(svc, net::LineServer::Options{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ASSERT_GT(server.port(), 0);

  // 4 clients, each pipelining its whole request batch up front (listings
  // on, a control command mid-stream, a parse error, and compile errors).
  constexpr int kClients = 4;
  constexpr int kPerClient = 6;
  std::vector<std::vector<std::string>> requests(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int r = 0; r < kPerClient; ++r) {
      std::string tag = "c" + std::to_string(c) + "r" + std::to_string(r);
      if (r == 2) {
        requests[c].push_back(compile_request(tag, "nosuchmodel"));
      } else if (r == 4) {
        requests[c].push_back(compile_request(tag, "demo", true));
      } else {
        requests[c].push_back(compile_request(tag, "demo"));
      }
    }
  }

  // The sequential baseline shares the exact job core (run_job) and codec
  // (wire.h) with the server, so the equality below proves the socket path
  // changes nothing about the answers.
  std::vector<std::vector<std::string>> expected(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (const std::string& line : requests[c]) {
      std::optional<Json> request = Json::parse(line);
      ASSERT_TRUE(request) << line;
      service::JobResult result = service::CompileService::run_job(
          service::job_from_request(*request, false), svc.registry());
      expected[c].push_back(
          normalize(service::response_from_result(result).dump()));
    }
  }

  std::vector<std::vector<std::string>> got(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client = Client::connect_tcp(server.port());
      for (const std::string& line : requests[c]) client.send_line(line);
      for (int r = 0; r < kPerClient; ++r)
        got[c].push_back(normalize(client.read_line()));
    });
  }
  for (std::thread& t : threads) t.join();

  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(got[c].size(), expected[c].size());
    for (int r = 0; r < kPerClient; ++r)
      EXPECT_EQ(got[c][r], expected[c][r]) << "client " << c << " response "
                                           << r;
  }
  server.stop();
}

TEST(LineServer, MalformedLineAnswersErrorAndConnectionSurvives) {
  service::CompileService::Options opts;
  opts.workers = 2;
  service::CompileService svc(opts);
  net::LineServer server(svc, net::LineServer::Options{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client = Client::connect_tcp(server.port());
  client.send_line("this is not json");
  client.send_line("[1,2,3]");  // valid JSON, not an object
  client.send_line(compile_request("after", "demo"));

  std::optional<Json> first = Json::parse(client.read_line());
  ASSERT_TRUE(first);
  EXPECT_FALSE((*first)["ok"].as_bool(true));
  EXPECT_NE((*first)["error"].as_string().find("bad request"),
            std::string::npos);
  std::optional<Json> second = Json::parse(client.read_line());
  ASSERT_TRUE(second);
  EXPECT_FALSE((*second)["ok"].as_bool(true));
  std::optional<Json> third = Json::parse(client.read_line());
  ASSERT_TRUE(third);
  EXPECT_TRUE((*third)["ok"].as_bool(false))
      << "connection did not survive the bad lines";
  EXPECT_EQ((*third)["tag"].as_string(), "after");
  server.stop();
}

TEST(LineServer, OversizedLineFailsTheConnectionOnly) {
  service::CompileService::Options opts;
  opts.workers = 2;
  service::CompileService svc(opts);
  net::LineServer::Options sopts;
  sopts.max_line = 1024;
  net::LineServer server(svc, sopts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client victim = Client::connect_tcp(server.port());
  std::string huge(4096, 'x');
  victim.send_line(huge);
  std::optional<Json> reply = Json::parse(victim.read_line());
  ASSERT_TRUE(reply);
  EXPECT_FALSE((*reply)["ok"].as_bool(true));
  EXPECT_NE((*reply)["error"].as_string().find("too long"),
            std::string::npos);
  EXPECT_TRUE(victim.read_line().empty()) << "connection stayed open";

  // The server itself is unharmed: a fresh connection compiles fine.
  Client fresh = Client::connect_tcp(server.port());
  fresh.send_line(compile_request("fresh", "demo"));
  std::optional<Json> ok = Json::parse(fresh.read_line());
  ASSERT_TRUE(ok);
  EXPECT_TRUE((*ok)["ok"].as_bool(false));
  server.stop();
}

TEST(LineServer, SlowReaderBackpressureLosesNothing) {
  // A tiny compile queue and a 1-byte write watermark force both
  // backpressure paths: try_submit_async rejections park jobs, and the
  // unread responses pause the connection's reads. The client then drains
  // everything and must see every response, in order.
  service::CompileService::Options opts;
  opts.workers = 2;
  opts.queue_capacity = 1;
  service::CompileService svc(opts);
  net::LineServer::Options sopts;
  sopts.max_write_buffer = 1;
  net::LineServer server(svc, sopts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  constexpr int kRequests = 24;
  Client client = Client::connect_tcp(server.port());
  for (int r = 0; r < kRequests; ++r)
    client.send_line(
        compile_request("slow" + std::to_string(r), "demo", true));
  // Do not read yet: let responses pile up against the watermark.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  for (int r = 0; r < kRequests; ++r) {
    std::optional<Json> reply = Json::parse(client.read_line());
    ASSERT_TRUE(reply) << "response " << r << " lost";
    EXPECT_EQ((*reply)["tag"].as_string(), "slow" + std::to_string(r))
        << "responses out of order";
    EXPECT_TRUE((*reply)["ok"].as_bool(false));
  }
  server.stop();
}

TEST(LineServer, ClientDisconnectMidStreamLeavesServerServing) {
  service::CompileService::Options opts;
  opts.workers = 2;
  service::CompileService svc(opts);
  net::LineServer server(svc, net::LineServer::Options{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  {
    Client doomed = Client::connect_tcp(server.port());
    for (int r = 0; r < 8; ++r)
      doomed.send_line(compile_request("doomed" + std::to_string(r), "demo",
                                       true));
    doomed.close();  // vanish with every response still in flight
  }
  // The dropped connection must not take the daemon down (SIGPIPE/EPIPE on
  // the write path) nor wedge the loop.
  Client survivor = Client::connect_tcp(server.port());
  survivor.send_line(compile_request("live", "demo"));
  std::optional<Json> reply = Json::parse(survivor.read_line());
  ASSERT_TRUE(reply);
  EXPECT_TRUE((*reply)["ok"].as_bool(false));
  EXPECT_EQ((*reply)["tag"].as_string(), "live");
  server.stop();
}

TEST(LineServer, UnixSocketServes) {
  std::string path =
      (std::filesystem::temp_directory_path() / "recordd-test.sock").string();
  service::CompileService::Options opts;
  opts.workers = 2;
  service::CompileService svc(opts);
  net::LineServer::Options sopts;
  sopts.unix_path = path;
  net::LineServer server(svc, sopts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client = Client::connect_unix(path);
  client.send_line(compile_request("ux", "demo"));
  std::optional<Json> reply = Json::parse(client.read_line());
  ASSERT_TRUE(reply);
  EXPECT_TRUE((*reply)["ok"].as_bool(false));
  server.stop();
  EXPECT_FALSE(std::filesystem::exists(path)) << "socket file not unlinked";
}

TEST(LineServer, ShardingRejectsForeignTargetsAndReportsOwnership) {
  service::CompileService::Options opts;
  opts.workers = 2;
  service::CompileService svc(opts);

  // Compute each model's owner the way every instance would.
  core::RetargetOptions ropts = svc.registry().options().retarget;
  net::ShardRing ring(2);
  auto owner_of_model = [&](const std::string& model) {
    std::optional<Json> req =
        Json::parse("{\"model\": \"" + model + "\"}");
    return ring.owner_of(net::target_key_of(*req, ropts));
  };
  std::size_t demo_owner = owner_of_model("demo");

  // Run the instance that does NOT own "demo".
  net::LineServer::Options sopts;
  sopts.shard.count = 2;
  sopts.shard.index = 1 - demo_owner;
  net::LineServer server(svc, sopts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client = Client::connect_tcp(server.port());
  client.send_line(compile_request("foreign", "demo"));
  std::optional<Json> rejected = Json::parse(client.read_line());
  ASSERT_TRUE(rejected);
  EXPECT_FALSE((*rejected)["ok"].as_bool(true));
  EXPECT_EQ((*rejected)["owner"].as_int(-1),
            static_cast<std::int64_t>(demo_owner));
  EXPECT_EQ((*rejected)["shards"].as_int(0), 2);

  // The shard introspection command agrees.
  client.send_line("{\"cmd\": \"shard\", \"model\": \"demo\"}");
  std::optional<Json> info = Json::parse(client.read_line());
  ASSERT_TRUE(info);
  EXPECT_TRUE((*info)["ok"].as_bool(false));
  EXPECT_EQ((*info)["shards"].as_int(0), 2);
  EXPECT_EQ((*info)["owner"].as_int(-1),
            static_cast<std::int64_t>(demo_owner));
  EXPECT_FALSE((*info)["owned"].as_bool(true));
  server.stop();
}

TEST(TimerWheel, ArmsCancelsRearmsAndExpires) {
  net::TimerWheel wheel(64);
  EXPECT_EQ(wheel.next_timeout_ms(0), -1);  // nothing armed

  wheel.arm(1, 100);
  wheel.arm(2, 200);
  wheel.arm(3, 5'000'000);  // far future: wait is clamped to one minute
  EXPECT_EQ(wheel.next_timeout_ms(0), 100);
  EXPECT_EQ(wheel.next_timeout_ms(50), 50);
  EXPECT_EQ(wheel.next_timeout_ms(150), 0);  // timer 1 is already due

  std::vector<std::uint64_t> fired;
  wheel.expire(99, fired);
  EXPECT_TRUE(fired.empty());  // nothing due yet

  wheel.cancel(1);
  wheel.arm(2, 400);  // re-arm: only the new deadline counts
  wheel.expire(300, fired);
  EXPECT_TRUE(fired.empty());  // 1 cancelled, 2 moved to 400
  wheel.expire(450, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 2u);
  EXPECT_EQ(wheel.armed(), 1u);  // only the far-future timer remains

  // A deadline armed in the past lands in the next unscanned tick (its own
  // was already swept), so it fires up to one tick late — at 512 here, one
  // tick past the 450 sweep — but never silently skips.
  fired.clear();
  wheel.arm(4, 10);
  wheel.expire(520, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 4u);

  // A gap far longer than one wheel revolution must not skip timers.
  fired.clear();
  wheel.arm(5, 600);
  wheel.expire(600 + 64 * 256 * 3, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 5u);

  EXPECT_EQ(wheel.next_timeout_ms(5'000'000), 0);
  fired.clear();
  wheel.expire(5'000'000, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 3u);
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(LineServer, IdleConnectionsAreClosedAndCounted) {
  service::CompileService::Options opts;
  opts.workers = 1;
  service::CompileService svc(opts);
  net::LineServer::Options sopts;
  sopts.idle_timeout_ms = 150;
  net::LineServer server(svc, sopts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const std::uint64_t closed_before =
      obs::metrics().counter("net.conn.idle_closed").value();
  Client client = Client::connect_tcp(server.port());
  // Activity resets the idle clock: a served request does not count as idle.
  client.send_line(compile_request("warm", "demo"));
  std::optional<Json> reply = Json::parse(client.read_line());
  ASSERT_TRUE(reply);
  EXPECT_TRUE((*reply)["ok"].as_bool(false));
  // Then the connection goes quiet; the server must close it (EOF on read).
  EXPECT_EQ(client.read_line(), "");
  EXPECT_EQ(obs::metrics().counter("net.conn.idle_closed").value(),
            closed_before + 1);

  // The listener itself keeps serving fresh connections.
  Client fresh = Client::connect_tcp(server.port());
  fresh.send_line(compile_request("fresh", "demo"));
  std::optional<Json> ok = Json::parse(fresh.read_line());
  ASSERT_TRUE(ok);
  EXPECT_TRUE((*ok)["ok"].as_bool(false));
  server.stop();
}

TEST(LineServer, SaturationShedsOldestParkedWithBackoffHint) {
  // One connection can hold at most one parked request (parse_lines stops
  // at a parked head to preserve order), so saturation shedding is a
  // cross-connection affair: a later client's park evicts the globally
  // oldest parked request of an earlier one.
  util::failpoint_disarm_all();
  service::CompileService::Options opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  service::CompileService svc(opts);
  // Slow every job so the queue fills and requests park on the connections.
  ASSERT_TRUE(util::failpoint_arm("service.worker.job", "sleep:60"));

  net::LineServer::Options sopts;
  sopts.max_parked = 1;  // server saturates after one parked request
  net::LineServer server(svc, sopts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const std::uint64_t shed_before =
      obs::metrics().counter("net.shed").value();
  // First client: r0 runs (worker sleeps 60ms), r1 queues, r2 parks.
  Client first = Client::connect_tcp(server.port());
  for (int r = 0; r < 3; ++r)
    first.send_line(compile_request("a" + std::to_string(r), "demo"));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Second client: its park hits the max_parked=1 budget and sheds a2.
  Client second = Client::connect_tcp(server.port());
  for (int r = 0; r < 2; ++r)
    second.send_line(compile_request("b" + std::to_string(r), "demo"));

  int ok = 0, overloaded = 0;
  auto drain = [&](Client& client, const char* prefix, int n) {
    for (int r = 0; r < n; ++r) {
      std::optional<Json> reply = Json::parse(client.read_line());
      ASSERT_TRUE(reply) << prefix << r;
      // Pipelining order survives shedding: responses match request order.
      EXPECT_EQ((*reply)["tag"].as_string(), prefix + std::to_string(r));
      if ((*reply)["ok"].as_bool(false)) {
        ++ok;
      } else {
        ++overloaded;
        EXPECT_NE((*reply)["error"].as_string().find("overloaded"),
                  std::string::npos)
            << (*reply)["error"].as_string();
        EXPECT_GE((*reply)["retry_after_ms"].as_int(0), 1);
      }
    }
  };
  drain(first, "a", 3);
  drain(second, "b", 2);
  util::failpoint_disarm_all();
  EXPECT_EQ(ok + overloaded, 5);
  EXPECT_GT(ok, 0);          // the server still does real work
  EXPECT_GT(overloaded, 0);  // and it genuinely shed under saturation
  EXPECT_GE(obs::metrics().counter("net.shed").value(),
            shed_before + static_cast<std::uint64_t>(overloaded));
  server.stop();
}

TEST(LineServer, ParkedRequestsShedAfterRequestTimeout) {
  util::failpoint_disarm_all();
  service::CompileService::Options opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  service::CompileService svc(opts);
  ASSERT_TRUE(util::failpoint_arm("service.worker.job", "sleep:50"));

  net::LineServer::Options sopts;
  sopts.request_timeout_ms = 30;  // parked longer than this = shed
  net::LineServer server(svc, sopts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  constexpr int kRequests = 5;
  Client client = Client::connect_tcp(server.port());
  for (int r = 0; r < kRequests; ++r)
    client.send_line(compile_request("t" + std::to_string(r), "demo"));

  int ok = 0, timed_out = 0;
  for (int r = 0; r < kRequests; ++r) {
    std::optional<Json> reply = Json::parse(client.read_line());
    ASSERT_TRUE(reply) << "response " << r;
    EXPECT_EQ((*reply)["tag"].as_string(), "t" + std::to_string(r));
    if ((*reply)["ok"].as_bool(false)) {
      ++ok;
    } else {
      ++timed_out;
      EXPECT_NE((*reply)["error"].as_string().find("timed out"),
                std::string::npos)
          << (*reply)["error"].as_string();
      EXPECT_GE((*reply)["retry_after_ms"].as_int(0), 1);
    }
  }
  util::failpoint_disarm_all();
  EXPECT_EQ(ok + timed_out, kRequests);
  EXPECT_GT(timed_out, 0);
  server.stop();
}

TEST(LineServer, DeadlineRidesTheWireEndToEnd) {
  util::failpoint_disarm_all();
  service::CompileService::Options opts;
  opts.workers = 1;
  opts.queue_capacity = 8;
  service::CompileService svc(opts);
  // The head job stalls the lone worker long enough for the 1ms-deadline
  // job queued behind it to expire before a worker picks it up.
  ASSERT_TRUE(util::failpoint_arm("service.worker.job", "sleep:30"));

  net::LineServer server(svc, net::LineServer::Options{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client = Client::connect_tcp(server.port());
  client.send_line(compile_request("head", "demo"));
  client.send_line(
      "{\"model\": \"demo\", \"tag\": \"doomed\", \"source\": \"" +
      std::string(kKernel) + "\", \"options\": {\"deadline_ms\": 1}}");

  std::optional<Json> head = Json::parse(client.read_line());
  ASSERT_TRUE(head);
  EXPECT_TRUE((*head)["ok"].as_bool(false));

  std::optional<Json> doomed = Json::parse(client.read_line());
  util::failpoint_disarm_all();
  ASSERT_TRUE(doomed);
  EXPECT_EQ((*doomed)["tag"].as_string(), "doomed");
  EXPECT_FALSE((*doomed)["ok"].as_bool(true));
  EXPECT_TRUE((*doomed)["deadline_exceeded"].as_bool());
  EXPECT_GE((*doomed)["retry_after_ms"].as_int(0), 1);
  EXPECT_NE((*doomed)["error"].as_string().find("deadline_exceeded"),
            std::string::npos);
  server.stop();
}
