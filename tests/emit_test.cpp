#include <gtest/gtest.h>

#include "core/compiler.h"
#include "core/record.h"
#include "emit/asmout.h"
#include "emit/encode.h"
#include "ir/builder.h"

namespace record::emit {
namespace {

const core::RetargetResult& c25() {
  static const core::RetargetResult target = [] {
    util::DiagnosticSink diags;
    auto r = core::Record::retarget_model("tms320c25",
                                          core::RetargetOptions{}, diags);
    EXPECT_TRUE(r) << diags.str();
    return std::move(*r);
  }();
  return target;
}

core::CompileResult compile(const ir::Program& prog) {
  core::Compiler compiler(c25());
  util::DiagnosticSink diags;
  auto result = compiler.compile(prog, core::CompileOptions{}, diags);
  EXPECT_TRUE(result) << diags.str();
  return std::move(*result);
}

TEST(Encode, WordsHaveInstructionWidth) {
  ir::ProgramBuilder b("t");
  b.reg("acc", "ACC");
  b.let("acc", ir::e_const(0));
  core::CompileResult r = compile(b.take());
  ASSERT_EQ(r.encoded.assembly.size(), 1u);
  EXPECT_EQ(r.encoded.assembly.words[0].bits.size(), 27u);
}

TEST(Encode, ImmediateValueAppearsInWord) {
  ir::ProgramBuilder b("t");
  b.reg("acc", "ACC");
  b.cell("x", "ram", 5);
  b.let("acc", ir::e_var("x"));
  core::CompileResult r = compile(b.take());
  // LAC x: address field (bits 15:0) must hold 5.
  std::uint64_t word = r.encoded.assembly.words[0].to_u64();
  EXPECT_EQ(word & 0xffff, 5u);
}

TEST(Encode, OpcodeFieldDistinguishesInstructions) {
  ir::ProgramBuilder b("t");
  b.reg("acc", "ACC");
  b.cell("x", "ram", 1).cell("h", "ram", 2);
  b.let("acc", ir::e_add(ir::e_var("acc"),
                         ir::e_mul(ir::e_var("x"), ir::e_var("h"))));
  core::CompileResult r = compile(b.take());
  ASSERT_EQ(r.encoded.assembly.size(), 3u);
  auto op = [&](int i) {
    return (r.encoded.assembly.words[static_cast<std::size_t>(i)].to_u64() >>
            22) & 0xf;
  };
  EXPECT_EQ(op(0), 6u);  // LT
  EXPECT_EQ(op(1), 7u);  // MPY
  EXPECT_EQ(op(2), 8u);  // APAC
}

TEST(Encode, SideEffectSuppressionZeroesUnusedUnits) {
  // LT x must not accidentally enable the accumulator or memory writes:
  // its word decodes to op=6 which the decoder maps to t_ld only.
  ir::ProgramBuilder b("t");
  b.reg("t", "T");
  b.cell("x", "ram", 1);
  b.let("t", ir::e_var("x"));
  core::CompileResult r = compile(b.take());
  ASSERT_EQ(r.encoded.assembly.size(), 1u);
  EXPECT_GT(r.encoded.stats.suppressed, 0u);
  std::uint64_t word = r.encoded.assembly.words[0].to_u64();
  EXPECT_EQ((word >> 22) & 0xf, 6u);  // LT opcode
}

TEST(Encode, BranchTargetsResolveToAddresses) {
  ir::ProgramBuilder b("t");
  b.reg("acc", "ACC");
  b.let("acc", ir::e_const(0));   // word 0
  b.label("top");                 // address 1
  b.let("acc", ir::e_const(1));   // word 1
  b.program().branch_if_not_zero("acc", "top");  // word 2
  core::CompileResult r = compile(b.take());
  ASSERT_EQ(r.encoded.assembly.labels.count("top"), 1u);
  int target = r.encoded.assembly.labels.at("top");
  EXPECT_EQ(target, 1);
  std::uint64_t branch_word = r.encoded.assembly.words.back().to_u64();
  EXPECT_EQ(branch_word & 0xffff, static_cast<std::uint64_t>(target));
}

TEST(Encode, HexRendering) {
  EncodedWord w;
  w.bits = {true, false, true, false, true, false, true, false};  // 0x55
  EXPECT_EQ(w.hex(), "55");
  EXPECT_EQ(w.to_u64(), 0x55u);
}

TEST(Asmout, ListingShowsAddressesAndComments) {
  ir::ProgramBuilder b("t");
  b.cell("a", "ram", 1).cell("c", "ram", 3);
  b.let("c", ir::e_var("a"));
  core::CompileResult r = compile(b.take());
  std::string listing = emit::listing(r.encoded.assembly);
  EXPECT_NE(listing.find("   0  "), std::string::npos);
  EXPECT_NE(listing.find("ACC :="), std::string::npos);
  std::string sum = summary(r.encoded.assembly);
  EXPECT_NE(sum.find("words"), std::string::npos);
}

TEST(Asmout, LabelsAppearInListing) {
  ir::ProgramBuilder b("t");
  b.reg("acc", "ACC");
  b.label("loop");
  b.let("acc", ir::e_const(0));
  b.jump("loop");
  core::CompileResult r = compile(b.take());
  std::string listing = emit::listing(r.encoded.assembly);
  EXPECT_NE(listing.find("loop:"), std::string::npos);
}

}  // namespace
}  // namespace record::emit
