#include "netlist/netlist.h"

namespace record::netlist {

InstanceId Netlist::find_instance(std::string_view name) const {
  auto it = inst_index_.find(std::string(name));
  return it == inst_index_.end() ? -1 : it->second;
}

std::vector<InstanceId> Netlist::sequential_instances() const {
  std::vector<InstanceId> out;
  for (std::size_t i = 0; i < insts_.size(); ++i)
    if (insts_[i].is_sequential()) out.push_back(static_cast<InstanceId>(i));
  return out;
}

const Driver* Netlist::port_driver(InstanceId inst,
                                   std::string_view port) const {
  std::string key = instance(inst).name + "." + std::string(port);
  auto it = port_drivers_.find(key);
  return it == port_drivers_.end() ? nullptr : &it->second;
}

const std::vector<Driver>& Netlist::bus_drivers(std::string_view bus) const {
  static const std::vector<Driver> kEmpty;
  auto it = bus_drivers_.find(std::string(bus));
  return it == bus_drivers_.end() ? kEmpty : it->second;
}

const Driver* Netlist::proc_out_driver(std::string_view port) const {
  auto it = proc_out_drivers_.find(std::string(port));
  return it == proc_out_drivers_.end() ? nullptr : &it->second;
}

int Netlist::port_width(InstanceId inst, std::string_view port) const {
  const hdl::PortDecl* p = instance(inst).decl->find_port(port);
  return p ? p->range.width() : -1;
}

int Netlist::bus_width(std::string_view bus) const {
  const hdl::BusDecl* b = model_.find_bus(bus);
  return b ? b->range.width() : -1;
}

}  // namespace record::netlist
