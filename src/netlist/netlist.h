// Elaborated internal graph model of a processor (paper fig. 1, middle box).
//
// The netlist resolves the HDL's structure section into fast lookups:
//   * instances (parts) with their module declarations,
//   * for every instance input/control port: the unique wire driver,
//   * for every tristate bus: its guarded drivers,
//   * for every primary output port: its driver,
//   * the designated controller instance (instruction-word source).
//
// Instruction-set extraction walks this structure backwards from RT
// destinations (see src/ise/).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "hdl/ast.h"
#include "util/diagnostics.h"

namespace record::netlist {

/// Identifies a module instance inside the netlist.
using InstanceId = int;

struct Instance {
  std::string name;
  const hdl::ModuleDecl* decl = nullptr;  // owned by the Netlist's model

  [[nodiscard]] hdl::ModuleKind kind() const { return decl->kind; }
  [[nodiscard]] bool is_sequential() const {
    return decl->kind == hdl::ModuleKind::Register ||
           decl->kind == hdl::ModuleKind::Memory ||
           decl->kind == hdl::ModuleKind::ModeReg;
  }
};

/// Where a wire/bus-driver gets its value from.
struct NetSource {
  enum class Kind : std::uint8_t { InstancePort, ProcPort, Bus, Const };

  Kind kind = Kind::Const;
  InstanceId inst = -1;      // InstancePort
  std::string port;          // InstancePort / ProcPort / Bus (bus name)
  std::int64_t value = 0;    // Const
  bool has_slice = false;
  hdl::BitRange slice;
};

/// One driver of a net: the resolved source plus the (possibly null) tristate
/// enable guard. For plain wires `guard` is null.
struct Driver {
  NetSource source;
  const hdl::Cond* guard = nullptr;  // owned by the model's Connection
  util::SourceLoc loc;
};

class Netlist {
 public:
  Netlist() = default;
  // Move-only: instances and drivers hold pointers into the owned model's
  // heap storage, which stays valid across moves but not copies.
  Netlist(const Netlist&) = delete;
  Netlist& operator=(const Netlist&) = delete;
  Netlist(Netlist&&) = default;
  Netlist& operator=(Netlist&&) = default;

  /// The HDL model this netlist was elaborated from (owned).
  [[nodiscard]] const hdl::ProcessorModel& model() const { return model_; }
  [[nodiscard]] const std::string& name() const { return model_.name; }

  // --- instances ---------------------------------------------------------

  [[nodiscard]] const std::vector<Instance>& instances() const {
    return insts_;
  }
  [[nodiscard]] const Instance& instance(InstanceId id) const {
    return insts_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] InstanceId find_instance(std::string_view name) const;

  /// All instances capable of storing data (registers, memories, mode
  /// registers) — the SEQ set of the paper's grammar construction.
  [[nodiscard]] std::vector<InstanceId> sequential_instances() const;

  // --- controller ---------------------------------------------------------

  [[nodiscard]] InstanceId controller() const { return controller_; }
  [[nodiscard]] const std::string& instruction_port() const {
    return instruction_port_;
  }
  [[nodiscard]] int instruction_width() const { return instruction_width_; }

  // --- connectivity --------------------------------------------------------

  /// Driver of an instance IN/CTRL port; nullptr if undriven.
  [[nodiscard]] const Driver* port_driver(InstanceId inst,
                                          std::string_view port) const;

  /// Drivers of a tristate bus (possibly empty).
  [[nodiscard]] const std::vector<Driver>& bus_drivers(
      std::string_view bus) const;

  /// Driver of a primary output port; nullptr if undriven.
  [[nodiscard]] const Driver* proc_out_driver(std::string_view port) const;

  /// Width (in bits) of an instance port / primary port / bus.
  [[nodiscard]] int port_width(InstanceId inst, std::string_view port) const;
  [[nodiscard]] int bus_width(std::string_view bus) const;

  [[nodiscard]] const std::vector<hdl::ProcPortDecl>& proc_ports() const {
    return model_.proc_ports;
  }

 private:
  friend std::optional<Netlist> elaborate(hdl::ProcessorModel model,
                                          util::DiagnosticSink& diags);

  hdl::ProcessorModel model_;
  std::vector<Instance> insts_;
  std::unordered_map<std::string, InstanceId> inst_index_;
  std::unordered_map<std::string, Driver> port_drivers_;  // "inst.port"
  std::unordered_map<std::string, std::vector<Driver>> bus_drivers_;
  std::unordered_map<std::string, Driver> proc_out_drivers_;
  InstanceId controller_ = -1;
  std::string instruction_port_;
  int instruction_width_ = 0;
};

/// Elaborates a semantically checked model (run hdl::check_model first).
/// Takes ownership of the model; returns nullopt on internal inconsistencies.
[[nodiscard]] std::optional<Netlist> elaborate(hdl::ProcessorModel model,
                                               util::DiagnosticSink& diags);

}  // namespace record::netlist
