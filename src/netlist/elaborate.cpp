#include "netlist/netlist.h"
#include "util/strings.h"

namespace record::netlist {

namespace {

NetSource resolve_source(const Netlist& nl, const hdl::SourceRef& src) {
  NetSource out;
  out.has_slice = src.has_slice;
  out.slice = src.slice;
  if (src.kind == hdl::SourceRef::Kind::Const) {
    out.kind = NetSource::Kind::Const;
    out.value = src.value;
    return out;
  }
  if (!src.inst.empty()) {
    out.kind = NetSource::Kind::InstancePort;
    out.inst = nl.find_instance(src.inst);
    out.port = src.port;
    return out;
  }
  if (nl.model().find_bus(src.port)) {
    out.kind = NetSource::Kind::Bus;
    out.port = src.port;
    return out;
  }
  out.kind = NetSource::Kind::ProcPort;
  out.port = src.port;
  return out;
}

}  // namespace

std::optional<Netlist> elaborate(hdl::ProcessorModel model,
                                 util::DiagnosticSink& diags) {
  Netlist nl;
  nl.model_ = std::move(model);
  const hdl::ProcessorModel& m = nl.model_;

  // Instances. Pointers into m.modules are stable because the model is owned
  // by the netlist and never mutated afterwards.
  for (const hdl::PartDecl& part : m.parts) {
    const hdl::ModuleDecl* decl = m.find_module(part.module_name);
    if (!decl) {
      diags.error(part.loc, util::fmt("part '{}' instantiates unknown module "
                                      "'{}'",
                                      part.inst_name, part.module_name));
      return std::nullopt;
    }
    InstanceId id = static_cast<InstanceId>(nl.insts_.size());
    nl.insts_.push_back(Instance{part.inst_name, decl});
    nl.inst_index_.emplace(part.inst_name, id);
    if (decl->kind == hdl::ModuleKind::Controller) {
      if (nl.controller_ != -1) {
        diags.error(part.loc, "multiple controller instances");
        return std::nullopt;
      }
      nl.controller_ = id;
      nl.instruction_port_ = decl->ports.front().name;
      nl.instruction_width_ = decl->ports.front().range.width();
    }
  }
  if (nl.controller_ == -1) {
    diags.error({}, "model has no controller instance");
    return std::nullopt;
  }

  // Connections.
  for (const hdl::Connection& c : m.connections) {
    Driver d;
    d.source = resolve_source(nl, c.source);
    d.guard = c.guard.get();
    d.loc = c.loc;
    if (d.source.kind == NetSource::Kind::InstancePort &&
        d.source.inst < 0) {
      diags.error(c.loc, "connection references unknown instance");
      return std::nullopt;
    }
    if (!c.target_inst.empty()) {
      nl.port_drivers_.emplace(c.target_inst + "." + c.target_port, d);
    } else if (m.find_bus(c.target_port)) {
      nl.bus_drivers_[c.target_port].push_back(d);
    } else {
      nl.proc_out_drivers_.emplace(c.target_port, d);
    }
  }

  return nl;
}

}  // namespace record::netlist
