#include "rtl/template.h"

#include <sstream>
#include <unordered_set>

namespace record::rtl {

std::string OpSig::name() const {
  std::ostringstream os;
  if (kind == hdl::OpKind::Custom)
    os << custom;
  else
    os << hdl::to_string(kind);
  os << '.' << width;
  return os.str();
}

OpSig slice_op_sig(int msb, int lsb) {
  OpSig sig;
  sig.kind = hdl::OpKind::Custom;
  sig.custom = "bits" + std::to_string(msb) + "_" + std::to_string(lsb);
  sig.width = msb - lsb + 1;
  return sig;
}

RTNodePtr RTNode::clone() const {
  auto out = std::make_unique<RTNode>();
  out->kind = kind;
  out->op = op;
  out->name = name;
  out->width = width;
  out->value = value;
  out->imm_bits = imm_bits;
  out->children.reserve(children.size());
  for (const RTNodePtr& c : children) out->children.push_back(c->clone());
  return out;
}

RTNodePtr make_op(OpSig sig, std::vector<RTNodePtr> children) {
  auto n = std::make_unique<RTNode>();
  n->kind = RTNode::Kind::Op;
  n->width = sig.width;
  n->op = std::move(sig);
  n->children = std::move(children);
  return n;
}

RTNodePtr make_reg_read(std::string name, int width) {
  auto n = std::make_unique<RTNode>();
  n->kind = RTNode::Kind::RegRead;
  n->name = std::move(name);
  n->width = width;
  return n;
}

RTNodePtr make_mem_load(std::string mem, int width, RTNodePtr addr) {
  auto n = std::make_unique<RTNode>();
  n->kind = RTNode::Kind::MemLoad;
  n->name = std::move(mem);
  n->width = width;
  n->children.push_back(std::move(addr));
  return n;
}

RTNodePtr make_port_in(std::string port, int width) {
  auto n = std::make_unique<RTNode>();
  n->kind = RTNode::Kind::PortIn;
  n->name = std::move(port);
  n->width = width;
  return n;
}

RTNodePtr make_imm(std::vector<int> bits) {
  auto n = std::make_unique<RTNode>();
  n->kind = RTNode::Kind::Imm;
  n->width = static_cast<int>(bits.size());
  n->imm_bits = std::move(bits);
  return n;
}

RTNodePtr make_hard_const(std::int64_t value, int width) {
  auto n = std::make_unique<RTNode>();
  n->kind = RTNode::Kind::HardConst;
  n->value = value;
  n->width = width;
  return n;
}

namespace {

void dump(const RTNode& n, std::ostream& os) {
  switch (n.kind) {
    case RTNode::Kind::Op: {
      os << n.op.name() << '(';
      for (std::size_t i = 0; i < n.children.size(); ++i) {
        if (i) os << ',';
        dump(*n.children[i], os);
      }
      os << ')';
      break;
    }
    case RTNode::Kind::RegRead:
      os << n.name;
      break;
    case RTNode::Kind::MemLoad:
      os << n.name << '[';
      dump(*n.children[0], os);
      os << ']';
      break;
    case RTNode::Kind::PortIn:
      os << '@' << n.name;
      break;
    case RTNode::Kind::Imm: {
      // Field positions are part of the identity: two immediates drawn from
      // different instruction-word fields are different leaves.
      os << "#imm." << n.width;
      if (!n.imm_bits.empty()) os << '@' << n.imm_bits.front();
      break;
    }
    case RTNode::Kind::HardConst:
      os << '#' << n.value << '.' << n.width;
      break;
  }
}

}  // namespace

std::string to_string(const RTNode& n) {
  std::ostringstream os;
  dump(n, os);
  return os.str();
}

bool equal(const RTNode& a, const RTNode& b) {
  if (a.kind != b.kind || a.width != b.width) return false;
  switch (a.kind) {
    case RTNode::Kind::Op:
      if (!(a.op == b.op)) return false;
      break;
    case RTNode::Kind::RegRead:
    case RTNode::Kind::MemLoad:
    case RTNode::Kind::PortIn:
      if (a.name != b.name) return false;
      break;
    case RTNode::Kind::Imm:
      if (a.imm_bits != b.imm_bits) return false;
      break;
    case RTNode::Kind::HardConst:
      if (a.value != b.value) return false;
      break;
  }
  if (a.children.size() != b.children.size()) return false;
  for (std::size_t i = 0; i < a.children.size(); ++i)
    if (!equal(*a.children[i], *b.children[i])) return false;
  return true;
}

std::size_t tree_size(const RTNode& n) {
  std::size_t s = 1;
  for (const RTNodePtr& c : n.children) s += tree_size(*c);
  return s;
}

std::string_view to_string(DestKind k) {
  switch (k) {
    case DestKind::Register:
      return "register";
    case DestKind::ModeReg:
      return "modereg";
    case DestKind::Memory:
      return "memory";
    case DestKind::ProcOut:
      return "port";
  }
  return "?";
}

RTTemplate RTTemplate::clone_shallow_meta() const {
  RTTemplate out;
  out.id = id;
  out.dest_kind = dest_kind;
  out.dest = dest;
  out.dest_width = dest_width;
  out.cond = cond;
  out.provenance = provenance;
  return out;
}

std::string RTTemplate::signature() const {
  std::ostringstream os;
  os << dest;
  if (addr) os << '[' << rtl::to_string(*addr) << ']';
  os << " := " << rtl::to_string(*value);
  return os.str();
}

std::string RTTemplate::pretty(const bdd::BddManager& mgr) const {
  std::ostringstream os;
  os << signature() << "   when " << mgr.to_sop(cond);
  return os.str();
}

const StorageInfo* TemplateBase::find_storage(std::string_view name) const {
  for (const StorageInfo& s : storage)
    if (s.name == name) return &s;
  return nullptr;
}

bool TemplateBase::add_unique(RTTemplate t) {
  // Templates computing the same transfer (identical signature, which
  // includes immediate-field positions) are alternative encodings of one
  // RT: they merge into a single template whose condition is the OR of all
  // encodings. This keeps per-storage write conditions complete (needed for
  // side-effect suppression during binary encoding) and gives compaction
  // the full encoding freedom.
  auto [it, inserted] =
      signature_index_.emplace(t.signature(), templates.size());
  if (!inserted) {
    RTTemplate& existing = templates[it->second];
    if (mgr) existing.cond = mgr->lor(existing.cond, t.cond);
    return false;
  }
  t.id = static_cast<int>(templates.size());
  templates.push_back(std::move(t));
  return true;
}

}  // namespace record::rtl
