// Register-transfer templates: the behavioural processor view (paper sec. 2).
//
// An RT template is one primitive processor operation `dest := exp` executable
// in a single machine cycle, represented as a tree pattern plus a BDD
// execution condition over instruction-word / mode-register / status bits.
// The template base is what instruction-set extraction produces and what tree
// grammar construction consumes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.h"
#include "hdl/ast.h"

namespace record::rtl {

/// Operator signature: hardware op kind (+ custom name) qualified by result
/// bit-width. Width qualification keeps 16-bit and 8-bit adders distinct
/// during pattern matching.
struct OpSig {
  hdl::OpKind kind = hdl::OpKind::Add;
  std::string custom;  // OpKind::Custom only
  int width = 0;

  /// Stable terminal name, e.g. "+.16", "RND.16", "bits31_16.16".
  [[nodiscard]] std::string name() const;

  friend bool operator==(const OpSig&, const OpSig&) = default;
};

/// Canonical operator signature for a bit-slice used as data (e.g. storing
/// the high accumulator half). Shared by route enumeration and IR lowering
/// so that patterns and subjects agree on the name.
[[nodiscard]] OpSig slice_op_sig(int msb, int lsb);

struct RTNode;
using RTNodePtr = std::unique_ptr<RTNode>;

/// Node of an RT template tree.
struct RTNode {
  enum class Kind : std::uint8_t {
    Op,         // operator with children
    RegRead,    // read of a register / mode register (leaf)
    MemLoad,    // memory read; child 0 = address tree
    PortIn,     // primary processor input port (leaf)
    Imm,        // instruction-word immediate field (leaf)
    HardConst,  // hardwired constant (leaf)
  };

  Kind kind = Kind::HardConst;
  OpSig op;                 // Op
  std::string name;         // RegRead / MemLoad / PortIn: instance/port name
  int width = 0;            // result width in bits
  std::int64_t value = 0;   // HardConst
  std::vector<int> imm_bits;  // Imm: instruction-word bit positions (lsb first)
  std::vector<RTNodePtr> children;

  [[nodiscard]] RTNodePtr clone() const;
};

[[nodiscard]] RTNodePtr make_op(OpSig sig, std::vector<RTNodePtr> children);
[[nodiscard]] RTNodePtr make_reg_read(std::string name, int width);
[[nodiscard]] RTNodePtr make_mem_load(std::string mem, int width,
                                      RTNodePtr addr);
[[nodiscard]] RTNodePtr make_port_in(std::string port, int width);
[[nodiscard]] RTNodePtr make_imm(std::vector<int> bits);
[[nodiscard]] RTNodePtr make_hard_const(std::int64_t value, int width);

/// Canonical textual form; equal trees have equal strings (used for
/// deduplication and in tests).
[[nodiscard]] std::string to_string(const RTNode& n);

[[nodiscard]] bool equal(const RTNode& a, const RTNode& b);

/// Number of nodes in the tree.
[[nodiscard]] std::size_t tree_size(const RTNode& n);

/// Destination categories of an RT.
enum class DestKind : std::uint8_t { Register, ModeReg, Memory, ProcOut };

[[nodiscard]] std::string_view to_string(DestKind k);

struct RTTemplate {
  int id = -1;
  DestKind dest_kind = DestKind::Register;
  std::string dest;   // instance name (Register/ModeReg/Memory) or port name
  int dest_width = 0;
  RTNodePtr addr;     // Memory destinations: address tree; null otherwise
  RTNodePtr value;    // the transferred value
  bdd::Ref cond = bdd::kTrue;  // execution condition (in the base's manager)
  std::string provenance;      // "ise", "commute(<id>)", "rewrite:<rule>(<id>)"

  [[nodiscard]] RTTemplate clone_shallow_meta() const;
  /// Canonical "dest := tree [addr]" dump including nothing about conditions.
  [[nodiscard]] std::string signature() const;
  /// Human-readable one-liner including the condition (for listings).
  [[nodiscard]] std::string pretty(const bdd::BddManager& mgr) const;
};

/// A storable location known to the grammar (the SEQ set) or a primary port
/// (the PORTS set).
struct StorageInfo {
  std::string name;
  DestKind kind = DestKind::Register;  // ProcOut entries are write-only ports
  int width = 0;
  bool readable = true;  // ProcOut ports are not readable
  /// Memory storages: addressable cells (the model's SIZE); 0 otherwise.
  /// The RT-level simulator bounds-checks decoded write addresses with it.
  std::int64_t cells = 0;
};

struct PortInInfo {
  std::string name;
  int width = 0;
};

/// The RT template base: everything grammar construction needs.
/// Owns the BDD manager that all template conditions live in.
///
/// Thread safety: a fully built base is immutable and may be shared across
/// concurrent compile jobs. The owned BddManager is internally synchronised
/// (see bdd/bdd.h), so condition manipulation from several threads is safe;
/// mutating the base itself (add_unique, editing templates) is not and must
/// stay confined to the single-threaded retargeting pipeline.
struct TemplateBase {
  std::shared_ptr<bdd::BddManager> mgr;
  std::vector<RTTemplate> templates;
  std::vector<StorageInfo> storage;   // SEQ ∪ writable ports (dest domain)
  std::vector<PortInInfo> in_ports;   // primary inputs (readable terminals)
  int instruction_width = 0;
  /// Architectural branch delay slots: a write to the program counter lands
  /// this many instruction words late (HDL `DELAY n` on the PC register).
  int branch_delay_slots = 0;

  [[nodiscard]] std::size_t size() const { return templates.size(); }
  [[nodiscard]] const StorageInfo* find_storage(std::string_view name) const;

  /// Appends a template (assigning the next id). If a template with the
  /// same transfer signature already exists, its execution condition is
  /// widened by OR (alternative encodings of the same RT) and false is
  /// returned.
  bool add_unique(RTTemplate t);

 private:
  std::unordered_map<std::string, std::size_t> signature_index_;
};

}  // namespace record::rtl
