#include "rtl/rewrite.h"

#include <unordered_map>

namespace record::rtl {

RWPatPtr RWPat::clone() const {
  auto out = std::make_unique<RWPat>();
  out->kind = kind;
  out->var = var;
  out->op = op;
  out->custom = custom;
  out->value = value;
  out->children.reserve(children.size());
  for (const RWPatPtr& c : children) out->children.push_back(c->clone());
  return out;
}

RWPatPtr pat_var(std::string name) {
  auto p = std::make_unique<RWPat>();
  p->kind = RWPat::Kind::Var;
  p->var = std::move(name);
  return p;
}

RWPatPtr pat_const(std::int64_t value) {
  auto p = std::make_unique<RWPat>();
  p->kind = RWPat::Kind::Const;
  p->value = value;
  return p;
}

RWPatPtr pat_op(hdl::OpKind op, std::vector<RWPatPtr> children) {
  auto p = std::make_unique<RWPat>();
  p->kind = RWPat::Kind::Op;
  p->op = op;
  p->children = std::move(children);
  return p;
}

void RewriteLibrary::add(std::string name, RWPatPtr lhs, RWPatPtr rhs) {
  rules_.push_back(RewriteRule{std::move(name), std::move(lhs), std::move(rhs)});
}

RewriteLibrary RewriteLibrary::standard() {
  using hdl::OpKind;
  RewriteLibrary lib;
  auto v = [](const char* n) { return pat_var(n); };

  // A shifter implements x + x.
  {
    std::vector<RWPatPtr> l;
    l.push_back(v("x"));
    l.push_back(pat_const(1));
    std::vector<RWPatPtr> r;
    r.push_back(v("x"));
    r.push_back(v("x"));
    lib.add("shl1-to-add", pat_op(OpKind::Shl, std::move(l)),
            pat_op(OpKind::Add, std::move(r)));
  }
  // Neutral elements: the adder/subtractor/multiplier doubles as a mover.
  {
    std::vector<RWPatPtr> l;
    l.push_back(v("x"));
    l.push_back(pat_const(0));
    lib.add("add0-elim", pat_op(OpKind::Add, std::move(l)), v("x"));
  }
  {
    std::vector<RWPatPtr> l;
    l.push_back(v("x"));
    l.push_back(pat_const(0));
    lib.add("sub0-elim", pat_op(OpKind::Sub, std::move(l)), v("x"));
  }
  {
    std::vector<RWPatPtr> l;
    l.push_back(v("x"));
    l.push_back(pat_const(1));
    lib.add("mul1-elim", pat_op(OpKind::Mul, std::move(l)), v("x"));
  }
  {
    std::vector<RWPatPtr> l;
    l.push_back(v("x"));
    l.push_back(pat_const(0));
    lib.add("or0-elim", pat_op(OpKind::Or, std::move(l)), v("x"));
  }
  {
    std::vector<RWPatPtr> l;
    l.push_back(v("x"));
    l.push_back(pat_const(0));
    lib.add("xor0-elim", pat_op(OpKind::Xor, std::move(l)), v("x"));
  }
  // add(x, neg(y)) <-> sub(x, y): both shapes map to whichever unit exists.
  {
    std::vector<RWPatPtr> inner;
    inner.push_back(v("y"));
    std::vector<RWPatPtr> l;
    l.push_back(v("x"));
    l.push_back(pat_op(OpKind::Neg, std::move(inner)));
    std::vector<RWPatPtr> r;
    r.push_back(v("x"));
    r.push_back(v("y"));
    lib.add("addneg-to-sub", pat_op(OpKind::Add, std::move(l)),
            pat_op(OpKind::Sub, std::move(r)));
  }
  {
    std::vector<RWPatPtr> l;
    l.push_back(v("x"));
    l.push_back(v("y"));
    std::vector<RWPatPtr> inner;
    inner.push_back(v("y"));
    std::vector<RWPatPtr> r;
    r.push_back(v("x"));
    r.push_back(pat_op(OpKind::Neg, std::move(inner)));
    lib.add("sub-to-addneg", pat_op(OpKind::Sub, std::move(l)),
            pat_op(OpKind::Add, std::move(r)));
  }
  // neg(neg(x)) -> x.
  {
    std::vector<RWPatPtr> inner;
    inner.push_back(v("x"));
    std::vector<RWPatPtr> l;
    l.push_back(pat_op(OpKind::Neg, std::move(inner)));
    lib.add("negneg-elim", pat_op(OpKind::Neg, std::move(l)), v("x"));
  }
  return lib;
}

namespace {

using Bindings = std::unordered_map<std::string, const RTNode*>;

bool match(const RWPat& pat, const RTNode& node, Bindings& bind) {
  switch (pat.kind) {
    case RWPat::Kind::Var: {
      auto it = bind.find(pat.var);
      if (it != bind.end()) return equal(*it->second, node);
      bind.emplace(pat.var, &node);
      return true;
    }
    case RWPat::Kind::Const:
      return node.kind == RTNode::Kind::HardConst && node.value == pat.value;
    case RWPat::Kind::Op: {
      if (node.kind != RTNode::Kind::Op) return false;
      if (node.op.kind != pat.op) return false;
      if (pat.op == hdl::OpKind::Custom && node.op.custom != pat.custom)
        return false;
      if (node.children.size() != pat.children.size()) return false;
      for (std::size_t i = 0; i < pat.children.size(); ++i)
        if (!match(*pat.children[i], *node.children[i], bind)) return false;
      return true;
    }
  }
  return false;
}

RTNodePtr build(const RWPat& pat, const Bindings& bind, int width) {
  switch (pat.kind) {
    case RWPat::Kind::Var: {
      auto it = bind.find(pat.var);
      return it != bind.end() ? it->second->clone()
                              : make_hard_const(0, width);
    }
    case RWPat::Kind::Const:
      return make_hard_const(pat.value, width);
    case RWPat::Kind::Op: {
      std::vector<RTNodePtr> kids;
      kids.reserve(pat.children.size());
      for (const RWPatPtr& c : pat.children)
        kids.push_back(build(*c, bind, width));
      OpSig sig{pat.op, pat.custom, width};
      return make_op(std::move(sig), std::move(kids));
    }
  }
  return make_hard_const(0, width);
}

bool contains(const RTNode& tree, const RTNode* target) {
  if (&tree == target) return true;
  for (const RTNodePtr& c : tree.children)
    if (contains(*c, target)) return true;
  return false;
}

/// Rebuilds `tree` with the node at `target` replaced by `replacement`.
RTNodePtr rebuild(const RTNode& tree, const RTNode* target,
                  RTNodePtr replacement) {
  if (&tree == target) return replacement;
  RTNodePtr out = std::make_unique<RTNode>();
  out->kind = tree.kind;
  out->op = tree.op;
  out->name = tree.name;
  out->width = tree.width;
  out->value = tree.value;
  out->imm_bits = tree.imm_bits;
  out->children.reserve(tree.children.size());
  for (const RTNodePtr& c : tree.children) {
    // Exactly one child subtree can contain `target` (node identity);
    // move the replacement only into that branch and clone the rest.
    if (contains(*c, target))
      out->children.push_back(rebuild(*c, target, std::move(replacement)));
    else
      out->children.push_back(c->clone());
  }
  return out;
}

void collect_nodes(const RTNode& tree, std::vector<const RTNode*>& out) {
  out.push_back(&tree);
  for (const RTNodePtr& c : tree.children) collect_nodes(*c, out);
}

}  // namespace

std::vector<RTNodePtr> apply_rule(const RTNode& tree,
                                  const RewriteRule& rule) {
  std::vector<RTNodePtr> variants;
  std::vector<const RTNode*> positions;
  collect_nodes(tree, positions);
  for (const RTNode* pos : positions) {
    Bindings bind;
    if (!match(*rule.lhs, *pos, bind)) continue;
    RTNodePtr replacement = build(*rule.rhs, bind, pos->width);
    variants.push_back(rebuild(tree, pos, std::move(replacement)));
  }
  return variants;
}

}  // namespace record::rtl
