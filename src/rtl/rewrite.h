// Algebraic rewrite rules for template-base extension (paper section 3).
//
// "Optionally, additional templates are also created based on
//  application-specific rewrite rules retrieved from an external
//  transformation library."
//
// A rule is a pair of tree patterns with variables. When a rule's LHS
// matches a subtree of an extracted RT template, a variant template with the
// RHS shape is added: the machine instruction stays the same, but source
// expression trees of a different algebraic shape can now be covered by it.
// Example: rule `shl(x, 1) => add(x, x)` lets a hardware shifter implement
// the source expression `x + x`.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hdl/ast.h"
#include "rtl/template.h"

namespace record::rtl {

struct RWPat;
using RWPatPtr = std::unique_ptr<RWPat>;

/// Rewrite pattern node. `Var` binds/references a subtree; `Op` matches an
/// operator node of the given kind (width-agnostic); `Const` matches a
/// hardwired constant of the given value.
struct RWPat {
  enum class Kind : std::uint8_t { Var, Op, Const };

  Kind kind = Kind::Var;
  std::string var;                     // Var
  hdl::OpKind op = hdl::OpKind::Add;   // Op
  std::string custom;                  // Op with OpKind::Custom
  std::int64_t value = 0;              // Const
  std::vector<RWPatPtr> children;

  [[nodiscard]] RWPatPtr clone() const;
};

[[nodiscard]] RWPatPtr pat_var(std::string name);
[[nodiscard]] RWPatPtr pat_const(std::int64_t value);
[[nodiscard]] RWPatPtr pat_op(hdl::OpKind op, std::vector<RWPatPtr> children);

struct RewriteRule {
  std::string name;
  RWPatPtr lhs;
  RWPatPtr rhs;
};

/// An ordered collection of rewrite rules ("external transformation
/// library"). Users may build their own or start from `standard()`.
class RewriteLibrary {
 public:
  void add(std::string name, RWPatPtr lhs, RWPatPtr rhs);

  [[nodiscard]] const std::vector<RewriteRule>& rules() const {
    return rules_;
  }
  [[nodiscard]] std::size_t size() const { return rules_.size(); }

  /// The default algebraic library: shift/add equivalences, neutral-element
  /// eliminations, sub/add-neg dualities, double-negation.
  [[nodiscard]] static RewriteLibrary standard();

 private:
  std::vector<RewriteRule> rules_;
};

/// All variant trees obtained by applying `rule` at every position of
/// `tree` (one application per variant).
[[nodiscard]] std::vector<RTNodePtr> apply_rule(const RTNode& tree,
                                                const RewriteRule& rule);

}  // namespace record::rtl
