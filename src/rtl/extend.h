// Template-base extension (paper section 3).
//
// "In order to increase the search space investigated during code selection,
//  the RT template base delivered by ISE is extended by further templates":
//    * for each template containing a commutative operator, complementary
//      templates with swapped arguments are added, and
//    * optional algebraic rewrite rules from an external transformation
//      library create further equivalent-shape variants.
#pragma once

#include <cstddef>

#include "rtl/rewrite.h"
#include "rtl/template.h"

namespace record::rtl {

struct ExtendOptions {
  bool commutativity = true;
  /// Rewrite library to apply; nullptr disables rewriting.
  const RewriteLibrary* rewrites = nullptr;
  /// Upper bound on variants generated from a single template (guards
  /// against exponential swap combinations in deep sum-of-product trees).
  std::size_t max_variants_per_template = 64;
  /// Rewrite passes (variants of variants); 1 matches the paper's one-shot
  /// extension.
  int rewrite_iterations = 1;
};

struct ExtendStats {
  std::size_t commutative_added = 0;
  std::size_t rewrite_added = 0;
  std::size_t variant_capped = 0;  // templates whose variants hit the cap
};

/// Extends `base` in place.
ExtendStats extend_template_base(TemplateBase& base,
                                 const ExtendOptions& options);

}  // namespace record::rtl
