#include "rtl/extend.h"

#include "util/strings.h"

namespace record::rtl {

namespace {

/// Generates every tree obtainable by swapping the children of commutative
/// binary operator nodes, excluding the original tree, up to `cap` results.
void commute_variants(const RTNode& tree, std::size_t cap,
                      std::vector<RTNodePtr>& out, bool& capped) {
  // Work queue of partially-explored variants. Each step picks the next
  // commutative node (in preorder) and branches on swap / no-swap.
  std::vector<const RTNode*> commutative_nodes;
  std::vector<const RTNode*> stack{&tree};
  while (!stack.empty()) {
    const RTNode* n = stack.back();
    stack.pop_back();
    if (n->kind == RTNode::Kind::Op && n->children.size() == 2 &&
        n->op.kind != hdl::OpKind::Custom &&
        hdl::is_commutative(n->op.kind) &&
        !equal(*n->children[0], *n->children[1]))
      commutative_nodes.push_back(n);
    for (const RTNodePtr& c : n->children) stack.push_back(c.get());
  }
  if (commutative_nodes.empty()) return;

  std::size_t combos = std::size_t{1} << std::min<std::size_t>(
                           commutative_nodes.size(), 16);
  for (std::size_t mask = 1; mask < combos; ++mask) {
    if (out.size() >= cap) {
      capped = true;
      return;
    }
    // Clone the tree, swapping the nodes selected by `mask`.
    struct Cloner {
      const std::vector<const RTNode*>& nodes;
      std::size_t mask;
      RTNodePtr run(const RTNode& n) {
        RTNodePtr o = std::make_unique<RTNode>();
        o->kind = n.kind;
        o->op = n.op;
        o->name = n.name;
        o->width = n.width;
        o->value = n.value;
        o->imm_bits = n.imm_bits;
        bool swap = false;
        for (std::size_t i = 0; i < nodes.size(); ++i)
          if (nodes[i] == &n && (mask & (std::size_t{1} << i))) swap = true;
        o->children.reserve(n.children.size());
        for (const RTNodePtr& c : n.children) o->children.push_back(run(*c));
        if (swap && o->children.size() == 2)
          std::swap(o->children[0], o->children[1]);
        return o;
      }
    };
    Cloner cloner{commutative_nodes, mask};
    out.push_back(cloner.run(tree));
  }
}

}  // namespace

ExtendStats extend_template_base(TemplateBase& base,
                                 const ExtendOptions& options) {
  ExtendStats stats;

  if (options.commutativity) {
    std::size_t original_count = base.templates.size();
    for (std::size_t i = 0; i < original_count; ++i) {
      std::vector<RTNodePtr> variants;
      bool capped = false;
      commute_variants(*base.templates[i].value,
                       options.max_variants_per_template, variants, capped);
      if (capped) ++stats.variant_capped;
      for (RTNodePtr& v : variants) {
        RTTemplate t = base.templates[i].clone_shallow_meta();
        t.addr = base.templates[i].addr ? base.templates[i].addr->clone()
                                        : nullptr;
        t.value = std::move(v);
        t.provenance = util::fmt("commute({})", base.templates[i].id);
        if (base.add_unique(std::move(t))) ++stats.commutative_added;
      }
    }
  }

  if (options.rewrites) {
    for (int pass = 0; pass < options.rewrite_iterations; ++pass) {
      std::size_t count_before_pass = base.templates.size();
      std::size_t added_this_pass = 0;
      for (std::size_t i = 0; i < count_before_pass; ++i) {
        for (const RewriteRule& rule : options.rewrites->rules()) {
          std::vector<RTNodePtr> variants =
              apply_rule(*base.templates[i].value, rule);
          for (RTNodePtr& v : variants) {
            RTTemplate t = base.templates[i].clone_shallow_meta();
            t.addr = base.templates[i].addr
                         ? base.templates[i].addr->clone()
                         : nullptr;
            t.value = std::move(v);
            t.provenance =
                util::fmt("rewrite:{}({})", rule.name, base.templates[i].id);
            if (base.add_unique(std::move(t))) {
              ++stats.rewrite_added;
              ++added_this_pass;
            }
          }
        }
      }
      if (added_this_pass == 0) break;
    }
  }

  return stats;
}

}  // namespace record::rtl
