// IR programs: statements with destinations, storage bindings, labels and
// branches.
//
// Each assignment is an expression tree with an explicit destination (the
// paper's "ET associated with a destination"). All program variables are
// a-priori bound to target storage (paper section 3.1): registers or memory
// cells; branch statements use the target's program-control templates.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ir/expr.h"
#include "util/diagnostics.h"

namespace record::ir {

/// Where a program variable lives on the target.
struct Binding {
  enum class Kind : std::uint8_t { Register, MemCell };

  Kind kind = Kind::Register;
  std::string storage;      // register/memory instance name
  std::int64_t cell = 0;    // MemCell: address

  [[nodiscard]] std::string str() const;
};

enum class BranchKind : std::uint8_t { Always, IfZero, IfNotZero };

struct Stmt {
  enum class Kind : std::uint8_t {
    Assign,   // dest_var = rhs
    Store,    // mem[addr] = rhs
    LabelDef, // label:
    Branch    // goto / ifz v goto / ifnz v goto
  };

  Kind kind = Kind::Assign;
  std::string dest_var;  // Assign
  std::string mem;       // Store
  ExprPtr addr;          // Store
  ExprPtr rhs;           // Assign / Store
  std::string label;     // LabelDef / Branch target
  BranchKind branch = BranchKind::Always;
  std::string cond_var;  // Branch IfZero/IfNotZero: tested variable

  [[nodiscard]] std::string str() const;
};

class Program {
 public:
  explicit Program(std::string name = "program") : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  // --- construction -------------------------------------------------------

  void bind_register(const std::string& var, std::string reg);
  void bind_mem_cell(const std::string& var, std::string mem,
                     std::int64_t cell);

  void assign(std::string dest_var, ExprPtr rhs);
  void store(std::string mem, ExprPtr addr, ExprPtr rhs);
  void label(std::string name);
  void branch(std::string target);
  void branch_if_zero(std::string var, std::string target);
  void branch_if_not_zero(std::string var, std::string target);

  // --- access ---------------------------------------------------------------

  [[nodiscard]] const std::vector<Stmt>& stmts() const { return stmts_; }
  [[nodiscard]] const std::map<std::string, Binding>& bindings() const {
    return bindings_;
  }
  [[nodiscard]] const Binding* binding_of(const std::string& var) const;

  /// Checks that every referenced variable is bound, labels are unique and
  /// every branch target exists.
  bool validate(util::DiagnosticSink& diags) const;

  /// Multi-line listing for tests and docs.
  [[nodiscard]] std::string str() const;

 private:
  std::string name_;
  std::vector<Stmt> stmts_;
  std::map<std::string, Binding> bindings_;
};

}  // namespace record::ir
