#include "ir/builder.h"

// ProgramBuilder is header-only; this translation unit anchors the library
// archive member.

namespace record::ir {}  // namespace record::ir
