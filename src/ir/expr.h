// Intermediate representation: expression trees (paper section 3.1).
//
// ETs are unary/binary trees whose inner nodes are operators and whose
// leaves are program variables, primary inputs or constants. Every variable
// is a-priori bound to a storage resource of the target (register, memory
// cell or processor port); widths are resolved against the target when the
// subject tree is built, so the same IR program compiles for any model that
// offers the required operations.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hdl/ast.h"  // hdl::OpKind is the shared operator vocabulary

namespace record::ir {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind : std::uint8_t {
    Const,  // integer literal
    Var,    // bound program variable
    Load,   // mem[addr]: args[0] is the address expression
    OpNode  // operator application
  };

  Kind kind = Kind::Const;
  std::int64_t value = 0;        // Const
  std::string var;               // Var
  std::string mem;               // Load: memory instance name
  hdl::OpKind op = hdl::OpKind::Add;  // OpNode
  std::string custom;            // OpNode with OpKind::Custom ("hi", "lo", ...)
  int width_override = 0;        // 0 = infer from target at subject build
  std::vector<ExprPtr> args;

  [[nodiscard]] ExprPtr clone() const;
};

[[nodiscard]] ExprPtr e_const(std::int64_t value);
[[nodiscard]] ExprPtr e_var(std::string name);
[[nodiscard]] ExprPtr e_load(std::string mem, ExprPtr addr);
[[nodiscard]] ExprPtr e_un(hdl::OpKind op, ExprPtr a);
[[nodiscard]] ExprPtr e_bin(hdl::OpKind op, ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr e_add(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr e_sub(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr e_mul(ExprPtr a, ExprPtr b);
/// Intrinsics resolved against child width at subject-build time:
/// hi(x) = upper half bits, lo(x) = lower half bits.
[[nodiscard]] ExprPtr e_hi(ExprPtr a);
[[nodiscard]] ExprPtr e_lo(ExprPtr a);
[[nodiscard]] ExprPtr e_custom(std::string name, std::vector<ExprPtr> args);

/// Stable dump: "(acc + ram[i])", "lo(acc)".
[[nodiscard]] std::string to_string(const Expr& e);

/// Node count.
[[nodiscard]] std::size_t tree_size(const Expr& e);

}  // namespace record::ir
