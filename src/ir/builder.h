// Fluent construction of IR programs (used by examples, tests and the
// DSPStone kernel definitions).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "ir/program.h"

namespace record::ir {

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name) : prog_(std::move(name)) {}

  /// Binds a variable to a register.
  ProgramBuilder& reg(const std::string& var, std::string storage) {
    prog_.bind_register(var, std::move(storage));
    return *this;
  }

  /// Binds a variable to a memory cell.
  ProgramBuilder& cell(const std::string& var, std::string mem,
                       std::int64_t addr) {
    prog_.bind_mem_cell(var, std::move(mem), addr);
    return *this;
  }

  ProgramBuilder& let(std::string dest, ExprPtr rhs) {
    prog_.assign(std::move(dest), std::move(rhs));
    return *this;
  }

  ProgramBuilder& put(std::string mem, ExprPtr addr, ExprPtr rhs) {
    prog_.store(std::move(mem), std::move(addr), std::move(rhs));
    return *this;
  }

  ProgramBuilder& label(std::string name) {
    prog_.label(std::move(name));
    return *this;
  }

  ProgramBuilder& jump(std::string target) {
    prog_.branch(std::move(target));
    return *this;
  }

  /// Counted loop running `trip` times: `counter` (a bound register
  /// variable) is initialised to trip, the body runs, the counter is
  /// decremented and a conditional branch closes the loop.
  ProgramBuilder& loop(const std::string& counter, std::int64_t trip,
                       const std::function<void(ProgramBuilder&)>& body) {
    std::string top = prog_.name() + "_L" + std::to_string(label_counter_++);
    prog_.assign(counter, e_const(trip));
    prog_.label(top);
    body(*this);
    prog_.assign(counter, e_sub(e_var(counter), e_const(1)));
    prog_.branch_if_not_zero(counter, top);
    return *this;
  }

  /// Unrolled repetition (no loop overhead; index passed to the body).
  ProgramBuilder& unroll(std::int64_t trip,
                         const std::function<void(ProgramBuilder&,
                                                  std::int64_t)>& body) {
    for (std::int64_t i = 0; i < trip; ++i) body(*this, i);
    return *this;
  }

  [[nodiscard]] Program take() { return std::move(prog_); }
  [[nodiscard]] Program& program() { return prog_; }

 private:
  Program prog_;
  int label_counter_ = 0;
};

}  // namespace record::ir
