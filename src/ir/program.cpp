#include "ir/program.h"

#include <set>
#include <sstream>

#include "util/strings.h"

namespace record::ir {

std::string Binding::str() const {
  if (kind == Kind::Register) return storage;
  return util::fmt("{}[{}]", storage, cell);
}

std::string Stmt::str() const {
  switch (kind) {
    case Kind::Assign:
      return util::fmt("{} = {}", dest_var, to_string(*rhs));
    case Kind::Store:
      return util::fmt("{}[{}] = {}", mem, to_string(*addr), to_string(*rhs));
    case Kind::LabelDef:
      return label + ":";
    case Kind::Branch:
      switch (branch) {
        case BranchKind::Always:
          return util::fmt("goto {}", label);
        case BranchKind::IfZero:
          return util::fmt("ifz {} goto {}", cond_var, label);
        case BranchKind::IfNotZero:
          return util::fmt("ifnz {} goto {}", cond_var, label);
      }
  }
  return "?";
}

void Program::bind_register(const std::string& var, std::string reg) {
  bindings_[var] = Binding{Binding::Kind::Register, std::move(reg), 0};
}

void Program::bind_mem_cell(const std::string& var, std::string mem,
                            std::int64_t cell) {
  bindings_[var] = Binding{Binding::Kind::MemCell, std::move(mem), cell};
}

void Program::assign(std::string dest_var, ExprPtr rhs) {
  Stmt s;
  s.kind = Stmt::Kind::Assign;
  s.dest_var = std::move(dest_var);
  s.rhs = std::move(rhs);
  stmts_.push_back(std::move(s));
}

void Program::store(std::string mem, ExprPtr addr, ExprPtr rhs) {
  Stmt s;
  s.kind = Stmt::Kind::Store;
  s.mem = std::move(mem);
  s.addr = std::move(addr);
  s.rhs = std::move(rhs);
  stmts_.push_back(std::move(s));
}

void Program::label(std::string name) {
  Stmt s;
  s.kind = Stmt::Kind::LabelDef;
  s.label = std::move(name);
  stmts_.push_back(std::move(s));
}

void Program::branch(std::string target) {
  Stmt s;
  s.kind = Stmt::Kind::Branch;
  s.branch = BranchKind::Always;
  s.label = std::move(target);
  stmts_.push_back(std::move(s));
}

void Program::branch_if_zero(std::string var, std::string target) {
  Stmt s;
  s.kind = Stmt::Kind::Branch;
  s.branch = BranchKind::IfZero;
  s.cond_var = std::move(var);
  s.label = std::move(target);
  stmts_.push_back(std::move(s));
}

void Program::branch_if_not_zero(std::string var, std::string target) {
  Stmt s;
  s.kind = Stmt::Kind::Branch;
  s.branch = BranchKind::IfNotZero;
  s.cond_var = std::move(var);
  s.label = std::move(target);
  stmts_.push_back(std::move(s));
}

const Binding* Program::binding_of(const std::string& var) const {
  auto it = bindings_.find(var);
  return it == bindings_.end() ? nullptr : &it->second;
}

namespace {

void collect_vars(const Expr& e, std::set<std::string>& out) {
  if (e.kind == Expr::Kind::Var) out.insert(e.var);
  for (const ExprPtr& a : e.args) collect_vars(*a, out);
}

}  // namespace

bool Program::validate(util::DiagnosticSink& diags) const {
  std::set<std::string> labels;
  for (const Stmt& s : stmts_) {
    if (s.kind == Stmt::Kind::LabelDef && !labels.insert(s.label).second)
      diags.error({}, util::fmt("duplicate label '{}'", s.label));
  }
  std::set<std::string> used;
  for (const Stmt& s : stmts_) {
    switch (s.kind) {
      case Stmt::Kind::Assign:
        used.insert(s.dest_var);
        collect_vars(*s.rhs, used);
        break;
      case Stmt::Kind::Store:
        collect_vars(*s.addr, used);
        collect_vars(*s.rhs, used);
        break;
      case Stmt::Kind::Branch:
        if (s.branch != BranchKind::Always) used.insert(s.cond_var);
        if (!labels.count(s.label))
          diags.error({}, util::fmt("branch to unknown label '{}'", s.label));
        break;
      case Stmt::Kind::LabelDef:
        break;
    }
  }
  for (const std::string& v : used) {
    if (!bindings_.count(v))
      diags.error({}, util::fmt("variable '{}' has no storage binding", v));
  }
  return diags.ok();
}

std::string Program::str() const {
  std::ostringstream os;
  os << "program " << name_ << ":\n";
  for (const auto& [var, bind] : bindings_)
    os << "  bind " << var << " -> " << bind.str() << '\n';
  for (const Stmt& s : stmts_) os << "  " << s.str() << '\n';
  return os.str();
}

}  // namespace record::ir
