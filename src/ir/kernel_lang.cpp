#include "ir/kernel_lang.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <vector>

#include "util/strings.h"

namespace record::ir {

namespace {

using util::fmt;
using util::SourceLoc;

struct Tok {
  enum class K {
    Ident,
    Int,
    Punct,  // single char in text[0]
    Shl,
    Shr,
    Eof
  };
  K kind = K::Eof;
  std::string text;
  std::int64_t value = 0;
  SourceLoc loc;
};

class Lexer {
 public:
  Lexer(std::string_view src, util::DiagnosticSink& diags)
      : src_(src), diags_(diags) {}

  std::vector<Tok> run() {
    std::vector<Tok> out;
    for (;;) {
      skip();
      if (pos_ >= src_.size()) {
        out.push_back(Tok{Tok::K::Eof, "", 0, loc()});
        return out;
      }
      char c = src_[pos_];
      SourceLoc l = loc();
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string t;
        while (pos_ < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '_'))
          t.push_back(take());
        out.push_back(Tok{Tok::K::Ident, std::move(t), 0, l});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        std::string t;
        if (c == '0' && pos_ + 1 < src_.size() &&
            (src_[pos_ + 1] == 'x' || src_[pos_ + 1] == 'b')) {
          t.push_back(take());
          t.push_back(take());
        }
        while (pos_ < src_.size() &&
               std::isxdigit(static_cast<unsigned char>(src_[pos_])))
          t.push_back(take());
        auto v = util::parse_int(t);
        if (!v) {
          diags_.error(l, fmt("bad integer '{}'", t));
          v = 0;
        }
        out.push_back(Tok{Tok::K::Int, std::move(t), *v, l});
        continue;
      }
      if (c == '<' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '<') {
        take();
        take();
        out.push_back(Tok{Tok::K::Shl, "<<", 0, l});
        continue;
      }
      if (c == '>' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '>') {
        take();
        take();
        out.push_back(Tok{Tok::K::Shr, ">>", 0, l});
        continue;
      }
      take();
      out.push_back(Tok{Tok::K::Punct, std::string(1, c), 0, l});
    }
  }

 private:
  void skip() {
    for (;;) {
      while (pos_ < src_.size() &&
             std::isspace(static_cast<unsigned char>(src_[pos_])))
        take();
      if (pos_ + 1 < src_.size() && src_[pos_] == '-' &&
          src_[pos_ + 1] == '-') {
        while (pos_ < src_.size() && src_[pos_] != '\n') take();
        continue;
      }
      return;
    }
  }
  char take() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  SourceLoc loc() const { return {line_, col_}; }

  std::string_view src_;
  util::DiagnosticSink& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1, col_ = 1;
};

class Parser {
 public:
  Parser(std::vector<Tok> toks, util::DiagnosticSink& diags)
      : toks_(std::move(toks)), diags_(diags) {}

  std::optional<Program> run() {
    if (!accept_ident("kernel")) {
      error("kernel file must start with 'kernel <name>;'");
      return std::nullopt;
    }
    if (!at_ident()) {
      error("expected kernel name");
      return std::nullopt;
    }
    Program prog(take().text);
    if (!accept_punct(';')) {
      error("expected ';' after kernel name");
      return std::nullopt;
    }
    while (cur().kind != Tok::K::Eof) {
      if (!statement(prog)) return std::nullopt;
    }
    if (!diags_.ok()) return std::nullopt;
    return prog;
  }

 private:
  // --- token helpers ----------------------------------------------------

  const Tok& cur() const { return toks_[pos_]; }
  const Tok& ahead(std::size_t n) const {
    return toks_[std::min(pos_ + n, toks_.size() - 1)];
  }
  Tok take() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool at_ident() const { return cur().kind == Tok::K::Ident; }
  bool at_ident(std::string_view s) const {
    return cur().kind == Tok::K::Ident && cur().text == s;
  }
  bool at_punct(char c) const {
    return cur().kind == Tok::K::Punct && cur().text[0] == c;
  }
  bool accept_ident(std::string_view s) {
    if (!at_ident(s)) return false;
    take();
    return true;
  }
  bool accept_punct(char c) {
    if (!at_punct(c)) return false;
    take();
    return true;
  }
  bool expect_punct(char c, std::string_view what) {
    if (accept_punct(c)) return true;
    error(fmt("expected '{}' {}", std::string(1, c), what));
    return false;
  }
  void error(std::string msg) { diags_.error(cur().loc, std::move(msg)); }

  // --- declarations / statements ------------------------------------------

  bool statement(Program& prog) {
    if (accept_ident("bind")) return bind_decl(prog);
    if (accept_ident("cell")) return cell_decl(prog);
    if (accept_ident("const")) return const_decl();
    if (accept_ident("loopreg")) return loopreg_decl(prog);
    if (accept_ident("repeat")) return repeat_stmt(prog, /*unrolled=*/false);
    if (accept_ident("unroll")) return repeat_stmt(prog, /*unrolled=*/true);
    if (accept_ident("goto")) {
      if (!at_ident()) {
        error("expected label after goto");
        return false;
      }
      prog.branch(take().text);
      return expect_punct(';', "after goto");
    }
    if (at_ident("ifz") || at_ident("ifnz")) return branch_stmt(prog);
    // Label definition: IDENT ':'
    if (at_ident() && ahead(1).kind == Tok::K::Punct &&
        ahead(1).text[0] == ':') {
      std::string name = take().text;
      take();  // ':'
      prog.label(std::move(name));
      return true;
    }
    // Assignment or store.
    if (at_ident()) {
      std::string name = take().text;
      if (at_punct('[')) {
        take();
        ExprPtr addr = expr();
        if (!addr) return false;
        if (!expect_punct(']', "after store address")) return false;
        if (!expect_punct('=', "in store")) return false;
        ExprPtr rhs = expr();
        if (!rhs) return false;
        prog.store(std::move(name), std::move(addr), std::move(rhs));
        return expect_punct(';', "after store");
      }
      if (!expect_punct('=', "in assignment")) return false;
      ExprPtr rhs = expr();
      if (!rhs) return false;
      prog.assign(std::move(name), std::move(rhs));
      return expect_punct(';', "after assignment");
    }
    error(fmt("unexpected token '{}'", cur().text));
    return false;
  }

  bool bind_decl(Program& prog) {
    if (!at_ident()) {
      error("expected variable name after 'bind'");
      return false;
    }
    std::string var = take().text;
    if (!expect_punct(':', "in bind")) return false;
    if (!at_ident()) {
      error("expected register name in bind");
      return false;
    }
    prog.bind_register(var, take().text);
    return expect_punct(';', "after bind");
  }

  bool cell_decl(Program& prog) {
    if (!at_ident()) {
      error("expected variable name after 'cell'");
      return false;
    }
    std::string var = take().text;
    if (!expect_punct(':', "in cell")) return false;
    if (!at_ident()) {
      error("expected memory name in cell");
      return false;
    }
    std::string mem = take().text;
    if (!expect_punct('[', "in cell")) return false;
    std::optional<std::int64_t> addr = const_expr();
    if (!addr) return false;
    if (!expect_punct(']', "in cell")) return false;
    prog.bind_mem_cell(var, mem, *addr);
    return expect_punct(';', "after cell");
  }

  bool const_decl() {
    if (!at_ident()) {
      error("expected name after 'const'");
      return false;
    }
    std::string name = take().text;
    if (!expect_punct('=', "in const")) return false;
    std::optional<std::int64_t> v = const_expr();
    if (!v) return false;
    consts_[name] = *v;
    return expect_punct(';', "after const");
  }

  bool loopreg_decl(Program& prog) {
    if (!at_ident()) {
      error("expected counter variable after 'loopreg'");
      return false;
    }
    loop_var_ = take().text;
    if (!expect_punct(':', "in loopreg")) return false;
    if (!at_ident()) {
      error("expected register name in loopreg");
      return false;
    }
    prog.bind_register(loop_var_, take().text);
    return expect_punct(';', "after loopreg");
  }

  bool branch_stmt(Program& prog) {
    bool not_zero = at_ident("ifnz");
    take();  // ifz / ifnz
    if (!at_ident()) {
      error("expected variable in conditional branch");
      return false;
    }
    std::string var = take().text;
    if (!accept_ident("goto")) {
      error("expected 'goto' in conditional branch");
      return false;
    }
    if (!at_ident()) {
      error("expected label in conditional branch");
      return false;
    }
    std::string target = take().text;
    if (not_zero)
      prog.branch_if_not_zero(std::move(var), std::move(target));
    else
      prog.branch_if_zero(std::move(var), std::move(target));
    return expect_punct(';', "after branch");
  }

  bool repeat_stmt(Program& prog, bool unrolled) {
    std::optional<std::int64_t> trip = const_expr();
    if (!trip) return false;
    if (!expect_punct('{', "to open repeat body")) return false;
    std::size_t body_start = pos_;
    // Find the matching '}' to re-parse the body (for unroll) or parse once.
    if (unrolled) {
      for (std::int64_t i = 0; i < *trip; ++i) {
        pos_ = body_start;
        if (!parse_body(prog)) return false;
      }
      if (*trip == 0) {  // still need to skip the body
        if (!skip_body()) return false;
      }
      return true;
    }
    if (loop_var_.empty()) {
      error("'repeat' requires a prior 'loopreg' declaration");
      return false;
    }
    std::string top = fmt("{}_rep{}", prog.name(), label_counter_++);
    prog.assign(loop_var_, e_const(*trip));
    prog.label(top);
    if (!parse_body(prog)) return false;
    prog.assign(loop_var_, e_sub(e_var(loop_var_), e_const(1)));
    prog.branch_if_not_zero(loop_var_, top);
    return true;
  }

  bool parse_body(Program& prog) {
    while (!at_punct('}')) {
      if (cur().kind == Tok::K::Eof) {
        error("unterminated repeat body");
        return false;
      }
      if (!statement(prog)) return false;
    }
    take();  // '}'
    return true;
  }

  bool skip_body() {
    int depth = 1;
    while (depth > 0) {
      if (cur().kind == Tok::K::Eof) {
        error("unterminated repeat body");
        return false;
      }
      if (at_punct('{')) ++depth;
      if (at_punct('}')) --depth;
      take();
    }
    return true;
  }

  std::optional<std::int64_t> const_expr() {
    if (cur().kind == Tok::K::Int) return take().value;
    if (at_ident()) {
      auto it = consts_.find(cur().text);
      if (it != consts_.end()) {
        take();
        return it->second;
      }
    }
    error("expected integer or declared const");
    return std::nullopt;
  }

  // --- expressions ----------------------------------------------------------
  // Precedence (loosest first): | ^ & << >> + - * / unary.

  ExprPtr expr() { return or_expr(); }

  ExprPtr or_expr() {
    ExprPtr l = xor_expr();
    while (l && at_punct('|')) {
      take();
      ExprPtr r = xor_expr();
      if (!r) return nullptr;
      l = e_bin(hdl::OpKind::Or, std::move(l), std::move(r));
    }
    return l;
  }
  ExprPtr xor_expr() {
    ExprPtr l = and_expr();
    while (l && at_punct('^')) {
      take();
      ExprPtr r = and_expr();
      if (!r) return nullptr;
      l = e_bin(hdl::OpKind::Xor, std::move(l), std::move(r));
    }
    return l;
  }
  ExprPtr and_expr() {
    ExprPtr l = shift_expr();
    while (l && at_punct('&')) {
      take();
      ExprPtr r = shift_expr();
      if (!r) return nullptr;
      l = e_bin(hdl::OpKind::And, std::move(l), std::move(r));
    }
    return l;
  }
  ExprPtr shift_expr() {
    ExprPtr l = add_expr();
    while (l && (cur().kind == Tok::K::Shl || cur().kind == Tok::K::Shr)) {
      hdl::OpKind op =
          cur().kind == Tok::K::Shl ? hdl::OpKind::Shl : hdl::OpKind::Shr;
      take();
      ExprPtr r = add_expr();
      if (!r) return nullptr;
      l = e_bin(op, std::move(l), std::move(r));
    }
    return l;
  }
  ExprPtr add_expr() {
    ExprPtr l = mul_expr();
    while (l && (at_punct('+') || at_punct('-'))) {
      hdl::OpKind op = at_punct('+') ? hdl::OpKind::Add : hdl::OpKind::Sub;
      take();
      ExprPtr r = mul_expr();
      if (!r) return nullptr;
      l = e_bin(op, std::move(l), std::move(r));
    }
    return l;
  }
  ExprPtr mul_expr() {
    ExprPtr l = unary_expr();
    while (l && (at_punct('*') || at_punct('/'))) {
      hdl::OpKind op = at_punct('*') ? hdl::OpKind::Mul : hdl::OpKind::Div;
      take();
      ExprPtr r = unary_expr();
      if (!r) return nullptr;
      l = e_bin(op, std::move(l), std::move(r));
    }
    return l;
  }
  ExprPtr unary_expr() {
    if (at_punct('-')) {
      take();
      ExprPtr a = unary_expr();
      if (!a) return nullptr;
      return e_un(hdl::OpKind::Neg, std::move(a));
    }
    if (at_punct('~')) {
      take();
      ExprPtr a = unary_expr();
      if (!a) return nullptr;
      return e_un(hdl::OpKind::Not, std::move(a));
    }
    return primary();
  }
  ExprPtr primary() {
    if (cur().kind == Tok::K::Int) return e_const(take().value);
    if (accept_punct('(')) {
      ExprPtr e = expr();
      if (!e) return nullptr;
      if (!expect_punct(')', "in expression")) return nullptr;
      return e;
    }
    if (at_ident()) {
      std::string name = take().text;
      if (auto it = consts_.find(name); it != consts_.end())
        return e_const(it->second);
      if (at_punct('[')) {
        take();
        ExprPtr addr = expr();
        if (!addr) return nullptr;
        if (!expect_punct(']', "after memory index")) return nullptr;
        return e_load(std::move(name), std::move(addr));
      }
      if (at_punct('(')) {
        take();
        std::vector<ExprPtr> args;
        if (!at_punct(')')) {
          for (;;) {
            ExprPtr a = expr();
            if (!a) return nullptr;
            args.push_back(std::move(a));
            if (!accept_punct(',')) break;
          }
        }
        if (!expect_punct(')', "after call arguments")) return nullptr;
        // Width cast w<N>(x): pins the operand's result width to N bits
        // (Expr::width_override) instead of the inferred width — how kernels
        // ask for a truncating multiply on targets whose ALU is not
        // widening. Any other name is a custom target operator.
        if (name.size() > 1 && name[0] == 'w' &&
            name.find_first_not_of("0123456789", 1) == std::string::npos &&
            args.size() == 1) {
          errno = 0;
          long width = std::strtol(name.c_str() + 1, nullptr, 10);
          if (errno != 0 || width < 1 || width > 1024) {
            error(fmt("width cast '{}' out of range (1..1024 bits)", name));
            return nullptr;
          }
          ExprPtr inner = std::move(args[0]);
          inner->width_override = static_cast<int>(width);
          return inner;
        }
        return e_custom(std::move(name), std::move(args));
      }
      return e_var(std::move(name));
    }
    error(fmt("expected expression, found '{}'", cur().text));
    return nullptr;
  }

  std::vector<Tok> toks_;
  util::DiagnosticSink& diags_;
  std::size_t pos_ = 0;
  std::map<std::string, std::int64_t> consts_;
  std::string loop_var_;
  int label_counter_ = 0;
};

}  // namespace

std::optional<Program> parse_kernel(std::string_view source,
                                    util::DiagnosticSink& diags) {
  Lexer lex(source, diags);
  std::vector<Tok> toks = lex.run();
  if (!diags.ok()) return std::nullopt;
  return Parser(std::move(toks), diags).run();
}

}  // namespace record::ir
