#include "ir/expr.h"

#include <sstream>

namespace record::ir {

ExprPtr Expr::clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->value = value;
  out->var = var;
  out->mem = mem;
  out->op = op;
  out->custom = custom;
  out->width_override = width_override;
  out->args.reserve(args.size());
  for (const ExprPtr& a : args) out->args.push_back(a->clone());
  return out;
}

ExprPtr e_const(std::int64_t value) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Const;
  e->value = value;
  return e;
}

ExprPtr e_var(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Var;
  e->var = std::move(name);
  return e;
}

ExprPtr e_load(std::string mem, ExprPtr addr) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Load;
  e->mem = std::move(mem);
  e->args.push_back(std::move(addr));
  return e;
}

ExprPtr e_un(hdl::OpKind op, ExprPtr a) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::OpNode;
  e->op = op;
  e->args.push_back(std::move(a));
  return e;
}

ExprPtr e_bin(hdl::OpKind op, ExprPtr a, ExprPtr b) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::OpNode;
  e->op = op;
  e->args.push_back(std::move(a));
  e->args.push_back(std::move(b));
  return e;
}

ExprPtr e_add(ExprPtr a, ExprPtr b) {
  return e_bin(hdl::OpKind::Add, std::move(a), std::move(b));
}
ExprPtr e_sub(ExprPtr a, ExprPtr b) {
  return e_bin(hdl::OpKind::Sub, std::move(a), std::move(b));
}
ExprPtr e_mul(ExprPtr a, ExprPtr b) {
  return e_bin(hdl::OpKind::Mul, std::move(a), std::move(b));
}

ExprPtr e_hi(ExprPtr a) {
  return e_custom("hi", [&] {
    std::vector<ExprPtr> v;
    v.push_back(std::move(a));
    return v;
  }());
}

ExprPtr e_lo(ExprPtr a) {
  return e_custom("lo", [&] {
    std::vector<ExprPtr> v;
    v.push_back(std::move(a));
    return v;
  }());
}

ExprPtr e_custom(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::OpNode;
  e->op = hdl::OpKind::Custom;
  e->custom = std::move(name);
  e->args = std::move(args);
  return e;
}

std::string to_string(const Expr& e) {
  std::ostringstream os;
  switch (e.kind) {
    case Expr::Kind::Const:
      os << e.value;
      break;
    case Expr::Kind::Var:
      os << e.var;
      break;
    case Expr::Kind::Load:
      os << e.mem << '[' << to_string(*e.args[0]) << ']';
      break;
    case Expr::Kind::OpNode:
      if (e.op == hdl::OpKind::Custom) {
        os << e.custom << '(';
        for (std::size_t i = 0; i < e.args.size(); ++i) {
          if (i) os << ", ";
          os << to_string(*e.args[i]);
        }
        os << ')';
      } else if (e.args.size() == 1) {
        os << hdl::to_string(e.op) << '(' << to_string(*e.args[0]) << ')';
      } else {
        os << '(' << to_string(*e.args[0]) << ' ' << hdl::to_string(e.op)
           << ' ' << to_string(*e.args[1]) << ')';
      }
      break;
  }
  return os.str();
}

std::size_t tree_size(const Expr& e) {
  std::size_t n = 1;
  for (const ExprPtr& a : e.args) n += tree_size(*a);
  return n;
}

}  // namespace record::ir
