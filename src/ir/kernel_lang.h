// The kernel language: a tiny C-like front end for writing DSP kernels.
//
// Grammar (line comments with `--`):
//
//   kernel fir;
//   bind acc: ACC;            -- variable lives in register ACC
//   cell x0: ram[16];         -- variable names a fixed memory cell
//   const N = 8;              -- compile-time integer
//   loopreg lc: BR;           -- register used for repeat counters
//
//   acc = 0;
//   repeat N {                -- counted loop via loopreg (or `unroll N { }`)
//     acc = acc + rom[j] * ram[i];
//     i = i + 1;
//   }
//   ram[64] = lo(acc);        -- memory store; lo()/hi() select halves
//   ifnz acc goto done;       -- conditional branch on a variable
//   done:
//
// Expressions: + - * / & | ^ << >> ~ unary -, numbers, variables,
// mem[index-expr], and calls lo(x), hi(x), name(args...) for custom target
// operators. w<N>(x) pins x's result width to N bits (a width cast — e.g.
// w16(a * b) selects a truncating 16-bit multiply where `*` would otherwise
// infer the widening 32-bit product).
#pragma once

#include <optional>
#include <string_view>

#include "ir/program.h"
#include "util/diagnostics.h"

namespace record::ir {

/// Parses kernel-language source into an IR program. Reports problems to
/// `diags`; returns nullopt on errors.
[[nodiscard]] std::optional<Program> parse_kernel(
    std::string_view source, util::DiagnosticSink& diags);

}  // namespace record::ir
