// Spill insertion for over-subscribed special-purpose registers.
//
// When dataflow analysis finds a clobber (sched/order.h), the pending value
// is parked in a scratch memory cell: a store RT is inserted right after the
// producer and a reload right before the consumer. The spill/reload code is
// itself produced by the code selector on two synthetic one-statement
// programs, so only instructions the target really has are used.
#pragma once

#include <string>

#include "grammar/grammar.h"
#include "ir/program.h"
#include "rtl/template.h"
#include "select/selector.h"
#include "util/diagnostics.h"

namespace record::sched {

struct SpillOptions {
  /// Memory used for spill slots; empty = the target's first memory.
  std::string scratch_memory;
  /// First address of the spill area.
  std::int64_t scratch_base = 0x70;
  /// Number of reserved slots.
  int scratch_slots = 8;
};

struct SpillStats {
  std::size_t clobbers_found = 0;
  std::size_t spills_inserted = 0;   // store+reload pairs
  std::size_t live_saves = 0;        // caller-save wraps of bound registers
  std::size_t guard_wraps = 0;       // entry-block guard wraps
  std::size_t unresolved = 0;        // no spill path on this target
};

/// Repairs all clobbers in `result` in place. Two passes:
///  1. within a statement: an operand overwritten before its consumer runs
///     is parked in a scratch cell (store after producer, reload before
///     consumer);
///  2. across statements: a register holding a *bound program variable* that
///     a statement merely uses as routing scratch (common on machines whose
///     special registers are the only path between units) is saved before
///     the statement and restored after — the caller-save discipline.
SpillStats insert_spills(select::SelectionResult& result,
                         const ir::Program& prog,
                         const rtl::TemplateBase& base,
                         const grammar::TreeGrammar& grammar,
                         const SpillOptions& options,
                         util::DiagnosticSink& diags);

}  // namespace record::sched
