#include "sched/order.h"

#include <map>

namespace record::sched {

DataflowInfo analyze_dataflow(const select::StmtCode& sc) {
  DataflowInfo info;
  info.operands.resize(sc.rts.size());

  // last_write[storage] = RT index of the most recent writer.
  std::map<std::string, std::size_t> last_write;

  for (std::size_t i = 0; i < sc.rts.size(); ++i) {
    const select::SelectedRT& rt = sc.rts[i];
    for (std::size_t k = 0; k < rt.reads.size(); ++k) {
      const std::string& r = rt.reads[k];
      OperandDef def;
      def.storage = r;
      // The selector records each read's intent (reads_producer): the
      // statement-entry value, a specific producing RT, or "whatever the
      // storage currently holds". Entry reads have no producer — an earlier
      // write is a destroyer; intent producers beat the positional
      // last-writer guess (routing scratch and spill reloads interleave).
      int intent = k < rt.reads_producer.size() ? rt.reads_producer[k]
                                                : select::kReadCurrent;
      if (intent >= 0 && static_cast<std::size_t>(intent) < i &&
          sc.rts[static_cast<std::size_t>(intent)].dest == r) {
        def.producer = static_cast<std::size_t>(intent);
      } else if (intent == select::kReadCurrent || intent >= 0) {
        auto it = last_write.find(r);
        if (it != last_write.end()) def.producer = it->second;
      }  // kReadEntry: no producer
      info.operands[i].push_back(std::move(def));
    }
    if (!rt.dest.empty()) last_write[rt.dest] = i;
  }

  // Clobber detection: operand produced at p, consumed at i, overwritten by
  // some j with p < j < i. Live-in operands (no producer) clobber when any
  // earlier RT overwrites them — their pending value is the statement-entry
  // contents.
  for (std::size_t i = 0; i < sc.rts.size(); ++i) {
    for (const OperandDef& def : info.operands[i]) {
      std::size_t start = def.producer ? *def.producer + 1 : 0;
      for (std::size_t j = start; j < i; ++j) {
        if (sc.rts[j].dest == def.storage) {
          info.clobbers.push_back(Clobber{def.producer.value_or(0), j, i,
                                          def.storage, !def.producer});
          break;
        }
      }
    }
  }
  return info;
}

}  // namespace record::sched
