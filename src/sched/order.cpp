#include "sched/order.h"

#include <map>

namespace record::sched {

DataflowInfo analyze_dataflow(const select::StmtCode& sc) {
  DataflowInfo info;
  info.operands.resize(sc.rts.size());

  // last_write[storage] = RT index of the most recent writer.
  std::map<std::string, std::size_t> last_write;

  for (std::size_t i = 0; i < sc.rts.size(); ++i) {
    const select::SelectedRT& rt = sc.rts[i];
    for (const std::string& r : rt.reads) {
      OperandDef def;
      def.storage = r;
      auto it = last_write.find(r);
      if (it != last_write.end()) def.producer = it->second;
      info.operands[i].push_back(std::move(def));
    }
    if (!rt.dest.empty()) last_write[rt.dest] = i;
  }

  // Clobber detection: operand produced at p, consumed at i, overwritten by
  // some j with p < j < i.
  for (std::size_t i = 0; i < sc.rts.size(); ++i) {
    for (const OperandDef& def : info.operands[i]) {
      if (!def.producer) continue;
      for (std::size_t j = *def.producer + 1; j < i; ++j) {
        if (sc.rts[j].dest == def.storage) {
          info.clobbers.push_back(
              Clobber{*def.producer, j, i, def.storage});
          break;
        }
      }
    }
  }
  return info;
}

}  // namespace record::sched
