#include "sched/spill.h"

#include <algorithm>
#include <map>

#include "ir/builder.h"
#include "sched/order.h"
#include "util/strings.h"

namespace record::sched {

namespace {

/// Builds "scratch := reg" or "reg := scratch" through the selector so spill
/// code uses genuine target instructions.
std::optional<std::vector<select::SelectedRT>> build_move(
    const rtl::TemplateBase& base, const grammar::TreeGrammar& grammar,
    const std::string& reg, const std::string& mem, std::int64_t cell,
    bool to_memory, util::DiagnosticSink& diags) {
  ir::ProgramBuilder b(to_memory ? "spill_store" : "spill_reload");
  b.reg("v", reg);
  b.cell("s", mem, cell);
  if (to_memory)
    b.let("s", ir::e_var("v"));
  else
    b.let("v", ir::e_var("s"));
  ir::Program prog = b.take();

  util::DiagnosticSink local;
  select::CodeSelector selector(base, grammar, local);
  std::optional<select::SelectionResult> sel = selector.select(prog);
  if (!sel || sel->stmts.empty()) {
    diags.warning({}, util::fmt("no spill path between '{}' and '{}[{}]'",
                                reg, mem, cell));
    return std::nullopt;
  }
  return std::move(sel->stmts.front().rts);
}

std::string first_memory(const rtl::TemplateBase& base) {
  for (const rtl::StorageInfo& s : base.storage)
    if (s.kind == rtl::DestKind::Memory) return s.name;
  return {};
}

}  // namespace

SpillStats insert_spills(select::SelectionResult& result,
                         const ir::Program& prog,
                         const rtl::TemplateBase& base,
                         const grammar::TreeGrammar& grammar,
                         const SpillOptions& options,
                         util::DiagnosticSink& diags) {
  SpillStats stats;
  std::string mem = options.scratch_memory.empty() ? first_memory(base)
                                                   : options.scratch_memory;

  // --- pass 2 data: registers that hold bound program variables ----------
  // (computed first so pass 1's indices stay untouched until we're done).
  std::map<std::string, std::string> live_regs;  // storage -> variable
  for (const auto& [var, bind] : prog.bindings())
    if (bind.kind == ir::Binding::Kind::Register)
      live_regs[bind.storage] = var;

  for (select::StmtCode& sc : result.stmts) {
    // Iterate until no clobber remains (spill code may shift indices).
    for (int guard = 0; guard < options.scratch_slots; ++guard) {
      DataflowInfo info = analyze_dataflow(sc);
      if (info.clobbers.empty()) break;
      const Clobber& c = info.clobbers.front();
      ++stats.clobbers_found;
      if (mem.empty()) {
        ++stats.unresolved;
        diags.warning({}, util::fmt("clobber of '{}' cannot be repaired: "
                                    "target has no memory",
                                    c.storage));
        break;
      }
      std::int64_t cell =
          options.scratch_base + static_cast<std::int64_t>(guard);
      auto store = build_move(base, grammar, c.storage, mem, cell,
                              /*to_memory=*/true, diags);
      auto reload = build_move(base, grammar, c.storage, mem, cell,
                               /*to_memory=*/false, diags);
      if (!store || !reload) {
        ++stats.unresolved;
        break;
      }
      // Insert the reload before the consumer first (higher index), then the
      // store after the producer, so indices stay valid.
      sc.rts.insert(sc.rts.begin() + static_cast<std::ptrdiff_t>(c.consumer),
                    reload->begin(), reload->end());
      sc.rts.insert(
          sc.rts.begin() + static_cast<std::ptrdiff_t>(c.producer + 1),
          store->begin(), store->end());
      result.total_rts += store->size() + reload->size();
      ++stats.spills_inserted;
    }
  }

  // --- pass 2: caller-save bound registers used as routing scratch -------
  if (!mem.empty() && !live_regs.empty()) {
    int save_slot = options.scratch_slots;  // separate slot range
    for (select::StmtCode& sc : result.stmts) {
      if (sc.rts.empty()) continue;
      // The storage this statement legitimately defines: the dest of its
      // final RT (the statement's own result location).
      const std::string stmt_dest = sc.rts.back().dest;
      // Collect live registers this statement overwrites as scratch.
      std::vector<std::string> to_save;
      for (const select::SelectedRT& rt : sc.rts) {
        if (rt.dest == stmt_dest || rt.dest.empty()) continue;
        auto it = live_regs.find(rt.dest);
        if (it == live_regs.end()) continue;
        if (std::find(to_save.begin(), to_save.end(), rt.dest) ==
            to_save.end())
          to_save.push_back(rt.dest);
      }
      // Live-ins of the statement: storages read before they are written.
      // Save code that itself overwrites one of those would corrupt the
      // statement's operands and must be rejected.
      std::vector<std::string> live_in;
      {
        std::vector<std::string> written;
        for (const select::SelectedRT& rt : sc.rts) {
          for (const std::string& r : rt.reads)
            if (std::find(written.begin(), written.end(), r) ==
                    written.end() &&
                std::find(live_in.begin(), live_in.end(), r) ==
                    live_in.end())
              live_in.push_back(r);
          written.push_back(rt.dest);
        }
      }
      for (const std::string& reg : to_save) {
        std::int64_t cell =
            options.scratch_base + static_cast<std::int64_t>(save_slot++);
        auto store = build_move(base, grammar, reg, mem, cell,
                                /*to_memory=*/true, diags);
        auto reload = build_move(base, grammar, reg, mem, cell,
                                 /*to_memory=*/false, diags);
        bool safe = store.has_value() && reload.has_value();
        if (safe) {
          for (const select::SelectedRT& rt : *store) {
            for (const std::string& li : live_in) {
              if (rt.dest != li || rt.dest == reg) continue;
              // Writes into the scratch area of a memory cannot collide
              // with the statement's data reads (reserved cells).
              const rtl::StorageInfo* s = base.find_storage(li);
              if (s && s->kind == rtl::DestKind::Memory) continue;
              safe = false;
            }
          }
        }
        if (!safe) {
          ++stats.unresolved;
          diags.warning({}, util::fmt("statement '{}' clobbers live "
                                      "register '{}' (variable '{}') and no "
                                      "safe save path exists",
                                      sc.source, reg, live_regs.at(reg)));
          continue;
        }
        sc.rts.insert(sc.rts.end(), reload->begin(), reload->end());
        sc.rts.insert(sc.rts.begin(), store->begin(), store->end());
        result.total_rts += store->size() + reload->size();
        ++stats.live_saves;
      }
    }
  }
  return stats;
}

}  // namespace record::sched
