#include "sched/spill.h"

#include <algorithm>
#include <map>
#include <set>

#include "ir/builder.h"
#include "sched/order.h"
#include "util/strings.h"

namespace record::sched {

namespace {

/// Builds "scratch := reg" or "reg := scratch" through the selector so spill
/// code uses genuine target instructions.
std::optional<std::vector<select::SelectedRT>> build_move(
    const rtl::TemplateBase& base, const grammar::TreeGrammar& grammar,
    const std::string& reg, const std::string& mem, std::int64_t cell,
    bool to_memory, util::DiagnosticSink& diags) {
  ir::ProgramBuilder b(to_memory ? "spill_store" : "spill_reload");
  b.reg("v", reg);
  b.cell("s", mem, cell);
  if (to_memory)
    b.let("s", ir::e_var("v"));
  else
    b.let("v", ir::e_var("s"));
  ir::Program prog = b.take();

  util::DiagnosticSink local;
  select::CodeSelector selector(base, grammar, local);
  std::optional<select::SelectionResult> sel = selector.select(prog);
  if (!sel || sel->stmts.empty()) {
    diags.warning({}, util::fmt("no spill path between '{}' and '{}[{}]'",
                                reg, mem, cell));
    return std::nullopt;
  }
  // Spill code consumes whatever its insertion point holds: its recorded
  // intents are relative to the synthetic one-statement program and would
  // be nonsense inside the enclosing statement.
  for (select::SelectedRT& rt : sel->stmts.front().rts)
    rt.reads_producer.clear();
  return std::move(sel->stmts.front().rts);
}

std::string first_memory(const rtl::TemplateBase& base) {
  for (const rtl::StorageInfo& s : base.storage)
    if (s.kind == rtl::DestKind::Memory) return s.name;
  return {};
}

/// Shifts every statement-relative producer intent across an insertion of
/// `count` RTs at `pos` (pre-insertion coordinates).
void shift_intents(select::StmtCode& sc, std::size_t pos, std::size_t count) {
  for (select::SelectedRT& rt : sc.rts)
    for (int& p : rt.reads_producer)
      if (p >= static_cast<int>(pos)) p += static_cast<int>(count);
}

/// One statement-entry parking/saving item: `reg`'s statement-entry value is
/// stored to `cell` before the statement body runs. Three flavours:
///   * park: reloaded mid-body by already-inserted reload code,
///   * caller save (`restore`): reloaded after the body runs,
///   * guard wrap (`guard_wrap`): reloaded at the END of the entry block —
///     used when entry-block routing overwrites a register whose entry
///     value the body still reads directly.
struct EntryItem {
  std::string reg;
  std::int64_t cell = 0;
  bool restore = false;
  bool guard_wrap = false;
  std::vector<select::SelectedRT> store;
  std::vector<select::SelectedRT> reload;  // restores and guard wraps
  std::vector<std::string> routes_through;  // saved regs written by the seqs
};

}  // namespace

SpillStats insert_spills(select::SelectionResult& result,
                         const ir::Program& prog,
                         const rtl::TemplateBase& base,
                         const grammar::TreeGrammar& grammar,
                         const SpillOptions& options,
                         util::DiagnosticSink& diags) {
  SpillStats stats;
  std::string mem = options.scratch_memory.empty() ? first_memory(base)
                                                   : options.scratch_memory;

  // Registers that hold bound program variables (their values must survive
  // any statement that merely routes data through them).
  std::map<std::string, std::string> live_regs;  // storage -> variable
  for (const auto& [var, bind] : prog.bindings())
    if (bind.kind == ir::Binding::Kind::Register)
      live_regs[bind.storage] = var;

  for (select::StmtCode& sc : result.stmts) {
    if (sc.rts.empty()) continue;

    // All scratch lives in the reserved window [base, base+slots): repairs
    // allocate from the low end, entry saves/parks from the high end, and
    // every cell is dead once the statement finishes — the next statement
    // reuses the whole window.
    int low_slot = 0;
    int high_slot = options.scratch_slots;

    // --- phase 1: within-statement clobber repairs -----------------------
    //
    // An operand destroyed before its consumer is parked in scratch. The
    // store for a value produced mid-statement goes right after its
    // producer; the store for a statement-ENTRY (live-in) value is deferred
    // into the entry block below (where it is ordered against caller-save
    // routing), and only the reload lands here, right before the consumer.
    std::vector<EntryItem> entry;  // deferred parks, then caller saves
    bool bailed = false;  // a repair path already counted unresolved
    for (int guard = 0; guard < options.scratch_slots; ++guard) {
      DataflowInfo info = analyze_dataflow(sc);
      if (info.clobbers.empty()) break;
      const Clobber& c = info.clobbers.front();
      ++stats.clobbers_found;
      if (mem.empty()) {
        ++stats.unresolved;
        diags.warning({}, util::fmt("clobber of '{}' cannot be repaired: "
                                    "target has no memory",
                                    c.storage));
        bailed = true;
        break;
      }
      if (low_slot >= high_slot) {
        ++stats.unresolved;
        diags.warning({}, util::fmt("statement '{}' exhausts the {} spill "
                                    "scratch slots",
                                    sc.source, options.scratch_slots));
        bailed = true;
        break;
      }
      std::int64_t cell =
          options.scratch_base + static_cast<std::int64_t>(low_slot++);
      auto reload = build_move(base, grammar, c.storage, mem, cell,
                               /*to_memory=*/false, diags);
      std::optional<std::vector<select::SelectedRT>> store;
      if (!c.live_in)
        store = build_move(base, grammar, c.storage, mem, cell,
                           /*to_memory=*/true, diags);
      if (!reload || (!c.live_in && !store)) {
        ++stats.unresolved;
        bailed = true;
        break;
      }
      const std::size_t reload_n = reload->size();
      const std::size_t store_n = c.live_in ? 0 : store->size();
      const std::size_t sp = c.live_in ? 0 : c.producer + 1;

      // Shift recorded producer intents across the insertions (comparisons
      // in pre-insertion coordinates; sp < consumer always).
      for (select::SelectedRT& rt : sc.rts)
        for (int& p : rt.reads_producer) {
          if (p < 0) continue;
          int np = p;
          if (p >= static_cast<int>(c.consumer))
            np += static_cast<int>(reload_n);
          if (store_n > 0 && p >= static_cast<int>(sp))
            np += static_cast<int>(store_n);
          p = np;
        }
      // The reload re-produces the destroyed value immediately before the
      // consumer: repoint the repaired read(s) there so re-analysis
      // resolves them to the reload instead of rediscovering the clobber.
      {
        select::SelectedRT& consumer = sc.rts[c.consumer];
        int fixed =
            static_cast<int>(c.consumer + reload_n + store_n) - 1;
        int old_intent = c.live_in ? select::kReadEntry
                                   : static_cast<int>(c.producer);
        for (std::size_t k = 0; k < consumer.reads.size() &&
                                k < consumer.reads_producer.size();
             ++k)
          if (consumer.reads[k] == c.storage &&
              consumer.reads_producer[k] == old_intent)
            consumer.reads_producer[k] = fixed;
      }
      sc.rts.insert(sc.rts.begin() + static_cast<std::ptrdiff_t>(c.consumer),
                    reload->begin(), reload->end());
      if (store)
        sc.rts.insert(sc.rts.begin() + static_cast<std::ptrdiff_t>(sp),
                      store->begin(), store->end());
      if (c.live_in) {
        EntryItem park;
        park.reg = c.storage;
        park.cell = cell;
        entry.push_back(std::move(park));
      }
      ++stats.spills_inserted;
    }
    // The loop's guard bound can expire with repairs still pending (a
    // statement needing more than scratch_slots of them): re-check, or the
    // residual clobber would slip past the compiler's refuse-to-emit gate.
    if (!bailed && !analyze_dataflow(sc).clobbers.empty()) {
      ++stats.unresolved;
      diags.warning({}, util::fmt("statement '{}' still has unrepaired "
                                  "clobbers after {} spill repairs",
                                  sc.source, options.scratch_slots));
    }

    // --- phase 2: the statement-entry block ------------------------------
    //
    // Parks (deferred above) and caller saves of bound registers the body
    // uses as routing scratch all read STATEMENT-ENTRY values, and their
    // own store/restore sequences may route through further live registers
    // (machines whose only memory path runs through one register). They are
    // planned together: any live register a sequence writes joins the save
    // set, and the block is ordered so a register's own store precedes
    // every sequence routing through it (restores nest LIFO).
    const std::string stmt_dest = sc.rts.back().dest;
    auto add_save = [&entry](const std::string& reg) {
      for (const EntryItem& it : entry)
        if (it.reg == reg && it.restore) return;
      EntryItem save;
      save.reg = reg;
      save.restore = true;
      entry.push_back(std::move(save));
    };
    for (const select::SelectedRT& rt : sc.rts) {
      if (rt.dest == stmt_dest || rt.dest.empty()) continue;
      if (!live_regs.count(rt.dest)) continue;
      add_save(rt.dest);
    }
    if (entry.empty()) continue;
    if (mem.empty()) {
      ++stats.unresolved;
      diags.warning({}, util::fmt("statement '{}' clobbers live register "
                                  "'{}' (variable '{}') and the target has "
                                  "no memory to park it in",
                                  sc.source, entry.front().reg,
                                  live_regs.count(entry.front().reg)
                                      ? live_regs.at(entry.front().reg)
                                      : entry.front().reg));
      continue;
    }

    // Registers whose statement-entry value the (repaired) body still reads
    // directly: an entry-block sequence must not overwrite these before the
    // body runs. Entry-intent reads plus positional register reads that see
    // no earlier body write.
    std::set<std::string> guarded;
    {
      std::set<std::string> written;
      for (const select::SelectedRT& rt : sc.rts) {
        for (std::size_t k = 0; k < rt.reads.size(); ++k) {
          int intent = k < rt.reads_producer.size() ? rt.reads_producer[k]
                                                    : select::kReadCurrent;
          const std::string& r = rt.reads[k];
          const rtl::StorageInfo* s = base.find_storage(r);
          if (!s || s->kind == rtl::DestKind::Memory)
            continue;  // scratch cells are reserved; data cells unaffected
          if (intent == select::kReadEntry ||
              (intent == select::kReadCurrent && !written.count(r)))
            guarded.insert(r);
        }
        if (!rt.dest.empty()) written.insert(rt.dest);
      }
    }

    auto add_guard_wrap = [&entry](const std::string& reg) {
      for (const EntryItem& it : entry)
        if (it.reg == reg && it.guard_wrap) return;
      EntryItem wrap;
      wrap.reg = reg;
      wrap.guard_wrap = true;
      entry.push_back(std::move(wrap));
    };

    bool failed = false;
    for (std::size_t i = 0; i < entry.size() && !failed; ++i) {
      // NOTE: add_save/add_guard_wrap below may grow `entry` (reallocating
      // it), so the item is re-referenced by index, never held by reference
      // across mutation.
      const std::string reg = entry[i].reg;
      const bool with_reload = entry[i].restore || entry[i].guard_wrap;
      const bool is_restore = entry[i].restore;
      if (with_reload) {
        if (high_slot <= low_slot) {
          ++stats.unresolved;
          diags.warning({}, util::fmt("statement '{}' exhausts the {} spill "
                                      "scratch slots",
                                      sc.source, options.scratch_slots));
          failed = true;
          break;
        }
        entry[i].cell = options.scratch_base +
                        static_cast<std::int64_t>(--high_slot);
      }
      const std::int64_t cell = entry[i].cell;
      auto store = build_move(base, grammar, reg, mem, cell,
                              /*to_memory=*/true, diags);
      std::optional<std::vector<select::SelectedRT>> reload;
      if (with_reload)
        reload = build_move(base, grammar, reg, mem, cell,
                            /*to_memory=*/false, diags);
      bool safe = store.has_value() && (!with_reload || reload.has_value());
      if (safe && is_restore) {
        // A restore runs after the body: routing it through the statement's
        // own result register would destroy the result.
        for (const select::SelectedRT& rt : *reload)
          if (rt.dest == stmt_dest) safe = false;
      }
      if (!safe) {
        ++stats.unresolved;
        diags.warning({}, util::fmt("statement '{}' clobbers live register "
                                    "'{}' (variable '{}') and no safe save "
                                    "path exists",
                                    sc.source, reg,
                                    live_regs.count(reg) ? live_regs.at(reg)
                                                         : reg));
        failed = true;  // partial wraps would still corrupt state
        break;
      }
      std::vector<std::string> routes;
      for (const std::vector<select::SelectedRT>* seq :
           {&*store, reload ? &*reload : &*store})
        for (const select::SelectedRT& rt : *seq) {
          if (rt.dest == reg) continue;
          // Entry-block code overwriting a register whose entry value the
          // body still reads directly: wrap that register inside the entry
          // block (park first, reload back to the entry value last).
          const rtl::StorageInfo* s = base.find_storage(rt.dest);
          bool is_reg = s && s->kind != rtl::DestKind::Memory &&
                        s->kind != rtl::DestKind::ProcOut;
          if (!is_reg) continue;
          if (guarded.count(rt.dest)) add_guard_wrap(rt.dest);
          // Record the routing edge for EVERY register written — the topo
          // sort must order a guard-wrapped (possibly unbound) register's
          // own store before sequences travelling through it; edges to
          // registers without an entry item are simply inert.
          if (std::find(routes.begin(), routes.end(), rt.dest) ==
              routes.end())
            routes.push_back(rt.dest);
          if (!live_regs.count(rt.dest)) continue;
          // A routed-through bound register needs its own caller save
          // (unless it is the statement result, which the body redefines
          // anyway and whose entry value, if still read, is guard-wrapped
          // above).
          if (rt.dest == stmt_dest) continue;
          add_save(rt.dest);
        }
      entry[i].store = std::move(*store);
      if (reload) entry[i].reload = std::move(*reload);
      entry[i].routes_through = std::move(routes);
    }
    if (failed) continue;

    // Order: a register's own item(s) precede every item routing through it
    // (stores prepended in this order, restores appended in reverse).
    std::vector<std::size_t> order;
    std::vector<bool> placed(entry.size(), false);
    bool progress = true;
    while (order.size() < entry.size() && progress) {
      progress = false;
      for (std::size_t i = 0; i < entry.size(); ++i) {
        if (placed[i]) continue;
        bool ready = true;
        for (const std::string& dep : entry[i].routes_through)
          for (std::size_t j = 0; j < entry.size(); ++j)
            if (!placed[j] && entry[j].reg == dep) ready = false;
        if (!ready) continue;
        order.push_back(i);
        placed[i] = true;
        progress = true;
      }
    }
    if (order.size() < entry.size()) {
      ++stats.unresolved;
      diags.warning({}, util::fmt("statement '{}': cyclic save routing; no "
                                  "safe save order exists",
                                  sc.source));
      continue;
    }

    // Entry block layout: all stores (topo order), then guard-wrap reloads
    // (reverse topo — the body must see entry values again), then the body;
    // caller-save restores append after the body in reverse topo (LIFO).
    std::vector<select::SelectedRT> stores;
    std::vector<select::SelectedRT> reloads;
    for (std::size_t idx : order)
      stores.insert(stores.end(), entry[idx].store.begin(),
                    entry[idx].store.end());
    for (std::size_t k = order.size(); k-- > 0;) {
      const EntryItem& it = entry[order[k]];
      if (it.guard_wrap)
        stores.insert(stores.end(), it.reload.begin(), it.reload.end());
      else if (it.restore)
        reloads.insert(reloads.end(), it.reload.begin(), it.reload.end());
    }
    result.total_rts += stores.size() + reloads.size();
    sc.rts.insert(sc.rts.end(), reloads.begin(), reloads.end());
    shift_intents(sc, 0, stores.size());
    sc.rts.insert(sc.rts.begin(), stores.begin(), stores.end());
    for (const EntryItem& it : entry) {
      if (it.restore) ++stats.live_saves;
      if (it.guard_wrap) ++stats.guard_wraps;
    }
  }
  return stats;
}

}  // namespace record::sched
