// Dataflow analysis over selected RT sequences.
//
// Computes, for each selected RT in a statement, which earlier RT produced
// each operand (or whether it is live-in), and detects *clobbers*: a storage
// location whose pending value is overwritten before its consumer runs.
// Clobbers are exactly the situations that require register spills on
// machines with special-purpose registers; sched/spill repairs them.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "select/selector.h"

namespace record::sched {

struct OperandDef {
  std::string storage;
  /// Producing RT index within the statement; nullopt = live-in.
  std::optional<std::size_t> producer;
};

struct Clobber {
  std::size_t producer;   // RT whose result is destroyed (0 for live-ins)
  std::size_t destroyer;  // RT that overwrites the storage
  std::size_t consumer;   // RT that needed the destroyed value
  std::string storage;
  /// True when the destroyed value is the statement-entry (live-in) value —
  /// e.g. an operand register reused as routing scratch for an intermediate
  /// before the operand's own consumer runs. The repair parks the value at
  /// the start of the statement instead of after a producer.
  bool live_in = false;
};

struct DataflowInfo {
  /// operand definitions per RT (parallel to StmtCode::rts).
  std::vector<std::vector<OperandDef>> operands;
  std::vector<Clobber> clobbers;
};

/// Analyses the (ordered) RT list of one statement.
[[nodiscard]] DataflowInfo analyze_dataflow(const select::StmtCode& sc);

}  // namespace record::sched
