// Hand-written reference code sizes for Figure 2's 100% normalisation.
//
// For each kernel, an expert-written TMS320C25 sequence (using the modeled
// instruction set: LAC/ADD/SUB/LT/MPY/PAC/APAC/SPAC/MPYA/SACL/ZAC) was
// derived and counted; the `assembly` string documents it instruction by
// instruction. Tests verify the invariant hand <= RECORD (hand code is the
// optimum an expert reaches) and that the documented sequence length equals
// the recorded word count.
#pragma once

#include <string_view>
#include <vector>

namespace record::dspstone {

struct HandCode {
  std::string_view kernel;
  int words;                  // code size in instruction words
  std::string_view assembly;  // semicolon-separated mnemonic sequence
};

[[nodiscard]] const std::vector<HandCode>& hand_code();

/// Word count for a kernel; -1 if unknown.
[[nodiscard]] int hand_code_size(std::string_view kernel);

}  // namespace record::dspstone
