// The ten DSPStone kernels of the paper's Figure 2 (Zivojnovic et al.,
// ICSPAT 1994), written as IR basic blocks bound to the tms320c25 model's
// storage (ACC/T/P/AR1/AR2/ram).
//
// Following the paper ("the chart shows results for basic program blocks"),
// the N-element kernels are unrolled basic blocks (N = 4 for real vectors,
// N = 2 for complex vectors and biquad sections). See dspstone/handcode.h
// for the expert-written reference sequences that define the 100% line.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "ir/program.h"

namespace record::dspstone {

/// Kernel names in Figure 2's order.
[[nodiscard]] const std::vector<std::string>& kernel_names();

/// Builds the IR program for a kernel (bindings target tms320c25).
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] ir::Program kernel(std::string_view name);

/// Data-memory layout shared by kernels, hand code and tests.
namespace layout {
// real_update: d = c + a * b
inline constexpr std::int64_t kA = 0, kB = 1, kC = 2, kD = 3;
// complex operands
inline constexpr std::int64_t kAr = 8, kAi = 9, kBr = 10, kBi = 11;
inline constexpr std::int64_t kCr = 12, kCi = 13, kDr = 14, kDi = 15;
// fir / convolution: x[4] at 16.., h[4] at 24.., y at 32
inline constexpr std::int64_t kX = 16, kH = 24, kY = 32;
// biquad: x, y, w, w1, w2, b0, b1, b2, a1, a2 at 33..42 (second section +16)
inline constexpr std::int64_t kBiq = 33;
// n_real_updates (N=4): a[4] at 44, b[4] at 48, c[4] at 52, d[4] at 56
inline constexpr std::int64_t kNA = 44, kNB = 48, kNC = 52, kND = 56;
// dot_product: a[4] at 60, b[4] at 64, z at 68
inline constexpr std::int64_t kDotA = 60, kDotB = 64, kDotZ = 68;
// n_complex_updates second operand set at 96..103
inline constexpr std::int64_t kC2 = 96;
}  // namespace layout

}  // namespace record::dspstone
