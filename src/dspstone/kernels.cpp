#include "dspstone/kernels.h"

#include <stdexcept>

#include "ir/builder.h"

namespace record::dspstone {

using namespace layout;
using ir::e_add;
using ir::e_lo;
using ir::e_mul;
using ir::e_sub;
using ir::e_var;
using ir::ProgramBuilder;

const std::vector<std::string>& kernel_names() {
  static const std::vector<std::string> kNames = {
      "real_update",     "complex_mult", "complex_update",
      "n_real_updates",  "n_complex_updates", "fir",
      "biquad_one",      "biquad_N",     "dot_product",
      "convolution",
  };
  return kNames;
}

namespace {

ir::Program real_update() {
  ProgramBuilder b("real_update");
  b.cell("a", "ram", kA).cell("b", "ram", kB).cell("c", "ram", kC).cell(
      "d", "ram", kD);
  // d = c + a * b
  b.let("d", e_add(e_var("c"), e_mul(e_var("a"), e_var("b"))));
  return b.take();
}

/// Binds the eight complex-number cells with a prefix, starting at `base`
/// (order: ar ai br bi cr ci dr di).
void bind_complex(ProgramBuilder& b, const std::string& p,
                  std::int64_t base) {
  const char* names[] = {"ar", "ai", "br", "bi", "cr", "ci", "dr", "di"};
  for (int i = 0; i < 8; ++i) b.cell(p + names[i], "ram", base + i);
}

ir::Program complex_mult() {
  ProgramBuilder b("complex_mult");
  bind_complex(b, "", kAr);
  // cr = ar*br - ai*bi ; ci = ar*bi + ai*br
  b.let("cr", e_sub(e_mul(e_var("ar"), e_var("br")),
                    e_mul(e_var("ai"), e_var("bi"))));
  b.let("ci", e_add(e_mul(e_var("ar"), e_var("bi")),
                    e_mul(e_var("ai"), e_var("br"))));
  return b.take();
}

void complex_update_stmts(ProgramBuilder& b, const std::string& p) {
  // dr = cr + ar*br - ai*bi ; di = ci + ar*bi + ai*br
  b.let(p + "dr",
        e_sub(e_add(e_var(p + "cr"),
                    e_mul(e_var(p + "ar"), e_var(p + "br"))),
              e_mul(e_var(p + "ai"), e_var(p + "bi"))));
  b.let(p + "di",
        e_add(e_add(e_var(p + "ci"),
                    e_mul(e_var(p + "ar"), e_var(p + "bi"))),
              e_mul(e_var(p + "ai"), e_var(p + "br"))));
}

ir::Program complex_update() {
  ProgramBuilder b("complex_update");
  bind_complex(b, "", kAr);
  complex_update_stmts(b, "");
  return b.take();
}

ir::Program n_real_updates() {
  ProgramBuilder b("n_real_updates");
  for (int i = 0; i < 4; ++i) {
    std::string s = std::to_string(i);
    b.cell("a" + s, "ram", kNA + i).cell("b" + s, "ram", kNB + i);
    b.cell("c" + s, "ram", kNC + i).cell("d" + s, "ram", kND + i);
  }
  for (int i = 0; i < 4; ++i) {
    std::string s = std::to_string(i);
    b.let("d" + s, e_add(e_var("c" + s),
                         e_mul(e_var("a" + s), e_var("b" + s))));
  }
  return b.take();
}

ir::Program n_complex_updates() {
  ProgramBuilder b("n_complex_updates");
  bind_complex(b, "u", kAr);
  bind_complex(b, "v", kC2);
  complex_update_stmts(b, "u");
  complex_update_stmts(b, "v");
  return b.take();
}

/// Sum of products acc = sum_i m1[i]*m2[idx(i)], then store the low half.
ir::Program sum_of_products(const std::string& name, std::int64_t m1,
                            std::int64_t m2, bool reverse_second,
                            std::int64_t out_cell) {
  ProgramBuilder b(name);
  b.reg("acc", "ACC");
  for (int i = 0; i < 4; ++i) {
    std::string s = std::to_string(i);
    b.cell("u" + s, "ram", m1 + i);
    b.cell("v" + s, "ram", m2 + (reverse_second ? 3 - i : i));
  }
  b.cell("out", "ram", out_cell);
  ir::ExprPtr sum = e_mul(e_var("u0"), e_var("v0"));
  for (int i = 1; i < 4; ++i) {
    std::string s = std::to_string(i);
    sum = e_add(std::move(sum), e_mul(e_var("u" + s), e_var("v" + s)));
  }
  b.let("acc", std::move(sum));
  b.let("out", e_lo(e_var("acc")));
  return b.take();
}

/// One biquad section on the 10 cells at `base`
/// (x, y, w, w1, w2, b0, b1, b2, a1, a2).
void biquad_section(ProgramBuilder& b, const std::string& p,
                    std::int64_t base) {
  const char* names[] = {"x", "y", "w", "w1", "w2", "b0", "b1", "b2",
                         "a1", "a2"};
  for (int i = 0; i < 10; ++i) b.cell(p + names[i], "ram", base + i);
  // w = x - a1*w1 - a2*w2
  b.let(p + "w",
        e_sub(e_sub(e_var(p + "x"),
                    e_mul(e_var(p + "a1"), e_var(p + "w1"))),
              e_mul(e_var(p + "a2"), e_var(p + "w2"))));
  // y = b0*w + b1*w1 + b2*w2
  b.let(p + "y",
        e_add(e_add(e_mul(e_var(p + "b0"), e_var(p + "w")),
                    e_mul(e_var(p + "b1"), e_var(p + "w1"))),
              e_mul(e_var(p + "b2"), e_var(p + "w2"))));
  // delay line: w2 = w1 ; w1 = w
  b.let(p + "w2", e_var(p + "w1"));
  b.let(p + "w1", e_var(p + "w"));
}

ir::Program biquad_one() {
  ProgramBuilder b("biquad_one");
  biquad_section(b, "", kBiq);
  return b.take();
}

ir::Program biquad_n() {
  ProgramBuilder b("biquad_N");
  biquad_section(b, "s1", kBiq);
  // Cascade: the second section's input is the first section's output.
  b.cell("s2x", "ram", kBiq + 16);
  b.let("s2x", e_var("s1y"));
  biquad_section(b, "s2", kBiq + 16);
  return b.take();
}

}  // namespace

ir::Program kernel(std::string_view name) {
  if (name == "real_update") return real_update();
  if (name == "complex_mult") return complex_mult();
  if (name == "complex_update") return complex_update();
  if (name == "n_real_updates") return n_real_updates();
  if (name == "n_complex_updates") return n_complex_updates();
  if (name == "fir")
    return sum_of_products("fir", kX, kH, /*reverse_second=*/false, kY);
  if (name == "biquad_one") return biquad_one();
  if (name == "biquad_N") return biquad_n();
  if (name == "dot_product")
    return sum_of_products("dot_product", kDotA, kDotB,
                           /*reverse_second=*/false, kDotZ);
  if (name == "convolution")
    return sum_of_products("convolution", kX, kH, /*reverse_second=*/true,
                           kY);
  throw std::invalid_argument("unknown DSPStone kernel: " +
                              std::string(name));
}

}  // namespace record::dspstone
