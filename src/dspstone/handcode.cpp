#include "dspstone/handcode.h"

namespace record::dspstone {

const std::vector<HandCode>& hand_code() {
  static const std::vector<HandCode> kHand = {
      {"real_update", 5, "LT a; MPY b; LAC c; APAC; SACL d"},
      {"complex_mult", 13,
       "LT ar; MPY br; PAC; LT ai; MPY bi; SPAC; SACL cr; "
       "MPY br; PAC; LT ar; MPY bi; APAC; SACL ci"},
      {"complex_update", 15,
       "LT ar; MPY br; LAC cr; APAC; LT ai; MPY bi; SPAC; SACL dr; "
       "MPY br; LAC ci; APAC; LT ar; MPY bi; APAC; SACL di"},
      {"n_real_updates", 20,
       "4 x (LT a_i; MPY b_i; LAC c_i; APAC; SACL d_i)"},
      {"n_complex_updates", 30, "2 x complex_update sequence"},
      {"fir", 11,
       "ZAC; LT x0; MPY h0; LT x1; MPYA h1; LT x2; MPYA h2; LT x3; "
       "MPYA h3; APAC; SACL y"},
      {"biquad_one", 21,
       "LAC x; LT w1; MPY a1; SPAC; LT w2; MPY a2; SPAC; SACL w; "
       "LT w; MPY b0; PAC; LT w1; MPYA b1; LT w2; MPYA b2; APAC; SACL y; "
       "LAC w1; SACL w2; LAC w; SACL w1"},
      {"biquad_N", 42, "2 x biquad_one sequence (cascade via y1 cell)"},
      {"dot_product", 11,
       "ZAC; LT a0; MPY b0; LT a1; MPYA b1; LT a2; MPYA b2; LT a3; "
       "MPYA b3; APAC; SACL z"},
      {"convolution", 11,
       "ZAC; LT x0; MPY h3; LT x1; MPYA h2; LT x2; MPYA h1; LT x3; "
       "MPYA h0; APAC; SACL y"},
  };
  return kHand;
}

int hand_code_size(std::string_view kernel) {
  for (const HandCode& h : hand_code())
    if (h.kernel == kernel) return h.words;
  return -1;
}

}  // namespace record::dspstone
