// Assembly listing and code-size reporting.
#pragma once

#include <string>

#include "emit/encode.h"

namespace record::emit {

/// Multi-line listing:
///   addr  hex   ; rt1 | rt2 | ...
/// with label lines interleaved.
[[nodiscard]] std::string listing(const Assembly& assembly);

/// One-line summary: "<n> words, <m> labels".
[[nodiscard]] std::string summary(const Assembly& assembly);

}  // namespace record::emit
