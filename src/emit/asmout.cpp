#include "emit/asmout.h"

#include <iomanip>
#include <sstream>

namespace record::emit {

std::string listing(const Assembly& assembly) {
  std::ostringstream os;
  for (const EncodedWord& w : assembly.words) {
    if (!w.label.empty()) os << w.label << ":\n";
    os << std::setw(4) << w.address << "  " << w.hex() << "  ; ";
    for (std::size_t i = 0; i < w.word->rts.size(); ++i) {
      if (i) os << " | ";
      os << w.word->rts[i]->comment;
    }
    os << '\n';
  }
  return os.str();
}

std::string summary(const Assembly& assembly) {
  std::ostringstream os;
  os << assembly.words.size() << " words, " << assembly.labels.size()
     << " labels";
  return os.str();
}

}  // namespace record::emit
