#include "emit/encode.h"

#include <set>
#include <sstream>
#include <utility>

#include "util/strings.h"

namespace record::emit {

using util::fmt;

std::string EncodedWord::hex() const {
  // Render MSB-first, 4 bits per nibble.
  std::ostringstream os;
  int width = static_cast<int>(bits.size());
  int nibbles = (width + 3) / 4;
  for (int n = nibbles - 1; n >= 0; --n) {
    int v = 0;
    for (int b = 3; b >= 0; --b) {
      int idx = n * 4 + b;
      v = (v << 1) |
          (idx < width && bits[static_cast<std::size_t>(idx)] ? 1 : 0);
    }
    os << "0123456789abcdef"[v];
  }
  return os.str();
}

std::uint64_t EncodedWord::to_u64() const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits.size() && i < 64; ++i)
    if (bits[i]) v |= (1ull << i);
  return v;
}

namespace {

/// "Could template fire?" conditions per storage, with data-dependent AND
/// mode-register variables existentially quantified (pessimistic). Mode
/// vars must go too: suppression is applied by constraining instruction
/// bits, and a don't-care slot whose function comes from a mode register
/// would otherwise be "suppressed" by any_sat choosing a fantasy mode the
/// running machine is not in — the slot then fires at runtime and silently
/// clobbers its destination. `any` is the OR over all writers of the
/// storage; `each` keeps the per-template conditions so a word that writes
/// a storage can still forbid the *other* writers of that storage
/// (required on multi-issue machines, where a second slot's don't-care
/// bits could otherwise be filled to write the same location — a
/// decode-time write contention).
struct StorageWriters {
  bdd::Ref any = bdd::kFalse;
  std::vector<std::pair<const rtl::RTTemplate*, bdd::Ref>> each;
};

std::map<std::string, StorageWriters> write_conditions(
    const rtl::TemplateBase& base) {
  bdd::BddManager& mgr = *base.mgr;
  std::map<std::string, StorageWriters> out;
  for (const rtl::RTTemplate& t : base.templates) {
    bdd::Ref c = t.cond;
    for (int v : mgr.support(c)) {
      const std::string& n = mgr.var_name(v);
      if (n.rfind("I[", 0) != 0) c = mgr.exists(c, v);
    }
    StorageWriters& sw = out[t.dest];
    sw.any = mgr.lor(sw.any, c);
    sw.each.emplace_back(&t, c);
  }
  return out;
}

}  // namespace

EncodeResult encode(const compact::CompactedProgram& prog,
                    const rtl::TemplateBase& base,
                    util::DiagnosticSink& diags) {
  EncodeResult result;
  bdd::BddManager& mgr = *base.mgr;
  const int iw = base.instruction_width;

  // Pass 1: addresses.
  int addr = 0;
  for (const compact::CompactedRegion& r : prog.regions) {
    if (!r.label.empty()) result.assembly.labels[r.label] = addr;
    addr += static_cast<int>(r.words.size());
  }

  // Cache write conditions per storage.
  std::map<std::string, StorageWriters> wconds = write_conditions(base);

  addr = 0;
  for (const compact::CompactedRegion& r : prog.regions) {
    bool first_in_region = true;
    for (const compact::Word& w : r.words) {
      EncodedWord ew;
      ew.word = &w;
      ew.address = addr++;
      if (first_in_region) {
        ew.label = r.label;
        first_in_region = false;
      }
      bdd::Ref cond = w.cond;

      // Branch-target fixup.
      if (w.has_branch) {
        auto it = result.assembly.labels.find(w.branch_target);
        if (it == result.assembly.labels.end()) {
          ++result.stats.unresolved_labels;
          diags.error({}, fmt("unresolved branch target '{}'",
                              w.branch_target));
        } else {
          for (const select::SelectedRT* rt : w.rts) {
            if (!rt->is_branch || !rt->tmpl) continue;
            if (rt->tmpl->value->kind != rtl::RTNode::Kind::Imm) continue;
            const std::vector<int>& field = rt->tmpl->value->imm_bits;
            for (std::size_t j = 0; j < field.size(); ++j) {
              int var = mgr.find_var(fmt("I[{}]", field[j]));
              if (var < 0) continue;
              bool bit =
                  ((static_cast<std::uint64_t>(it->second) >> j) & 1u) != 0;
              cond = mgr.land(cond, mgr.literal(var, bit));
            }
          }
        }
      }

      // Side-effect suppression. A storage the word does not write must not
      // be written by any template; a storage the word DOES write must not
      // also be written by a template outside the word's own RTs (two units
      // writing one location is a decode-time contention).
      std::vector<std::string> written;
      std::set<const rtl::RTTemplate*> own;
      for (const select::SelectedRT* rt : w.rts) {
        written.push_back(rt->dest);
        if (rt->tmpl) own.insert(rt->tmpl);
      }
      for (const auto& [storage, wc] : wconds) {
        bool is_written = false;
        for (const std::string& d : written)
          if (d == storage) is_written = true;
        if (!is_written) {
          bdd::Ref guarded = mgr.land(cond, mgr.lnot(wc.any));
          if (guarded != bdd::kFalse) {
            cond = guarded;
            ++result.stats.suppressed;
          } else {
            ++result.stats.unsuppressible;
          }
          continue;
        }
        for (const auto& [tmpl, qc] : wc.each) {
          if (own.count(tmpl)) continue;
          bdd::Ref guarded = mgr.land(cond, mgr.lnot(qc));
          if (guarded != bdd::kFalse) {
            cond = guarded;
            ++result.stats.suppressed;
          } else {
            ++result.stats.unsuppressible;
          }
        }
      }

      if (cond == bdd::kFalse) {
        diags.error({}, "instruction word condition unsatisfiable after "
                        "encoding fixups");
        cond = w.cond;  // fall back to the raw condition
      }

      ew.bits.assign(static_cast<std::size_t>(iw), false);
      if (auto sat = mgr.any_sat(cond)) {
        for (const auto& [var, val] : *sat) {
          const std::string& n = mgr.var_name(var);
          if (n.rfind("I[", 0) == 0) {
            int k = std::stoi(n.substr(2, n.size() - 3));
            if (k >= 0 && k < iw) ew.bits[static_cast<std::size_t>(k)] = val;
          }
        }
      }
      result.assembly.words.push_back(std::move(ew));
    }
  }
  return result;
}

}  // namespace record::emit
