// Binary instruction-word composition.
//
// Every compacted word carries the BDD conjunction of its RTs' execution
// conditions (including immediate-field values). Encoding:
//   1. resolves branch targets (conjoining the target address into the
//      branch template's immediate field),
//   2. suppresses unintended side effects: for every storage the word does
//      not write, the instruction bits are chosen - when satisfiable - so
//      that no template writing that storage can fire ("don't-care
//      completion" of the partial instruction),
//   3. extracts one satisfying assignment of the instruction bits; unused
//      bits default to 0.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "compact/compact.h"
#include "rtl/template.h"
#include "util/diagnostics.h"

namespace record::emit {

struct EncodedWord {
  const compact::Word* word = nullptr;
  int address = 0;
  std::vector<bool> bits;  // bits[k] = instruction bit k
  std::string label;       // label defined at this address (if any)

  [[nodiscard]] std::string hex() const;
  [[nodiscard]] std::uint64_t to_u64() const;  // low 64 bits
};

struct Assembly {
  std::vector<EncodedWord> words;
  std::map<std::string, int> labels;

  /// Code size in instruction words — the Figure-2 metric.
  [[nodiscard]] std::size_t size() const { return words.size(); }
};

struct EncodeStats {
  std::size_t suppressed = 0;         // side-effect suppressions applied
  std::size_t unsuppressible = 0;     // storages that could not be protected
  std::size_t unresolved_labels = 0;
};

struct EncodeResult {
  Assembly assembly;
  EncodeStats stats;
};

[[nodiscard]] EncodeResult encode(const compact::CompactedProgram& prog,
                                  const rtl::TemplateBase& base,
                                  util::DiagnosticSink& diags);

}  // namespace record::emit
