// Seeded random processor-model generation (the testgen layer's scenario
// source).
//
// Every seed deterministically yields a structurally valid HDL model in the
// style of the built-in `demo` machine — a horizontally microcoded datapath —
// but with randomised architecture knobs: register count and width, the ALU
// function subset, immediate-field width and position inside the instruction
// word (including nonzero-lsb slices, the bass_boost `IW.w(10:6)` shape that
// broke PR-2's route enumeration), mux- versus tristate-bus operand
// topologies, register-indirect addressing, a dedicated direct-address field,
// shared immediate operands (side-constrained grammar rules), memory writes
// and program-control (PC) support. The generator also reports the machine's
// programming capabilities so the kernel-program generator (programgen.h) can
// size its programs to what the target can actually execute.
//
// Multi-issue (VLIW) generation: a second knob stream can add 1..3 extra
// issue slots — concurrently firing functional units, each with its own
// operand muxes, 4-bit immediate field and destination decoder, sharing the
// register file through per-register tristate write buses and a write-enable
// OR. Slot 1's ALU function can be switched by a MODEREG instead of an
// instruction field (mode-register-shared encodings), and machines with a PC
// can carry one architectural branch delay slot (HDL `DELAY 1` on the PC
// register). These draws come from an independent splitmix64 stream so the
// single-issue portion of a model is unchanged for a given seed.
//
// Determinism contract: generation uses internal splitmix64 streams only —
// identical seeds produce byte-identical HDL on every platform, so a seed (or
// a checked-in dump under tests/data/) is a complete reproduction recipe.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hdl/ast.h"

namespace record::testgen {

/// Deterministic 64-bit PRNG (splitmix64): the single randomness source of
/// the testgen layer. Intentionally not std::mt19937 + distributions —
/// distribution output is implementation-defined, and seeds must replay
/// identically across standard libraries.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n); n must be > 0.
  std::uint64_t below(std::uint64_t n) { return next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int range(int lo, int hi) {
    return lo + static_cast<int>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// True with probability num/den.
  bool chance(int num, int den) {
    return below(static_cast<std::uint64_t>(den)) <
           static_cast<std::uint64_t>(num);
  }

 private:
  std::uint64_t state_;
};

/// Architecture knobs drawn from the seed. Public so tests can assert corpus
/// diversity and repro dumps can explain what a scenario exercised.
struct ModelKnobs {
  int reg_count = 2;        // general registers R0..R{n-1}
  int reg_width = 16;       // datapath width
  int imm_width = 8;        // immediate-field width (< reg_width)
  int imm_lsb = 0;          // field position in the instruction word
  int mem_addr_width = 0;   // 0 = no memory
  bool mem_writable = false;
  bool mem_reg_indirect = false;  // address register routed into mmux
  bool direct_addr_field = false; // dedicated IW address slice (nonzero lsb)
  int direct_addr_lsb = 0;        // where that slice starts
  bool use_bus = false;           // tristate bus B-operand topology (vs mux)
  bool shared_imm = false;        // imm extender feeds BOTH ALU operand sides
  bool has_port_io = false;       // primary IN port on the B side
  bool has_pc = false;            // PC register (branch support)
  std::vector<hdl::OpKind> alu_ops;  // ALU functions beyond pass-a/pass-b
  int issue_slots = 1;   // instruction-word slots (1 = classic single-issue)
  bool mode_alu = false; // slot 1's ALU function comes from a mode register
  int branch_delay = 0;  // architectural branch delay slots on the PC

  /// One-line summary for logs and repro files.
  [[nodiscard]] std::string str() const;
};

/// A generated retargeting scenario: the HDL source plus everything the
/// program generator needs to emit code the machine can run.
struct GeneratedModel {
  std::uint64_t seed = 0;
  std::string name;  // "gen<seed>"
  ModelKnobs knobs;
  std::string hdl;   // complete processor model source
  int instruction_width = 0;

  // --- programming capabilities ------------------------------------------
  std::vector<std::string> registers;  // readable+writable general registers
  std::string memory;                  // instance name; empty if absent
  std::int64_t mem_cells = 0;          // directly addressable cells
  std::vector<hdl::OpKind> program_ops;  // binary operators usable in IR
  std::int64_t imm_max = 0;            // largest immediate operand value
  bool mem_writable = false;
  bool has_pc = false;
  int issue_slots = 1;                 // concurrent RT slots per word
  int branch_delay = 0;                // branch delay slots (0 or 1)
  /// Spill scratch area fitting the (often tiny) generated memory — the
  /// default sched::SpillOptions base of 0x70 lies beyond a 2^3-cell memory.
  std::int64_t spill_base = 0;
  int spill_slots = 0;
};

/// Draws knobs and emits the model for `seed`. Every seed must produce a
/// model that parses, elaborates and retargets; the testgen smoke test
/// enforces this over a corpus.
[[nodiscard]] GeneratedModel generate_model(std::uint64_t seed);

}  // namespace record::testgen
