#include "testgen/modelgen.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace record::testgen {

using util::fmt;

namespace {

int ceil_log2(int n) {
  int w = 1;
  while ((1 << w) < n) ++w;
  return w;
}

/// One instruction-word field: name plus resolved (lsb, width) slice.
struct Field {
  std::string name;
  int width = 0;
  int lsb = -1;

  [[nodiscard]] int msb() const { return lsb + width - 1; }
  [[nodiscard]] std::string slice() const { return fmt("({}:{})", msb(), lsb); }
};

}  // namespace

std::string ModelKnobs::str() const {
  std::ostringstream os;
  os << "regs=" << reg_count << "x" << reg_width << " imm=" << imm_width
     << "@" << imm_lsb;
  if (mem_addr_width > 0) {
    os << " mem=2^" << mem_addr_width << (mem_writable ? "rw" : "ro");
    if (mem_reg_indirect) os << "+ind";
    if (direct_addr_field) os << "+field@" << direct_addr_lsb;
  }
  if (use_bus) os << " bus";
  if (shared_imm) os << " shimm";
  if (has_port_io) os << " io";
  if (has_pc) os << " pc";
  os << " alu=";
  for (hdl::OpKind op : alu_ops) os << hdl::to_string(op);
  // Multi-issue knobs render only when active, so single-issue knob strings
  // (and the HDL comment lines embedding them) are unchanged byte-for-byte.
  if (issue_slots > 1) {
    os << " slots=" << issue_slots;
    if (mode_alu) os << "+mode";
  }
  if (branch_delay > 0) os << " delay=" << branch_delay;
  return os.str();
}

GeneratedModel generate_model(std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x243f6a8885a308d3ull);

  // --- draw knobs ----------------------------------------------------------
  ModelKnobs k;
  k.reg_count = rng.range(2, 4);
  constexpr int kWidths[] = {8, 16, 24, 32};
  k.reg_width = kWidths[rng.below(4)];
  k.imm_width = rng.range(4, std::min(k.reg_width - 1, 11));
  if (rng.chance(7, 8)) {
    k.mem_addr_width = rng.range(3, std::min(6, k.imm_width));
    k.mem_writable = rng.chance(3, 4);
    k.mem_reg_indirect = rng.chance(1, 2);
    k.direct_addr_field = rng.chance(1, 2);
  }
  k.use_bus = rng.chance(1, 3);
  k.shared_imm = rng.chance(1, 3);
  k.has_port_io = rng.chance(1, 2);
  k.has_pc = rng.chance(1, 2);
  k.alu_ops.push_back(hdl::OpKind::Add);
  constexpr hdl::OpKind kExtra[] = {hdl::OpKind::Sub, hdl::OpKind::And,
                                    hdl::OpKind::Or, hdl::OpKind::Xor,
                                    hdl::OpKind::Mul};
  for (hdl::OpKind op : kExtra)
    if (rng.chance(1, 2)) k.alu_ops.push_back(op);

  // --- multi-issue knobs ---------------------------------------------------
  // Drawn from an independent splitmix64 stream so the main stream (and with
  // it every single-issue structure above) is untouched for a given seed.
  Rng vr(seed * 0xd1342543de82ef95ull + 0x94d049bb133111ebull);
  {
    std::uint64_t d = vr.below(8);
    k.issue_slots = d < 2 ? 1 : d < 5 ? 2 : d < 7 ? 3 : 4;
  }
  struct SlotCfg {
    int ra = 0;         // a-side mux: R{ra} vs R{rb}
    int rb = 0;         // b-side mux: R{rb} vs the slot immediate
    bool extra = false; // a fourth ALU function beyond pass-a/pass-b/add
    hdl::OpKind op = hdl::OpKind::Sub;
  };
  std::vector<SlotCfg> slot_cfg;
  constexpr hdl::OpKind kSlotExtra[] = {hdl::OpKind::Sub, hdl::OpKind::And,
                                        hdl::OpKind::Or, hdl::OpKind::Xor};
  for (int s = 1; s < k.issue_slots; ++s) {
    SlotCfg c;
    c.ra = static_cast<int>(vr.below(static_cast<std::uint64_t>(k.reg_count)));
    c.rb = static_cast<int>(vr.below(static_cast<std::uint64_t>(k.reg_count)));
    c.extra = vr.chance(1, 2);
    c.op = kSlotExtra[vr.below(4)];
    slot_cfg.push_back(c);
  }
  k.mode_alu = k.issue_slots >= 2 && vr.chance(1, 2);
  k.branch_delay = (k.has_pc && vr.chance(1, 3)) ? 1 : 0;

  const int n = k.reg_count;
  const int rw = k.reg_width;
  const int aw = k.mem_addr_width;
  const bool mem = aw > 0;
  const int S = k.issue_slots;

  // --- instruction-word field layout ---------------------------------------
  // A-mux sources: registers (+ shared immediate); B side: registers,
  // immediate, memory data, input port. ALU functions: pass-a, pass-b, then
  // the drawn operator subset. The field order is rotated by the seed so the
  // immediate (and address) fields land at varying — often nonzero — lsbs.
  const int a_sources = n + (k.shared_imm ? 1 : 0);
  const int b_sources = n + 1 + (mem ? 1 : 0) + (k.has_port_io ? 1 : 0);
  const int alu_funcs = 2 + static_cast<int>(k.alu_ops.size());
  const int dst_values = n + (k.has_pc ? 1 : 0);  // encoded as 1..dst_values

  std::vector<Field> fields;
  fields.push_back({"asel", ceil_log2(a_sources)});
  fields.push_back({"bsel", ceil_log2(b_sources)});
  fields.push_back({"aluf", ceil_log2(alu_funcs)});
  fields.push_back({"dst", ceil_log2(dst_values + 1)});
  if (mem && k.mem_reg_indirect) fields.push_back({"msel", 1});
  if (mem && k.mem_writable) fields.push_back({"we", 1});
  if (mem && k.direct_addr_field) fields.push_back({"addrf", aw});
  fields.push_back({"imm", k.imm_width});

  std::rotate(fields.begin(),
              fields.begin() + static_cast<long>(rng.below(fields.size())),
              fields.end());
  // Extra issue slots append their fields after the (rotated) base layout,
  // leaving the slot-0 field positions exactly where a single-issue draw of
  // the same seed would put them.
  const int sdw = ceil_log2(n + 1);  // slot dst: 0 = no write, 1..n = regs
  for (int s = 1; s < S; ++s) {
    fields.push_back({fmt("asel{}", s), 1});
    fields.push_back({fmt("bsel{}", s), 1});
    if (s == 1 && k.mode_alu)
      fields.push_back({"smld", 1});
    else
      fields.push_back({fmt("aluf{}", s), 2});
    fields.push_back({fmt("dst{}", s), sdw});
    fields.push_back({fmt("imm{}", s), 4});
  }
  int lsb = 0;
  for (Field& f : fields) {
    f.lsb = lsb;
    lsb += f.width;
  }
  const int iw = lsb;

  auto field = [&fields](std::string_view name) -> const Field& {
    for (const Field& f : fields)
      if (f.name == name) return f;
    static const Field kNone{"", 0, -1};
    return kNone;
  };
  k.imm_lsb = field("imm").lsb;
  if (k.direct_addr_field) k.direct_addr_lsb = field("addrf").lsb;

  // --- emit the model ------------------------------------------------------
  GeneratedModel m;
  m.seed = seed;
  m.name = fmt("gen{}", seed);
  m.instruction_width = iw;

  std::ostringstream os;
  os << "-- generated by testgen::generate_model(seed=" << seed << ")\n";
  os << "-- knobs: " << k.str() << "\n";
  os << "PROCESSOR " << m.name << ";\n\n";
  os << fmt("CONTROLLER iw (OUT w:({}:0));\n\n", iw - 1);

  for (int i = 0; i < n; ++i) {
    os << fmt("REGISTER gpr{} (IN d:({}:0); OUT q:({}:0); CTRL ld:(0:0));\n",
              i, rw - 1, rw - 1);
    os << "BEHAVIOR\n  q := d WHEN ld = 1;\nEND;\n\n";
  }
  if (k.has_pc) {
    os << fmt("REGISTER pcreg (IN d:({}:0); OUT q:({}:0); CTRL ld:(0:0)){};\n",
              k.imm_width - 1, k.imm_width - 1,
              k.branch_delay > 0 ? " DELAY 1" : "");
    os << "BEHAVIOR\n  q := d WHEN ld = 1;\nEND;\n\n";
  }
  if (mem) {
    if (k.mem_writable) {
      os << fmt(
          "MEMORY memm (IN addr:({}:0); IN din:({}:0); OUT dout:({}:0);\n"
          "             CTRL we:(0:0)) SIZE {};\n",
          aw - 1, rw - 1, rw - 1, 1 << aw);
      os << "BEHAVIOR\n  dout := CELL[addr];\n"
            "  CELL[addr] := din WHEN we = 1;\nEND;\n\n";
    } else {
      os << fmt("MEMORY memm (IN addr:({}:0); OUT dout:({}:0)) SIZE {};\n",
                aw - 1, rw - 1, 1 << aw);
      os << "BEHAVIOR\n  dout := CELL[addr];\nEND;\n\n";
    }
  }

  os << fmt("MODULE izx (IN a:({}:0); OUT y:({}:0));\n", k.imm_width - 1,
            rw - 1);
  os << "BEHAVIOR\n  y := ZXT(a);\nEND;\n\n";

  // A-operand mux.
  os << "MODULE amux (";
  for (int i = 0; i < n; ++i) os << fmt("IN r{}:({}:0); ", i, rw - 1);
  if (k.shared_imm) os << fmt("IN im:({}:0); ", rw - 1);
  os << fmt("OUT y:({}:0); CTRL s:({}:0));\n", rw - 1,
            field("asel").width - 1);
  os << "BEHAVIOR\n";
  for (int i = 0; i < n; ++i) os << fmt("  y := r{} WHEN s = {};\n", i, i);
  if (k.shared_imm) os << fmt("  y := im WHEN s = {};\n", n);
  os << "END;\n\n";

  // B-operand source encoding (mux inputs or bus-driver guards).
  if (!k.use_bus) {
    os << "MODULE bmux (";
    for (int i = 0; i < n; ++i) os << fmt("IN r{}:({}:0); ", i, rw - 1);
    os << fmt("IN im:({}:0); ", rw - 1);
    if (mem) os << fmt("IN m:({}:0); ", rw - 1);
    if (k.has_port_io) os << fmt("IN p:({}:0); ", rw - 1);
    os << fmt("OUT y:({}:0); CTRL s:({}:0));\n", rw - 1,
              field("bsel").width - 1);
    os << "BEHAVIOR\n";
    int sel = 0;
    for (int i = 0; i < n; ++i)
      os << fmt("  y := r{} WHEN s = {};\n", i, sel++);
    os << fmt("  y := im WHEN s = {};\n", sel++);
    if (mem) os << fmt("  y := m WHEN s = {};\n", sel++);
    if (k.has_port_io) os << fmt("  y := p WHEN s = {};\n", sel++);
    os << "END;\n\n";
  }

  // ALU: pass-a, pass-b, then the operator subset.
  os << fmt("MODULE alu (IN a:({}:0); IN b:({}:0); OUT y:({}:0); "
            "CTRL f:({}:0));\n",
            rw - 1, rw - 1, rw - 1, field("aluf").width - 1);
  os << "BEHAVIOR\n";
  os << "  y := a WHEN f = 0;\n";
  os << "  y := b WHEN f = 1;\n";
  for (std::size_t i = 0; i < k.alu_ops.size(); ++i)
    os << fmt("  y := a {} b WHEN f = {};\n", hdl::to_string(k.alu_ops[i]),
              2 + i);
  os << "END;\n\n";

  // Destination decoder: value 0 = no write, 1..n = registers, n+1 = PC.
  os << fmt("MODULE ddec (IN d:({}:0);\n            ",
            field("dst").width - 1);
  for (int i = 0; i < n; ++i) os << fmt("OUT r{}:(0:0); ", i);
  if (k.has_pc) os << "OUT pc:(0:0); ";
  os.seekp(-2, std::ios_base::end);  // drop the trailing "; "
  os << ");\nBEHAVIOR\n";
  for (int i = 0; i < n; ++i)
    os << fmt("  r{} := 1 WHEN d = {};\n", i, i + 1);
  if (k.has_pc) os << fmt("  pc := 1 WHEN d = {};\n", n + 1);
  os << "END;\n\n";

  if (mem && k.mem_reg_indirect) {
    os << fmt("MODULE mmux (IN f:({}:0); IN p:({}:0); OUT y:({}:0); "
              "CTRL s:(0:0));\n",
              aw - 1, aw - 1, aw - 1);
    os << "BEHAVIOR\n  y := f WHEN s = 0;\n  y := p WHEN s = 1;\nEND;\n\n";
  }

  // --- extra issue slots: shared mux/extender/decoder modules, one ALU per
  // slot, per-register write buses with a write-enable OR -------------------
  static constexpr const char* kWorPorts[] = {"a", "b", "c", "d"};
  if (S > 1) {
    os << fmt("MODULE mux2 (IN a:({}:0); IN b:({}:0); OUT y:({}:0); "
              "CTRL s:(0:0));\n",
              rw - 1, rw - 1, rw - 1);
    os << "BEHAVIOR\n  y := a WHEN s = 0;\n  y := b WHEN s = 1;\nEND;\n\n";
    os << fmt("MODULE sizx (IN a:(3:0); OUT y:({}:0));\n", rw - 1);
    os << "BEHAVIOR\n  y := ZXT(a);\nEND;\n\n";
    os << fmt("MODULE sdec (IN d:({}:0);\n            ", sdw - 1);
    for (int i = 0; i < n; ++i) os << fmt("OUT r{}:(0:0); ", i);
    os.seekp(-2, std::ios_base::end);  // drop the trailing "; "
    os << ");\nBEHAVIOR\n";
    for (int i = 0; i < n; ++i)
      os << fmt("  r{} := 1 WHEN d = {};\n", i, i + 1);
    os << "END;\n\n";
    for (int s = 1; s < S; ++s) {
      const SlotCfg& c = slot_cfg[static_cast<std::size_t>(s - 1)];
      os << fmt("MODULE salu{} (IN a:({}:0); IN b:({}:0); OUT y:({}:0); "
                "CTRL f:(1:0));\n",
                s, rw - 1, rw - 1, rw - 1);
      os << "BEHAVIOR\n  y := a WHEN f = 0;\n  y := b WHEN f = 1;\n"
            "  y := a + b WHEN f = 2;\n";
      if (c.extra)
        os << fmt("  y := a {} b WHEN f = 3;\n", hdl::to_string(c.op));
      os << "END;\n\n";
    }
    os << "MODULE wor (";
    for (int s = 0; s < S; ++s) os << fmt("IN {}:(0:0); ", kWorPorts[s]);
    os << "OUT y:(0:0));\nBEHAVIOR\n";
    for (int s = 0; s < S; ++s)
      os << fmt("  y := 1 WHEN {} = 1;\n", kWorPorts[s]);
    os << "END;\n\n";
    if (k.mode_alu) {
      os << "MODEREG smode (IN d:(1:0); OUT q:(1:0); CTRL ld:(0:0));\n";
      os << "BEHAVIOR\n  q := d WHEN ld = 1;\nEND;\n\n";
    }
  }

  if (k.has_port_io) os << fmt("PORT pin: IN ({}:0);\n", rw - 1);
  os << fmt("PORT pout: OUT ({}:0);\n\n", rw - 1);

  // --- structure -----------------------------------------------------------
  os << "STRUCTURE\nPARTS\n";
  os << "  IW:  iw;\n";
  for (int i = 0; i < n; ++i) os << fmt("  R{}:  gpr{};\n", i, i);
  if (k.has_pc) os << "  PC:  pcreg;\n";
  if (mem) os << "  mem: memm;\n";
  os << "  IZX: izx;\n  AM:  amux;\n";
  if (!k.use_bus) os << "  BM:  bmux;\n";
  os << "  ALU: alu;\n  DD:  ddec;\n";
  if (mem && k.mem_reg_indirect) os << "  MM:  mmux;\n";
  if (S > 1) {
    for (int s = 1; s < S; ++s)
      os << fmt("  A{}:  mux2;\n  B{}:  mux2;\n  X{}:  sizx;\n"
                "  U{}:  salu{};\n  D{}:  sdec;\n",
                s, s, s, s, s, s);
    for (int i = 0; i < n; ++i) os << fmt("  L{}:  wor;\n", i);
    if (k.mode_alu) os << "  SM:  smode;\n";
  }
  if (k.use_bus) os << fmt("BUS dbus: ({}:0);\n", rw - 1);
  if (S > 1)
    for (int i = 0; i < n; ++i) os << fmt("BUS wb{}: ({}:0);\n", i, rw - 1);
  os << "CONNECTIONS\n";

  const Field& fimm = field("imm");
  os << fmt("  IZX.a := IW.w{};\n", fimm.slice());
  for (int i = 0; i < n; ++i) os << fmt("  AM.r{} := R{}.q;\n", i, i);
  if (k.shared_imm) os << "  AM.im := IZX.y;\n";
  os << fmt("  AM.s  := IW.w{};\n", field("asel").slice());

  const Field& fb = field("bsel");
  if (k.use_bus) {
    int sel = 0;
    for (int i = 0; i < n; ++i)
      os << fmt("  dbus := R{}.q WHEN IW.w{} = {};\n", i, fb.slice(), sel++);
    os << fmt("  dbus := IZX.y WHEN IW.w{} = {};\n", fb.slice(), sel++);
    if (mem)
      os << fmt("  dbus := mem.dout WHEN IW.w{} = {};\n", fb.slice(), sel++);
    if (k.has_port_io)
      os << fmt("  dbus := pin WHEN IW.w{} = {};\n", fb.slice(), sel++);
    os << "  ALU.b := dbus;\n";
  } else {
    for (int i = 0; i < n; ++i) os << fmt("  BM.r{} := R{}.q;\n", i, i);
    os << "  BM.im := IZX.y;\n";
    if (mem) os << "  BM.m  := mem.dout;\n";
    if (k.has_port_io) os << "  BM.p  := pin;\n";
    os << fmt("  BM.s  := IW.w{};\n", fb.slice());
    os << "  ALU.b := BM.y;\n";
  }

  os << "  ALU.a := AM.y;\n";
  os << fmt("  ALU.f := IW.w{};\n", field("aluf").slice());
  os << fmt("  DD.d  := IW.w{};\n", field("dst").slice());
  if (S == 1) {
    for (int i = 0; i < n; ++i) {
      os << fmt("  R{}.d  := ALU.y;\n", i);
      os << fmt("  R{}.ld := DD.r{};\n", i, i);
    }
  } else {
    // Slots share the register file: each register's data input is a
    // tristate bus driven by whichever slot's decoder selects it, and its
    // load line is the OR of the per-slot enables. Two slots selecting the
    // same register is a genuine structural hazard — the simulator rejects
    // it as a write contention and the compactor's WAW edges keep it out of
    // packed words.
    for (int i = 0; i < n; ++i) {
      os << fmt("  wb{} := ALU.y WHEN DD.r{} = 1;\n", i, i);
      for (int s = 1; s < S; ++s)
        os << fmt("  wb{} := U{}.y WHEN D{}.r{} = 1;\n", i, s, s, i);
      os << fmt("  R{}.d  := wb{};\n", i, i);
      os << fmt("  L{}.a := DD.r{};\n", i, i);
      for (int s = 1; s < S; ++s)
        os << fmt("  L{}.{} := D{}.r{};\n", i, kWorPorts[s], s, i);
      os << fmt("  R{}.ld := L{}.y;\n", i, i);
    }
    for (int s = 1; s < S; ++s) {
      const SlotCfg& c = slot_cfg[static_cast<std::size_t>(s - 1)];
      os << fmt("  X{}.a := IW.w{};\n", s, field(fmt("imm{}", s)).slice());
      os << fmt("  A{}.a := R{}.q;\n", s, c.ra);
      os << fmt("  A{}.b := R{}.q;\n", s, c.rb);
      os << fmt("  A{}.s := IW.w{};\n", s, field(fmt("asel{}", s)).slice());
      os << fmt("  B{}.a := R{}.q;\n", s, c.rb);
      os << fmt("  B{}.b := X{}.y;\n", s, s);
      os << fmt("  B{}.s := IW.w{};\n", s, field(fmt("bsel{}", s)).slice());
      os << fmt("  U{}.a := A{}.y;\n", s, s);
      os << fmt("  U{}.b := B{}.y;\n", s, s);
      if (s == 1 && k.mode_alu)
        os << "  U1.f := SM.q;\n";
      else
        os << fmt("  U{}.f := IW.w{};\n", s, field(fmt("aluf{}", s)).slice());
      os << fmt("  D{}.d := IW.w{};\n", s, field(fmt("dst{}", s)).slice());
    }
    if (k.mode_alu) {
      const Field& f1 = field("imm1");
      os << fmt("  SM.d := IW.w({}:{});\n", f1.lsb + 1, f1.lsb);
      os << fmt("  SM.ld := IW.w{};\n", field("smld").slice());
    }
  }
  if (k.has_pc) {
    os << fmt("  PC.d  := IW.w{};\n", fimm.slice());
    os << "  PC.ld := DD.pc;\n";
  }

  if (mem) {
    // The direct address source: a dedicated field, or the immediate field's
    // low address-width bits (both sliced straight off the instruction word —
    // nonzero lsbs here are exactly the PR-2 regression shape).
    std::string addr_src =
        k.direct_addr_field
            ? fmt("IW.w{}", field("addrf").slice())
            : fmt("IW.w({}:{})", fimm.lsb + aw - 1, fimm.lsb);
    if (k.mem_reg_indirect) {
      os << fmt("  MM.f := {};\n", addr_src);
      os << fmt("  MM.p := R0.q({}:0);\n", aw - 1);
      os << fmt("  MM.s := IW.w{};\n", field("msel").slice());
      os << "  mem.addr := MM.y;\n";
    } else {
      os << fmt("  mem.addr := {};\n", addr_src);
    }
    if (k.mem_writable) {
      os << fmt("  mem.din := R{}.q;\n", n - 1);
      os << fmt("  mem.we  := IW.w{};\n", field("we").slice());
    }
  }
  os << "  pout := R0.q;\nEND;\n";

  m.hdl = os.str();
  m.knobs = k;

  // --- programming capabilities -------------------------------------------
  for (int i = 0; i < n; ++i) m.registers.push_back(fmt("R{}", i));
  if (mem) {
    m.memory = "mem";
    std::int64_t total = std::int64_t{1} << aw;
    // Programs address the lower half; the upper half is spill scratch.
    m.mem_cells = std::min<std::int64_t>(total / 2, 8);
    m.spill_base = total / 2;
    m.spill_slots = static_cast<int>(std::min<std::int64_t>(total / 2, 8));
  }
  m.program_ops = k.alu_ops;
  m.imm_max = (std::int64_t{1} << k.imm_width) - 1;
  m.mem_writable = k.mem_writable;
  m.has_pc = k.has_pc;
  m.issue_slots = k.issue_slots;
  m.branch_delay = k.branch_delay;
  return m;
}

}  // namespace record::testgen
