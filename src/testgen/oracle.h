// The differential oracle: the repo's fourth, engine-agnostic verification
// layer (after unit tests, cross-engine differential tests and sanitizer
// jobs).
//
// One (model, program) pair is pushed through SIX independent checks —
//   1. treeparse::TreeParser        (dynamic-programming interpreter)
//   2. burstab::TableParser         (compiled BURS state tables)
//   3. the warm TargetCache path    (serialise -> reload -> compile)
//   4. a multi-worker CompileService batch (registry + kernel frontend)
//   5. the semantic oracle          (RT-level simulator vs. IR reference
//                                    evaluator, sim/check.h)
//   6. the compaction cross-check   (the same selection compiled with
//                                    compaction OFF — every RT its own word
//                                    — simulated and compared too)
// — asserting bit-identical listings and instruction encodings across paths
// 1-4. On top, every encoded instruction word is decode-checked against the
// BDD execution conditions of the RTs it claims to carry (encode -> decode
// round trip): the emitted bits must fire each packed RT for some mode state,
// immediate fields must hold the bound values, and branch fields the resolved
// target addresses — all at in-bounds bit positions. Path 5 then *executes*
// the emitted words on the instruction-set simulator and compares the final
// register/memory state against the reference evaluator, bit for bit. Path 6
// repeats that execution for the sequential (compaction-off) schedule, which
// both verifies the ablation encoding in its own right and ATTRIBUTES a
// path-5 divergence: a compacted run that diverges while the sequential run
// of the same selection agrees is a compaction bug (packing, mode-set
// insertion, delay-slot filling or encoder word merging), classified
// kCompaction so fuzz triage and the minimizer keep it apart from selector
// or simulator defects.
//
// A pair where NO path compiles (the model genuinely cannot cover the
// program) counts as agreement with compiled=false; divergence of any kind is
// a failure, classified (FailureClass) as structural (listings/encodings
// differ), decode (round-trip violation or simulator rejection), semantic
// (simulated state diverges from the reference) or compaction (only the
// compacted schedule misbehaves). minimize_program() shrinks a
// failing program against an arbitrary predicate — drivers preserve the
// failure class while shrinking, so a semantic repro cannot collapse into an
// unrelated structural one; write_repro()/load_repro() serialise a failure to
// a standalone JSON file that fuzz_retarget --replay reproduces.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/compiler.h"
#include "ir/program.h"
#include "testgen/modelgen.h"

namespace record::testgen {

struct OracleOptions {
  /// Shared by all four paths (engine is overridden per path). Callers set
  /// model-appropriate spill scratch placement here (GeneratedModel::
  /// spill_base / spill_slots).
  core::CompileOptions compile;
  /// Worker threads of the CompileService path.
  int service_workers = 4;
  /// Copies of the pair submitted through one batch (exercises the
  /// registry's single-flight and concurrent compiles over one target).
  int service_jobs = 6;
  /// TargetCache directory for the warm-path check; empty selects
  /// default_cache_dir(). Callers should remove it when a run is done.
  std::string cache_dir;
  /// Enable the per-word encode->decode round-trip check.
  bool roundtrip = true;
  /// Skip the CompileService path (the smoke corpus runs it on a subset:
  /// spinning a worker pool per pair is the most expensive oracle stage).
  bool service = true;
  /// Skip the warm-TargetCache path (the minimizer does: two cache
  /// retargets per shrink candidate add nothing when the divergence
  /// reproduces from paths 1+2).
  bool cache = true;
  /// Pre-retargeted reference target for paths 1+2 (retargeting is
  /// deterministic, so sharing it across a model's programs drops the
  /// redundant pipeline runs); null = cold retarget inside check_pair.
  std::shared_ptr<const core::RetargetResult> target;
  /// Run the semantic oracle (path 5: simulator vs. reference evaluator).
  bool semantics = true;
  /// Taken-branch budget shared by both semantic executors (sim/eval.h).
  int sim_branches = 4;
  /// Chaos mode: failpoints (util/failpoint.h) may be armed while this pair
  /// runs, so paths 3+4 tolerate *structured* faults — a deadline_exceeded
  /// or injected-failpoint job failure, a warm-cache miss from a poisoned
  /// store — tallying each in OracleReport::faults_tolerated. Everything
  /// else keeps its meaning: output that compiles must stay bit-identical
  /// to the reference, so an injected fault may only produce a clean error
  /// or a correct result, never silent divergence.
  bool chaos = false;
  /// Deadline (ms) stamped on every service-path job; 0 = none.
  std::uint64_t service_deadline_ms = 0;
};

/// What kind of divergence a failing pair exhibits. The minimizer keeps the
/// class fixed while shrinking.
enum class FailureClass : std::uint8_t {
  kNone,        // no failure
  kStructural,  // paths 1-4 disagree (listings, encodings, compile outcome)
  kDecode,      // encode->decode round trip broken / simulator reject
  kSemantic,    // simulated final state diverges from the reference
  kCompaction   // only the compacted schedule misbehaves (path 6)
};

[[nodiscard]] std::string_view to_string(FailureClass c);

/// Classifies a failure string by its stable prefix (used when replaying
/// repro files that predate the class field).
[[nodiscard]] FailureClass classify_failure(std::string_view failure);

struct OracleReport {
  bool agree = false;     // all paths consistent (and round trip clean)
  bool compiled = false;  // the pair actually compiled
  std::string failure;    // first divergence; empty when agree
  FailureClass clazz = FailureClass::kNone;
  std::string listing;    // reference listing (when compiled)
  std::size_t words = 0;  // encoded instruction words
  std::size_t templates = 0;  // target's extended-base size
  bool semantics_checked = false;  // path 5 actually compared state
  std::string semantics_skipped;   // why path 5 was skipped (when it was)
  /// Path 6 verified the sequential (compaction-off) schedule too.
  bool compaction_checked = false;
  /// Packing shape of the reference (compacted) encoding: words carrying
  /// two or more RTs, and the total RT count over all words — a fuzz run
  /// reports mean RTs/word and the share of genuinely packed pairs from
  /// these.
  std::size_t multi_rt_words = 0;
  std::size_t total_slot_rts = 0;
  /// Chaos mode only: structured faults (clean errors from injected
  /// failpoints/deadlines) the oracle tolerated instead of failing on.
  std::uint64_t faults_tolerated = 0;
};

/// <system temp>/record-testgen-cache-<pid>
[[nodiscard]] std::string default_cache_dir();

/// Runs the full differential oracle on one pair.
[[nodiscard]] OracleReport check_pair(std::string_view hdl,
                                      const ir::Program& prog,
                                      const OracleOptions& options);

/// Encode->decode round trip over one compiled result; returns the first
/// problem found, empty string when clean. Exposed for targeted tests.
[[nodiscard]] std::string roundtrip_issues(const core::CompileResult& result,
                                           const rtl::TemplateBase& base);

/// Greedy shrink: drops statements, then replaces operator nodes by their
/// operands, while `still_fails` keeps returning true. `budget` bounds the
/// number of predicate evaluations.
[[nodiscard]] ir::Program minimize_program(
    const ir::Program& prog,
    const std::function<bool(const ir::Program&)>& still_fails,
    int budget = 200);

/// A self-contained failure record.
struct Repro {
  std::uint64_t model_seed = 0;
  std::uint64_t program_seed = 0;
  std::string model;    // processor name
  std::string knobs;    // human-readable knob summary
  std::string hdl;      // complete model source
  std::string kernel;   // minimized kernel-language program
  std::string failure;  // what diverged
  std::string failure_class;  // to_string(FailureClass) of the divergence
  std::int64_t spill_base = 0;  // scratch placement used by the failing run
  int spill_slots = 0;
};

/// Writes `r` as a JSON document to `path`; returns false on I/O failure.
bool write_repro(const std::string& path, const Repro& r);

/// Loads a repro file; nullopt on I/O or parse failure.
[[nodiscard]] std::optional<Repro> load_repro(const std::string& path);

}  // namespace record::testgen
