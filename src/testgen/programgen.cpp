#include "testgen/programgen.h"

#include <sstream>

#include "ir/builder.h"
#include "util/strings.h"

namespace record::testgen {

using util::fmt;

namespace {

void render_expr(const ir::Expr& e, std::ostringstream& os) {
  // A pinned result width renders as the kernel language's width cast.
  if (e.width_override > 0) os << 'w' << e.width_override << '(';
  switch (e.kind) {
    case ir::Expr::Kind::Const:
      os << e.value;
      break;
    case ir::Expr::Kind::Var:
      os << e.var;
      break;
    case ir::Expr::Kind::Load:
      os << e.mem << '[';
      render_expr(*e.args[0], os);
      os << ']';
      break;
    case ir::Expr::Kind::OpNode:
      if (e.op == hdl::OpKind::Custom) {  // any arity, incl. binary
        os << e.custom << '(';
        for (std::size_t i = 0; i < e.args.size(); ++i) {
          if (i) os << ", ";
          render_expr(*e.args[i], os);
        }
        os << ')';
      } else if (e.args.size() == 2) {
        os << '(';
        render_expr(*e.args[0], os);
        os << ' ' << hdl::to_string(e.op) << ' ';
        render_expr(*e.args[1], os);
        os << ')';
      } else {
        os << (e.op == hdl::OpKind::Not ? "~" : "-") << '(';
        render_expr(*e.args[0], os);
        os << ')';
      }
      break;
  }
  if (e.width_override > 0) os << ')';
}

std::string expr_text(const ir::Expr& e) {
  std::ostringstream os;
  render_expr(e, os);
  return os.str();
}

/// Random expression generator over the model's capabilities.
class ExprGen {
 public:
  ExprGen(const GeneratedModel& m, Rng& rng, int mem_vars)
      : m_(m), rng_(rng), mem_vars_(mem_vars) {}

  ir::ExprPtr gen(int depth) {
    if (depth <= 0 || rng_.chance(1, 4)) return leaf();
    hdl::OpKind op = m_.program_ops[rng_.below(m_.program_ops.size())];
    ir::ExprPtr e = ir::e_bin(op, gen(depth - 1), gen(depth - 1));
    // Constant folding is the programmer's job: a const-op-const node has no
    // inferable width and no target ever offers it. Ground one operand.
    if (e->args[0]->kind == ir::Expr::Kind::Const &&
        e->args[1]->kind == ir::Expr::Kind::Const)
      e->args[0] = ir::e_var(fmt("r{}", rng_.below(m_.registers.size())));
    // IR width inference treats `*` as a widening multiply (w0 + w1); the
    // generated ALUs are truncating, so pin the hardware's result width.
    if (op == hdl::OpKind::Mul) e->width_override = m_.knobs.reg_width;
    return e;
  }

 private:
  ir::ExprPtr leaf() {
    std::uint64_t pick = rng_.below(4);
    if (pick == 0)  // constant fitting the immediate field
      return ir::e_const(static_cast<std::int64_t>(
          rng_.below(static_cast<std::uint64_t>(m_.imm_max) + 1)));
    if (pick == 1 && mem_vars_ > 0)
      return ir::e_var(fmt("m{}", rng_.below(
                                      static_cast<std::uint64_t>(mem_vars_))));
    return ir::e_var(fmt("r{}", rng_.below(m_.registers.size())));
  }

  const GeneratedModel& m_;
  Rng& rng_;
  int mem_vars_;
};

}  // namespace

std::string ProgramKnobs::str() const {
  return fmt("stmts={} depth={}{}{}", stmts, max_depth,
             use_store ? " store" : "", use_branch ? " branch" : "");
}

GeneratedProgram generate_program(const GeneratedModel& model,
                                  std::uint64_t seed) {
  Rng rng(model.seed * 0x2545f4914f6cdd1dull + seed + 0x13198a2e03707344ull);

  GeneratedProgram out;
  out.seed = seed;
  out.name = fmt("{}_p{}", model.name, seed);

  ProgramKnobs k;
  if (model.issue_slots > 1) {
    // Multi-issue machines get wider kernels: more statements with
    // shallower expressions, so independent chains exist for the compactor
    // to pack into one word. The single-issue draw path below is untouched
    // — seeds replay byte-identically on classic machines.
    k.stmts = rng.range(3, 8);
    k.max_depth = rng.range(1, 2);
  } else {
    k.stmts = rng.range(1, 5);
    k.max_depth = rng.range(1, 3);
  }
  k.use_store = model.mem_writable && rng.chance(1, 2);
  k.use_branch = model.has_pc && rng.chance(1, 3);
  out.knobs = k;

  ir::ProgramBuilder b(out.name);
  for (std::size_t i = 0; i < model.registers.size(); ++i)
    b.reg(fmt("r{}", i), model.registers[i]);
  int mem_vars = 0;
  if (!model.memory.empty()) {
    mem_vars = static_cast<int>(
        std::min<std::int64_t>(model.mem_cells, 4));
    for (int j = 0; j < mem_vars; ++j)
      b.cell(fmt("m{}", j), model.memory, j);
  }

  ExprGen gen(model, rng, mem_vars);
  if (k.use_branch) b.label("Ltop");
  for (int s = 0; s < k.stmts; ++s) {
    if (model.issue_slots > 1 && rng.chance(1, 2)) {
      // Packable statement: a plain reg-reg binary op on a rotating
      // destination. Consecutive such statements touch different registers
      // and carry no dependence, so compaction can issue them together.
      std::string dest =
          fmt("r{}", static_cast<std::size_t>(s) % model.registers.size());
      hdl::OpKind op = model.program_ops[rng.below(model.program_ops.size())];
      ir::ExprPtr e =
          ir::e_bin(op, ir::e_var(fmt("r{}", rng.below(model.registers.size()))),
                    ir::e_var(fmt("r{}", rng.below(model.registers.size()))));
      if (op == hdl::OpKind::Mul) e->width_override = model.knobs.reg_width;
      b.let(std::move(dest), std::move(e));
      continue;
    }
    std::string dest = fmt("r{}", rng.below(model.registers.size()));
    b.let(std::move(dest), gen.gen(k.max_depth));
  }
  if (k.use_store) {
    std::int64_t cell =
        static_cast<std::int64_t>(rng.below(
            static_cast<std::uint64_t>(model.mem_cells)));
    b.put(model.memory, ir::e_const(cell), gen.gen(k.max_depth - 1));
  }
  // Backward branch: the target address is always small, so it fits any
  // immediate field regardless of how many words the body compacts to.
  if (k.use_branch) b.jump("Ltop");

  out.program = b.take();
  out.kernel = kernel_text(out.program);
  return out;
}

std::string kernel_text(const ir::Program& prog) {
  std::ostringstream os;
  os << "kernel " << prog.name() << ";\n";
  for (const auto& [var, bind] : prog.bindings()) {
    if (bind.kind == ir::Binding::Kind::Register)
      os << "bind " << var << ": " << bind.storage << ";\n";
    else
      os << "cell " << var << ": " << bind.storage << '[' << bind.cell
         << "];\n";
  }
  for (const ir::Stmt& s : prog.stmts()) {
    switch (s.kind) {
      case ir::Stmt::Kind::Assign:
        os << s.dest_var << " = " << expr_text(*s.rhs) << ";\n";
        break;
      case ir::Stmt::Kind::Store:
        os << s.mem << '[' << expr_text(*s.addr) << "] = "
           << expr_text(*s.rhs) << ";\n";
        break;
      case ir::Stmt::Kind::LabelDef:
        os << s.label << ":\n";
        break;
      case ir::Stmt::Kind::Branch:
        if (s.branch == ir::BranchKind::Always)
          os << "goto " << s.label << ";\n";
        else
          os << (s.branch == ir::BranchKind::IfZero ? "ifz " : "ifnz ")
             << s.cond_var << " goto " << s.label << ";\n";
        break;
    }
  }
  return os.str();
}

namespace {

/// The single statement-copy core under both clone entry points.
/// `skip_stmt` drops one statement; `rhs_swap` (paired with `swap_stmt`)
/// replaces one assign/store rhs.
ir::Program clone_impl(const ir::Program& prog, int skip_stmt, int swap_stmt,
                       ir::ExprPtr rhs_swap) {
  ir::Program out(prog.name());
  for (const auto& [var, bind] : prog.bindings()) {
    if (bind.kind == ir::Binding::Kind::Register)
      out.bind_register(var, bind.storage);
    else
      out.bind_mem_cell(var, bind.storage, bind.cell);
  }
  int index = 0;
  for (const ir::Stmt& s : prog.stmts()) {
    int i = index++;
    if (i == skip_stmt) continue;
    bool swap = i == swap_stmt;
    switch (s.kind) {
      case ir::Stmt::Kind::Assign:
        out.assign(s.dest_var, swap ? std::move(rhs_swap) : s.rhs->clone());
        break;
      case ir::Stmt::Kind::Store:
        out.store(s.mem, s.addr->clone(),
                  swap ? std::move(rhs_swap) : s.rhs->clone());
        break;
      case ir::Stmt::Kind::LabelDef:
        out.label(s.label);
        break;
      case ir::Stmt::Kind::Branch:
        if (s.branch == ir::BranchKind::Always)
          out.branch(s.label);
        else if (s.branch == ir::BranchKind::IfZero)
          out.branch_if_zero(s.cond_var, s.label);
        else
          out.branch_if_not_zero(s.cond_var, s.label);
        break;
    }
  }
  return out;
}

}  // namespace

ir::Program clone_program(const ir::Program& prog, int skip_stmt) {
  return clone_impl(prog, skip_stmt, -1, nullptr);
}

ir::Program clone_program_with_rhs(const ir::Program& prog, int stmt_index,
                                   ir::ExprPtr rhs) {
  return clone_impl(prog, -1, stmt_index, std::move(rhs));
}

}  // namespace record::testgen
