// Seeded random kernel-program generation, sized to a generated model's
// capabilities (registers, memory cells, ALU operator subset, immediate
// range, branch support).
//
// Programs are produced as ir::Program AND as kernel-language text
// (ir/kernel_lang.h); the text is the canonical replay format — a repro file
// carrying {model HDL, kernel source} reproduces a failure with no binary
// state. kernel_text() renders any program built from the generated subset
// (register/cell bindings, assigns, stores, labels, branches) back to
// parseable kernel source, which the minimizer uses after shrinking.
#pragma once

#include <cstdint>
#include <string>

#include "ir/program.h"
#include "testgen/modelgen.h"

namespace record::testgen {

struct ProgramKnobs {
  int stmts = 1;        // assignment statements
  int max_depth = 2;    // expression-tree depth
  bool use_store = false;
  bool use_branch = false;

  [[nodiscard]] std::string str() const;
};

struct GeneratedProgram {
  std::uint64_t seed = 0;
  std::string name;
  ProgramKnobs knobs;
  ir::Program program{"(empty)"};
  std::string kernel;  // kernel-language rendering of `program`
};

/// Generates a program the model can plausibly execute: destinations are the
/// model's registers, operators its ALU subset, constants fit its immediate
/// field, memory operands address its cells. Deterministic in (model.seed,
/// seed).
[[nodiscard]] GeneratedProgram generate_program(const GeneratedModel& model,
                                                std::uint64_t seed);

/// Renders a program built from the generated statement subset back to
/// kernel-language source. Round-trips through ir::parse_kernel.
[[nodiscard]] std::string kernel_text(const ir::Program& prog);

/// Structural copy (ir::Program is move-only); optionally dropping the
/// statement at `skip_stmt` (< 0 keeps everything).
[[nodiscard]] ir::Program clone_program(const ir::Program& prog,
                                        int skip_stmt = -1);

/// Structural copy with the rhs of the statement at `stmt_index` replaced
/// (the minimizer's expression-shrink step).
[[nodiscard]] ir::Program clone_program_with_rhs(const ir::Program& prog,
                                                 int stmt_index,
                                                 ir::ExprPtr rhs);

}  // namespace record::testgen
