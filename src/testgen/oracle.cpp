#include "testgen/oracle.h"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/record.h"
#include "ir/kernel_lang.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/json.h"
#include "service/service.h"
#include "sim/check.h"
#include "testgen/programgen.h"
#include "util/strings.h"

namespace record::testgen {

using util::fmt;

namespace {

std::string first_line(const std::string& s) {
  std::size_t nl = s.find('\n');
  return nl == std::string::npos ? s : s.substr(0, nl);
}

std::vector<std::string> hex_words(const core::CompileResult& r) {
  std::vector<std::string> out;
  out.reserve(r.encoded.assembly.words.size());
  for (const emit::EncodedWord& w : r.encoded.assembly.words)
    out.push_back(w.hex());
  return out;
}

/// A job failure the chaos oracle accepts as a *structured* fault: an
/// injected failpoint or an expired deadline surfacing as a clean,
/// attributable error (never as divergent output).
bool structured_fault(const service::JobResult& r) {
  if (r.deadline_exceeded) return true;
  const std::string& e = r.error;
  return e.rfind("failpoint:", 0) == 0 ||
         e.rfind("deadline_exceeded", 0) == 0 ||
         e.rfind("overloaded", 0) == 0 ||
         e == "compile service is shut down" ||
         e == "job threw: std::bad_alloc";  // the service.job.alloc site
}

/// Compares a candidate path's outcome against the reference; returns the
/// first difference ("" = identical).
std::string diff_results(const char* what,
                         const std::optional<core::CompileResult>& ref,
                         const std::optional<core::CompileResult>& got) {
  if (ref.has_value() != got.has_value())
    return fmt("{}: compile {} but reference {}", what,
               got ? "succeeded" : "failed", ref ? "succeeded" : "failed");
  if (!ref) return "";
  if (ref->listing() != got->listing())
    return fmt("{}: listing differs from reference", what);
  if (hex_words(*ref) != hex_words(*got))
    return fmt("{}: encoded instruction words differ from reference", what);
  return "";
}

}  // namespace

std::string default_cache_dir() {
  return (std::filesystem::temp_directory_path() /
          fmt("record-testgen-cache-{}", static_cast<unsigned>(::getpid())))
      .string();
}

std::string_view to_string(FailureClass c) {
  switch (c) {
    case FailureClass::kNone:
      return "none";
    case FailureClass::kStructural:
      return "structural";
    case FailureClass::kDecode:
      return "decode";
    case FailureClass::kSemantic:
      return "semantic";
    case FailureClass::kCompaction:
      return "compaction";
  }
  return "?";
}

FailureClass classify_failure(std::string_view failure) {
  if (failure.empty()) return FailureClass::kNone;
  // Stable prefixes written by check_pair; everything else (compile paths
  // disagreeing, retarget failures) is structural. "compaction" covers all
  // three path-6 prefixes ("compaction:", "compaction decode:",
  // "compaction semantic:").
  if (failure.rfind("compaction", 0) == 0) return FailureClass::kCompaction;
  if (failure.rfind("round trip:", 0) == 0 ||
      failure.rfind("semantic decode:", 0) == 0)
    return FailureClass::kDecode;
  if (failure.rfind("semantic:", 0) == 0) return FailureClass::kSemantic;
  return FailureClass::kStructural;
}

std::string roundtrip_issues(const core::CompileResult& result,
                             const rtl::TemplateBase& base) {
  bdd::BddManager& mgr = *base.mgr;
  const int iw = base.instruction_width;
  const emit::Assembly& assembly = result.encoded.assembly;

  // Instruction-bit variable indices, resolved once.
  std::vector<std::pair<int, int>> ivars;  // (var, word bit)
  for (int v = 0; v < mgr.var_count(); ++v) {
    const std::string& n = mgr.var_name(v);
    if (n.rfind("I[", 0) == 0)
      ivars.emplace_back(v, std::stoi(n.substr(2, n.size() - 3)));
  }

  for (const emit::EncodedWord& ew : assembly.words) {
    bdd::Assignment asg;
    asg.reserve(ivars.size());
    for (auto [v, k] : ivars)
      asg.emplace_back(v, k >= 0 &&
                              k < static_cast<int>(ew.bits.size()) &&
                              ew.bits[static_cast<std::size_t>(k)]);

    for (const select::SelectedRT* rt : ew.word->rts) {
      if (!rt->tmpl) continue;

      // The emitted bits must fire this RT for some mode state: project the
      // execution condition (which already conjoins selection-time immediate
      // values) onto the instruction bits, then evaluate under the word.
      bdd::Ref c = rt->cond;
      for (int v : mgr.support(c))
        if (mgr.var_name(v).rfind("I[", 0) != 0) c = mgr.exists(c, v);
      if (!mgr.eval(c, asg))
        return fmt("word {} ({}): bits do not satisfy the execution "
                   "condition of '{}'",
                   ew.address, ew.hex(), rt->comment);

      // Immediate fields: in-bounds bit positions holding the bound value
      // (branches: the resolved target address).
      if (rt->is_branch) {
        auto it = assembly.labels.find(rt->branch_target);
        if (it == assembly.labels.end())
          return fmt("word {}: branch target '{}' unresolved", ew.address,
                     rt->branch_target);
        if (rt->tmpl->value->kind == rtl::RTNode::Kind::Imm) {
          const std::vector<int>& bits = rt->tmpl->value->imm_bits;
          std::uint64_t addr = static_cast<std::uint64_t>(it->second);
          if (bits.size() < 64 && (addr >> bits.size()) != 0)
            return fmt("word {}: branch target {} overflows the {}-bit "
                       "address field",
                       ew.address, it->second, bits.size());
          for (std::size_t j = 0; j < bits.size(); ++j) {
            if (bits[j] < 0 || bits[j] >= iw)
              return fmt("word {}: branch field bit {} out of bounds "
                         "(instruction width {})",
                         ew.address, bits[j], iw);
            bool want = ((addr >> j) & 1u) != 0;
            if (ew.bits[static_cast<std::size_t>(bits[j])] != want)
              return fmt("word {}: branch field bit I[{}] encodes {} but "
                         "target address {} needs {}",
                         ew.address, bits[j], !want, it->second, want);
          }
        }
      } else {
        for (const treeparse::ImmBinding& b : rt->imms) {
          const std::vector<int>& field_bits = *b.field_bits;
          // The bound value must actually fit the field: all bits beyond it
          // zero (non-negative) or all ones (sign-extended negative) —
          // silent truncation is the bug class this oracle exists to catch.
          if (field_bits.size() < 64) {
            std::int64_t high = b.value >> field_bits.size();
            if (high != 0 && high != -1)
              return fmt("word {}: bound value {} overflows the {}-bit "
                         "immediate field",
                         ew.address, b.value, field_bits.size());
          }
          std::uint64_t value = static_cast<std::uint64_t>(b.value);
          for (std::size_t j = 0; j < field_bits.size(); ++j) {
            int pos = field_bits[j];
            if (pos < 0 || pos >= iw)
              return fmt("word {}: immediate field bit {} out of bounds "
                         "(instruction width {})",
                         ew.address, pos, iw);
            bool want = ((value >> j) & 1u) != 0;
            if (ew.bits[static_cast<std::size_t>(pos)] != want)
              return fmt("word {}: immediate bit I[{}] encodes {} but bound "
                         "value {} needs {}",
                         ew.address, pos, !want, b.value, want);
          }
        }
      }
    }
  }
  return "";
}

namespace {

OracleReport check_pair_inner(std::string_view hdl, const ir::Program& prog,
                              const OracleOptions& options) {
  OracleReport rep;

  // --- path 1 + 2: interpreter vs tables over one cold retarget ----------
  obs::Span path_span("oracle.engines");
  std::optional<core::RetargetResult> local;
  const core::RetargetResult* target = options.target.get();
  if (!target) {
    core::RetargetOptions ropts;  // build_tables defaults on
    util::DiagnosticSink dr;
    local = core::Record::retarget(hdl, ropts, dr);
    if (!local) {
      rep.failure = "retarget failed: " + first_line(dr.first_error());
      return rep;
    }
    target = &*local;
  }
  rep.templates = target->template_count();
  if (!target->tables) {
    rep.failure = "retarget produced no BURS tables";
    return rep;
  }

  core::Compiler compiler(*target);
  core::CompileOptions interp_opts = options.compile;
  interp_opts.engine = select::Engine::kInterpreter;
  core::CompileOptions table_opts = options.compile;
  table_opts.engine = select::Engine::kTables;

  util::DiagnosticSink di, dt;
  std::optional<core::CompileResult> ref =
      compiler.compile(prog, interp_opts, di);
  std::optional<core::CompileResult> tab =
      compiler.compile(prog, table_opts, dt);
  rep.compiled = ref.has_value();
  if (ref) {
    rep.listing = ref->listing();
    rep.words = ref->code_size();
    rep.multi_rt_words = ref->compacted.stats.multi_rt_words;
    rep.total_slot_rts = ref->compacted.stats.total_slot_rts;
  }
  if (std::string d = diff_results("table engine", ref, tab); !d.empty()) {
    rep.failure = d;
    return rep;
  }
  path_span.end();

  // --- path 3: store to the persistent cache, reload, compile -------------
  if (options.cache) {
    OBS_SPAN("oracle.cache");
    core::RetargetOptions copts;
    copts.use_target_cache = true;
    copts.cache_dir =
        options.cache_dir.empty() ? default_cache_dir() : options.cache_dir;
    util::DiagnosticSink dc1, dc2, dcc;
    std::optional<core::RetargetResult> cold =
        core::Record::retarget(hdl, copts, dc1);
    std::optional<core::RetargetResult> warm =
        core::Record::retarget(hdl, copts, dc2);
    if (!cold || !warm) {
      rep.failure = fmt("cache path: retarget failed: {}",
                        first_line((cold ? dc2 : dc1).first_error()));
      return rep;
    }
    if (!warm->cache_hit) {
      if (!options.chaos) {
        rep.failure = "cache path: second retarget missed the warm cache";
        return rep;
      }
      // An injected store/load fault turned the warm hit into a clean cold
      // rebuild; the rebuilt target must still compile identically below.
      ++rep.faults_tolerated;
    }
    core::Compiler warm_compiler(*warm);
    core::CompileOptions warm_opts = options.compile;
    warm_opts.engine = select::Engine::kAuto;
    std::optional<core::CompileResult> cached =
        warm_compiler.compile(prog, warm_opts, dcc);
    if (std::string d = diff_results("warm cache", ref, cached);
        !d.empty()) {
      rep.failure = d;
      return rep;
    }
  }

  // --- path 4: multi-worker service batch over the kernel frontend --------
  if (options.service) {
    OBS_SPAN("oracle.service");
    service::CompileService::Options sopts;
    sopts.workers = static_cast<std::size_t>(options.service_workers);
    service::CompileService svc(sopts);
    std::string kernel = kernel_text(prog);
    std::vector<service::CompileJob> jobs;
    for (int i = 0; i < options.service_jobs; ++i) {
      service::CompileJob job;
      job.tag = fmt("j{}", i);
      job.hdl = std::string(hdl);
      job.kernel = kernel;
      job.options = options.compile;
      job.options.engine = select::Engine::kAuto;
      job.deadline_ms = options.service_deadline_ms;
      jobs.push_back(std::move(job));
    }
    std::vector<service::JobResult> results =
        svc.compile_batch(std::move(jobs));
    for (const service::JobResult& r : results) {
      if (options.chaos && !r.ok && structured_fault(r)) {
        ++rep.faults_tolerated;
        continue;
      }
      if (r.ok != rep.compiled) {
        rep.failure = fmt("service job {}: compile {} but reference {} ({})",
                          r.tag, r.ok ? "succeeded" : "failed",
                          rep.compiled ? "succeeded" : "failed",
                          first_line(r.error));
        return rep;
      }
      if (!r.ok) continue;
      if (r.listing != rep.listing) {
        rep.failure = fmt("service job {}: listing differs from reference",
                          r.tag);
        return rep;
      }
      if (r.compiled && ref && hex_words(*ref) != hex_words(*r.compiled)) {
        rep.failure = fmt("service job {}: encoded words differ from "
                          "reference",
                          r.tag);
        return rep;
      }
    }
  }

  // --- encode -> decode round trip ----------------------------------------
  if (options.roundtrip && ref) {
    OBS_SPAN("oracle.roundtrip");
    if (std::string issue = roundtrip_issues(*ref, *target->base);
        !issue.empty()) {
      rep.failure = "round trip: " + issue;
      return rep;
    }
  }

  // --- path 5: semantic oracle (simulator vs. reference evaluator) --------
  // --- path 6: compaction cross-check (same selection, compaction off) ----
  if (options.semantics && ref) {
    OBS_SPAN("oracle.semantic");
    sim::CheckOptions sopts;
    sopts.max_taken_branches = options.sim_branches;
    sopts.scratch_memory = options.compile.spill.scratch_memory;
    sopts.scratch_base = options.compile.spill.scratch_base;
    sopts.scratch_slots = options.compile.spill.scratch_slots;
    sim::CheckReport chk = sim::check_semantics(prog, *ref, *target, sopts);

    // Path 6 runs its compile up front so a path-5 divergence can be
    // ATTRIBUTED: the same selection with compaction disabled (every RT its
    // own instruction word) is simulated against the reference too. If the
    // sequential schedule agrees while the compacted one diverges, the bug
    // was introduced by compaction — packing, mode-set insertion,
    // delay-slot filling or the encoder's word merging.
    std::optional<core::CompileResult> seq;
    sim::CheckReport seq_chk;
    if (options.compile.compact.enabled) {
      OBS_SPAN("oracle.compaction");
      core::CompileOptions seq_opts = options.compile;
      seq_opts.engine = select::Engine::kInterpreter;
      seq_opts.compact.enabled = false;
      util::DiagnosticSink ds;
      seq = compiler.compile(prog, seq_opts, ds);
      if (!seq) {
        rep.failure = fmt("compaction: compaction-off compile failed while "
                          "the compacted compile succeeded: {}",
                          first_line(ds.first_error()));
        return rep;
      }
      seq_chk = sim::check_semantics(prog, *seq, *target, sopts);
    }

    if (chk.status == sim::CheckStatus::kDecodeReject ||
        chk.status == sim::CheckStatus::kDiverged) {
      const bool is_decode = chk.status == sim::CheckStatus::kDecodeReject;
      if (seq && seq_chk.agree())
        rep.failure = fmt("{}{}",
                          is_decode ? "compaction decode: "
                                    : "compaction semantic: ",
                          chk.detail);
      else
        rep.failure =
            fmt("{}{}", is_decode ? "semantic decode: " : "semantic: ",
                chk.detail);
      return rep;
    }
    if (chk.status == sim::CheckStatus::kAgree)
      rep.semantics_checked = true;
    else
      rep.semantics_skipped = chk.detail;

    if (seq) {
      switch (seq_chk.status) {
        case sim::CheckStatus::kAgree:
          // Both schedules agree with the reference on every observable
          // location; they must then also agree with each other on how the
          // run ended (a compacted run that halts where the sequential one
          // loops would never show up in final-state comparison alone).
          if (rep.semantics_checked &&
              (chk.sim.stop != seq_chk.sim.stop ||
               chk.sim.taken_branches != seq_chk.sim.taken_branches)) {
            rep.failure = fmt(
                "compaction: compacted and sequential runs end differently "
                "(stop {} after {} taken branches vs stop {} after {})",
                sim::to_string(chk.sim.stop), chk.sim.taken_branches,
                sim::to_string(seq_chk.sim.stop), seq_chk.sim.taken_branches);
            return rep;
          }
          rep.compaction_checked = true;
          break;
        case sim::CheckStatus::kSkipped:
          // Comparability is a property of the machine, shared by both
          // schedules; nothing to attribute.
          break;
        case sim::CheckStatus::kDecodeReject:
        case sim::CheckStatus::kDiverged:
          // The compacted schedule is clean but its own ablation is not —
          // still a compaction-layer defect (the sequential fallback path
          // emits broken words).
          rep.failure =
              fmt("compaction: compaction-off schedule {}: {}",
                  seq_chk.status == sim::CheckStatus::kDecodeReject
                      ? "rejected by the decoder"
                      : "diverges from the reference",
                  seq_chk.detail);
          return rep;
      }
    }
  }

  rep.agree = true;
  return rep;
}

}  // namespace

OracleReport check_pair(std::string_view hdl, const ir::Program& prog,
                        const OracleOptions& options) {
  obs::Span span("oracle.pair");
  OracleReport rep = check_pair_inner(hdl, prog, options);
  rep.clazz = classify_failure(rep.failure);

  // Per-path verdict tallies: a fuzz campaign's triage view. The counters
  // split agreement by whether the pair compiled, failures by class, and
  // semantic-oracle skips by which executor bailed (the detail prefix).
  obs::MetricsRegistry& m = obs::metrics();
  m.counter("oracle.pairs").add(1);
  if (rep.compiled) m.counter("oracle.compiled").add(1);
  switch (rep.clazz) {
    case FailureClass::kNone:
      m.counter(rep.compiled ? "oracle.agree" : "oracle.agree_uncovered")
          .add(1);
      break;
    case FailureClass::kStructural:
      m.counter("oracle.fail.structural").add(1);
      break;
    case FailureClass::kDecode:
      m.counter("oracle.fail.decode").add(1);
      break;
    case FailureClass::kSemantic:
      m.counter("oracle.fail.semantic").add(1);
      break;
    case FailureClass::kCompaction:
      m.counter("oracle.fail.compaction").add(1);
      break;
  }
  if (rep.semantics_checked) m.counter("oracle.semantics_checked").add(1);
  if (rep.compaction_checked) m.counter("oracle.compaction_checked").add(1);
  if (rep.faults_tolerated)
    m.counter("oracle.faults_tolerated").add(rep.faults_tolerated);
  if (!rep.semantics_skipped.empty()) {
    // Bucket by the stable "<executor>:" prefix of the skip detail; free
    // text after the colon would explode the name space.
    std::string_view reason = rep.semantics_skipped;
    reason = reason.substr(0, reason.find(':'));
    std::string name = "oracle.semantics_skipped.";
    for (char c : reason) name.push_back(c == ' ' ? '_' : c);
    m.counter(name).add(1);
  }
  span.note("verdict", std::string(to_string(rep.clazz)));
  return rep;
}

// --- minimisation -----------------------------------------------------------

namespace {

/// Clones `prog`, replacing the operator node at `path` inside statement
/// `stmt` (a child-index walk from the rhs root) by its `child`-th operand.
ir::ExprPtr clone_shrunk(const ir::Expr& e, const std::vector<int>& path,
                         std::size_t pi, int child) {
  if (pi == path.size()) return e.args[static_cast<std::size_t>(child)]->clone();
  ir::ExprPtr out = e.clone();
  // Re-descend into the clone along the remaining path.
  ir::Expr* node = out.get();
  // The clone above copied everything; rebuild just the target branch.
  int next = path[pi];
  node->args[static_cast<std::size_t>(next)] =
      clone_shrunk(*e.args[static_cast<std::size_t>(next)], path, pi + 1,
                   child);
  return out;
}

/// Paths (child-index sequences) of every OpNode in the tree.
void collect_op_paths(const ir::Expr& e, std::vector<int>& prefix,
                      std::vector<std::vector<int>>& out) {
  if (e.kind == ir::Expr::Kind::OpNode && !e.args.empty()) out.push_back(prefix);
  for (std::size_t i = 0; i < e.args.size(); ++i) {
    prefix.push_back(static_cast<int>(i));
    collect_op_paths(*e.args[i], prefix, out);
    prefix.pop_back();
  }
}

const ir::Expr* node_at(const ir::Expr& e, const std::vector<int>& path) {
  const ir::Expr* n = &e;
  for (int i : path) n = n->args[static_cast<std::size_t>(i)].get();
  return n;
}

}  // namespace

ir::Program minimize_program(
    const ir::Program& prog,
    const std::function<bool(const ir::Program&)>& still_fails,
    int budget) {
  ir::Program current = clone_program(prog);
  bool improved = true;
  while (improved && budget > 0) {
    improved = false;

    // Pass 1: drop whole statements (back to front, so indices stay stable).
    for (int i = static_cast<int>(current.stmts().size()) - 1;
         i >= 0 && budget > 0; --i) {
      if (current.stmts().size() <= 1) break;
      ir::Program candidate = clone_program(current, i);
      util::DiagnosticSink d;
      if (!candidate.validate(d)) continue;  // e.g. dangling branch target
      --budget;
      if (still_fails(candidate)) {
        current = std::move(candidate);
        improved = true;
      }
    }

    // Pass 2: replace operator nodes by one of their operands.
    int stmt_count = static_cast<int>(current.stmts().size());
    for (int s = 0; s < stmt_count && budget > 0; ++s) {
      const ir::Stmt& stmt = current.stmts()[static_cast<std::size_t>(s)];
      if (!stmt.rhs) continue;
      std::vector<std::vector<int>> paths;
      std::vector<int> prefix;
      collect_op_paths(*stmt.rhs, prefix, paths);
      for (const std::vector<int>& path : paths) {
        bool shrunk = false;
        int arity = static_cast<int>(node_at(*stmt.rhs, path)->args.size());
        for (int child = 0; child < arity && budget > 0 && !shrunk; ++child) {
          ir::ExprPtr rhs = clone_shrunk(*stmt.rhs, path, 0, child);
          ir::Program candidate =
              clone_program_with_rhs(current, s, std::move(rhs));
          --budget;
          if (still_fails(candidate)) {
            current = std::move(candidate);
            improved = true;
            shrunk = true;
          }
        }
        if (shrunk) break;  // paths into the old rhs are stale now
      }
    }
  }
  return current;
}

// --- repro files ------------------------------------------------------------

bool write_repro(const std::string& path, const Repro& r) {
  service::Json doc = service::Json::object();
  // Seeds go through strings: Json numbers are doubles, which cannot carry
  // a full 64-bit seed exactly.
  doc.set("model_seed", service::Json(std::to_string(r.model_seed)));
  doc.set("program_seed", service::Json(std::to_string(r.program_seed)));
  doc.set("model", service::Json(r.model));
  doc.set("knobs", service::Json(r.knobs));
  doc.set("failure", service::Json(r.failure));
  doc.set("failure_class", service::Json(r.failure_class));
  doc.set("spill_base", service::Json(static_cast<double>(r.spill_base)));
  doc.set("spill_slots", service::Json(r.spill_slots));
  doc.set("kernel", service::Json(r.kernel));
  doc.set("hdl", service::Json(r.hdl));
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << doc.dump() << "\n";
  return static_cast<bool>(out);
}

std::optional<Repro> load_repro(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::optional<service::Json> doc = service::Json::parse(buf.str());
  if (!doc || !doc->is_object()) return std::nullopt;
  Repro r;
  r.model_seed =
      std::strtoull((*doc)["model_seed"].as_string().c_str(), nullptr, 10);
  r.program_seed =
      std::strtoull((*doc)["program_seed"].as_string().c_str(), nullptr, 10);
  r.model = (*doc)["model"].as_string();
  r.knobs = (*doc)["knobs"].as_string();
  r.failure = (*doc)["failure"].as_string();
  r.failure_class = (*doc)["failure_class"].as_string();
  if (r.failure_class.empty())  // pre-class repro files
    r.failure_class = std::string(to_string(classify_failure(r.failure)));
  r.spill_base = (*doc)["spill_base"].as_int();
  r.spill_slots = static_cast<int>((*doc)["spill_slots"].as_int());
  r.kernel = (*doc)["kernel"].as_string();
  r.hdl = (*doc)["hdl"].as_string();
  if (r.hdl.empty() || r.kernel.empty()) return std::nullopt;
  return r;
}

}  // namespace record::testgen
