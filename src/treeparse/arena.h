// Bump-pointer arena for derivation trees (and any other trivially
// destructible per-parse scratch).
//
// A full compile allocates one Derivation node per rule application plus the
// child/immediate arrays hanging off them — thousands of small heap objects
// per statement under the old unique_ptr representation. The arena turns all
// of that into pointer bumps over a few reusable chunks: reset() rewinds to
// the start while keeping every chunk, so a steady-state compile (a selector
// reused across statements, a service worker reused across jobs) performs
// O(1) allocations regardless of program size.
//
// Objects placed in the arena must be trivially destructible: reset() and
// the destructor reclaim memory without running destructors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace record::treeparse {

class DerivationArena {
 public:
  DerivationArena() = default;
  DerivationArena(const DerivationArena&) = delete;
  DerivationArena& operator=(const DerivationArena&) = delete;

  /// Uninitialised storage for `n` objects of T. T must be trivially
  /// destructible (nothing in the arena is ever destroyed).
  template <typename T>
  T* allocate(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are reclaimed without destruction");
    return static_cast<T*>(allocate_bytes(n * sizeof(T), alignof(T)));
  }

  /// Value-constructs one T in the arena.
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    return ::new (allocate<T>(1)) T(std::forward<Args>(args)...);
  }

  /// Rewinds to empty, keeping every chunk for reuse.
  void reset() {
    chunk_ = 0;
    cursor_ = chunks_.empty() ? nullptr : chunks_[0].data.get();
    end_ = chunks_.empty() ? nullptr : chunks_[0].data.get() + chunks_[0].size;
  }

  /// Total bytes currently reserved across chunks (for tests/stats).
  [[nodiscard]] std::size_t reserved_bytes() const {
    std::size_t n = 0;
    for (const Chunk& c : chunks_) n += c.size;
    return n;
  }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  void* allocate_bytes(std::size_t bytes, std::size_t align) {
    char* p = align_up(cursor_, align);
    if (p == nullptr || p + bytes > end_) {
      next_chunk(bytes + align);
      p = align_up(cursor_, align);
    }
    cursor_ = p + bytes;
    return p;
  }

  static char* align_up(char* p, std::size_t align) {
    auto v = reinterpret_cast<std::uintptr_t>(p);
    return reinterpret_cast<char*>((v + align - 1) & ~(align - 1));
  }

  void next_chunk(std::size_t min_bytes) {
    // Advance through retained chunks first; grow only past the last one.
    while (++chunk_ < chunks_.size()) {
      if (chunks_[chunk_].size >= min_bytes) {
        cursor_ = chunks_[chunk_].data.get();
        end_ = cursor_ + chunks_[chunk_].size;
        return;
      }
    }
    std::size_t size = chunks_.empty() ? kFirstChunk : chunks_.back().size * 2;
    if (size < min_bytes) size = min_bytes;
    chunks_.push_back(Chunk{std::make_unique<char[]>(size), size});
    chunk_ = chunks_.size() - 1;
    cursor_ = chunks_.back().data.get();
    end_ = cursor_ + size;
  }

  static constexpr std::size_t kFirstChunk = 64 * 1024;

  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;  // index of the chunk cursor_ points into
  char* cursor_ = nullptr;
  char* end_ = nullptr;
};

}  // namespace record::treeparse
