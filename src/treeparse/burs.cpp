#include "treeparse/burs.h"

#include <cassert>

namespace record::treeparse {

using grammar::kInfCost;
using grammar::kStart;
using grammar::PatNode;
using grammar::Rule;

bool TreeParser::immediate_fits(std::int64_t value, int width) {
  if (width >= 63) return true;
  std::int64_t lo = -(std::int64_t{1} << (width - 1));
  std::int64_t hi = (std::int64_t{1} << width);  // exclusive
  return value >= lo && value < hi;
}

bool subjects_equal(const SubjectNode& a, const SubjectNode& b) {
  // The structural hash rejects almost every unequal pair in O(1); the walk
  // below only confirms (or refutes a hash collision).
  if (a.shash != b.shash) return false;
  if (a.term != b.term || a.is_const != b.is_const ||
      (a.is_const && a.value != b.value) ||
      a.children.size() != b.children.size())
    return false;
  for (std::size_t i = 0; i < a.children.size(); ++i)
    if (!subjects_equal(*a.children[i], *b.children[i])) return false;
  return true;
}

std::optional<int> match_pattern_cost(
    const PatNode& pat, const SubjectNode& node, const CostLookup& costs,
    std::vector<ImmBinding>& imm_fields,
    std::vector<std::pair<grammar::NtId, const SubjectNode*>>& nt_binds) {
  switch (pat.kind) {
    case PatNode::Kind::NonTerm: {
      int c = costs(node, pat.nt);
      if (c >= kInfCost) return std::nullopt;
      for (const auto& [nt, bound] : nt_binds)
        if (nt == pat.nt && !subjects_equal(*bound, node))
          return std::nullopt;  // same register, different values
      nt_binds.emplace_back(pat.nt, &node);
      return c;
    }
    case PatNode::Kind::Imm: {
      if (!node.is_const || !TreeParser::immediate_fits(node.value, pat.width))
        return std::nullopt;
      for (const ImmBinding& prev : imm_fields)
        if (*prev.field_bits == pat.imm_bits && prev.value != node.value)
          return std::nullopt;  // same field, different constants
      imm_fields.push_back(ImmBinding{&pat.imm_bits, node.value});
      return 0;
    }
    case PatNode::Kind::Const:
      if (!node.is_const || node.value != pat.value) return std::nullopt;
      return 0;
    case PatNode::Kind::Term: {
      if (node.term != pat.term) return std::nullopt;
      if (node.children.size() != pat.children.size()) return std::nullopt;
      int sum = 0;
      for (std::size_t i = 0; i < pat.children.size(); ++i) {
        std::optional<int> c =
            match_pattern_cost(*pat.children[i], *node.children[i], costs,
                               imm_fields, nt_binds);
        if (!c) return std::nullopt;
        sum += *c;
      }
      return sum;
    }
  }
  return std::nullopt;
}

namespace {

/// NonTerm / Imm leaf counts of a pattern — the array sizes a derivation
/// node for this rule needs.
void count_leaves(const PatNode& p, std::uint32_t& nts, std::uint32_t& imms) {
  switch (p.kind) {
    case PatNode::Kind::NonTerm:
      ++nts;
      return;
    case PatNode::Kind::Imm:
      ++imms;
      return;
    case PatNode::Kind::Const:
      return;
    case PatNode::Kind::Term:
      for (const grammar::PatNodePtr& c : p.children)
        count_leaves(*c, nts, imms);
      return;
  }
}

}  // namespace

TreeParser::TreeParser(const grammar::TreeGrammar& g) : g_(g) {
  rule_shape_.resize(g.rules().size());
  for (const Rule& r : g.rules()) {
    std::uint32_t nts = 0, imms = 0;
    if (r.is_chain())
      nts = 1;  // the chained source non-terminal
    else
      count_leaves(*r.pattern, nts, imms);
    rule_shape_[static_cast<std::size_t>(r.id)] = {nts, imms};
  }
}

void TreeParser::label_into(const SubjectTree& tree, LabelResult& result) const {
  const int nts = g_.nonterminal_count();
  result.reset(tree.size(), nts);
  if (!tree.root()) return;

  const auto closed_cost = [&result](const SubjectNode& n,
                                     grammar::NtId nt) {
    return result.at(static_cast<std::size_t>(n.id),
                     static_cast<std::size_t>(nt))
        .cost;
  };
  const CostLookup costs(closed_cost);

  // Matcher scratch, reused across every rule of every node.
  std::vector<ImmBinding> imm_fields;
  std::vector<std::pair<grammar::NtId, const SubjectNode*>> nt_binds;

  // Nodes were created bottom-up, so ascending id order is topological.
  for (std::size_t id = 0; id < tree.size(); ++id) {
    const SubjectNode& node = tree.node(static_cast<int>(id));
    LabelEntry* mine = result.row(id);

    for (int rid : g_.rules_for_terminal(node.term)) {
      const Rule& r = g_.rule(rid);
      imm_fields.clear();
      nt_binds.clear();
      std::optional<int> c = match_pattern_cost(*r.pattern, node, costs,
                                                imm_fields, nt_binds);
      if (!c) continue;
      int total = *c + r.cost;
      LabelEntry& e = mine[static_cast<std::size_t>(r.lhs)];
      if (total < e.cost) {
        e.cost = total;
        e.rule = rid;
      }
    }

    // Chain-rule closure at this node: relax until fixpoint. The worklist
    // is the set of non-terminals whose cost improved.
    bool changed = true;
    while (changed) {
      changed = false;
      for (int y = 0; y < nts; ++y) {
        int base = mine[static_cast<std::size_t>(y)].cost;
        if (base >= kInfCost) continue;
        for (int rid : g_.chain_rules_from(y)) {
          const Rule& r = g_.rule(rid);
          int total = base + r.cost;
          LabelEntry& e = mine[static_cast<std::size_t>(r.lhs)];
          if (total < e.cost) {
            e.cost = total;
            e.rule = rid;
            changed = true;
          }
        }
      }
    }
  }

  if (coverage_) {
    for (std::size_t id = 0; id < tree.size(); ++id) {
      const LabelEntry* row = result.row(id);
      for (int i = 0; i < nts; ++i) {
        const LabelEntry& e = row[static_cast<std::size_t>(i)];
        if (e.rule >= 0 && e.cost < kInfCost)
          coverage_->record_rule_matched(e.rule);
      }
    }
  }

  result.root_cost =
      result.at(static_cast<std::size_t>(tree.root()->id), kStart).cost;
  result.ok = result.root_cost < kInfCost;
}

void TreeParser::reduce_pattern(const PatNode& pat, const SubjectNode& node,
                                const LabelResult& result,
                                DerivationArena& arena,
                                Derivation& out) const {
  switch (pat.kind) {
    case PatNode::Kind::NonTerm:
      out.children.data[out.children.count++] =
          reduce_nt(node, pat.nt, result, arena);
      return;
    case PatNode::Kind::Imm:
      out.imms.data[out.imms.count++] = ImmBinding{&pat.imm_bits, node.value};
      return;
    case PatNode::Kind::Const:
      return;
    case PatNode::Kind::Term:
      for (std::size_t i = 0; i < pat.children.size(); ++i)
        reduce_pattern(*pat.children[i], *node.children[i], result, arena,
                       out);
      return;
  }
}

Derivation* TreeParser::reduce_nt(const SubjectNode& node, grammar::NtId nt,
                                  const LabelResult& result,
                                  DerivationArena& arena) const {
  const LabelEntry& e = result.at(static_cast<std::size_t>(node.id),
                                  static_cast<std::size_t>(nt));
  assert(e.rule >= 0 && "reduce on unlabelled (node, nt)");
  const Rule& r = g_.rule(e.rule);
  const auto [n_children, n_imms] =
      rule_shape_[static_cast<std::size_t>(e.rule)];
  Derivation* d = arena.make<Derivation>();
  d->rule = e.rule;
  d->node = &node;
  if (n_children > 0)
    d->children.data = arena.allocate<Derivation*>(n_children);
  if (n_imms > 0) d->imms.data = arena.allocate<ImmBinding>(n_imms);
  if (r.is_chain()) {
    d->children.data[d->children.count++] =
        reduce_nt(node, r.pattern->nt, result, arena);
  } else {
    reduce_pattern(*r.pattern, node, result, arena, *d);
  }
  assert(d->children.count == n_children && d->imms.count == n_imms);
  std::uint32_t apps = 1;
  for (Derivation* c : d->children) apps += c->apps;
  d->apps = apps;
  return d;
}

Derivation* TreeParser::reduce(const SubjectTree& tree,
                               const LabelResult& result,
                               DerivationArena& arena) const {
  if (!result.ok || !tree.root()) return nullptr;
  return reduce_nt(*tree.root(), kStart, result, arena);
}

Derivation* TreeParser::parse(const SubjectTree& tree,
                              DerivationArena& arena) const {
  LabelResult r = label(tree);
  if (!r.ok) return nullptr;
  return reduce(tree, r, arena);
}

}  // namespace record::treeparse
