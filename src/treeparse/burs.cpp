#include "treeparse/burs.h"

#include <cassert>

namespace record::treeparse {

using grammar::kInfCost;
using grammar::kStart;
using grammar::PatNode;
using grammar::Rule;

std::size_t Derivation::application_count() const {
  std::size_t n = 1;
  for (const std::unique_ptr<Derivation>& c : children)
    n += c->application_count();
  return n;
}

bool TreeParser::immediate_fits(std::int64_t value, int width) {
  if (width >= 63) return true;
  std::int64_t lo = -(std::int64_t{1} << (width - 1));
  std::int64_t hi = (std::int64_t{1} << width);  // exclusive
  return value >= lo && value < hi;
}

bool subjects_equal(const SubjectNode& a, const SubjectNode& b) {
  if (a.term != b.term || a.is_const != b.is_const ||
      (a.is_const && a.value != b.value) ||
      a.children.size() != b.children.size())
    return false;
  for (std::size_t i = 0; i < a.children.size(); ++i)
    if (!subjects_equal(*a.children[i], *b.children[i])) return false;
  return true;
}

std::optional<int> match_pattern_cost(
    const PatNode& pat, const SubjectNode& node, const CostLookup& costs,
    std::vector<ImmBinding>& imm_fields,
    std::vector<std::pair<grammar::NtId, const SubjectNode*>>& nt_binds) {
  switch (pat.kind) {
    case PatNode::Kind::NonTerm: {
      int c = costs(node, pat.nt);
      if (c >= kInfCost) return std::nullopt;
      for (const auto& [nt, bound] : nt_binds)
        if (nt == pat.nt && !subjects_equal(*bound, node))
          return std::nullopt;  // same register, different values
      nt_binds.emplace_back(pat.nt, &node);
      return c;
    }
    case PatNode::Kind::Imm: {
      if (!node.is_const || !TreeParser::immediate_fits(node.value, pat.width))
        return std::nullopt;
      for (const ImmBinding& prev : imm_fields)
        if (prev.field_bits == pat.imm_bits && prev.value != node.value)
          return std::nullopt;  // same field, different constants
      imm_fields.push_back(ImmBinding{pat.imm_bits, node.value});
      return 0;
    }
    case PatNode::Kind::Const:
      if (!node.is_const || node.value != pat.value) return std::nullopt;
      return 0;
    case PatNode::Kind::Term: {
      if (node.term != pat.term) return std::nullopt;
      if (node.children.size() != pat.children.size()) return std::nullopt;
      int sum = 0;
      for (std::size_t i = 0; i < pat.children.size(); ++i) {
        std::optional<int> c =
            match_pattern_cost(*pat.children[i], *node.children[i], costs,
                               imm_fields, nt_binds);
        if (!c) return std::nullopt;
        sum += *c;
      }
      return sum;
    }
  }
  return std::nullopt;
}

LabelResult TreeParser::label(const SubjectTree& tree) const {
  LabelResult result;
  const int nts = g_.nonterminal_count();
  result.labels.assign(tree.size(),
                       std::vector<LabelEntry>(
                           static_cast<std::size_t>(nts), LabelEntry{}));
  if (!tree.root()) return result;

  const auto closed_cost = [&result](const SubjectNode& n,
                                     grammar::NtId nt) {
    return result.labels[static_cast<std::size_t>(n.id)]
                        [static_cast<std::size_t>(nt)]
        .cost;
  };
  const CostLookup costs(closed_cost);

  // Nodes were created bottom-up, so ascending id order is topological.
  for (std::size_t id = 0; id < tree.size(); ++id) {
    const SubjectNode& node = tree.node(static_cast<int>(id));
    std::vector<LabelEntry>& mine = result.labels[id];

    for (int rid : g_.rules_for_terminal(node.term)) {
      const Rule& r = g_.rule(rid);
      std::vector<ImmBinding> imm_fields;
      std::vector<std::pair<grammar::NtId, const SubjectNode*>> nt_binds;
      std::optional<int> c = match_pattern_cost(*r.pattern, node, costs,
                                                imm_fields, nt_binds);
      if (!c) continue;
      int total = *c + r.cost;
      LabelEntry& e = mine[static_cast<std::size_t>(r.lhs)];
      if (total < e.cost) {
        e.cost = total;
        e.rule = rid;
      }
    }

    // Chain-rule closure at this node: relax until fixpoint. The worklist
    // is the set of non-terminals whose cost improved.
    bool changed = true;
    while (changed) {
      changed = false;
      for (int y = 0; y < nts; ++y) {
        int base = mine[static_cast<std::size_t>(y)].cost;
        if (base >= kInfCost) continue;
        for (int rid : g_.chain_rules_from(y)) {
          const Rule& r = g_.rule(rid);
          int total = base + r.cost;
          LabelEntry& e = mine[static_cast<std::size_t>(r.lhs)];
          if (total < e.cost) {
            e.cost = total;
            e.rule = rid;
            changed = true;
          }
        }
      }
    }
  }

  const std::vector<LabelEntry>& root_labels =
      result.labels[static_cast<std::size_t>(tree.root()->id)];
  result.root_cost = root_labels[kStart].cost;
  result.ok = result.root_cost < kInfCost;
  return result;
}

void TreeParser::reduce_pattern(const PatNode& pat, const SubjectNode& node,
                                const LabelResult& result,
                                Derivation& out) const {
  switch (pat.kind) {
    case PatNode::Kind::NonTerm:
      out.children.push_back(reduce_nt(node, pat.nt, result));
      return;
    case PatNode::Kind::Imm:
      out.imms.push_back(ImmBinding{pat.imm_bits, node.value});
      return;
    case PatNode::Kind::Const:
      return;
    case PatNode::Kind::Term:
      for (std::size_t i = 0; i < pat.children.size(); ++i)
        reduce_pattern(*pat.children[i], *node.children[i], result, out);
      return;
  }
}

std::unique_ptr<Derivation> TreeParser::reduce_nt(
    const SubjectNode& node, grammar::NtId nt,
    const LabelResult& result) const {
  const LabelEntry& e =
      result.labels[static_cast<std::size_t>(node.id)]
                   [static_cast<std::size_t>(nt)];
  assert(e.rule >= 0 && "reduce on unlabelled (node, nt)");
  const Rule& r = g_.rule(e.rule);
  auto d = std::make_unique<Derivation>();
  d->rule = e.rule;
  d->node = &node;
  if (r.is_chain()) {
    d->children.push_back(reduce_nt(node, r.pattern->nt, result));
  } else {
    reduce_pattern(*r.pattern, node, result, *d);
  }
  return d;
}

std::unique_ptr<Derivation> TreeParser::reduce(
    const SubjectTree& tree, const LabelResult& result) const {
  if (!result.ok || !tree.root()) return nullptr;
  return reduce_nt(*tree.root(), kStart, result);
}

std::unique_ptr<Derivation> TreeParser::parse(const SubjectTree& tree) const {
  LabelResult r = label(tree);
  if (!r.ok) return nullptr;
  return reduce(tree, r);
}

}  // namespace record::treeparse
