#include "treeparse/subject.h"

#include <sstream>

namespace record::treeparse {

SubjectNode* SubjectTree::make(grammar::TermId term,
                               std::vector<SubjectNode*> children) {
  SubjectNode n;
  n.id = static_cast<int>(nodes_.size());
  n.term = term;
  n.children = std::move(children);
  nodes_.push_back(std::move(n));
  return &nodes_.back();
}

SubjectNode* SubjectTree::make_const(grammar::TermId const_term,
                                     std::int64_t value) {
  SubjectNode* n = make(const_term);
  n->value = value;
  n->is_const = true;
  return n;
}

namespace {

void render(const grammar::TreeGrammar& g, const SubjectNode& n,
            std::ostream& os) {
  if (n.is_const) {
    os << n.value;
    return;
  }
  os << g.terminal_name(n.term);
  if (!n.children.empty()) {
    os << '(';
    for (std::size_t i = 0; i < n.children.size(); ++i) {
      if (i) os << ", ";
      render(g, *n.children[i], os);
    }
    os << ')';
  }
}

}  // namespace

std::string SubjectTree::to_string(const grammar::TreeGrammar& g) const {
  if (!root_) return "<empty>";
  std::ostringstream os;
  render(g, *root_, os);
  return os.str();
}

}  // namespace record::treeparse
