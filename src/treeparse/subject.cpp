#include "treeparse/subject.h"

#include <sstream>

namespace record::treeparse {

namespace {

std::uint64_t mix_hash(std::uint64_t h, std::uint64_t x) {
  return (h ^ x) * 1099511628211ull;
}

}  // namespace

SubjectNode* SubjectTree::make(grammar::TermId term,
                               std::vector<SubjectNode*> children) {
  SubjectNode n;
  n.id = static_cast<int>(nodes_.size());
  n.term = term;
  n.children = std::move(children);
  std::uint64_t h = mix_hash(14695981039346656037ull,
                             static_cast<std::uint64_t>(term));
  for (const SubjectNode* c : n.children) h = mix_hash(h, c->shash);
  n.shash = h;
  nodes_.push_back(std::move(n));
  return &nodes_.back();
}

SubjectNode* SubjectTree::make_const(grammar::TermId const_term,
                                     std::int64_t value) {
  SubjectNode* n = make(const_term);
  n->value = value;
  n->is_const = true;
  n->shash = mix_hash(mix_hash(n->shash, 0x9e3779b97f4a7c15ull),
                      static_cast<std::uint64_t>(value));
  return n;
}

namespace {

void render(const grammar::TreeGrammar& g, const SubjectNode& n,
            std::ostream& os) {
  if (n.is_const) {
    os << n.value;
    return;
  }
  os << g.terminal_name(n.term);
  if (!n.children.empty()) {
    os << '(';
    for (std::size_t i = 0; i < n.children.size(); ++i) {
      if (i) os << ", ";
      render(g, *n.children[i], os);
    }
    os << ')';
  }
}

}  // namespace

std::string SubjectTree::to_string(const grammar::TreeGrammar& g) const {
  if (!root_) return "<empty>";
  std::ostringstream os;
  render(g, *root_, os);
  return os.str();
}

}  // namespace record::treeparse
