// Subject trees: the expression trees handed to the tree parser.
//
// A subject node carries an interned terminal of the target grammar plus an
// optional constant value (for "#const" leaves). Nodes live in an arena owned
// by the SubjectTree; ids are dense and assigned in creation (bottom-up)
// order, so labelling can simply iterate id-ascending.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "grammar/grammar.h"

namespace record::treeparse {

struct SubjectNode {
  int id = -1;
  grammar::TermId term = -1;
  std::int64_t value = 0;
  bool is_const = false;
  /// Structural hash over (term, constness, value, children), computed at
  /// creation. Equal subtrees hash equal, so structural-equality checks
  /// (the x+x side-constraints) reject differing subtrees in O(1) instead
  /// of walking them.
  std::uint64_t shash = 0;
  std::vector<SubjectNode*> children;
  const void* tag = nullptr;  // opaque backlink for callers (e.g. IR nodes)
};

class SubjectTree {
 public:
  SubjectTree() = default;
  SubjectTree(const SubjectTree&) = delete;
  SubjectTree& operator=(const SubjectTree&) = delete;
  SubjectTree(SubjectTree&&) = default;
  SubjectTree& operator=(SubjectTree&&) = default;

  /// Creates a node; children must already belong to this tree (bottom-up
  /// construction keeps ids topologically sorted).
  SubjectNode* make(grammar::TermId term,
                    std::vector<SubjectNode*> children = {});

  /// Creates a "#const" leaf.
  SubjectNode* make_const(grammar::TermId const_term, std::int64_t value);

  void set_root(SubjectNode* n) { root_ = n; }
  [[nodiscard]] SubjectNode* root() const { return root_; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] const SubjectNode& node(int id) const {
    return nodes_.at(static_cast<std::size_t>(id));
  }

  /// Renders with terminal names, e.g. "ASSIGN($dest:ACC, +.32(...))".
  [[nodiscard]] std::string to_string(const grammar::TreeGrammar& g) const;

 private:
  std::deque<SubjectNode> nodes_;  // deque: stable addresses
  SubjectNode* root_ = nullptr;
};

}  // namespace record::treeparse
