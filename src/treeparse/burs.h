// Bottom-up rewrite-system (BURS) tree parsing with dynamic programming —
// the algorithmic core of iburg (paper section 3.2).
//
// label():  one bottom-up pass computes, for every node and every
//           non-terminal, the cheapest derivation cost and the rule
//           achieving it, with chain-rule closure at each node. Linear in
//           the number of nodes with a grammar-dependent constant, exactly
//           as the paper reports.
// reduce(): walks the optimal derivation from (root, START), yielding a
//           derivation tree of rule applications; Imm-leaf matches record
//           the concrete constant for later instruction encoding.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "grammar/grammar.h"
#include "treeparse/subject.h"

namespace record::treeparse {

struct LabelEntry {
  int cost = grammar::kInfCost;
  int rule = -1;
};

struct LabelResult {
  bool ok = false;    // root derives from START
  int root_cost = grammar::kInfCost;
  /// labels[node id][non-terminal id]
  std::vector<std::vector<LabelEntry>> labels;
};

/// One matched Imm pattern leaf: the instruction-word field and the constant
/// that must be encoded into it.
struct ImmBinding {
  std::vector<int> field_bits;
  std::int64_t value = 0;
};

/// A node of the optimal derivation.
struct Derivation {
  int rule = -1;
  const SubjectNode* node = nullptr;
  std::vector<std::unique_ptr<Derivation>> children;  // NT leaves, in preorder
  std::vector<ImmBinding> imms;

  /// Total number of rule applications in this derivation.
  [[nodiscard]] std::size_t application_count() const;
};

/// Non-owning callable view used by the pattern matcher to read the closed
/// (chain-complete) derivation cost of a non-terminal at a subject node.
/// Returns grammar::kInfCost when the non-terminal is not derivable. Both the
/// dynamic-programming TreeParser and the table-driven burstab engine feed
/// their own cost stores through this interface so that side-constrained
/// rules are matched by one shared code path.
class CostLookup {
 public:
  template <typename F>
  CostLookup(const F& f)  // NOLINT(google-explicit-constructor)
      : ctx_(&f), fn_([](const void* ctx, const SubjectNode& n,
                         grammar::NtId nt) {
          return (*static_cast<const F*>(ctx))(n, nt);
        }) {}

  int operator()(const SubjectNode& n, grammar::NtId nt) const {
    return fn_(ctx_, n, nt);
  }

 private:
  const void* ctx_;
  int (*fn_)(const void*, const SubjectNode&, grammar::NtId);
};

/// Structural equality of subject subtrees (terminals and constants).
[[nodiscard]] bool subjects_equal(const SubjectNode& a, const SubjectNode& b);

/// Cost of matching `pat` at `node` given closed non-terminal costs;
/// nullopt if no structural match. Consistency side-constraints:
///  * `imm_fields`: two Imm leaves drawing from the same instruction
///    field must bind the same constant,
///  * `nt_binds`: two leaves of the same non-terminal are one physical
///    register read, so their subject subtrees must be identical
///    (the x+x patterns derived from shifters).
[[nodiscard]] std::optional<int> match_pattern_cost(
    const grammar::PatNode& pat, const SubjectNode& node,
    const CostLookup& costs, std::vector<ImmBinding>& imm_fields,
    std::vector<std::pair<grammar::NtId, const SubjectNode*>>& nt_binds);

class TreeParser {
 public:
  explicit TreeParser(const grammar::TreeGrammar& g) : g_(g) {}

  /// Dynamic-programming labelling pass.
  [[nodiscard]] LabelResult label(const SubjectTree& tree) const;

  /// Extracts the optimal derivation of the tree root from START.
  /// Requires a successful label() result.
  [[nodiscard]] std::unique_ptr<Derivation> reduce(
      const SubjectTree& tree, const LabelResult& result) const;

  /// Convenience: label + reduce; nullptr if the tree has no derivation.
  [[nodiscard]] std::unique_ptr<Derivation> parse(
      const SubjectTree& tree) const;

  [[nodiscard]] const grammar::TreeGrammar& grammar() const { return g_; }

  /// True if `value` can be encoded in an immediate field of `width` bits
  /// (unsigned or two's-complement signed).
  [[nodiscard]] static bool immediate_fits(std::int64_t value, int width);

 private:
  void reduce_pattern(const grammar::PatNode& pat, const SubjectNode& node,
                      const LabelResult& result, Derivation& out) const;
  [[nodiscard]] std::unique_ptr<Derivation> reduce_nt(
      const SubjectNode& node, grammar::NtId nt,
      const LabelResult& result) const;

  const grammar::TreeGrammar& g_;
};

}  // namespace record::treeparse
