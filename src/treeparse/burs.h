// Bottom-up rewrite-system (BURS) tree parsing with dynamic programming —
// the algorithmic core of iburg (paper section 3.2).
//
// label():  one bottom-up pass computes, for every node and every
//           non-terminal, the cheapest derivation cost and the rule
//           achieving it, with chain-rule closure at each node. Linear in
//           the number of nodes with a grammar-dependent constant, exactly
//           as the paper reports.
// reduce(): walks the optimal derivation from (root, START), yielding a
//           derivation tree of rule applications; Imm-leaf matches record
//           the concrete constant for later instruction encoding.
//
// The selection hot path is allocation-free in steady state: label results
// live in one flat per-(node, non-terminal) array that callers reuse via
// label_into(), and derivations are bump-allocated from a caller-owned
// DerivationArena (child and immediate lists included), so a reused
// selector performs no per-node heap traffic.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "grammar/grammar.h"
#include "obs/coverage.h"
#include "treeparse/arena.h"
#include "treeparse/subject.h"

namespace record::treeparse {

struct LabelEntry {
  int cost = grammar::kInfCost;
  int rule = -1;
};

/// Labelling result over one subject tree, stored as a single flat
/// nodes x non-terminals array (one allocation, reusable across trees via
/// reset(): shrinking never reallocates).
struct LabelResult {
  bool ok = false;    // root derives from START
  int root_cost = grammar::kInfCost;
  int nt_count = 0;
  std::vector<LabelEntry> flat;  // [node id * nt_count + non-terminal id]

  void reset(std::size_t nodes, int nts) {
    ok = false;
    root_cost = grammar::kInfCost;
    nt_count = nts;
    flat.assign(nodes * static_cast<std::size_t>(nts), LabelEntry{});
  }
  [[nodiscard]] LabelEntry* row(std::size_t node) {
    return flat.data() + node * static_cast<std::size_t>(nt_count);
  }
  [[nodiscard]] const LabelEntry* row(std::size_t node) const {
    return flat.data() + node * static_cast<std::size_t>(nt_count);
  }
  [[nodiscard]] const LabelEntry& at(std::size_t node, std::size_t nt) const {
    return flat[node * static_cast<std::size_t>(nt_count) + nt];
  }
  [[nodiscard]] std::size_t node_count() const {
    return nt_count == 0 ? 0 : flat.size() / static_cast<std::size_t>(nt_count);
  }
};

/// One matched Imm pattern leaf: the instruction-word field and the constant
/// that must be encoded into it. The bit-position list is borrowed from the
/// matched pattern (or RT template), which outlives every consumer of a
/// binding — selection results already point into the same target. Keeping
/// the binding trivially copyable lets derivations live in the arena.
struct ImmBinding {
  const std::vector<int>* field_bits = nullptr;  // instruction-word positions
  std::int64_t value = 0;

  [[nodiscard]] const std::vector<int>& bits() const { return *field_bits; }
};

/// Non-owning array view into arena storage (children / immediate lists of
/// a Derivation). Mutable through the view: flatten() reorders children in
/// place.
template <typename T>
struct ArenaSpan {
  T* data = nullptr;
  std::uint32_t count = 0;

  [[nodiscard]] T* begin() const { return data; }
  [[nodiscard]] T* end() const { return data + count; }
  [[nodiscard]] std::size_t size() const { return count; }
  [[nodiscard]] bool empty() const { return count == 0; }
  [[nodiscard]] T& operator[](std::size_t i) const { return data[i]; }
};

/// A node of the optimal derivation. Arena-allocated (trivially
/// destructible): nodes and their child/immediate arrays are reclaimed by
/// DerivationArena::reset(), never destroyed.
struct Derivation {
  int rule = -1;
  std::uint32_t apps = 1;  // rule applications in this subtree (memoised)
  const SubjectNode* node = nullptr;
  ArenaSpan<Derivation*> children;  // NT leaves, in preorder
  ArenaSpan<ImmBinding> imms;

  /// Total number of rule applications in this derivation.
  [[nodiscard]] std::size_t application_count() const { return apps; }
};

/// Non-owning callable view used by the pattern matcher to read the closed
/// (chain-complete) derivation cost of a non-terminal at a subject node.
/// Returns grammar::kInfCost when the non-terminal is not derivable. Both the
/// dynamic-programming TreeParser and the table-driven burstab engine feed
/// their own cost stores through this interface so that side-constrained
/// rules are matched by one shared code path.
class CostLookup {
 public:
  template <typename F>
  CostLookup(const F& f)  // NOLINT(google-explicit-constructor)
      : ctx_(&f), fn_([](const void* ctx, const SubjectNode& n,
                         grammar::NtId nt) {
          return (*static_cast<const F*>(ctx))(n, nt);
        }) {}

  int operator()(const SubjectNode& n, grammar::NtId nt) const {
    return fn_(ctx_, n, nt);
  }

 private:
  const void* ctx_;
  int (*fn_)(const void*, const SubjectNode&, grammar::NtId);
};

/// Structural equality of subject subtrees (terminals and constants).
[[nodiscard]] bool subjects_equal(const SubjectNode& a, const SubjectNode& b);

/// Cost of matching `pat` at `node` given closed non-terminal costs;
/// nullopt if no structural match. Consistency side-constraints:
///  * `imm_fields`: two Imm leaves drawing from the same instruction
///    field must bind the same constant,
///  * `nt_binds`: two leaves of the same non-terminal are one physical
///    register read, so their subject subtrees must be identical
///    (the x+x patterns derived from shifters).
/// Callers reuse the scratch vectors across rules (cleared on entry by the
/// labelling loops, not here).
[[nodiscard]] std::optional<int> match_pattern_cost(
    const grammar::PatNode& pat, const SubjectNode& node,
    const CostLookup& costs, std::vector<ImmBinding>& imm_fields,
    std::vector<std::pair<grammar::NtId, const SubjectNode*>>& nt_binds);

class TreeParser {
 public:
  explicit TreeParser(const grammar::TreeGrammar& g);

  /// Dynamic-programming labelling pass into a caller-owned (reusable)
  /// result.
  void label_into(const SubjectTree& tree, LabelResult& out) const;

  /// Convenience form allocating a fresh result.
  [[nodiscard]] LabelResult label(const SubjectTree& tree) const {
    LabelResult r;
    label_into(tree, r);
    return r;
  }

  /// Extracts the optimal derivation of the tree root from START into
  /// `arena`. Requires a successful label() result; the returned tree lives
  /// until the arena is reset.
  [[nodiscard]] Derivation* reduce(const SubjectTree& tree,
                                   const LabelResult& result,
                                   DerivationArena& arena) const;

  /// Convenience: label + reduce; nullptr if the tree has no derivation.
  [[nodiscard]] Derivation* parse(const SubjectTree& tree,
                                  DerivationArena& arena) const;

  [[nodiscard]] const grammar::TreeGrammar& grammar() const { return g_; }

  /// Attach a coverage map (null detaches): label_into then records every
  /// rule that wins some (node, non-terminal) cell. The interpreter has no
  /// interned states or table slots, so only rule coverage is fed here —
  /// which is exactly what makes frozen-vs-hash coverage agreement testable.
  void set_coverage(obs::CoverageMap* map) { coverage_ = map; }

  /// True if `value` can be encoded in an immediate field of `width` bits
  /// (unsigned or two's-complement signed).
  [[nodiscard]] static bool immediate_fits(std::int64_t value, int width);

 private:
  void reduce_pattern(const grammar::PatNode& pat, const SubjectNode& node,
                      const LabelResult& result, DerivationArena& arena,
                      Derivation& out) const;
  [[nodiscard]] Derivation* reduce_nt(const SubjectNode& node,
                                      grammar::NtId nt,
                                      const LabelResult& result,
                                      DerivationArena& arena) const;

  const grammar::TreeGrammar& g_;
  /// Per rule: number of NonTerm leaves / Imm leaves in the pattern —
  /// the exact child/immediate array sizes reduce() bump-allocates.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> rule_shape_;
  obs::CoverageMap* coverage_ = nullptr;
};

}  // namespace record::treeparse
