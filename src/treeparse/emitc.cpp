#include "treeparse/emitc.h"

#include <sstream>

namespace record::treeparse {

namespace {

using grammar::PatNode;
using grammar::Rule;
using grammar::TreeGrammar;

/// Pattern opcodes in the flattened preorder encoding.
enum : int { kOpTerm = 0, kOpNonTerm = 1, kOpImm = 2, kOpConst = 3 };

void flatten(const PatNode& p, std::vector<long long>& out) {
  switch (p.kind) {
    case PatNode::Kind::Term:
      out.push_back(kOpTerm);
      out.push_back(p.term);
      out.push_back(static_cast<long long>(p.children.size()));
      for (const grammar::PatNodePtr& c : p.children) flatten(*c, out);
      break;
    case PatNode::Kind::NonTerm:
      out.push_back(kOpNonTerm);
      out.push_back(p.nt);
      out.push_back(0);
      break;
    case PatNode::Kind::Imm:
      out.push_back(kOpImm);
      out.push_back(p.width);
      out.push_back(0);
      break;
    case PatNode::Kind::Const:
      out.push_back(kOpConst);
      out.push_back(p.value);
      out.push_back(0);
      break;
  }
}

}  // namespace

std::string emit_c_parser(const TreeGrammar& g, const EmitCOptions& options) {
  std::ostringstream os;
  os << "/* Generated BURS tree parser for grammar '" << options.grammar_name
     << "'.\n"
     << " * " << g.rules().size() << " rules, " << g.nonterminal_count()
     << " non-terminals, " << g.terminal_count() << " terminals.\n"
     << " * Self-contained ANSI C; compile with: cc -O2 -o parser this.c\n"
     << " */\n"
     << "#include <stdio.h>\n"
     << "#include <stdlib.h>\n"
     << "#include <string.h>\n\n"
     << "#define NT_COUNT " << g.nonterminal_count() << "\n"
     << "#define RULE_COUNT " << static_cast<int>(g.rules().size()) << "\n"
     << "#define INF (1 << 28)\n\n"
     << "typedef struct Node {\n"
     << "  int term;\n"
     << "  long long value;\n"
     << "  int is_const;\n"
     << "  int nkids;\n"
     << "  struct Node **kids;\n"
     << "  int *cost;   /* per non-terminal */\n"
     << "  int *rule;\n"
     << "} Node;\n\n";

  // Flattened patterns.
  std::vector<long long> pool;
  std::vector<int> offsets;
  std::vector<int> lengths;
  for (const Rule& r : g.rules()) {
    offsets.push_back(static_cast<int>(pool.size()));
    std::vector<long long> flat;
    flatten(*r.pattern, flat);
    lengths.push_back(static_cast<int>(flat.size()));
    pool.insert(pool.end(), flat.begin(), flat.end());
  }

  os << "static const long long pat_pool[] = {";
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (i % 12 == 0) os << "\n  ";
    os << pool[i] << (i + 1 < pool.size() ? "," : "");
  }
  if (pool.empty()) os << "0";
  os << "\n};\n\n";

  auto emit_int_array = [&os](const char* name, const std::vector<int>& v) {
    os << "static const int " << name << "[] = {";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i % 16 == 0) os << "\n  ";
      os << v[i] << (i + 1 < v.size() ? "," : "");
    }
    if (v.empty()) os << "0";
    os << "\n};\n\n";
  };

  std::vector<int> lhs, cost, is_chain, chain_from;
  for (const Rule& r : g.rules()) {
    lhs.push_back(r.lhs);
    cost.push_back(r.cost);
    is_chain.push_back(r.is_chain() ? 1 : 0);
    chain_from.push_back(r.is_chain() ? r.pattern->nt : -1);
  }
  emit_int_array("rule_lhs", lhs);
  emit_int_array("rule_cost", cost);
  emit_int_array("rule_is_chain", is_chain);
  emit_int_array("rule_chain_from", chain_from);
  emit_int_array("pat_offset", offsets);
  emit_int_array("pat_length", lengths);

  os << R"C(
static int imm_fits(long long v, int width) {
  long long lo, hi;
  if (width >= 63) return 1;
  lo = -(1LL << (width - 1));
  hi = (1LL << width);
  return v >= lo && v < hi;
}

/* Matches pattern at *pc against node n; returns accumulated non-terminal
 * cost or -1. Advances *pc past the pattern. */
static int match_pat(const long long **pc, Node *n) {
  long long op = (*pc)[0], a = (*pc)[1], nk = (*pc)[2];
  int i, sum = 0, c;
  *pc += 3;
  switch ((int)op) {
    case 0: /* Term */
      if (n == NULL || n->term != (int)a || n->nkids != (int)nk) {
        /* skip remaining encoding of this subtree */
        for (i = 0; i < (int)nk; ++i) {
          Node *dummy = NULL;
          (void)match_pat(pc, dummy);
        }
        return -1;
      }
      for (i = 0; i < (int)nk; ++i) {
        c = match_pat(pc, n->kids[i]);
        if (c < 0) {
          int j;
          for (j = i + 1; j < (int)nk; ++j) {
            Node *dummy = NULL;
            (void)match_pat(pc, dummy);
          }
          return -1;
        }
        sum += c;
      }
      return sum;
    case 1: /* NonTerm */
      if (n == NULL) return -1;
      c = n->cost[(int)a];
      return c >= INF ? -1 : c;
    case 2: /* Imm */
      if (n == NULL || !n->is_const || !imm_fits(n->value, (int)a))
        return -1;
      return 0;
    case 3: /* Const */
      if (n == NULL || !n->is_const || n->value != a) return -1;
      return 0;
  }
  return -1;
}

static void closure(Node *n) {
  int changed = 1, r, y, total;
  while (changed) {
    changed = 0;
    for (r = 0; r < RULE_COUNT; ++r) {
      if (!rule_is_chain[r]) continue;
      y = rule_chain_from[r];
      if (n->cost[y] >= INF) continue;
      total = n->cost[y] + rule_cost[r];
      if (total < n->cost[rule_lhs[r]]) {
        n->cost[rule_lhs[r]] = total;
        n->rule[rule_lhs[r]] = r;
        changed = 1;
      }
    }
  }
}

void burm_label(Node *n) {
  int i, r, c, total;
  for (i = 0; i < n->nkids; ++i) burm_label(n->kids[i]);
  n->cost = (int *)malloc(sizeof(int) * NT_COUNT);
  n->rule = (int *)malloc(sizeof(int) * NT_COUNT);
  for (i = 0; i < NT_COUNT; ++i) {
    n->cost[i] = INF;
    n->rule[i] = -1;
  }
  for (r = 0; r < RULE_COUNT; ++r) {
    const long long *pc;
    if (rule_is_chain[r]) continue;
    pc = pat_pool + pat_offset[r];
    c = match_pat(&pc, n);
    if (c < 0) continue;
    total = c + rule_cost[r];
    if (total < n->cost[rule_lhs[r]]) {
      n->cost[rule_lhs[r]] = total;
      n->rule[rule_lhs[r]] = r;
    }
  }
  closure(n);
}
)C";

  if (options.with_main) {
    os << R"C(
static Node *mk(int term, int nkids) {
  Node *n = (Node *)calloc(1, sizeof(Node));
  n->term = term;
  n->nkids = nkids;
  if (nkids) n->kids = (Node **)calloc((size_t)nkids, sizeof(Node *));
  return n;
}

int main(void) {
  /* Label a tiny synthetic tree so the artifact is a runnable executable. */
  Node *leaf = mk(1, 0);
  leaf->is_const = 1;
  leaf->value = 0;
  burm_label(leaf);
  printf("burs parser: %d rules, %d non-terminals; leaf START cost=%d\n",
         RULE_COUNT, NT_COUNT, leaf->cost[0] >= INF ? -1 : leaf->cost[0]);
  return 0;
}
)C";
  }

  return os.str();
}

}  // namespace record::treeparse
