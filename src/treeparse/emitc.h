// Emission of a standalone C tree parser for a grammar, mirroring iburg.
//
// The paper's retargeting time includes "parser generation by iburg, and
// parser compilation by a C compiler". This emitter reproduces that path:
// it writes a self-contained ANSI-C program whose tables encode the grammar
// (size proportional to the rule set, as with iburg's generated matchers)
// and whose labeller implements the same BURS dynamic programming as
// treeparse::TreeParser. The bench harness optionally invokes the host C
// compiler on the artifact to measure the compile phase.
#pragma once

#include <string>

#include "grammar/grammar.h"

namespace record::treeparse {

struct EmitCOptions {
  /// Name used in the generated header comment.
  std::string grammar_name = "grammar";
  /// Emit a main() exercising the labeller on a small synthetic tree so the
  /// artifact links into a complete executable.
  bool with_main = true;
};

/// Generates the C source text.
[[nodiscard]] std::string emit_c_parser(const grammar::TreeGrammar& g,
                                        const EmitCOptions& options);

}  // namespace record::treeparse
