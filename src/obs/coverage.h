// Selection coverage maps: which parts of a generated selector a workload
// actually exercises.
//
// A CoverageMap tallies, per retargeted processor, hits on
//   * grammar rules MATCHED during labelling (any rule that wins some
//     non-terminal at some node, whether or not the derivation uses it),
//   * grammar rules CHOSEN in optimal derivations (what selection trusts),
//   * interned BURS states assigned to subject nodes, and
//   * frozen-table transition slots probed on the warm path,
// plus variant counters for the rarely-taken compile-stage paths (spill
// parks, caller saves, guard wraps, compaction merges, mode-set insertion,
// promoted-precision retries) and overflow/cold counters so nothing is
// silently dropped.
//
// The record path follows the same discipline as spans and metrics: one
// relaxed atomic fetch_add on storage whose address never moves, no locks,
// no allocation. Whether recording happens at all is gated by ONE relaxed
// load (CoverageRegistry::enabled()) checked once per compile — the hot
// loops receive a CoverageMap* that is null when coverage is off, so the
// disabled cost in the per-node path is a pointer test. Defining
// RECORD_OBS_DISABLE compiles every record call out entirely.
//
// Each hit array keeps a companion "distinct" counter bumped exactly once
// per index (fetch_add returning 0 claims the first hit), so coverage-guided
// fuzzing reads novelty deltas in O(1) without walking the arrays.
//
// Snapshots are plain-value CoverageSnapshot structs supporting diff (what
// did THIS input add), merge (fold a worker's map into a campaign total) and
// export as JSON or a human-readable report with uncovered-rule names.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace record::obs {

/// Rarely-taken compile-stage paths a workload may or may not reach.
enum class CoverageVariant : std::uint8_t {
  kSpillPark = 0,       // within-statement park (store+reload pair)
  kSpillCallerSave,     // caller-save wrap of a bound register
  kSpillGuardWrap,      // entry-block guard wrap (park+reload around entry)
  kCompactMerge,        // two RTs packed into one instruction word
  kCompactModeSet,      // mode-set instruction inserted by compaction
  kPromotedRetry,       // statement re-labelled at promoted precision
};
inline constexpr std::size_t kCoverageVariantCount = 6;

[[nodiscard]] std::string_view to_string(CoverageVariant v);

/// Raw hit counts at snapshot time (plain values; index = id/slot).
struct CoverageCounts {
  std::vector<std::uint64_t> rules_matched;
  std::vector<std::uint64_t> rules_chosen;
  std::vector<std::uint64_t> states;
  std::vector<std::uint64_t> transitions;
  std::array<std::uint64_t, kCoverageVariantCount> variants{};
  std::uint64_t state_overflow = 0;       // state id beyond map capacity
  std::uint64_t transition_overflow = 0;  // slot beyond map capacity
  std::uint64_t cold_transitions = 0;     // hash/merged-path lookups (no slot)
};

/// One target's coverage, frozen as plain values. `*_total` are the
/// denominators known at snapshot time (rule count is exact; state and
/// frozen-transition counts grow as tables fill dynamically and are
/// refreshed on every compile).
struct CoverageSnapshot {
  std::string target;
  std::uint64_t rules_total = 0;
  std::uint64_t states_total = 0;
  std::uint64_t transitions_total = 0;
  std::vector<std::string> rule_names;  // [rule id]; may be empty
  CoverageCounts counts;

  [[nodiscard]] std::size_t rules_matched_covered() const;
  [[nodiscard]] std::size_t rules_chosen_covered() const;
  [[nodiscard]] std::size_t states_covered() const;
  [[nodiscard]] std::size_t transitions_covered() const;
  /// Rule ids never chosen in any derivation (the trust gap).
  [[nodiscard]] std::vector<int> uncovered_rules() const;
};

/// counts(after) - counts(before), elementwise (saturating at 0); target,
/// totals and names come from `after`. The before/after maps must be
/// snapshots of the same CoverageMap.
[[nodiscard]] CoverageSnapshot coverage_diff(const CoverageSnapshot& before,
                                             const CoverageSnapshot& after);

/// Adds `from`'s counts into `into` elementwise, growing arrays as needed;
/// totals take the max (the later snapshot knows more of the table).
void coverage_merge(CoverageSnapshot& into, const CoverageSnapshot& from);

/// O(1)-readable distinct-coverage counters (for novelty deltas).
struct CoverageDistinct {
  std::uint64_t rules_matched = 0;
  std::uint64_t rules_chosen = 0;
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;

  [[nodiscard]] std::uint64_t total() const {
    return rules_matched + rules_chosen + states + transitions;
  }
  friend bool operator==(const CoverageDistinct&,
                         const CoverageDistinct&) = default;
};

/// Per-target hit arrays. Fixed capacity chosen at creation (rule capacity
/// is exact; state/transition capacities carry headroom for dynamic table
/// growth — out-of-range ids land in the overflow counters, never UB).
class CoverageMap {
 public:
  struct Config {
    std::size_t rules = 0;
    std::size_t states = 0;
    std::size_t transitions = 0;
    std::vector<std::string> rule_names;  // [rule id]; optional
  };

  CoverageMap(std::string target, Config config);

  CoverageMap(const CoverageMap&) = delete;
  CoverageMap& operator=(const CoverageMap&) = delete;

  [[nodiscard]] const std::string& target() const { return target_; }

#ifndef RECORD_OBS_DISABLE
  void record_rule_matched(int id) {
    hit(rules_matched_.get(), rules_cap_, id, distinct_rules_matched_,
        rule_overflow_);
  }
  void record_rule_chosen(int id) {
    hit(rules_chosen_.get(), rules_cap_, id, distinct_rules_chosen_,
        rule_overflow_);
  }
  void record_state(int id) {
    hit(states_.get(), states_cap_, id, distinct_states_, state_overflow_);
  }
  void record_transition(int slot) {
    hit(transitions_.get(), transitions_cap_, slot, distinct_transitions_,
        transition_overflow_);
  }
  void record_cold_transition() {
    cold_transitions_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_variant(CoverageVariant v, std::uint64_t n = 1) {
    if (n) variants_[static_cast<std::size_t>(v)].fetch_add(
        n, std::memory_order_relaxed);
  }
  /// Refreshes the denominators (relaxed stores; called once per compile).
  void set_totals(std::uint64_t rules, std::uint64_t states,
                  std::uint64_t transitions) {
    rules_total_.store(rules, std::memory_order_relaxed);
    states_total_.store(states, std::memory_order_relaxed);
    transitions_total_.store(transitions, std::memory_order_relaxed);
  }
#else
  void record_rule_matched(int) {}
  void record_rule_chosen(int) {}
  void record_state(int) {}
  void record_transition(int) {}
  void record_cold_transition() {}
  void record_variant(CoverageVariant, std::uint64_t = 1) {}
  void set_totals(std::uint64_t, std::uint64_t, std::uint64_t) {}
#endif

  [[nodiscard]] CoverageDistinct distinct() const;
  [[nodiscard]] CoverageSnapshot snapshot() const;

 private:
  static void hit(std::atomic<std::uint64_t>* arr, std::size_t cap, int id,
                  std::atomic<std::uint64_t>& distinct,
                  std::atomic<std::uint64_t>& overflow) {
    if (id < 0 || static_cast<std::size_t>(id) >= cap) {
      overflow.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (arr[static_cast<std::size_t>(id)].fetch_add(
            1, std::memory_order_relaxed) == 0)
      distinct.fetch_add(1, std::memory_order_relaxed);
  }

  std::string target_;
  std::vector<std::string> rule_names_;
  std::size_t rules_cap_ = 0;
  std::size_t states_cap_ = 0;
  std::size_t transitions_cap_ = 0;
  // Value-initialised atomic arrays; addresses stable for the map lifetime.
  std::unique_ptr<std::atomic<std::uint64_t>[]> rules_matched_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> rules_chosen_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> states_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> transitions_;
  std::array<std::atomic<std::uint64_t>, kCoverageVariantCount> variants_{};
  std::atomic<std::uint64_t> rule_overflow_{0};
  std::atomic<std::uint64_t> state_overflow_{0};
  std::atomic<std::uint64_t> transition_overflow_{0};
  std::atomic<std::uint64_t> cold_transitions_{0};
  std::atomic<std::uint64_t> distinct_rules_matched_{0};
  std::atomic<std::uint64_t> distinct_rules_chosen_{0};
  std::atomic<std::uint64_t> distinct_states_{0};
  std::atomic<std::uint64_t> distinct_transitions_{0};
  std::atomic<std::uint64_t> rules_total_{0};
  std::atomic<std::uint64_t> states_total_{0};
  std::atomic<std::uint64_t> transitions_total_{0};
};

/// Name -> CoverageMap. Mirrors MetricsRegistry: lookup takes a mutex and
/// runs once per compile; the returned reference stays valid (and its
/// record path wait-free) for the registry's lifetime.
class CoverageRegistry {
 public:
#ifndef RECORD_OBS_DISABLE
  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
#else
  void enable() {}
  void disable() {}
  [[nodiscard]] bool enabled() const { return false; }
#endif

  /// The map for `target`, creating it with `config()` on first use (the
  /// factory runs at most once per target, so callers may build rule-name
  /// tables in it without paying per compile).
  [[nodiscard]] CoverageMap& map_for(
      std::string_view target,
      const std::function<CoverageMap::Config()>& config);

  /// Existing map, or null. The pointer stays valid until clear().
  [[nodiscard]] CoverageMap* find(std::string_view target) const;

  /// All maps' snapshots, name-sorted (deterministic dumps).
  [[nodiscard]] std::vector<CoverageSnapshot> snapshot_all() const;

  /// Drops every map (tests isolate themselves with this; references handed
  /// out earlier dangle, so only use between workloads).
  void clear();

 private:
  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::map<std::string, std::unique_ptr<CoverageMap>, std::less<>> maps_;
};

/// The process-wide coverage registry (off until enable()).
[[nodiscard]] CoverageRegistry& coverage();

/// Human-readable per-target report (covered/total per dimension, variant
/// tallies, the uncovered-rule list with names when available).
[[nodiscard]] std::string coverage_report_text(const CoverageSnapshot& s);

/// JSON report over several targets:
/// {"coverage": [{"target": ..., "rules": {"covered","total","hits",...},
///   ...}]}. Self-contained valid-UTF-8 output (obs cannot depend on
/// service::Json).
[[nodiscard]] std::string coverage_report_json(
    const std::vector<CoverageSnapshot>& all);

}  // namespace record::obs
