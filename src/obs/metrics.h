// Lock-free pipeline metrics: named monotonic counters, gauges and
// log-bucketed latency histograms with percentile extraction.
//
// The hot path is wait-free: recording into a Counter/Gauge/Histogram is one
// (or a few) relaxed atomic operations on storage whose address is stable for
// the registry's lifetime. Name resolution (MetricsRegistry::counter(name)
// etc.) takes a mutex and is meant to run once per call site — callers cache
// the returned reference (or a static local) and hit only atomics afterwards.
//
// Histograms bucket values (canonically nanoseconds) exactly up to 32 and
// logarithmically above — eight sub-buckets per power of two, ~12.5% relative
// resolution — so a fixed 4 KiB bucket array spans the full positive int64
// range. Quantiles (p50/p90/p99) interpolate linearly inside the landing
// bucket, which makes them exact for values below 32 and within one
// sub-bucket above.
//
// A process-wide registry instance is available as obs::metrics(); subsystems
// may also own private registries/histograms (CompileService keeps per-
// instance latency histograms backing its ServiceStats compatibility view).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace record::obs {

/// Monotonic event counter. Wraps modulo 2^64 on overflow (documented
/// behaviour: a counter is a delta source, and consumers diff snapshots).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (queue depths, occupancies).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// One occupied histogram bucket: the [lo, hi] value range and its raw
/// count. Snapshots carry only non-empty buckets, so consumers can rebuild
/// the full distribution (and recompute any quantile) without shipping the
/// 496-entry array.
struct HistogramBucket {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::uint64_t count = 0;
};

/// Summary of one histogram at snapshot time.
struct HistogramStats {
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;  // 0 when empty
  std::int64_t max = 0;
  double mean = 0;
  std::int64_t p50 = 0;
  std::int64_t p90 = 0;
  std::int64_t p99 = 0;
  std::vector<HistogramBucket> buckets;  // occupied buckets, ascending lo
};

/// Log-bucketed histogram over non-negative int64 values (negatives clamp to
/// zero). record() is wait-free; quantile() walks the 496 buckets.
class Histogram {
 public:
  /// Exact buckets below this value; log sub-buckets above.
  static constexpr std::int64_t kLinearLimit = 32;
  static constexpr std::size_t kBucketCount = 496;

  void record(std::int64_t value);

  /// q in [0,1]; linear interpolation inside the landing bucket. 0 when the
  /// histogram is empty.
  [[nodiscard]] std::int64_t quantile(double q) const;

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] HistogramStats stats() const;
  void reset();

  /// Bucket index of `value` and the [lo, hi] value range of bucket `index`
  /// (exposed for the bucket-boundary tests).
  [[nodiscard]] static std::size_t bucket_of(std::int64_t value);
  [[nodiscard]] static std::pair<std::int64_t, std::int64_t> bucket_range(
      std::size_t index);

 private:
  std::atomic<std::uint64_t> buckets_[kBucketCount] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  // Sentinel-initialised so the first record() claims them with plain
  // compare-exchange loops; reported only while count_ > 0.
  std::atomic<std::int64_t> min_{INT64_MAX};
  std::atomic<std::int64_t> max_{-1};
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramStats>> histograms;
};

/// Name -> metric map. Lookup is mutex-protected and creates on first use;
/// returned references stay valid (and wait-free) for the registry's
/// lifetime. Snapshot order is name-sorted, so dumps are deterministic.
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Drops every registered metric (tests isolate themselves with this;
  /// references handed out earlier dangle, so only use between workloads).
  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry every pipeline layer records into.
[[nodiscard]] MetricsRegistry& metrics();

}  // namespace record::obs
