#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace record::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// JSON string escaping (the exporter cannot depend on service::Json
/// without inverting the layering). util::append_json_quoted guarantees
/// valid-UTF-8 output — span names/annotations carry generated model names,
/// which can contain quotes, control characters and stray non-UTF-8 bytes.
void append_quoted(std::string& out, std::string_view s) {
  util::append_json_quoted(out, s);
}

}  // namespace

/// Per-thread event ring. The owning thread appends under the buffer's own
/// mutex (uncontended in steady state — snapshots are rare), which keeps the
/// reader side trivially race-free under TSan. Buffers are shared_ptr-owned
/// by the tracer's registry so events survive thread exit (a finished worker
/// pool still shows up in the exported trace).
struct Tracer::ThreadBuf {
  mutable std::mutex mu;
  std::vector<TraceEvent> ring;  // capacity fixed at registration
  std::size_t next = 0;          // write cursor
  std::uint64_t pushed = 0;      // total events ever written
  std::uint32_t tid = 0;
  int depth = 0;  // owner-thread span stack depth (no lock needed)
};

Tracer::Tracer() : epoch_ns_(steady_now_ns()) {}

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();  // never destroyed
  return *tracer;
}

std::uint64_t Tracer::now_ns() const { return steady_now_ns() - epoch_ns_; }

void Tracer::set_ring_capacity(std::size_t events) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = events == 0 ? 1 : events;
}

Tracer::ThreadBuf& Tracer::local_buf() {
  thread_local std::shared_ptr<ThreadBuf> buf;
  if (!buf) {
    buf = std::make_shared<ThreadBuf>();
    std::lock_guard<std::mutex> lock(mu_);
    buf->ring.resize(capacity_);
    buf->tid = next_tid_++;
    bufs_.push_back(buf);
  }
  return *buf;
}

void Tracer::push(TraceEvent event) {
  ThreadBuf& buf = local_buf();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.ring[buf.next] = std::move(event);
  buf.next = (buf.next + 1) % buf.ring.size();
  ++buf.pushed;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    bufs = bufs_;
  }
  std::vector<TraceEvent> events;
  for (const auto& buf : bufs) {
    std::lock_guard<std::mutex> lock(buf->mu);
    const std::size_t cap = buf->ring.size();
    const std::size_t live = buf->pushed < cap
                                 ? static_cast<std::size_t>(buf->pushed)
                                 : cap;
    // Oldest-first: when wrapped, the oldest live event sits at the cursor.
    const std::size_t first = buf->pushed < cap ? 0 : buf->next;
    for (std::size_t i = 0; i < live; ++i)
      events.push_back(buf->ring[(first + i) % cap]);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return events;
}

std::vector<TraceEvent> Tracer::recent(std::size_t n) const {
  std::vector<TraceEvent> events = snapshot();
  // Flight-recorder view: order by completion time and keep the last n.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns + a.dur_ns < b.start_ns + b.dur_ns;
                   });
  if (events.size() > n)
    events.erase(events.begin(),
                 events.end() - static_cast<std::ptrdiff_t>(n));
  return events;
}

std::string Tracer::chrome_trace_json() const {
  std::vector<TraceEvent> events = snapshot();
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out.push_back(',');
    first = false;
    char head[160];
    // Timestamps are microseconds in the trace-event format; fractional
    // values keep nanosecond resolution.
    std::snprintf(head, sizeof head,
                  "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                  "\"dur\":%.3f,\"cat\":\"record\",\"name\":",
                  e.tid, static_cast<double>(e.start_ns) / 1e3,
                  static_cast<double>(e.dur_ns) / 1e3);
    out += head;
    append_quoted(out, e.name);
    if (!e.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [k, v] : e.args) {
        if (!first_arg) out.push_back(',');
        first_arg = false;
        append_quoted(out, k);
        out.push_back(':');
        append_quoted(out, v);
      }
      out.push_back('}');
    }
    out.push_back('}');
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << chrome_trace_json() << "\n";
  return static_cast<bool>(out);
}

void Tracer::clear() {
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    bufs = bufs_;
  }
  for (const auto& buf : bufs) {
    std::lock_guard<std::mutex> lock(buf->mu);
    buf->next = 0;
    buf->pushed = 0;
  }
}

#ifndef RECORD_OBS_DISABLE

void Span::open(const char* name) {
  Tracer& tracer = Tracer::instance();
  Tracer::ThreadBuf& buf = tracer.local_buf();
  active_ = true;
  event_.name = name;
  event_.tid = buf.tid;
  event_.depth = static_cast<std::uint32_t>(buf.depth++);
  event_.start_ns = tracer.now_ns();
}

void Span::close() {
  Tracer& tracer = Tracer::instance();
  event_.dur_ns = tracer.now_ns() - event_.start_ns;
  Tracer::ThreadBuf& buf = tracer.local_buf();
  if (buf.depth > 0) --buf.depth;
  active_ = false;
  tracer.push(std::move(event_));
}

void Span::note(std::string_view key, double value) {
  if (!active_) return;
  std::ostringstream os;
  os << value;
  event_.args.emplace_back(std::string(key), os.str());
}

#endif  // RECORD_OBS_DISABLE

}  // namespace record::obs
