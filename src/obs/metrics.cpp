#include "obs/metrics.h"

#include <algorithm>

namespace record::obs {

// --- Histogram --------------------------------------------------------------
//
// Bucket layout: indices [0, 32) hold values 0..31 exactly. Above, each
// power-of-two octave o (value in [2^o, 2^(o+1)), o >= 5) is split into 8
// sub-buckets of width 2^(o-3), giving index 32 + (o-5)*8 + sub. The top
// octave of a positive int64 is o = 62, so 32 + 58*8 = 496 buckets cover the
// whole domain.

std::size_t Histogram::bucket_of(std::int64_t value) {
  if (value < kLinearLimit) return value < 0 ? 0 : static_cast<std::size_t>(value);
  const unsigned o =
      std::bit_width(static_cast<std::uint64_t>(value)) - 1;  // >= 5
  const std::size_t sub =
      static_cast<std::size_t>((static_cast<std::uint64_t>(value) >> (o - 3)) & 7u);
  return 32 + static_cast<std::size_t>(o - 5) * 8 + sub;
}

std::pair<std::int64_t, std::int64_t> Histogram::bucket_range(
    std::size_t index) {
  if (index < 32) {
    const std::int64_t v = static_cast<std::int64_t>(index);
    return {v, v};
  }
  const std::size_t k = index - 32;
  const unsigned o = static_cast<unsigned>(5 + k / 8);
  const std::uint64_t sub = k % 8;
  const std::uint64_t width = std::uint64_t{1} << (o - 3);
  const std::uint64_t lo = (std::uint64_t{1} << o) + sub * width;
  return {static_cast<std::int64_t>(lo),
          static_cast<std::int64_t>(lo + width - 1)};
}

void Histogram::record(std::int64_t value) {
  if (value < 0) value = 0;
  buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::int64_t m = min_.load(std::memory_order_relaxed);
  while (value < m &&
         !min_.compare_exchange_weak(m, value, std::memory_order_relaxed)) {
  }
  std::int64_t M = max_.load(std::memory_order_relaxed);
  while (value > M &&
         !max_.compare_exchange_weak(M, value, std::memory_order_relaxed)) {
  }
}

std::int64_t Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the q-th value, 1-based; q=0 -> first, q=1 -> last.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(q * static_cast<double>(n) + 0.5));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (cum + c >= rank) {
      const auto [lo, hi] = bucket_range(i);
      if (hi == lo) return lo;
      // Interpolate by rank position inside the bucket.
      const double frac = static_cast<double>(rank - cum - 1) /
                          static_cast<double>(c);
      return lo + static_cast<std::int64_t>(frac * static_cast<double>(hi - lo));
    }
    cum += c;
  }
  return bucket_range(kBucketCount - 1).second;
}

HistogramStats Histogram::stats() const {
  HistogramStats s;
  s.count = count();
  s.sum = sum();
  if (s.count > 0) {
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    s.mean = static_cast<double>(s.sum) / static_cast<double>(s.count);
    s.p50 = quantile(0.50);
    s.p90 = quantile(0.90);
    s.p99 = quantile(0.99);
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
      if (c == 0) continue;
      const auto [lo, hi] = bucket_range(i);
      s.buckets.push_back(HistogramBucket{lo, hi, c});
    }
  }
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(-1, std::memory_order_relaxed);
}

// --- MetricsRegistry --------------------------------------------------------

namespace {

template <typename Map>
auto& find_or_create(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return find_or_create(gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return find_or_create(histograms_, name);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_)
    snap.histograms.emplace_back(name, h->stats());
  return snap;
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

}  // namespace record::obs
