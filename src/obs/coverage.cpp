#include "obs/coverage.h"

#include <algorithm>
#include <cstdio>

#include "util/strings.h"

namespace record::obs {

std::string_view to_string(CoverageVariant v) {
  switch (v) {
    case CoverageVariant::kSpillPark: return "spill_park";
    case CoverageVariant::kSpillCallerSave: return "spill_caller_save";
    case CoverageVariant::kSpillGuardWrap: return "spill_guard_wrap";
    case CoverageVariant::kCompactMerge: return "compact_merge";
    case CoverageVariant::kCompactModeSet: return "compact_mode_set";
    case CoverageVariant::kPromotedRetry: return "promoted_retry";
  }
  return "unknown";
}

namespace {

std::size_t count_nonzero(const std::vector<std::uint64_t>& v) {
  return static_cast<std::size_t>(
      std::count_if(v.begin(), v.end(),
                    [](std::uint64_t h) { return h != 0; }));
}

}  // namespace

std::size_t CoverageSnapshot::rules_matched_covered() const {
  return count_nonzero(counts.rules_matched);
}
std::size_t CoverageSnapshot::rules_chosen_covered() const {
  return count_nonzero(counts.rules_chosen);
}
std::size_t CoverageSnapshot::states_covered() const {
  return count_nonzero(counts.states);
}
std::size_t CoverageSnapshot::transitions_covered() const {
  return count_nonzero(counts.transitions);
}

std::vector<int> CoverageSnapshot::uncovered_rules() const {
  std::vector<int> out;
  const std::size_t n =
      std::max<std::size_t>(counts.rules_chosen.size(),
                            static_cast<std::size_t>(rules_total));
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t hits =
        i < counts.rules_chosen.size() ? counts.rules_chosen[i] : 0;
    if (hits == 0) out.push_back(static_cast<int>(i));
  }
  return out;
}

CoverageSnapshot coverage_diff(const CoverageSnapshot& before,
                               const CoverageSnapshot& after) {
  CoverageSnapshot d = after;
  const auto sub = [](std::vector<std::uint64_t>& a,
                      const std::vector<std::uint64_t>& b) {
    for (std::size_t i = 0; i < a.size() && i < b.size(); ++i)
      a[i] = a[i] >= b[i] ? a[i] - b[i] : 0;
  };
  sub(d.counts.rules_matched, before.counts.rules_matched);
  sub(d.counts.rules_chosen, before.counts.rules_chosen);
  sub(d.counts.states, before.counts.states);
  sub(d.counts.transitions, before.counts.transitions);
  for (std::size_t i = 0; i < kCoverageVariantCount; ++i) {
    const std::uint64_t b = before.counts.variants[i];
    d.counts.variants[i] =
        d.counts.variants[i] >= b ? d.counts.variants[i] - b : 0;
  }
  const auto sub1 = [](std::uint64_t& a, std::uint64_t b) {
    a = a >= b ? a - b : 0;
  };
  sub1(d.counts.state_overflow, before.counts.state_overflow);
  sub1(d.counts.transition_overflow, before.counts.transition_overflow);
  sub1(d.counts.cold_transitions, before.counts.cold_transitions);
  return d;
}

void coverage_merge(CoverageSnapshot& into, const CoverageSnapshot& from) {
  if (into.target.empty()) into.target = from.target;
  into.rules_total = std::max(into.rules_total, from.rules_total);
  into.states_total = std::max(into.states_total, from.states_total);
  into.transitions_total =
      std::max(into.transitions_total, from.transitions_total);
  if (into.rule_names.empty()) into.rule_names = from.rule_names;
  const auto add = [](std::vector<std::uint64_t>& a,
                      const std::vector<std::uint64_t>& b) {
    if (a.size() < b.size()) a.resize(b.size(), 0);
    for (std::size_t i = 0; i < b.size(); ++i) a[i] += b[i];
  };
  add(into.counts.rules_matched, from.counts.rules_matched);
  add(into.counts.rules_chosen, from.counts.rules_chosen);
  add(into.counts.states, from.counts.states);
  add(into.counts.transitions, from.counts.transitions);
  for (std::size_t i = 0; i < kCoverageVariantCount; ++i)
    into.counts.variants[i] += from.counts.variants[i];
  into.counts.state_overflow += from.counts.state_overflow;
  into.counts.transition_overflow += from.counts.transition_overflow;
  into.counts.cold_transitions += from.counts.cold_transitions;
}

CoverageMap::CoverageMap(std::string target, Config config)
    : target_(std::move(target)),
      rule_names_(std::move(config.rule_names)),
      rules_cap_(config.rules),
      states_cap_(config.states),
      transitions_cap_(config.transitions) {
  // () value-initialises every atomic to zero.
  if (rules_cap_) {
    rules_matched_.reset(new std::atomic<std::uint64_t>[rules_cap_]());
    rules_chosen_.reset(new std::atomic<std::uint64_t>[rules_cap_]());
  }
  if (states_cap_)
    states_.reset(new std::atomic<std::uint64_t>[states_cap_]());
  if (transitions_cap_)
    transitions_.reset(new std::atomic<std::uint64_t>[transitions_cap_]());
  set_totals(config.rules, 0, 0);
}

CoverageDistinct CoverageMap::distinct() const {
  CoverageDistinct d;
  d.rules_matched = distinct_rules_matched_.load(std::memory_order_relaxed);
  d.rules_chosen = distinct_rules_chosen_.load(std::memory_order_relaxed);
  d.states = distinct_states_.load(std::memory_order_relaxed);
  d.transitions = distinct_transitions_.load(std::memory_order_relaxed);
  return d;
}

CoverageSnapshot CoverageMap::snapshot() const {
  CoverageSnapshot s;
  s.target = target_;
  s.rule_names = rule_names_;
  s.rules_total = rules_total_.load(std::memory_order_relaxed);
  s.states_total = states_total_.load(std::memory_order_relaxed);
  s.transitions_total = transitions_total_.load(std::memory_order_relaxed);
  const auto read = [](const std::atomic<std::uint64_t>* arr, std::size_t n,
                       std::vector<std::uint64_t>& out) {
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      out[i] = arr[i].load(std::memory_order_relaxed);
  };
  if (rules_matched_) read(rules_matched_.get(), rules_cap_,
                           s.counts.rules_matched);
  if (rules_chosen_) read(rules_chosen_.get(), rules_cap_,
                          s.counts.rules_chosen);
  if (states_) read(states_.get(), states_cap_, s.counts.states);
  if (transitions_)
    read(transitions_.get(), transitions_cap_, s.counts.transitions);
  for (std::size_t i = 0; i < kCoverageVariantCount; ++i)
    s.counts.variants[i] = variants_[i].load(std::memory_order_relaxed);
  s.counts.state_overflow = state_overflow_.load(std::memory_order_relaxed);
  s.counts.transition_overflow =
      transition_overflow_.load(std::memory_order_relaxed);
  s.counts.cold_transitions =
      cold_transitions_.load(std::memory_order_relaxed);
  return s;
}

CoverageMap& CoverageRegistry::map_for(
    std::string_view target,
    const std::function<CoverageMap::Config()>& config) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = maps_.find(target);
  if (it == maps_.end()) {
    it = maps_
             .emplace(std::string(target),
                      std::make_unique<CoverageMap>(std::string(target),
                                                    config()))
             .first;
  }
  return *it->second;
}

CoverageMap* CoverageRegistry::find(std::string_view target) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = maps_.find(target);
  return it == maps_.end() ? nullptr : it->second.get();
}

std::vector<CoverageSnapshot> CoverageRegistry::snapshot_all() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CoverageSnapshot> out;
  out.reserve(maps_.size());
  for (const auto& [name, map] : maps_) out.push_back(map->snapshot());
  return out;
}

void CoverageRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  maps_.clear();
}

CoverageRegistry& coverage() {
  static CoverageRegistry* registry = new CoverageRegistry();  // leaked
  return *registry;
}

// --- reports ----------------------------------------------------------------

namespace {

void append_ratio_line(std::string& out, const char* what,
                       std::size_t covered, std::uint64_t total) {
  out += "  ";
  out += what;
  out += ": ";
  out += std::to_string(covered);
  out += '/';
  out += std::to_string(total);
  if (total > 0) {
    char buf[16];
    std::snprintf(buf, sizeof buf, " (%.1f%%)",
                  100.0 * static_cast<double>(covered) /
                      static_cast<double>(total));
    out += buf;
  }
  out += '\n';
}

void append_hits_array(std::string& out, const char* key,
                       const std::vector<std::uint64_t>& hits) {
  out += '"';
  out += key;
  out += "\":[";
  for (std::size_t i = 0; i < hits.size(); ++i) {
    if (i) out.push_back(',');
    out += std::to_string(hits[i]);
  }
  out += ']';
}

void append_dimension(std::string& out, const char* key, std::size_t covered,
                      std::uint64_t total,
                      const std::vector<std::uint64_t>& hits,
                      bool with_hits) {
  out += '"';
  out += key;
  out += "\":{\"covered\":";
  out += std::to_string(covered);
  out += ",\"total\":";
  out += std::to_string(total);
  if (with_hits) {
    out.push_back(',');
    append_hits_array(out, "hits", hits);
  }
  out.push_back('}');
}

}  // namespace

std::string coverage_report_text(const CoverageSnapshot& s) {
  std::string out;
  out += "coverage of target '";
  out += s.target;
  out += "'\n";
  append_ratio_line(out, "rules matched", s.rules_matched_covered(),
                    s.rules_total);
  append_ratio_line(out, "rules chosen", s.rules_chosen_covered(),
                    s.rules_total);
  append_ratio_line(out, "states", s.states_covered(), s.states_total);
  append_ratio_line(out, "frozen transitions", s.transitions_covered(),
                    s.transitions_total);
  out += "  cold transitions: ";
  out += std::to_string(s.counts.cold_transitions);
  out += '\n';
  for (std::size_t i = 0; i < kCoverageVariantCount; ++i) {
    if (s.counts.variants[i] == 0) continue;
    out += "  variant ";
    out += to_string(static_cast<CoverageVariant>(i));
    out += ": ";
    out += std::to_string(s.counts.variants[i]);
    out += '\n';
  }
  if (s.counts.state_overflow || s.counts.transition_overflow) {
    out += "  overflow: states ";
    out += std::to_string(s.counts.state_overflow);
    out += ", transitions ";
    out += std::to_string(s.counts.transition_overflow);
    out += '\n';
  }
  const std::vector<int> uncovered = s.uncovered_rules();
  if (uncovered.empty()) {
    out += "  every rule chosen at least once\n";
    return out;
  }
  out += "  rules never chosen (";
  out += std::to_string(uncovered.size());
  out += "):\n";
  // Cap the listing: expanded grammars carry hundreds of commutative and
  // addressing-mode duplicates, and a thousand-line dump buries the summary.
  // The JSON report keeps the complete list.
  constexpr std::size_t kMaxListed = 25;
  const std::size_t listed = std::min(uncovered.size(), kMaxListed);
  for (std::size_t i = 0; i < listed; ++i) {
    const int id = uncovered[i];
    out += "    #";
    out += std::to_string(id);
    if (static_cast<std::size_t>(id) < s.rule_names.size()) {
      out += "  ";
      out += s.rule_names[static_cast<std::size_t>(id)];
    }
    out += '\n';
  }
  if (uncovered.size() > listed) {
    out += "    ... and ";
    out += std::to_string(uncovered.size() - listed);
    out += " more (full list in the JSON report)\n";
  }
  return out;
}

std::string coverage_report_json(const std::vector<CoverageSnapshot>& all) {
  std::string out;
  out += "{\"coverage\":[";
  for (std::size_t t = 0; t < all.size(); ++t) {
    const CoverageSnapshot& s = all[t];
    if (t) out.push_back(',');
    out += "{\"target\":";
    util::append_json_quoted(out, s.target);
    out.push_back(',');
    append_dimension(out, "rules_matched", s.rules_matched_covered(),
                     s.rules_total, s.counts.rules_matched, true);
    out.push_back(',');
    append_dimension(out, "rules_chosen", s.rules_chosen_covered(),
                     s.rules_total, s.counts.rules_chosen, true);
    out.push_back(',');
    append_dimension(out, "states", s.states_covered(), s.states_total,
                     s.counts.states, false);
    out.push_back(',');
    append_dimension(out, "transitions", s.transitions_covered(),
                     s.transitions_total, s.counts.transitions, false);
    out += ",\"cold_transitions\":";
    out += std::to_string(s.counts.cold_transitions);
    out += ",\"variants\":{";
    for (std::size_t i = 0; i < kCoverageVariantCount; ++i) {
      if (i) out.push_back(',');
      out.push_back('"');
      out += to_string(static_cast<CoverageVariant>(i));
      out += "\":";
      out += std::to_string(s.counts.variants[i]);
    }
    out += "},\"uncovered_rules\":[";
    const std::vector<int> uncovered = s.uncovered_rules();
    for (std::size_t i = 0; i < uncovered.size(); ++i) {
      if (i) out.push_back(',');
      const int id = uncovered[i];
      out += "{\"rule\":";
      out += std::to_string(id);
      if (static_cast<std::size_t>(id) < s.rule_names.size()) {
        out += ",\"name\":";
        util::append_json_quoted(
            out, s.rule_names[static_cast<std::size_t>(id)]);
      }
      out.push_back('}');
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace record::obs
