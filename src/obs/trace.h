// Hierarchical trace spans with Chrome/Perfetto trace-event export.
//
// obs::Span is an RAII span: construction stamps a steady-clock start time
// and nesting depth (a thread-local span stack counter), destruction records
// one completed event — name, wall duration, key/value annotations — into a
// fixed-capacity per-thread ring buffer owned by the process-wide
// obs::Tracer. Old events are overwritten when a ring wraps, so a
// long-running daemon keeps a bounded flight recorder of its most recent
// work instead of growing without limit.
//
// Tracing is off by default: a disabled Span costs one relaxed atomic load
// and a branch, which keeps instrumentation in the selection/compile hot
// paths below the bench gate's noise floor. Tracer::instance().enable()
// turns recording on process-wide; defining RECORD_OBS_DISABLE at compile
// time compiles every span out entirely.
//
// Export: Tracer::chrome_trace_json() renders the buffered spans in the
// Chrome trace-event format ("traceEvents" with ph:"X" complete events),
// which https://ui.perfetto.dev opens directly — one track per recorded
// thread, spans nested by timestamp containment.
//
// Instrument with the OBS_SPAN macro for plain scopes:
//     OBS_SPAN("compile.select");
// or a named span when annotations are added along the way:
//     obs::Span span("retarget");
//     span.note("processor", name);
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace record::obs {

/// One completed span.
struct TraceEvent {
  std::string name;
  std::vector<std::pair<std::string, std::string>> args;
  std::uint64_t start_ns = 0;  // steady clock, relative to the tracer epoch
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;   // tracer-assigned dense thread id
  std::uint32_t depth = 0; // span-stack depth at open (0 = root)
};

class Tracer {
 public:
  [[nodiscard]] static Tracer& instance();

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Per-thread ring capacity for buffers created after this call
  /// (existing buffers keep their size). Default 8192 events.
  void set_ring_capacity(std::size_t events);

  /// All buffered events, sorted by start time (stable across threads).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// The `n` most recently *completed* events across all threads, oldest
  /// first — the flight-recorder view recordd's trace command serves.
  [[nodiscard]] std::vector<TraceEvent> recent(std::size_t n) const;

  /// Chrome trace-event JSON of snapshot() (loadable in ui.perfetto.dev).
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Writes chrome_trace_json() to `path`; false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

  /// Drops all buffered events (buffers stay registered).
  void clear();

  /// Steady-clock nanoseconds since the tracer epoch (process start-ish).
  [[nodiscard]] std::uint64_t now_ns() const;

 private:
  friend class Span;
  struct ThreadBuf;

  Tracer();
  [[nodiscard]] ThreadBuf& local_buf();
  void push(TraceEvent event);

  std::atomic<bool> enabled_{false};
  std::uint64_t epoch_ns_ = 0;  // absolute steady-clock origin

  mutable std::mutex mu_;  // guards bufs_ and capacity_
  std::vector<std::shared_ptr<ThreadBuf>> bufs_;
  std::size_t capacity_ = 8192;
  std::uint32_t next_tid_ = 0;
};

#ifndef RECORD_OBS_DISABLE

class Span {
 public:
  explicit Span(const char* name) {
    if (Tracer::instance().enabled()) open(name);
  }
  ~Span() {
    if (active_) close();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Closes the span now (sequential stages sharing one scope end the
  /// previous stage before opening the next). Idempotent.
  void end() {
    if (active_) close();
  }

  /// Attaches a key/value annotation (exported into the event's args).
  void note(std::string_view key, std::string_view value) {
    if (active_) event_.args.emplace_back(std::string(key), std::string(value));
  }
  void note(std::string_view key, std::int64_t value) {
    if (active_) event_.args.emplace_back(std::string(key), std::to_string(value));
  }
  void note(std::string_view key, double value);

 private:
  void open(const char* name);
  void close();

  bool active_ = false;
  TraceEvent event_;
};

#else  // RECORD_OBS_DISABLE: spans compile to nothing.

class Span {
 public:
  explicit Span(const char*) {}
  void end() {}
  void note(std::string_view, std::string_view) {}
  void note(std::string_view, std::int64_t) {}
  void note(std::string_view, double) {}
};

#endif

#define RECORD_OBS_CAT2(a, b) a##b
#define RECORD_OBS_CAT(a, b) RECORD_OBS_CAT2(a, b)
/// Anonymous scope span: OBS_SPAN("compile.encode");
#define OBS_SPAN(name) \
  ::record::obs::Span RECORD_OBS_CAT(obs_span_, __LINE__)(name)

}  // namespace record::obs
