// Tokeniser for the processor-description HDL (see hdl/ast.h for syntax).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/diagnostics.h"

namespace record::hdl {

enum class TokKind : std::uint8_t {
  // literals / names
  Ident,
  Int,
  // punctuation
  LParen,
  RParen,
  LBracket,
  RBracket,
  Colon,
  Semi,
  Comma,
  Dot,
  Assign,   // :=
  Eq,       // =
  Neq,      // /=
  Amp,      // &
  Pipe,     // |
  Caret,    // ^
  Tilde,    // ~
  Plus,
  Minus,
  Star,
  Slash,
  Shl,  // <<
  Shr,  // >>
  // keywords (case-insensitive in source)
  KwProcessor,
  KwModule,
  KwRegister,
  KwMemory,
  KwModeReg,
  KwController,
  KwBehavior,
  KwStructure,
  KwParts,
  KwConnections,
  KwBus,
  KwPort,
  KwIn,
  KwOut,
  KwCtrl,
  KwWhen,
  KwEnd,
  KwCell,
  KwSize,
  KwDelay,
  KwAnd,
  KwOr,
  KwNot,
  KwSxt,
  KwZxt,
  // sentinels
  Eof,
  Error
};

[[nodiscard]] std::string_view to_string(TokKind k);

struct Token {
  TokKind kind = TokKind::Eof;
  std::string text;          // identifier spelling (original case)
  std::int64_t value = 0;    // Int
  util::SourceLoc loc;
};

/// Tokenises the whole input. Lexical errors are reported to `diags` and
/// produce Error tokens; the stream always ends with an Eof token.
[[nodiscard]] std::vector<Token> lex(std::string_view source,
                                     util::DiagnosticSink& diags);

}  // namespace record::hdl
