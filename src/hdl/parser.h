// Recursive-descent parser for the processor-description HDL.
#pragma once

#include <optional>
#include <string_view>

#include "hdl/ast.h"
#include "util/diagnostics.h"

namespace record::hdl {

/// Parses a complete processor model. On syntax errors, diagnostics are
/// reported and nullopt is returned. The returned model is purely syntactic;
/// run `check_model` (hdl/sema.h) before elaboration.
[[nodiscard]] std::optional<ProcessorModel> parse(
    std::string_view source, util::DiagnosticSink& diags);

}  // namespace record::hdl
