#include "hdl/lexer.h"

#include <cctype>
#include <unordered_map>

#include "util/strings.h"

namespace record::hdl {

std::string_view to_string(TokKind k) {
  switch (k) {
    case TokKind::Ident: return "identifier";
    case TokKind::Int: return "integer";
    case TokKind::LParen: return "'('";
    case TokKind::RParen: return "')'";
    case TokKind::LBracket: return "'['";
    case TokKind::RBracket: return "']'";
    case TokKind::Colon: return "':'";
    case TokKind::Semi: return "';'";
    case TokKind::Comma: return "','";
    case TokKind::Dot: return "'.'";
    case TokKind::Assign: return "':='";
    case TokKind::Eq: return "'='";
    case TokKind::Neq: return "'/='";
    case TokKind::Amp: return "'&'";
    case TokKind::Pipe: return "'|'";
    case TokKind::Caret: return "'^'";
    case TokKind::Tilde: return "'~'";
    case TokKind::Plus: return "'+'";
    case TokKind::Minus: return "'-'";
    case TokKind::Star: return "'*'";
    case TokKind::Slash: return "'/'";
    case TokKind::Shl: return "'<<'";
    case TokKind::Shr: return "'>>'";
    case TokKind::KwProcessor: return "PROCESSOR";
    case TokKind::KwModule: return "MODULE";
    case TokKind::KwRegister: return "REGISTER";
    case TokKind::KwMemory: return "MEMORY";
    case TokKind::KwModeReg: return "MODEREG";
    case TokKind::KwController: return "CONTROLLER";
    case TokKind::KwBehavior: return "BEHAVIOR";
    case TokKind::KwStructure: return "STRUCTURE";
    case TokKind::KwParts: return "PARTS";
    case TokKind::KwConnections: return "CONNECTIONS";
    case TokKind::KwBus: return "BUS";
    case TokKind::KwPort: return "PORT";
    case TokKind::KwIn: return "IN";
    case TokKind::KwOut: return "OUT";
    case TokKind::KwCtrl: return "CTRL";
    case TokKind::KwWhen: return "WHEN";
    case TokKind::KwEnd: return "END";
    case TokKind::KwCell: return "CELL";
    case TokKind::KwSize: return "SIZE";
    case TokKind::KwDelay: return "DELAY";
    case TokKind::KwAnd: return "AND";
    case TokKind::KwOr: return "OR";
    case TokKind::KwNot: return "NOT";
    case TokKind::KwSxt: return "SXT";
    case TokKind::KwZxt: return "ZXT";
    case TokKind::Eof: return "end of input";
    case TokKind::Error: return "error";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string, TokKind>& keyword_table() {
  static const std::unordered_map<std::string, TokKind> table = {
      {"processor", TokKind::KwProcessor},
      {"module", TokKind::KwModule},
      {"register", TokKind::KwRegister},
      {"memory", TokKind::KwMemory},
      {"modereg", TokKind::KwModeReg},
      {"controller", TokKind::KwController},
      {"behavior", TokKind::KwBehavior},
      {"behaviour", TokKind::KwBehavior},
      {"structure", TokKind::KwStructure},
      {"parts", TokKind::KwParts},
      {"connections", TokKind::KwConnections},
      {"bus", TokKind::KwBus},
      {"port", TokKind::KwPort},
      {"in", TokKind::KwIn},
      {"out", TokKind::KwOut},
      {"ctrl", TokKind::KwCtrl},
      {"when", TokKind::KwWhen},
      {"end", TokKind::KwEnd},
      {"cell", TokKind::KwCell},
      {"size", TokKind::KwSize},
      {"delay", TokKind::KwDelay},
      {"and", TokKind::KwAnd},
      {"or", TokKind::KwOr},
      {"not", TokKind::KwNot},
      {"sxt", TokKind::KwSxt},
      {"zxt", TokKind::KwZxt},
  };
  return table;
}

class Lexer {
 public:
  Lexer(std::string_view src, util::DiagnosticSink& diags)
      : src_(src), diags_(diags) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    for (;;) {
      skip_trivia();
      if (at_end()) {
        out.push_back(Token{TokKind::Eof, "", 0, loc()});
        return out;
      }
      out.push_back(next_token());
    }
  }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  [[nodiscard]] util::SourceLoc loc() const { return {line_, col_}; }

  void skip_trivia() {
    for (;;) {
      if (at_end()) return;
      char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
        continue;
      }
      if (c == '-' && peek(1) == '-') {
        while (!at_end() && peek() != '\n') advance();
        continue;
      }
      return;
    }
  }

  Token next_token() {
    util::SourceLoc start = loc();
    char c = peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
      return ident_or_keyword(start);
    if (std::isdigit(static_cast<unsigned char>(c))) return number(start);
    advance();
    auto tok = [&](TokKind k) { return Token{k, std::string(1, c), 0, start}; };
    switch (c) {
      case '(': return tok(TokKind::LParen);
      case ')': return tok(TokKind::RParen);
      case '[': return tok(TokKind::LBracket);
      case ']': return tok(TokKind::RBracket);
      case ';': return tok(TokKind::Semi);
      case ',': return tok(TokKind::Comma);
      case '.': return tok(TokKind::Dot);
      case '&': return tok(TokKind::Amp);
      case '|': return tok(TokKind::Pipe);
      case '^': return tok(TokKind::Caret);
      case '~': return tok(TokKind::Tilde);
      case '+': return tok(TokKind::Plus);
      case '-': return tok(TokKind::Minus);
      case '*': return tok(TokKind::Star);
      case '=': return tok(TokKind::Eq);
      case ':':
        if (peek() == '=') {
          advance();
          return Token{TokKind::Assign, ":=", 0, start};
        }
        return tok(TokKind::Colon);
      case '/':
        if (peek() == '=') {
          advance();
          return Token{TokKind::Neq, "/=", 0, start};
        }
        return tok(TokKind::Slash);
      case '<':
        if (peek() == '<') {
          advance();
          return Token{TokKind::Shl, "<<", 0, start};
        }
        break;
      case '>':
        if (peek() == '>') {
          advance();
          return Token{TokKind::Shr, ">>", 0, start};
        }
        break;
      default:
        break;
    }
    diags_.error(start, util::fmt("unexpected character '{}'", c));
    return Token{TokKind::Error, std::string(1, c), 0, start};
  }

  Token ident_or_keyword(util::SourceLoc start) {
    std::string text;
    while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                         peek() == '_'))
      text.push_back(advance());
    auto it = keyword_table().find(util::to_lower(text));
    if (it != keyword_table().end())
      return Token{it->second, std::move(text), 0, start};
    return Token{TokKind::Ident, std::move(text), 0, start};
  }

  Token number(util::SourceLoc start) {
    std::string text;
    // Accept 0x / 0b prefixes.
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X' || peek(1) == 'b' ||
                          peek(1) == 'B')) {
      text.push_back(advance());
      text.push_back(advance());
    }
    while (!at_end() &&
           std::isxdigit(static_cast<unsigned char>(peek())))
      text.push_back(advance());
    auto value = util::parse_int(text);
    if (!value) {
      diags_.error(start, util::fmt("malformed integer literal '{}'", text));
      return Token{TokKind::Error, std::move(text), 0, start};
    }
    return Token{TokKind::Int, std::move(text), *value, start};
  }

  std::string_view src_;
  util::DiagnosticSink& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view source, util::DiagnosticSink& diags) {
  return Lexer(source, diags).run();
}

}  // namespace record::hdl
