// Semantic checking of parsed HDL processor models.
//
// `check_model` validates everything elaboration and instruction-set
// extraction rely on: name uniqueness, port classes, width agreement of
// connections, single-driver rules for wires, guarded drivers for buses,
// exactly one instantiated controller, well-formed behaviours (targets are
// OUT ports, CELL accesses only in memories, guards reference declared
// signals, comparison constants fit their signal widths).
#pragma once

#include "hdl/ast.h"
#include "util/diagnostics.h"

namespace record::hdl {

/// Returns true if the model passed all checks (diags.ok()).
/// Warnings (e.g. undriven input ports) do not fail the check.
bool check_model(const ProcessorModel& model, util::DiagnosticSink& diags);

}  // namespace record::hdl
