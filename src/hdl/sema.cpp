#include "hdl/sema.h"

#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "util/strings.h"

namespace record::hdl {

namespace {

using util::DiagnosticSink;
using util::fmt;

class Checker {
 public:
  Checker(const ProcessorModel& model, DiagnosticSink& diags)
      : model_(model), diags_(diags) {}

  bool run() {
    check_module_decls();
    check_proc_ports();
    check_parts();
    check_buses();
    check_connections();
    check_coverage();
    return diags_.ok();
  }

 private:
  // --- module declarations ---------------------------------------------------

  void check_module_decls() {
    std::unordered_set<std::string> names;
    for (const ModuleDecl& m : model_.modules) {
      if (!names.insert(m.name).second)
        diags_.error(m.loc, fmt("duplicate module name '{}'", m.name));
      check_module(m);
    }
  }

  void check_module(const ModuleDecl& m) {
    std::unordered_set<std::string> port_names;
    int out_ports = 0;
    for (const PortDecl& p : m.ports) {
      if (!port_names.insert(p.name).second)
        diags_.error(p.loc, fmt("duplicate port '{}' in module '{}'", p.name,
                                m.name));
      if (p.range.lsb != 0)
        diags_.error(p.loc,
                     fmt("port '{}' of '{}': port ranges must be (w-1:0)",
                         p.name, m.name));
      if (p.cls == PortClass::Out) ++out_ports;
    }

    switch (m.kind) {
      case ModuleKind::Controller:
        if (out_ports != 1 || m.ports.size() != 1)
          diags_.error(m.loc, fmt("controller '{}' must have exactly one OUT "
                                  "port and no other ports",
                                  m.name));
        if (!m.transfers.empty())
          diags_.error(m.loc,
                       fmt("controller '{}' must not have a behaviour",
                           m.name));
        break;
      case ModuleKind::Register:
      case ModuleKind::ModeReg:
        if (out_ports != 1)
          diags_.error(m.loc, fmt("register '{}' must have exactly one OUT "
                                  "port",
                                  m.name));
        if (m.transfers.empty())
          diags_.error(m.loc, fmt("register '{}' needs at least one transfer",
                                  m.name));
        break;
      case ModuleKind::Memory:
        if (m.mem_size <= 0)
          diags_.error(m.loc,
                       fmt("memory '{}' needs a positive SIZE", m.name));
        if (out_ports < 1)
          diags_.warning(m.loc, fmt("memory '{}' has no read port", m.name));
        break;
      case ModuleKind::Combinational:
        if (m.mem_size != 0)
          diags_.error(m.loc, fmt("SIZE is only allowed on MEMORY modules"));
        break;
    }

    if (m.write_delay != 0) {
      if (m.kind != ModuleKind::Register)
        diags_.error(m.loc,
                     fmt("DELAY is only allowed on REGISTER modules ('{}')",
                         m.name));
      else if (m.write_delay < 0 || m.write_delay > 2)
        diags_.error(m.loc, fmt("register '{}': DELAY must be 0..2", m.name));
    }

    for (const Transfer& t : m.transfers) check_transfer(m, t);
  }

  void check_transfer(const ModuleDecl& m, const Transfer& t) {
    if (t.is_cell_write()) {
      if (m.kind != ModuleKind::Memory) {
        diags_.error(t.loc, fmt("CELL write outside MEMORY module '{}'",
                                m.name));
        return;
      }
      check_expr(m, *t.cell_addr);
    } else {
      const PortDecl* target = m.find_port(t.target_port);
      if (!target) {
        diags_.error(t.loc, fmt("transfer target '{}' is not a port of '{}'",
                                t.target_port, m.name));
        return;
      }
      if (target->cls != PortClass::Out)
        diags_.error(t.loc, fmt("transfer target '{}.{}' must be an OUT port",
                                m.name, t.target_port));
    }
    check_expr(m, *t.rhs);
    if (t.guard) check_behaviour_guard(m, *t.guard);
  }

  void check_expr(const ModuleDecl& m, const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::PortRef: {
        const PortDecl* p = m.find_port(e.name);
        if (!p) {
          diags_.error(e.loc, fmt("'{}' is not a port of module '{}'", e.name,
                                  m.name));
          return;
        }
        // OUT ports may be read only in sequential modules (self reference,
        // e.g. q := q + 1 in post-modify address registers).
        if (p->cls == PortClass::Out && m.kind == ModuleKind::Combinational)
          diags_.error(e.loc,
                       fmt("combinational module '{}' reads its own output "
                           "'{}'",
                           m.name, e.name));
        break;
      }
      case Expr::Kind::CellRead:
        if (m.kind != ModuleKind::Memory)
          diags_.error(e.loc,
                       fmt("CELL read outside MEMORY module '{}'", m.name));
        check_expr(m, *e.args[0]);
        break;
      case Expr::Kind::Const:
        break;
      case Expr::Kind::Slice: {
        check_expr(m, *e.args[0]);
        if (e.args[0]->kind == Expr::Kind::PortRef) {
          const PortDecl* p = m.find_port(e.args[0]->name);
          if (p && e.slice.msb > p->range.msb)
            diags_.error(e.loc, fmt("slice ({}:{}) exceeds width of port '{}'",
                                    e.slice.msb, e.slice.lsb,
                                    e.args[0]->name));
        } else {
          diags_.error(e.loc, "slices are only allowed on port references");
        }
        break;
      }
      case Expr::Kind::Unary:
      case Expr::Kind::Binary:
      case Expr::Kind::Call:
        for (const ExprPtr& a : e.args) check_expr(m, *a);
        break;
    }
  }

  void check_behaviour_guard(const ModuleDecl& m, const Cond& c) {
    switch (c.kind) {
      case Cond::Kind::True:
        return;
      case Cond::Kind::Cmp: {
        if (!c.inst.empty()) {
          diags_.error(c.loc,
                       fmt("behaviour guard in '{}' must reference local "
                           "ports, not '{}.{}'",
                           m.name, c.inst, c.port));
          return;
        }
        const PortDecl* p = m.find_port(c.port);
        if (!p) {
          diags_.error(c.loc, fmt("guard references unknown port '{}' of '{}'",
                                  c.port, m.name));
          return;
        }
        if (p->cls == PortClass::Out && m.kind == ModuleKind::Combinational)
          diags_.error(c.loc,
                       fmt("guard in combinational '{}' references output "
                           "'{}'",
                           m.name, c.port));
        int width = c.has_slice ? c.slice.width() : p->range.width();
        if (c.has_slice && c.slice.msb > p->range.msb)
          diags_.error(c.loc, fmt("guard slice exceeds width of '{}'", c.port));
        if (width < 63 && c.value >= (std::int64_t{1} << width))
          diags_.error(c.loc,
                       fmt("guard constant {} does not fit in {} bits",
                           c.value, width));
        return;
      }
      case Cond::Kind::And:
      case Cond::Kind::Or:
      case Cond::Kind::Not:
        for (const CondPtr& a : c.args) check_behaviour_guard(m, *a);
        return;
    }
  }

  // --- top-level declarations -----------------------------------------------

  void check_proc_ports() {
    std::unordered_set<std::string> names;
    for (const ProcPortDecl& p : model_.proc_ports) {
      if (!names.insert(p.name).second)
        diags_.error(p.loc, fmt("duplicate processor port '{}'", p.name));
      if (p.range.lsb != 0)
        diags_.error(p.loc, fmt("processor port '{}' range must be (w-1:0)",
                                p.name));
    }
  }

  void check_parts() {
    std::unordered_set<std::string> names;
    int controllers = 0;
    for (const PartDecl& part : model_.parts) {
      if (!names.insert(part.inst_name).second)
        diags_.error(part.loc,
                     fmt("duplicate part name '{}'", part.inst_name));
      if (model_.find_proc_port(part.inst_name))
        diags_.error(part.loc, fmt("part '{}' collides with a processor port",
                                   part.inst_name));
      const ModuleDecl* m = model_.find_module(part.module_name);
      if (!m) {
        diags_.error(part.loc, fmt("part '{}' instantiates unknown module "
                                   "'{}'",
                                   part.inst_name, part.module_name));
        continue;
      }
      if (m->kind == ModuleKind::Controller) ++controllers;
    }
    if (controllers != 1)
      diags_.error({}, fmt("model must instantiate exactly one CONTROLLER "
                           "(found {})",
                           controllers));
  }

  void check_buses() {
    std::unordered_set<std::string> names;
    for (const BusDecl& b : model_.buses) {
      if (!names.insert(b.name).second)
        diags_.error(b.loc, fmt("duplicate bus '{}'", b.name));
      if (model_.find_part(b.name) || model_.find_proc_port(b.name))
        diags_.error(b.loc,
                     fmt("bus '{}' collides with another declaration",
                         b.name));
      if (b.range.lsb != 0)
        diags_.error(b.loc, fmt("bus '{}' range must be (w-1:0)", b.name));
    }
  }

  // Resolves the width of a connection source; -1 on error (already
  // reported).
  int source_width(const SourceRef& src) {
    if (src.kind == SourceRef::Kind::Const) return -2;  // any width
    int full_width = -1;
    if (!src.inst.empty()) {
      const PartDecl* part = model_.find_part(src.inst);
      if (!part) {
        diags_.error(src.loc, fmt("unknown part '{}'", src.inst));
        return -1;
      }
      const ModuleDecl* m = model_.find_module(part->module_name);
      const PortDecl* p = m ? m->find_port(src.port) : nullptr;
      if (!p) {
        diags_.error(src.loc,
                     fmt("'{}' has no port '{}'", src.inst, src.port));
        return -1;
      }
      if (p->cls != PortClass::Out) {
        diags_.error(src.loc, fmt("connection source '{}.{}' must be an OUT "
                                  "port",
                                  src.inst, src.port));
        return -1;
      }
      full_width = p->range.width();
    } else if (const ProcPortDecl* pp = model_.find_proc_port(src.port)) {
      if (!pp->is_input) {
        diags_.error(src.loc,
                     fmt("primary output '{}' used as a source", src.port));
        return -1;
      }
      full_width = pp->range.width();
    } else if (const BusDecl* bus = model_.find_bus(src.port)) {
      full_width = bus->range.width();
    } else {
      diags_.error(src.loc, fmt("unknown connection source '{}'", src.port));
      return -1;
    }
    if (src.has_slice) {
      if (src.slice.msb >= full_width) {
        diags_.error(src.loc, fmt("slice ({}:{}) exceeds source width {}",
                                  src.slice.msb, src.slice.lsb, full_width));
        return -1;
      }
      return src.slice.width();
    }
    return full_width;
  }

  void check_structural_guard(const Cond& c) {
    switch (c.kind) {
      case Cond::Kind::True:
        return;
      case Cond::Kind::Cmp: {
        int width = -1;
        if (!c.inst.empty()) {
          const PartDecl* part = model_.find_part(c.inst);
          const ModuleDecl* m =
              part ? model_.find_module(part->module_name) : nullptr;
          const PortDecl* p = m ? m->find_port(c.port) : nullptr;
          if (!p) {
            diags_.error(c.loc, fmt("guard references unknown signal '{}.{}'",
                                    c.inst, c.port));
            return;
          }
          if (p->cls != PortClass::Out) {
            diags_.error(c.loc,
                         fmt("structural guard source '{}.{}' must be an OUT "
                             "port",
                             c.inst, c.port));
            return;
          }
          width = p->range.width();
        } else {
          diags_.error(c.loc, fmt("structural guard must reference "
                                  "'instance.port', got '{}'",
                                  c.port));
          return;
        }
        if (c.has_slice) {
          if (c.slice.msb >= width) {
            diags_.error(c.loc, "guard slice exceeds signal width");
            return;
          }
          width = c.slice.width();
        }
        if (width < 63 && c.value >= (std::int64_t{1} << width))
          diags_.error(c.loc, fmt("guard constant {} does not fit in {} bits",
                                  c.value, width));
        return;
      }
      case Cond::Kind::And:
      case Cond::Kind::Or:
      case Cond::Kind::Not:
        for (const CondPtr& a : c.args) check_structural_guard(*a);
        return;
    }
  }

  void check_connections() {
    std::unordered_map<std::string, int> wire_driver_count;
    for (const Connection& c : model_.connections) {
      int target_width = -1;
      bool is_bus_target = false;

      if (!c.target_inst.empty()) {
        const PartDecl* part = model_.find_part(c.target_inst);
        const ModuleDecl* m =
            part ? model_.find_module(part->module_name) : nullptr;
        const PortDecl* p = m ? m->find_port(c.target_port) : nullptr;
        if (!p) {
          diags_.error(c.loc, fmt("unknown connection target '{}.{}'",
                                  c.target_inst, c.target_port));
          continue;
        }
        if (p->cls == PortClass::Out) {
          diags_.error(c.loc, fmt("cannot drive OUT port '{}.{}'",
                                  c.target_inst, c.target_port));
          continue;
        }
        target_width = p->range.width();
        ++wire_driver_count[c.target_inst + "." + c.target_port];
      } else if (const ProcPortDecl* pp =
                     model_.find_proc_port(c.target_port)) {
        if (pp->is_input) {
          diags_.error(c.loc, fmt("cannot drive primary input '{}'",
                                  c.target_port));
          continue;
        }
        target_width = pp->range.width();
        ++wire_driver_count["@" + c.target_port];
      } else if (const BusDecl* bus = model_.find_bus(c.target_port)) {
        target_width = bus->range.width();
        is_bus_target = true;
      } else {
        diags_.error(c.loc,
                     fmt("unknown connection target '{}'", c.target_port));
        continue;
      }

      if (c.guard && !is_bus_target)
        diags_.error(c.loc, "WHEN guards are only allowed on bus drivers");
      if (c.guard) check_structural_guard(*c.guard);

      int sw = source_width(c.source);
      if (sw >= 0 && target_width >= 0 && sw != target_width)
        diags_.error(c.loc, fmt("width mismatch: target is {} bits, source "
                                "is {} bits",
                                target_width, sw));
      // Source referencing a bus as a bus driver's source is disallowed
      // (no bus-to-bus bridges; keeps route enumeration simple).
      if (is_bus_target && c.source.kind == SourceRef::Kind::PortRef &&
          c.source.inst.empty() && model_.find_bus(c.source.port))
        diags_.error(c.loc, "bus-to-bus connections are not supported");
    }

    for (const auto& [target, count] : wire_driver_count) {
      if (count > 1)
        diags_.error({}, fmt("'{}' has {} drivers; non-bus targets must have "
                             "exactly one",
                             target, count));
    }

    // Every declared bus needs at least one driver.
    for (const BusDecl& b : model_.buses) {
      bool driven = false;
      int guarded = 0, total = 0;
      for (const Connection& c : model_.connections) {
        if (c.target_inst.empty() && c.target_port == b.name) {
          driven = true;
          ++total;
          if (c.guard) ++guarded;
        }
      }
      if (!driven)
        diags_.warning(b.loc, fmt("bus '{}' has no drivers", b.name));
      if (total > 1 && guarded != total)
        diags_.error(b.loc, fmt("bus '{}' has multiple drivers; all of them "
                                "need WHEN guards",
                                b.name));
    }
  }

  // Warn about input/control ports nothing drives: routes through them can
  // never be found, which is usually a model bug.
  void check_coverage() {
    std::unordered_set<std::string> driven;
    for (const Connection& c : model_.connections)
      if (!c.target_inst.empty())
        driven.insert(c.target_inst + "." + c.target_port);
    for (const PartDecl& part : model_.parts) {
      const ModuleDecl* m = model_.find_module(part.module_name);
      if (!m) continue;
      for (const PortDecl& p : m->ports) {
        if (p.cls == PortClass::Out) continue;
        std::string key = part.inst_name + "." + p.name;
        if (!driven.count(key))
          diags_.warning(part.loc,
                         fmt("port '{}' is not driven by any connection",
                             key));
      }
    }
  }

  const ProcessorModel& model_;
  DiagnosticSink& diags_;
};

}  // namespace

bool check_model(const ProcessorModel& model, util::DiagnosticSink& diags) {
  return Checker(model, diags).run();
}

}  // namespace record::hdl
