// Abstract syntax for the MIMOLA-inspired processor-description HDL.
//
// The paper's RECORD compiler reads MIMOLA V4.1 netlist models: a processor
// is a set of module instances whose I/O ports are interconnected by wires or
// tristate buses, and each module's behaviour is a set of guarded concurrent
// assignments to its output ports (or memory cells). This header defines an
// HDL with the same modelling power. Concrete syntax:
//
//   -- line comment
//   PROCESSOR simple;
//
//   MODULE alu (IN a:(15:0); IN b:(15:0); OUT y:(15:0); CTRL f:(1:0));
//   BEHAVIOR
//     y := a + b WHEN f = 0;
//     y := a - b WHEN f = 1;
//     y := a     WHEN f = 2;
//   END;
//
//   REGISTER acc (IN d:(15:0); OUT q:(15:0); CTRL ld:(0:0));
//   BEHAVIOR
//     q := d WHEN ld = 1;
//   END;
//
//   MEMORY ram (IN addr:(7:0); IN din:(15:0); OUT dout:(15:0);
//               CTRL we:(0:0)) SIZE 256;
//   BEHAVIOR
//     dout := CELL[addr];
//     CELL[addr] := din WHEN we = 1;
//   END;
//
//   CONTROLLER im (OUT word:(15:0));     -- instruction-word source
//
//   PORT pin: IN (15:0);                 -- primary processor ports
//   PORT pout: OUT (15:0);
//
//   STRUCTURE
//   PARTS
//     ALU: alu;  ACC: acc;  RAM: ram;  IM: im;
//   BUS dbus: (15:0);
//   CONNECTIONS
//     dbus    := RAM.dout WHEN IM.word(15:15) = 1;  -- tristate driver
//     dbus    := pin      WHEN IM.word(15:15) = 0;
//     ALU.a   := ACC.q;
//     ALU.b   := dbus;
//     ALU.f   := IM.word(14:13);
//     ACC.d   := ALU.y;
//     ACC.ld  := IM.word(12:12);
//     RAM.addr:= IM.word(7:0);
//     pout    := ACC.q;
//   END;
//
// Module kinds:
//   MODULE      combinational (ALUs, muxes, shifters, decoders, ...)
//   REGISTER    sequential, single storage cell; may have self-referencing
//               transfers (e.g. q := q + 1 for post-modify address registers)
//   MEMORY      addressable storage (also used for register files)
//   MODEREG     mode/configuration register; its output bits become
//               mode-register variables in execution conditions
//   CONTROLLER  the instruction-memory; its single OUT port is the
//               instruction word, whose bits are the primary control source
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/diagnostics.h"

namespace record::hdl {

using util::SourceLoc;

/// Inclusive bit-range `(msb:lsb)` with msb >= lsb >= 0.
struct BitRange {
  int msb = 0;
  int lsb = 0;

  [[nodiscard]] int width() const { return msb - lsb + 1; }
  friend bool operator==(const BitRange&, const BitRange&) = default;
};

enum class PortClass : std::uint8_t { In, Out, Ctrl };

[[nodiscard]] std::string_view to_string(PortClass c);

struct PortDecl {
  std::string name;
  PortClass cls = PortClass::In;
  BitRange range;
  SourceLoc loc;
};

/// Hardware operators that may appear in module behaviours. `Custom` covers
/// user-named opaque functions (e.g. saturation or rounding units) written
/// as calls: `RND(x)`.
enum class OpKind : std::uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Neg,
  Not,
  Sxt,   // sign extend to target width
  Zxt,   // zero extend to target width
  Custom
};

[[nodiscard]] std::string_view to_string(OpKind op);

/// True for ops where op(a, b) == op(b, a); used by template extension.
[[nodiscard]] bool is_commutative(OpKind op);

/// Number of operands (Custom resolved by call-site arity).
[[nodiscard]] int arity(OpKind op);

// --- expressions ------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind : std::uint8_t {
    PortRef,   // `name`         reference to a module port
    CellRead,  // `CELL[addr]`   memory-cell read (MEMORY modules only)
    Const,     // integer literal
    Unary,     // op(args[0])
    Binary,    // op(args[0], args[1])
    Slice,     // args[0](msb:lsb), args[0] is a PortRef
    Call       // custom op: name(args...)
  };

  Kind kind = Kind::Const;
  SourceLoc loc;
  std::string name;         // PortRef / Call
  std::int64_t value = 0;   // Const
  OpKind op = OpKind::Add;  // Unary / Binary / Call(=Custom)
  BitRange slice;           // Slice
  std::vector<ExprPtr> args;

  [[nodiscard]] ExprPtr clone() const;
};

[[nodiscard]] ExprPtr make_port_ref(std::string name, SourceLoc loc = {});
[[nodiscard]] ExprPtr make_const(std::int64_t value, SourceLoc loc = {});
[[nodiscard]] ExprPtr make_unary(OpKind op, ExprPtr a, SourceLoc loc = {});
[[nodiscard]] ExprPtr make_binary(OpKind op, ExprPtr a, ExprPtr b,
                                  SourceLoc loc = {});
[[nodiscard]] ExprPtr make_cell_read(ExprPtr addr, SourceLoc loc = {});
[[nodiscard]] ExprPtr make_slice(ExprPtr port_ref, BitRange r,
                                 SourceLoc loc = {});
[[nodiscard]] ExprPtr make_call(std::string name, std::vector<ExprPtr> args,
                                SourceLoc loc = {});

/// Stable textual dump (for tests and template pretty-printing).
[[nodiscard]] std::string to_string(const Expr& e);

// --- guard conditions ---------------------------------------------------------

struct Cond;
using CondPtr = std::unique_ptr<Cond>;

/// Guard grammar: atom := ref `=` INT | ref `/=` INT | `(` cond `)` ;
/// cond := atom { AND atom } { OR atom } ; NOT atom.
/// `ref` is a local CTRL-port name in module behaviours, or `inst.port`
/// (optionally sliced) in structural bus-driver guards.
struct Cond {
  enum class Kind : std::uint8_t { Cmp, And, Or, Not, True };

  Kind kind = Kind::True;
  SourceLoc loc;
  // Cmp payload:
  std::string inst;   // empty in module-behaviour guards
  std::string port;
  bool has_slice = false;
  BitRange slice;
  std::int64_t value = 0;
  bool neq = false;  // true for `/=`
  std::vector<CondPtr> args;  // And/Or/Not children

  [[nodiscard]] CondPtr clone() const;
};

[[nodiscard]] CondPtr make_true_cond();
[[nodiscard]] CondPtr make_cmp(std::string inst, std::string port,
                               std::int64_t value, bool neq = false,
                               SourceLoc loc = {});
[[nodiscard]] std::string to_string(const Cond& c);

// --- module behaviour ----------------------------------------------------------

/// One guarded concurrent assignment. Either a port transfer
/// (`target_port := rhs WHEN guard`) or a cell write
/// (`CELL[cell_addr] := rhs WHEN guard`; target_port empty).
struct Transfer {
  std::string target_port;  // empty for cell writes
  ExprPtr cell_addr;        // non-null for cell writes
  ExprPtr rhs;
  CondPtr guard;  // null = unconditional
  SourceLoc loc;

  [[nodiscard]] bool is_cell_write() const { return cell_addr != nullptr; }
};

enum class ModuleKind : std::uint8_t {
  Combinational,
  Register,
  Memory,
  ModeReg,
  Controller
};

[[nodiscard]] std::string_view to_string(ModuleKind k);

struct ModuleDecl {
  std::string name;
  ModuleKind kind = ModuleKind::Combinational;
  std::vector<PortDecl> ports;
  std::vector<Transfer> transfers;
  std::int64_t mem_size = 0;  // MEMORY only
  /// REGISTER only: writes land this many cycles late. Declared as
  /// `REGISTER pc (...) DELAY 1;` on the program counter it models
  /// architectural branch delay slots — the words following a branch
  /// execute before the PC write takes effect.
  int write_delay = 0;
  SourceLoc loc;

  [[nodiscard]] const PortDecl* find_port(std::string_view port_name) const;
};

// --- structure ----------------------------------------------------------------

struct PartDecl {
  std::string inst_name;
  std::string module_name;
  SourceLoc loc;
};

struct BusDecl {
  std::string name;
  BitRange range;
  SourceLoc loc;
};

/// A connection source operand: `inst.port`, a bare top-level name (primary
/// port or bus), or an integer constant; with an optional bit-slice.
struct SourceRef {
  enum class Kind : std::uint8_t { PortRef, Const };

  Kind kind = Kind::PortRef;
  std::string inst;  // empty for primary ports / buses
  std::string port;
  std::int64_t value = 0;  // Const
  bool has_slice = false;
  BitRange slice;
  SourceLoc loc;
};

/// `target := source [WHEN guard];` — target is `inst.port`, a primary OUT
/// port, or a bus name (then guard is the tristate enable).
struct Connection {
  std::string target_inst;  // empty for primary ports / buses
  std::string target_port;
  SourceRef source;
  CondPtr guard;  // non-null only for bus drivers
  SourceLoc loc;
};

struct ProcPortDecl {
  std::string name;
  bool is_input = true;
  BitRange range;
  SourceLoc loc;
};

/// Root of a parsed HDL processor model.
struct ProcessorModel {
  std::string name;
  std::vector<ModuleDecl> modules;
  std::vector<ProcPortDecl> proc_ports;
  std::vector<PartDecl> parts;
  std::vector<BusDecl> buses;
  std::vector<Connection> connections;

  [[nodiscard]] const ModuleDecl* find_module(std::string_view name) const;
  [[nodiscard]] const PartDecl* find_part(std::string_view inst) const;
  [[nodiscard]] const BusDecl* find_bus(std::string_view name) const;
  [[nodiscard]] const ProcPortDecl* find_proc_port(std::string_view name) const;
};

}  // namespace record::hdl
