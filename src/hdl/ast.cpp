#include "hdl/ast.h"

#include <sstream>

namespace record::hdl {

std::string_view to_string(PortClass c) {
  switch (c) {
    case PortClass::In:
      return "IN";
    case PortClass::Out:
      return "OUT";
    case PortClass::Ctrl:
      return "CTRL";
  }
  return "?";
}

std::string_view to_string(OpKind op) {
  switch (op) {
    case OpKind::Add:
      return "+";
    case OpKind::Sub:
      return "-";
    case OpKind::Mul:
      return "*";
    case OpKind::Div:
      return "/";
    case OpKind::And:
      return "&";
    case OpKind::Or:
      return "|";
    case OpKind::Xor:
      return "^";
    case OpKind::Shl:
      return "<<";
    case OpKind::Shr:
      return ">>";
    case OpKind::Neg:
      return "neg";
    case OpKind::Not:
      return "~";
    case OpKind::Sxt:
      return "SXT";
    case OpKind::Zxt:
      return "ZXT";
    case OpKind::Custom:
      return "custom";
  }
  return "?";
}

bool is_commutative(OpKind op) {
  switch (op) {
    case OpKind::Add:
    case OpKind::Mul:
    case OpKind::And:
    case OpKind::Or:
    case OpKind::Xor:
      return true;
    default:
      return false;
  }
}

int arity(OpKind op) {
  switch (op) {
    case OpKind::Neg:
    case OpKind::Not:
    case OpKind::Sxt:
    case OpKind::Zxt:
      return 1;
    case OpKind::Custom:
      return -1;  // call-site arity
    default:
      return 2;
  }
}

ExprPtr Expr::clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->loc = loc;
  out->name = name;
  out->value = value;
  out->op = op;
  out->slice = slice;
  out->args.reserve(args.size());
  for (const ExprPtr& a : args) out->args.push_back(a->clone());
  return out;
}

ExprPtr make_port_ref(std::string name, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::PortRef;
  e->name = std::move(name);
  e->loc = loc;
  return e;
}

ExprPtr make_const(std::int64_t value, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Const;
  e->value = value;
  e->loc = loc;
  return e;
}

ExprPtr make_unary(OpKind op, ExprPtr a, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Unary;
  e->op = op;
  e->args.push_back(std::move(a));
  e->loc = loc;
  return e;
}

ExprPtr make_binary(OpKind op, ExprPtr a, ExprPtr b, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Binary;
  e->op = op;
  e->args.push_back(std::move(a));
  e->args.push_back(std::move(b));
  e->loc = loc;
  return e;
}

ExprPtr make_cell_read(ExprPtr addr, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::CellRead;
  e->args.push_back(std::move(addr));
  e->loc = loc;
  return e;
}

ExprPtr make_slice(ExprPtr port_ref, BitRange r, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Slice;
  e->slice = r;
  e->args.push_back(std::move(port_ref));
  e->loc = loc;
  return e;
}

ExprPtr make_call(std::string name, std::vector<ExprPtr> args, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Call;
  e->op = OpKind::Custom;
  e->name = std::move(name);
  e->args = std::move(args);
  e->loc = loc;
  return e;
}

std::string to_string(const Expr& e) {
  std::ostringstream os;
  switch (e.kind) {
    case Expr::Kind::PortRef:
      os << e.name;
      break;
    case Expr::Kind::Const:
      os << e.value;
      break;
    case Expr::Kind::CellRead:
      os << "CELL[" << to_string(*e.args[0]) << ']';
      break;
    case Expr::Kind::Unary:
      if (e.op == OpKind::Sxt || e.op == OpKind::Zxt)
        os << to_string(e.op) << '(' << to_string(*e.args[0]) << ')';
      else
        os << (e.op == OpKind::Neg ? "-" : "~") << '('
           << to_string(*e.args[0]) << ')';
      break;
    case Expr::Kind::Binary:
      os << '(' << to_string(*e.args[0]) << ' ' << to_string(e.op) << ' '
         << to_string(*e.args[1]) << ')';
      break;
    case Expr::Kind::Slice:
      os << to_string(*e.args[0]) << '(' << e.slice.msb << ':' << e.slice.lsb
         << ')';
      break;
    case Expr::Kind::Call: {
      os << e.name << '(';
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i) os << ", ";
        os << to_string(*e.args[i]);
      }
      os << ')';
      break;
    }
  }
  return os.str();
}

CondPtr Cond::clone() const {
  auto out = std::make_unique<Cond>();
  out->kind = kind;
  out->loc = loc;
  out->inst = inst;
  out->port = port;
  out->has_slice = has_slice;
  out->slice = slice;
  out->value = value;
  out->neq = neq;
  out->args.reserve(args.size());
  for (const CondPtr& a : args) out->args.push_back(a->clone());
  return out;
}

CondPtr make_true_cond() {
  auto c = std::make_unique<Cond>();
  c->kind = Cond::Kind::True;
  return c;
}

CondPtr make_cmp(std::string inst, std::string port, std::int64_t value,
                 bool neq, SourceLoc loc) {
  auto c = std::make_unique<Cond>();
  c->kind = Cond::Kind::Cmp;
  c->inst = std::move(inst);
  c->port = std::move(port);
  c->value = value;
  c->neq = neq;
  c->loc = loc;
  return c;
}

std::string to_string(const Cond& c) {
  std::ostringstream os;
  switch (c.kind) {
    case Cond::Kind::True:
      os << "TRUE";
      break;
    case Cond::Kind::Cmp:
      if (!c.inst.empty()) os << c.inst << '.';
      os << c.port;
      if (c.has_slice) os << '(' << c.slice.msb << ':' << c.slice.lsb << ')';
      os << (c.neq ? " /= " : " = ") << c.value;
      break;
    case Cond::Kind::And:
    case Cond::Kind::Or: {
      os << '(';
      for (std::size_t i = 0; i < c.args.size(); ++i) {
        if (i) os << (c.kind == Cond::Kind::And ? " AND " : " OR ");
        os << to_string(*c.args[i]);
      }
      os << ')';
      break;
    }
    case Cond::Kind::Not:
      os << "NOT (" << to_string(*c.args[0]) << ')';
      break;
  }
  return os.str();
}

std::string_view to_string(ModuleKind k) {
  switch (k) {
    case ModuleKind::Combinational:
      return "MODULE";
    case ModuleKind::Register:
      return "REGISTER";
    case ModuleKind::Memory:
      return "MEMORY";
    case ModuleKind::ModeReg:
      return "MODEREG";
    case ModuleKind::Controller:
      return "CONTROLLER";
  }
  return "?";
}

const PortDecl* ModuleDecl::find_port(std::string_view port_name) const {
  for (const PortDecl& p : ports)
    if (p.name == port_name) return &p;
  return nullptr;
}

const ModuleDecl* ProcessorModel::find_module(std::string_view n) const {
  for (const ModuleDecl& m : modules)
    if (m.name == n) return &m;
  return nullptr;
}

const PartDecl* ProcessorModel::find_part(std::string_view inst) const {
  for (const PartDecl& p : parts)
    if (p.inst_name == inst) return &p;
  return nullptr;
}

const BusDecl* ProcessorModel::find_bus(std::string_view n) const {
  for (const BusDecl& b : buses)
    if (b.name == n) return &b;
  return nullptr;
}

const ProcPortDecl* ProcessorModel::find_proc_port(std::string_view n) const {
  for (const ProcPortDecl& p : proc_ports)
    if (p.name == n) return &p;
  return nullptr;
}

}  // namespace record::hdl
