#include "hdl/parser.h"

#include <utility>

#include "hdl/lexer.h"
#include "util/strings.h"

namespace record::hdl {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, util::DiagnosticSink& diags)
      : toks_(std::move(tokens)), diags_(diags) {}

  std::optional<ProcessorModel> run() {
    ProcessorModel model;
    if (!expect(TokKind::KwProcessor, "a model must start with PROCESSOR"))
      return std::nullopt;
    Token name = cur();
    if (!expect(TokKind::Ident, "processor name")) return std::nullopt;
    model.name = name.text;
    if (!expect(TokKind::Semi, "';' after processor name"))
      return std::nullopt;

    while (!at(TokKind::Eof)) {
      switch (cur().kind) {
        case TokKind::KwModule:
        case TokKind::KwRegister:
        case TokKind::KwMemory:
        case TokKind::KwModeReg:
        case TokKind::KwController:
          if (!parse_module(model)) return std::nullopt;
          break;
        case TokKind::KwPort:
          if (!parse_proc_port(model)) return std::nullopt;
          break;
        case TokKind::KwStructure:
          if (!parse_structure(model)) return std::nullopt;
          break;
        default:
          error(util::fmt("unexpected {} at top level", to_string(cur().kind)));
          return std::nullopt;
      }
    }
    return model;
  }

 private:
  // --- token plumbing -----------------------------------------------------

  [[nodiscard]] const Token& cur() const { return toks_[pos_]; }
  [[nodiscard]] const Token& ahead(std::size_t n) const {
    std::size_t i = pos_ + n;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  [[nodiscard]] bool at(TokKind k) const { return cur().kind == k; }

  Token take() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }

  bool accept(TokKind k) {
    if (!at(k)) return false;
    take();
    return true;
  }

  bool expect(TokKind k, std::string_view what) {
    if (accept(k)) return true;
    error(util::fmt("expected {} but found {}", what, to_string(cur().kind)));
    return false;
  }

  void error(std::string msg) { diags_.error(cur().loc, std::move(msg)); }

  // --- declarations ---------------------------------------------------------

  static ModuleKind module_kind(TokKind k) {
    switch (k) {
      case TokKind::KwRegister: return ModuleKind::Register;
      case TokKind::KwMemory: return ModuleKind::Memory;
      case TokKind::KwModeReg: return ModuleKind::ModeReg;
      case TokKind::KwController: return ModuleKind::Controller;
      default: return ModuleKind::Combinational;
    }
  }

  bool parse_range(BitRange& out) {
    if (!expect(TokKind::LParen, "'(' of a bit-range")) return false;
    Token msb = cur();
    if (!expect(TokKind::Int, "msb of bit-range")) return false;
    if (!expect(TokKind::Colon, "':' in bit-range")) return false;
    Token lsb = cur();
    if (!expect(TokKind::Int, "lsb of bit-range")) return false;
    if (!expect(TokKind::RParen, "')' of bit-range")) return false;
    out.msb = static_cast<int>(msb.value);
    out.lsb = static_cast<int>(lsb.value);
    if (out.msb < out.lsb) {
      diags_.error(msb.loc, "bit-range msb must be >= lsb");
      return false;
    }
    return true;
  }

  bool parse_module(ProcessorModel& model) {
    ModuleDecl mod;
    mod.loc = cur().loc;
    mod.kind = module_kind(take().kind);
    Token name = cur();
    if (!expect(TokKind::Ident, "module name")) return false;
    mod.name = name.text;

    if (!expect(TokKind::LParen, "'(' of port list")) return false;
    for (;;) {
      PortDecl port;
      port.loc = cur().loc;
      if (accept(TokKind::KwIn))
        port.cls = PortClass::In;
      else if (accept(TokKind::KwOut))
        port.cls = PortClass::Out;
      else if (accept(TokKind::KwCtrl))
        port.cls = PortClass::Ctrl;
      else {
        error("port declaration must start with IN, OUT or CTRL");
        return false;
      }
      Token pname = cur();
      if (!expect(TokKind::Ident, "port name")) return false;
      port.name = pname.text;
      if (!expect(TokKind::Colon, "':' before port bit-range")) return false;
      if (!parse_range(port.range)) return false;
      mod.ports.push_back(std::move(port));
      if (accept(TokKind::RParen)) break;
      if (!expect(TokKind::Semi, "';' between port declarations"))
        return false;
      if (accept(TokKind::RParen)) break;  // tolerate trailing ';'
    }

    if (accept(TokKind::KwSize)) {
      Token size = cur();
      if (!expect(TokKind::Int, "memory size")) return false;
      mod.mem_size = size.value;
    }
    if (accept(TokKind::KwDelay)) {
      Token delay = cur();
      if (!expect(TokKind::Int, "write delay in cycles")) return false;
      mod.write_delay = static_cast<int>(delay.value);
    }
    if (!expect(TokKind::Semi, "';' after module header")) return false;

    if (accept(TokKind::KwBehavior)) {
      while (!at(TokKind::KwEnd)) {
        Transfer t;
        if (!parse_transfer(t)) return false;
        mod.transfers.push_back(std::move(t));
      }
      take();  // END
      if (!expect(TokKind::Semi, "';' after behaviour END")) return false;
    }
    model.modules.push_back(std::move(mod));
    return true;
  }

  bool parse_transfer(Transfer& t) {
    t.loc = cur().loc;
    if (accept(TokKind::KwCell)) {
      if (!expect(TokKind::LBracket, "'[' of CELL write")) return false;
      t.cell_addr = parse_expr();
      if (!t.cell_addr) return false;
      if (!expect(TokKind::RBracket, "']' of CELL write")) return false;
    } else {
      Token target = cur();
      if (!expect(TokKind::Ident, "transfer target port")) return false;
      t.target_port = target.text;
    }
    if (!expect(TokKind::Assign, "':=' in transfer")) return false;
    t.rhs = parse_expr();
    if (!t.rhs) return false;
    if (accept(TokKind::KwWhen)) {
      t.guard = parse_cond();
      if (!t.guard) return false;
    }
    return expect(TokKind::Semi, "';' after transfer");
  }

  bool parse_proc_port(ProcessorModel& model) {
    ProcPortDecl p;
    p.loc = cur().loc;
    take();  // PORT
    Token name = cur();
    if (!expect(TokKind::Ident, "processor port name")) return false;
    p.name = name.text;
    if (!expect(TokKind::Colon, "':' in port declaration")) return false;
    if (accept(TokKind::KwIn))
      p.is_input = true;
    else if (accept(TokKind::KwOut))
      p.is_input = false;
    else {
      error("processor port must be IN or OUT");
      return false;
    }
    if (!parse_range(p.range)) return false;
    if (!expect(TokKind::Semi, "';' after port declaration")) return false;
    model.proc_ports.push_back(std::move(p));
    return true;
  }

  // --- structure --------------------------------------------------------------

  bool parse_structure(ProcessorModel& model) {
    take();  // STRUCTURE
    if (!expect(TokKind::KwParts, "PARTS section")) return false;
    while (at(TokKind::Ident)) {
      PartDecl part;
      part.loc = cur().loc;
      part.inst_name = take().text;
      if (!expect(TokKind::Colon, "':' in part declaration")) return false;
      Token mod = cur();
      if (!expect(TokKind::Ident, "module name in part declaration"))
        return false;
      part.module_name = mod.text;
      if (!expect(TokKind::Semi, "';' after part declaration")) return false;
      model.parts.push_back(std::move(part));
    }
    while (accept(TokKind::KwBus)) {
      BusDecl bus;
      bus.loc = cur().loc;
      Token name = cur();
      if (!expect(TokKind::Ident, "bus name")) return false;
      bus.name = name.text;
      if (!expect(TokKind::Colon, "':' in bus declaration")) return false;
      if (!parse_range(bus.range)) return false;
      if (!expect(TokKind::Semi, "';' after bus declaration")) return false;
      model.buses.push_back(std::move(bus));
    }
    if (!expect(TokKind::KwConnections, "CONNECTIONS section")) return false;
    while (!at(TokKind::KwEnd)) {
      Connection conn;
      if (!parse_connection(conn)) return false;
      model.connections.push_back(std::move(conn));
    }
    take();  // END
    return expect(TokKind::Semi, "';' after structure END");
  }

  bool parse_connection(Connection& conn) {
    conn.loc = cur().loc;
    Token first = cur();
    if (!expect(TokKind::Ident, "connection target")) return false;
    if (accept(TokKind::Dot)) {
      Token port = cur();
      if (!expect(TokKind::Ident, "port name after '.'")) return false;
      conn.target_inst = first.text;
      conn.target_port = port.text;
    } else {
      conn.target_port = first.text;  // primary port or bus
    }
    if (!expect(TokKind::Assign, "':=' in connection")) return false;
    if (!parse_source_ref(conn.source)) return false;
    if (accept(TokKind::KwWhen)) {
      conn.guard = parse_cond();
      if (!conn.guard) return false;
    }
    return expect(TokKind::Semi, "';' after connection");
  }

  bool parse_source_ref(SourceRef& src) {
    src.loc = cur().loc;
    if (at(TokKind::Int)) {
      src.kind = SourceRef::Kind::Const;
      src.value = take().value;
      return true;
    }
    Token first = cur();
    if (!expect(TokKind::Ident, "connection source")) return false;
    src.kind = SourceRef::Kind::PortRef;
    if (accept(TokKind::Dot)) {
      Token port = cur();
      if (!expect(TokKind::Ident, "port name after '.'")) return false;
      src.inst = first.text;
      src.port = port.text;
    } else {
      src.port = first.text;
    }
    if (at(TokKind::LParen) && ahead(1).kind == TokKind::Int &&
        ahead(2).kind == TokKind::Colon) {
      src.has_slice = true;
      if (!parse_range(src.slice)) return false;
    }
    return true;
  }

  // --- behaviour expressions ----------------------------------------------------

  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_xor();
    while (lhs && at(TokKind::Pipe)) {
      util::SourceLoc loc = take().loc;
      ExprPtr rhs = parse_xor();
      if (!rhs) return nullptr;
      lhs = make_binary(OpKind::Or, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  ExprPtr parse_xor() {
    ExprPtr lhs = parse_and();
    while (lhs && at(TokKind::Caret)) {
      util::SourceLoc loc = take().loc;
      ExprPtr rhs = parse_and();
      if (!rhs) return nullptr;
      lhs = make_binary(OpKind::Xor, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_shift();
    while (lhs && at(TokKind::Amp)) {
      util::SourceLoc loc = take().loc;
      ExprPtr rhs = parse_shift();
      if (!rhs) return nullptr;
      lhs = make_binary(OpKind::And, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  ExprPtr parse_shift() {
    ExprPtr lhs = parse_add();
    while (lhs && (at(TokKind::Shl) || at(TokKind::Shr))) {
      OpKind op = at(TokKind::Shl) ? OpKind::Shl : OpKind::Shr;
      util::SourceLoc loc = take().loc;
      ExprPtr rhs = parse_add();
      if (!rhs) return nullptr;
      lhs = make_binary(op, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  ExprPtr parse_add() {
    ExprPtr lhs = parse_mul();
    while (lhs && (at(TokKind::Plus) || at(TokKind::Minus))) {
      OpKind op = at(TokKind::Plus) ? OpKind::Add : OpKind::Sub;
      util::SourceLoc loc = take().loc;
      ExprPtr rhs = parse_mul();
      if (!rhs) return nullptr;
      lhs = make_binary(op, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  ExprPtr parse_mul() {
    ExprPtr lhs = parse_unary();
    while (lhs && (at(TokKind::Star) || at(TokKind::Slash))) {
      OpKind op = at(TokKind::Star) ? OpKind::Mul : OpKind::Div;
      util::SourceLoc loc = take().loc;
      ExprPtr rhs = parse_unary();
      if (!rhs) return nullptr;
      lhs = make_binary(op, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (at(TokKind::Minus)) {
      util::SourceLoc loc = take().loc;
      ExprPtr a = parse_unary();
      if (!a) return nullptr;
      return make_unary(OpKind::Neg, std::move(a), loc);
    }
    if (at(TokKind::Tilde)) {
      util::SourceLoc loc = take().loc;
      ExprPtr a = parse_unary();
      if (!a) return nullptr;
      return make_unary(OpKind::Not, std::move(a), loc);
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    util::SourceLoc loc = cur().loc;
    if (at(TokKind::Int)) return make_const(take().value, loc);
    if (accept(TokKind::LParen)) {
      ExprPtr inner = parse_expr();
      if (!inner) return nullptr;
      if (!expect(TokKind::RParen, "')'")) return nullptr;
      return inner;
    }
    if (accept(TokKind::KwCell)) {
      if (!expect(TokKind::LBracket, "'[' of CELL read")) return nullptr;
      ExprPtr addr = parse_expr();
      if (!addr) return nullptr;
      if (!expect(TokKind::RBracket, "']' of CELL read")) return nullptr;
      return make_cell_read(std::move(addr), loc);
    }
    if (at(TokKind::KwSxt) || at(TokKind::KwZxt)) {
      OpKind op = at(TokKind::KwSxt) ? OpKind::Sxt : OpKind::Zxt;
      take();
      if (!expect(TokKind::LParen, "'(' of extension")) return nullptr;
      ExprPtr a = parse_expr();
      if (!a) return nullptr;
      if (!expect(TokKind::RParen, "')' of extension")) return nullptr;
      return make_unary(op, std::move(a), loc);
    }
    if (at(TokKind::Ident)) {
      Token name = take();
      if (at(TokKind::LParen)) {
        // Slice `p(msb:lsb)` vs. custom call `F(a, b)`.
        if (ahead(1).kind == TokKind::Int && ahead(2).kind == TokKind::Colon) {
          BitRange r;
          if (!parse_range(r)) return nullptr;
          return make_slice(make_port_ref(name.text, loc), r, loc);
        }
        take();  // '('
        std::vector<ExprPtr> args;
        if (!at(TokKind::RParen)) {
          for (;;) {
            ExprPtr a = parse_expr();
            if (!a) return nullptr;
            args.push_back(std::move(a));
            if (!accept(TokKind::Comma)) break;
          }
        }
        if (!expect(TokKind::RParen, "')' of call")) return nullptr;
        return make_call(name.text, std::move(args), loc);
      }
      return make_port_ref(name.text, loc);
    }
    error(util::fmt("expected an expression, found {}",
                    to_string(cur().kind)));
    return nullptr;
  }

  // --- guard conditions -----------------------------------------------------

  CondPtr parse_cond() { return parse_cond_or(); }

  CondPtr parse_cond_or() {
    CondPtr lhs = parse_cond_and();
    if (!lhs) return nullptr;
    if (!at(TokKind::KwOr)) return lhs;
    auto node = std::make_unique<Cond>();
    node->kind = Cond::Kind::Or;
    node->loc = cur().loc;
    node->args.push_back(std::move(lhs));
    while (accept(TokKind::KwOr)) {
      CondPtr rhs = parse_cond_and();
      if (!rhs) return nullptr;
      node->args.push_back(std::move(rhs));
    }
    return node;
  }

  CondPtr parse_cond_and() {
    CondPtr lhs = parse_cond_atom();
    if (!lhs) return nullptr;
    if (!at(TokKind::KwAnd)) return lhs;
    auto node = std::make_unique<Cond>();
    node->kind = Cond::Kind::And;
    node->loc = cur().loc;
    node->args.push_back(std::move(lhs));
    while (accept(TokKind::KwAnd)) {
      CondPtr rhs = parse_cond_atom();
      if (!rhs) return nullptr;
      node->args.push_back(std::move(rhs));
    }
    return node;
  }

  CondPtr parse_cond_atom() {
    if (accept(TokKind::KwNot)) {
      CondPtr inner = parse_cond_atom();
      if (!inner) return nullptr;
      auto node = std::make_unique<Cond>();
      node->kind = Cond::Kind::Not;
      node->args.push_back(std::move(inner));
      return node;
    }
    if (accept(TokKind::LParen)) {
      CondPtr inner = parse_cond();
      if (!inner) return nullptr;
      if (!expect(TokKind::RParen, "')' in condition")) return nullptr;
      return inner;
    }
    // ref (= | /=) INT, ref = [inst '.'] port [range]
    auto node = std::make_unique<Cond>();
    node->kind = Cond::Kind::Cmp;
    node->loc = cur().loc;
    Token first = cur();
    if (!expect(TokKind::Ident, "signal reference in condition"))
      return nullptr;
    if (accept(TokKind::Dot)) {
      Token port = cur();
      if (!expect(TokKind::Ident, "port name after '.'")) return nullptr;
      node->inst = first.text;
      node->port = port.text;
    } else {
      node->port = first.text;
    }
    if (at(TokKind::LParen) && ahead(1).kind == TokKind::Int &&
        ahead(2).kind == TokKind::Colon) {
      node->has_slice = true;
      if (!parse_range(node->slice)) return nullptr;
    }
    if (accept(TokKind::Eq))
      node->neq = false;
    else if (accept(TokKind::Neq))
      node->neq = true;
    else {
      error("expected '=' or '/=' in condition");
      return nullptr;
    }
    Token value = cur();
    if (!expect(TokKind::Int, "comparison constant")) return nullptr;
    node->value = value.value;
    return node;
  }

  std::vector<Token> toks_;
  util::DiagnosticSink& diags_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<ProcessorModel> parse(std::string_view source,
                                    util::DiagnosticSink& diags) {
  std::vector<Token> tokens = lex(source, diags);
  if (!diags.ok()) return std::nullopt;
  return Parser(std::move(tokens), diags).run();
}

}  // namespace record::hdl
