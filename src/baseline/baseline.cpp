#include "baseline/baseline.h"

#include "util/strings.h"

namespace record::baseline {

namespace {

std::string first_memory(const rtl::TemplateBase& base) {
  for (const rtl::StorageInfo& s : base.storage)
    if (s.kind == rtl::DestKind::Memory) return s.name;
  return {};
}

/// The target's "int" width: vendor compilers promote arithmetic to the
/// accumulator width, so the widest readable register defines it.
int accumulator_width(const rtl::TemplateBase& base) {
  int w = 16;
  for (const rtl::StorageInfo& s : base.storage)
    if (s.kind == rtl::DestKind::Register) w = std::max(w, s.width);
  return w;
}

class Lowerer {
 public:
  Lowerer(const ir::Program& in, std::string temp_mem, std::int64_t base,
          int int_width)
      : in_(in), out_(in.name() + "_3addr"), temp_mem_(std::move(temp_mem)),
        temp_base_(base), int_width_(int_width) {}

  ir::Program run() {
    for (const auto& [var, bind] : in_.bindings()) {
      if (bind.kind == ir::Binding::Kind::Register)
        out_.bind_register(var, bind.storage);
      else
        out_.bind_mem_cell(var, bind.storage, bind.cell);
    }
    for (const ir::Stmt& s : in_.stmts()) lower_stmt(s);
    return std::move(out_);
  }

 private:
  /// Replaces nested operator subtrees by memory temporaries, emitting one
  /// statement per inner node (strict three-address discipline).
  ir::ExprPtr atomize(const ir::Expr& e, bool is_root) {
    switch (e.kind) {
      case ir::Expr::Kind::Const:
      case ir::Expr::Kind::Var:
        return e.clone();
      case ir::Expr::Kind::Load: {
        ir::ExprPtr addr = atomize(*e.args[0], /*is_root=*/false);
        ir::ExprPtr load = ir::e_load(e.mem, std::move(addr));
        if (is_root) return load;
        return spill_to_temp(std::move(load));
      }
      case ir::Expr::Kind::OpNode: {
        auto node = std::make_unique<ir::Expr>();
        node->kind = ir::Expr::Kind::OpNode;
        node->op = e.op;
        node->custom = e.custom;
        node->width_override = e.width_override;
        // C-style promotion: arithmetic happens at "int" (accumulator)
        // width. Without this, memory temporaries would narrow operations
        // below the datapath width.
        if (e.op != hdl::OpKind::Custom && node->width_override == 0)
          node->width_override = int_width_;
        for (const ir::ExprPtr& a : e.args)
          node->args.push_back(atomize(*a, /*is_root=*/false));
        if (is_root) return node;
        return spill_to_temp(std::move(node));
      }
    }
    return ir::e_const(0);
  }

  ir::ExprPtr spill_to_temp(ir::ExprPtr value) {
    std::string tmp = util::fmt("__bt{}", temp_counter_);
    out_.bind_mem_cell(tmp, temp_mem_,
                       temp_base_ + static_cast<std::int64_t>(temp_counter_));
    ++temp_counter_;
    out_.assign(tmp, std::move(value));
    return ir::e_var(tmp);
  }

  void lower_stmt(const ir::Stmt& s) {
    switch (s.kind) {
      case ir::Stmt::Kind::Assign:
        out_.assign(s.dest_var, atomize(*s.rhs, /*is_root=*/true));
        return;
      case ir::Stmt::Kind::Store: {
        ir::ExprPtr addr = atomize(*s.addr, /*is_root=*/true);
        ir::ExprPtr rhs = atomize(*s.rhs, /*is_root=*/true);
        out_.store(s.mem, std::move(addr), std::move(rhs));
        return;
      }
      case ir::Stmt::Kind::LabelDef:
        out_.label(s.label);
        return;
      case ir::Stmt::Kind::Branch:
        switch (s.branch) {
          case ir::BranchKind::Always:
            out_.branch(s.label);
            return;
          case ir::BranchKind::IfZero:
            out_.branch_if_zero(s.cond_var, s.label);
            return;
          case ir::BranchKind::IfNotZero:
            out_.branch_if_not_zero(s.cond_var, s.label);
            return;
        }
    }
  }

  const ir::Program& in_;
  ir::Program out_;
  std::string temp_mem_;
  std::int64_t temp_base_;
  int int_width_;
  std::size_t temp_counter_ = 0;
};

}  // namespace

ir::Program lower_three_address(const ir::Program& prog,
                                const rtl::TemplateBase& base,
                                const BaselineOptions& options) {
  std::string mem = options.temp_memory.empty() ? first_memory(base)
                                                : options.temp_memory;
  Lowerer lowerer(prog, mem, options.temp_base, accumulator_width(base));
  return lowerer.run();
}

std::optional<core::CompileResult> compile_baseline(
    const core::RetargetResult& plain_target, const ir::Program& prog,
    const BaselineOptions& options, util::DiagnosticSink& diags) {
  if (!plain_target.base) {
    diags.error({}, "baseline: empty retarget result");
    return std::nullopt;
  }
  ir::Program lowered =
      lower_three_address(prog, *plain_target.base, options);

  core::CompileOptions copts;
  copts.compact.enabled = false;  // no instruction-level parallelism
  core::Compiler compiler(plain_target);
  return compiler.compile(lowered, copts, diags);
}

}  // namespace record::baseline
