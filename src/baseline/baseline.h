// The "vendor-style" baseline compiler — stand-in for the TI C compiler of
// Figure 2 (see DESIGN.md, substitutions).
//
// It generates *correct* code for the same processor model but with the
// structural weaknesses typical of mid-90s DSP C compilers:
//   * three-address lowering: every inner operator is evaluated into a
//     compiler temporary in memory and reloaded (no chained operations, no
//     multiply-accumulate fusion),
//   * the template base is used un-extended (no commutative or algebraic
//     variants), so badly shaped expressions cost extra moves,
//   * no code compaction: one RT per instruction word (no parallel
//     address-register updates).
#pragma once

#include <optional>

#include "core/compiler.h"
#include "core/record.h"
#include "ir/program.h"
#include "util/diagnostics.h"

namespace record::baseline {

struct BaselineOptions {
  /// Memory holding compiler temporaries; empty = target's first memory.
  std::string temp_memory;
  std::int64_t temp_base = 0x90;
};

/// Lowers a program to three-address form with memory temporaries.
[[nodiscard]] ir::Program lower_three_address(const ir::Program& prog,
                                              const rtl::TemplateBase& base,
                                              const BaselineOptions& options);

/// Compiles with the baseline strategy. `plain_target` must be a retarget
/// result produced WITHOUT template-base extension (commutativity = false,
/// standard_rewrites = false) for the weaknesses to be faithful.
[[nodiscard]] std::optional<core::CompileResult> compile_baseline(
    const core::RetargetResult& plain_target, const ir::Program& prog,
    const BaselineOptions& options, util::DiagnosticSink& diags);

}  // namespace record::baseline
