#include "burstab/tables.h"

#include <algorithm>
#include <cassert>
#include <mutex>

#include "burstab/serialize.h"
#include "treeparse/burs.h"
#include "util/strings.h"

namespace record::burstab {

using grammar::NtId;
using grammar::PatNode;
using grammar::Rule;
using grammar::TermId;

namespace {

/// Saturating addition in the kInf domain.
int sat_add(int a, int b) {
  if (a >= kInf || b >= kInf) return kInf;
  return a + b;
}

void hash_vec(std::size_t& h, const std::vector<int>& v) {
  for (int x : v) h = (h ^ static_cast<std::size_t>(x)) * 1099511628211ull;
}

}  // namespace

std::size_t TargetTables::StateKeyHash::operator()(const StateData& s) const {
  std::size_t h = 1469598103934665603ull;
  hash_vec(h, s.cost);
  hash_vec(h, s.rule);
  hash_vec(h, s.sub);
  h = (h ^ (s.is_const_leaf ? 0x9e3779b9u : 0u)) * 1099511628211ull;
  h = (h ^ static_cast<std::size_t>(s.fit_width_index + 1)) * 1099511628211ull;
  h = (h ^ static_cast<std::size_t>(s.const_class + 1)) * 1099511628211ull;
  return h;
}

// --- construction -----------------------------------------------------------

bool TargetTables::pattern_is_constrained(const PatNode& pat) {
  // A rule is side-constrained iff its pattern contains two NonTerm leaves
  // of one non-terminal (structural-equality binding) or two Imm leaves
  // drawing from the same instruction field.
  std::vector<NtId> nts;
  std::vector<const std::vector<int>*> imms;
  bool constrained = false;
  auto walk = [&](auto&& self, const PatNode& p) -> void {
    if (constrained) return;
    switch (p.kind) {
      case PatNode::Kind::NonTerm:
        if (std::find(nts.begin(), nts.end(), p.nt) != nts.end())
          constrained = true;
        nts.push_back(p.nt);
        return;
      case PatNode::Kind::Imm:
        for (const std::vector<int>* prev : imms)
          if (*prev == p.imm_bits) constrained = true;
        imms.push_back(&p.imm_bits);
        return;
      case PatNode::Kind::Const:
        return;
      case PatNode::Kind::Term:
        for (const grammar::PatNodePtr& c : p.children) self(self, *c);
        return;
    }
  };
  walk(walk, pat);
  return constrained;
}

std::string TargetTables::pattern_key(const PatNode& p) {
  // Structural key for subpattern dedup. Imm leaves collapse to their width:
  // two Imm leaves of equal width match identically (bindings are collected
  // from the subject at reduce time, not from the table).
  switch (p.kind) {
    case PatNode::Kind::Term: {
      std::string k = util::fmt("T{}(", p.term);
      for (const grammar::PatNodePtr& c : p.children) {
        k += pattern_key(*c);
        k += ',';
      }
      k += ')';
      return k;
    }
    case PatNode::Kind::NonTerm:
      return util::fmt("N{}", p.nt);
    case PatNode::Kind::Imm:
      return util::fmt("I{}", p.width);
    case PatNode::Kind::Const:
      return util::fmt("C{}", p.value);
  }
  return "?";
}

void TargetTables::prepare(const grammar::TreeGrammar& g) {
  nt_count_ = g.nonterminal_count();
  const_term_ = g.const_terminal();
  fingerprint_ = ::record::burstab::grammar_fingerprint(g);
  const int terms = g.terminal_count();

  rules_by_terminal_.assign(static_cast<std::size_t>(terms), {});
  constrained_by_terminal_.assign(static_cast<std::size_t>(terms), {});
  const_root_rules_.assign(1, {});
  chains_from_.assign(static_cast<std::size_t>(nt_count_), {});
  constrained_rule_.assign(g.rules().size(), false);
  terminal_constrained_.assign(static_cast<std::size_t>(terms), false);
  subs_by_terminal_.assign(static_cast<std::size_t>(terms), {});
  arities_by_terminal_.assign(static_cast<std::size_t>(terms), {});

  std::unordered_map<std::string, int> key_index;

  // Registers `p` (a Term-kind pattern position) and, recursively, its
  // Term-kind descendants.
  auto register_sub = [&](auto&& self, const PatNode& p) -> void {
    if (p.kind != PatNode::Kind::Term) return;
    std::string key = pattern_key(p);
    auto [it, inserted] =
        key_index.emplace(std::move(key), static_cast<int>(subpatterns_.size()));
    if (inserted) {
      subpatterns_.push_back(&p);
      subs_by_terminal_[static_cast<std::size_t>(p.term)].push_back(
          it->second);
    }
    sub_index_.emplace(&p, it->second);
    for (const grammar::PatNodePtr& c : p.children) self(self, *c);
  };

  // Collects Imm widths / Const values and records operator arities.
  auto scan_leaves = [&](auto&& self, const PatNode& p) -> void {
    switch (p.kind) {
      case PatNode::Kind::Imm:
        fit_widths_.push_back(p.width);
        return;
      case PatNode::Kind::Const:
        const_values_.push_back(p.value);
        return;
      case PatNode::Kind::NonTerm:
        return;
      case PatNode::Kind::Term: {
        std::vector<int>& ar =
            arities_by_terminal_[static_cast<std::size_t>(p.term)];
        int k = static_cast<int>(p.children.size());
        if (std::find(ar.begin(), ar.end(), k) == ar.end()) ar.push_back(k);
        for (const grammar::PatNodePtr& c : p.children) self(self, *c);
        return;
      }
    }
  };

  for (const Rule& r : g.rules()) {
    const std::size_t rid = static_cast<std::size_t>(r.id);
    if (r.is_chain()) {
      chains_from_[static_cast<std::size_t>(r.pattern->nt)].push_back(
          ChainPlan{r.id, r.lhs, r.cost});
      continue;
    }
    const bool constrained = pattern_is_constrained(*r.pattern);
    constrained_rule_[rid] = constrained;
    if (constrained) {
      // Nodes of this operator run the hybrid path: table transition plus
      // a matcher sweep over exactly these rules.
      TermId root_term = r.pattern->kind == PatNode::Kind::Term
                             ? r.pattern->term
                             : const_term_;
      terminal_constrained_[static_cast<std::size_t>(root_term)] = true;
      constrained_by_terminal_[static_cast<std::size_t>(root_term)]
          .push_back(r.id);
      scan_leaves(scan_leaves, *r.pattern);  // arities still matter
      continue;
    }
    scan_leaves(scan_leaves, *r.pattern);
    RulePlan plan{r.id, r.lhs, r.cost, r.pattern.get()};
    if (r.pattern->kind == PatNode::Kind::Term) {
      rules_by_terminal_[static_cast<std::size_t>(r.pattern->term)].push_back(
          plan);
      if (r.pattern->term == const_term_) const_root_rules_[0].push_back(plan);
      for (const grammar::PatNodePtr& c : r.pattern->children)
        register_sub(register_sub, *c);
    } else {
      // Imm/Const-rooted rules attach to the constant terminal.
      const_root_rules_[0].push_back(plan);
    }
  }

  std::sort(fit_widths_.begin(), fit_widths_.end());
  fit_widths_.erase(std::unique(fit_widths_.begin(), fit_widths_.end()),
                    fit_widths_.end());
  std::sort(const_values_.begin(), const_values_.end());
  const_values_.erase(
      std::unique(const_values_.begin(), const_values_.end()),
      const_values_.end());
  for (std::size_t i = 0; i < const_values_.size(); ++i)
    const_class_of_.emplace(const_values_[i], static_cast<int>(i));
}

TargetTables::TargetTables(const grammar::TreeGrammar& g,
                           const TableBuildOptions& options) {
  prepare(g);
  if (options.precompute) run_closure(options);
}

// --- state computation ------------------------------------------------------

int TargetTables::intern_locked(StateData s) const {
  auto it = state_index_.find(s);
  if (it != state_index_.end()) return it->second;
  int id = static_cast<int>(states_.size());
  states_.push_back(s);
  state_index_.emplace(std::move(s), id);
  return id;
}

int TargetTables::rel_match_locked(const PatNode& p, const StateData& s) const {
  switch (p.kind) {
    case PatNode::Kind::NonTerm:
      return s.cost[static_cast<std::size_t>(p.nt)];
    case PatNode::Kind::Imm: {
      if (!s.is_const_leaf || s.fit_width_index < 0) return kInf;
      // Fit is monotone in width: the value fits every registered width >=
      // its minimal fitting one.
      return fit_widths_[static_cast<std::size_t>(s.fit_width_index)] <=
                     p.width
                 ? 0
                 : kInf;
    }
    case PatNode::Kind::Const:
      return s.is_const_leaf && s.const_class >= 0 &&
                     const_values_[static_cast<std::size_t>(s.const_class)] ==
                         p.value
                 ? 0
                 : kInf;
    case PatNode::Kind::Term: {
      auto it = sub_index_.find(&p);
      assert(it != sub_index_.end() && "unregistered subpattern position");
      return s.sub[static_cast<std::size_t>(it->second)];
    }
  }
  return kInf;
}

TargetTables::Transition TargetTables::compute_transition_locked(
    TermId term, const std::vector<int>& children) const {
  const std::size_t k = children.size();
  std::vector<const StateData*> kids(k);
  for (std::size_t i = 0; i < k; ++i)
    kids[i] = &states_[static_cast<std::size_t>(children[i])];

  // Mirrors TreeParser::label exactly: rules in registration order with
  // strict-improvement updates, then chain closure to fixpoint in the same
  // sweep order — identical costs AND identical tie-breaking.
  std::vector<int> cost(static_cast<std::size_t>(nt_count_), kInf);
  std::vector<int> rule(static_cast<std::size_t>(nt_count_), -1);
  for (const RulePlan& plan : rules_by_terminal_[static_cast<std::size_t>(
           term)]) {
    if (plan.pattern->children.size() != k) continue;
    int sum = 0;
    for (std::size_t i = 0; i < k && sum < kInf; ++i)
      sum = sat_add(sum, rel_match_locked(*plan.pattern->children[i],
                                          *kids[i]));
    if (sum >= kInf) continue;
    int total = sat_add(sum, plan.cost);
    std::size_t lhs = static_cast<std::size_t>(plan.lhs);
    if (total < cost[lhs]) {
      cost[lhs] = total;
      rule[lhs] = plan.id;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (int y = 0; y < nt_count_; ++y) {
      int base = cost[static_cast<std::size_t>(y)];
      if (base >= kInf) continue;
      for (const ChainPlan& c : chains_from_[static_cast<std::size_t>(y)]) {
        int total = sat_add(base, c.cost);
        std::size_t lhs = static_cast<std::size_t>(c.lhs);
        if (total < cost[lhs]) {
          cost[lhs] = total;
          rule[lhs] = c.id;
          changed = true;
        }
      }
    }
  }

  int delta = kInf;
  for (int c : cost) delta = std::min(delta, c);
  if (delta >= kInf) delta = 0;

  StateData s;
  s.cost.resize(static_cast<std::size_t>(nt_count_));
  for (int i = 0; i < nt_count_; ++i) {
    std::size_t idx = static_cast<std::size_t>(i);
    s.cost[idx] = cost[idx] >= kInf ? kInf : cost[idx] - delta;
  }
  s.rule = std::move(rule);
  s.sub.assign(static_cast<std::size_t>(subpatterns_.size()), kInf);
  for (int qi : subs_by_terminal_[static_cast<std::size_t>(term)]) {
    const PatNode* q = subpatterns_[static_cast<std::size_t>(qi)];
    if (q->children.size() != k) continue;
    int sum = 0;
    for (std::size_t i = 0; i < k && sum < kInf; ++i)
      sum = sat_add(sum, rel_match_locked(*q->children[i], *kids[i]));
    if (sum < kInf) s.sub[static_cast<std::size_t>(qi)] = sum - delta;
  }
  return Transition{intern_locked(std::move(s)), delta};
}

int TargetTables::compute_const_state_locked(int fit_index,
                                             int const_class) const {
  // #const leaves keep absolute costs (base 0) so that rules consuming the
  // leaf through an Imm/Const pattern (operand cost 0) and through a
  // NonTerm (operand cost = the leaf's absolute cost) agree on one base.
  std::vector<int> cost(static_cast<std::size_t>(nt_count_), kInf);
  std::vector<int> rule(static_cast<std::size_t>(nt_count_), -1);
  for (const RulePlan& plan : const_root_rules_[0]) {
    bool matches = false;
    switch (plan.pattern->kind) {
      case PatNode::Kind::Imm:
        matches = fit_index >= 0 &&
                  fit_widths_[static_cast<std::size_t>(fit_index)] <=
                      plan.pattern->width;
        break;
      case PatNode::Kind::Const:
        matches = const_class >= 0 &&
                  const_values_[static_cast<std::size_t>(const_class)] ==
                      plan.pattern->value;
        break;
      case PatNode::Kind::Term:
        matches = plan.pattern->children.empty();
        break;
      case PatNode::Kind::NonTerm:
        break;
    }
    if (!matches) continue;
    std::size_t lhs = static_cast<std::size_t>(plan.lhs);
    if (plan.cost < cost[lhs]) {
      cost[lhs] = plan.cost;
      rule[lhs] = plan.id;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (int y = 0; y < nt_count_; ++y) {
      int base = cost[static_cast<std::size_t>(y)];
      if (base >= kInf) continue;
      for (const ChainPlan& c : chains_from_[static_cast<std::size_t>(y)]) {
        int total = sat_add(base, c.cost);
        std::size_t lhs = static_cast<std::size_t>(c.lhs);
        if (total < cost[lhs]) {
          cost[lhs] = total;
          rule[lhs] = c.id;
          changed = true;
        }
      }
    }
  }

  StateData s;
  s.cost = std::move(cost);
  s.rule = std::move(rule);
  s.sub.assign(static_cast<std::size_t>(subpatterns_.size()), kInf);
  for (int qi : subs_by_terminal_[static_cast<std::size_t>(const_term_)]) {
    const PatNode* q = subpatterns_[static_cast<std::size_t>(qi)];
    if (q->children.empty()) s.sub[static_cast<std::size_t>(qi)] = 0;
  }
  s.is_const_leaf = true;
  s.fit_width_index = fit_index;
  s.const_class = const_class;
  return intern_locked(std::move(s));
}

// --- parser-facing lookups --------------------------------------------------

namespace {
std::int64_t const_pair_key(int fit_index, int const_class) {
  return (static_cast<std::int64_t>(fit_index + 1) << 32) |
         static_cast<std::int64_t>(const_class + 1);
}
}  // namespace

int TargetTables::fit_index_of(std::int64_t value) const {
  for (std::size_t i = 0; i < fit_widths_.size(); ++i)
    if (treeparse::TreeParser::immediate_fits(value, fit_widths_[i]))
      return static_cast<int>(i);
  return -1;
}

int TargetTables::const_class_index(std::int64_t value) const {
  auto it = const_class_of_.find(value);
  return it == const_class_of_.end() ? -1 : it->second;
}

int TargetTables::const_leaf_state(std::int64_t value) const {
  int fit_index = fit_index_of(value);
  int const_class = const_class_index(value);
  std::int64_t key = const_pair_key(fit_index, const_class);
  {
    std::shared_lock lock(mu_);
    auto it = const_state_by_pair_.find(key);
    if (it != const_state_by_pair_.end()) return it->second;
  }
  std::unique_lock lock(mu_);
  auto it = const_state_by_pair_.find(key);
  if (it != const_state_by_pair_.end()) return it->second;
  int id = compute_const_state_locked(fit_index, const_class);
  const_state_by_pair_.emplace(key, id);
  return id;
}

TargetTables::Transition TargetTables::transition(
    TermId term, const std::vector<int>& children) const {
  TransKeyView view{term, &children};
  {
    std::shared_lock lock(mu_);
    auto it = trans_.find(view);
    if (it != trans_.end()) return it->second;
  }
  std::unique_lock lock(mu_);
  auto it = trans_.find(view);
  if (it != trans_.end()) return it->second;
  Transition t = compute_transition_locked(term, children);
  trans_.emplace(TransKey{term, children}, t);
  return t;
}

const std::vector<int>& TargetTables::constrained_rules_of(TermId t) const {
  static const std::vector<int> kEmpty;
  if (t < 0 || static_cast<std::size_t>(t) >= constrained_by_terminal_.size())
    return kEmpty;
  return constrained_by_terminal_[static_cast<std::size_t>(t)];
}

void TargetTables::raw_candidates(TermId term,
                                  const std::vector<int>& children,
                                  std::vector<int>& cost,
                                  std::vector<int>& rule) const {
  std::shared_lock lock(mu_);
  const std::size_t k = children.size();
  cost.assign(static_cast<std::size_t>(nt_count_), kInf);
  rule.assign(static_cast<std::size_t>(nt_count_), -1);
  for (const RulePlan& plan :
       rules_by_terminal_[static_cast<std::size_t>(term)]) {
    if (plan.pattern->children.size() != k) continue;
    int sum = 0;
    for (std::size_t i = 0; i < k && sum < kInf; ++i)
      sum = sat_add(
          sum, rel_match_locked(
                   *plan.pattern->children[i],
                   states_[static_cast<std::size_t>(children[i])]));
    if (sum >= kInf) continue;
    int total = sat_add(sum, plan.cost);
    std::size_t lhs = static_cast<std::size_t>(plan.lhs);
    if (total < cost[lhs]) {
      cost[lhs] = total;
      rule[lhs] = plan.id;
    }
  }
}

int TargetTables::intern_state(StateData s) const {
  std::unique_lock lock(mu_);
  return intern_locked(std::move(s));
}

StateData TargetTables::state(int id) const {
  std::shared_lock lock(mu_);
  return states_[static_cast<std::size_t>(id)];
}

const StateData& TargetTables::state_ref(int id) const {
  std::shared_lock lock(mu_);
  return states_[static_cast<std::size_t>(id)];
}

bool TargetTables::terminal_has_constrained(TermId t) const {
  return t >= 0 &&
         static_cast<std::size_t>(t) < terminal_constrained_.size() &&
         terminal_constrained_[static_cast<std::size_t>(t)];
}

bool TargetTables::rule_is_constrained(int rule_id) const {
  return rule_id >= 0 &&
         static_cast<std::size_t>(rule_id) < constrained_rule_.size() &&
         constrained_rule_[static_cast<std::size_t>(rule_id)];
}

int TargetTables::subpattern_index(const PatNode* p) const {
  auto it = sub_index_.find(p);
  return it == sub_index_.end() ? -1 : it->second;
}

const std::vector<int>& TargetTables::subpatterns_of_terminal(
    TermId t) const {
  static const std::vector<int> kEmpty;
  if (t < 0 || static_cast<std::size_t>(t) >= subs_by_terminal_.size())
    return kEmpty;
  return subs_by_terminal_[static_cast<std::size_t>(t)];
}

const PatNode* TargetTables::subpattern(int index) const {
  return subpatterns_[static_cast<std::size_t>(index)];
}

TableStats TargetTables::stats() const {
  std::shared_lock lock(mu_);
  TableStats s;
  s.states = states_.size();
  s.transitions = trans_.size();
  s.subpatterns = subpatterns_.size();
  std::size_t constrained = 0;
  for (bool b : constrained_rule_)
    if (b) ++constrained;
  s.constrained_rules = constrained;
  s.table_rules = constrained_rule_.size() - constrained;
  s.const_classes = const_state_by_pair_.size();
  s.closure_complete = closure_complete_;
  return s;
}

// --- eager closure ----------------------------------------------------------

void TargetTables::run_closure(const TableBuildOptions& options) {
  std::unique_lock lock(mu_);
  const std::size_t work_cap = options.max_transitions * 64;
  std::size_t work = 0;

  // Leaf seeding: one state per hardwired pattern constant, one per
  // immediate-fit class, one per leaf operator.
  for (std::int64_t v : const_values_) {
    int fit_index = fit_index_of(v);
    std::int64_t key = const_pair_key(fit_index, const_class_of_.at(v));
    if (!const_state_by_pair_.count(key))
      const_state_by_pair_.emplace(
          key, compute_const_state_locked(fit_index, const_class_of_.at(v)));
  }
  for (int fi = -1; fi < static_cast<int>(fit_widths_.size()); ++fi) {
    std::int64_t key = const_pair_key(fi, -1);
    if (!const_state_by_pair_.count(key))
      const_state_by_pair_.emplace(key,
                                   compute_const_state_locked(fi, -1));
  }
  const std::vector<int> no_children;
  for (std::size_t t = 0; t < rules_by_terminal_.size(); ++t) {
    if (terminal_constrained_[t]) continue;
    TransKey key{static_cast<TermId>(t), no_children};
    if (!trans_.count(key))
      trans_.emplace(key, compute_transition_locked(static_cast<TermId>(t),
                                                    no_children));
  }

  // Bottom-up closure: combine known states under every operator arity until
  // nothing new appears or a budget is hit. Tuples whose prefix already
  // rules out every rule and subpattern are pruned.
  std::size_t frontier_begin = 0;
  bool out_of_budget = false;
  while (frontier_begin < states_.size() && !out_of_budget) {
    std::size_t frontier_end = states_.size();
    for (std::size_t t = 0;
         t < rules_by_terminal_.size() && !out_of_budget; ++t) {
      if (terminal_constrained_[t]) continue;
      if (static_cast<TermId>(t) == const_term_) continue;
      for (int arity : arities_by_terminal_[t]) {
        if (arity < 1) continue;
        std::vector<const RulePlan*> plans;
        for (const RulePlan& p :
             rules_by_terminal_[t])
          if (static_cast<int>(p.pattern->children.size()) == arity)
            plans.push_back(&p);
        std::vector<const PatNode*> subs;
        for (int qi : subs_by_terminal_[t]) {
          const PatNode* q = subpatterns_[static_cast<std::size_t>(qi)];
          if (static_cast<int>(q->children.size()) == arity)
            subs.push_back(q);
        }
        if (plans.empty() && subs.empty()) continue;

        std::vector<int> tuple(static_cast<std::size_t>(arity));
        auto enumerate = [&](auto&& self, int pos, bool has_new) -> void {
          if (out_of_budget) return;
          if (++work > work_cap || states_.size() >= options.max_states ||
              trans_.size() >= options.max_transitions) {
            out_of_budget = true;
            return;
          }
          if (pos == arity) {
            if (!has_new) return;
            TransKey key{static_cast<TermId>(t), tuple};
            if (trans_.count(key)) return;
            trans_.emplace(std::move(key),
                           compute_transition_locked(
                               static_cast<TermId>(t), tuple));
            return;
          }
          for (std::size_t sid = 0; sid < frontier_end; ++sid) {
            const StateData& s = states_[sid];
            // Prune: some rule or subpattern must still be able to match
            // with this state at position `pos`.
            bool viable = false;
            for (const RulePlan* p : plans) {
              if (rel_match_locked(
                      *p->pattern->children[static_cast<std::size_t>(pos)],
                      s) < kInf) {
                viable = true;
                break;
              }
            }
            if (!viable) {
              for (const PatNode* q : subs) {
                if (rel_match_locked(
                        *q->children[static_cast<std::size_t>(pos)], s) <
                    kInf) {
                  viable = true;
                  break;
                }
              }
            }
            if (!viable) continue;
            tuple[static_cast<std::size_t>(pos)] = static_cast<int>(sid);
            self(self, pos + 1, has_new || sid >= frontier_begin);
            if (out_of_budget) return;
          }
        };
        enumerate(enumerate, 0, false);
      }
    }
    frontier_begin = frontier_end;
  }
  closure_complete_ = !out_of_budget;
}

// --- persistence ------------------------------------------------------------

namespace {
constexpr std::uint32_t kTablesMagic = 0x42545231;  // "BTR1"
}

void TargetTables::serialize(std::string& out) const {
  std::shared_lock lock(mu_);
  ByteWriter w;
  w.u32(kTablesMagic);
  w.u64(fingerprint_);
  w.u32(static_cast<std::uint32_t>(nt_count_));
  w.u32(static_cast<std::uint32_t>(subpatterns_.size()));
  w.u8(closure_complete_ ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(states_.size()));
  for (const StateData& s : states_) {
    for (int c : s.cost) w.i32(c);
    for (int r : s.rule) w.i32(r);
    for (int c : s.sub) w.i32(c);
    w.u8(s.is_const_leaf ? 1 : 0);
    w.i32(s.fit_width_index);
    w.i32(s.const_class);
  }
  w.u32(static_cast<std::uint32_t>(trans_.size()));
  for (const auto& [key, t] : trans_) {
    w.i32(key.term);
    w.u32(static_cast<std::uint32_t>(key.children.size()));
    for (int c : key.children) w.i32(c);
    w.i32(t.state);
    w.i32(t.delta);
  }
  w.u32(static_cast<std::uint32_t>(const_state_by_pair_.size()));
  for (const auto& [key, sid] : const_state_by_pair_) {
    w.i64(key);
    w.i32(sid);
  }
  w.append_to(out);
}

std::unique_ptr<TargetTables> TargetTables::deserialize(
    const grammar::TreeGrammar& g, std::string_view blob,
    std::size_t& offset) {
  TableBuildOptions no_precompute;
  no_precompute.precompute = false;
  auto tables = std::make_unique<TargetTables>(g, no_precompute);

  ByteReader r(blob, offset);
  if (r.u32() != kTablesMagic) return nullptr;
  if (r.u64() != tables->fingerprint_) return nullptr;
  if (r.u32() != static_cast<std::uint32_t>(tables->nt_count_)) return nullptr;
  if (r.u32() != static_cast<std::uint32_t>(tables->subpatterns_.size()))
    return nullptr;
  tables->closure_complete_ = r.u8() != 0;
  std::uint32_t n_states = r.u32();
  if (n_states > 1u << 22) return nullptr;
  const std::size_t nts = static_cast<std::size_t>(tables->nt_count_);
  const std::size_t subs = tables->subpatterns_.size();
  for (std::uint32_t i = 0; i < n_states && r.ok(); ++i) {
    StateData s;
    s.cost.resize(nts);
    for (std::size_t j = 0; j < nts; ++j) s.cost[j] = r.i32();
    s.rule.resize(nts);
    for (std::size_t j = 0; j < nts; ++j) s.rule[j] = r.i32();
    s.sub.resize(subs);
    for (std::size_t j = 0; j < subs; ++j) s.sub[j] = r.i32();
    s.is_const_leaf = r.u8() != 0;
    s.fit_width_index = r.i32();
    s.const_class = r.i32();
    if (!r.ok()) return nullptr;
    if (tables->intern_locked(std::move(s)) != static_cast<int>(i))
      return nullptr;  // duplicate or reordered states: corrupt blob
  }
  std::uint32_t n_trans = r.u32();
  if (n_trans > 1u << 24) return nullptr;
  for (std::uint32_t i = 0; i < n_trans && r.ok(); ++i) {
    TransKey key;
    key.term = r.i32();
    std::uint32_t k = r.u32();
    if (k > 64) return nullptr;
    key.children.resize(k);
    for (std::uint32_t j = 0; j < k; ++j) key.children[j] = r.i32();
    Transition t;
    t.state = r.i32();
    t.delta = r.i32();
    if (!r.ok() || t.state < 0 ||
        t.state >= static_cast<int>(tables->states_.size()))
      return nullptr;
    for (int c : key.children)
      if (c < 0 || c >= static_cast<int>(tables->states_.size()))
        return nullptr;
    tables->trans_.emplace(std::move(key), t);
  }
  std::uint32_t n_const = r.u32();
  if (n_const > 1u << 22) return nullptr;
  for (std::uint32_t i = 0; i < n_const && r.ok(); ++i) {
    std::int64_t key = r.i64();
    int sid = r.i32();
    if (sid < 0 || sid >= static_cast<int>(tables->states_.size()))
      return nullptr;
    tables->const_state_by_pair_.emplace(key, sid);
  }
  if (!r.ok()) return nullptr;
  offset = r.pos();
  return tables;
}

}  // namespace record::burstab
