#include "burstab/tables.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <mutex>
#include <numeric>

#include "burstab/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "treeparse/burs.h"
#include "util/strings.h"

namespace record::burstab {

using grammar::NtId;
using grammar::PatNode;
using grammar::Rule;
using grammar::TermId;

namespace {

/// Saturating addition in the kInf domain.
int sat_add(int a, int b) {
  if (a >= kInf || b >= kInf) return kInf;
  return a + b;
}

std::int64_t const_pair_key(int fit_index, int const_class) {
  return (static_cast<std::int64_t>(fit_index + 1) << 32) |
         static_cast<std::int64_t>(const_class + 1);
}

/// Row counts beyond this abandon freezing one operator (its transitions
/// stay on the hash path) rather than materialise a pathological
/// displacement table.
constexpr std::size_t kMaxFrozenRows = std::size_t{1} << 20;

/// First word of every frozen pool. The pool is written to disk verbatim
/// (host int32s), so a blob produced on a foreign-endianness machine reads
/// back a scrambled marker and is rejected as a clean cache miss.
constexpr std::int32_t kPoolByteOrder = 0x01020304;
constexpr std::size_t kPoolHeaderWords = 12;
constexpr std::size_t kPoolOpHeaderWords = 8;

}  // namespace

std::size_t TargetTables::RowHash::operator()(const RowKey& k) const {
  std::size_t h = 1469598103934665603ull;
  const int n = t->stride_;
  for (int i = 0; i < n; ++i)
    h = (h ^ static_cast<std::size_t>(static_cast<std::uint32_t>(k.row[i]))) *
        1099511628211ull;
  return h;
}

bool TargetTables::RowEq::operator()(const RowKey& a, const RowKey& b) const {
  return std::memcmp(a.row, b.row,
                     static_cast<std::size_t>(t->stride_) *
                         sizeof(std::int32_t)) == 0;
}

// --- construction -----------------------------------------------------------

bool TargetTables::pattern_is_constrained(const PatNode& pat) {
  // A rule is side-constrained iff its pattern contains two NonTerm leaves
  // of one non-terminal (structural-equality binding) or two Imm leaves
  // drawing from the same instruction field.
  std::vector<NtId> nts;
  std::vector<const std::vector<int>*> imms;
  bool constrained = false;
  auto walk = [&](auto&& self, const PatNode& p) -> void {
    if (constrained) return;
    switch (p.kind) {
      case PatNode::Kind::NonTerm:
        if (std::find(nts.begin(), nts.end(), p.nt) != nts.end())
          constrained = true;
        nts.push_back(p.nt);
        return;
      case PatNode::Kind::Imm:
        for (const std::vector<int>* prev : imms)
          if (*prev == p.imm_bits) constrained = true;
        imms.push_back(&p.imm_bits);
        return;
      case PatNode::Kind::Const:
        return;
      case PatNode::Kind::Term:
        for (const grammar::PatNodePtr& c : p.children) self(self, *c);
        return;
    }
  };
  walk(walk, pat);
  return constrained;
}

std::string TargetTables::pattern_key(const PatNode& p) {
  // Structural key for subpattern dedup. Imm leaves collapse to their width:
  // two Imm leaves of equal width match identically (bindings are collected
  // from the subject at reduce time, not from the table).
  switch (p.kind) {
    case PatNode::Kind::Term: {
      std::string k = util::fmt("T{}(", p.term);
      for (const grammar::PatNodePtr& c : p.children) {
        k += pattern_key(*c);
        k += ',';
      }
      k += ')';
      return k;
    }
    case PatNode::Kind::NonTerm:
      return util::fmt("N{}", p.nt);
    case PatNode::Kind::Imm:
      return util::fmt("I{}", p.width);
    case PatNode::Kind::Const:
      return util::fmt("C{}", p.value);
  }
  return "?";
}

void TargetTables::prepare(const grammar::TreeGrammar& g) {
  nt_count_ = g.nonterminal_count();
  const_term_ = g.const_terminal();
  fingerprint_ = ::record::burstab::grammar_fingerprint(g);
  const int terms = g.terminal_count();

  rules_by_terminal_.assign(static_cast<std::size_t>(terms), {});
  constrained_by_terminal_.assign(static_cast<std::size_t>(terms), {});
  const_root_rules_.assign(1, {});
  chains_from_.assign(static_cast<std::size_t>(nt_count_), {});
  constrained_rule_.assign(g.rules().size(), false);
  terminal_constrained_.assign(static_cast<std::size_t>(terms), false);
  subs_by_terminal_.assign(static_cast<std::size_t>(terms), {});
  constrained_precheck_.assign(static_cast<std::size_t>(terms), {});
  arities_by_terminal_.assign(static_cast<std::size_t>(terms), {});

  std::unordered_map<std::string, int> key_index;

  // Registers `p` (a Term-kind pattern position) and, recursively, its
  // Term-kind descendants.
  auto register_sub = [&](auto&& self, const PatNode& p) -> void {
    if (p.kind != PatNode::Kind::Term) return;
    std::string key = pattern_key(p);
    auto [it, inserted] =
        key_index.emplace(std::move(key), static_cast<int>(subpatterns_.size()));
    if (inserted) {
      subpatterns_.push_back(&p);
      subs_by_terminal_[static_cast<std::size_t>(p.term)].push_back(
          it->second);
    }
    sub_index_.emplace(&p, it->second);
    for (const grammar::PatNodePtr& c : p.children) self(self, *c);
  };

  // Collects Imm widths / Const values and records operator arities.
  auto scan_leaves = [&](auto&& self, const PatNode& p) -> void {
    switch (p.kind) {
      case PatNode::Kind::Imm:
        fit_widths_.push_back(p.width);
        return;
      case PatNode::Kind::Const:
        const_values_.push_back(p.value);
        return;
      case PatNode::Kind::NonTerm:
        return;
      case PatNode::Kind::Term: {
        std::vector<int>& ar =
            arities_by_terminal_[static_cast<std::size_t>(p.term)];
        int k = static_cast<int>(p.children.size());
        if (std::find(ar.begin(), ar.end(), k) == ar.end()) ar.push_back(k);
        for (const grammar::PatNodePtr& c : p.children) self(self, *c);
        return;
      }
    }
  };

  for (const Rule& r : g.rules()) {
    const std::size_t rid = static_cast<std::size_t>(r.id);
    if (r.is_chain()) {
      chains_from_[static_cast<std::size_t>(r.pattern->nt)].push_back(
          ChainPlan{r.id, r.lhs, r.cost});
      continue;
    }
    const bool constrained = pattern_is_constrained(*r.pattern);
    constrained_rule_[rid] = constrained;
    if (constrained) {
      // Nodes of this operator run the hybrid path: table transition plus
      // a matcher sweep over exactly these rules.
      TermId root_term = r.pattern->kind == PatNode::Kind::Term
                             ? r.pattern->term
                             : const_term_;
      terminal_constrained_[static_cast<std::size_t>(root_term)] = true;
      constrained_by_terminal_[static_cast<std::size_t>(root_term)]
          .push_back(r.id);
      if (r.pattern->kind == PatNode::Kind::Term) {
        ConstrainedPrecheck pc;
        pc.rule = r.id;
        pc.arity = static_cast<std::uint32_t>(r.pattern->children.size());
        for (std::size_t i = 0; i < r.pattern->children.size(); ++i) {
          const PatNode& c = *r.pattern->children[i];
          ConstrainedPrecheck::Req req;
          req.pos = static_cast<std::uint32_t>(i);
          switch (c.kind) {
            case PatNode::Kind::NonTerm:
              continue;  // matches anything derivable; matcher decides
            case PatNode::Kind::Imm:
            case PatNode::Kind::Const:
              req.want_const = true;
              break;
            case PatNode::Kind::Term:
              req.term = c.term;
              req.term_arity =
                  static_cast<std::uint32_t>(c.children.size());
              break;
          }
          pc.reqs.push_back(req);
        }
        constrained_precheck_[static_cast<std::size_t>(root_term)].push_back(
            std::move(pc));
      }
      scan_leaves(scan_leaves, *r.pattern);  // arities still matter
      continue;
    }
    scan_leaves(scan_leaves, *r.pattern);
    RulePlan plan{r.id, r.lhs, r.cost, r.pattern.get()};
    if (r.pattern->kind == PatNode::Kind::Term) {
      rules_by_terminal_[static_cast<std::size_t>(r.pattern->term)].push_back(
          plan);
      if (r.pattern->term == const_term_) const_root_rules_[0].push_back(plan);
      for (const grammar::PatNodePtr& c : r.pattern->children)
        register_sub(register_sub, *c);
    } else {
      // Imm/Const-rooted rules attach to the constant terminal.
      const_root_rules_[0].push_back(plan);
    }
  }

  std::sort(fit_widths_.begin(), fit_widths_.end());
  fit_widths_.erase(std::unique(fit_widths_.begin(), fit_widths_.end()),
                    fit_widths_.end());
  std::sort(const_values_.begin(), const_values_.end());
  const_values_.erase(
      std::unique(const_values_.begin(), const_values_.end()),
      const_values_.end());
  for (std::size_t i = 0; i < const_values_.size(); ++i)
    const_class_of_.emplace(const_values_[i], static_cast<int>(i));

  stride_ = 2 * nt_count_ + static_cast<int>(subpatterns_.size()) + 3;
  scratch_row_.resize(static_cast<std::size_t>(stride_));
}

TargetTables::TargetTables(const grammar::TreeGrammar& g,
                           const TableBuildOptions& options)
    : freeze_enabled_(options.freeze),
      refreeze_misses_(std::max<std::size_t>(1, options.refreeze_misses)),
      state_index_(16, RowHash{this}, RowEq{this}) {
  prepare(g);
  if (options.precompute) {
    run_closure(options);  // freezes at the end when enabled
  } else if (freeze_enabled_) {
    freeze();  // empty snapshot: dynamic fills count as misses and re-freeze
  }
}

// --- flat state rows --------------------------------------------------------

StateView TargetTables::view_of_row(const std::int32_t* row) const {
  StateView v;
  v.cost = row;
  v.rule = row + nt_count_;
  v.sub = row + 2 * nt_count_;
  const std::int32_t* meta = row + stride_ - 3;
  v.is_const_leaf = meta[0] != 0;
  v.fit_width_index = meta[1];
  v.const_class = meta[2];
  return v;
}

const std::int32_t* TargetTables::state_row_locked(int id) const {
  // Mapped base states live contiguously inside the adopted pool; states
  // interned after the adoption go to the arena as usual.
  if (id < base_state_count_)
    return base_rows_ +
           static_cast<std::size_t>(id) * static_cast<std::size_t>(stride_);
  const int a = id - base_state_count_;
  return state_blocks_[static_cast<std::size_t>(a / kStatesPerBlock)].get() +
         static_cast<std::size_t>(a % kStatesPerBlock) *
             static_cast<std::size_t>(stride_);
}

void TargetTables::fill_row_from_state(const StateData& s,
                                       std::int32_t* row) const {
  const std::size_t nts = static_cast<std::size_t>(nt_count_);
  const std::size_t subs = subpatterns_.size();
  assert(s.cost.size() == nts && s.rule.size() == nts && s.sub.size() == subs);
  for (std::size_t i = 0; i < nts; ++i) row[i] = s.cost[i];
  for (std::size_t i = 0; i < nts; ++i) row[nts + i] = s.rule[i];
  for (std::size_t i = 0; i < subs; ++i) row[2 * nts + i] = s.sub[i];
  std::int32_t* meta = row + stride_ - 3;
  meta[0] = s.is_const_leaf ? 1 : 0;
  meta[1] = s.fit_width_index;
  meta[2] = s.const_class;
}

void TargetTables::ensure_state_index_locked() const {
  if (state_index_seeded_) return;
  state_index_seeded_ = true;
  for (int id = 0; id < base_state_count_; ++id)
    state_index_.emplace(
        RowKey{base_rows_ + static_cast<std::size_t>(id) *
                                static_cast<std::size_t>(stride_)},
        id);
}

int TargetTables::intern_row_locked(const std::int32_t* row) const {
  ensure_state_index_locked();
  auto it = state_index_.find(RowKey{row});
  if (it != state_index_.end()) return it->second;
  if ((state_count_ - base_state_count_) % kStatesPerBlock == 0)
    state_blocks_.push_back(std::make_unique<std::int32_t[]>(
        static_cast<std::size_t>(kStatesPerBlock) *
        static_cast<std::size_t>(stride_)));
  int id = state_count_++;
  std::int32_t* dst =
      const_cast<std::int32_t*>(state_row_locked(id));
  std::memcpy(dst, row,
              static_cast<std::size_t>(stride_) * sizeof(std::int32_t));
  state_index_.emplace(RowKey{dst}, id);
  return id;
}

// --- state computation ------------------------------------------------------

int TargetTables::rel_match_locked(const PatNode& p,
                                   const std::int32_t* s) const {
  const std::int32_t* meta = s + stride_ - 3;
  switch (p.kind) {
    case PatNode::Kind::NonTerm:
      return s[static_cast<std::size_t>(p.nt)];
    case PatNode::Kind::Imm: {
      if (meta[0] == 0 || meta[1] < 0) return kInf;
      // Fit is monotone in width: the value fits every registered width >=
      // its minimal fitting one.
      return fit_widths_[static_cast<std::size_t>(meta[1])] <= p.width
                 ? 0
                 : kInf;
    }
    case PatNode::Kind::Const:
      return meta[0] != 0 && meta[2] >= 0 &&
                     const_values_[static_cast<std::size_t>(meta[2])] ==
                         p.value
                 ? 0
                 : kInf;
    case PatNode::Kind::Term: {
      auto it = sub_index_.find(&p);
      assert(it != sub_index_.end() && "unregistered subpattern position");
      return s[static_cast<std::size_t>(2 * nt_count_ + it->second)];
    }
  }
  return kInf;
}

TargetTables::Transition TargetTables::compute_transition_locked(
    TermId term, const std::vector<int>& children) const {
  const std::size_t k = children.size();
  const std::size_t nts = static_cast<std::size_t>(nt_count_);
  const std::size_t subs = subpatterns_.size();
  const std::int32_t* kids[16];
  std::vector<const std::int32_t*> kids_overflow;
  const std::int32_t** kid_rows = kids;
  if (k > 16) {
    kids_overflow.resize(k);
    kid_rows = kids_overflow.data();
  }
  for (std::size_t i = 0; i < k; ++i)
    kid_rows[i] = state_row_locked(children[i]);

  // Mirrors TreeParser::label exactly: rules in registration order with
  // strict-improvement updates, then chain closure to fixpoint in the same
  // sweep order — identical costs AND identical tie-breaking. The signature
  // is staged directly into the scratch row, then interned (one copy).
  std::int32_t* row = scratch_row_.data();
  std::int32_t* cost = row;
  std::int32_t* rule = row + nts;
  std::int32_t* sub = row + 2 * nts;
  for (std::size_t i = 0; i < nts; ++i) cost[i] = kInf;
  for (std::size_t i = 0; i < nts; ++i) rule[i] = -1;
  for (const RulePlan& plan : rules_by_terminal_[static_cast<std::size_t>(
           term)]) {
    if (plan.pattern->children.size() != k) continue;
    int sum = 0;
    for (std::size_t i = 0; i < k && sum < kInf; ++i)
      sum = sat_add(sum, rel_match_locked(*plan.pattern->children[i],
                                          kid_rows[i]));
    if (sum >= kInf) continue;
    int total = sat_add(sum, plan.cost);
    std::size_t lhs = static_cast<std::size_t>(plan.lhs);
    if (total < cost[lhs]) {
      cost[lhs] = total;
      rule[lhs] = plan.id;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (int y = 0; y < nt_count_; ++y) {
      int base = cost[static_cast<std::size_t>(y)];
      if (base >= kInf) continue;
      for (const ChainPlan& c : chains_from_[static_cast<std::size_t>(y)]) {
        int total = sat_add(base, c.cost);
        std::size_t lhs = static_cast<std::size_t>(c.lhs);
        if (total < cost[lhs]) {
          cost[lhs] = total;
          rule[lhs] = c.id;
          changed = true;
        }
      }
    }
  }

  int delta = kInf;
  for (std::size_t i = 0; i < nts; ++i) delta = std::min(delta, cost[i]);
  if (delta >= kInf) delta = 0;
  for (std::size_t i = 0; i < nts; ++i)
    if (cost[i] < kInf) cost[i] -= delta;

  for (std::size_t i = 0; i < subs; ++i) sub[i] = kInf;
  for (int qi : subs_by_terminal_[static_cast<std::size_t>(term)]) {
    const PatNode* q = subpatterns_[static_cast<std::size_t>(qi)];
    if (q->children.size() != k) continue;
    int sum = 0;
    for (std::size_t i = 0; i < k && sum < kInf; ++i)
      sum = sat_add(sum, rel_match_locked(*q->children[i], kid_rows[i]));
    if (sum < kInf) sub[static_cast<std::size_t>(qi)] = sum - delta;
  }
  std::int32_t* meta = row + stride_ - 3;
  meta[0] = 0;
  meta[1] = -1;
  meta[2] = -1;
  return Transition{intern_row_locked(row), delta};
}

int TargetTables::compute_const_state_locked(int fit_index,
                                             int const_class) const {
  // #const leaves keep absolute costs (base 0) so that rules consuming the
  // leaf through an Imm/Const pattern (operand cost 0) and through a
  // NonTerm (operand cost = the leaf's absolute cost) agree on one base.
  const std::size_t nts = static_cast<std::size_t>(nt_count_);
  const std::size_t subs = subpatterns_.size();
  std::int32_t* row = scratch_row_.data();
  std::int32_t* cost = row;
  std::int32_t* rule = row + nts;
  std::int32_t* sub = row + 2 * nts;
  for (std::size_t i = 0; i < nts; ++i) cost[i] = kInf;
  for (std::size_t i = 0; i < nts; ++i) rule[i] = -1;
  for (const RulePlan& plan : const_root_rules_[0]) {
    bool matches = false;
    switch (plan.pattern->kind) {
      case PatNode::Kind::Imm:
        matches = fit_index >= 0 &&
                  fit_widths_[static_cast<std::size_t>(fit_index)] <=
                      plan.pattern->width;
        break;
      case PatNode::Kind::Const:
        matches = const_class >= 0 &&
                  const_values_[static_cast<std::size_t>(const_class)] ==
                      plan.pattern->value;
        break;
      case PatNode::Kind::Term:
        matches = plan.pattern->children.empty();
        break;
      case PatNode::Kind::NonTerm:
        break;
    }
    if (!matches) continue;
    std::size_t lhs = static_cast<std::size_t>(plan.lhs);
    if (plan.cost < cost[lhs]) {
      cost[lhs] = plan.cost;
      rule[lhs] = plan.id;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (int y = 0; y < nt_count_; ++y) {
      int base = cost[static_cast<std::size_t>(y)];
      if (base >= kInf) continue;
      for (const ChainPlan& c : chains_from_[static_cast<std::size_t>(y)]) {
        int total = sat_add(base, c.cost);
        std::size_t lhs = static_cast<std::size_t>(c.lhs);
        if (total < cost[lhs]) {
          cost[lhs] = total;
          rule[lhs] = c.id;
          changed = true;
        }
      }
    }
  }

  for (std::size_t i = 0; i < subs; ++i) sub[i] = kInf;
  for (int qi : subs_by_terminal_[static_cast<std::size_t>(const_term_)]) {
    const PatNode* q = subpatterns_[static_cast<std::size_t>(qi)];
    if (q->children.empty()) sub[static_cast<std::size_t>(qi)] = 0;
  }
  std::int32_t* meta = row + stride_ - 3;
  meta[0] = 1;
  meta[1] = fit_index;
  meta[2] = const_class;
  return intern_row_locked(row);
}

// --- frozen fast path -------------------------------------------------------

bool TargetTables::FrozenTables::lookup(TermId term, const int* children,
                                        std::size_t arity, Transition& out,
                                        std::int32_t* slot_out) const {
  if (term < 0 || static_cast<std::size_t>(term) >= op_begin.size())
    return false;
  for (std::int32_t oi = op_begin[static_cast<std::size_t>(term)];
       oi < op_end[static_cast<std::size_t>(term)]; ++oi) {
    const Op& op = ops[static_cast<std::size_t>(oi)];
    if (static_cast<std::size_t>(op.arity) != arity) continue;
    if (arity == 0) {
      if (!op.has_leaf) return false;
      out = op.leaf;
      if (slot_out) *slot_out = op.slot_base;
      return true;
    }
    const std::int32_t* maps = op.maps.data();
    std::int32_t row = 0;
    for (std::size_t p = 0; p + 1 < arity; ++p) {
      const unsigned s = static_cast<unsigned>(children[p]);
      if (s >= static_cast<unsigned>(state_count)) return false;
      std::int32_t idx = maps[p * static_cast<std::size_t>(state_count) + s];
      if (idx < 0) return false;
      row = row * op.dims[p] + idx;
    }
    const unsigned s = static_cast<unsigned>(children[arity - 1]);
    if (s >= static_cast<unsigned>(state_count)) return false;
    std::int32_t col =
        maps[(arity - 1) * static_cast<std::size_t>(state_count) + s];
    if (col < 0) return false;
    std::size_t slot = static_cast<std::size_t>(
        op.disp[static_cast<std::size_t>(row)] + col);
    if (slot >= op.check.size() || op.check[slot] != row) return false;
    out.state = op.val_state[slot];
    out.delta = op.val_delta[slot];
    if (slot_out) *slot_out = op.slot_base + static_cast<std::int32_t>(slot);
    return true;
  }
  return false;
}

int TargetTables::FrozenTables::const_lookup(int fit_index,
                                             int const_class) const {
  std::size_t idx = static_cast<std::size_t>(fit_index + 1) *
                        static_cast<std::size_t>(cc_dim) +
                    static_cast<std::size_t>(const_class + 1);
  if (idx >= const_state.size()) return -1;
  return const_state[idx];
}

// Pool layout (all host int32s; written to disk verbatim, so everything is
// an offset — never a pointer):
//   header[12]: byte-order marker, state_count, stride, fit_dim, cc_dim,
//               term_count, op_count, transitions, slot_count, 3 reserved
//   state rows      [state_count * stride]
//   const_state     [fit_dim * cc_dim]
//   op_begin        [term_count]
//   op_end          [term_count]
//   per op:
//     header[8]: term, arity, has_leaf, leaf_state, leaf_delta, slot_base,
//                disp_len, check_len
//     dims[arity]  maps[arity*state_count]  disp[disp_len]
//     check[check_len]  val_state[check_len]  val_delta[check_len]
void TargetTables::freeze_locked() const {
  OBS_SPAN("burstab.freeze");
  obs::metrics().counter("burstab.freeze").add(1);
  // A mapped base must fold back into the hash maps first, or its
  // transitions would vanish from the new snapshot.
  absorb_pool_locked();

  /// freeze-time staging of one Op (mutable vectors; packed into the pool
  /// once the displacement tables are final).
  struct OpBuild {
    std::int32_t term = -1;
    std::int32_t arity = 0;
    bool has_leaf = false;
    Transition leaf{};
    std::int32_t slot_base = 0;
    std::vector<std::int32_t> dims, maps, disp, check, val_state, val_delta;
  };

  const std::size_t fit_dim = fit_widths_.size() + 1;
  const int ccd = static_cast<int>(const_values_.size()) + 1;
  std::vector<std::int32_t> const_state(
      fit_dim * static_cast<std::size_t>(ccd), -1);
  for (const auto& [key, sid] : const_state_by_pair_) {
    std::size_t fit1 = static_cast<std::size_t>(key >> 32);
    std::size_t cc1 = static_cast<std::size_t>(key & 0xffffffff);
    const_state[fit1 * static_cast<std::size_t>(ccd) + cc1] = sid;
  }

  // Bucket the memoised transitions by (term, arity).
  const std::size_t terms = rules_by_terminal_.size();
  struct Group {
    std::vector<const std::pair<const TransKey, Transition>*> entries;
  };
  std::vector<std::vector<std::pair<int, Group>>> by_term(terms);  // (arity,)
  for (const auto& entry : trans_) {
    const TransKey& key = entry.first;
    if (key.term < 0 || static_cast<std::size_t>(key.term) >= terms) continue;
    auto& groups = by_term[static_cast<std::size_t>(key.term)];
    const int arity = static_cast<int>(key.children.size());
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == arity; });
    if (it == groups.end()) {
      groups.emplace_back(arity, Group{});
      it = groups.end() - 1;
    }
    it->second.entries.push_back(&entry);
  }

  std::vector<std::int32_t> op_begin(terms, 0);
  std::vector<std::int32_t> op_end(terms, 0);
  std::vector<OpBuild> built;
  std::size_t transitions = 0;
  const std::size_t sc = static_cast<std::size_t>(state_count_);
  // Snapshot-global transition-slot numbering (coverage identity): each op
  // owns a contiguous span — one slot for a leaf, check.size() slots for a
  // packed op (holes where check stays -1 are simply never hit).
  std::size_t slot_running = 0;
  for (std::size_t t = 0; t < terms; ++t) {
    op_begin[t] = static_cast<std::int32_t>(built.size());
    for (auto& [arity, group] : by_term[t]) {
      OpBuild op;
      op.term = static_cast<std::int32_t>(t);
      op.arity = arity;
      if (arity == 0) {
        op.has_leaf = true;
        op.leaf = group.entries.front()->second;
        op.slot_base = static_cast<std::int32_t>(slot_running);
        slot_running += 1;
        transitions += 1;
        built.push_back(std::move(op));
        continue;
      }
      const std::size_t k = static_cast<std::size_t>(arity);
      // Chase-style index maps: per child position, child state -> compact
      // index over the states actually seen there.
      op.dims.assign(k, 0);
      op.maps.assign(k * sc, -1);
      for (const auto* e : group.entries)
        for (std::size_t p = 0; p < k; ++p) {
          std::int32_t& slot = op.maps[p * sc + static_cast<std::size_t>(
                                                    e->first.children[p])];
          if (slot < 0) slot = op.dims[p]++;
        }
      std::size_t row_count = 1;
      for (std::size_t p = 0; p + 1 < k; ++p)
        row_count *= static_cast<std::size_t>(op.dims[p]);
      const std::size_t col_count = static_cast<std::size_t>(op.dims[k - 1]);
      if (row_count > kMaxFrozenRows) continue;  // stays on the hash path

      // Row-displacement packing: rows (all but the last child index,
      // flattened) share one value array; a check column verifies the
      // probed slot belongs to the probing row.
      std::vector<std::vector<std::pair<std::int32_t, Transition>>> rows(
          row_count);
      for (const auto* e : group.entries) {
        std::int32_t row = 0;
        for (std::size_t p = 0; p + 1 < k; ++p)
          row = row * op.dims[p] +
                op.maps[p * sc +
                        static_cast<std::size_t>(e->first.children[p])];
        std::int32_t col =
            op.maps[(k - 1) * sc +
                    static_cast<std::size_t>(e->first.children[k - 1])];
        rows[static_cast<std::size_t>(row)].emplace_back(col, e->second);
      }
      std::vector<std::size_t> order(row_count);
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return rows[a].size() > rows[b].size();
                       });
      op.disp.assign(row_count, 0);
      op.check.assign(col_count, -1);
      op.val_state.assign(col_count, -1);
      op.val_delta.assign(col_count, 0);
      for (std::size_t r : order) {
        if (rows[r].empty()) continue;
        std::size_t d = 0;
        for (;; ++d) {
          bool fits = true;
          for (const auto& [col, tr] : rows[r]) {
            (void)tr;
            std::size_t slot = d + static_cast<std::size_t>(col);
            if (slot < op.check.size() && op.check[slot] != -1) {
              fits = false;
              break;
            }
          }
          if (fits) break;
        }
        std::size_t need = d + col_count;
        if (op.check.size() < need) {
          op.check.resize(need, -1);
          op.val_state.resize(need, -1);
          op.val_delta.resize(need, 0);
        }
        op.disp[r] = static_cast<std::int32_t>(d);
        for (const auto& [col, tr] : rows[r]) {
          std::size_t slot = d + static_cast<std::size_t>(col);
          op.check[slot] = static_cast<std::int32_t>(r);
          op.val_state[slot] = tr.state;
          op.val_delta[slot] = tr.delta;
        }
        transitions += rows[r].size();
      }
      op.slot_base = static_cast<std::int32_t>(slot_running);
      slot_running += op.check.size();
      built.push_back(std::move(op));
    }
    op_end[t] = static_cast<std::int32_t>(built.size());
  }

  // Pack everything into one position-independent pool and publish the
  // snapshot as views over it.
  std::size_t words = kPoolHeaderWords +
                      sc * static_cast<std::size_t>(stride_) +
                      const_state.size() + 2 * terms;
  for (const OpBuild& b : built)
    words += kPoolOpHeaderWords + b.dims.size() + b.maps.size() +
             b.disp.size() + 3 * b.check.size();

  auto f = std::make_unique<FrozenTables>();
  std::vector<std::int32_t>& pool = f->pool;
  pool.reserve(words);
  pool.push_back(kPoolByteOrder);
  pool.push_back(state_count_);
  pool.push_back(stride_);
  pool.push_back(static_cast<std::int32_t>(fit_dim));
  pool.push_back(ccd);
  pool.push_back(static_cast<std::int32_t>(terms));
  pool.push_back(static_cast<std::int32_t>(built.size()));
  pool.push_back(static_cast<std::int32_t>(transitions));
  pool.push_back(static_cast<std::int32_t>(slot_running));
  pool.insert(pool.end(), 3, 0);  // reserved
  for (int id = 0; id < state_count_; ++id) {
    const std::int32_t* row = state_row_locked(id);
    pool.insert(pool.end(), row, row + stride_);
  }
  pool.insert(pool.end(), const_state.begin(), const_state.end());
  pool.insert(pool.end(), op_begin.begin(), op_begin.end());
  pool.insert(pool.end(), op_end.begin(), op_end.end());
  for (const OpBuild& b : built) {
    pool.push_back(b.term);
    pool.push_back(b.arity);
    pool.push_back(b.has_leaf ? 1 : 0);
    pool.push_back(b.leaf.state);
    pool.push_back(b.leaf.delta);
    pool.push_back(b.slot_base);
    pool.push_back(static_cast<std::int32_t>(b.disp.size()));
    pool.push_back(static_cast<std::int32_t>(b.check.size()));
    pool.insert(pool.end(), b.dims.begin(), b.dims.end());
    pool.insert(pool.end(), b.maps.begin(), b.maps.end());
    pool.insert(pool.end(), b.disp.begin(), b.disp.end());
    pool.insert(pool.end(), b.check.begin(), b.check.end());
    pool.insert(pool.end(), b.val_state.begin(), b.val_state.end());
    pool.insert(pool.end(), b.val_delta.begin(), b.val_delta.end());
  }
  assert(pool.size() == words);
  bool ok = f->init_from_pool(pool.data(), pool.size(), stride_, terms,
                              fit_dim, ccd);
  assert(ok && "self-built pool must validate");
  if (!ok) return;  // release builds: keep the previous snapshot

  frozen_history_.push_back(std::move(f));
  frozen_ptr_.store(frozen_history_.back().get(), std::memory_order_release);
  frozen_misses_.store(0, std::memory_order_relaxed);
  frozen_source_transitions_ = trans_.size();
  frozen_source_const_ = const_state_by_pair_.size();
  ++freeze_count_;
}

bool TargetTables::FrozenTables::init_from_pool(const std::int32_t* w,
                                                std::size_t word_count,
                                                int stride,
                                                std::size_t term_count,
                                                std::size_t fit_dim_expected,
                                                int cc_dim_expected) {
  if (word_count < kPoolHeaderWords) return false;
  if (w[0] != kPoolByteOrder) return false;
  const std::int32_t sc = w[1];
  if (sc < 0 || sc > (1 << 22)) return false;
  if (w[2] != stride) return false;
  if (w[3] != static_cast<std::int32_t>(fit_dim_expected)) return false;
  if (w[4] != cc_dim_expected) return false;
  if (w[5] != static_cast<std::int32_t>(term_count)) return false;
  const std::int32_t op_count = w[6];
  if (op_count < 0 || w[7] < 0 || w[8] < 0) return false;
  state_count = sc;
  cc_dim = cc_dim_expected;
  transitions = static_cast<std::size_t>(w[7]);
  slot_count = static_cast<std::size_t>(w[8]);
  pool_data = w;
  pool_words = word_count;

  std::size_t pos = kPoolHeaderWords;
  auto span = [&](std::size_t len, Span32& out) -> bool {
    if (len > word_count - pos) return false;
    out = Span32{w + pos, len};
    pos += len;
    return true;
  };

  const std::size_t scz = static_cast<std::size_t>(sc);
  const std::size_t stridez = static_cast<std::size_t>(stride);
  if (scz * stridez > word_count - pos) return false;
  rows.resize(scz);
  for (std::size_t i = 0; i < scz; ++i) {
    const std::int32_t* row = w + pos + i * stridez;
    // The meta words index fit_widths_ / const_values_ downstream — bound
    // them here so a corrupt blob cannot steer reads out of those arrays.
    const std::int32_t* meta = row + stridez - 3;
    if (meta[1] < -1 || meta[1] + 1 >= static_cast<std::int32_t>(fit_dim_expected))
      return false;
    if (meta[2] < -1 || meta[2] + 1 >= cc_dim_expected) return false;
    rows[i] = row;
  }
  pos += scz * stridez;

  if (!span(fit_dim_expected * static_cast<std::size_t>(cc_dim_expected),
            const_state))
    return false;
  for (std::size_t i = 0; i < const_state.size(); ++i)
    if (const_state[i] < -1 || const_state[i] >= sc) return false;
  if (!span(term_count, op_begin) || !span(term_count, op_end)) return false;
  for (std::size_t t = 0; t < term_count; ++t)
    if (op_begin[t] < 0 || op_begin[t] > op_end[t] || op_end[t] > op_count)
      return false;

  ops.reserve(static_cast<std::size_t>(op_count));
  for (std::int32_t i = 0; i < op_count; ++i) {
    if (kPoolOpHeaderWords > word_count - pos) return false;
    Op op;
    op.term = w[pos];
    op.arity = w[pos + 1];
    op.has_leaf = w[pos + 2] != 0;
    op.leaf.state = w[pos + 3];
    op.leaf.delta = w[pos + 4];
    op.slot_base = w[pos + 5];
    const std::int32_t disp_len = w[pos + 6];
    const std::int32_t check_len = w[pos + 7];
    pos += kPoolOpHeaderWords;
    if (op.term < 0 || static_cast<std::size_t>(op.term) >= term_count)
      return false;
    if (op.arity < 0 || op.arity > 64) return false;
    if (disp_len < 0 || check_len < 0) return false;
    const std::size_t k = static_cast<std::size_t>(op.arity);
    if (!span(k, op.dims) || !span(k * scz, op.maps) ||
        !span(static_cast<std::size_t>(disp_len), op.disp) ||
        !span(static_cast<std::size_t>(check_len), op.check) ||
        !span(static_cast<std::size_t>(check_len), op.val_state) ||
        !span(static_cast<std::size_t>(check_len), op.val_delta))
      return false;
    if (op.arity == 0) {
      if (op.has_leaf && (op.leaf.state < 0 || op.leaf.state >= sc))
        return false;
    } else {
      for (std::size_t p = 0; p < k; ++p) {
        if (op.dims[p] < 0) return false;
        for (std::size_t s = 0; s < scz; ++s) {
          std::int32_t idx = op.maps[p * scz + s];
          if (idx < -1 || idx >= op.dims[p]) return false;
        }
      }
      const std::int32_t col_count = op.dims[k - 1];
      for (std::size_t r = 0; r < op.disp.size(); ++r)
        if (op.disp[r] < 0 || op.disp[r] + col_count > check_len)
          return false;
      for (std::size_t s = 0; s < op.check.size(); ++s) {
        if (op.check[s] < -1 || op.check[s] >= disp_len) return false;
        if (op.check[s] >= 0 &&
            (op.val_state[s] < 0 || op.val_state[s] >= sc))
          return false;
      }
    }
    ops.push_back(op);
  }
  for (std::size_t t = 0; t < term_count; ++t)
    for (std::int32_t oi = op_begin[t]; oi < op_end[t]; ++oi)
      if (ops[static_cast<std::size_t>(oi)].term !=
          static_cast<std::int32_t>(t))
        return false;
  return pos == word_count;
}

void TargetTables::adopt_pool_locked(std::unique_ptr<FrozenTables> f) {
  base_state_count_ = f->state_count;
  state_count_ = f->state_count;
  base_rows_ = f->rows.empty() ? nullptr : f->rows.front();
  state_index_seeded_ = base_state_count_ == 0;
  pool_absorbed_ = false;
  frozen_source_transitions_ = 0;
  frozen_source_const_ = 0;
  frozen_misses_.store(0, std::memory_order_relaxed);
  frozen_history_.push_back(std::move(f));
  frozen_ptr_.store(frozen_history_.back().get(), std::memory_order_release);
  // freeze_count_ stays 0: a warm load performs no freeze — stats().freezes
  // reports how many snapshot compactions this process actually ran.
}

void TargetTables::absorb_pool_locked() const {
  if (pool_absorbed_) return;
  pool_absorbed_ = true;
  const FrozenTables& f = *frozen_history_.front();
  const std::size_t scz = static_cast<std::size_t>(f.state_count);
  for (const FrozenTables::Op& op : f.ops) {
    if (op.arity == 0) {
      if (op.has_leaf)
        trans_.emplace(TransKey{op.term, {}}, op.leaf);
      continue;
    }
    const std::size_t k = static_cast<std::size_t>(op.arity);
    // Inverse of the Chase maps: compact index -> child state (injective by
    // construction — each index was assigned to exactly one first-seen
    // state).
    std::vector<std::vector<int>> inv(k);
    for (std::size_t p = 0; p < k; ++p) {
      inv[p].assign(static_cast<std::size_t>(op.dims[p]), -1);
      for (std::size_t s = 0; s < scz; ++s) {
        std::int32_t idx = op.maps[p * scz + s];
        if (idx >= 0 && inv[p][static_cast<std::size_t>(idx)] < 0)
          inv[p][static_cast<std::size_t>(idx)] = static_cast<int>(s);
      }
    }
    for (std::size_t slot = 0; slot < op.check.size(); ++slot) {
      std::int32_t row = op.check[slot];
      if (row < 0) continue;
      std::int32_t col = static_cast<std::int32_t>(slot) -
                         op.disp[static_cast<std::size_t>(row)];
      if (col < 0 || col >= op.dims[k - 1]) continue;
      TransKey key;
      key.term = op.term;
      key.children.resize(k);
      // Mixed-radix decode of the flattened row (digit p has radix
      // dims[p]), inverting freeze's row = row * dims[p] + idx.
      std::int32_t rest = row;
      bool valid = true;
      for (std::size_t p = k - 1; p-- > 0;) {
        std::int32_t idx = rest % op.dims[p];
        rest /= op.dims[p];
        int s = inv[p][static_cast<std::size_t>(idx)];
        if (s < 0) valid = false;
        key.children[p] = s;
      }
      int last = inv[k - 1][static_cast<std::size_t>(col)];
      if (last < 0) valid = false;
      key.children[k - 1] = last;
      if (!valid) continue;
      trans_.emplace(std::move(key),
                     Transition{op.val_state[slot], op.val_delta[slot]});
    }
  }
  const std::size_t fit_dim =
      f.cc_dim > 0 ? f.const_state.size() / static_cast<std::size_t>(f.cc_dim)
                   : 0;
  for (std::size_t fit1 = 0; fit1 < fit_dim; ++fit1)
    for (std::size_t cc1 = 0; cc1 < static_cast<std::size_t>(f.cc_dim);
         ++cc1) {
      std::int32_t sid =
          f.const_state[fit1 * static_cast<std::size_t>(f.cc_dim) + cc1];
      if (sid < 0) continue;
      std::int64_t key = (static_cast<std::int64_t>(fit1) << 32) |
                         static_cast<std::int64_t>(cc1);
      const_state_by_pair_.emplace(key, sid);
    }
}

void TargetTables::freeze() const {
  std::unique_lock lock(mu_);
  freeze_locked();
}

void TargetTables::count_miss_and_maybe_refreeze(
    const FrozenTables* f) const {
  if (!freeze_enabled_ || f == nullptr) return;
  obs::metrics().counter("burstab.frozen_miss").add(1);
  std::uint64_t n = frozen_misses_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n < refreeze_misses_) return;
  std::unique_lock lock(mu_);
  // Raced re-check: another thread may have refrozen (and reset the
  // counter) while this one waited for the lock.
  if (frozen_misses_.load(std::memory_order_relaxed) < refreeze_misses_)
    return;
  // Superseded snapshots are retained for the tables' lifetime (lock-free
  // readers may still hold them), so re-freezing must stay bounded: skip
  // when nothing new would fold in (misses against an operator freeze()
  // can never cover, e.g. past kMaxFrozenRows) and stop churning past a
  // hard snapshot cap — the memoised hash path keeps serving correctly.
  if (trans_.size() == frozen_source_transitions_ ||
      freeze_count_ >= kMaxFreezes) {
    frozen_misses_.store(0, std::memory_order_relaxed);
    return;
  }
  freeze_locked();
}

// --- parser-facing lookups --------------------------------------------------

int TargetTables::fit_index_of(std::int64_t value) const {
  for (std::size_t i = 0; i < fit_widths_.size(); ++i)
    if (treeparse::TreeParser::immediate_fits(value, fit_widths_[i]))
      return static_cast<int>(i);
  return -1;
}

int TargetTables::const_class_index(std::int64_t value) const {
  auto it = const_class_of_.find(value);
  return it == const_class_of_.end() ? -1 : it->second;
}

int TargetTables::const_leaf_state(std::int64_t value) const {
  int fit_index = fit_index_of(value);
  int const_class = const_class_index(value);
  const FrozenTables* f = frozen();
  if (f) {
    int sid = f->const_lookup(fit_index, const_class);
    if (sid >= 0) return sid;
  }
  std::int64_t key = const_pair_key(fit_index, const_class);
  {
    std::shared_lock lock(mu_);
    auto it = const_state_by_pair_.find(key);
    if (it != const_state_by_pair_.end()) {
      int sid = it->second;
      lock.unlock();
      count_miss_and_maybe_refreeze(f);
      return sid;
    }
  }
  int id;
  {
    std::unique_lock lock(mu_);
    auto it = const_state_by_pair_.find(key);
    if (it != const_state_by_pair_.end()) {
      id = it->second;
    } else {
      id = compute_const_state_locked(fit_index, const_class);
      const_state_by_pair_.emplace(key, id);
    }
  }
  count_miss_and_maybe_refreeze(f);
  return id;
}

TargetTables::Transition TargetTables::transition(
    TermId term, const std::vector<int>& children) const {
  const FrozenTables* f = frozen();
  if (f) {
    Transition t;
    if (f->lookup(term, children.data(), children.size(), t)) return t;
  }
  return transition_cold(term, children);
}

TargetTables::Transition TargetTables::transition_cold(
    TermId term, const std::vector<int>& children) const {
  const FrozenTables* f = frozen();
  TransKeyView view{term, &children};
  {
    std::shared_lock lock(mu_);
    auto it = trans_.find(view);
    if (it != trans_.end()) {
      Transition t = it->second;
      lock.unlock();
      count_miss_and_maybe_refreeze(f);
      return t;
    }
  }
  Transition t;
  {
    std::unique_lock lock(mu_);
    auto it = trans_.find(view);
    if (it != trans_.end()) {
      t = it->second;
    } else {
      t = compute_transition_locked(term, children);
      trans_.emplace(TransKey{term, children}, t);
    }
  }
  count_miss_and_maybe_refreeze(f);
  return t;
}

const std::vector<int>& TargetTables::constrained_rules_of(TermId t) const {
  static const std::vector<int> kEmpty;
  if (t < 0 || static_cast<std::size_t>(t) >= constrained_by_terminal_.size())
    return kEmpty;
  return constrained_by_terminal_[static_cast<std::size_t>(t)];
}

bool TargetTables::ConstrainedPrecheck::check(
    const treeparse::SubjectNode& node) const {
  if (node.children.size() != arity) return false;
  for (const Req& r : reqs) {
    const treeparse::SubjectNode& c = *node.children[r.pos];
    if (r.want_const) {
      if (!c.is_const) return false;
    } else if (c.is_const || c.term != r.term ||
               c.children.size() != r.term_arity) {
      return false;
    }
  }
  return true;
}

const std::vector<TargetTables::ConstrainedPrecheck>&
TargetTables::constrained_prechecks_of(TermId t) const {
  static const std::vector<ConstrainedPrecheck> kEmpty;
  if (t < 0 || static_cast<std::size_t>(t) >= constrained_precheck_.size())
    return kEmpty;
  return constrained_precheck_[static_cast<std::size_t>(t)];
}

void TargetTables::raw_candidates(TermId term,
                                  const std::vector<int>& children,
                                  std::vector<int>& cost,
                                  std::vector<int>& rule) const {
  std::shared_lock lock(mu_);
  const std::size_t k = children.size();
  cost.assign(static_cast<std::size_t>(nt_count_), kInf);
  rule.assign(static_cast<std::size_t>(nt_count_), -1);
  for (const RulePlan& plan :
       rules_by_terminal_[static_cast<std::size_t>(term)]) {
    if (plan.pattern->children.size() != k) continue;
    int sum = 0;
    for (std::size_t i = 0; i < k && sum < kInf; ++i)
      sum = sat_add(sum, rel_match_locked(*plan.pattern->children[i],
                                          state_row_locked(children[i])));
    if (sum >= kInf) continue;
    int total = sat_add(sum, plan.cost);
    std::size_t lhs = static_cast<std::size_t>(plan.lhs);
    if (total < cost[lhs]) {
      cost[lhs] = total;
      rule[lhs] = plan.id;
    }
  }
}

int TargetTables::intern_state(const StateData& s) const {
  // The fallback path re-interns the states of side-constrained nodes on
  // every parse; under concurrent readers the state almost always exists
  // already, so probe under the shared lock before escalating.
  thread_local std::vector<std::int32_t> row;
  row.resize(static_cast<std::size_t>(stride_));
  fill_row_from_state(s, row.data());
  {
    std::shared_lock lock(mu_);
    auto it = state_index_.find(RowKey{row.data()});
    if (it != state_index_.end()) return it->second;
  }
  std::unique_lock lock(mu_);
  return intern_row_locked(row.data());
}

StateData TargetTables::state(int id) const {
  std::shared_lock lock(mu_);
  const std::int32_t* row = state_row_locked(id);
  const std::size_t nts = static_cast<std::size_t>(nt_count_);
  const std::size_t subs = subpatterns_.size();
  StateData s;
  s.cost.assign(row, row + nts);
  s.rule.assign(row + nts, row + 2 * nts);
  s.sub.assign(row + 2 * nts, row + 2 * nts + subs);
  const std::int32_t* meta = row + stride_ - 3;
  s.is_const_leaf = meta[0] != 0;
  s.fit_width_index = meta[1];
  s.const_class = meta[2];
  return s;
}

StateView TargetTables::state_view(int id) const {
  std::shared_lock lock(mu_);
  return view_of_row(state_row_locked(id));
}

bool TargetTables::terminal_has_constrained(TermId t) const {
  return t >= 0 &&
         static_cast<std::size_t>(t) < terminal_constrained_.size() &&
         terminal_constrained_[static_cast<std::size_t>(t)];
}

bool TargetTables::rule_is_constrained(int rule_id) const {
  return rule_id >= 0 &&
         static_cast<std::size_t>(rule_id) < constrained_rule_.size() &&
         constrained_rule_[static_cast<std::size_t>(rule_id)];
}

int TargetTables::subpattern_index(const PatNode* p) const {
  auto it = sub_index_.find(p);
  return it == sub_index_.end() ? -1 : it->second;
}

const std::vector<int>& TargetTables::subpatterns_of_terminal(
    TermId t) const {
  static const std::vector<int> kEmpty;
  if (t < 0 || static_cast<std::size_t>(t) >= subs_by_terminal_.size())
    return kEmpty;
  return subs_by_terminal_[static_cast<std::size_t>(t)];
}

const PatNode* TargetTables::subpattern(int index) const {
  return subpatterns_[static_cast<std::size_t>(index)];
}

TableStats TargetTables::stats() const {
  std::shared_lock lock(mu_);
  TableStats s;
  s.states = static_cast<std::size_t>(state_count_);
  s.transitions = trans_.size();
  s.subpatterns = subpatterns_.size();
  std::size_t constrained = 0;
  for (bool b : constrained_rule_)
    if (b) ++constrained;
  s.constrained_rules = constrained;
  s.table_rules = constrained_rule_.size() - constrained;
  s.const_classes = const_state_by_pair_.size();
  s.closure_complete = closure_complete_;
  s.freezes = freeze_count_;
  if (const FrozenTables* f = frozen_ptr_.load(std::memory_order_relaxed)) {
    s.frozen_states = static_cast<std::size_t>(f->state_count);
    s.frozen_transitions = f->transitions;
  }
  s.frozen_misses = frozen_misses_.load(std::memory_order_relaxed);
  return s;
}

// --- eager closure ----------------------------------------------------------

void TargetTables::run_closure(const TableBuildOptions& options) {
  std::unique_lock lock(mu_);
  const std::size_t work_cap = options.max_transitions * 64;
  std::size_t work = 0;

  // Leaf seeding: one state per hardwired pattern constant, one per
  // immediate-fit class, one per leaf operator.
  for (std::int64_t v : const_values_) {
    int fit_index = fit_index_of(v);
    std::int64_t key = const_pair_key(fit_index, const_class_of_.at(v));
    if (!const_state_by_pair_.count(key))
      const_state_by_pair_.emplace(
          key, compute_const_state_locked(fit_index, const_class_of_.at(v)));
  }
  for (int fi = -1; fi < static_cast<int>(fit_widths_.size()); ++fi) {
    std::int64_t key = const_pair_key(fi, -1);
    if (!const_state_by_pair_.count(key))
      const_state_by_pair_.emplace(key,
                                   compute_const_state_locked(fi, -1));
  }
  const std::vector<int> no_children;
  for (std::size_t t = 0; t < rules_by_terminal_.size(); ++t) {
    if (terminal_constrained_[t]) continue;
    TransKey key{static_cast<TermId>(t), no_children};
    if (!trans_.count(key))
      trans_.emplace(key, compute_transition_locked(static_cast<TermId>(t),
                                                    no_children));
  }

  // Bottom-up closure: combine known states under every operator arity until
  // nothing new appears or a budget is hit. Tuples whose prefix already
  // rules out every rule and subpattern are pruned.
  std::size_t frontier_begin = 0;
  bool out_of_budget = false;
  while (frontier_begin < static_cast<std::size_t>(state_count_) &&
         !out_of_budget) {
    std::size_t frontier_end = static_cast<std::size_t>(state_count_);
    for (std::size_t t = 0;
         t < rules_by_terminal_.size() && !out_of_budget; ++t) {
      if (terminal_constrained_[t]) continue;
      if (static_cast<TermId>(t) == const_term_) continue;
      for (int arity : arities_by_terminal_[t]) {
        if (arity < 1) continue;
        std::vector<const RulePlan*> plans;
        for (const RulePlan& p :
             rules_by_terminal_[t])
          if (static_cast<int>(p.pattern->children.size()) == arity)
            plans.push_back(&p);
        std::vector<const PatNode*> subs;
        for (int qi : subs_by_terminal_[t]) {
          const PatNode* q = subpatterns_[static_cast<std::size_t>(qi)];
          if (static_cast<int>(q->children.size()) == arity)
            subs.push_back(q);
        }
        if (plans.empty() && subs.empty()) continue;

        std::vector<int> tuple(static_cast<std::size_t>(arity));
        auto enumerate = [&](auto&& self, int pos, bool has_new) -> void {
          if (out_of_budget) return;
          if (++work > work_cap ||
              static_cast<std::size_t>(state_count_) >= options.max_states ||
              trans_.size() >= options.max_transitions) {
            out_of_budget = true;
            return;
          }
          if (pos == arity) {
            if (!has_new) return;
            TransKey key{static_cast<TermId>(t), tuple};
            if (trans_.count(key)) return;
            trans_.emplace(std::move(key),
                           compute_transition_locked(
                               static_cast<TermId>(t), tuple));
            return;
          }
          for (std::size_t sid = 0; sid < frontier_end; ++sid) {
            const std::int32_t* s = state_row_locked(static_cast<int>(sid));
            // Prune: some rule or subpattern must still be able to match
            // with this state at position `pos`.
            bool viable = false;
            for (const RulePlan* p : plans) {
              if (rel_match_locked(
                      *p->pattern->children[static_cast<std::size_t>(pos)],
                      s) < kInf) {
                viable = true;
                break;
              }
            }
            if (!viable) {
              for (const PatNode* q : subs) {
                if (rel_match_locked(
                        *q->children[static_cast<std::size_t>(pos)], s) <
                    kInf) {
                  viable = true;
                  break;
                }
              }
            }
            if (!viable) continue;
            tuple[static_cast<std::size_t>(pos)] = static_cast<int>(sid);
            self(self, pos + 1, has_new || sid >= frontier_begin);
            if (out_of_budget) return;
          }
        };
        enumerate(enumerate, 0, false);
      }
    }
    frontier_begin = frontier_end;
  }
  closure_complete_ = !out_of_budget;
  if (freeze_enabled_) freeze_locked();
}

// --- persistence ------------------------------------------------------------

namespace {
// "BTR3": frozen tables persist their position-independent pool verbatim
// (mmap-able, zero-copy); hash-mode tables keep the BTR2-era dynamic
// states + transitions sections. The magic bump keeps stale blobs out.
constexpr std::uint32_t kTablesMagic = 0x42545233;
}

void TargetTables::serialize(std::string& out) const {
  // Exclusive (not shared) because serializing frozen tables may first fold
  // pending dynamic fills into a fresh snapshot.
  std::unique_lock lock(mu_);
  ByteWriter w;
  w.u32(kTablesMagic);
  w.u64(fingerprint_);
  w.u32(static_cast<std::uint32_t>(nt_count_));
  w.u32(static_cast<std::uint32_t>(subpatterns_.size()));
  w.u8(closure_complete_ ? 1 : 0);
  const FrozenTables* f = frozen_ptr_.load(std::memory_order_relaxed);
  const bool frozen_mode = freeze_enabled_ && f != nullptr;
  w.u8(frozen_mode ? 1 : 0);
  if (frozen_mode) {
    // The pool must cover every memoised entry. Transitions on operators
    // past kMaxFrozenRows are the one exception: they stay hash-only and
    // are re-derived on demand after a warm load (a perf footnote on a
    // pathological operator, never a correctness issue).
    if (trans_.size() != frozen_source_transitions_ ||
        const_state_by_pair_.size() != frozen_source_const_) {
      freeze_locked();
      f = frozen_ptr_.load(std::memory_order_relaxed);
    }
    w.u32(static_cast<std::uint32_t>(f->pool_words));
    // Pad so the pool lands 4-byte aligned relative to the start of `out`
    // (the cache blob header is a multiple of 4 bytes, so payload-relative
    // alignment is file-relative alignment — the mmap zero-copy condition).
    std::size_t here = out.size() + w.bytes().size() + 1;  // + pad_len byte
    std::uint8_t pad = static_cast<std::uint8_t>((4 - here % 4) % 4);
    w.u8(pad);
    for (std::uint8_t i = 0; i < pad; ++i) w.u8(0);
    w.raw(f->pool_data, f->pool_words * sizeof(std::int32_t));
    w.append_to(out);
    return;
  }
  w.u32(static_cast<std::uint32_t>(state_count_));
  const std::size_t payload =
      static_cast<std::size_t>(stride_) - 3;  // cost + rule + sub
  for (int id = 0; id < state_count_; ++id) {
    const std::int32_t* row = state_row_locked(id);
    for (std::size_t i = 0; i < payload; ++i) w.i32(row[i]);
    const std::int32_t* meta = row + stride_ - 3;
    w.u8(meta[0] != 0 ? 1 : 0);
    w.i32(meta[1]);
    w.i32(meta[2]);
  }
  w.u32(static_cast<std::uint32_t>(trans_.size()));
  for (const auto& [key, t] : trans_) {
    w.i32(key.term);
    w.u32(static_cast<std::uint32_t>(key.children.size()));
    for (int c : key.children) w.i32(c);
    w.i32(t.state);
    w.i32(t.delta);
  }
  w.u32(static_cast<std::uint32_t>(const_state_by_pair_.size()));
  for (const auto& [key, sid] : const_state_by_pair_) {
    w.i64(key);
    w.i32(sid);
  }
  w.append_to(out);
}

std::unique_ptr<TargetTables> TargetTables::deserialize(
    const grammar::TreeGrammar& g, std::string_view blob,
    std::size_t& offset, std::shared_ptr<const void> pin) {
  TableBuildOptions no_precompute;
  no_precompute.precompute = false;
  no_precompute.freeze = false;  // adopted below iff the blob was frozen
  auto tables = std::make_unique<TargetTables>(g, no_precompute);

  ByteReader r(blob, offset);
  if (r.u32() != kTablesMagic) return nullptr;
  if (r.u64() != tables->fingerprint_) return nullptr;
  if (r.u32() != static_cast<std::uint32_t>(tables->nt_count_)) return nullptr;
  if (r.u32() != static_cast<std::uint32_t>(tables->subpatterns_.size()))
    return nullptr;
  tables->closure_complete_ = r.u8() != 0;
  const bool was_frozen = r.u8() != 0;
  // Hash-mode blobs stay hash-mode; frozen blobs keep the re-freeze policy.
  tables->freeze_enabled_ = was_frozen;
  if (was_frozen) {
    // Frozen pool: validate and adopt in place — no state re-interning, no
    // transition rehash, no re-freeze. Zero-copy when the caller pins the
    // blob's memory (mmap) and the pool is aligned; one memcpy otherwise.
    OBS_SPAN("burstab.tables.map");
    std::uint32_t n_words = r.u32();
    std::uint8_t pad = r.u8();
    if (!r.ok() || pad > 3) return nullptr;
    for (std::uint8_t i = 0; i < pad; ++i) (void)r.u8();
    if (!r.ok()) return nullptr;
    const std::size_t pos = r.pos();
    if (n_words > (blob.size() - pos) / sizeof(std::int32_t)) return nullptr;
    const char* bytes = blob.data() + pos;
    auto f = std::make_unique<FrozenTables>();
    const std::int32_t* pool;
    const bool aligned =
        (reinterpret_cast<std::uintptr_t>(bytes) & 3u) == 0;
    if (pin && aligned) {
      pool = reinterpret_cast<const std::int32_t*>(bytes);
      f->pin = std::move(pin);
      obs::metrics().counter("burstab.tables.map_zero_copy").add(1);
    } else {
      f->pool.resize(n_words);
      std::memcpy(f->pool.data(), bytes,
                  static_cast<std::size_t>(n_words) * sizeof(std::int32_t));
      pool = f->pool.data();
      obs::metrics().counter("burstab.tables.map_copied").add(1);
    }
    if (!f->init_from_pool(pool, n_words, tables->stride_,
                           tables->rules_by_terminal_.size(),
                           tables->fit_widths_.size() + 1,
                           static_cast<int>(tables->const_values_.size()) + 1))
      return nullptr;
    offset = pos + static_cast<std::size_t>(n_words) * sizeof(std::int32_t);
    std::unique_lock lock(tables->mu_);
    tables->adopt_pool_locked(std::move(f));
    return tables;
  }
  std::uint32_t n_states = r.u32();
  if (n_states > 1u << 22) return nullptr;
  const std::size_t payload =
      static_cast<std::size_t>(tables->stride_) - 3;
  std::vector<std::int32_t> row(static_cast<std::size_t>(tables->stride_));
  for (std::uint32_t i = 0; i < n_states && r.ok(); ++i) {
    for (std::size_t j = 0; j < payload; ++j) row[j] = r.i32();
    row[payload] = r.u8() != 0 ? 1 : 0;
    row[payload + 1] = r.i32();
    row[payload + 2] = r.i32();
    if (!r.ok()) return nullptr;
    if (tables->intern_row_locked(row.data()) != static_cast<int>(i))
      return nullptr;  // duplicate or reordered states: corrupt blob
  }
  std::uint32_t n_trans = r.u32();
  if (n_trans > 1u << 24) return nullptr;
  for (std::uint32_t i = 0; i < n_trans && r.ok(); ++i) {
    TransKey key;
    key.term = r.i32();
    std::uint32_t k = r.u32();
    if (k > 64) return nullptr;
    key.children.resize(k);
    for (std::uint32_t j = 0; j < k; ++j) key.children[j] = r.i32();
    Transition t;
    t.state = r.i32();
    t.delta = r.i32();
    if (!r.ok() || t.state < 0 || t.state >= tables->state_count_)
      return nullptr;
    for (int c : key.children)
      if (c < 0 || c >= tables->state_count_) return nullptr;
    tables->trans_.emplace(std::move(key), t);
  }
  std::uint32_t n_const = r.u32();
  if (n_const > 1u << 22) return nullptr;
  for (std::uint32_t i = 0; i < n_const && r.ok(); ++i) {
    std::int64_t key = r.i64();
    int sid = r.i32();
    if (sid < 0 || sid >= tables->state_count_) return nullptr;
    tables->const_state_by_pair_.emplace(key, sid);
  }
  if (!r.ok()) return nullptr;
  offset = r.pos();
  return tables;
}

}  // namespace record::burstab
