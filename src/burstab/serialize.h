// Binary (de)serialisation for retargeting artifacts: tree grammars, RT
// template bases (including BDD execution conditions) and BURS state tables.
//
// The format is a fixed-width little-endian byte stream — no framing library,
// no versioned schema evolution; a format-version word plus a content hash of
// the producing HDL model and options guard against stale or foreign blobs
// (see cache.h). Readers never trust lengths: every decode checks bounds and
// flips a sticky failure flag that callers test once at the end.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "grammar/grammar.h"
#include "rtl/template.h"

namespace record::burstab {

/// FNV-1a 64-bit content hash.
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes,
                                  std::uint64_t seed = 14695981039346656037ull);

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void str(std::string_view s);
  void raw(const void* p, std::size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }

  [[nodiscard]] const std::string& bytes() const { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }
  void append_to(std::string& out) const { out += buf_; }

 private:
  std::string buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes, std::size_t offset = 0)
      : bytes_(bytes), pos_(offset) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();

  [[nodiscard]] bool ok() const { return !failed_; }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  void fail() { failed_ = true; }

 private:
  [[nodiscard]] bool take(std::size_t n);

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

// --- tree grammars ----------------------------------------------------------

void write_grammar(ByteWriter& w, const grammar::TreeGrammar& g);
[[nodiscard]] bool read_grammar(ByteReader& r, grammar::TreeGrammar& g);

/// Canonical serialised form of the grammar, hashed; identifies a grammar
/// across processes (used to pair cached tables with their grammar).
[[nodiscard]] std::uint64_t grammar_fingerprint(const grammar::TreeGrammar& g);

// --- RT template bases ------------------------------------------------------

void write_template_base(ByteWriter& w, const rtl::TemplateBase& base);
/// Reconstructs the base including a fresh BddManager holding all execution
/// conditions. Returns false (base unspecified) on malformed input.
[[nodiscard]] bool read_template_base(ByteReader& r, rtl::TemplateBase& base);

}  // namespace record::burstab
