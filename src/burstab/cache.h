// Persistent target cache: retargeting artifacts keyed by a content hash of
// the HDL processor model and the retargeting options.
//
// The paper's Table 3 pays the full HDL -> netlist -> ISE -> extension ->
// grammar pipeline on every retarget. For an unchanged model that work is
// pure recomputation, so the cache serialises everything a code selector
// needs — processor name, extended RT template base (with BDD execution
// conditions), tree grammar, compiled BURS state tables and phase statistics
// — into one binary blob per key under a cache directory (default:
// <system temp>/record-target-cache). A warm Record::retarget then reduces
// to one file read plus deserialisation, and table-driven selection starts
// from the previously accumulated state tables instead of an empty set.
//
// Corruption safety: the blob header carries an FNV-1a checksum of the
// payload; a truncated, torn or bit-flipped entry fails load() (a cache
// miss), and the caller falls back to a clean pipeline rebuild which
// re-stores the entry.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "burstab/tables.h"
#include "grammar/build.h"
#include "grammar/grammar.h"
#include "ise/extract.h"
#include "rtl/extend.h"
#include "rtl/template.h"

namespace record::burstab {

/// Everything the cache stores for one (model, options) key.
struct TargetArtifacts {
  std::string processor;
  rtl::TemplateBase base;
  grammar::TreeGrammar grammar;
  std::shared_ptr<TargetTables> tables;  // null if built without tables
  ise::ExtractStats extract_stats;
  rtl::ExtendStats extend_stats;
  grammar::BuildStats grammar_stats;
};

/// Non-owning view for store() so callers need not reassemble ownership.
struct TargetArtifactsView {
  const std::string* processor = nullptr;
  const rtl::TemplateBase* base = nullptr;
  const grammar::TreeGrammar* grammar = nullptr;
  const TargetTables* tables = nullptr;  // optional
  const ise::ExtractStats* extract_stats = nullptr;
  const rtl::ExtendStats* extend_stats = nullptr;
  const grammar::BuildStats* grammar_stats = nullptr;
};

/// Thread safety: a TargetCache holds no mutable state; load() and store()
/// may run from any number of threads and processes over the same directory.
/// store() writes to a unique temp file (pid + per-process sequence) and
/// atomically rename()s it into place, so concurrent writers of one key race
/// benignly (last rename wins, both blobs identical) and readers never see a
/// torn blob.
class TargetCache {
 public:
  /// `dir` empty selects default_dir(). The directory is created lazily on
  /// the first store().
  explicit TargetCache(std::string dir = {});

  /// <system temp>/record-target-cache
  [[nodiscard]] static std::string default_dir();

  /// Content hash for a retarget request: the HDL source plus a canonical
  /// rendering of every option that shapes the artifacts.
  [[nodiscard]] static std::uint64_t key_of(std::string_view hdl_source,
                                            std::string_view options_digest);

  [[nodiscard]] std::optional<TargetArtifacts> load(std::uint64_t key) const;

  /// Serialises and atomically publishes (write + rename) the artifacts.
  bool store(std::uint64_t key, const TargetArtifactsView& artifacts) const;

  /// Path of the blob for `key` (exists or not).
  [[nodiscard]] std::string entry_path(std::uint64_t key) const;

  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

}  // namespace record::burstab
