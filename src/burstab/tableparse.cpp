#include "burstab/tableparse.h"

#include <algorithm>

namespace record::burstab {

using grammar::PatNode;
using grammar::Rule;
using treeparse::LabelEntry;
using treeparse::LabelResult;
using treeparse::SubjectNode;
using treeparse::SubjectTree;

namespace {

int sat_add(int a, int b) {
  if (a >= kInf || b >= kInf) return kInf;
  return a + b;
}

}  // namespace

LabelResult TableParser::label(const SubjectTree& tree) const {
  LabelResult result;
  const int nts = tables_.nonterminal_count();
  result.labels.assign(
      tree.size(),
      std::vector<LabelEntry>(static_cast<std::size_t>(nts), LabelEntry{}));
  if (!tree.root()) return result;

  std::vector<int> state_of(tree.size(), -1);
  std::vector<int> base_of(tree.size(), 0);

  // Closed absolute costs of already-labelled descendants, for the
  // side-constraint fallback matcher.
  const auto closed_cost = [&result](const SubjectNode& n,
                                     grammar::NtId nt) {
    return result.labels[static_cast<std::size_t>(n.id)]
                        [static_cast<std::size_t>(nt)]
        .cost;
  };
  const treeparse::CostLookup costs(closed_cost);

  struct Candidate {
    grammar::NtId lhs;
    int cost;  // absolute
    int rid;
  };
  std::vector<Candidate> cands;
  std::vector<int> raw_cost, raw_rule;

  std::vector<int> child_states;
  for (std::size_t id = 0; id < tree.size(); ++id) {
    const SubjectNode& node = tree.node(static_cast<int>(id));
    std::vector<LabelEntry>& mine = result.labels[id];

    bool merged = false;
    if (tables_.terminal_has_constrained(node.term) && !node.is_const) {
      // Hybrid path: match only the side-constrained rules through the
      // shared matcher. When none bind (the common case — x+x patterns need
      // structurally equal operands) the node proceeds on the plain table
      // path below; otherwise the matches are interleaved with the table
      // rules' pre-closure candidates by (cost, rule id), reproducing the
      // interpreter's scan order, and the node is re-interned.
      cands.clear();
      for (int rid : tables_.constrained_rules_of(node.term)) {
        const Rule& r = g_.rule(rid);
        std::vector<treeparse::ImmBinding> imm_fields;
        std::vector<std::pair<grammar::NtId, const SubjectNode*>> nt_binds;
        std::optional<int> c = treeparse::match_pattern_cost(
            *r.pattern, node, costs, imm_fields, nt_binds);
        if (c) cands.push_back(Candidate{r.lhs, *c + r.cost, rid});
      }
      if (!cands.empty()) {
        child_states.clear();
        int base_sum = 0;
        for (const SubjectNode* c : node.children) {
          child_states.push_back(state_of[static_cast<std::size_t>(c->id)]);
          base_sum =
              sat_add(base_sum, base_of[static_cast<std::size_t>(c->id)]);
        }
        tables_.raw_candidates(node.term, child_states, raw_cost, raw_rule);
        for (int i = 0; i < nts; ++i) {
          const std::size_t idx = static_cast<std::size_t>(i);
          mine[idx].cost = sat_add(base_sum, raw_cost[idx]);
          mine[idx].rule = raw_rule[idx];
        }
        // Lexicographic (cost, rule id) argmin == the interpreter's strict-
        // improvement scan over all rules in id order.
        for (const Candidate& c : cands) {
          LabelEntry& e = mine[static_cast<std::size_t>(c.lhs)];
          if (c.cost < e.cost ||
              (c.cost == e.cost && (e.rule < 0 || c.rid < e.rule))) {
            e.cost = c.cost;
            e.rule = c.rid;
          }
        }
        bool changed = true;
        while (changed) {
          changed = false;
          for (int y = 0; y < nts; ++y) {
            int base = mine[static_cast<std::size_t>(y)].cost;
            if (base >= kInf) continue;
            for (int rid : g_.chain_rules_from(y)) {
              const Rule& r = g_.rule(rid);
              int total = base + r.cost;
              LabelEntry& e = mine[static_cast<std::size_t>(r.lhs)];
              if (total < e.cost) {
                e.cost = total;
                e.rule = rid;
                changed = true;
              }
            }
          }
        }

        int base = kInf;
        for (const LabelEntry& e : mine) base = std::min(base, e.cost);
        if (base >= kInf) base = 0;
        StateData s;
        s.cost.resize(static_cast<std::size_t>(nts));
        s.rule.resize(static_cast<std::size_t>(nts));
        for (int i = 0; i < nts; ++i) {
          const LabelEntry& e = mine[static_cast<std::size_t>(i)];
          s.cost[static_cast<std::size_t>(i)] =
              e.cost >= kInf ? kInf : e.cost - base;
          s.rule[static_cast<std::size_t>(i)] = e.rule;
        }
        s.sub.assign(static_cast<std::size_t>(tables_.subpattern_count()),
                     kInf);
        for (int qi : tables_.subpatterns_of_terminal(node.term)) {
          const PatNode* q = tables_.subpattern(qi);
          std::vector<treeparse::ImmBinding> imm_fields;
          std::vector<std::pair<grammar::NtId, const SubjectNode*>> nt_binds;
          std::optional<int> c = treeparse::match_pattern_cost(
              *q, node, costs, imm_fields, nt_binds);
          if (c) s.sub[static_cast<std::size_t>(qi)] = *c - base;
        }
        state_of[id] = tables_.intern_state(std::move(s));
        base_of[id] = base;
        merged = true;
      }
    } else if (tables_.terminal_has_constrained(node.term)) {
      // Constrained #const operators (possible only with exotic grammars):
      // full interpreter step plus re-intern.
      for (int rid : g_.rules_for_terminal(node.term)) {
        const Rule& r = g_.rule(rid);
        std::vector<treeparse::ImmBinding> imm_fields;
        std::vector<std::pair<grammar::NtId, const SubjectNode*>> nt_binds;
        std::optional<int> c = treeparse::match_pattern_cost(
            *r.pattern, node, costs, imm_fields, nt_binds);
        if (!c) continue;
        int total = *c + r.cost;
        LabelEntry& e = mine[static_cast<std::size_t>(r.lhs)];
        if (total < e.cost) {
          e.cost = total;
          e.rule = rid;
        }
      }
      bool changed = true;
      while (changed) {
        changed = false;
        for (int y = 0; y < nts; ++y) {
          int base = mine[static_cast<std::size_t>(y)].cost;
          if (base >= kInf) continue;
          for (int rid : g_.chain_rules_from(y)) {
            const Rule& r = g_.rule(rid);
            int total = base + r.cost;
            LabelEntry& e = mine[static_cast<std::size_t>(r.lhs)];
            if (total < e.cost) {
              e.cost = total;
              e.rule = rid;
              changed = true;
            }
          }
        }
      }
      StateData s;
      s.cost.resize(static_cast<std::size_t>(nts));
      s.rule.resize(static_cast<std::size_t>(nts));
      for (int i = 0; i < nts; ++i) {
        const LabelEntry& e = mine[static_cast<std::size_t>(i)];
        s.cost[static_cast<std::size_t>(i)] = e.cost;  // const leaves: base 0
        s.rule[static_cast<std::size_t>(i)] = e.rule;
      }
      s.sub.assign(static_cast<std::size_t>(tables_.subpattern_count()),
                   kInf);
      for (int qi : tables_.subpatterns_of_terminal(node.term)) {
        const PatNode* q = tables_.subpattern(qi);
        std::vector<treeparse::ImmBinding> imm_fields;
        std::vector<std::pair<grammar::NtId, const SubjectNode*>> nt_binds;
        std::optional<int> c = treeparse::match_pattern_cost(
            *q, node, costs, imm_fields, nt_binds);
        if (c) s.sub[static_cast<std::size_t>(qi)] = *c;
      }
      s.is_const_leaf = true;
      s.fit_width_index = tables_.fit_index_of(node.value);
      s.const_class = tables_.const_class_index(node.value);
      state_of[id] = tables_.intern_state(std::move(s));
      base_of[id] = 0;
      merged = true;
    }
    if (merged) continue;

    int state;
    int base;
    if (node.is_const) {
      state = tables_.const_leaf_state(node.value);
      base = 0;  // #const states are kept absolute
    } else {
      child_states.clear();
      base = 0;
      // Children precede parents in id order by SubjectTree construction.
      for (const SubjectNode* c : node.children) {
        child_states.push_back(state_of[static_cast<std::size_t>(c->id)]);
        base = sat_add(base, base_of[static_cast<std::size_t>(c->id)]);
      }
      TargetTables::Transition t =
          tables_.transition(node.term, child_states);
      state = t.state;
      base = sat_add(base, t.delta);
    }
    state_of[id] = state;
    base_of[id] = base;

    const StateData& s = tables_.state_ref(state);
    for (int i = 0; i < nts; ++i) {
      const std::size_t idx = static_cast<std::size_t>(i);
      mine[idx].cost = sat_add(base, s.cost[idx]);
      mine[idx].rule = s.rule[idx];
    }
  }

  const std::vector<LabelEntry>& root_labels =
      result.labels[static_cast<std::size_t>(tree.root()->id)];
  result.root_cost = root_labels[grammar::kStart].cost;
  result.ok = result.root_cost < kInf;
  return result;
}

std::unique_ptr<treeparse::Derivation> TableParser::parse(
    const SubjectTree& tree) const {
  LabelResult r = label(tree);
  if (!r.ok) return nullptr;
  return reduce(tree, r);
}

}  // namespace record::burstab
