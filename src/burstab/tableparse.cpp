#include "burstab/tableparse.h"

#include <algorithm>

namespace record::burstab {

using grammar::PatNode;
using grammar::Rule;
using treeparse::LabelEntry;
using treeparse::LabelResult;
using treeparse::SubjectNode;
using treeparse::SubjectTree;

namespace {

int sat_add(int a, int b) {
  if (a >= kInf || b >= kInf) return kInf;
  return a + b;
}

}  // namespace

void TableParser::label_into(const SubjectTree& tree,
                             LabelResult& result) const {
  const int nts = tables_.nonterminal_count();
  result.reset(tree.size(), nts);
  if (!tree.root()) return;

  // One frozen snapshot for the whole walk: every hit is pure array reads
  // with no lock; misses fall back to the memoised path (which counts them
  // towards the next re-freeze).
  const TargetTables::FrozenTables* frozen = tables_.frozen();

  std::vector<int> state_of(tree.size(), -1);
  std::vector<int> base_of(tree.size(), 0);

  // Closed absolute costs of already-labelled descendants, for the
  // side-constraint fallback matcher.
  const auto closed_cost = [&result](const SubjectNode& n,
                                     grammar::NtId nt) {
    return result.at(static_cast<std::size_t>(n.id),
                     static_cast<std::size_t>(nt))
        .cost;
  };
  const treeparse::CostLookup costs(closed_cost);

  struct Candidate {
    grammar::NtId lhs;
    int cost;  // absolute
    int rid;
  };
  std::vector<Candidate> cands;
  std::vector<int> raw_cost, raw_rule;
  std::vector<treeparse::ImmBinding> imm_fields;
  std::vector<std::pair<grammar::NtId, const SubjectNode*>> nt_binds;
  StateData scratch_state;

  std::vector<int> child_states;
  for (std::size_t id = 0; id < tree.size(); ++id) {
    const SubjectNode& node = tree.node(static_cast<int>(id));
    LabelEntry* mine = result.row(id);

    bool merged = false;
    if (tables_.terminal_has_constrained(node.term) && !node.is_const) {
      // Hybrid path: match only the side-constrained rules through the
      // shared matcher. When none bind (the common case — x+x patterns need
      // structurally equal operands) the node proceeds on the plain table
      // path below; otherwise the matches are interleaved with the table
      // rules' pre-closure candidates by (cost, rule id), reproducing the
      // interpreter's scan order, and the node is re-interned.
      cands.clear();
      for (const TargetTables::ConstrainedPrecheck& pc :
           tables_.constrained_prechecks_of(node.term)) {
        if (!pc.check(node)) continue;  // cheap structural reject
        const Rule& r = g_.rule(pc.rule);
        imm_fields.clear();
        nt_binds.clear();
        std::optional<int> c = treeparse::match_pattern_cost(
            *r.pattern, node, costs, imm_fields, nt_binds);
        if (c) cands.push_back(Candidate{r.lhs, *c + r.cost, pc.rule});
      }
      if (!cands.empty()) {
        child_states.clear();
        int base_sum = 0;
        for (const SubjectNode* c : node.children) {
          child_states.push_back(state_of[static_cast<std::size_t>(c->id)]);
          base_sum =
              sat_add(base_sum, base_of[static_cast<std::size_t>(c->id)]);
        }
        tables_.raw_candidates(node.term, child_states, raw_cost, raw_rule);
        for (int i = 0; i < nts; ++i) {
          const std::size_t idx = static_cast<std::size_t>(i);
          mine[idx].cost = sat_add(base_sum, raw_cost[idx]);
          mine[idx].rule = raw_rule[idx];
        }
        // Lexicographic (cost, rule id) argmin == the interpreter's strict-
        // improvement scan over all rules in id order.
        for (const Candidate& c : cands) {
          LabelEntry& e = mine[static_cast<std::size_t>(c.lhs)];
          if (c.cost < e.cost ||
              (c.cost == e.cost && (e.rule < 0 || c.rid < e.rule))) {
            e.cost = c.cost;
            e.rule = c.rid;
          }
        }
        bool changed = true;
        while (changed) {
          changed = false;
          for (int y = 0; y < nts; ++y) {
            int base = mine[static_cast<std::size_t>(y)].cost;
            if (base >= kInf) continue;
            for (int rid : g_.chain_rules_from(y)) {
              const Rule& r = g_.rule(rid);
              int total = base + r.cost;
              LabelEntry& e = mine[static_cast<std::size_t>(r.lhs)];
              if (total < e.cost) {
                e.cost = total;
                e.rule = rid;
                changed = true;
              }
            }
          }
        }

        int base = kInf;
        for (int i = 0; i < nts; ++i)
          base = std::min(base, mine[static_cast<std::size_t>(i)].cost);
        if (base >= kInf) base = 0;
        scratch_state.cost.resize(static_cast<std::size_t>(nts));
        scratch_state.rule.resize(static_cast<std::size_t>(nts));
        for (int i = 0; i < nts; ++i) {
          const LabelEntry& e = mine[static_cast<std::size_t>(i)];
          scratch_state.cost[static_cast<std::size_t>(i)] =
              e.cost >= kInf ? kInf : e.cost - base;
          scratch_state.rule[static_cast<std::size_t>(i)] = e.rule;
        }
        scratch_state.sub.assign(
            static_cast<std::size_t>(tables_.subpattern_count()), kInf);
        for (int qi : tables_.subpatterns_of_terminal(node.term)) {
          const PatNode* q = tables_.subpattern(qi);
          imm_fields.clear();
          nt_binds.clear();
          std::optional<int> c = treeparse::match_pattern_cost(
              *q, node, costs, imm_fields, nt_binds);
          if (c) scratch_state.sub[static_cast<std::size_t>(qi)] = *c - base;
        }
        scratch_state.is_const_leaf = false;
        scratch_state.fit_width_index = -1;
        scratch_state.const_class = -1;
        state_of[id] = tables_.intern_state(scratch_state);
        base_of[id] = base;
        merged = true;
      }
    } else if (tables_.terminal_has_constrained(node.term)) {
      // Constrained #const operators (possible only with exotic grammars):
      // full interpreter step plus re-intern.
      for (int rid : g_.rules_for_terminal(node.term)) {
        const Rule& r = g_.rule(rid);
        imm_fields.clear();
        nt_binds.clear();
        std::optional<int> c = treeparse::match_pattern_cost(
            *r.pattern, node, costs, imm_fields, nt_binds);
        if (!c) continue;
        int total = *c + r.cost;
        LabelEntry& e = mine[static_cast<std::size_t>(r.lhs)];
        if (total < e.cost) {
          e.cost = total;
          e.rule = rid;
        }
      }
      bool changed = true;
      while (changed) {
        changed = false;
        for (int y = 0; y < nts; ++y) {
          int base = mine[static_cast<std::size_t>(y)].cost;
          if (base >= kInf) continue;
          for (int rid : g_.chain_rules_from(y)) {
            const Rule& r = g_.rule(rid);
            int total = base + r.cost;
            LabelEntry& e = mine[static_cast<std::size_t>(r.lhs)];
            if (total < e.cost) {
              e.cost = total;
              e.rule = rid;
              changed = true;
            }
          }
        }
      }
      scratch_state.cost.resize(static_cast<std::size_t>(nts));
      scratch_state.rule.resize(static_cast<std::size_t>(nts));
      for (int i = 0; i < nts; ++i) {
        const LabelEntry& e = mine[static_cast<std::size_t>(i)];
        scratch_state.cost[static_cast<std::size_t>(i)] =
            e.cost;  // const leaves: base 0
        scratch_state.rule[static_cast<std::size_t>(i)] = e.rule;
      }
      scratch_state.sub.assign(
          static_cast<std::size_t>(tables_.subpattern_count()), kInf);
      for (int qi : tables_.subpatterns_of_terminal(node.term)) {
        const PatNode* q = tables_.subpattern(qi);
        imm_fields.clear();
        nt_binds.clear();
        std::optional<int> c = treeparse::match_pattern_cost(
            *q, node, costs, imm_fields, nt_binds);
        if (c) scratch_state.sub[static_cast<std::size_t>(qi)] = *c;
      }
      scratch_state.is_const_leaf = true;
      scratch_state.fit_width_index = tables_.fit_index_of(node.value);
      scratch_state.const_class = tables_.const_class_index(node.value);
      state_of[id] = tables_.intern_state(scratch_state);
      base_of[id] = 0;
      merged = true;
    }
    if (merged) {
      // Constrained merges re-intern instead of probing the frozen tables;
      // they count as cold so transition coverage denominators stay honest.
      if (coverage_) coverage_->record_cold_transition();
      continue;
    }

    int state;
    int base;
    if (node.is_const) {
      state = tables_.const_leaf_state(node.value);
      base = 0;  // #const states are kept absolute
      if (coverage_) coverage_->record_cold_transition();
    } else {
      child_states.clear();
      base = 0;
      // Children precede parents in id order by SubjectTree construction.
      for (const SubjectNode* c : node.children) {
        child_states.push_back(state_of[static_cast<std::size_t>(c->id)]);
        base = sat_add(base, base_of[static_cast<std::size_t>(c->id)]);
      }
      TargetTables::Transition t;
      std::int32_t slot = -1;
      if (frozen && frozen->lookup(node.term, child_states.data(),
                                   child_states.size(), t, &slot)) {
        if (coverage_) coverage_->record_transition(slot);
      } else {
        t = tables_.transition_cold(node.term, child_states);
        if (coverage_) coverage_->record_cold_transition();
      }
      state = t.state;
      base = sat_add(base, t.delta);
    }
    state_of[id] = state;
    base_of[id] = base;

    const StateView s = (frozen && state < frozen->state_count)
                            ? tables_.frozen_state_view(*frozen, state)
                            : tables_.state_view(state);
    for (int i = 0; i < nts; ++i) {
      const std::size_t idx = static_cast<std::size_t>(i);
      mine[idx].cost = sat_add(base, s.cost[idx]);
      mine[idx].rule = s.rule[idx];
    }
  }

  if (coverage_) {
    for (std::size_t id = 0; id < tree.size(); ++id) {
      coverage_->record_state(state_of[id]);
      const LabelEntry* row = result.row(id);
      for (int i = 0; i < nts; ++i) {
        const LabelEntry& e = row[static_cast<std::size_t>(i)];
        if (e.rule >= 0 && e.cost < kInf)
          coverage_->record_rule_matched(e.rule);
      }
    }
  }

  result.root_cost = result
                         .at(static_cast<std::size_t>(tree.root()->id),
                             static_cast<std::size_t>(grammar::kStart))
                         .cost;
  result.ok = result.root_cost < kInf;
}

treeparse::Derivation* TableParser::parse(
    const SubjectTree& tree, treeparse::DerivationArena& arena) const {
  LabelResult r = label(tree);
  if (!r.ok) return nullptr;
  return reduce(tree, r, arena);
}

}  // namespace record::burstab
