#include "burstab/cache.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "burstab/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace record::burstab {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kCacheMagic = 0x52544331;  // "RTC1"
// v2: payload checksum after the key — any bit flip in the body is detected
// up front and the entry is treated as a miss (clean pipeline rebuild)
// instead of trusting structurally-plausible garbage.
// v3: tables section carries the flat-row BTR2 layout plus the frozen flag
// (warm loads land directly in the compressed lock-free mode); v2 blobs are
// a miss and rebuild cleanly.
// v4: StorageInfo records the memory cell count (simulator write-address
// bounds checks); v3 blobs are a miss and rebuild cleanly.
// v5: the tables section carries the position-independent BTR3 frozen pool.
// Entries are mmap'ed read-only and the pool is adopted zero-copy (shared
// across threads AND processes); v4 blobs are a miss and rebuild cleanly.
// v6: TemplateBase serialises branch_delay_slots (architectural branch delay
// from the HDL DELAY attribute); v5 blobs are a miss and rebuild cleanly.
constexpr std::uint32_t kCacheVersion = 6;

// The header below (magic, version, key, checksum) is 24 bytes — keep it a
// multiple of 4 so the payload-relative alignment of the frozen pool (see
// TargetTables::serialize) equals its file-relative alignment.
constexpr std::size_t kCacheHeaderBytes = 24;

/// Opens one cache entry read-only, retrying transient failures — EINTR /
/// EAGAIN interruptions, or an injected "burstab.cache.open" fault — up to
/// 3 attempts with jittered backoff before declaring the entry unreadable
/// (corruption-class failures like ENOENT never retry). Both the mmap tier
/// and the buffered-read tier open through here.
int open_with_retry(const std::string& path) {
  const std::uint64_t jitter_us = fnv1a(path) % 700;
  for (int attempt = 0;; ++attempt) {
    const bool injected = util::failpoint("burstab.cache.open");
    int fd = injected ? -1 : ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd >= 0) return fd;
    const bool transient = injected || errno == EINTR || errno == EAGAIN;
    if (!transient || attempt >= 2) return -1;
    obs::metrics().counter("burstab.cache.transient_retry").add(1);
    ::usleep(static_cast<useconds_t>((1000u << attempt) + jitter_us));
  }
}

/// RAII mmap of a whole cache entry, PROT_READ + MAP_SHARED so concurrent
/// loaders of one key share page-cache pages. rename()-based publication
/// makes this safe against concurrent re-stores: a replaced entry's inode
/// (and our pages) stays alive until the mapping is dropped.
struct Mapping {
  void* addr = nullptr;
  std::size_t len = 0;

  static std::shared_ptr<const Mapping> open_file(const std::string& path) {
    int fd = open_with_retry(path);
    if (fd < 0) return nullptr;
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size <= 0 ||
        static_cast<std::uint64_t>(st.st_size) < kCacheHeaderBytes) {
      ::close(fd);
      return nullptr;
    }
    std::size_t len = static_cast<std::size_t>(st.st_size);
    void* addr = util::failpoint("burstab.cache.mmap")
                     ? MAP_FAILED
                     : ::mmap(nullptr, len, PROT_READ, MAP_SHARED, fd, 0);
    if (addr != MAP_FAILED) {
      // Length probe: a file shortened after the fstat above would SIGBUS on
      // the first touch past EOF. Reading the last mapped byte through the
      // fd turns that into a clean fallback instead of a signal.
      char last = 0;
      if (::pread(fd, &last, 1, st.st_size - 1) != 1) {
        ::munmap(addr, len);
        addr = MAP_FAILED;
      }
    }
    ::close(fd);
    if (addr == MAP_FAILED) return nullptr;
    auto m = std::make_shared<Mapping>();
    m->addr = addr;
    m->len = len;
    return m;
  }

  Mapping() = default;
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;
  ~Mapping() {
    if (addr) ::munmap(addr, len);
  }
};

/// Buffered-read tier: the whole entry into a heap string via plain
/// EINTR-retried read(2), for when the mapping cannot be established.
bool read_whole_file(const std::string& path, std::string& out) {
  int fd = open_with_retry(path);
  if (fd < 0) return false;
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0 ||
      static_cast<std::uint64_t>(st.st_size) < kCacheHeaderBytes) {
    ::close(fd);
    return false;
  }
  out.resize(static_cast<std::size_t>(st.st_size));
  std::size_t got = 0;
  while (got < out.size()) {
    ssize_t n = ::read(fd, out.data() + got, out.size() - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF short of st_size (truncated) or a hard error
  }
  ::close(fd);
  return got == out.size();
}

void write_extract_stats(ByteWriter& w, const ise::ExtractStats& s) {
  w.u64(s.destinations);
  w.u64(s.raw_routes);
  w.u64(s.unsat_discarded);
  w.u64(s.duplicates);
  w.u64(s.route_stats.unsat_pruned);
  w.u64(s.route_stats.depth_pruned);
  w.u64(s.route_stats.cap_pruned);
  w.u64(s.route_stats.bus_contention_pruned);
}

void read_extract_stats(ByteReader& r, ise::ExtractStats& s) {
  s.destinations = r.u64();
  s.raw_routes = r.u64();
  s.unsat_discarded = r.u64();
  s.duplicates = r.u64();
  s.route_stats.unsat_pruned = r.u64();
  s.route_stats.depth_pruned = r.u64();
  s.route_stats.cap_pruned = r.u64();
  s.route_stats.bus_contention_pruned = r.u64();
}

void write_extend_stats(ByteWriter& w, const rtl::ExtendStats& s) {
  w.u64(s.commutative_added);
  w.u64(s.rewrite_added);
  w.u64(s.variant_capped);
}

void read_extend_stats(ByteReader& r, rtl::ExtendStats& s) {
  s.commutative_added = r.u64();
  s.rewrite_added = r.u64();
  s.variant_capped = r.u64();
}

void write_build_stats(ByteWriter& w, const grammar::BuildStats& s) {
  w.u64(s.start_rules);
  w.u64(s.rt_rules);
  w.u64(s.stop_rules);
  w.u64(s.chain_rules);
  w.u64(s.self_moves_skipped);
  w.u64(s.low_slice_variants);
}

void read_build_stats(ByteReader& r, grammar::BuildStats& s) {
  s.start_rules = r.u64();
  s.rt_rules = r.u64();
  s.stop_rules = r.u64();
  s.chain_rules = r.u64();
  s.self_moves_skipped = r.u64();
  s.low_slice_variants = r.u64();
}

}  // namespace

TargetCache::TargetCache(std::string dir)
    : dir_(dir.empty() ? default_dir() : std::move(dir)) {}

std::string TargetCache::default_dir() {
  std::error_code ec;
  fs::path tmp = fs::temp_directory_path(ec);
  if (ec) tmp = ".";
  return (tmp / "record-target-cache").string();
}

std::uint64_t TargetCache::key_of(std::string_view hdl_source,
                                  std::string_view options_digest) {
  std::uint64_t h = fnv1a(hdl_source);
  return fnv1a(options_digest, h);
}

std::string TargetCache::entry_path(std::uint64_t key) const {
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.rtc",
                static_cast<unsigned long long>(key));
  return (fs::path(dir_) / name).string();
}

std::optional<TargetArtifacts> TargetCache::load(std::uint64_t key) const {
  OBS_SPAN("burstab.cache.load");
  // Tier 1: the whole entry mmap'ed read-only — header/grammar sections are
  // stream-parsed straight off the mapping and the frozen-tables pool is
  // adopted zero-copy (the mapping's pin rides inside the tables; the pages
  // stay shared across every thread and process loading this key).
  // Tier 2: when the mapping cannot be established (mmap failure, a file
  // shortened under us), a plain buffered read serves the same bytes from
  // the heap — the pool is then copied rather than adopted.
  const std::string path = entry_path(key);
  std::shared_ptr<const Mapping> map = Mapping::open_file(path);
  std::string heap;  // tier-2 storage; empty while the mapping is live
  std::string_view blob;
  if (map) {
    blob = std::string_view(static_cast<const char*>(map->addr), map->len);
  } else {
    if (!read_whole_file(path, heap)) {
      obs::metrics().counter("burstab.cache.miss").add(1);
      return std::nullopt;
    }
    obs::metrics().counter("burstab.cache.fallback.buffered_read").add(1);
    blob = heap;
  }

  // A structurally unusable blob (stale version, torn write, corruption) is
  // a miss that rebuilds cleanly, but it is counted separately: a rejection
  // rate says something a cold miss does not.
  auto reject = [] {
    obs::metrics().counter("burstab.cache.rejected").add(1);
    return std::nullopt;
  };
  if (util::failpoint("burstab.cache.read")) return reject();
  ByteReader r(blob);
  if (r.u32() != kCacheMagic || r.u32() != kCacheVersion) return reject();
  if (r.u64() != key) return reject();
  std::uint64_t checksum = r.u64();
  if (!r.ok() || checksum != fnv1a(blob.substr(r.pos())))
    return reject();  // torn or corrupted payload -> rebuild

  TargetArtifacts a;
  a.processor = r.str();
  read_extract_stats(r, a.extract_stats);
  read_extend_stats(r, a.extend_stats);
  read_build_stats(r, a.grammar_stats);
  if (!read_template_base(r, a.base)) return reject();
  if (!read_grammar(r, a.grammar)) return reject();
  bool has_tables = r.u8() != 0;
  if (!r.ok()) return reject();
  if (has_tables) {
    std::size_t offset = r.pos();
    std::unique_ptr<TargetTables> t =
        util::failpoint("burstab.pool.adopt")
            ? nullptr
            : TargetTables::deserialize(a.grammar, blob, offset, map);
    if (t) {
      a.tables = std::move(t);
    } else {
      // The checksum above already vouched for the base + grammar sections,
      // so a malformed (or failpoint-poisoned) pool loses only the tables:
      // the artifacts are salvaged and the caller rebuilds tables from the
      // grammar — or serves the interpreter — instead of re-retargeting.
      obs::metrics().counter("burstab.cache.tables_lost").add(1);
    }
  }
  obs::metrics().counter("burstab.cache.hit").add(1);
  return a;
}

bool TargetCache::store(std::uint64_t key,
                        const TargetArtifactsView& artifacts) const {
  OBS_SPAN("burstab.cache.store");
  obs::metrics().counter("burstab.cache.store").add(1);
  if (util::failpoint("burstab.cache.write")) return false;
  if (!artifacts.processor || !artifacts.base || !artifacts.grammar)
    return false;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) return false;

  ByteWriter w;
  w.str(*artifacts.processor);
  static const ise::ExtractStats kNoExtract;
  static const rtl::ExtendStats kNoExtend;
  static const grammar::BuildStats kNoBuild;
  write_extract_stats(
      w, artifacts.extract_stats ? *artifacts.extract_stats : kNoExtract);
  write_extend_stats(
      w, artifacts.extend_stats ? *artifacts.extend_stats : kNoExtend);
  write_build_stats(
      w, artifacts.grammar_stats ? *artifacts.grammar_stats : kNoBuild);
  write_template_base(w, *artifacts.base);
  write_grammar(w, *artifacts.grammar);
  w.u8(artifacts.tables ? 1 : 0);
  std::string payload = w.take();
  if (artifacts.tables) artifacts.tables->serialize(payload);

  ByteWriter header;
  header.u32(kCacheMagic);
  header.u32(kCacheVersion);
  header.u64(key);
  header.u64(fnv1a(payload));
  std::string blob = header.take() + payload;

  // Unique temp name per process AND per thread/store: two threads (or
  // processes) retargeting the same model concurrently each write their own
  // temp file, and the atomic rename() below guarantees readers only ever
  // observe complete blobs — never a torn write.
  static std::atomic<std::uint64_t> store_seq{0};
  std::string final_path = entry_path(key);
  std::string tmp_path =
      util::fmt("{}.tmp-{}-{}", final_path, static_cast<unsigned>(::getpid()),
                store_seq.fetch_add(1, std::memory_order_relaxed));
  std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  // close() BEFORE checking: the stream is buffered, so a short write (e.g.
  // ENOSPC) often only surfaces when the buffer is flushed at close. Checking
  // `out` and then letting the destructor flush would publish a truncated
  // blob via the rename below.
  out.close();
  if (out.fail()) {
    fs::remove(tmp_path, ec);
    return false;
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    return false;
  }
  return true;
}

}  // namespace record::burstab
