#include "burstab/serialize.h"

#include <cstring>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.h"

namespace record::burstab {

std::uint64_t fnv1a(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s);
}

bool ByteReader::take(std::size_t n) {
  if (failed_ || bytes_.size() - pos_ < n) {
    failed_ = true;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() {
  if (!take(1)) return 0;
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t ByteReader::u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(
             static_cast<std::uint8_t>(bytes_[pos_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(
             static_cast<std::uint8_t>(bytes_[pos_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  pos_ += 8;
  return v;
}

double ByteReader::f64() {
  std::uint64_t bits = u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string ByteReader::str() {
  std::uint32_t n = u32();
  if (!take(n)) return {};
  std::string s(bytes_.substr(pos_, n));
  pos_ += n;
  return s;
}

// --- tree grammars ----------------------------------------------------------

namespace {

void write_pattern(ByteWriter& w, const grammar::PatNode& p) {
  w.u8(static_cast<std::uint8_t>(p.kind));
  switch (p.kind) {
    case grammar::PatNode::Kind::Term:
      w.i32(p.term);
      w.u32(static_cast<std::uint32_t>(p.children.size()));
      for (const grammar::PatNodePtr& c : p.children) write_pattern(w, *c);
      break;
    case grammar::PatNode::Kind::NonTerm:
      w.i32(p.nt);
      break;
    case grammar::PatNode::Kind::Imm:
      w.u32(static_cast<std::uint32_t>(p.imm_bits.size()));
      for (int b : p.imm_bits) w.i32(b);
      break;
    case grammar::PatNode::Kind::Const:
      w.i64(p.value);
      break;
  }
}

grammar::PatNodePtr read_pattern(ByteReader& r, int depth = 0) {
  if (!r.ok() || depth > 64) {
    r.fail();
    return nullptr;
  }
  auto kind = static_cast<grammar::PatNode::Kind>(r.u8());
  switch (kind) {
    case grammar::PatNode::Kind::Term: {
      grammar::TermId t = r.i32();
      std::uint32_t n = r.u32();
      if (n > 1u << 16) {
        r.fail();
        return nullptr;
      }
      std::vector<grammar::PatNodePtr> kids;
      kids.reserve(n);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i)
        kids.push_back(read_pattern(r, depth + 1));
      return r.ok() ? grammar::pat_term(t, std::move(kids)) : nullptr;
    }
    case grammar::PatNode::Kind::NonTerm:
      return grammar::pat_nonterm(r.i32());
    case grammar::PatNode::Kind::Imm: {
      std::uint32_t n = r.u32();
      if (n > 4096) {
        r.fail();
        return nullptr;
      }
      std::vector<int> bits;
      bits.reserve(n);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) bits.push_back(r.i32());
      return grammar::pat_imm(std::move(bits));
    }
    case grammar::PatNode::Kind::Const:
      return grammar::pat_const_leaf(r.i64());
  }
  r.fail();
  return nullptr;
}

}  // namespace

void write_grammar(ByteWriter& w, const grammar::TreeGrammar& g) {
  w.u32(static_cast<std::uint32_t>(g.terminal_count()));
  for (int t = 0; t < g.terminal_count(); ++t) w.str(g.terminal_name(t));
  w.u32(static_cast<std::uint32_t>(g.nonterminal_count()));
  for (int n = 0; n < g.nonterminal_count(); ++n)
    w.str(g.nonterminal_name(n));
  w.u32(static_cast<std::uint32_t>(g.rules().size()));
  for (const grammar::Rule& r : g.rules()) {
    w.i32(r.lhs);
    w.i32(r.cost);
    w.u8(static_cast<std::uint8_t>(r.kind));
    w.i32(r.template_id);
    write_pattern(w, *r.pattern);
  }
}

bool read_grammar(ByteReader& r, grammar::TreeGrammar& g) {
  // The fresh grammar pre-interns START/ASSIGN/#const in the same order the
  // writer's grammar did, so interning the written names reproduces ids.
  std::uint32_t terms = r.u32();
  for (std::uint32_t i = 0; i < terms && r.ok(); ++i) {
    std::string name = r.str();
    if (g.intern_terminal(name) != static_cast<grammar::TermId>(i)) r.fail();
  }
  std::uint32_t nts = r.u32();
  for (std::uint32_t i = 0; i < nts && r.ok(); ++i) {
    std::string name = r.str();
    if (g.intern_nonterminal(name) != static_cast<grammar::NtId>(i)) r.fail();
  }
  std::uint32_t rules = r.u32();
  if (rules > 1u << 22) r.fail();
  for (std::uint32_t i = 0; i < rules && r.ok(); ++i) {
    grammar::NtId lhs = r.i32();
    int cost = r.i32();
    auto kind = static_cast<grammar::RuleKind>(r.u8());
    int template_id = r.i32();
    grammar::PatNodePtr pat = read_pattern(r);
    if (!r.ok() || !pat) break;
    if (lhs < 0 || lhs >= g.nonterminal_count()) {
      r.fail();
      break;
    }
    g.add_rule(lhs, std::move(pat), cost, kind, template_id);
  }
  return r.ok();
}

std::uint64_t grammar_fingerprint(const grammar::TreeGrammar& g) {
  ByteWriter w;
  write_grammar(w, g);
  return fnv1a(w.bytes());
}

// --- RT template bases ------------------------------------------------------

namespace {

void write_bdd(ByteWriter& w, const bdd::BddManager& mgr, bdd::Ref root) {
  // Emit the reachable interior nodes in a bottom-up order; ids 0/1 are the
  // constants, id k+2 the k-th emitted node.
  std::unordered_map<bdd::Ref, std::uint32_t> ids;
  std::vector<bdd::Ref> order;
  std::vector<bdd::Ref> stack;
  if (!bdd::BddManager::is_const(root)) stack.push_back(root);
  while (!stack.empty()) {
    bdd::Ref f = stack.back();
    if (ids.count(f)) {
      stack.pop_back();
      continue;
    }
    bdd::Ref lo = mgr.low(f), hi = mgr.high(f);
    bool ready = true;
    for (bdd::Ref c : {lo, hi}) {
      if (!bdd::BddManager::is_const(c) && !ids.count(c)) {
        stack.push_back(c);
        ready = false;
      }
    }
    if (!ready) continue;
    stack.pop_back();
    ids.emplace(f, static_cast<std::uint32_t>(order.size()) + 2);
    order.push_back(f);
  }
  auto id_of = [&ids](bdd::Ref f) -> std::uint32_t {
    return bdd::BddManager::is_const(f) ? f : ids.at(f);
  };
  w.u32(static_cast<std::uint32_t>(order.size()));
  for (bdd::Ref f : order) {
    w.i32(mgr.top_var(f));
    w.u32(id_of(mgr.low(f)));
    w.u32(id_of(mgr.high(f)));
  }
  w.u32(id_of(root));
}

bdd::Ref read_bdd(ByteReader& r, bdd::BddManager& mgr) {
  std::uint32_t count = r.u32();
  if (count > 1u << 24) {
    r.fail();
    return bdd::kFalse;
  }
  std::vector<bdd::Ref> refs;
  refs.reserve(count + 2);
  refs.push_back(bdd::kFalse);
  refs.push_back(bdd::kTrue);
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    int var = r.i32();
    std::uint32_t lo = r.u32(), hi = r.u32();
    if (var < 0 || var >= mgr.var_count() || lo >= refs.size() ||
        hi >= refs.size()) {
      r.fail();
      return bdd::kFalse;
    }
    refs.push_back(mgr.ite(mgr.var(var), refs[hi], refs[lo]));
  }
  std::uint32_t root = r.u32();
  if (!r.ok() || root >= refs.size()) {
    r.fail();
    return bdd::kFalse;
  }
  return refs[root];
}

void write_rtnode(ByteWriter& w, const rtl::RTNode& n) {
  w.u8(static_cast<std::uint8_t>(n.kind));
  w.u8(static_cast<std::uint8_t>(n.op.kind));
  w.str(n.op.custom);
  w.i32(n.op.width);
  w.str(n.name);
  w.i32(n.width);
  w.i64(n.value);
  w.u32(static_cast<std::uint32_t>(n.imm_bits.size()));
  for (int b : n.imm_bits) w.i32(b);
  w.u32(static_cast<std::uint32_t>(n.children.size()));
  for (const rtl::RTNodePtr& c : n.children) write_rtnode(w, *c);
}

rtl::RTNodePtr read_rtnode(ByteReader& r, int depth = 0) {
  if (!r.ok() || depth > 64) {
    r.fail();
    return nullptr;
  }
  auto n = std::make_unique<rtl::RTNode>();
  n->kind = static_cast<rtl::RTNode::Kind>(r.u8());
  n->op.kind = static_cast<hdl::OpKind>(r.u8());
  n->op.custom = r.str();
  n->op.width = r.i32();
  n->name = r.str();
  n->width = r.i32();
  n->value = r.i64();
  std::uint32_t bits = r.u32();
  if (bits > 4096) {
    r.fail();
    return nullptr;
  }
  for (std::uint32_t i = 0; i < bits && r.ok(); ++i)
    n->imm_bits.push_back(r.i32());
  std::uint32_t kids = r.u32();
  if (kids > 1u << 16) {
    r.fail();
    return nullptr;
  }
  for (std::uint32_t i = 0; i < kids && r.ok(); ++i) {
    rtl::RTNodePtr c = read_rtnode(r, depth + 1);
    if (!c) return nullptr;
    n->children.push_back(std::move(c));
  }
  return r.ok() ? std::move(n) : nullptr;
}

}  // namespace

void write_template_base(ByteWriter& w, const rtl::TemplateBase& base) {
  w.u32(base.mgr ? static_cast<std::uint32_t>(base.mgr->var_count()) : 0);
  if (base.mgr)
    for (int v = 0; v < base.mgr->var_count(); ++v) w.str(base.mgr->var_name(v));
  w.i32(base.instruction_width);
  w.i32(base.branch_delay_slots);
  w.u32(static_cast<std::uint32_t>(base.storage.size()));
  for (const rtl::StorageInfo& s : base.storage) {
    w.str(s.name);
    w.u8(static_cast<std::uint8_t>(s.kind));
    w.i32(s.width);
    w.u8(s.readable ? 1 : 0);
    w.i64(s.cells);
  }
  w.u32(static_cast<std::uint32_t>(base.in_ports.size()));
  for (const rtl::PortInInfo& p : base.in_ports) {
    w.str(p.name);
    w.i32(p.width);
  }
  w.u32(static_cast<std::uint32_t>(base.templates.size()));
  for (const rtl::RTTemplate& t : base.templates) {
    w.u8(static_cast<std::uint8_t>(t.dest_kind));
    w.str(t.dest);
    w.i32(t.dest_width);
    w.u8(t.addr ? 1 : 0);
    if (t.addr) write_rtnode(w, *t.addr);
    write_rtnode(w, *t.value);
    write_bdd(w, *base.mgr, t.cond);
    w.str(t.provenance);
  }
}

bool read_template_base(ByteReader& r, rtl::TemplateBase& base) {
  base.mgr = std::make_shared<bdd::BddManager>();
  std::uint32_t vars = r.u32();
  if (vars > 1u << 20) {
    r.fail();
    return false;
  }
  for (std::uint32_t i = 0; i < vars && r.ok(); ++i)
    (void)base.mgr->new_var(r.str());
  base.instruction_width = r.i32();
  base.branch_delay_slots = r.i32();
  std::uint32_t storages = r.u32();
  if (storages > 1u << 16) r.fail();
  for (std::uint32_t i = 0; i < storages && r.ok(); ++i) {
    rtl::StorageInfo s;
    s.name = r.str();
    s.kind = static_cast<rtl::DestKind>(r.u8());
    s.width = r.i32();
    s.readable = r.u8() != 0;
    s.cells = r.i64();
    base.storage.push_back(std::move(s));
  }
  std::uint32_t ports = r.u32();
  if (ports > 1u << 16) r.fail();
  for (std::uint32_t i = 0; i < ports && r.ok(); ++i) {
    rtl::PortInInfo p;
    p.name = r.str();
    p.width = r.i32();
    base.in_ports.push_back(std::move(p));
  }
  std::uint32_t templates = r.u32();
  if (templates > 1u << 22) r.fail();
  for (std::uint32_t i = 0; i < templates && r.ok(); ++i) {
    rtl::RTTemplate t;
    t.dest_kind = static_cast<rtl::DestKind>(r.u8());
    t.dest = r.str();
    t.dest_width = r.i32();
    if (r.u8() != 0) {
      t.addr = read_rtnode(r);
      if (!t.addr) return false;
    }
    t.value = read_rtnode(r);
    if (!t.value) return false;
    t.cond = read_bdd(r, *base.mgr);
    t.provenance = r.str();
    // add_unique reassigns sequential ids, matching the writer's (templates
    // are stored in id order and are unique by signature).
    (void)base.add_unique(std::move(t));
  }
  return r.ok();
}

}  // namespace record::burstab
