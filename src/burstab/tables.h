// Table-driven BURS: precomputed state tables for tree-pattern labelling
// (the burg line of work — Chase 1987, Proebsting 1992 — applied to the
// paper's processor-specific tree grammars).
//
// The dynamic-programming TreeParser recomputes, at every subject node, the
// cheapest derivation of every non-terminal by re-matching every rule. The
// key observation behind table-driven BURS is that the *behaviour* of a
// subtree under any parent rule is fully captured by a finite signature:
//
//   * its delta-normalised cost vector over non-terminals (costs relative to
//     the subtree minimum) together with the winning rule per non-terminal,
//   * the normalised match cost of every interior pattern position
//     ("subpattern") rooted at its operator, and
//   * for "#const" leaves, which immediate widths the constant fits and
//     which hardwired pattern constants it equals.
//
// Subtrees with equal signatures are interchangeable, so signatures are
// interned as *states* and per-node labelling becomes a single transition
// lookup (operator, child states) -> (state, cost delta). Transitions are
// precomputed bottom-up at table-construction time under a budget and filled
// in dynamically (memoised, thread-safe) for combinations first met at parse
// time; both populations are serialisable, so a persistent TargetCache warms
// future runs to pure-lookup speed.
//
// Two storage layers serve those lookups:
//
//  * State signatures live in ONE flat interned arena (`states_flat_`
//    blocks): every state is a fixed-stride row of int32s
//    [cost(nts) | rule(nts) | sub(subs) | meta(3)], block-allocated so row
//    addresses never move. Signature hashing/comparison sweeps one
//    contiguous row instead of chasing three vectors.
//
//  * freeze() compacts the populated transitions into an immutable
//    FrozenTables snapshot — the Chase-style compressed form. Per operator
//    and arity it builds child-position index maps (child state -> compact
//    index, -1 = never seen in that position) and packs the resulting dense
//    rows into a single row-displaced value array with a check column, so a
//    warm lookup is: per-child map indexation, one displacement probe, one
//    check compare — a handful of array reads with NO hashing and NO lock.
//    The snapshot is published through an atomic pointer (superseded
//    snapshots are retained, so readers are never invalidated); cold misses
//    fall back to the memoised hash path and, past a miss budget
//    (TableBuildOptions::refreeze_misses), trigger an incremental re-freeze
//    that folds the dynamically accumulated entries into a fresh snapshot.
//
//    A frozen snapshot lives in ONE contiguous, position-independent int32
//    pool (offsets only — the Op arrays are Span32 views into the pool), so
//    serialize() writes the pool verbatim and deserialize() reconstitutes a
//    snapshot by pointing views at the blob: a warm TargetCache reload is a
//    validation pass plus O(states) pointer setup — no re-interning, no
//    transition rehash, no re-freeze. With a pinned, aligned mapping (the
//    cache's mmap tier) the pool is not even copied: N daemon processes
//    share one read-only page set. Post-load dynamic fills accumulate on
//    the hash path as usual; the first genuine re-freeze first absorbs the
//    pool's transitions back into the hash map so nothing is lost.
//
// Rules carrying side-constraints that a finite state cannot encode — two
// Imm leaves drawing the same instruction field, or two leaves of one
// non-terminal requiring structurally equal operands (x+x shifter patterns)
// — are excluded from the tables. Nodes whose operator owns such a rule are
// labelled through the shared treeparse::match_pattern_cost path instead and
// re-interned, which keeps the engine *exactly* equivalent to the
// interpreter, tie-breaking included.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "grammar/grammar.h"
#include "treeparse/subject.h"

namespace record::burstab {

inline constexpr int kInf = grammar::kInfCost;

struct TableBuildOptions {
  /// Run the bounded eager closure at construction time (leaf states plus
  /// bottom-up reachable transitions). Off: tables fill purely on demand.
  bool precompute = true;
  /// Eager-closure budgets. The closure stops (and marks itself incomplete)
  /// when either is hit; the remainder fills in dynamically at parse time.
  std::size_t max_states = 512;
  std::size_t max_transitions = 1u << 14;
  /// Compact the tables into the frozen (dense, lock-free) form after the
  /// eager closure / a warm-cache load, and re-freeze incrementally as
  /// dynamic fills accumulate. Off: pure hash-map mode (the pre-freeze
  /// engine; kept selectable for differential tests and benchmarks).
  bool freeze = true;
  /// Frozen-lookup misses tolerated before the next incremental re-freeze
  /// folds the dynamically added states/transitions into a new snapshot.
  std::size_t refreeze_misses = 64;
};

struct TableStats {
  std::size_t states = 0;
  std::size_t transitions = 0;
  std::size_t subpatterns = 0;
  std::size_t table_rules = 0;        // rules encoded in the tables
  std::size_t constrained_rules = 0;  // rules left to the fallback matcher
  std::size_t const_classes = 0;      // distinct #const leaf behaviours seen
  bool closure_complete = false;      // eager closure finished within budget
  std::size_t freezes = 0;             // snapshots built (0 = hash mode)
  std::size_t frozen_states = 0;       // states covered by the live snapshot
  std::size_t frozen_transitions = 0;  // transitions in the live snapshot
  std::size_t frozen_misses = 0;       // misses since the live snapshot
};

/// Materialised state signature (construction, serialization and the
/// fallback re-intern path; the hot path reads flat rows via StateView).
struct StateData {
  std::vector<int> cost;  // per non-terminal; kInf = not derivable
  std::vector<int> rule;  // winning rule id per non-terminal; -1 = none
  std::vector<int> sub;   // per registered subpattern; kInf = no match
  bool is_const_leaf = false;
  int fit_width_index = -1;  // index into fit widths; -1 = fits none / n.a.
  int const_class = -1;      // index into hardwired values; -1 = none

  friend bool operator==(const StateData&, const StateData&) = default;
};

/// Zero-copy view of one interned state row. The pointers target the flat
/// state arena, whose rows never move once interned — a view stays valid
/// for the lifetime of the tables, with no lock held.
struct StateView {
  const std::int32_t* cost = nullptr;  // [nonterminal_count]
  const std::int32_t* rule = nullptr;  // [nonterminal_count]
  const std::int32_t* sub = nullptr;   // [subpattern_count]
  bool is_const_leaf = false;
  int fit_width_index = -1;
  int const_class = -1;
};

/// Non-owning view over int32s inside a frozen pool (the frozen snapshot
/// stores offsets, never pointers, so blobs are position-independent; the
/// views are materialised once per pool adoption).
struct Span32 {
  const std::int32_t* ptr = nullptr;
  std::size_t len = 0;

  [[nodiscard]] const std::int32_t* data() const { return ptr; }
  [[nodiscard]] std::size_t size() const { return len; }
  [[nodiscard]] bool empty() const { return len == 0; }
  std::int32_t operator[](std::size_t i) const { return ptr[i]; }
};

class TargetTables {
 public:
  struct Transition {
    int state = -1;
    int delta = 0;  // node cost base = sum of child bases + delta
  };

  /// The frozen (compressed, immutable) snapshot: Chase index maps plus a
  /// row-displaced transition array per (operator, arity). Readers obtain
  /// it via frozen() and probe without locking; every miss must fall back
  /// to the owning TargetTables.
  ///
  /// All table data lives in one contiguous int32 pool (see
  /// tables.cpp:pool layout); the members below are views into it. The pool
  /// is owned (`pool` — built by freeze() or copied from a blob) or
  /// borrowed from a pinned mapping (`pin` — the zero-copy mmap tier).
  struct FrozenTables {
    int state_count = 0;
    std::vector<const std::int32_t*> rows;  // per state: flat signature row

    // #const leaf states by (fit index + 1, const class + 1); -1 unknown.
    int cc_dim = 0;
    Span32 const_state;

    struct Op {
      std::int32_t term = -1;
      std::int32_t arity = 0;
      bool has_leaf = false;
      Transition leaf{};                // arity == 0
      /// First snapshot-global transition-slot id owned by this Op (leaf
      /// ops own exactly one; packed ops own one per check/val column, with
      /// holes where check is -1). Coverage maps index by these ids.
      std::int32_t slot_base = 0;
      Span32 dims;   // [arity] compact index counts
      Span32 maps;   // arity x state_count -> index | -1
      Span32 disp;   // row -> displacement into check
      Span32 check;  // slot -> owning row | -1
      Span32 val_state;
      Span32 val_delta;
    };
    std::vector<Op> ops;  // sorted by term
    Span32 op_begin;      // [term] -> ops slice
    Span32 op_end;
    std::size_t transitions = 0;
    /// One past the largest slot id (sum of all Ops' slot spans, holes
    /// included). Slot ids identify transitions within THIS snapshot only;
    /// a re-freeze renumbers them.
    std::size_t slot_count = 0;

    /// Pool storage: exactly one of the two is set. `pin` keeps a shared
    /// read-only mapping alive for the snapshot's lifetime. `pool_data` /
    /// `pool_words` always view the whole pool (serialize writes it back
    /// verbatim regardless of ownership).
    std::vector<std::int32_t> pool;
    std::shared_ptr<const void> pin;
    const std::int32_t* pool_data = nullptr;
    std::size_t pool_words = 0;

    /// Points rows/const_state/ops at a pool and validates its structure
    /// (every span in bounds, displacement invariants hold). `words` is the
    /// pool length in int32s. False = malformed pool; the snapshot must be
    /// discarded.
    [[nodiscard]] bool init_from_pool(const std::int32_t* words,
                                      std::size_t word_count, int stride,
                                      std::size_t term_count,
                                      std::size_t fit_dim_expected,
                                      int cc_dim_expected);

    /// Lock-free warm-path probe; false = cold miss (caller falls back).
    /// On a hit, `slot_out` (when non-null) receives the snapshot-global
    /// transition-slot id — the coverage-map index of this transition.
    [[nodiscard]] bool lookup(grammar::TermId term, const int* children,
                              std::size_t arity, Transition& out,
                              std::int32_t* slot_out = nullptr) const;
    /// Lock-free #const-leaf probe; -1 = unknown pair.
    [[nodiscard]] int const_lookup(int fit_index, int const_class) const;
  };

  /// Compiles the grammar into tables. The grammar may be moved afterwards
  /// (pattern nodes are heap-stable); it must not be destroyed or mutated
  /// while the tables are in use.
  explicit TargetTables(const grammar::TreeGrammar& g,
                        const TableBuildOptions& options = {});

  TargetTables(const TargetTables&) = delete;
  TargetTables& operator=(const TargetTables&) = delete;

  /// State for a "#const" leaf holding `value` (memoised per behaviour
  /// class, not per value). Lock-free once the pair is frozen.
  [[nodiscard]] int const_leaf_state(std::int64_t value) const;

  /// State + base delta for an operator node over already-labelled children.
  /// Probes the frozen snapshot first; computes and memoises the entry on
  /// first use.
  [[nodiscard]] Transition transition(grammar::TermId term,
                                      const std::vector<int>& children) const;

  /// The memoised (hash) path only — what transition() runs after a frozen
  /// miss. Exposed so the parser can inline the frozen probe itself.
  [[nodiscard]] Transition transition_cold(
      grammar::TermId term, const std::vector<int>& children) const;

  /// Interns an externally computed signature (fallback path) and returns
  /// its state id. Read-probes under the shared lock before escalating to
  /// the exclusive lock (re-interns of existing states are the common case
  /// under concurrent parsing).
  [[nodiscard]] int intern_state(const StateData& s) const;

  /// Snapshot of a state's signature, by value (tests, serialization).
  [[nodiscard]] StateData state(int id) const;

  /// View of a state's flat row. Takes the shared lock to resolve the row,
  /// but the returned pointers stay valid lock-free afterwards (rows are
  /// immutable and never move).
  [[nodiscard]] StateView state_view(int id) const;

  /// The live frozen snapshot, or null when unfrozen. The pointer (and
  /// every superseded snapshot) stays valid for the tables' lifetime.
  [[nodiscard]] const FrozenTables* frozen() const {
    return frozen_ptr_.load(std::memory_order_acquire);
  }

  /// View over a frozen row id (valid for ids < frozen()->state_count).
  [[nodiscard]] StateView frozen_state_view(const FrozenTables& f,
                                            int id) const {
    return view_of_row(f.rows[static_cast<std::size_t>(id)]);
  }

  /// Builds and publishes a fresh frozen snapshot from the current states
  /// and transitions (idempotent; also run automatically by the eager
  /// closure, warm deserialize and the miss-budget re-freeze policy when
  /// TableBuildOptions::freeze is set).
  void freeze() const;

  /// True if some rule rooted at this terminal carries a side-constraint
  /// (such nodes must be labelled through the fallback matcher).
  [[nodiscard]] bool terminal_has_constrained(grammar::TermId t) const;

  /// True if the rule is side-constrained (excluded from the tables).
  [[nodiscard]] bool rule_is_constrained(int rule_id) const;

  /// Side-constrained rule ids rooted at `t`, in rule order (the candidates
  /// the parser must hand to the fallback matcher at such nodes).
  [[nodiscard]] const std::vector<int>& constrained_rules_of(
      grammar::TermId t) const;

  /// One-level structural precheck of a side-constrained rule: the root
  /// arity plus the subject requirements of every non-NonTerm child
  /// position. check() rejects (in O(children)) most rules the recursive
  /// matcher would walk a whole pattern to refute — grammars rich in
  /// constrained rules would otherwise pay that walk per rule per node.
  struct ConstrainedPrecheck {
    int rule = -1;
    std::uint32_t arity = 0;
    struct Req {
      std::uint32_t pos = 0;
      bool want_const = false;     // child must be a #const leaf (Imm/Const)
      grammar::TermId term = -1;   // else: required terminal...
      std::uint32_t term_arity = 0;  // ...with this many children
    };
    std::vector<Req> reqs;

    [[nodiscard]] bool check(const treeparse::SubjectNode& node) const;
  };

  /// Prechecks of the side-constrained rules rooted at `t`, in rule order
  /// (parallel to constrained_rules_of).
  [[nodiscard]] const std::vector<ConstrainedPrecheck>& constrained_prechecks_of(
      grammar::TermId t) const;

  /// Pre-chain-closure (cost, rule) candidates of the table rules at this
  /// operator, relative to the children's base sum. The side-constraint
  /// merge path interleaves these with matched constrained rules by
  /// (cost, rule id) before running chain closure — reproducing the
  /// interpreter's scan order exactly.
  void raw_candidates(grammar::TermId term, const std::vector<int>& children,
                      std::vector<int>& cost, std::vector<int>& rule) const;

  /// Registered subpattern index of a Term-kind pattern position; -1 if the
  /// position belongs to a constrained rule.
  [[nodiscard]] int subpattern_index(const grammar::PatNode* p) const;

  /// All registered subpatterns rooted at `t` (for the fallback re-intern).
  [[nodiscard]] const std::vector<int>& subpatterns_of_terminal(
      grammar::TermId t) const;

  [[nodiscard]] const grammar::PatNode* subpattern(int index) const;

  /// Index into the registered immediate widths of the smallest width the
  /// value fits (-1 = fits none); index of the hardwired pattern constant
  /// equal to the value (-1 = none). Used for #const signatures.
  [[nodiscard]] int fit_index_of(std::int64_t value) const;
  [[nodiscard]] int const_class_index(std::int64_t value) const;

  [[nodiscard]] int nonterminal_count() const { return nt_count_; }
  [[nodiscard]] int subpattern_count() const {
    return static_cast<int>(subpatterns_.size());
  }

  /// FNV-1a hash of the serialised grammar; guards cache/table identity.
  [[nodiscard]] std::uint64_t grammar_fingerprint() const {
    return fingerprint_;
  }

  [[nodiscard]] TableStats stats() const;

  // --- persistence ---------------------------------------------------------

  /// Appends the tables to `out` (see serialize.h for the primitive
  /// encoding). Frozen tables write their position-independent pool (after
  /// folding any pending dynamic fills into a fresh snapshot); hash-mode
  /// tables write the dynamic states + transitions sections. The pool is
  /// 4-byte aligned relative to the start of `out`, so a caller that
  /// prepends a header must keep it a multiple of 4 bytes for the mmap
  /// zero-copy path to engage (misalignment only costs one copy).
  void serialize(std::string& out) const;

  /// Rebuilds tables for `g` from a blob produced by serialize(). Returns
  /// nullptr if the blob is malformed or was built for a different grammar.
  /// A frozen blob lands directly in pure-array (mapped) mode with NO
  /// re-interning, transition rehash or re-freeze; when `pin` is non-null
  /// (a read-only mapping that must stay valid while the pin is held) and
  /// the pool is 4-byte aligned, the snapshot borrows the blob's memory
  /// zero-copy instead of copying the pool.
  [[nodiscard]] static std::unique_ptr<TargetTables> deserialize(
      const grammar::TreeGrammar& g, std::string_view blob,
      std::size_t& offset, std::shared_ptr<const void> pin = nullptr);

 private:
  struct TransKey {
    grammar::TermId term;
    std::vector<int> children;
    friend bool operator==(const TransKey&, const TransKey&) = default;
  };
  /// Allocation-free lookups: find() with a view over the caller's child
  /// array instead of materialising a TransKey (C++20 transparent hashing).
  struct TransKeyView {
    grammar::TermId term;
    const std::vector<int>* children;
  };
  struct TransKeyHash {
    using is_transparent = void;
    static std::size_t mix(grammar::TermId term,
                           const std::vector<int>& children) {
      std::size_t h = 1469598103934665603ull ^ static_cast<std::size_t>(term);
      for (int c : children)
        h = (h ^ static_cast<std::size_t>(c)) * 1099511628211ull;
      return h;
    }
    std::size_t operator()(const TransKey& k) const {
      return mix(k.term, k.children);
    }
    std::size_t operator()(const TransKeyView& k) const {
      return mix(k.term, *k.children);
    }
  };
  struct TransKeyEq {
    using is_transparent = void;
    bool operator()(const TransKey& a, const TransKey& b) const {
      return a == b;
    }
    bool operator()(const TransKeyView& a, const TransKey& b) const {
      return a.term == b.term && *a.children == b.children;
    }
    bool operator()(const TransKey& a, const TransKeyView& b) const {
      return a.term == b.term && a.children == *b.children;
    }
  };
  /// Interning key: a pointer to a full stride_-wide signature row, either
  /// inside the arena (stored keys) or a caller's scratch row (probes).
  struct RowKey {
    const std::int32_t* row;
  };
  struct RowHash {
    const TargetTables* t;
    std::size_t operator()(const RowKey& k) const;
  };
  struct RowEq {
    const TargetTables* t;
    bool operator()(const RowKey& a, const RowKey& b) const;
  };

  /// One table rule prepared for state computation.
  struct RulePlan {
    int id = -1;
    grammar::NtId lhs = -1;
    int cost = 0;
    const grammar::PatNode* pattern = nullptr;
  };
  struct ChainPlan {
    int id = -1;
    grammar::NtId lhs = -1;
    int cost = 0;
  };

  void prepare(const grammar::TreeGrammar& g);
  [[nodiscard]] static bool pattern_is_constrained(
      const grammar::PatNode& pat);
  [[nodiscard]] static std::string pattern_key(const grammar::PatNode& p);

  [[nodiscard]] StateView view_of_row(const std::int32_t* row) const;
  [[nodiscard]] const std::int32_t* state_row_locked(int id) const;
  void fill_row_from_state(const StateData& s, std::int32_t* row) const;

  /// Match cost of pattern child `p` against child state row `s`;
  /// kInf = fail.
  [[nodiscard]] int rel_match_locked(const grammar::PatNode& p,
                                     const std::int32_t* s) const;
  [[nodiscard]] int intern_row_locked(const std::int32_t* row) const;
  [[nodiscard]] Transition compute_transition_locked(
      grammar::TermId term, const std::vector<int>& children) const;
  [[nodiscard]] int compute_const_state_locked(int fit_index,
                                               int const_class) const;
  void run_closure(const TableBuildOptions& options);
  void freeze_locked() const;
  void count_miss_and_maybe_refreeze(const FrozenTables* f) const;
  /// Seeds state_index_ with the mapped base rows on first mutation (warm
  /// loads defer the hashing until the fallback path actually needs it).
  void ensure_state_index_locked() const;
  /// Reconstructs the mapped pool's transitions and #const pairs into the
  /// hash maps (inverse index maps + mixed-radix row decode) so a re-freeze
  /// folds pool and dynamic entries together. Idempotent.
  void absorb_pool_locked() const;
  /// Publishes a deserialized pool snapshot as this table's base: states
  /// < base_state_count_ are backed by the pool rather than the arena.
  void adopt_pool_locked(std::unique_ptr<FrozenTables> f);

  // --- immutable after construction ---------------------------------------
  int nt_count_ = 0;
  int stride_ = 0;  // ints per state row: 2 * nts + subpatterns + 3 meta
  grammar::TermId const_term_ = -1;
  std::uint64_t fingerprint_ = 0;
  bool freeze_enabled_ = true;
  std::size_t refreeze_misses_ = 64;
  std::vector<std::vector<RulePlan>> rules_by_terminal_;   // [term]
  std::vector<std::vector<int>> constrained_by_terminal_;  // [term] rule ids
  std::vector<std::vector<ConstrainedPrecheck>>
      constrained_precheck_;                               // [term]
  std::vector<std::vector<RulePlan>> const_root_rules_;    // size 1: #const
  std::vector<std::vector<ChainPlan>> chains_from_;        // [nt]
  std::vector<bool> constrained_rule_;                     // [rule id]
  std::vector<bool> terminal_constrained_;                 // [term]
  std::vector<const grammar::PatNode*> subpatterns_;
  std::unordered_map<const grammar::PatNode*, int> sub_index_;
  std::vector<std::vector<int>> subs_by_terminal_;         // [term]
  std::vector<int> fit_widths_;           // sorted distinct Imm widths
  std::vector<std::int64_t> const_values_;  // sorted distinct Const values
  std::unordered_map<std::int64_t, int> const_class_of_;
  std::vector<std::vector<int>> arities_by_terminal_;      // [term] sorted
  bool closure_complete_ = false;

  // --- mutable, guarded by mu_ ---------------------------------------------
  mutable std::shared_mutex mu_;
  /// Flat state arena: fixed-capacity blocks of stride_-wide rows, so row
  /// addresses are stable across growth (lock-free frozen readers hold raw
  /// row pointers).
  static constexpr int kStatesPerBlock = 256;
  mutable std::vector<std::unique_ptr<std::int32_t[]>> state_blocks_;
  mutable int state_count_ = 0;
  /// Mapped (pool-backed) base: state ids < base_state_count_ resolve into
  /// the adopted pool's contiguous row region instead of the arena. Zero
  /// for tables that were never deserialized from a frozen blob.
  mutable const std::int32_t* base_rows_ = nullptr;
  mutable int base_state_count_ = 0;
  mutable bool state_index_seeded_ = true;  // false after a mapped adopt
  mutable bool pool_absorbed_ = true;       // false after a mapped adopt
  mutable std::unordered_map<RowKey, int, RowHash, RowEq> state_index_;
  mutable std::unordered_map<TransKey, Transition, TransKeyHash, TransKeyEq>
      trans_;
  mutable std::unordered_map<std::int64_t, int> const_state_by_pair_;
  mutable std::vector<std::int32_t> scratch_row_;  // intern staging, under mu_

  // Frozen snapshots: the atomic points at the live one; superseded
  // snapshots are retained so concurrent readers never dangle.
  static constexpr std::size_t kMaxFreezes = 256;  // snapshot-churn bound
  mutable std::deque<std::unique_ptr<FrozenTables>> frozen_history_;
  mutable std::atomic<const FrozenTables*> frozen_ptr_{nullptr};
  mutable std::atomic<std::uint64_t> frozen_misses_{0};
  mutable std::size_t frozen_source_transitions_ = 0;
  mutable std::size_t frozen_source_const_ = 0;
  mutable std::size_t freeze_count_ = 0;
};

}  // namespace record::burstab
