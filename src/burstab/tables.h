// Table-driven BURS: precomputed state tables for tree-pattern labelling
// (the burg line of work — Chase 1987, Proebsting 1992 — applied to the
// paper's processor-specific tree grammars).
//
// The dynamic-programming TreeParser recomputes, at every subject node, the
// cheapest derivation of every non-terminal by re-matching every rule. The
// key observation behind table-driven BURS is that the *behaviour* of a
// subtree under any parent rule is fully captured by a finite signature:
//
//   * its delta-normalised cost vector over non-terminals (costs relative to
//     the subtree minimum) together with the winning rule per non-terminal,
//   * the normalised match cost of every interior pattern position
//     ("subpattern") rooted at its operator, and
//   * for "#const" leaves, which immediate widths the constant fits and
//     which hardwired pattern constants it equals.
//
// Subtrees with equal signatures are interchangeable, so signatures are
// interned as *states* and per-node labelling becomes a single transition
// lookup (operator, child states) -> (state, cost delta). Transitions are
// precomputed bottom-up at table-construction time under a budget and filled
// in dynamically (memoised, thread-safe) for combinations first met at parse
// time; both populations are serialisable, so a persistent TargetCache warms
// future runs to pure-lookup speed.
//
// Rules carrying side-constraints that a finite state cannot encode — two
// Imm leaves drawing the same instruction field, or two leaves of one
// non-terminal requiring structurally equal operands (x+x shifter patterns)
// — are excluded from the tables. Nodes whose operator owns such a rule are
// labelled through the shared treeparse::match_pattern_cost path instead and
// re-interned, which keeps the engine *exactly* equivalent to the
// interpreter, tie-breaking included.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "grammar/grammar.h"

namespace record::burstab {

inline constexpr int kInf = grammar::kInfCost;

struct TableBuildOptions {
  /// Run the bounded eager closure at construction time (leaf states plus
  /// bottom-up reachable transitions). Off: tables fill purely on demand.
  bool precompute = true;
  /// Eager-closure budgets. The closure stops (and marks itself incomplete)
  /// when either is hit; the remainder fills in dynamically at parse time.
  std::size_t max_states = 512;
  std::size_t max_transitions = 1u << 14;
};

struct TableStats {
  std::size_t states = 0;
  std::size_t transitions = 0;
  std::size_t subpatterns = 0;
  std::size_t table_rules = 0;        // rules encoded in the tables
  std::size_t constrained_rules = 0;  // rules left to the fallback matcher
  std::size_t const_classes = 0;      // distinct #const leaf behaviours seen
  bool closure_complete = false;      // eager closure finished within budget
};

/// Interned labelling state: the full behavioural signature of a subject
/// subtree. `cost`/`sub` are relative to the subtree's cost base except for
/// #const leaves, whose states are kept absolute (base 0) so that Imm/Const
/// pattern leaves (which contribute no operand cost) and NonTerm pattern
/// leaves (which contribute base + rel) stay consistent across rules.
struct StateData {
  std::vector<int> cost;  // per non-terminal; kInf = not derivable
  std::vector<int> rule;  // winning rule id per non-terminal; -1 = none
  std::vector<int> sub;   // per registered subpattern; kInf = no match
  bool is_const_leaf = false;
  int fit_width_index = -1;  // index into fit widths; -1 = fits none / n.a.
  int const_class = -1;      // index into hardwired values; -1 = none

  friend bool operator==(const StateData&, const StateData&) = default;
};

class TargetTables {
 public:
  /// Compiles the grammar into tables. The grammar may be moved afterwards
  /// (pattern nodes are heap-stable); it must not be destroyed or mutated
  /// while the tables are in use.
  explicit TargetTables(const grammar::TreeGrammar& g,
                        const TableBuildOptions& options = {});

  TargetTables(const TargetTables&) = delete;
  TargetTables& operator=(const TargetTables&) = delete;

  struct Transition {
    int state = -1;
    int delta = 0;  // node cost base = sum of child bases + delta
  };

  /// State for a "#const" leaf holding `value` (memoised per behaviour
  /// class, not per value).
  [[nodiscard]] int const_leaf_state(std::int64_t value) const;

  /// State + base delta for an operator node over already-labelled children.
  /// Computes and memoises the entry on first use.
  [[nodiscard]] Transition transition(grammar::TermId term,
                                      const std::vector<int>& children) const;

  /// Interns an externally computed signature (fallback path) and returns
  /// its state id.
  [[nodiscard]] int intern_state(StateData s) const;

  /// Snapshot of a state's signature. Returned by value: states live in an
  /// append-only store that other threads may be extending.
  [[nodiscard]] StateData state(int id) const;

  /// Reference access for the hot labelling loop. States are immutable once
  /// interned and the store never relocates them (append-only deque), so the
  /// reference stays valid after the internal lock is released.
  [[nodiscard]] const StateData& state_ref(int id) const;

  /// True if some rule rooted at this terminal carries a side-constraint
  /// (such nodes must be labelled through the fallback matcher).
  [[nodiscard]] bool terminal_has_constrained(grammar::TermId t) const;

  /// True if the rule is side-constrained (excluded from the tables).
  [[nodiscard]] bool rule_is_constrained(int rule_id) const;

  /// Side-constrained rule ids rooted at `t`, in rule order (the candidates
  /// the parser must hand to the fallback matcher at such nodes).
  [[nodiscard]] const std::vector<int>& constrained_rules_of(
      grammar::TermId t) const;

  /// Pre-chain-closure (cost, rule) candidates of the table rules at this
  /// operator, relative to the children's base sum. The side-constraint
  /// merge path interleaves these with matched constrained rules by
  /// (cost, rule id) before running chain closure — reproducing the
  /// interpreter's scan order exactly.
  void raw_candidates(grammar::TermId term, const std::vector<int>& children,
                      std::vector<int>& cost, std::vector<int>& rule) const;

  /// Registered subpattern index of a Term-kind pattern position; -1 if the
  /// position belongs to a constrained rule.
  [[nodiscard]] int subpattern_index(const grammar::PatNode* p) const;

  /// All registered subpatterns rooted at `t` (for the fallback re-intern).
  [[nodiscard]] const std::vector<int>& subpatterns_of_terminal(
      grammar::TermId t) const;

  [[nodiscard]] const grammar::PatNode* subpattern(int index) const;

  /// Index into the registered immediate widths of the smallest width the
  /// value fits (-1 = fits none); index of the hardwired pattern constant
  /// equal to the value (-1 = none). Used for #const signatures.
  [[nodiscard]] int fit_index_of(std::int64_t value) const;
  [[nodiscard]] int const_class_index(std::int64_t value) const;

  [[nodiscard]] int nonterminal_count() const { return nt_count_; }
  [[nodiscard]] int subpattern_count() const {
    return static_cast<int>(subpatterns_.size());
  }

  /// FNV-1a hash of the serialised grammar; guards cache/table identity.
  [[nodiscard]] std::uint64_t grammar_fingerprint() const {
    return fingerprint_;
  }

  [[nodiscard]] TableStats stats() const;

  // --- persistence ---------------------------------------------------------

  /// Appends the current states and transitions to `out` (see serialize.h
  /// for the primitive encoding).
  void serialize(std::string& out) const;

  /// Rebuilds tables for `g` from a blob produced by serialize(). Returns
  /// nullptr if the blob is malformed or was built for a different grammar.
  [[nodiscard]] static std::unique_ptr<TargetTables> deserialize(
      const grammar::TreeGrammar& g, std::string_view blob,
      std::size_t& offset);

 private:
  struct TransKey {
    grammar::TermId term;
    std::vector<int> children;
    friend bool operator==(const TransKey&, const TransKey&) = default;
  };
  /// Allocation-free lookups: find() with a view over the caller's child
  /// array instead of materialising a TransKey (C++20 transparent hashing).
  struct TransKeyView {
    grammar::TermId term;
    const std::vector<int>* children;
  };
  struct TransKeyHash {
    using is_transparent = void;
    static std::size_t mix(grammar::TermId term,
                           const std::vector<int>& children) {
      std::size_t h = 1469598103934665603ull ^ static_cast<std::size_t>(term);
      for (int c : children)
        h = (h ^ static_cast<std::size_t>(c)) * 1099511628211ull;
      return h;
    }
    std::size_t operator()(const TransKey& k) const {
      return mix(k.term, k.children);
    }
    std::size_t operator()(const TransKeyView& k) const {
      return mix(k.term, *k.children);
    }
  };
  struct TransKeyEq {
    using is_transparent = void;
    bool operator()(const TransKey& a, const TransKey& b) const {
      return a == b;
    }
    bool operator()(const TransKeyView& a, const TransKey& b) const {
      return a.term == b.term && *a.children == b.children;
    }
    bool operator()(const TransKey& a, const TransKeyView& b) const {
      return a.term == b.term && a.children == *b.children;
    }
  };
  struct StateKeyHash {
    std::size_t operator()(const StateData& s) const;
  };

  /// One table rule prepared for state computation.
  struct RulePlan {
    int id = -1;
    grammar::NtId lhs = -1;
    int cost = 0;
    const grammar::PatNode* pattern = nullptr;
  };
  struct ChainPlan {
    int id = -1;
    grammar::NtId lhs = -1;
    int cost = 0;
  };

  void prepare(const grammar::TreeGrammar& g);
  [[nodiscard]] static bool pattern_is_constrained(
      const grammar::PatNode& pat);
  [[nodiscard]] static std::string pattern_key(const grammar::PatNode& p);

  /// Match cost of pattern child `p` against child state `s`; kInf = fail.
  [[nodiscard]] int rel_match_locked(const grammar::PatNode& p,
                                     const StateData& s) const;
  [[nodiscard]] int intern_locked(StateData s) const;
  [[nodiscard]] Transition compute_transition_locked(
      grammar::TermId term, const std::vector<int>& children) const;
  [[nodiscard]] int compute_const_state_locked(int fit_index,
                                               int const_class) const;
  void run_closure(const TableBuildOptions& options);

  // --- immutable after construction ---------------------------------------
  int nt_count_ = 0;
  grammar::TermId const_term_ = -1;
  std::uint64_t fingerprint_ = 0;
  std::vector<std::vector<RulePlan>> rules_by_terminal_;   // [term]
  std::vector<std::vector<int>> constrained_by_terminal_;  // [term] rule ids
  std::vector<std::vector<RulePlan>> const_root_rules_;    // size 1: #const
  std::vector<std::vector<ChainPlan>> chains_from_;        // [nt]
  std::vector<bool> constrained_rule_;                     // [rule id]
  std::vector<bool> terminal_constrained_;                 // [term]
  std::vector<const grammar::PatNode*> subpatterns_;
  std::unordered_map<const grammar::PatNode*, int> sub_index_;
  std::vector<std::vector<int>> subs_by_terminal_;         // [term]
  std::vector<int> fit_widths_;           // sorted distinct Imm widths
  std::vector<std::int64_t> const_values_;  // sorted distinct Const values
  std::unordered_map<std::int64_t, int> const_class_of_;
  std::vector<std::vector<int>> arities_by_terminal_;      // [term] sorted
  bool closure_complete_ = false;

  // --- mutable, guarded by mu_ ---------------------------------------------
  mutable std::shared_mutex mu_;
  mutable std::deque<StateData> states_;
  mutable std::unordered_map<StateData, int, StateKeyHash> state_index_;
  mutable std::unordered_map<TransKey, Transition, TransKeyHash, TransKeyEq>
      trans_;
  mutable std::unordered_map<std::int64_t, int> const_state_by_pair_;
};

}  // namespace record::burstab
