// Table-driven subject labelling: the burstab counterpart of
// treeparse::TreeParser.
//
// label() walks the subject bottom-up assigning each node an interned state
// via table lookups — O(1) per node with a grammar-independent constant —
// and materialises the same LabelResult the interpreter produces, so
// TreeParser::reduce extracts an identical derivation (same optimal costs,
// same winning rules, same RT sequence).
//
// The per-node lookup probes the frozen (compressed, lock-free) snapshot
// first: child-state index maps plus one displacement-table probe, no
// hashing, no lock. Cold combinations fall back to the tables' memoised
// hash path, which feeds the next incremental re-freeze.
//
// Nodes whose operator owns a side-constrained rule (shared immediate
// fields, structural-equality non-terminal bindings) are labelled through
// the shared treeparse::match_pattern_cost fallback in exact TreeParser rule
// order, then re-interned so their parents continue on the fast path.
#pragma once

#include <memory>

#include "burstab/tables.h"
#include "obs/coverage.h"
#include "treeparse/burs.h"

namespace record::burstab {

class TableParser {
 public:
  /// `g` must be the grammar the tables were compiled from (checked via the
  /// grammar fingerprint in debug builds); both must outlive the parser.
  TableParser(const grammar::TreeGrammar& g, const TargetTables& tables)
      : g_(g), tables_(tables), reducer_(g) {}

  /// Table-driven labelling into a caller-owned (reusable) result;
  /// LabelResult-identical to TreeParser::label on the same tree.
  void label_into(const treeparse::SubjectTree& tree,
                  treeparse::LabelResult& out) const;

  [[nodiscard]] treeparse::LabelResult label(
      const treeparse::SubjectTree& tree) const {
    treeparse::LabelResult r;
    label_into(tree, r);
    return r;
  }

  [[nodiscard]] treeparse::Derivation* reduce(
      const treeparse::SubjectTree& tree,
      const treeparse::LabelResult& result,
      treeparse::DerivationArena& arena) const {
    return reducer_.reduce(tree, result, arena);
  }

  [[nodiscard]] treeparse::Derivation* parse(
      const treeparse::SubjectTree& tree,
      treeparse::DerivationArena& arena) const;

  [[nodiscard]] const TargetTables& tables() const { return tables_; }

  /// Attach a coverage map (null detaches). The disabled cost in
  /// label_into is one pointer test per node; when attached, every state
  /// assignment, frozen-slot hit, cold lookup and matched rule is recorded.
  void set_coverage(obs::CoverageMap* map) { coverage_ = map; }

 private:
  const grammar::TreeGrammar& g_;
  const TargetTables& tables_;
  treeparse::TreeParser reducer_;  // shared reduce path
  obs::CoverageMap* coverage_ = nullptr;
};

}  // namespace record::burstab
