#include "util/diagnostics.h"

#include <ostream>
#include <sstream>

namespace record::util {

std::string SourceLoc::str() const {
  if (!known()) return "<unknown>";
  std::ostringstream os;
  os << line << ':' << column;
  return os.str();
}

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::ostringstream os;
  os << loc.str() << ": " << to_string(severity) << ": " << message;
  return os.str();
}

void DiagnosticSink::note(SourceLoc loc, std::string message) {
  add(Severity::Note, loc, std::move(message));
}

void DiagnosticSink::warning(SourceLoc loc, std::string message) {
  add(Severity::Warning, loc, std::move(message));
}

void DiagnosticSink::error(SourceLoc loc, std::string message) {
  add(Severity::Error, loc, std::move(message));
}

void DiagnosticSink::add(Severity severity, SourceLoc loc,
                         std::string message) {
  if (severity == Severity::Error) ++error_count_;
  if (severity == Severity::Warning) ++warning_count_;
  diags_.push_back(Diagnostic{severity, loc, std::move(message)});
}

std::string DiagnosticSink::str() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) os << d.str() << '\n';
  return os.str();
}

std::string DiagnosticSink::first_error() const {
  for (const Diagnostic& d : diags_)
    if (d.severity == Severity::Error) return d.str();
  return {};
}

void DiagnosticSink::clear() {
  diags_.clear();
  error_count_ = 0;
  warning_count_ = 0;
}

std::ostream& operator<<(std::ostream& os, const Diagnostic& d) {
  return os << d.str();
}

}  // namespace record::util
