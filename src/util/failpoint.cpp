#include "util/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "obs/metrics.h"

namespace record::util {

namespace detail {
std::atomic<int> failpoints_armed{0};
}  // namespace detail

namespace {

enum class SpecKind : std::uint8_t { kOnce, kEveryN, kSleep };

struct Entry {
  SpecKind kind = SpecKind::kOnce;
  std::uint64_t n = 0;  // every:N period, or sleep milliseconds
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
  bool spent = false;  // once: already fired
  std::string spec;
};

// Function-local statics so arming works from any initialisation context.
std::mutex& table_mu() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, Entry, std::less<>>& table() {
  static std::map<std::string, Entry, std::less<>> t;
  return t;
}

std::atomic<std::uint64_t> total_fires{0};

bool parse_spec(std::string_view spec, Entry& out, std::string* error) {
  auto fail = [&](const char* msg) {
    if (error) *error = msg;
    return false;
  };
  auto suffix_u64 = [&](std::string_view s, std::uint64_t& v) {
    if (s.empty() || s.find_first_not_of("0123456789") != std::string_view::npos)
      return false;
    v = 0;
    for (char c : s) {
      if (v > (UINT64_MAX - 9) / 10) return false;
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return true;
  };
  if (spec == "once") {
    out.kind = SpecKind::kOnce;
    return true;
  }
  if (spec.rfind("every:", 0) == 0) {
    out.kind = SpecKind::kEveryN;
    if (!suffix_u64(spec.substr(6), out.n) || out.n == 0)
      return fail("every:N needs a positive decimal N");
    return true;
  }
  if (spec.rfind("sleep:", 0) == 0) {
    out.kind = SpecKind::kSleep;
    if (!suffix_u64(spec.substr(6), out.n) || out.n > 10000)
      return fail("sleep:MS needs a decimal MS <= 10000");
    return true;
  }
  return fail("spec must be once | every:N | sleep:MS | off");
}

}  // namespace

bool detail::failpoint_hit(std::string_view name) {
  bool fire = false;
  std::uint64_t sleep_ms = 0;
  {
    std::lock_guard<std::mutex> lock(table_mu());
    auto it = table().find(name);
    if (it == table().end()) return false;
    Entry& e = it->second;
    ++e.hits;
    switch (e.kind) {
      case SpecKind::kOnce:
        if (!e.spent) {
          e.spent = true;
          fire = true;
        }
        break;
      case SpecKind::kEveryN:
        fire = (e.hits % e.n) == 0;
        break;
      case SpecKind::kSleep:
        sleep_ms = e.n;
        break;
    }
    if (fire || sleep_ms) {
      ++e.fires;
      total_fires.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (fire || sleep_ms)
    obs::metrics().counter("failpoint.fired." + std::string(name)).add(1);
  if (sleep_ms)
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  return fire;
}

bool failpoint_arm(std::string_view name, std::string_view spec,
                   std::string* error) {
  if (name.empty()) {
    if (error) *error = "failpoint name is empty";
    return false;
  }
  if (spec == "off") {
    failpoint_disarm(name);
    return true;
  }
  Entry e;
  if (!parse_spec(spec, e, error)) return false;
  e.spec = std::string(spec);
  std::lock_guard<std::mutex> lock(table_mu());
  auto [it, inserted] = table().insert_or_assign(std::string(name), std::move(e));
  (void)it;
  if (inserted)
    detail::failpoints_armed.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool failpoint_disarm(std::string_view name) {
  std::lock_guard<std::mutex> lock(table_mu());
  auto it = table().find(name);
  if (it == table().end()) return false;
  table().erase(it);
  detail::failpoints_armed.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void failpoint_disarm_all() {
  std::lock_guard<std::mutex> lock(table_mu());
  if (table().empty()) return;
  detail::failpoints_armed.fetch_sub(static_cast<int>(table().size()),
                                     std::memory_order_relaxed);
  table().clear();
}

std::vector<FailpointInfo> failpoint_list() {
  std::vector<FailpointInfo> out;
  std::lock_guard<std::mutex> lock(table_mu());
  out.reserve(table().size());
  for (const auto& [name, e] : table())
    out.push_back(FailpointInfo{name, e.spec, e.hits, e.fires});
  return out;
}

std::uint64_t failpoint_fire_total() {
  return total_fires.load(std::memory_order_relaxed);
}

int failpoints_init_from_env(const char* var) {
  const char* raw = std::getenv(var);
  if (!raw || !*raw) return 0;
  int armed = 0;
  std::string_view rest(raw);
  while (!rest.empty()) {
    std::size_t sep = rest.find_first_of(";,");
    std::string_view item = rest.substr(0, sep);
    rest = sep == std::string_view::npos ? std::string_view{}
                                         : rest.substr(sep + 1);
    if (item.empty()) continue;
    std::size_t eq = item.find('=');
    std::string error;
    if (eq == std::string_view::npos ||
        !failpoint_arm(item.substr(0, eq), item.substr(eq + 1), &error)) {
      std::fprintf(stderr, "failpoint: ignoring '%.*s' from %s%s%s\n",
                   static_cast<int>(item.size()), item.data(), var,
                   error.empty() ? "" : ": ", error.c_str());
      continue;
    }
    ++armed;
  }
  return armed;
}

}  // namespace record::util
