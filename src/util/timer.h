// Wall-clock timing used by the retargeting benchmarks (Table 3 reproduction).
#pragma once

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace record::util {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Named phase timings, e.g. {"ISE", 0.12}, {"grammar", 0.01}, ...
/// Used to report the per-phase retargeting-time breakdown of Table 3.
class PhaseTimes {
 public:
  void record(std::string phase, double seconds) {
    entries_.emplace_back(std::move(phase), seconds);
  }

  [[nodiscard]] double total() const {
    double t = 0;
    for (const auto& [_, s] : entries_) t += s;
    return t;
  }

  [[nodiscard]] double get(std::string_view phase) const {
    for (const auto& [name, s] : entries_)
      if (name == phase) return s;
    return 0.0;
  }

  [[nodiscard]] const std::vector<std::pair<std::string, double>>& entries()
      const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

}  // namespace record::util
