#include "util/timer.h"

// Header-only functionality; this translation unit exists so the library has
// a stable archive member and a place for future non-inline additions.

namespace record::util {}  // namespace record::util
