// Diagnostics engine shared by all phases of the RECORD pipeline.
//
// Every phase (HDL frontend, elaboration, instruction-set extraction, code
// selection, ...) reports problems through a DiagnosticSink instead of
// printing or throwing, so that library users decide how errors surface.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace record::util {

/// A position inside an HDL or kernel source text (1-based; 0 = unknown).
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool known() const { return line != 0; }
  [[nodiscard]] std::string str() const;
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

enum class Severity : std::uint8_t { Note, Warning, Error };

[[nodiscard]] std::string_view to_string(Severity s);

/// One reported problem.
struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;

  [[nodiscard]] std::string str() const;
};

/// Collects diagnostics produced by a phase.
///
/// The sink is a value type; phases take it by reference. `ok()` is the
/// canonical "did the phase succeed" query.
///
/// Thread safety: none — a sink is deliberately unsynchronised. Concurrent
/// pipeline runs (service::CompileService workers, parallel callers of
/// Compiler::compile) must confine one sink per job and merge afterwards;
/// sharing one sink across threads is a data race.
class DiagnosticSink {
 public:
  void note(SourceLoc loc, std::string message);
  void warning(SourceLoc loc, std::string message);
  void error(SourceLoc loc, std::string message);

  [[nodiscard]] bool ok() const { return error_count_ == 0; }
  [[nodiscard]] std::size_t error_count() const { return error_count_; }
  [[nodiscard]] std::size_t warning_count() const { return warning_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }
  [[nodiscard]] bool empty() const { return diags_.empty(); }

  /// All diagnostics joined by newlines; convenient in tests and error paths.
  [[nodiscard]] std::string str() const;

  /// First error message, or empty string. Handy for gtest failure output.
  [[nodiscard]] std::string first_error() const;

  void clear();

 private:
  void add(Severity severity, SourceLoc loc, std::string message);

  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
  std::size_t warning_count_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Diagnostic& d);

}  // namespace record::util
