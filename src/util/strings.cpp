#include "util/strings.h"

#include <cctype>
#include <charconv>

namespace record::util {

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  auto head = static_cast<unsigned char>(s.front());
  if (!std::isalpha(head) && head != '_') return false;
  for (char c : s) {
    auto u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && u != '_') return false;
  }
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    s.remove_prefix(2);
  } else if (s.size() > 2 && s[0] == '0' && (s[1] == 'b' || s[1] == 'B')) {
    base = 2;
    s.remove_prefix(2);
  }
  std::int64_t value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value, base);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

namespace detail {

void format_one(std::string& out, std::string_view& fmt,
                std::string_view arg) {
  std::size_t pos = fmt.find("{}");
  if (pos == std::string_view::npos) {
    out.append(fmt);
    fmt = {};
    if (!out.empty() && out.back() != ' ') out.push_back(' ');
    out.append(arg);
    return;
  }
  out.append(fmt.substr(0, pos));
  out.append(arg);
  fmt.remove_prefix(pos + 2);
}

}  // namespace detail

}  // namespace record::util
