#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace record::util {

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  auto head = static_cast<unsigned char>(s.front());
  if (!std::isalpha(head) && head != '_') return false;
  for (char c : s) {
    auto u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && u != '_') return false;
  }
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    s.remove_prefix(2);
  } else if (s.size() > 2 && s[0] == '0' && (s[1] == 'b' || s[1] == 'B')) {
    base = 2;
    s.remove_prefix(2);
  }
  std::int64_t value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value, base);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::size_t utf8_sequence_length(std::string_view s, std::size_t i) {
  const unsigned char c0 = static_cast<unsigned char>(s[i]);
  if (c0 < 0x80) return 1;
  std::size_t n;
  std::uint32_t cp;
  if ((c0 & 0xE0) == 0xC0) {
    n = 2;
    cp = c0 & 0x1Fu;
  } else if ((c0 & 0xF0) == 0xE0) {
    n = 3;
    cp = c0 & 0x0Fu;
  } else if ((c0 & 0xF8) == 0xF0) {
    n = 4;
    cp = c0 & 0x07u;
  } else {
    return 0;  // continuation byte or invalid lead (0xFE/0xFF)
  }
  if (i + n > s.size()) return 0;
  for (std::size_t k = 1; k < n; ++k) {
    const unsigned char c = static_cast<unsigned char>(s[i + k]);
    if ((c & 0xC0) != 0x80) return 0;
    cp = (cp << 6) | (c & 0x3Fu);
  }
  if (n == 2 && cp < 0x80) return 0;     // overlong
  if (n == 3 && cp < 0x800) return 0;    // overlong
  if (n == 4 && cp < 0x10000) return 0;  // overlong
  if (cp > 0x10FFFF) return 0;
  if (cp >= 0xD800 && cp <= 0xDFFF) return 0;  // surrogate
  return n;
}

void append_json_quoted(std::string& out, std::string_view s) {
  out.push_back('"');
  for (std::size_t i = 0; i < s.size();) {
    const char c = s[i];
    switch (c) {
      case '"': out += "\\\""; ++i; continue;
      case '\\': out += "\\\\"; ++i; continue;
      case '\b': out += "\\b"; ++i; continue;
      case '\f': out += "\\f"; ++i; continue;
      case '\n': out += "\\n"; ++i; continue;
      case '\r': out += "\\r"; ++i; continue;
      case '\t': out += "\\t"; ++i; continue;
      default: break;
    }
    const unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", u);
      out += buf;
      ++i;
      continue;
    }
    if (u < 0x80) {
      out.push_back(c);
      ++i;
      continue;
    }
    const std::size_t n = utf8_sequence_length(s, i);
    if (n == 0) {
      // A byte that is not part of any valid UTF-8 sequence: escaping it
      // (rather than copying it raw) keeps the whole document valid UTF-8
      // for strict consumers. The round trip is intentionally lossy for
      // such inputs — \u00XX decodes to the code point, not the raw byte.
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", u);
      out += buf;
      ++i;
      continue;
    }
    out.append(s.substr(i, n));
    i += n;
  }
  out.push_back('"');
}

namespace detail {

void format_one(std::string& out, std::string_view& fmt,
                std::string_view arg) {
  std::size_t pos = fmt.find("{}");
  if (pos == std::string_view::npos) {
    out.append(fmt);
    fmt = {};
    if (!out.empty() && out.back() != ' ') out.push_back(' ');
    out.append(arg);
    return;
  }
  out.append(fmt.substr(0, pos));
  out.append(arg);
  fmt.remove_prefix(pos + 2);
}

}  // namespace detail

}  // namespace record::util
