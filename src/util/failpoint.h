// Process-wide failpoint registry: named fault-injection sites compiled to
// a single relaxed atomic load when nothing is armed (the same disarmed-cost
// discipline as src/obs/), so production binaries carry the sites for free.
//
// A site is one `if (util::failpoint("name")) <fail>;` at the place where a
// real fault would surface (cache read, mmap, allocation, socket write,
// worker job). Arming is external: the RECORD_FAILPOINTS environment
// variable (via failpoints_init_from_env), recordd's {"cmd":"failpoint"}
// control command, or a test calling failpoint_arm directly.
//
// Spec grammar:
//   "once"      fail the first hit, pass afterwards
//   "every:N"   fail every Nth hit (N >= 1; N=16 is the chaos default)
//   "sleep:MS"  latency injection: sleep MS milliseconds on every hit and
//               then PASS (drives deadline/timeout paths; MS <= 10000)
//   "off"       disarm (accepted by failpoint_arm for symmetry)
//
// Every injection (fail or sleep) increments the obs counter
// "failpoint.fired.<name>", so a chaos campaign can account for each fault
// it introduced.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace record::util {

namespace detail {
/// Number of currently armed failpoints; the disarmed fast path is one
/// relaxed load of this.
extern std::atomic<int> failpoints_armed;
[[nodiscard]] bool failpoint_hit(std::string_view name);
}  // namespace detail

/// True when the named site should fail this hit. Disarmed (the common
/// case): one relaxed load, no lock, no allocation.
inline bool failpoint(std::string_view name) {
  if (detail::failpoints_armed.load(std::memory_order_relaxed) == 0)
    return false;
  return detail::failpoint_hit(name);
}

/// Arms (or re-arms, resetting hit/fire counts) `name` with `spec`; "off"
/// disarms. False with `*error` set on a malformed spec.
bool failpoint_arm(std::string_view name, std::string_view spec,
                   std::string* error = nullptr);

/// Disarms one site; returns false when it was not armed.
bool failpoint_disarm(std::string_view name);

void failpoint_disarm_all();

struct FailpointInfo {
  std::string name;
  std::string spec;
  std::uint64_t hits = 0;   // times the site was reached while armed
  std::uint64_t fires = 0;  // times a fault (fail or sleep) was injected
};

/// Snapshot of every armed site, name-sorted.
[[nodiscard]] std::vector<FailpointInfo> failpoint_list();

/// Total injections across all sites since process start (survives
/// disarming; chaos drivers diff this around each run).
[[nodiscard]] std::uint64_t failpoint_fire_total();

/// Arms sites from `getenv(var)`, format "name=spec;name2=spec2" (',' also
/// accepted as separator). Returns the number armed; malformed entries are
/// skipped with a stderr warning. Explicit call, not a static initialiser,
/// so plain library users never pay for the parse.
int failpoints_init_from_env(const char* var = "RECORD_FAILPOINTS");

}  // namespace record::util
