// Small string helpers used across the pipeline (no locale dependence).
#pragma once

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace record::util {

/// True if `s` consists only of [A-Za-z0-9_] and starts with a letter or '_'.
[[nodiscard]] bool is_identifier(std::string_view s);

/// ASCII lower-casing (HDL keywords are case-insensitive).
[[nodiscard]] std::string to_lower(std::string_view s);

/// Split on a separator character; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Strip ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Parse a non-negative integer (decimal, or 0x/0b prefixed). nullopt on
/// malformed input or overflow of std::int64_t.
[[nodiscard]] std::optional<std::int64_t> parse_int(std::string_view s);

/// Join with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Length (1-4) of the well-formed UTF-8 sequence starting at s[i]; 0 when
/// the bytes at i do not form one (bad lead or continuation byte, overlong
/// encoding, surrogate code point, or a value above U+10FFFF).
[[nodiscard]] std::size_t utf8_sequence_length(std::string_view s,
                                               std::size_t i);

/// Appends `s` to `out` as a double-quoted JSON string literal. The output
/// is always valid UTF-8 regardless of the input: quotes, backslashes and
/// control characters get their JSON escapes, well-formed multi-byte UTF-8
/// sequences pass through verbatim, and stray bytes that are NOT part of a
/// valid sequence are escaped as \u00XX (their Latin-1 interpretation) so a
/// strict consumer never rejects the document. Generated model names can
/// carry arbitrary bytes; this is the single escaping routine every JSON
/// producer in the repo routes through.
void append_json_quoted(std::string& out, std::string_view s);

namespace detail {

void format_one(std::string& out, std::string_view& fmt, std::string_view arg);

inline std::string to_display(std::string_view v) { return std::string(v); }
inline std::string to_display(const char* v) { return v ? v : ""; }
inline std::string to_display(char v) { return std::string(1, v); }
inline std::string to_display(bool v) { return v ? "true" : "false"; }

template <typename T>
  requires std::is_arithmetic_v<T>
std::string to_display(T v) {
  if constexpr (std::is_floating_point_v<T>) {
    std::ostringstream os;
    os << v;
    return os.str();
  } else {
    return std::to_string(v);
  }
}

}  // namespace detail

/// Minimal "{}" formatting helper: replaces each "{}" in `format` with the
/// next argument. Extra arguments are appended; extra "{}" stay literal.
template <typename... Args>
[[nodiscard]] std::string fmt(std::string_view format, const Args&... args) {
  std::string out;
  out.reserve(format.size() + 16);
  std::string_view rest = format;
  (detail::format_one(out, rest, detail::to_display(args)), ...);
  out.append(rest);
  return out;
}

}  // namespace record::util
