// Socket front end for the compile service: a single-threaded epoll event
// loop serving the JSON-lines protocol (the exact codec in service/wire.h,
// so responses are byte-identical to the stdio daemon) over TCP or a Unix
// socket.
//
//        accept ──► Conn{ inbuf ── parse line ──► response slot deque }
//                          │                            │
//                          │ try_submit_async           │ in-order flush
//                          ▼                            ▼
//                   CompileService                conn outbuf ──► write()
//
// Concurrency: the loop thread owns every Conn; worker threads only touch
// the completion queue (mutex + eventfd wakeup), so the loop never blocks
// on a job and the workers never block on a socket.
//
// Ordering: each request reserves a response slot at parse time and slots
// flush strictly in order, so pipelined requests answer in request order.
// Control-plane commands ("cmd": stats / trace / explain / shard) are
// evaluated only when their slot reaches the front — the same semantics as
// the stdio printer thread: a stats response counts every job answered
// above it.
//
// Backpressure, both directions:
//  - compile queue full: try_submit_async fails, the job parks, and the
//    connection stops reading until a completion frees a slot;
//  - slow reader: a connection whose outbuf exceeds max_write_buffer (or
//    that has max_pipeline slots in flight) stops reading until the client
//    drains it. Either way the kernel socket buffer, not daemon memory,
//    absorbs the client's burst.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/shard.h"
#include "net/timerwheel.h"
#include "service/json.h"
#include "service/service.h"

namespace record::net {

class LineServer {
 public:
  struct Options {
    /// When set, listen on an AF_UNIX socket at this path (unlinked on
    /// stop); otherwise TCP on host:port.
    std::string unix_path;
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = ephemeral; port() reports the bound port

    /// A request line longer than this is unrecoverable (framing is lost):
    /// the connection gets one error response and is closed.
    std::size_t max_line = 1 << 20;
    /// Slow-reader watermark: stop reading from a connection whose unsent
    /// responses exceed this many bytes.
    std::size_t max_write_buffer = 4u << 20;
    /// In-flight response slots per connection; 0 = 2 * queue_capacity.
    std::size_t max_pipeline = 0;

    /// Daemon-wide default for "options.listing" (the --listing flag).
    bool default_listing = false;
    ShardConfig shard;

    /// Close a connection with no inbound traffic for this long; 0 = never
    /// (the stdio daemon's behaviour). Closes log one stderr line and count
    /// under "net.conn.idle_closed".
    std::uint64_t idle_timeout_ms = 0;
    /// Shed a parked request (compile queue full) still unsubmitted after
    /// this long; 0 = park indefinitely. Shed responses are structured
    /// failures carrying retry_after_ms.
    std::uint64_t request_timeout_ms = 0;
    /// Server-wide cap on parked requests: parking one more sheds the
    /// globally oldest parked request first (deterministic oldest-first
    /// load shedding). 0 = unbounded parking.
    std::size_t max_parked = 0;
    /// Deadline stamped on jobs whose request carries no
    /// "options.deadline_ms"; 0 = no default deadline.
    std::uint64_t default_deadline_ms = 0;
  };

  LineServer(service::CompileService& service, Options options);
  ~LineServer();  // stop()

  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;

  /// Binds, listens and spawns the loop thread. False (with `error` set)
  /// when the socket cannot be set up; the server is then inert.
  [[nodiscard]] bool start(std::string* error = nullptr);

  /// Closes the listener, completes jobs already submitted, closes every
  /// connection and joins the loop thread. Idempotent.
  void stop();

  /// Bound TCP port (after start(); 0 for Unix-socket servers).
  [[nodiscard]] std::uint16_t port() const { return bound_port_; }

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  struct Slot {
    std::uint64_t serial = 0;
    bool done = false;
    std::string text;  // response line (unterminated) once done
    /// Deferred control command; evaluated when the slot reaches the front.
    std::optional<service::Json> control;
  };

  struct Parked {
    std::uint64_t serial = 0;
    std::uint64_t seq = 0;          // global park order (monotonic)
    std::uint64_t parked_at_ms = 0;
    service::CompileJob job;
  };

  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    std::uint32_t events = 0;  // current epoll interest set
    std::size_t lineno = 0;
    std::string inbuf;
    std::string outbuf;
    std::size_t outpos = 0;
    std::deque<Slot> slots;
    std::deque<Parked> parked;  // jobs waiting for compile-queue space
    std::uint64_t next_serial = 1;
    /// Peer stopped sending (EOF, error, or lost framing): no more reads,
    /// close once every pending response has flushed.
    bool eof = false;
    /// Last inbound traffic (steady-clock ms); drives the idle timeout.
    std::uint64_t last_activity_ms = 0;
  };

  struct Done {
    std::uint64_t conn_id = 0;
    std::uint64_t serial = 0;
    service::JobResult result;
  };

  void run();
  void handle_accept();
  void handle_readable(Conn& conn);
  void handle_writable(Conn& conn);
  void parse_lines(Conn& conn);
  void submit_or_park(Conn& conn, std::uint64_t serial,
                      service::CompileJob job);
  void retry_parked();
  void drain_completions();
  void flush_ready(Conn& conn);
  void update_interest(Conn& conn);
  void close_conn(std::uint64_t conn_id);
  [[nodiscard]] std::size_t pipeline_limit() const;

  /// Fires due idle/parked timers (timer id = conn_id*2 for idle,
  /// conn_id*2+1 for parked-request timeouts).
  void expire_timers(std::uint64_t now);
  /// Sheds conn.parked.front(): its reserved slot becomes a structured
  /// failure with retry_after_ms and "net.shed" counts it.
  void shed_parked(Conn& conn, const char* reason);
  /// Deterministic saturation shedding: drops the globally oldest parked
  /// request (smallest park seq). `skip_flush_id` is the connection the
  /// caller holds a reference into (it flushes that one itself).
  void shed_oldest_parked(std::uint64_t skip_flush_id);

  service::CompileService& service_;
  Options options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: completions and stop requests
  std::uint16_t bound_port_ = 0;
  std::thread loop_;
  bool started_ = false;

  std::unordered_map<std::uint64_t, Conn> conns_;
  std::uint64_t next_conn_id_ = 1;
  std::optional<ShardRing> ring_;  // set when sharding is enabled

  /// Loop-thread timer state: the wheel indexes idle and parked-request
  /// deadlines, park_seq_ orders parks globally for oldest-first shedding,
  /// parked_total_ is the server-wide parked count max_parked caps.
  TimerWheel wheel_;
  std::uint64_t park_seq_ = 0;
  std::size_t parked_total_ = 0;

  /// Worker-thread side: completed jobs waiting for the loop, the count of
  /// callbacks still outstanding (stop() waits for them so a worker never
  /// touches a destroyed server), and the stop flag the loop polls.
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::deque<Done> done_;
  std::size_t outstanding_ = 0;
  bool stopping_ = false;
};

}  // namespace record::net
