// Coarse hashed timer wheel for the epoll event loop: idle-connection and
// parked-request timeouts without a per-timer heap.
//
// Timers hash into kSlots buckets by deadline tick (deadline / tick_ms),
// arm/cancel are O(1) amortised, and expire() scans only the ticks that
// elapsed since the last call. Re-arming a timer simply overwrites its
// deadline in the id map; stale bucket entries are dropped lazily when
// their slot is scanned (the map is the source of truth, the wheel is the
// index). Resolution is tick_ms — a timer can fire up to one tick late,
// which is the right trade for connection timeouts measured in seconds.
//
// Single-threaded by design: owned and driven by the event-loop thread,
// like every Conn.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace record::net {

class TimerWheel {
 public:
  explicit TimerWheel(std::uint64_t tick_ms = 64)
      : tick_ms_(tick_ms ? tick_ms : 1), slots_(kSlots) {}

  /// Arms (or re-arms) timer `id` to fire at absolute `deadline_ms`.
  void arm(std::uint64_t id, std::uint64_t deadline_ms) {
    deadlines_[id] = deadline_ms;
    // An already-due deadline lands in the next unscanned tick so expire()
    // still visits it (its own tick was scanned in a previous call).
    std::uint64_t tick = deadline_ms / tick_ms_;
    if (tick < last_tick_) tick = last_tick_;
    slots_[static_cast<std::size_t>(tick % kSlots)].emplace_back(id,
                                                                deadline_ms);
  }

  void cancel(std::uint64_t id) { deadlines_.erase(id); }

  /// Milliseconds until the earliest armed deadline (0 when already due),
  /// or -1 when nothing is armed — the epoll_wait timeout.
  [[nodiscard]] int next_timeout_ms(std::uint64_t now_ms) const {
    if (deadlines_.empty()) return -1;
    std::uint64_t best = UINT64_MAX;
    for (const auto& [id, deadline] : deadlines_)
      if (deadline < best) best = deadline;
    if (best <= now_ms) return 0;
    std::uint64_t wait = best - now_ms;
    constexpr std::uint64_t kMaxWait = 60'000;  // re-poll at least every minute
    if (wait > kMaxWait) wait = kMaxWait;
    return static_cast<int>(wait);
  }

  /// Collects every timer due at `now_ms` into `fired` (each id at most
  /// once; fired timers are disarmed).
  void expire(std::uint64_t now_ms, std::vector<std::uint64_t>& fired) {
    const std::uint64_t now_tick = now_ms / tick_ms_;
    std::uint64_t from = last_tick_;
    last_tick_ = now_tick + 1;
    if (now_tick - from >= kSlots) from = now_tick + 1 - kSlots;
    for (std::uint64_t t = from; t <= now_tick; ++t) {
      std::vector<std::pair<std::uint64_t, std::uint64_t>>& slot =
          slots_[static_cast<std::size_t>(t % kSlots)];
      std::size_t keep = 0;
      for (std::size_t i = 0; i < slot.size(); ++i) {
        auto [id, deadline] = slot[i];
        auto it = deadlines_.find(id);
        if (it == deadlines_.end() || it->second != deadline)
          continue;  // cancelled or re-armed: stale index entry
        if (deadline <= now_ms) {
          deadlines_.erase(it);
          fired.push_back(id);
        } else {
          slot[keep++] = slot[i];  // a later wheel revolution
        }
      }
      slot.resize(keep);
    }
  }

  [[nodiscard]] std::size_t armed() const { return deadlines_.size(); }

 private:
  static constexpr std::size_t kSlots = 256;

  std::uint64_t tick_ms_;
  std::uint64_t last_tick_ = 0;
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> slots_;
  std::map<std::uint64_t, std::uint64_t> deadlines_;  // id -> deadline
};

}  // namespace record::net
