#include "net/shard.h"

#include <algorithm>
#include <cstdio>

#include "burstab/cache.h"
#include "burstab/serialize.h"
#include "models/models.h"
#include "util/strings.h"

namespace record::net {

using service::Json;

ShardRing::ShardRing(std::size_t shards, std::size_t vnodes)
    : shards_(std::max<std::size_t>(shards, 1)) {
  ring_.reserve(shards_ * vnodes);
  for (std::size_t s = 0; s < shards_; ++s)
    for (std::size_t v = 0; v < vnodes; ++v)
      ring_.push_back(Point{burstab::fnv1a(util::fmt("shard:{}:{}", s, v)),
                            static_cast<std::uint32_t>(s)});
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    // Hash ties (astronomically unlikely) break on the shard index so every
    // instance sorts the ring identically.
    return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
  });
}

std::size_t ShardRing::owner_of(std::uint64_t key) const {
  if (ring_.empty()) return 0;
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const Point& p, std::uint64_t k) { return p.hash < k; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->shard;
}

std::uint64_t target_key_of(const service::Json& request,
                            const core::RetargetOptions& ropts) {
  const std::string& model = request["model"].as_string();
  std::string_view source =
      model.empty() ? std::string_view(request["hdl"].as_string())
                    : models::model_source(model);
  return burstab::TargetCache::key_of(source, core::options_digest(ropts));
}

Json shard_response(const Json& request, const ShardConfig& config,
                    const core::RetargetOptions& ropts) {
  const std::size_t shards = std::max<std::size_t>(config.count, 1);
  Json out = Json::object();
  out.set("ok", Json(true));
  out.set("shards", Json(double(shards)));
  out.set("self", Json(double(config.index)));
  if (request.contains("model") || request.contains("hdl")) {
    ShardRing ring(shards);
    std::uint64_t key = target_key_of(request, ropts);
    std::size_t owner = ring.owner_of(key);
    char hex[24];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(key));
    out.set("key", Json(std::string(hex)));
    out.set("owner", Json(double(owner)));
    out.set("owned", Json(owner == config.index));
  }
  return out;
}

Json not_owned_response(const Json& request, std::size_t owner,
                        std::size_t shards) {
  Json out = Json::object();
  const std::string& tag = request["tag"].as_string();
  if (!tag.empty()) out.set("tag", Json(tag));
  out.set("ok", Json(false));
  out.set("error", Json(util::fmt("target owned by shard {} of {}", owner,
                                  shards)));
  out.set("owner", Json(double(owner)));
  out.set("shards", Json(double(shards)));
  return out;
}

}  // namespace record::net
