// Registry sharding across daemon instances: a consistent-hash ring over
// the target content hash (burstab::TargetCache::key_of of the HDL source
// and core::options_digest — the same key the registry and the persistent
// cache use). N recordd instances configured with --shards N --shard-index I
// partition the model space; a request for a target this instance does not
// own is answered with an ownership error naming the owner, so a thin client
// (or proxy) can redirect without any coordination between instances.
//
// The ring places kVirtualNodes points per shard, so adding or removing one
// instance remaps only ~1/N of the keys (plain modulo would remap nearly all
// of them, cold-starting every registry).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/record.h"
#include "service/json.h"

namespace record::net {

class ShardRing {
 public:
  static constexpr std::size_t kVirtualNodes = 64;

  explicit ShardRing(std::size_t shards, std::size_t vnodes = kVirtualNodes);

  [[nodiscard]] std::size_t shards() const { return shards_; }

  /// Shard index owning `key` (clockwise successor on the ring).
  [[nodiscard]] std::size_t owner_of(std::uint64_t key) const;

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t shard;
  };
  std::size_t shards_;
  std::vector<Point> ring_;  // sorted by hash
};

/// Static shard membership of one daemon instance. count <= 1 means
/// sharding is off: every key is owned locally and the shard command
/// reports a single-shard ring.
struct ShardConfig {
  std::size_t count = 0;
  std::size_t index = 0;

  [[nodiscard]] bool enabled() const { return count > 1; }
};

/// The registry/cache content key for a request's target: `model` is
/// resolved to its built-in HDL source, otherwise the raw `hdl` text keys
/// directly. Deterministic across processes (FNV-1a), so every instance
/// agrees on ownership without talking to each other.
[[nodiscard]] std::uint64_t target_key_of(const service::Json& request,
                                          const core::RetargetOptions& ropts);

/// Handles {"cmd":"shard"[, "model"|"hdl": ...]}: reports the ring shape
/// ("shards", "self") and, when the request names a target, its "key" (hex),
/// "owner" and whether this instance "owned" it.
[[nodiscard]] service::Json shard_response(const service::Json& request,
                                           const ShardConfig& config,
                                           const core::RetargetOptions& ropts);

/// Ownership error for a compile request whose target hashes to another
/// instance: {"ok":false, "error":..., "owner":K, "shards":N} (plus the
/// echoed "tag" when present).
[[nodiscard]] service::Json not_owned_response(const service::Json& request,
                                               std::size_t owner,
                                               std::size_t shards);

}  // namespace record::net
