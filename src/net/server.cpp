#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/introspect.h"
#include "service/wire.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace record::net {

using service::Json;

namespace {

// epoll user-data ids for the two non-connection descriptors; connection
// ids start above these.
constexpr std::uint64_t kListenId = 0;
constexpr std::uint64_t kWakeId = 1;
constexpr std::uint64_t kFirstConnId = 2;

bool set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Cached metric handles: name resolution takes the registry mutex, and
// read_bytes/write_bytes fire once per event-loop iteration. Registry
// storage is process-lifetime, so the references stay valid.
struct NetCounters {
  obs::Counter& accepted = obs::metrics().counter("net.accepted");
  obs::Counter& closed = obs::metrics().counter("net.closed");
  obs::Counter& read_bytes = obs::metrics().counter("net.read_bytes");
  obs::Counter& write_bytes = obs::metrics().counter("net.write_bytes");
  obs::Counter& requests = obs::metrics().counter("net.requests");
  obs::Counter& responses = obs::metrics().counter("net.responses");
  obs::Counter& oversized = obs::metrics().counter("net.oversized");
  obs::Counter& not_owned = obs::metrics().counter("net.not_owned");
  obs::Counter& queue_stalls = obs::metrics().counter("net.queue_stalls");
  obs::Counter& backpressure_stalls =
      obs::metrics().counter("net.backpressure_stalls");
  obs::Counter& idle_closed = obs::metrics().counter("net.conn.idle_closed");
  obs::Counter& shed = obs::metrics().counter("net.shed");
  obs::Gauge& connections = obs::metrics().gauge("net.connections");
};

NetCounters& net_counters() {
  static NetCounters counters;
  return counters;
}

}  // namespace

LineServer::LineServer(service::CompileService& service, Options options)
    : service_(service), options_(std::move(options)) {
  next_conn_id_ = kFirstConnId;
  if (options_.shard.enabled()) ring_.emplace(options_.shard.count);
}

LineServer::~LineServer() { stop(); }

std::size_t LineServer::pipeline_limit() const {
  return options_.max_pipeline ? options_.max_pipeline : 512;
}

bool LineServer::start(std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error) *error = util::fmt("{}: {}", msg, std::strerror(errno));
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return false;
  };
  if (started_) return true;

  if (!options_.unix_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return fail("socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof addr.sun_path)
      return fail("unix socket path too long");
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    ::unlink(options_.unix_path.c_str());  // stale socket from a dead daemon
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0)
      return fail("bind " + options_.unix_path);
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return fail("socket");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1)
      return fail("bad listen address " + options_.host);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0)
      return fail("bind " + options_.host);
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0)
      bound_port_ = ntohs(bound.sin_port);
  }
  if (!set_nonblocking(listen_fd_)) return fail("nonblocking listener");
  if (::listen(listen_fd_, 128) != 0) return fail("listen");

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return fail("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) return fail("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenId;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0)
    return fail("epoll_ctl listener");
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeId;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0)
    return fail("epoll_ctl eventfd");

  started_ = true;
  loop_ = std::thread([this] { run(); });
  return true;
}

void LineServer::stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    if (stopping_) return;
    stopping_ = true;
    std::uint64_t one = 1;
    (void)!::write(wake_fd_, &one, sizeof one);
  }
  loop_.join();
  // Wait out callbacks of jobs still running on the workers: they only
  // touch done_mu_/done_/wake_fd_, all of which must outlive them.
  {
    std::unique_lock<std::mutex> lock(done_mu_);
    done_cv_.wait(lock, [&] { return outstanding_ == 0; });
    done_.clear();
  }
  for (auto& [id, conn] : conns_) ::close(conn.fd);
  conns_.clear();
  ::close(listen_fd_);
  ::close(epoll_fd_);
  ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  started_ = false;
}

void LineServer::run() {
  epoll_event events[64];
  for (;;) {
    // The wheel drives the poll timeout: -1 (block) with no timers armed,
    // otherwise the time to the earliest idle/parked deadline.
    int n = ::epoll_wait(epoll_fd_, events, 64,
                         wheel_.next_timeout_ms(now_ms()));
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll fd gone: nothing left to serve
    }
    for (int i = 0; i < n; ++i) {
      std::uint64_t id = events[i].data.u64;
      if (id == kWakeId) {
        std::uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof drained) > 0) {
        }
        {
          std::lock_guard<std::mutex> lock(done_mu_);
          if (stopping_) return;
        }
        drain_completions();
        continue;
      }
      if (id == kListenId) {
        handle_accept();
        continue;
      }
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // closed earlier this batch
      Conn& conn = it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        close_conn(id);
        continue;
      }
      if (events[i].events & EPOLLOUT) handle_writable(conn);
      if (conns_.find(id) == conns_.end()) continue;
      if (events[i].events & EPOLLIN) handle_readable(conn);
    }
    expire_timers(now_ms());
  }
}

void LineServer::expire_timers(std::uint64_t now) {
  if (wheel_.armed() == 0) return;
  std::vector<std::uint64_t> fired;
  wheel_.expire(now, fired);
  for (std::uint64_t tid : fired) {
    const std::uint64_t conn_id = tid / 2;
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) continue;
    Conn& conn = it->second;
    if ((tid & 1) == 0) {
      // Idle timer: armed once at accept, re-checked lazily against the
      // actual last activity so reads never pay a re-arm.
      if (options_.idle_timeout_ms == 0) continue;
      if (now - conn.last_activity_ms >= options_.idle_timeout_ms) {
        std::fprintf(stderr,
                     "recordd: closing conn %llu: idle %llu ms "
                     "(limit %llu ms)\n",
                     static_cast<unsigned long long>(conn_id),
                     static_cast<unsigned long long>(now -
                                                     conn.last_activity_ms),
                     static_cast<unsigned long long>(
                         options_.idle_timeout_ms));
        net_counters().idle_closed.add(1);
        close_conn(conn_id);
      } else {
        wheel_.arm(tid, conn.last_activity_ms + options_.idle_timeout_ms);
      }
      continue;
    }
    // Parked-request timer: shed everything past the timeout (FIFO, so the
    // front is always the oldest), re-arm for the new front.
    if (options_.request_timeout_ms == 0) continue;
    while (!conn.parked.empty() &&
           now - conn.parked.front().parked_at_ms >=
               options_.request_timeout_ms)
      shed_parked(conn,
                  "overloaded: request timed out waiting for queue space");
    if (!conn.parked.empty())
      wheel_.arm(tid, conn.parked.front().parked_at_ms +
                          options_.request_timeout_ms);
    if (conn.parked.empty() && !conn.inbuf.empty()) parse_lines(conn);
    if (conns_.find(conn_id) != conns_.end()) flush_ready(conn);
  }
}

void LineServer::shed_parked(Conn& conn, const char* reason) {
  Parked parked = std::move(conn.parked.front());
  conn.parked.pop_front();
  --parked_total_;
  Json out = Json::object();
  if (!parked.job.tag.empty()) out.set("tag", Json(parked.job.tag));
  out.set("ok", Json(false));
  out.set("error", Json(reason));
  out.set("retry_after_ms",
          Json(static_cast<double>(service_.suggested_backoff_ms())));
  for (Slot& slot : conn.slots) {
    if (slot.serial == parked.serial) {
      slot.text = out.dump();
      slot.done = true;
      break;
    }
  }
  net_counters().shed.add(1);
}

void LineServer::shed_oldest_parked(std::uint64_t skip_flush_id) {
  Conn* oldest = nullptr;
  for (auto& [id, conn] : conns_) {
    if (conn.parked.empty()) continue;
    if (!oldest || conn.parked.front().seq < oldest->parked.front().seq)
      oldest = &conn;
  }
  if (!oldest) return;
  shed_parked(*oldest, "overloaded: parked request shed (server saturated)");
  // Flushing may close the victim; never flush the connection the caller
  // still holds a reference into (it flushes itself after parking).
  if (oldest->id != skip_flush_id) flush_ready(*oldest);
}

void LineServer::handle_accept() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN (or a transient error): try next wakeup
    std::uint64_t id = next_conn_id_++;
    Conn& conn = conns_[id];
    conn.fd = fd;
    conn.id = id;
    conn.events = EPOLLIN;
    epoll_event ev{};
    ev.events = conn.events;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      conns_.erase(id);
      continue;
    }
    conn.last_activity_ms = now_ms();
    if (options_.idle_timeout_ms)
      wheel_.arm(id * 2, conn.last_activity_ms + options_.idle_timeout_ms);
    net_counters().accepted.add(1);
    net_counters().connections.add(1);
  }
}

void LineServer::handle_readable(Conn& conn) {
  conn.last_activity_ms = now_ms();
  char buf[16384];
  for (;;) {
    ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
    if (n > 0) {
      net_counters().read_bytes.add(static_cast<std::uint64_t>(n));
      conn.inbuf.append(buf, static_cast<std::size_t>(n));
      // Oversized-line guard before buffering more: a line that cannot end
      // within max_line has lost framing for good.
      if (conn.inbuf.size() > options_.max_line &&
          conn.inbuf.find('\n') == std::string::npos) {
        net_counters().oversized.add(1);
        Json err = Json::object();
        err.set("ok", Json(false));
        err.set("error", Json("request line too long"));
        conn.slots.push_back(
            Slot{conn.next_serial++, true, err.dump(), std::nullopt});
        conn.eof = true;  // close after the error flushes
        conn.inbuf.clear();
        break;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // 0 = clean EOF; anything else is a dead peer. Either way: no more
    // requests, but responses already in flight still flush.
    conn.eof = true;
    break;
  }
  parse_lines(conn);
  flush_ready(conn);
}

void LineServer::parse_lines(Conn& conn) {
  std::size_t start = 0;
  for (;;) {
    if (!conn.parked.empty()) break;  // preserve submission order
    if (conn.slots.size() >= pipeline_limit()) break;
    std::size_t nl = conn.inbuf.find('\n', start);
    if (nl == std::string::npos) break;
    std::string_view line(conn.inbuf.data() + start, nl - start);
    start = nl + 1;
    ++conn.lineno;
    if (util::trim(line).empty()) continue;
    net_counters().requests.add(1);
    if (line.size() > options_.max_line) {
      net_counters().oversized.add(1);
      Json err = Json::object();
      err.set("ok", Json(false));
      err.set("error", Json("request line too long"));
      conn.slots.push_back(
          Slot{conn.next_serial++, true, err.dump(), std::nullopt});
      conn.eof = true;
      break;
    }
    std::string error;
    std::optional<Json> request = Json::parse(line, &error);
    if (!request || !request->is_object()) {
      conn.slots.push_back(Slot{conn.next_serial++, true,
                                service::bad_request_line(conn.lineno, error),
                                std::nullopt});
      continue;
    }
    if (request->contains("cmd")) {
      // Deferred like the stdio printer: evaluated when it reaches the
      // front, so a stats response counts every job answered above it.
      conn.slots.push_back(
          Slot{conn.next_serial++, false, {}, std::move(*request)});
      continue;
    }
    if (ring_) {
      std::size_t owner = ring_->owner_of(target_key_of(
          *request, service_.registry().options().retarget));
      if (owner != options_.shard.index) {
        net_counters().not_owned.add(1);
        conn.slots.push_back(
            Slot{conn.next_serial++, true,
                 not_owned_response(*request, owner, options_.shard.count)
                     .dump(),
                 std::nullopt});
        continue;
      }
    }
    std::uint64_t serial = conn.next_serial++;
    conn.slots.push_back(Slot{serial, false, {}, std::nullopt});
    service::CompileJob job =
        service::job_from_request(*request, options_.default_listing);
    if (job.deadline_ms == 0) job.deadline_ms = options_.default_deadline_ms;
    submit_or_park(conn, serial, std::move(job));
  }
  conn.inbuf.erase(0, start);
}

void LineServer::submit_or_park(Conn& conn, std::uint64_t serial,
                                service::CompileJob job) {
  std::uint64_t conn_id = conn.id;
  service::CompileService::Callback done =
      [this, conn_id, serial](service::JobResult result) {
        std::lock_guard<std::mutex> lock(done_mu_);
        done_.push_back(Done{conn_id, serial, std::move(result)});
        --outstanding_;
        done_cv_.notify_all();
        std::uint64_t one = 1;
        (void)!::write(wake_fd_, &one, sizeof one);
      };
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    ++outstanding_;  // claimed up front so stop() never misses a callback
  }
  if (!service_.try_submit_async(job, done)) {
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      --outstanding_;
    }
    net_counters().queue_stalls.add(1);
    // Saturation: make room by shedding the globally oldest parked request
    // before this one parks — deterministic oldest-first under overload.
    if (options_.max_parked && parked_total_ >= options_.max_parked)
      shed_oldest_parked(conn.id);
    const std::uint64_t now = now_ms();
    conn.parked.push_back(Parked{serial, ++park_seq_, now, std::move(job)});
    ++parked_total_;
    if (options_.request_timeout_ms && conn.parked.size() == 1)
      wheel_.arm(conn.id * 2 + 1, now + options_.request_timeout_ms);
  }
}

void LineServer::retry_parked() {
  for (auto& [id, conn] : conns_) {
    while (!conn.parked.empty()) {
      Parked& head = conn.parked.front();
      std::uint64_t conn_id = conn.id;
      std::uint64_t serial = head.serial;
      service::CompileService::Callback done =
          [this, conn_id, serial](service::JobResult result) {
            std::lock_guard<std::mutex> lock(done_mu_);
            done_.push_back(Done{conn_id, serial, std::move(result)});
            --outstanding_;
            done_cv_.notify_all();
            std::uint64_t one = 1;
            (void)!::write(wake_fd_, &one, sizeof one);
          };
      {
        std::lock_guard<std::mutex> lock(done_mu_);
        ++outstanding_;
      }
      if (!service_.try_submit_async(head.job, done)) {
        std::lock_guard<std::mutex> lock(done_mu_);
        --outstanding_;
        break;  // queue still full; a later completion retries
      }
      conn.parked.pop_front();
      --parked_total_;
    }
    if (conn.parked.empty() && !conn.inbuf.empty()) parse_lines(conn);
  }
}

void LineServer::drain_completions() {
  std::deque<Done> ready;
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    ready.swap(done_);
  }
  for (Done& d : ready) {
    auto it = conns_.find(d.conn_id);
    if (it == conns_.end()) continue;  // connection died before the answer
    for (Slot& slot : it->second.slots) {
      if (slot.serial == d.serial) {
        slot.text = service::response_from_result(d.result).dump();
        slot.done = true;
        break;
      }
    }
  }
  retry_parked();  // completions freed compile-queue slots
  // Flush (and possibly close) every connection; iterate over ids because
  // close_conn invalidates conns_ iterators.
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (auto& [id, conn] : conns_) ids.push_back(id);
  for (std::uint64_t id : ids) {
    auto it = conns_.find(id);
    if (it != conns_.end()) flush_ready(it->second);
  }
}

void LineServer::flush_ready(Conn& conn) {
  for (;;) {
    if (conn.slots.empty()) break;
    Slot& front = conn.slots.front();
    if (!front.done && front.control) {
      // Control command at the front of the pipeline: evaluate it now, with
      // every preceding job already answered.
      const Json& request = *front.control;
      if (request["cmd"].as_string() == "shard") {
        front.text =
            shard_response(request, options_.shard,
                           service_.registry().options().retarget)
                .dump();
      } else {
        front.text = service::handle_introspection(request, service_)
                         .value_or(Json::object())
                         .dump();
      }
      front.done = true;
      front.control.reset();
    }
    if (!front.done) break;
    conn.outbuf += front.text;
    conn.outbuf.push_back('\n');
    net_counters().responses.add(1);
    conn.slots.pop_front();
  }
  handle_writable(conn);
}

void LineServer::handle_writable(Conn& conn) {
  std::uint64_t id = conn.id;
  // Injected socket failure: the peer is treated as gone, exactly like a
  // real EPIPE below — this connection drops, the process keeps serving.
  if (conn.outpos < conn.outbuf.size() && util::failpoint("net.conn.write")) {
    close_conn(id);
    return;
  }
  while (conn.outpos < conn.outbuf.size()) {
    ssize_t n = ::send(conn.fd, conn.outbuf.data() + conn.outpos,
                       conn.outbuf.size() - conn.outpos, MSG_NOSIGNAL);
    if (n > 0) {
      net_counters().write_bytes.add(static_cast<std::uint64_t>(n));
      conn.outpos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // Peer gone (EPIPE/ECONNRESET under MSG_NOSIGNAL): drop exactly this
    // connection, never the process.
    close_conn(id);
    return;
  }
  if (conn.outpos == conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.outpos = 0;
  }
  if (conn.eof && conn.slots.empty() && conn.parked.empty() &&
      conn.outbuf.empty()) {
    close_conn(id);
    return;
  }
  update_interest(conn);
}

void LineServer::update_interest(Conn& conn) {
  std::uint32_t want = 0;
  bool writebuf_full = conn.outbuf.size() - conn.outpos >
                       options_.max_write_buffer;
  bool paused = conn.eof || !conn.parked.empty() || writebuf_full ||
                conn.slots.size() >= pipeline_limit();
  if (!paused) want |= EPOLLIN;
  if (conn.outpos < conn.outbuf.size()) want |= EPOLLOUT;
  if (want == conn.events) return;
  if (writebuf_full && (conn.events & EPOLLIN))
    net_counters().backpressure_stalls.add(1);
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  conn.events = want;
}

void LineServer::close_conn(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  wheel_.cancel(conn_id * 2);
  wheel_.cancel(conn_id * 2 + 1);
  parked_total_ -= it->second.parked.size();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  ::close(it->second.fd);
  conns_.erase(it);
  net_counters().closed.add(1);
  net_counters().connections.add(-1);
}

}  // namespace record::net
