#include "core/compiler.h"

namespace record::core {

std::optional<CompileResult> Compiler::compile(
    const ir::Program& prog, const CompileOptions& options,
    util::DiagnosticSink& diags, select::SelectScratch* scratch) const {
  if (!target_ || !target_->base) {
    diags.error({}, "compiler constructed from an empty retarget result");
    return std::nullopt;
  }
  CompileResult result;

  const burstab::TargetTables* tables = nullptr;
  if (options.engine != select::Engine::kInterpreter) {
    tables = target_->tables.get();
    if (!tables && options.engine == select::Engine::kTables)
      diags.warning({}, "table engine requested but the retarget result "
                        "carries no tables; selecting with the interpreter");
  }
  select::CodeSelector selector(*target_->base, target_->tree_grammar, diags,
                                tables, scratch);
  std::optional<select::SelectionResult> sel = selector.select(prog);
  if (!sel) return std::nullopt;
  result.selection = std::move(*sel);

  if (options.insert_spills) {
    result.spill_stats =
        sched::insert_spills(result.selection, prog, *target_->base,
                             target_->tree_grammar, options.spill, diags);
    if (result.spill_stats.unresolved > 0) {
      // A clobber the spiller cannot repair means the emitted code would
      // compute wrong values (the RT-level simulator demonstrates it);
      // failing honestly beats emitting known-bad code with a warning.
      diags.error({}, "unrepairable register clobber; refusing to emit "
                      "incorrect code (see warnings)");
      return std::nullopt;
    }
  }

  result.compacted = compact::compact(result.selection, *target_->base,
                                      options.compact, diags);
  result.encoded =
      emit::encode(result.compacted.program, *target_->base, diags);
  if (!diags.ok()) return std::nullopt;
  return result;
}

}  // namespace record::core
