#include "core/compiler.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace record::core {

std::optional<CompileResult> Compiler::compile(
    const ir::Program& prog, const CompileOptions& options,
    util::DiagnosticSink& diags, select::SelectScratch* scratch) const {
  if (!target_ || !target_->base) {
    diags.error({}, "compiler constructed from an empty retarget result");
    return std::nullopt;
  }
  obs::Span span("compile");
  CompileResult result;

  const burstab::TargetTables* tables = nullptr;
  if (options.engine != select::Engine::kInterpreter) {
    tables = target_->tables.get();
    if (!tables && options.engine == select::Engine::kTables)
      diags.warning({}, "table engine requested but the retarget result "
                        "carries no tables; selecting with the interpreter");
  }
  // Per-stage spans so a traced compile decomposes the same way JobTimes
  // does: selection (label + flatten inside the selector), spill repair,
  // compaction, encoding.
  std::optional<obs::Span> stage;
  stage.emplace("compile.select");
  select::CodeSelector selector(*target_->base, target_->tree_grammar, diags,
                                tables, scratch);
  std::optional<select::SelectionResult> sel = selector.select(prog);
  if (!sel) {
    obs::metrics().counter("compile.uncovered").add(1);
    return std::nullopt;
  }
  result.selection = std::move(*sel);

  if (options.insert_spills) {
    stage.emplace("compile.spill");
    result.spill_stats =
        sched::insert_spills(result.selection, prog, *target_->base,
                             target_->tree_grammar, options.spill, diags);
    if (result.spill_stats.unresolved > 0) {
      // A clobber the spiller cannot repair means the emitted code would
      // compute wrong values (the RT-level simulator demonstrates it);
      // failing honestly beats emitting known-bad code with a warning.
      diags.error({}, "unrepairable register clobber; refusing to emit "
                      "incorrect code (see warnings)");
      obs::metrics().counter("compile.unrepairable_clobber").add(1);
      return std::nullopt;
    }
  }

  stage.emplace("compile.compact");
  result.compacted = compact::compact(result.selection, *target_->base,
                                      options.compact, diags);
  stage.emplace("compile.encode");
  result.encoded =
      emit::encode(result.compacted.program, *target_->base, diags);
  stage.reset();
  if (!diags.ok()) {
    obs::metrics().counter("compile.failed").add(1);
    return std::nullopt;
  }
  obs::metrics().counter("compile.ok").add(1);
  span.note("processor", target_->processor);
  span.note("words", static_cast<std::int64_t>(result.code_size()));
  span.note("rts", static_cast<std::int64_t>(result.selection.total_rts));
  span.note("engine", select::to_string(selector.engine()));
  return result;
}

}  // namespace record::core
