#include "core/compiler.h"

#include "obs/coverage.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace record::core {

namespace {

/// Refreshes a coverage map's denominators from the live tables (states and
/// frozen transitions grow dynamically as the tables fill).
void refresh_coverage_totals(obs::CoverageMap& cov,
                             const grammar::TreeGrammar& g,
                             const burstab::TargetTables* tables) {
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;
  if (tables) {
    states = static_cast<std::uint64_t>(tables->stats().states);
    if (const burstab::TargetTables::FrozenTables* f = tables->frozen())
      transitions = static_cast<std::uint64_t>(f->transitions);
  }
  cov.set_totals(static_cast<std::uint64_t>(g.rules().size()), states,
                 transitions);
}

}  // namespace

std::optional<CompileResult> Compiler::compile(
    const ir::Program& prog, const CompileOptions& options,
    util::DiagnosticSink& diags, select::SelectScratch* scratch) const {
  if (!target_ || !target_->base) {
    diags.error({}, "compiler constructed from an empty retarget result");
    return std::nullopt;
  }
  obs::Span span("compile");
  CompileResult result;

  const burstab::TargetTables* tables = nullptr;
  if (options.engine != select::Engine::kInterpreter) {
    tables = target_->tables.get();
    if (!tables && options.engine == select::Engine::kTables)
      diags.warning({}, "table engine requested but the retarget result "
                        "carries no tables; selecting with the interpreter");
  }
  // Per-stage spans so a traced compile decomposes the same way JobTimes
  // does: selection (label + flatten inside the selector), spill repair,
  // compaction, encoding.
  // Coverage attach: one relaxed enabled() load per compile. The map factory
  // runs once per target (rule-name rendering is paid exactly once); the
  // arrays carry headroom for dynamic table growth, with late out-of-range
  // ids absorbed by the overflow counters.
  obs::CoverageMap* cov = nullptr;
  if (obs::coverage().enabled()) {
    const grammar::TreeGrammar& g = target_->tree_grammar;
    const burstab::TargetTables* cov_tables = tables;
    cov = &obs::coverage().map_for(target_->processor, [&g, cov_tables]() {
      obs::CoverageMap::Config cfg;
      cfg.rules = g.rules().size();
      std::size_t states = 0;
      std::size_t slots = 0;
      if (cov_tables) {
        states = cov_tables->stats().states;
        if (const burstab::TargetTables::FrozenTables* f =
                cov_tables->frozen())
          slots = f->slot_count;
      }
      cfg.states = states * 4 + 1024;
      cfg.transitions = slots * 4 + 4096;
      cfg.rule_names.reserve(cfg.rules);
      for (const grammar::Rule& r : g.rules())
        cfg.rule_names.push_back(grammar::rule_to_string(g, r));
      return cfg;
    });
    refresh_coverage_totals(*cov, g, tables);
  }

  std::optional<obs::Span> stage;
  stage.emplace("compile.select");
  select::CodeSelector selector(*target_->base, target_->tree_grammar, diags,
                                tables, scratch);
  selector.set_coverage(cov);
  if (options.explain) selector.set_explain(options.explain);
  std::optional<select::SelectionResult> sel = selector.select(prog);
  if (!sel) {
    obs::metrics().counter("compile.uncovered").add(1);
    return std::nullopt;
  }
  result.selection = std::move(*sel);

  if (options.insert_spills) {
    stage.emplace("compile.spill");
    result.spill_stats =
        sched::insert_spills(result.selection, prog, *target_->base,
                             target_->tree_grammar, options.spill, diags);
    if (result.spill_stats.unresolved > 0) {
      // A clobber the spiller cannot repair means the emitted code would
      // compute wrong values (the RT-level simulator demonstrates it);
      // failing honestly beats emitting known-bad code with a warning.
      diags.error({}, "unrepairable register clobber; refusing to emit "
                      "incorrect code (see warnings)");
      obs::metrics().counter("compile.unrepairable_clobber").add(1);
      return std::nullopt;
    }
  }

  stage.emplace("compile.compact");
  result.compacted = compact::compact(result.selection, *target_->base,
                                      options.compact, diags);
  stage.emplace("compile.encode");
  result.encoded =
      emit::encode(result.compacted.program, *target_->base, diags);
  stage.reset();
  if (cov) {
    const sched::SpillStats& sp = result.spill_stats;
    cov->record_variant(obs::CoverageVariant::kSpillPark,
                        sp.spills_inserted);
    cov->record_variant(obs::CoverageVariant::kSpillCallerSave,
                        sp.live_saves);
    cov->record_variant(obs::CoverageVariant::kSpillGuardWrap,
                        sp.guard_wraps);
    const compact::CompactStats& cs = result.compacted.stats;
    // Merges = RTs folded into shared words (mode sets inflate words, so
    // subtract them from the packing delta first).
    const std::size_t emitted =
        cs.words > cs.mode_sets_inserted ? cs.words - cs.mode_sets_inserted
                                         : cs.words;
    cov->record_variant(obs::CoverageVariant::kCompactMerge,
                        cs.input_rts > emitted ? cs.input_rts - emitted : 0);
    cov->record_variant(obs::CoverageVariant::kCompactModeSet,
                        cs.mode_sets_inserted);
    // Labelling may have grown the tables (or triggered a re-freeze);
    // refresh the denominators so the snapshot ratios stay honest.
    refresh_coverage_totals(*cov, target_->tree_grammar, tables);
  }
  if (!diags.ok()) {
    obs::metrics().counter("compile.failed").add(1);
    return std::nullopt;
  }
  obs::metrics().counter("compile.ok").add(1);
  span.note("processor", target_->processor);
  span.note("words", static_cast<std::int64_t>(result.code_size()));
  span.note("rts", static_cast<std::int64_t>(result.selection.total_rts));
  span.note("engine", select::to_string(selector.engine()));
  return result;
}

}  // namespace record::core
