#include "core/record.h"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>

#include "burstab/cache.h"
#include "grammar/bnf.h"
#include "hdl/parser.h"
#include "hdl/sema.h"
#include "models/models.h"
#include "netlist/netlist.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "treeparse/emitc.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace record::core {

std::string default_work_dir() {
  // A pid-unique subdirectory keeps concurrent processes' generated parser
  // files apart. Only the path is computed here; emit_parser creates the
  // directory when something is actually written, so merely constructing
  // RetargetOptions leaves no droppings in the system temp dir.
  static const std::string dir = [] {
    std::error_code ec;
    std::filesystem::path tmp = std::filesystem::temp_directory_path(ec);
    if (ec) return std::string(".");
    return (tmp / util::fmt("record-work-{}",
                            static_cast<unsigned>(::getpid()))).string();
  }();
  return dir;
}

namespace {

/// Bump whenever any retargeting phase changes behaviour (extraction,
/// extension, grammar construction, table compilation): cache entries are
/// keyed on this, so stale-algorithm blobs from older binaries never serve.
constexpr int kPipelineVersion = 2;  // v2: Imm slice clamped to field width

}  // namespace

std::string options_digest(const RetargetOptions& o) {
  return util::fmt(
      "pipeline:v{};extract:depth={},routes={},prune={},procout={};"
      "grammar:elide_ext={},elide_low={},self_moves={};"
      "extend:commut={},std_rewrites={};"
      "tables:{},precompute={},states={},trans={},freeze={}",
      kPipelineVersion, o.extract.limits.max_depth,
      o.extract.limits.max_routes_per_point, o.extract.prune_unsat,
      o.extract.include_proc_out, o.grammar.elide_extension_ops,
      o.grammar.elide_low_slices, o.grammar.skip_self_moves, o.commutativity,
      o.standard_rewrites, o.build_tables, o.tables.precompute,
      o.tables.max_states, o.tables.max_transitions, o.tables.freeze);
}

namespace {

/// The Table 3 "parser generation"/"parser compilation" phases; shared by
/// the cold pipeline and cache hits (the artifact is derived, not cached).
void emit_parser(RetargetResult& result, const RetargetOptions& options,
                 util::DiagnosticSink& diags) {
  util::Timer timer;
  if (options.emit_c_parser || options.compile_c_parser) {
    treeparse::EmitCOptions emit_options;
    emit_options.grammar_name = result.processor;
    result.c_parser_source =
        treeparse::emit_c_parser(result.tree_grammar, emit_options);
    result.times.record("parsergen", timer.seconds());
  }
  if (options.compile_c_parser) {
    timer.reset();
    // The artifact paths are keyed by processor name only, and the registry
    // single-flights per content hash — two concurrent retargets of
    // *different* sources naming the same processor would collide on these
    // paths, so write + compile runs under a process-wide lock.
    static std::mutex parser_mu;
    std::lock_guard<std::mutex> lock(parser_mu);
    std::error_code ec;
    std::filesystem::create_directories(options.work_dir, ec);
    std::string src_path = util::fmt("{}/record_parser_{}.c",
                                     options.work_dir, result.processor);
    std::string bin_path = util::fmt("{}/record_parser_{}",
                                     options.work_dir, result.processor);
    std::ofstream out(src_path);
    out << result.c_parser_source;
    out.close();
    const char* cc = std::getenv("CC");
    std::string cmd = util::fmt("{} -O1 -o {} {} 2>/dev/null",
                                cc ? cc : "cc", bin_path, src_path);
    result.c_compile_ok = std::system(cmd.c_str()) == 0;
    if (!result.c_compile_ok)
      diags.warning({}, "host C compiler failed on the generated parser");
    result.c_compile_seconds = timer.seconds();
    result.times.record("parsercc", result.c_compile_seconds);
  }
}

}  // namespace

std::optional<RetargetResult> Record::retarget(
    std::string_view hdl_source, const RetargetOptions& options,
    util::DiagnosticSink& diags) {
  RetargetResult result;
  util::Timer timer;
  obs::Span span("retarget");

  // --- persistent target cache (warm path) --------------------------------
  std::optional<burstab::TargetCache> cache;
  std::uint64_t cache_key = 0;
  if (options.use_target_cache && !options.extra_rewrites) {
    cache.emplace(options.cache_dir);
    cache_key =
        burstab::TargetCache::key_of(hdl_source, options_digest(options));
    if (std::optional<burstab::TargetArtifacts> art =
            cache->load(cache_key)) {
      result.processor = std::move(art->processor);
      result.tree_grammar = std::move(art->grammar);
      result.tables = std::move(art->tables);
      result.base = std::make_shared<const rtl::TemplateBase>(
          std::move(art->base));
      result.extract_stats = art->extract_stats;
      result.extend_stats = art->extend_stats;
      result.grammar_stats = art->grammar_stats;
      result.cache_hit = true;
      if (!result.tables && options.build_tables) {
        // Degradation tier: the entry's tables section was unusable but the
        // grammar survived (cache.cpp salvages it under checksum cover), so
        // rebuild tables from the grammar — far cheaper than re-running the
        // whole pipeline. The "burstab.tables.rebuild" failpoint suppresses
        // even that, leaving the interpreter engine (Engine::kAuto) as the
        // final tier; either way the fallback edge is counted.
        if (util::failpoint("burstab.tables.rebuild")) {
          obs::metrics().counter("burstab.fallback.interpreter").add(1);
        } else {
          util::Timer tables_timer;
          result.tables = std::make_shared<burstab::TargetTables>(
              result.tree_grammar, options.tables);
          result.times.record("tables", tables_timer.seconds());
          obs::metrics().counter("burstab.fallback.tables_rebuilt").add(1);
        }
      }
      result.times.record("cacheload", timer.seconds());
      span.note("processor", result.processor);
      span.note("cache", "hit");
      obs::metrics().counter("retarget.cache_hit").add(1);
      emit_parser(result, options, diags);
      return result;
    }
  }

  // Per-phase spans mirror the PhaseTimes entries (Table 3 breakdown), so a
  // Perfetto view of a cold retarget shows the same hdl/ise/extend/grammar/
  // tables decomposition the benchmarks report.
  std::optional<obs::Span> phase;

  // --- HDL frontend -------------------------------------------------------
  phase.emplace("retarget.hdl");
  std::optional<hdl::ProcessorModel> model = hdl::parse(hdl_source, diags);
  if (!model) return std::nullopt;
  if (!hdl::check_model(*model, diags)) return std::nullopt;
  result.processor = model->name;
  std::optional<netlist::Netlist> nl =
      netlist::elaborate(std::move(*model), diags);
  if (!nl) return std::nullopt;
  result.times.record("hdl", timer.seconds());

  // --- instruction-set extraction -----------------------------------------
  timer.reset();
  phase.emplace("retarget.ise");
  ise::ExtractResult extraction =
      ise::extract(*nl, options.extract, diags);
  result.extract_stats = extraction.stats;
  result.times.record("ise", timer.seconds());

  // --- template-base extension ---------------------------------------------
  timer.reset();
  phase.emplace("retarget.extend");
  rtl::ExtendOptions ext;
  ext.commutativity = options.commutativity;
  rtl::RewriteLibrary standard = rtl::RewriteLibrary::standard();
  if (options.standard_rewrites) ext.rewrites = &standard;
  result.extend_stats = rtl::extend_template_base(extraction.base, ext);
  if (options.extra_rewrites) {
    rtl::ExtendOptions extra;
    extra.commutativity = false;
    extra.rewrites = options.extra_rewrites;
    rtl::ExtendStats extra_stats =
        rtl::extend_template_base(extraction.base, extra);
    result.extend_stats.rewrite_added += extra_stats.rewrite_added;
  }
  result.times.record("extend", timer.seconds());

  // --- tree-grammar construction --------------------------------------------
  timer.reset();
  phase.emplace("retarget.grammar");
  grammar::BuiltGrammar built =
      grammar::build_grammar(extraction.base, options.grammar, diags);
  result.grammar_stats = built.stats;
  result.tree_grammar = std::move(built.grammar);
  result.times.record("grammar", timer.seconds());

  result.base = std::make_shared<const rtl::TemplateBase>(
      std::move(extraction.base));

  // --- BURS state-table compilation ----------------------------------------
  if (options.build_tables) {
    timer.reset();
    phase.emplace("retarget.tables");
    result.tables = std::make_shared<burstab::TargetTables>(
        result.tree_grammar, options.tables);
    result.times.record("tables", timer.seconds());
  }
  phase.reset();
  span.note("processor", result.processor);
  span.note("templates", static_cast<std::int64_t>(result.template_count()));
  obs::metrics().counter("retarget.cold").add(1);

  if (cache) {
    timer.reset();
    burstab::TargetArtifactsView view;
    view.processor = &result.processor;
    view.base = result.base.get();
    view.grammar = &result.tree_grammar;
    view.tables = result.tables.get();
    view.extract_stats = &result.extract_stats;
    view.extend_stats = &result.extend_stats;
    view.grammar_stats = &result.grammar_stats;
    if (cache->store(cache_key, view))
      result.times.record("cachestore", timer.seconds());
  }

  emit_parser(result, options, diags);
  return result;
}

std::optional<RetargetResult> Record::retarget_model(
    std::string_view model_name, const RetargetOptions& options,
    util::DiagnosticSink& diags) {
  std::string_view source = models::model_source(model_name);
  if (source.empty()) {
    diags.error({}, util::fmt("unknown built-in model '{}'", model_name));
    return std::nullopt;
  }
  return retarget(source, options, diags);
}

}  // namespace record::core
