#include "core/record.h"

#include <cstdlib>
#include <fstream>

#include "grammar/bnf.h"
#include "hdl/parser.h"
#include "hdl/sema.h"
#include "models/models.h"
#include "netlist/netlist.h"
#include "treeparse/emitc.h"
#include "util/strings.h"

namespace record::core {

std::optional<RetargetResult> Record::retarget(
    std::string_view hdl_source, const RetargetOptions& options,
    util::DiagnosticSink& diags) {
  RetargetResult result;
  util::Timer timer;

  // --- HDL frontend -------------------------------------------------------
  std::optional<hdl::ProcessorModel> model = hdl::parse(hdl_source, diags);
  if (!model) return std::nullopt;
  if (!hdl::check_model(*model, diags)) return std::nullopt;
  result.processor = model->name;
  std::optional<netlist::Netlist> nl =
      netlist::elaborate(std::move(*model), diags);
  if (!nl) return std::nullopt;
  result.times.record("hdl", timer.seconds());

  // --- instruction-set extraction -----------------------------------------
  timer.reset();
  ise::ExtractResult extraction =
      ise::extract(*nl, options.extract, diags);
  result.extract_stats = extraction.stats;
  result.times.record("ise", timer.seconds());

  // --- template-base extension ---------------------------------------------
  timer.reset();
  rtl::ExtendOptions ext;
  ext.commutativity = options.commutativity;
  rtl::RewriteLibrary standard = rtl::RewriteLibrary::standard();
  if (options.standard_rewrites) ext.rewrites = &standard;
  result.extend_stats = rtl::extend_template_base(extraction.base, ext);
  if (options.extra_rewrites) {
    rtl::ExtendOptions extra;
    extra.commutativity = false;
    extra.rewrites = options.extra_rewrites;
    rtl::ExtendStats extra_stats =
        rtl::extend_template_base(extraction.base, extra);
    result.extend_stats.rewrite_added += extra_stats.rewrite_added;
  }
  result.times.record("extend", timer.seconds());

  // --- tree-grammar construction --------------------------------------------
  timer.reset();
  grammar::BuiltGrammar built =
      grammar::build_grammar(extraction.base, options.grammar, diags);
  result.grammar_stats = built.stats;
  result.tree_grammar = std::move(built.grammar);
  result.times.record("grammar", timer.seconds());

  result.base = std::make_shared<const rtl::TemplateBase>(
      std::move(extraction.base));

  // --- parser generation (iburg-equivalent artifact) -----------------------
  if (options.emit_c_parser || options.compile_c_parser) {
    timer.reset();
    treeparse::EmitCOptions emit_options;
    emit_options.grammar_name = result.processor;
    result.c_parser_source =
        treeparse::emit_c_parser(result.tree_grammar, emit_options);
    result.times.record("parsergen", timer.seconds());
  }
  if (options.compile_c_parser) {
    timer.reset();
    std::string src_path = util::fmt("{}/record_parser_{}.c",
                                     options.work_dir, result.processor);
    std::string bin_path = util::fmt("{}/record_parser_{}",
                                     options.work_dir, result.processor);
    std::ofstream out(src_path);
    out << result.c_parser_source;
    out.close();
    const char* cc = std::getenv("CC");
    std::string cmd = util::fmt("{} -O1 -o {} {} 2>/dev/null",
                                cc ? cc : "cc", bin_path, src_path);
    result.c_compile_ok = std::system(cmd.c_str()) == 0;
    if (!result.c_compile_ok)
      diags.warning({}, "host C compiler failed on the generated parser");
    result.c_compile_seconds = timer.seconds();
    result.times.record("parsercc", result.c_compile_seconds);
  }

  return result;
}

std::optional<RetargetResult> Record::retarget_model(
    std::string_view model_name, const RetargetOptions& options,
    util::DiagnosticSink& diags) {
  std::string_view source = models::model_source(model_name);
  if (source.empty()) {
    diags.error({}, util::fmt("unknown built-in model '{}'", model_name));
    return std::nullopt;
  }
  return retarget(source, options, diags);
}

}  // namespace record::core
