// record::core::Record — the retargeting driver (paper fig. 1).
//
// One call takes an HDL processor model through the complete pipeline:
//   HDL frontend -> netlist -> instruction-set extraction -> template-base
//   extension -> tree-grammar construction -> (optionally) C parser
//   emission and compilation by the host C compiler.
// The result carries the extended template base, the processor-specific
// tree grammar, per-phase wall-clock timings (the Table 3 breakdown) and
// all phase statistics.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "burstab/tables.h"
#include "grammar/build.h"
#include "grammar/grammar.h"
#include "ise/extract.h"
#include "rtl/extend.h"
#include "rtl/template.h"
#include "util/diagnostics.h"
#include "util/timer.h"

namespace record::core {

/// Per-process scratch directory: a pid-unique subdirectory of the system
/// temp dir (created on first use), so concurrent retargets in different
/// processes never clobber each other's generated parser files.
[[nodiscard]] std::string default_work_dir();

struct RetargetOptions {
  ise::ExtractOptions extract;
  grammar::BuildOptions grammar;
  /// Commutative-swap extension (paper section 3).
  bool commutativity = true;
  /// Apply the standard algebraic rewrite library.
  bool standard_rewrites = true;
  /// Additional user rewrite library (applied after the standard one).
  const rtl::RewriteLibrary* extra_rewrites = nullptr;
  /// Generate the standalone C parser source (iburg-equivalent artifact).
  bool emit_c_parser = false;
  /// Additionally compile it with the host C compiler (timing fidelity for
  /// the Table 3 "parser compilation" phase). Implies emit_c_parser.
  bool compile_c_parser = false;
  /// Scratch directory for the generated parser.
  std::string work_dir = default_work_dir();
  /// Compile the tree grammar into BURS state tables (the table-driven
  /// selection engine; RetargetResult::tables).
  bool build_tables = true;
  burstab::TableBuildOptions tables;
  /// Serve/store this retarget through the persistent TargetCache, keyed by
  /// a content hash of the HDL source and these options. Requests with
  /// `extra_rewrites` bypass the cache (a rewrite library has no stable
  /// content hash).
  bool use_target_cache = false;
  /// Cache directory; empty selects burstab::TargetCache::default_dir().
  std::string cache_dir;
};

/// Canonical rendering of every option that shapes the cached retargeting
/// artifacts (template base, grammar, tables); the second half of the
/// TargetCache / service::TargetRegistry content-hash key. Formatting and
/// emission options are excluded: the C parser is regenerated on demand.
[[nodiscard]] std::string options_digest(const RetargetOptions& options);

/// A complete retargeted code-selector description.
///
/// Thread safety: a RetargetResult is immutable once retarget() returns, and
/// a `const RetargetResult` may be shared across concurrent Compiler::compile
/// jobs — the owned BddManager is internally synchronised (bdd/bdd.h) and
/// TargetTables memoises new states/transitions under its own lock
/// (burstab/tables.h). service::TargetRegistry hands results out as
/// shared_ptr<const RetargetResult> on exactly this contract.
struct RetargetResult {
  std::string processor;
  std::shared_ptr<const rtl::TemplateBase> base;
  grammar::TreeGrammar tree_grammar;
  /// Compiled BURS state tables over `tree_grammar` (build_tables); the
  /// tables reference the grammar's pattern nodes, so they stay paired with
  /// this result.
  std::shared_ptr<burstab::TargetTables> tables;
  /// True when this result was served from the persistent TargetCache.
  bool cache_hit = false;

  ise::ExtractStats extract_stats;
  rtl::ExtendStats extend_stats;
  grammar::BuildStats grammar_stats;
  util::PhaseTimes times;  // "hdl", "ise", "extend", "grammar", "tables",
                           // "parsergen", "parsercc"; cache hits: "cacheload"

  std::string c_parser_source;      // if requested
  double c_compile_seconds = 0.0;   // if compile_c_parser
  bool c_compile_ok = false;

  [[nodiscard]] std::size_t template_count() const {
    return base ? base->size() : 0;
  }
};

class Record {
 public:
  /// Retargets from HDL source text.
  [[nodiscard]] static std::optional<RetargetResult> retarget(
      std::string_view hdl_source, const RetargetOptions& options,
      util::DiagnosticSink& diags);

  /// Retargets one of the built-in models (src/models).
  [[nodiscard]] static std::optional<RetargetResult> retarget_model(
      std::string_view model_name, const RetargetOptions& options,
      util::DiagnosticSink& diags);
};

}  // namespace record::core
