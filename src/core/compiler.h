// record::core::Compiler — IR program -> machine code for a retargeted
// processor: code selection (BURS), spill repair, code compaction and
// binary encoding.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "compact/compact.h"
#include "core/record.h"
#include "emit/asmout.h"
#include "emit/encode.h"
#include "ir/program.h"
#include "sched/spill.h"
#include "select/selector.h"

namespace record::core {

struct CompileOptions {
  compact::CompactOptions compact;
  sched::SpillOptions spill;
  bool insert_spills = true;
  /// Labelling engine for code selection. kAuto (default) uses the tables
  /// carried by the retarget result when present (RetargetOptions::
  /// build_tables) and the interpreter otherwise. Explicit kTables without
  /// tables falls back to the interpreter with a warning.
  select::Engine engine = select::Engine::kAuto;
  /// When non-null, selection appends one StmtExplain per statement (chosen
  /// derivation, rejected alternatives, immediate-fit decisions). The sink
  /// must outlive the compile call; per-job, not thread-shared.
  select::ExplainSink* explain = nullptr;
};

struct CompileResult {
  // Note: `compacted` and `encoded` hold pointers into `selection`; the
  // struct is movable (vector heap storage is stable) but not copyable.
  select::SelectionResult selection;
  sched::SpillStats spill_stats;
  compact::CompactResult compacted;
  emit::EncodeResult encoded;

  CompileResult() = default;
  CompileResult(const CompileResult&) = delete;
  CompileResult& operator=(const CompileResult&) = delete;
  CompileResult(CompileResult&&) = default;
  CompileResult& operator=(CompileResult&&) = default;

  /// Code size in instruction words — the Figure 2 metric.
  [[nodiscard]] std::size_t code_size() const {
    return encoded.assembly.size();
  }
  [[nodiscard]] std::string listing() const {
    return emit::listing(encoded.assembly);
  }
};

/// Thread safety: compile() is const and reentrant — one Compiler (or many,
/// over the same RetargetResult) may run compile jobs from several threads
/// concurrently. All shared target state is either immutable or internally
/// synchronised (BddManager, TargetTables); everything per-job lives in the
/// CompileResult. Callers must confine one DiagnosticSink per job
/// (util/diagnostics.h).
class Compiler {
 public:
  /// The retarget result must outlive the compiler.
  explicit Compiler(const RetargetResult& target) : target_(&target) {}

  /// Shared-ownership form: keeps the target alive for the compiler's
  /// lifetime (what service workers use — the registry may evict the entry
  /// while jobs against it are still in flight).
  explicit Compiler(std::shared_ptr<const RetargetResult> target)
      : owned_(std::move(target)), target_(owned_.get()) {}

  /// `scratch` (optional) supplies reusable selection buffers — pass a
  /// per-thread instance to amortise label/derivation allocations across
  /// jobs (see select::SelectScratch). One scratch must not be shared by
  /// concurrent compile() calls.
  [[nodiscard]] std::optional<CompileResult> compile(
      const ir::Program& prog, const CompileOptions& options,
      util::DiagnosticSink& diags,
      select::SelectScratch* scratch = nullptr) const;

  [[nodiscard]] const RetargetResult& target() const { return *target_; }

 private:
  std::shared_ptr<const RetargetResult> owned_;  // null for the ref form
  const RetargetResult* target_;
};

}  // namespace record::core
