#include "bdd/bdd.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace record::bdd {

BddManager::BddManager() {
  // Slot 0: constant FALSE, slot 1: constant TRUE. Constants sit below every
  // variable in the order (kConstLevel).
  nodes_.push_back(Node{kConstLevel, kFalse, kFalse});
  nodes_.push_back(Node{kConstLevel, kTrue, kTrue});
}

int BddManager::new_var(std::string name) {
  names_.push_back(std::move(name));
  return static_cast<int>(names_.size()) - 1;
}

int BddManager::find_var(std::string_view name) const {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return static_cast<int>(i);
  return -1;
}

Ref BddManager::literal(int v, bool positive) {
  assert(v >= 0 && v < var_count());
  std::lock_guard<std::mutex> lock(mu_);
  return positive ? make_node(v, kFalse, kTrue) : make_node(v, kTrue, kFalse);
}

Ref BddManager::make_node(int var, Ref lo, Ref hi) {
  if (lo == hi) return lo;  // reduction rule
  NodeKey key{var, lo, hi};
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  Ref r = static_cast<Ref>(nodes_.size());
  nodes_.push_back(Node{var, lo, hi});
  unique_.emplace(key, r);
  return r;
}

Ref BddManager::ite(Ref f, Ref g, Ref h) {
  std::lock_guard<std::mutex> lock(mu_);
  return ite_rec(f, g, h);
}

Ref BddManager::ite_rec(Ref f, Ref g, Ref h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  IteKey key{f, g, h};
  auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  int top = std::min({level(f), level(g), level(h)});
  auto cofactor = [&](Ref r, bool hi) {
    if (level(r) != top) return r;
    return hi ? node(r).hi : node(r).lo;
  };
  Ref t = ite_rec(cofactor(f, true), cofactor(g, true), cofactor(h, true));
  Ref e = ite_rec(cofactor(f, false), cofactor(g, false), cofactor(h, false));
  Ref r = make_node(top, e, t);
  ite_cache_.emplace(key, r);
  return r;
}

Ref BddManager::restrict(Ref f, int v, bool value) {
  std::lock_guard<std::mutex> lock(mu_);
  return restrict_rec(f, v, value);
}

Ref BddManager::restrict_rec(Ref f, int v, bool value) {
  if (is_const(f)) return f;
  int top = level(f);
  if (top > v) return f;  // v not in f's remaining support
  if (top == v) return value ? node(f).hi : node(f).lo;
  Ref lo = restrict_rec(node(f).lo, v, value);
  Ref hi = restrict_rec(node(f).hi, v, value);
  return make_node(top, lo, hi);
}

Ref BddManager::compose(Ref f, int v, Ref g) {
  // f[v <- g] = ite(g, f|v=1, f|v=0)
  std::lock_guard<std::mutex> lock(mu_);
  return ite_rec(g, restrict_rec(f, v, true), restrict_rec(f, v, false));
}

Ref BddManager::exists(Ref f, int v) {
  // lor(f|v=1, f|v=0) spelled through the unlocked core.
  std::lock_guard<std::mutex> lock(mu_);
  return ite_rec(restrict_rec(f, v, true), kTrue, restrict_rec(f, v, false));
}

bool BddManager::eval(Ref f, const Assignment& a) const {
  std::lock_guard<std::mutex> lock(mu_);
  while (!is_const(f)) {
    int v = node(f).var;
    bool value = false;
    for (const auto& [av, aval] : a) {
      if (av == v) {
        value = aval;
        break;
      }
    }
    f = value ? node(f).hi : node(f).lo;
  }
  return f == kTrue;
}

std::optional<Assignment> BddManager::any_sat(Ref f) const {
  if (f == kFalse) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  Assignment out;
  while (!is_const(f)) {
    const Node& n = node(f);
    if (n.hi != kFalse) {
      out.emplace_back(n.var, true);
      f = n.hi;
    } else {
      out.emplace_back(n.var, false);
      f = n.lo;
    }
  }
  return out;
}

double BddManager::sat_fraction(Ref f,
                                std::unordered_map<Ref, double>& memo) const {
  if (f == kFalse) return 0.0;
  if (f == kTrue) return 1.0;
  auto it = memo.find(f);
  if (it != memo.end()) return it->second;
  const Node& n = node(f);
  double r = 0.5 * sat_fraction(n.lo, memo) + 0.5 * sat_fraction(n.hi, memo);
  memo.emplace(f, r);
  return r;
}

std::uint64_t BddManager::sat_count(Ref f, int nvars) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::unordered_map<Ref, double> memo;
  double fraction = sat_fraction(f, memo);
  double count = fraction;
  for (int i = 0; i < nvars; ++i) count *= 2.0;
  return static_cast<std::uint64_t>(count + 0.5);
}

void BddManager::collect_support(Ref f, std::vector<bool>& seen,
                                 std::vector<bool>& vars) const {
  if (is_const(f) || seen[f]) return;
  seen[f] = true;
  vars[static_cast<std::size_t>(node(f).var)] = true;
  collect_support(node(f).lo, seen, vars);
  collect_support(node(f).hi, seen, vars);
}

std::vector<int> BddManager::support(Ref f) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<bool> vars(names_.size(), false);
  collect_support(f, seen, vars);
  std::vector<int> out;
  for (std::size_t i = 0; i < vars.size(); ++i)
    if (vars[i]) out.push_back(static_cast<int>(i));
  return out;
}

std::string BddManager::to_string(Ref f) const {
  std::lock_guard<std::mutex> lock(mu_);
  return to_string_rec(f);
}

std::string BddManager::to_string_rec(Ref f) const {
  if (f == kFalse) return "0";
  if (f == kTrue) return "1";
  const Node& n = node(f);
  std::ostringstream os;
  os << '(' << var_name(n.var) << " ? " << to_string_rec(n.hi) << " : "
     << to_string_rec(n.lo) << ')';
  return os.str();
}

void BddManager::to_sop_rec(Ref f, std::vector<std::pair<int, bool>>& path,
                            std::vector<std::string>& cubes) const {
  if (f == kFalse) return;
  if (f == kTrue) {
    if (path.empty()) {
      cubes.emplace_back("1");
      return;
    }
    std::ostringstream os;
    for (std::size_t i = 0; i < path.size(); ++i) {
      if (i) os << '&';
      if (!path[i].second) os << '!';
      os << var_name(path[i].first);
    }
    cubes.push_back(os.str());
    return;
  }
  const Node& n = node(f);
  path.emplace_back(n.var, false);
  to_sop_rec(n.lo, path, cubes);
  path.back().second = true;
  to_sop_rec(n.hi, path, cubes);
  path.pop_back();
}

std::string BddManager::to_sop(Ref f) const {
  if (f == kFalse) return "0";
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<int, bool>> path;
  std::vector<std::string> cubes;
  to_sop_rec(f, path, cubes);
  std::ostringstream os;
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    if (i) os << " | ";
    os << cubes[i];
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// BitVec

BitVec BitVec::constant(std::uint64_t value, int width) {
  std::vector<Ref> bits(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i)
    bits[static_cast<std::size_t>(i)] =
        ((value >> i) & 1u) ? kTrue : kFalse;
  return BitVec(std::move(bits));
}

BitVec BitVec::slice(int hi, int lo) const {
  assert(hi >= lo && lo >= 0 && hi < width());
  std::vector<Ref> bits(bits_.begin() + lo, bits_.begin() + hi + 1);
  return BitVec(std::move(bits));
}

BitVec BitVec::concat(const BitVec& high, const BitVec& low) {
  std::vector<Ref> bits = low.bits_;
  bits.insert(bits.end(), high.bits_.begin(), high.bits_.end());
  return BitVec(std::move(bits));
}

Ref BitVec::equals_const(BddManager& mgr, std::uint64_t value) const {
  Ref cond = kTrue;
  for (int i = 0; i < width(); ++i) {
    bool want = ((value >> i) & 1u) != 0;
    Ref bit_cond = want ? bits_[static_cast<std::size_t>(i)]
                        : mgr.lnot(bits_[static_cast<std::size_t>(i)]);
    cond = mgr.land(cond, bit_cond);
  }
  return cond;
}

Ref BitVec::equals(BddManager& mgr, const BitVec& other) const {
  assert(width() == other.width());
  Ref cond = kTrue;
  for (int i = 0; i < width(); ++i) {
    Ref same = mgr.lnot(mgr.lxor(bits_[static_cast<std::size_t>(i)],
                                 other.bits_[static_cast<std::size_t>(i)]));
    cond = mgr.land(cond, same);
  }
  return cond;
}

bool BitVec::is_constant() const {
  return std::all_of(bits_.begin(), bits_.end(),
                     [](Ref b) { return BddManager::is_const(b); });
}

std::uint64_t BitVec::constant_value() const {
  std::uint64_t v = 0;
  for (int i = 0; i < width(); ++i)
    if (bits_[static_cast<std::size_t>(i)] == kTrue) v |= (1ull << i);
  return v;
}

}  // namespace record::bdd
